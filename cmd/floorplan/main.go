// Command floorplan prints the three constrained floorplans of the paper's
// Figure 5 as ASCII layouts with per-block areas, reproducing the area
// scaling that makes each studied resource the thermal bottleneck.
package main

import (
	"flag"
	"fmt"

	"repro/internal/config"
	"repro/internal/floorplan"
)

func main() {
	areas := flag.Bool("areas", false, "print per-block areas")
	width := flag.Int("width", 100, "diagram width in characters")
	flag.Parse()

	for _, v := range []config.FloorplanVariant{
		config.PlanIQConstrained,
		config.PlanALUConstrained,
		config.PlanRFConstrained,
	} {
		p := floorplan.Build(v)
		fmt.Println(p.ASCII(*width))
		if *areas {
			fmt.Printf("%-10s %10s\n", "block", "area (mm²)")
			for _, b := range p.Blocks {
				fmt.Printf("%-10s %10.3f\n", b.Name, b.Area()*1e6)
			}
			fmt.Printf("%-10s %10.3f\n\n", "TOTAL", p.TotalArea()*1e6)
		}
	}
}
