// Command calibrate prints, for every benchmark on a chosen floorplan
// variant, the steady-state temperature each monitored block would reach
// under the benchmark's measured average power. This is the tool used to
// calibrate the floorplan area scaling and workload intensities (see
// DESIGN.md): the paper's methodology places the constrained resource's
// hottest copy just above the 358 K threshold for the high-utilization
// benchmarks and safely below it for the memory-bound ones.
//
// Per-benchmark probes are independent (each builds its own pipeline and
// thermal network) and are fanned out over -parallel workers; rows are
// printed in benchmark order regardless of completion order.
//
// Usage:
//
//	calibrate [-plan iq|alu|rf] [-cycles N] [-warmup N] [-blocks a,b,c] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/thermal"
	"repro/internal/trace"
)

func main() {
	planName := flag.String("plan", "iq", "floorplan variant: iq, alu, or rf")
	cycles := flag.Int("cycles", 1_000_000, "measurement window in cycles")
	warmup := flag.Int("warmup", 3_000_000, "architectural warmup in instructions")
	blockList := flag.String("blocks", "", "comma-separated blocks to report (default: a per-plan set)")
	parallel := flag.Int("parallel", 0, "probe workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	cfg := config.Default()
	switch *planName {
	case "iq":
		cfg.Plan = config.PlanIQConstrained
	case "alu":
		cfg.Plan = config.PlanALUConstrained
	case "rf":
		cfg.Plan = config.PlanRFConstrained
	default:
		fmt.Fprintf(os.Stderr, "unknown plan %q\n", *planName)
		os.Exit(2)
	}

	var blocks []string
	if *blockList != "" {
		blocks = strings.Split(*blockList, ",")
	} else {
		switch cfg.Plan {
		case config.PlanALUConstrained:
			blocks = []string{"IntExec0", "IntExec1", "IntExec5", "FPAdd0", "FPAdd3", floorplan.FPReg}
		case config.PlanRFConstrained:
			blocks = []string{floorplan.IntReg0, floorplan.IntReg1, "IntExec0", floorplan.IntQ1, floorplan.FPReg}
		default:
			blocks = []string{floorplan.IntQ0, floorplan.IntQ1, floorplan.FPQ0, floorplan.FPQ1, floorplan.IntReg0, floorplan.FPReg}
		}
	}

	fmt.Printf("steady-state temperatures on the %v floorplan (threshold %.0f K)\n\n", cfg.Plan, cfg.MaxTempK)
	fmt.Printf("%-10s %5s %6s", "benchmark", "IPC", "chipW")
	for _, b := range blocks {
		fmt.Printf(" %8s", b)
	}
	fmt.Println()

	// One steady-state probe per benchmark, each with its own pipeline
	// and thermal network; rows land in pre-indexed slots so the printed
	// table keeps benchmark order at any parallelism.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	profiles := trace.Profiles()
	rows := make([]string, len(profiles))
	err := runner.Run(ctx, *parallel, len(profiles), func(i int) error {
		prof := profiles[i]
		pcfg := cfg.Clone() // no shared pointers between workers
		plan := floorplan.Build(pcfg.Plan)
		meter := power.NewMeter(plan, pcfg)
		p, err := pipeline.New(pcfg, plan, meter, trace.NewGenerator(prof))
		if err != nil {
			return err
		}
		th, err := thermal.New(plan, pcfg)
		if err != nil {
			return err
		}
		p.Warmup(*warmup)
		for c := 0; c < *cycles; c++ {
			p.Cycle()
		}
		pow := meter.Drain(*cycles, 0, nil)
		ss := th.SteadyState(pow)
		var sb strings.Builder
		fmt.Fprintf(&sb, "%-10s %5.2f %6.1f", prof.Name, p.IPC(), meter.AvgChipPower())
		for _, b := range blocks {
			mark := " "
			t := ss[plan.Index(b)]
			if t >= pcfg.MaxTempK {
				mark = "*"
			}
			fmt.Fprintf(&sb, " %7.1f%s", t, mark)
		}
		rows[i] = sb.String()
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, row := range rows {
		fmt.Println(row)
	}
	fmt.Println("\n(*) at or above the critical threshold under sustained average power")
}
