// Command pipethermd serves the pipeline-thermal simulator as an HTTP
// service: submit cells or whole experiment matrices as jobs, poll
// their status, and fetch results or paper-style reports. Identical
// requests are answered from a content-addressed result cache, which
// the -cache-dir flag persists across restarts.
//
// Usage:
//
//	pipethermd [-addr :8080] [-workers N] [-queue N]
//	           [-cache-entries N] [-cache-dir DIR]
//	           [-job-timeout D] [-drain-timeout D]
//
// On SIGTERM or SIGINT the daemon stops accepting work, lets running
// jobs finish, and exits once drained or once -drain-timeout elapses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, signalContext()))
}

// signalContext cancels on SIGTERM/SIGINT.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// run is the testable body of main: parses args, serves until ctx is
// cancelled, drains, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("pipethermd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = fs.Int("workers", runtime.NumCPU(), "simulation worker goroutines")
		queue        = fs.Int("queue", 64, "job queue depth before submissions are rejected with 429")
		cacheEntries = fs.Int("cache-entries", 256, "in-memory result cache capacity")
		cacheDir     = fs.String("cache-dir", "", "directory for the persistent result cache (empty: memory only)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job wall-clock limit (0: none)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace period for running jobs")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pipethermd: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cache, err := service.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	engine := service.NewEngine(service.EngineConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		Cache:      cache,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewServer(engine)}
	fmt.Fprintf(stdout, "pipethermd listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died without a signal: report and bail.
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "pipethermd: draining (deadline %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	// Stop accepting connections first, then let the engine finish the
	// jobs already running; both share the drain deadline.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: http shutdown: %v\n", err)
	}
	if err := engine.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: engine shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pipethermd: drained, bye")
	return 0
}
