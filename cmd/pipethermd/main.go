// Command pipethermd serves the pipeline-thermal simulator as an HTTP
// service: submit cells or whole experiment matrices as jobs, poll
// their status, and fetch results or paper-style reports. Identical
// requests are answered from a content-addressed result cache, which
// the -cache-dir flag persists across restarts.
//
// Usage:
//
//	pipethermd [-addr :8080] [-workers N] [-queue N]
//	           [-cache-entries N] [-cache-dir DIR] [-journal-dir DIR]
//	           [-job-timeout D] [-retries N] [-retry-base D]
//	           [-quarantine-after N] [-drain-timeout D]
//
// With -journal-dir, job submissions and completions are written to a
// crash-safe journal: after a crash or SIGKILL the next start replays
// it, resubmits every job that had not settled, and restores quarantine
// markers, so queued and interrupted work is never lost (/readyz stays
// 503 until the replay has been resubmitted). On SIGTERM or SIGINT the
// daemon flips /readyz to 503, stops accepting work, lets running jobs
// finish, and exits once drained or once -drain-timeout elapses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, signalContext()))
}

// signalContext cancels on SIGTERM/SIGINT.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// run is the testable body of main: parses args, serves until ctx is
// cancelled, drains, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("pipethermd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = fs.Int("workers", runtime.NumCPU(), "simulation worker goroutines")
		shards       = fs.Int("shards", 0, "dispatcher shards (0: one per worker)")
		queue        = fs.Int("queue", 64, "aggregate job queue depth before submissions are rejected with 429")
		cacheEntries = fs.Int("cache-entries", 256, "in-memory result cache capacity")
		cacheDir     = fs.String("cache-dir", "", "directory for the persistent result cache (empty: memory only)")
		journalDir   = fs.String("journal-dir", "", "directory for the durable job journal (empty: jobs do not survive a crash)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job wall-clock limit (0: none); timed-out attempts are retried")
		retries      = fs.Int("retries", 2, "retries per job for transient failures (-1: none)")
		retryBase    = fs.Duration("retry-base", 50*time.Millisecond, "first retry backoff delay (doubled per retry, jittered)")
		quarAfter    = fs.Int("quarantine-after", 3, "panics before a job key is quarantined")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace period for running jobs")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pipethermd: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cache, err := service.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	cfg := service.EngineConfig{
		Workers:         *workers,
		Shards:          *shards,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		Cache:           cache,
		MaxRetries:      *retries,
		RetryBase:       *retryBase,
		QuarantineAfter: *quarAfter,
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = -1 // flag 0 means "no retries", not "engine default"
	}
	if *journalDir != "" {
		jnl, recs, err := journal.Open(*journalDir)
		if err != nil {
			fmt.Fprintf(stderr, "pipethermd: %v\n", err)
			return 1
		}
		pending, quarantined := journal.Pending(recs)
		fmt.Fprintf(stdout, "pipethermd: journal: replayed %d records, %d pending jobs resubmitted, %d quarantined\n",
			len(recs), len(pending), len(quarantined))
		cfg.Journal, cfg.Replay = jnl, recs
	}
	engine := service.NewEngine(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewServer(engine)}
	fmt.Fprintf(stdout, "pipethermd listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died without a signal: report and bail.
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "pipethermd: draining (deadline %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	// Fail readiness first so /readyz-polling load balancers stop
	// routing, then stop accepting connections, then let the engine
	// finish the jobs already running; all share the drain deadline.
	engine.BeginDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: http shutdown: %v\n", err)
	}
	if err := engine.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: engine shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pipethermd: drained, bye")
	return 0
}
