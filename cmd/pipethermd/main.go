// Command pipethermd serves the pipeline-thermal simulator as an HTTP
// service: submit cells or whole experiment matrices as jobs, poll
// their status, and fetch results or paper-style reports. Identical
// requests are answered from a content-addressed result cache, which
// the -cache-dir flag persists across restarts.
//
// Usage:
//
//	pipethermd [-addr :8080] [-workers N] [-queue N]
//	           [-cache-entries N] [-cache-dir DIR] [-journal-dir DIR]
//	           [-job-timeout D] [-retries N] [-retry-base D]
//	           [-quarantine-after N] [-drain-timeout D]
//	           [-default-deadline D] [-watchdog D]
//	           [-breaker-errors N] [-breaker-latency D] [-breaker-cooldown D]
//
// With -journal-dir, job submissions and completions are written to a
// crash-safe journal: after a crash or SIGKILL the next start replays
// it, resubmits every job that had not settled, and restores quarantine
// markers, so queued and interrupted work is never lost (/readyz stays
// 503 until the replay has been resubmitted). On SIGTERM or SIGINT the
// daemon flips /readyz to 503, stops accepting work, lets running jobs
// finish, and exits once drained or once -drain-timeout elapses.
//
// Overload protection: -default-deadline applies a deadline to jobs
// whose submission carried none, -watchdog force-fails attempts that
// stop making progress, and the -breaker-* flags tune the circuit
// breakers guarding the disk cache and the journal (when a breaker is
// open the daemon degrades — memory-only cache, durability "none" —
// instead of failing; see /statusz). -chaos-disk-fault is a test seam:
// while the named file exists, every disk touch by the cache and the
// journal fails with ENOSPC, which is how the overload e2e yanks the
// disk out from under a live daemon.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, signalContext()))
}

// signalContext cancels on SIGTERM/SIGINT.
func signalContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	return ctx
}

// run is the testable body of main: parses args, serves until ctx is
// cancelled, drains, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("pipethermd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers      = fs.Int("workers", runtime.NumCPU(), "simulation worker goroutines")
		shards       = fs.Int("shards", 0, "dispatcher shards (0: one per worker)")
		queue        = fs.Int("queue", 64, "aggregate job queue depth before submissions are rejected with 429")
		cacheEntries = fs.Int("cache-entries", 256, "in-memory result cache capacity")
		cacheDir     = fs.String("cache-dir", "", "directory for the persistent result cache (empty: memory only)")
		journalDir   = fs.String("journal-dir", "", "directory for the durable job journal (empty: jobs do not survive a crash)")
		jobTimeout   = fs.Duration("job-timeout", 0, "per-job wall-clock limit (0: none); timed-out attempts are retried")
		retries      = fs.Int("retries", 2, "retries per job for transient failures (-1: none)")
		retryBase    = fs.Duration("retry-base", 50*time.Millisecond, "first retry backoff delay (doubled per retry, jittered)")
		quarAfter    = fs.Int("quarantine-after", 3, "panics before a job key is quarantined")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "shutdown grace period for running jobs")
		defDeadline  = fs.Duration("default-deadline", 0, "deadline applied to submissions that carry none (0: none)")
		watchdog     = fs.Duration("watchdog", 0, "force-fail attempts making no progress for this long (0: 10x -job-timeout)")
		brkErrors    = fs.Int("breaker-errors", 3, "consecutive disk errors that open a cache/journal circuit breaker")
		brkLatency   = fs.Duration("breaker-latency", 2*time.Second, "disk operations slower than this count as breaker failures")
		brkCooldown  = fs.Duration("breaker-cooldown", 2*time.Second, "open breaker cooldown before a half-open probe")
		chaosFault   = fs.String("chaos-disk-fault", "", "test seam: fail all cache/journal disk I/O with ENOSPC while FILE exists")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pipethermd: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cache, err := service.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	cfg := service.EngineConfig{
		Workers:         *workers,
		Shards:          *shards,
		QueueDepth:      *queue,
		JobTimeout:      *jobTimeout,
		Cache:           cache,
		MaxRetries:      *retries,
		RetryBase:       *retryBase,
		QuarantineAfter: *quarAfter,
		DefaultDeadline: *defDeadline,
		Watchdog:        *watchdog,
		BreakerFailures: *brkErrors,
		BreakerLatency:  *brkLatency,
		BreakerCooldown: *brkCooldown,
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = -1 // flag 0 means "no retries", not "engine default"
	}
	if *chaosFault != "" {
		// While the sentinel file exists every disk touch by the cache
		// and the journal fails with ENOSPC — the e2e's removable disk.
		inj := faultinject.New()
		for _, site := range []string{
			faultinject.SiteCacheRead, faultinject.SiteCacheWrite,
			faultinject.SiteJournalAppend, faultinject.SiteJournalRewrite,
		} {
			inj.ArmWhileFile(site, *chaosFault, faultinject.Outcome{Err: faultinject.ErrNoSpace})
		}
		cfg.Inject = inj
		cache.SetInjector(inj)
		fmt.Fprintf(stdout, "pipethermd: chaos: disk I/O fails with ENOSPC while %s exists\n", *chaosFault)
	}
	if *journalDir != "" {
		jnl, recs, err := journal.Open(*journalDir)
		if err != nil {
			fmt.Fprintf(stderr, "pipethermd: %v\n", err)
			return 1
		}
		jnl.Inject = cfg.Inject
		pending, quarantined := journal.Pending(recs)
		fmt.Fprintf(stdout, "pipethermd: journal: replayed %d records, %d pending jobs resubmitted, %d quarantined\n",
			len(recs), len(pending), len(quarantined))
		cfg.Journal, cfg.Replay = jnl, recs
	}
	engine := service.NewEngine(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	}
	srv := &http.Server{Handler: service.NewServer(engine)}
	fmt.Fprintf(stdout, "pipethermd listening on http://%s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Listener died without a signal: report and bail.
		fmt.Fprintf(stderr, "pipethermd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintf(stdout, "pipethermd: draining (deadline %s)\n", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()

	// Fail readiness first so /readyz-polling load balancers stop
	// routing, then stop accepting connections, then let the engine
	// finish the jobs already running; all share the drain deadline.
	engine.BeginDrain()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: http shutdown: %v\n", err)
	}
	if err := engine.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(stderr, "pipethermd: engine shutdown: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "pipethermd: drained, bye")
	return 0
}
