package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stdout while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon on a free port and returns its base URL,
// its live stdout, and a stop function that triggers the drain and
// returns the exit code.
func startDaemon(t *testing.T, args ...string) (string, *syncBuffer, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	stdout := &syncBuffer{}
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), stdout, &stderr, ctx)
	}()

	// Wait for the startup line to learn the port.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			url = strings.TrimSpace(strings.SplitN(out[i:], "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return url, stdout, func() int {
		cancel()
		select {
		case code := <-exit:
			return code
		case <-time.After(60 * time.Second):
			t.Fatal("daemon did not exit after cancellation")
			return -1
		}
	}
}

// TestDaemonServeSubmitDrain boots the daemon, checks liveness, runs a
// tiny cell twice (second must be a cache hit), then drains cleanly.
func TestDaemonServeSubmitDrain(t *testing.T) {
	url, _, stop := startDaemon(t, "-workers", "2", "-cache-dir", t.TempDir())

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"benchmark":"eon","cycles":100000,"warmup":10000}`
	var results [2]string
	for i := range results {
		resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
		results[i] = string(b)
	}
	if !strings.Contains(results[1], `"cached":true`) {
		t.Errorf("second submission not served from cache: %s", results[1])
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d after drain, want 0", code)
	}
}

// TestDaemonDrainWaitsForRunningJob sends SIGTERM-equivalent
// cancellation while a job is running and expects the job to finish
// within the drain deadline and the process to exit 0.
func TestDaemonDrainWaitsForRunningJob(t *testing.T) {
	url, _, stop := startDaemon(t, "-workers", "1", "-drain-timeout", "60s")

	// A meatier job so the drain genuinely overlaps it.
	body := `{"benchmark":"eon","cycles":2000000,"warmup":100000}`
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d, want 0 (drain should let the running job finish)", code)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut, context.Background()); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errOut, context.Background()); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "999.999.999.999:1"}, &out, &errOut, context.Background()); code != 1 {
		t.Errorf("bad address: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "pipethermd:") {
		t.Errorf("stderr missing prefix: %s", errOut.String())
	}
}

// TestDaemonJournalReplayAcrossRestart is the in-process version of
// scripts/chaos_e2e.sh: a daemon is killed mid-job (the drain deadline
// expires, so the job is interrupted exactly as a crash would leave it),
// and a second daemon over the same journal and cache directories
// replays and completes it without the client resubmitting anything.
func TestDaemonJournalReplayAcrossRestart(t *testing.T) {
	journalDir, cacheDir := t.TempDir(), t.TempDir()
	common := []string{"-workers", "1", "-journal-dir", journalDir, "-cache-dir", cacheDir}

	// Daemon 1: submit a meaty job asynchronously, then "crash" — the
	// 50ms drain deadline interrupts it long before it can finish.
	url, _, stop := startDaemon(t, append(common, "-drain-timeout", "50ms")...)
	body := `{"benchmark":"eon","cycles":2000000,"warmup":100000}`
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}
	var st struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(b, &st); err != nil || st.Key == "" {
		t.Fatalf("no job key in %s: %v", b, err)
	}
	if code := stop(); code != 1 {
		t.Fatalf("interrupted drain exit code %d, want 1", code)
	}

	// Daemon 2: same directories. The journal replay line reports the
	// interrupted job, and polling its key — never resubmitted by us —
	// eventually answers done.
	url2, stdout2, stop2 := startDaemon(t, common...)
	if out := stdout2.String(); !strings.Contains(out, "1 pending jobs resubmitted") {
		t.Fatalf("no replay reported on restart:\n%s", out)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("replayed job never completed")
		}
		resp, err := http.Get(url2 + "/v1/jobs/" + st.Key)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && strings.Contains(string(b), `"state":"done"`) {
			break
		}
		if resp.StatusCode == http.StatusInternalServerError {
			t.Fatalf("replayed job failed: %s", b)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Readiness recovered once the replay settled.
	resp, err = http.Get(url2 + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after replay: %d", resp.StatusCode)
	}
	if code := stop2(); code != 0 {
		t.Fatalf("clean drain exit code %d, want 0", code)
	}
}
