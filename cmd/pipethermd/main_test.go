package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read stdout while run() is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon on a free port and returns its base URL
// plus a stop function that triggers the drain and returns the exit
// code.
func startDaemon(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout syncBuffer
	var stderr bytes.Buffer
	exit := make(chan int, 1)
	go func() {
		exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &stdout, &stderr, ctx)
	}()

	// Wait for the startup line to learn the port.
	var url string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
		}
		out := stdout.String()
		if i := strings.Index(out, "http://"); i >= 0 {
			url = strings.TrimSpace(strings.SplitN(out[i:], "\n", 2)[0])
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return url, func() int {
		cancel()
		select {
		case code := <-exit:
			return code
		case <-time.After(60 * time.Second):
			t.Fatal("daemon did not exit after cancellation")
			return -1
		}
	}
}

// TestDaemonServeSubmitDrain boots the daemon, checks liveness, runs a
// tiny cell twice (second must be a cache hit), then drains cleanly.
func TestDaemonServeSubmitDrain(t *testing.T) {
	url, stop := startDaemon(t, "-workers", "2", "-cache-dir", t.TempDir())

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"benchmark":"eon","cycles":100000,"warmup":10000}`
	var results [2]string
	for i := range results {
		resp, err := http.Post(url+"/v1/jobs?wait=1", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: %d %s", i, resp.StatusCode, b)
		}
		results[i] = string(b)
	}
	if !strings.Contains(results[1], `"cached":true`) {
		t.Errorf("second submission not served from cache: %s", results[1])
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d after drain, want 0", code)
	}
}

// TestDaemonDrainWaitsForRunningJob sends SIGTERM-equivalent
// cancellation while a job is running and expects the job to finish
// within the drain deadline and the process to exit 0.
func TestDaemonDrainWaitsForRunningJob(t *testing.T) {
	url, stop := startDaemon(t, "-workers", "1", "-drain-timeout", "60s")

	// A meatier job so the drain genuinely overlaps it.
	body := `{"benchmark":"eon","cycles":2000000,"warmup":100000}`
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, b)
	}

	if code := stop(); code != 0 {
		t.Fatalf("exit code %d, want 0 (drain should let the running job finish)", code)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errOut, context.Background()); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errOut, context.Background()); code != 2 {
		t.Errorf("stray argument: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "999.999.999.999:1"}, &out, &errOut, context.Background()); code != 1 {
		t.Errorf("bad address: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "pipethermd:") {
		t.Errorf("stderr missing prefix: %s", errOut.String())
	}
}
