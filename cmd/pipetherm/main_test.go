package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunHappyPath(t *testing.T) {
	code, out, errOut := runCLI("-bench", "eon", "-cycles", "100000", "-toggle", "-temps")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"benchmark    eon", "IPC", "per-block temperatures"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRunRejectsUnknownNames pins the usage-error contract: unknown
// benchmark / plan / policy names exit 2 with a clean one-line message,
// never a panic or a silently-ignored flag.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"benchmark", []string{"-bench", "doom3"}, "doom3"},
		{"plan", []string{"-plan", "cache"}, `unknown plan "cache"`},
		{"alu policy", []string{"-alu", "turbo"}, `unknown ALU policy "turbo"`},
		{"rf mapping", []string{"-rfmap", "zigzag"}, `unknown register-file mapping "zigzag"`},
		{"stray argument", []string{"eon"}, "unexpected argument"},
	}
	for _, c := range cases {
		code, _, errOut := runCLI(c.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", c.name, code, errOut)
		}
		if !strings.Contains(errOut, c.want) || !strings.Contains(errOut, "pipetherm:") {
			t.Errorf("%s: stderr %q missing %q", c.name, errOut, c.want)
		}
	}
}

func TestRunUnknownFlag(t *testing.T) {
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}
