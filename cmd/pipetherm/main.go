// Command pipetherm runs one benchmark under one configuration and prints
// a detailed report: IPC, thermal-management events, and per-block
// temperatures.
//
// Usage:
//
//	pipetherm [-bench eon] [-plan iq|alu|rf] [-cycles N]
//	          [-toggle] [-alu base|fgt|rr] [-rfmap priority|balanced|complete]
//	          [-rfturnoff] [-temps]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
)

func main() {
	bench := flag.String("bench", "eon", "benchmark name (SPEC2000 subset)")
	planName := flag.String("plan", "iq", "floorplan variant: iq, alu, or rf")
	cycles := flag.Int64("cycles", 4_000_000, "run length in cycles")
	toggle := flag.Bool("toggle", false, "enable issue-queue activity toggling")
	aluPolicy := flag.String("alu", "base", "ALU policy: base, fgt, or rr")
	rfMap := flag.String("rfmap", "priority", "register-file mapping: priority, balanced, complete")
	rfTurnoff := flag.Bool("rfturnoff", false, "enable register-file copy turnoff")
	showTemps := flag.Bool("temps", false, "print per-block temperatures")
	flag.Parse()

	cfg := config.Default()
	switch *planName {
	case "iq":
		cfg.Plan = config.PlanIQConstrained
	case "alu":
		cfg.Plan = config.PlanALUConstrained
	case "rf":
		cfg.Plan = config.PlanRFConstrained
	default:
		fatalf("unknown plan %q", *planName)
	}
	if *toggle {
		cfg.Techniques.IQ = config.IQToggle
	}
	switch *aluPolicy {
	case "base":
	case "fgt":
		cfg.Techniques.ALU = config.ALUFineGrain
	case "rr":
		cfg.Techniques.ALU = config.ALURoundRobin
	default:
		fatalf("unknown ALU policy %q", *aluPolicy)
	}
	switch *rfMap {
	case "priority":
		cfg.Techniques.RFMap = config.MapPriority
	case "balanced":
		cfg.Techniques.RFMap = config.MapBalanced
	case "complete":
		cfg.Techniques.RFMap = config.MapCompletelyBalanced
	default:
		fatalf("unknown register-file mapping %q", *rfMap)
	}
	cfg.Techniques.RFTurnoff = *rfTurnoff

	s, err := sim.NewByName(cfg, *bench)
	if err != nil {
		fatalf("%v", err)
	}
	r := s.RunCycles(*cycles)

	fmt.Printf("benchmark    %s\n", r.Benchmark)
	fmt.Printf("floorplan    %v\n", r.Plan)
	fmt.Printf("techniques   %v\n", r.Techniques)
	fmt.Printf("cycles       %d (%d active, %d stalled)\n", r.Cycles, r.ActiveCycles, r.StallCycles)
	fmt.Printf("committed    %d instructions\n", r.Committed)
	fmt.Printf("IPC          %.3f\n", r.IPC)
	fmt.Printf("chip power   %.1f W (average)\n", r.AvgChipPowerW)
	fmt.Printf("events       %d cooling stalls, %d IQ toggles (%d int / %d fp), %d ALU turnoffs, %d RF-copy turnoffs\n",
		r.Stalls, r.IntToggles+r.FPToggles, r.IntToggles, r.FPToggles, r.ALUTurnoffs, r.RFCopyTurnoffs)
	hot, temp := r.HottestBlock()
	fmt.Printf("hottest      %s at %.1f K average\n", hot, temp)

	if *showTemps {
		fmt.Println("\nper-block temperatures (avg / peak, K):")
		names := s.Plan.Blocks
		idx := make([]int, len(names))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return r.AvgTemp(names[idx[a]].Name) > r.AvgTemp(names[idx[b]].Name)
		})
		for _, i := range idx {
			n := names[i].Name
			fmt.Printf("  %-10s %7.2f / %7.2f\n", n, r.AvgTemp(n), r.PeakTemp(n))
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
