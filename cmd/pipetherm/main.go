// Command pipetherm runs one benchmark under one configuration and prints
// a detailed report: IPC, thermal-management events, and per-block
// temperatures.
//
// Usage:
//
//	pipetherm [-bench eon] [-plan iq|alu|rf] [-cycles N]
//	          [-toggle] [-alu base|fgt|rr] [-rfmap priority|balanced|complete]
//	          [-rfturnoff] [-temps]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/config"
	"repro/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it returns the process exit code
// (2 for usage errors such as unknown names, 1 for runtime failures).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pipetherm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench     = fs.String("bench", "eon", "benchmark name (SPEC2000 subset)")
		planName  = fs.String("plan", "iq", "floorplan variant: iq, alu, or rf")
		cycles    = fs.Int64("cycles", 4_000_000, "run length in cycles")
		toggle    = fs.Bool("toggle", false, "enable issue-queue activity toggling")
		aluPolicy = fs.String("alu", "base", "ALU policy: base, fgt, or rr")
		rfMap     = fs.String("rfmap", "priority", "register-file mapping: priority, balanced, complete")
		rfTurnoff = fs.Bool("rfturnoff", false, "enable register-file copy turnoff")
		showTemps = fs.Bool("temps", false, "print per-block temperatures")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "pipetherm: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cfg := config.Default()
	switch *planName {
	case "iq":
		cfg.Plan = config.PlanIQConstrained
	case "alu":
		cfg.Plan = config.PlanALUConstrained
	case "rf":
		cfg.Plan = config.PlanRFConstrained
	default:
		fmt.Fprintf(stderr, "pipetherm: unknown plan %q (valid: iq, alu, rf)\n", *planName)
		return 2
	}
	if *toggle {
		cfg.Techniques.IQ = config.IQToggle
	}
	switch *aluPolicy {
	case "base":
	case "fgt":
		cfg.Techniques.ALU = config.ALUFineGrain
	case "rr":
		cfg.Techniques.ALU = config.ALURoundRobin
	default:
		fmt.Fprintf(stderr, "pipetherm: unknown ALU policy %q (valid: base, fgt, rr)\n", *aluPolicy)
		return 2
	}
	switch *rfMap {
	case "priority":
		cfg.Techniques.RFMap = config.MapPriority
	case "balanced":
		cfg.Techniques.RFMap = config.MapBalanced
	case "complete":
		cfg.Techniques.RFMap = config.MapCompletelyBalanced
	default:
		fmt.Fprintf(stderr, "pipetherm: unknown register-file mapping %q (valid: priority, balanced, complete)\n", *rfMap)
		return 2
	}
	cfg.Techniques.RFTurnoff = *rfTurnoff

	s, err := sim.NewByName(cfg, *bench)
	if err != nil {
		fmt.Fprintf(stderr, "pipetherm: %v\n", err)
		return 2
	}
	r := s.RunCycles(*cycles)

	fmt.Fprintf(stdout, "benchmark    %s\n", r.Benchmark)
	fmt.Fprintf(stdout, "floorplan    %v\n", r.Plan)
	fmt.Fprintf(stdout, "techniques   %v\n", r.Techniques)
	fmt.Fprintf(stdout, "cycles       %d (%d active, %d stalled)\n", r.Cycles, r.ActiveCycles, r.StallCycles)
	fmt.Fprintf(stdout, "committed    %d instructions\n", r.Committed)
	fmt.Fprintf(stdout, "IPC          %.3f\n", r.IPC)
	fmt.Fprintf(stdout, "chip power   %.1f W (average)\n", r.AvgChipPowerW)
	fmt.Fprintf(stdout, "events       %d cooling stalls, %d IQ toggles (%d int / %d fp), %d ALU turnoffs, %d RF-copy turnoffs\n",
		r.Stalls, r.IntToggles+r.FPToggles, r.IntToggles, r.FPToggles, r.ALUTurnoffs, r.RFCopyTurnoffs)
	hot, temp := r.HottestBlock()
	fmt.Fprintf(stdout, "hottest      %s at %.1f K average\n", hot, temp)

	if *showTemps {
		fmt.Fprintln(stdout, "\nper-block temperatures (avg / peak, K):")
		avg := func(n string) float64 { t, _ := r.AvgTemp(n); return t }
		names := s.Plan.Blocks
		idx := make([]int, len(names))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return avg(names[idx[a]].Name) > avg(names[idx[b]].Name)
		})
		for _, i := range idx {
			n := names[i].Name
			peak, _ := r.PeakTemp(n)
			fmt.Fprintf(stdout, "  %-10s %7.2f / %7.2f\n", n, avg(n), peak)
		}
	}
	return 0
}
