package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runCLI(args ...string) (int, string, string) {
	var out, errOut bytes.Buffer
	code := run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestRunRejectsUnknownNames pins the fail-fast contract: typos in
// experiment or benchmark names exit 2 before any simulation starts.
func TestRunRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"experiment", []string{"fig9"}, `unknown experiment "fig9"`},
		{"experiment among valid", []string{"table1", "firg6"}, `unknown experiment "firg6"`},
		{"benchmark", []string{"-benchmarks", "eon,doom3", "fig6"}, "doom3"},
		{"scheduler", []string{"-scheduler", "coolest", "multicore"}, `unknown scheduler "coolest"`},
		{"cores", []string{"-cores", "999", "multicore"}, "cores 999 out of range"},
	}
	for _, c := range cases {
		code, out, errOut := runCLI(c.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2 (stderr: %s)", c.name, code, errOut)
		}
		if !strings.Contains(errOut, c.want) {
			t.Errorf("%s: stderr %q missing %q", c.name, errOut, c.want)
		}
		if out != "" {
			t.Errorf("%s: stdout not empty despite usage error:\n%s", c.name, out)
		}
	}
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Errorf("unknown flag: exit %d, want 2", code)
	}
}

func TestRunStaticTables(t *testing.T) {
	code, out, errOut := runCLI("-quiet", "table1", "table2", "table3")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"Table 1", "Table 2", "Table 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunMulticore drives the multicore experiment end to end through
// the CLI at a short horizon with a scheduler subset.
func TestRunMulticore(t *testing.T) {
	code, out, errOut := runCLI("-quiet", "-cycles", "1200000", "-cores", "4",
		"-scheduler", "roundrobin,coolest-first", "multicore")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	for _, want := range []string{"Multi-core scheduling", "roundrobin", "coolest-first", "cooler"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "threshold-migrate") {
		t.Error("scheduler subset was ignored")
	}
}

// TestRunCachedMatrixReuse runs the same tiny figure twice against one
// cache directory; the second invocation must reuse every cell and
// print byte-identical report output.
func TestRunCachedMatrixReuse(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-cycles", "120000", "-benchmarks", "eon", "-cache-dir", dir, "fig6"}

	code, out1, err1 := runCLI(args...)
	if code != 0 {
		t.Fatalf("first run: exit %d, stderr: %s", code, err1)
	}
	if strings.Contains(err1, "(cached)") {
		t.Fatalf("first run over an empty cache reported cached cells:\n%s", err1)
	}

	code, out2, err2 := runCLI(args...)
	if code != 0 {
		t.Fatalf("second run: exit %d, stderr: %s", code, err2)
	}
	if out1 != out2 {
		t.Errorf("cached rerun changed the report:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	steps := 0
	for _, line := range strings.Split(strings.TrimSpace(err2), "\n") {
		if strings.Contains(line, "fig6") {
			steps++
			if !strings.Contains(line, "(cached)") {
				t.Errorf("second-run cell not served from cache: %s", line)
			}
		}
	}
	if steps == 0 {
		t.Error("no progress lines seen on the cached rerun")
	}
}

// TestRunCachedMatchesDirect pins that the engine-backed path produces
// the same report as the plain experiments.Run path.
func TestRunCachedMatchesDirect(t *testing.T) {
	args := []string{"-quiet", "-cycles", "120000", "-benchmarks", "eon", "fig6"}
	code, direct, errOut := runCLI(args...)
	if code != 0 {
		t.Fatalf("direct run: exit %d, stderr: %s", code, errOut)
	}
	code, cached, errOut := runCLI(append([]string{"-cache-dir", t.TempDir()}, args...)...)
	if code != 0 {
		t.Fatalf("cached run: exit %d, stderr: %s", code, errOut)
	}
	if direct != cached {
		t.Errorf("engine-backed report differs from direct report:\n--- direct\n%s\n--- cached\n%s", direct, cached)
	}
}
