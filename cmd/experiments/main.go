// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-cycles N] [-benchmarks a,b,c] [-parallel N]
//	            [-cache-dir DIR] [-detail] [-cores N] [-scheduler a,b]
//	            [-cpuprofile FILE] [-memprofile FILE]
//	            [table1|table2|table3|table4|table5|table6|fig6|fig7|fig8|all|multicore]...
//
// Each matrix's benchmark × technique cells are independent runs; they
// are fanned out over -parallel workers (0 = one per CPU, 1 = serial).
// The assembled tables and figures are byte-identical at any setting —
// only the interleaving of progress lines changes.
//
// With -cache-dir the matrices run through the internal/service job
// engine backed by a persistent content-addressed result cache: cells
// already computed by an earlier invocation (or by a pipethermd daemon
// sharing the directory) are served from the cache instead of being
// re-simulated, marked "(cached)" in the progress output.
//
// Three extension experiments beyond the paper's evaluation run when
// named explicitly: "temporal" (stop-go vs DVFS fallbacks), "combined"
// (all three spatial techniques at once, on each floorplan), and
// "multicore" (task-to-core scheduling policies on a shared tiled die;
// see -cores and -scheduler).
//
// Each experiment runs its benchmark × technique matrix on the floorplan
// variant the paper uses and prints the corresponding table or figure
// data. Runs are deterministic; see EXPERIMENTS.md for reference output.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/multicore"
	"repro/internal/power"
	"repro/internal/regfile"
	"repro/internal/service"
	"repro/internal/trace"
)

// runOrder is the canonical output order; the paper interleaves tables
// and figures this way. The "all" alias covers everything up to fig8;
// the two extensions run only when named explicitly.
var runOrder = []string{"table1", "table2", "table3", "table4", "fig6", "table5", "fig7", "table6", "fig8", "temporal", "combined", "multicore"}

func main() {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main; it returns the process exit code
// (2 for usage errors, 1 for runtime failures).
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cycles = fs.Int64("cycles", experiments.DefaultCycles,
			"cycles per run (default covers ~120ms of accelerated thermal time)")
		benchList = fs.String("benchmarks", "",
			"comma-separated benchmark subset for fig6/fig7/fig8 (default: all 22)")
		quiet    = fs.Bool("quiet", false, "suppress per-run progress")
		bars     = fs.Bool("bars", false, "also render figures as ASCII bar charts")
		parallel = fs.Int("parallel", 0, "matrix workers (0 = one per CPU, 1 = serial)")
		cacheDir = fs.String("cache-dir", "",
			"run through the job engine with a persistent result cache in DIR; previously computed cells are not re-simulated")
		detail = fs.Bool("detail", false,
			"append per-cell utilization telemetry (issue-queue half occupancy, ALU grant shares, RF read shares) after each matrix")
		cores = fs.Int("cores", 4,
			"core count for the multicore experiment (tiled onto a shared die)")
		schedList = fs.String("scheduler", "",
			"comma-separated scheduler subset for the multicore experiment: roundrobin, random, coolest-first, threshold-migrate (default: all four)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to FILE")
		memprofile = fs.String("memprofile", "", "write a heap profile to FILE on exit")
	)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
			}
		}()
	}

	// Validate everything before simulating anything: a typo should
	// fail fast, not after an hour of matrix runs.
	names := fs.Args()
	if len(names) == 0 {
		names = []string{"all"}
	}
	ids := map[string]bool{}
	for _, a := range names {
		if a == "all" {
			for _, id := range runOrder[:9] {
				ids[id] = true
			}
			continue
		}
		if !known(a) {
			fmt.Fprintf(stderr, "experiments: unknown experiment %q (known: %s, all)\n", a, strings.Join(runOrder, ", "))
			return 2
		}
		ids[a] = true
	}
	var benches []string
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
		for _, b := range benches {
			if _, err := trace.ByName(b); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 2
			}
		}
	}
	var scheds []config.Scheduler
	if *schedList != "" {
		for _, name := range strings.Split(*schedList, ",") {
			var sch config.Scheduler
			if err := sch.UnmarshalText([]byte(strings.TrimSpace(name))); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
				return 2
			}
			scheds = append(scheds, sch)
		}
	}
	if ids["multicore"] {
		if err := (multicore.Params{Cores: *cores}).Normalized().Validate(); err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 2
		}
	}

	var progress io.Writer
	if !*quiet {
		progress = stderr
	}

	// With a cache directory, matrices run through the service engine so
	// cells computed by earlier invocations are reused.
	runMatrix := func(spec experiments.Spec) (*experiments.Matrix, error) {
		spec.Parallelism = *parallel
		return experiments.Run(ctx, spec, progress)
	}
	if *cacheDir != "" {
		cache, err := service.NewCache(1024, *cacheDir)
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
		workers := *parallel
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		engine := service.NewEngine(service.EngineConfig{Workers: workers, QueueDepth: 2048, Cache: cache})
		defer engine.Shutdown(context.Background())
		runMatrix = func(spec experiments.Spec) (*experiments.Matrix, error) {
			spec.Parallelism = *parallel
			return engine.RunMatrix(ctx, spec, progress)
		}
	}

	runAndPrint := func(spec experiments.Spec, render func(*experiments.Matrix) string) error {
		m, err := runMatrix(spec)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, render(m))
		if *bars && strings.HasPrefix(spec.ID, "fig") {
			fmt.Fprintln(stdout, m.BarChart(56))
		}
		if *detail {
			fmt.Fprintln(stdout, m.UtilizationReport())
		}
		return nil
	}

	for _, id := range runOrder {
		if !ids[id] {
			continue
		}
		var err error
		switch id {
		case "table1":
			printTable1(stdout)
		case "table2":
			printTable2(stdout)
		case "table3":
			printTable3(stdout)
		case "table4":
			err = runAndPrint(experiments.Table4(*cycles), (*experiments.Matrix).Table4Report)
		case "fig6":
			err = runAndPrint(experiments.Fig6(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "table5":
			err = runAndPrint(experiments.Table5(*cycles), (*experiments.Matrix).Table5Report)
		case "fig7":
			err = runAndPrint(experiments.Fig7(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "table6":
			err = runAndPrint(experiments.Table6(*cycles), (*experiments.Matrix).Table6Report)
		case "fig8":
			err = runAndPrint(experiments.Fig8(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "temporal":
			err = runAndPrint(experiments.Temporal(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "combined":
			for _, plan := range []config.FloorplanVariant{
				config.PlanIQConstrained, config.PlanALUConstrained, config.PlanRFConstrained,
			} {
				if err = runAndPrint(experiments.Combined(*cycles, plan, benches...), (*experiments.Matrix).FigureReport); err != nil {
					break
				}
			}
		case "multicore":
			spec := experiments.Multicore(*cycles, *cores, scheds...)
			spec.Parallelism = *parallel
			var mm *experiments.MulticoreMatrix
			if mm, err = experiments.RunMulticore(ctx, spec, progress); err == nil {
				fmt.Fprintln(stdout, mm.Report())
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "experiments: %v\n", err)
			return 1
		}
	}
	return 0
}

func known(id string) bool {
	for _, k := range runOrder {
		if id == k {
			return true
		}
	}
	return false
}

func printTable1(w io.Writer) {
	fmt.Fprintln(w, "Register-port mappings (Table 1)")
	fmt.Fprintf(w, "%-20s %-45s %-45s\n", "power-density", "balanced mapping", "priority mapping")
	for _, r := range regfile.Table1() {
		fmt.Fprintf(w, "%-20s %-45s %-45s\n", r.PowerDensity, r.Balanced, r.Priority)
	}
	fmt.Fprintln(w)
}

func printTable2(w io.Writer) {
	c := config.Default()
	fmt.Fprintln(w, "Processor parameters (Table 2)")
	rows := [][2]string{
		{"Out-of-order issue", fmt.Sprintf("%d instructions/cycle", c.IssueWidth)},
		{"Active list", fmt.Sprintf("%d entries (%d-entry LSQ)", c.ActiveList, c.LSQEntries)},
		{"Issue queue", fmt.Sprintf("%d-entries each Int and FP", c.IQEntries)},
		{"Caches", fmt.Sprintf("%dKB %d-way %d-cycle L1s (%d ports); %dM %d-way unified L2",
			c.L1SizeKB, c.L1Assoc, c.L1Latency, c.L1Ports, c.L2SizeKB/1024, c.L2Assoc)},
		{"Memory", fmt.Sprintf("%d cycles", c.MemLatency)},
		{"Heatsink thickness", fmt.Sprintf("%.1f mm", c.HeatsinkThicknessMM)},
		{"Convection resistance", fmt.Sprintf("%.1f K/W", c.ConvectionRes)},
		{"Thermal cooling time", fmt.Sprintf("%.0f ms", c.CoolingTimeMS)},
		{"Maximum temperature", fmt.Sprintf("%.0f K", c.MaxTempK)},
		{"Frequency, voltage, technology", fmt.Sprintf("%.1f GHz; %.1fV; %dnm",
			c.FrequencyGHz, c.VddVolts, c.TechnologyNM)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-32s %s\n", r[0], r[1])
	}
	fmt.Fprintln(w)
}

func printTable3(w io.Writer) {
	fmt.Fprintln(w, "Issue energy by component, nJ (Table 3)")
	for _, r := range power.Table3() {
		fmt.Fprintf(w, "  %-28s (%s) %7.4f\n", r.Component, r.Unit, r.NanoJ)
	}
	fmt.Fprintln(w)
}
