// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-cycles N] [-benchmarks a,b,c] [-parallel N] [table1|table2|table3|table4|table5|table6|fig6|fig7|fig8|all]...
//
// Each matrix's benchmark × technique cells are independent runs; they
// are fanned out over -parallel workers (0 = one per CPU, 1 = serial).
// The assembled tables and figures are byte-identical at any setting —
// only the interleaving of progress lines changes.
//
// Two extension experiments beyond the paper's evaluation run when named
// explicitly: "temporal" (stop-go vs DVFS fallbacks) and "combined" (all
// three spatial techniques at once, on each floorplan).
//
// Each experiment runs its benchmark × technique matrix on the floorplan
// variant the paper uses and prints the corresponding table or figure
// data. Runs are deterministic; see EXPERIMENTS.md for reference output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/regfile"
)

func main() {
	cycles := flag.Int64("cycles", experiments.DefaultCycles,
		"cycles per run (default covers ~120ms of accelerated thermal time)")
	benchList := flag.String("benchmarks", "",
		"comma-separated benchmark subset for fig6/fig7/fig8 (default: all 22)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress")
	bars := flag.Bool("bars", false, "also render figures as ASCII bar charts")
	parallel := flag.Int("parallel", 0, "matrix workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	var benches []string
	if *benchList != "" {
		benches = strings.Split(*benchList, ",")
	}

	ids := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6", "fig6", "fig7", "fig8"} {
				ids[id] = true
			}
			continue
		}
		// "temporal" and "combined" are extensions beyond the paper's
		// evaluation and run only when named explicitly.
		ids[a] = true
	}

	var progress *os.File
	if !*quiet {
		progress = os.Stderr
	}

	runAndPrint := func(spec experiments.Spec, render func(*experiments.Matrix) string) {
		spec.Parallelism = *parallel
		m, err := experiments.Run(spec, progress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(render(m))
		if *bars && strings.HasPrefix(spec.ID, "fig") {
			fmt.Println(m.BarChart(56))
		}
	}

	for _, id := range []string{"table1", "table2", "table3", "table4", "fig6", "table5", "fig7", "table6", "fig8", "temporal", "combined"} {
		if !ids[id] {
			continue
		}
		switch id {
		case "table1":
			printTable1()
		case "table2":
			printTable2()
		case "table3":
			printTable3()
		case "table4":
			runAndPrint(experiments.Table4(*cycles), (*experiments.Matrix).Table4Report)
		case "fig6":
			runAndPrint(experiments.Fig6(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "table5":
			runAndPrint(experiments.Table5(*cycles), (*experiments.Matrix).Table5Report)
		case "fig7":
			runAndPrint(experiments.Fig7(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "table6":
			runAndPrint(experiments.Table6(*cycles), (*experiments.Matrix).Table6Report)
		case "fig8":
			runAndPrint(experiments.Fig8(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "temporal":
			runAndPrint(experiments.Temporal(*cycles, benches...), (*experiments.Matrix).FigureReport)
		case "combined":
			for _, plan := range []config.FloorplanVariant{
				config.PlanIQConstrained, config.PlanALUConstrained, config.PlanRFConstrained,
			} {
				runAndPrint(experiments.Combined(*cycles, plan, benches...), (*experiments.Matrix).FigureReport)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
}

func printTable1() {
	fmt.Println("Register-port mappings (Table 1)")
	fmt.Printf("%-20s %-45s %-45s\n", "power-density", "balanced mapping", "priority mapping")
	for _, r := range regfile.Table1() {
		fmt.Printf("%-20s %-45s %-45s\n", r.PowerDensity, r.Balanced, r.Priority)
	}
	fmt.Println()
}

func printTable2() {
	c := config.Default()
	fmt.Println("Processor parameters (Table 2)")
	rows := [][2]string{
		{"Out-of-order issue", fmt.Sprintf("%d instructions/cycle", c.IssueWidth)},
		{"Active list", fmt.Sprintf("%d entries (%d-entry LSQ)", c.ActiveList, c.LSQEntries)},
		{"Issue queue", fmt.Sprintf("%d-entries each Int and FP", c.IQEntries)},
		{"Caches", fmt.Sprintf("%dKB %d-way %d-cycle L1s (%d ports); %dM %d-way unified L2",
			c.L1SizeKB, c.L1Assoc, c.L1Latency, c.L1Ports, c.L2SizeKB/1024, c.L2Assoc)},
		{"Memory", fmt.Sprintf("%d cycles", c.MemLatency)},
		{"Heatsink thickness", fmt.Sprintf("%.1f mm", c.HeatsinkThicknessMM)},
		{"Convection resistance", fmt.Sprintf("%.1f K/W", c.ConvectionRes)},
		{"Thermal cooling time", fmt.Sprintf("%.0f ms", c.CoolingTimeMS)},
		{"Maximum temperature", fmt.Sprintf("%.0f K", c.MaxTempK)},
		{"Frequency, voltage, technology", fmt.Sprintf("%.1f GHz; %.1fV; %dnm",
			c.FrequencyGHz, c.VddVolts, c.TechnologyNM)},
	}
	for _, r := range rows {
		fmt.Printf("  %-32s %s\n", r[0], r[1])
	}
	fmt.Println()
}

func printTable3() {
	fmt.Println("Issue energy by component, nJ (Table 3)")
	for _, r := range power.Table3() {
		fmt.Printf("  %-28s (%s) %7.4f\n", r.Component, r.Unit, r.NanoJ)
	}
	fmt.Println()
}
