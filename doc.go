// Package repro is a self-contained Go reproduction of Powell, Schuchman
// & Vijaykumar, "Balancing Resource Utilization to Mitigate Power Density
// in Processor Pipelines" (MICRO 2005).
//
// The module builds, from scratch and on the standard library only, every
// system the paper's evaluation depends on:
//
//   - a 6-wide out-of-order processor simulator with compacting issue
//     queues, serialized select trees, and replicated register files
//     (internal/pipeline and its substrates);
//   - per-event power accounting using the paper's Table 3 circuit
//     energies (internal/power);
//   - a HotSpot-style RC thermal network over an EV6-style floorplan with
//     per-resource-copy blocks (internal/thermal, internal/floorplan);
//   - deterministic synthetic workloads standing in for the paper's 22
//     SPEC2000 benchmarks (internal/trace);
//   - the paper's contribution, a dynamic thermal manager implementing
//     activity toggling, fine-grain ALU turnoff and register-file copy
//     turnoff with priority mapping (internal/core).
//
// The benchmarks in this package (bench_test.go) regenerate each of the
// paper's tables and figures on shortened windows; cmd/experiments runs
// the full-length matrices recorded in EXPERIMENTS.md. See README.md for
// a tour and DESIGN.md for the substitution and calibration rationale.
package repro
