// Command benchjson converts raw `go test -bench` output into the
// BENCH_pipeline.json record written by scripts/bench.sh: parsed
// per-sample numbers for machines, plus the verbatim text (benchstat's
// input format) so `benchstat` can diff two records directly.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// sample is one benchmark line.
type sample struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type record struct {
	Generated string              `json:"generated"`
	GoVersion string              `json:"go_version"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	CPU       string              `json:"cpu,omitempty"`
	Samples   map[string][]sample `json:"samples"`
	Benchstat string              `json:"benchstat"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson RAW_BENCH_OUTPUT")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec := record{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Samples:   map[string][]sample{},
		Benchstat: string(raw),
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := sample{Name: m[1]}
		s.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		s.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			s.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Samples[s.Name] = append(rec.Samples[s.Name], s)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
