// Command benchjson converts raw `go test -bench` output into the
// BENCH_pipeline.json record written by scripts/bench.sh: parsed
// per-sample numbers for machines, plus the verbatim text (benchstat's
// input format) so `benchstat` can diff two records directly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// sample is one benchmark line.
type sample struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type record struct {
	Generated string              `json:"generated"`
	GoVersion string              `json:"go_version"`
	GOOS      string              `json:"goos"`
	GOARCH    string              `json:"goarch"`
	CPU       string              `json:"cpu,omitempty"`
	Samples   map[string][]sample `json:"samples"`
	Benchstat string              `json:"benchstat"`

	// Baseline is a hand-curated record of a historical measurement
	// (currently the pre-stats-bus per-event-deposit meter). It is
	// carried over verbatim from the previous BENCH file via -prev so
	// regeneration never loses it; Summary is recomputed against it.
	Baseline json.RawMessage `json:"baseline,omitempty"`
	Summary  json.RawMessage `json:"summary,omitempty"`
}

// baselineSamples is the subset of the baseline section the summary
// computation needs.
type baselineSamples struct {
	Samples map[string][]sample `json:"samples"`
}

func median(ss []sample) float64 {
	ns := make([]float64, len(ss))
	for i, s := range ss {
		ns[i] = s.NsPerOp
	}
	sort.Float64s(ns)
	if n := len(ns); n%2 == 1 {
		return ns[n/2]
	} else {
		return (ns[n/2-1] + ns[n/2]) / 2
	}
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	prev := flag.String("prev", "", "previous BENCH json; its baseline section is carried over and the summary recomputed")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-prev OLD.json] RAW_BENCH_OUTPUT")
		os.Exit(2)
	}
	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec := record{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Samples:   map[string][]sample{},
		Benchstat: string(raw),
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rec.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := sample{Name: m[1]}
		s.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		s.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			s.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			s.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rec.Samples[s.Name] = append(rec.Samples[s.Name], s)
	}
	if *prev != "" {
		prevRaw, err := os.ReadFile(*prev)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		var old record
		if err := json.Unmarshal(prevRaw, &old); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		rec.Baseline = old.Baseline
		if len(old.Baseline) > 0 {
			var base baselineSamples
			if err := json.Unmarshal(old.Baseline, &base); err == nil {
				summary := map[string]any{}
				if bs, cs := base.Samples["BenchmarkPipelineCycle"], rec.Samples["BenchmarkPipelineCycle"]; len(bs) > 0 && len(cs) > 0 {
					bm, cm := median(bs), median(cs)
					summary["pipeline_cycle_median_ns_per_op"] = map[string]float64{
						"baseline": bm,
						"current":  cm,
					}
					summary["cycles_per_sec_gain_pct"] = float64(int(bm/cm*1000-1000)) / 10
				}
				// The service-layer A/B: jobs/sec speedup on the cache-hit
				// burst regime at >=16 submitters (workers are >=16 in the
				// benchmark) versus the recorded pre-shard baseline.
				if bs, cs := base.Samples["BenchmarkEngineThroughput/hit/sub16"], rec.Samples["BenchmarkEngineThroughput/hit/sub16"]; len(bs) > 0 && len(cs) > 0 {
					bm, cm := median(bs), median(cs)
					summary["engine_hit_sub16_median_ns_per_op"] = map[string]float64{
						"baseline": bm,
						"current":  cm,
					}
					summary["engine_hit_sub16_jobs_per_sec_speedup_x"] = float64(int(bm/cm*100)) / 100
				}
				if len(summary) > 0 {
					if rec.Summary, err = json.Marshal(summary); err != nil {
						fmt.Fprintln(os.Stderr, "benchjson:", err)
						os.Exit(1)
					}
				}
			}
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
