#!/usr/bin/env bash
# End-to-end check of the pipethermd service contract, run by the CI
# service-e2e job and usable locally:
#
#   1. boot the daemon on a random port with a persistent cache dir
#   2. submit a tiny cell and wait for it            -> done, not cached
#   3. submit the identical cell again               -> served from cache
#   4. fetch the result twice                        -> byte-identical JSON
#   5. /metrics                                      -> cache_hits >= 1
#   6. SIGTERM while a longer job is running         -> drains, exit 0
#
# Uses only curl/grep/sed/cmp. Any failed step fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- daemon log ---" >&2
    cat "$workdir/daemon.log" >&2 || true
    exit 1
}

echo "==> building pipethermd"
go build -o "$workdir/pipethermd" ./cmd/pipethermd

echo "==> starting daemon"
"$workdir/pipethermd" -addr 127.0.0.1:0 -workers 2 \
    -cache-dir "$workdir/cache" -drain-timeout 60s \
    >"$workdir/daemon.log" 2>&1 &
pid=$!

base=""
for _ in $(seq 1 200); do
    base="$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$workdir/daemon.log" | head -n1)"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.05
done
[ -n "$base" ] || fail "daemon never announced its address"
echo "    daemon at $base"

curl -fsS "$base/healthz" | grep -q '"ok"' || fail "healthz not ok"

body='{"benchmark":"eon","cycles":120000,"warmup":20000}'

echo "==> first submission (cold)"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/jobs?wait=1" >"$workdir/r1.json"
grep -q '"state":"done"' "$workdir/r1.json" || fail "first job not done: $(cat "$workdir/r1.json")"
grep -q '"cached":false' "$workdir/r1.json" || fail "first job claims cached: $(cat "$workdir/r1.json")"
key="$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' "$workdir/r1.json" | head -n1)"
[ -n "$key" ] || fail "no job key in first response"
echo "    job $key"

echo "==> second submission (must be a cache hit)"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "$base/v1/jobs?wait=1" >"$workdir/r2.json"
grep -q '"state":"done"' "$workdir/r2.json" || fail "second job not done"
grep -q '"cached":true' "$workdir/r2.json" || fail "second job not served from cache: $(cat "$workdir/r2.json")"

echo "==> result bytes are identical across fetches"
curl -fsS "$base/v1/jobs/$key/result" >"$workdir/res1.json"
curl -fsS "$base/v1/jobs/$key/result" >"$workdir/res2.json"
cmp "$workdir/res1.json" "$workdir/res2.json" || fail "result JSON not byte-identical"
grep -q '"benchmark":"eon"' "$workdir/res1.json" || fail "result missing benchmark field"

echo "==> report renders"
curl -fsS "$base/v1/jobs/$key/report" | grep -q 'IPC' || fail "report missing IPC line"

echo "==> metrics counted the cache hit"
curl -fsS "$base/metrics" >"$workdir/metrics.json"
grep -q '"cache_hits":[1-9]' "$workdir/metrics.json" || fail "no cache hit in metrics: $(cat "$workdir/metrics.json")"
grep -q '"jobs_completed":1' "$workdir/metrics.json" || fail "expected exactly one completed run: $(cat "$workdir/metrics.json")"

echo "==> on-disk cache entry exists"
[ -f "$workdir/cache/${key:0:2}/$key.json" ] || fail "no content-addressed cache file for $key"

echo "==> SIGTERM during a running job drains cleanly"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"benchmark":"eon","cycles":2000000,"warmup":100000}' \
    "$base/v1/jobs" >/dev/null
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" -eq 0 ] || fail "daemon exited $rc after SIGTERM"
grep -q 'drained' "$workdir/daemon.log" || fail "daemon log missing drain confirmation"

echo "PASS: service e2e"
