// Command benchgate is the soft benchmark-regression gate for CI. It
// compares a freshly measured BENCH record (scripts/bench.sh output)
// against the checked-in reference and:
//
//   - fails (exit 1) if any benchmark matching -allocfree allocates —
//     the cycle loop and the per-interval thermal Advance are
//     allocation-free by construction and must stay that way (the
//     steady-state solver benchmarks are exempt: they return a result
//     slice per solve by design and are gated on time only);
//   - fails if a benchmark's median ns/op regressed more than -fail
//     percent against the reference AND both records were measured on the
//     same CPU model;
//   - warns (exit 0, annotated output) for regressions above -warn
//     percent, or for any regression when the CPU models differ — a
//     cross-machine time comparison (the usual CI situation: the
//     reference is recorded on a developer box) is too noisy to fail on,
//     but the trend is still worth surfacing in the log.
//
// Usage:
//
//	go run ./scripts/benchgate -ref BENCH_pipeline.json -new /tmp/bench.json [-warn 5] [-fail 15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

type sample struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type record struct {
	CPU     string              `json:"cpu"`
	Samples map[string][]sample `json:"samples"`
}

func load(path string) (*record, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Samples) == 0 {
		return nil, fmt.Errorf("%s: no benchmark samples", path)
	}
	return &r, nil
}

func median(ss []sample) float64 {
	ns := make([]float64, len(ss))
	for i, s := range ss {
		ns[i] = s.NsPerOp
	}
	sort.Float64s(ns)
	if n := len(ns); n%2 == 1 {
		return ns[n/2]
	} else {
		return (ns[n/2-1] + ns[n/2]) / 2
	}
}

func main() {
	refPath := flag.String("ref", "BENCH_pipeline.json", "checked-in reference record")
	newPath := flag.String("new", "", "freshly measured record to gate")
	warnPct := flag.Float64("warn", 5, "warn above this median regression (percent)")
	failPct := flag.Float64("fail", 15, "fail above this median regression (percent, same-CPU records only)")
	allocFree := flag.String("allocfree", `^Benchmark(PipelineCycle|SimInterval|ThermalAdvance)\b`,
		"benchmarks matching this regexp must report 0 B/op and 0 allocs/op")
	flag.Parse()
	allocRE, err := regexp.Compile(*allocFree)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate: bad -allocfree:", err)
		os.Exit(2)
	}
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -new is required")
		os.Exit(2)
	}
	ref, err := load(*refPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	failed := false

	// Allocation gate: machine-independent, scoped to the benchmarks
	// whose contract is zero heap traffic per op.
	for name, ss := range cur.Samples {
		if !allocRE.MatchString(name) {
			continue
		}
		for _, s := range ss {
			if s.AllocsPerOp != 0 || s.BytesPerOp != 0 {
				fmt.Printf("FAIL %s: %d B/op, %d allocs/op — the hot loop must stay allocation-free\n",
					name, s.BytesPerOp, s.AllocsPerOp)
				failed = true
				break
			}
		}
	}

	sameCPU := ref.CPU != "" && ref.CPU == cur.CPU
	if !sameCPU {
		fmt.Printf("note: reference CPU %q != measured CPU %q; time regressions warn only\n", ref.CPU, cur.CPU)
	}

	names := make([]string, 0, len(ref.Samples))
	for name := range ref.Samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs, ok := cur.Samples[name]
		if !ok {
			fmt.Printf("WARN %s: present in reference, missing from new record\n", name)
			continue
		}
		refMed, curMed := median(ref.Samples[name]), median(cs)
		deltaPct := (curMed - refMed) / refMed * 100
		switch {
		case sameCPU && deltaPct > *failPct:
			fmt.Printf("FAIL %s: median %.1f → %.1f ns/op (%+.1f%% > %.0f%%)\n",
				name, refMed, curMed, deltaPct, *failPct)
			failed = true
		case deltaPct > *warnPct:
			fmt.Printf("WARN %s: median %.1f → %.1f ns/op (%+.1f%%)\n",
				name, refMed, curMed, deltaPct)
		default:
			fmt.Printf("ok   %s: median %.1f → %.1f ns/op (%+.1f%%)\n",
				name, refMed, curMed, deltaPct)
		}
	}
	if failed {
		os.Exit(1)
	}
}
