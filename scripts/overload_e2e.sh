#!/usr/bin/env bash
# Overload-protection and graceful-degradation end-to-end check for
# pipethermd, run by the CI overload job and usable locally:
#
#   1. reference run: boot a roomy daemon and run every cell used below
#      to completion, saving each cell's result bytes
#   2. burst run: boot a daemon with one worker and a 4-deep queue, then
#      submit the same 16 cells back to back (4x the queue capacity).
#      Some must be rejected with 429 + a Retry-After hint; every
#      accepted cell must complete with result bytes identical to the
#      unloaded reference run — load sheds, it never corrupts
#   3. deadline shed: with the queue refilled, a submission carrying an
#      unmeetable deadline_ms is rejected up front with 429 and counted
#      in jobs_shed_admission
#   4. disk yank: boot a durable daemon with the -chaos-disk-fault seam,
#      then create the sentinel so every cache/journal disk touch fails
#      with ENOSPC. The daemon must trip its breakers and degrade —
#      durability "none", health "degraded" — while still answering
#      work, and /healthz must never leave 200. Removing the sentinel
#      must bring durability back to "journaled" on its own
#   5. recovery is real: a post-recovery cell survives SIGKILL via the
#      re-opened disk layers — the restarted daemon replays its journal
#      and serves the cell from the disk cache byte-identical
#
# Uses only curl/grep/sed/cmp. Any failed step fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in "$workdir"/daemon*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# start_daemon <logfile> <extra flags...>: boots a daemon and sets
# $pid/$base.
start_daemon() {
    local log="$1"
    shift
    "$workdir/pipethermd" -addr 127.0.0.1:0 "$@" \
        >"$log" 2>&1 &
    pid=$!
    base=""
    for _ in $(seq 1 200); do
        base="$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$log" | head -n1)"
        [ -n "$base" ] && break
        kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup ($log)"
        sleep 0.05
    done
    [ -n "$base" ] || fail "daemon never announced its address ($log)"
}

stop_daemon() {
    kill -TERM "$pid"
    wait "$pid" || true
    pid=""
}

# cell <cycles>: the JSON body for one distinct burst cell.
cell() {
    echo "{\"benchmark\":\"eon\",\"cycles\":$1,\"warmup\":50000}"
}

# healthz_ok: liveness must answer 200 no matter how degraded the
# daemon is; anything else fails the run on the spot.
healthz_ok() {
    local code
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/healthz")"
    [ "$code" = "200" ] || fail "healthz answered $code during $1"
}

# wait_done <key>: polls a job until it reports done.
wait_done() {
    local key="$1"
    for _ in $(seq 1 600); do
        if curl -fsS "$base/v1/jobs/$key" 2>/dev/null | grep -q '"state":"done"'; then
            return 0
        fi
        sleep 0.1
    done
    fail "cell $key never completed"
}

echo "==> building pipethermd"
go build -o "$workdir/pipethermd" ./cmd/pipethermd

echo "==> reference run (unloaded)"
start_daemon "$workdir/daemon-ref.log" -workers 2 -queue 64
refkeys=""
for i in $(seq 0 15); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(cell $((6000000 + i)))" "$base/v1/jobs?wait=1" >"$workdir/ref-resp-$i.json"
    key="$(grep -o '"key":"[0-9a-f]\{64\}"' "$workdir/ref-resp-$i.json" | head -n1 | grep -o '[0-9a-f]\{64\}')"
    [ -n "$key" ] || fail "reference cell $i returned no key: $(cat "$workdir/ref-resp-$i.json")"
    curl -fsS "$base/v1/jobs/$key/result" >"$workdir/ref-$key.json"
    refkeys="$refkeys $key"
done
stop_daemon
echo "    16 reference cells saved"

echo "==> burst at 4x queue capacity (1 worker, queue 4)"
start_daemon "$workdir/daemon-burst.log" -workers 1 -queue 4
accepted=""
shed=0
for i in $(seq 0 15); do
    code="$(curl -s -o "$workdir/burst-resp-$i.json" -D "$workdir/burst-hdr-$i.txt" \
        -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
        -d "$(cell $((6000000 + i)))" "$base/v1/jobs")"
    case "$code" in
    202 | 200)
        key="$(grep -o '"key":"[0-9a-f]\{64\}"' "$workdir/burst-resp-$i.json" | head -n1 | grep -o '[0-9a-f]\{64\}')"
        [ -n "$key" ] || fail "accepted burst cell $i returned no key"
        accepted="$accepted $key"
        ;;
    429)
        retry="$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\).*/\1/p' "$workdir/burst-hdr-$i.txt" | head -n1)"
        [ -n "$retry" ] && [ "$retry" -ge 1 ] || fail "429 without a usable Retry-After (got '$retry')"
        shed=$((shed + 1))
        ;;
    *)
        fail "burst cell $i answered $code: $(cat "$workdir/burst-resp-$i.json")"
        ;;
    esac
done
[ "$shed" -ge 1 ] || fail "a 4x burst shed nothing"
naccepted="$(echo "$accepted" | wc -w)"
[ "$naccepted" -ge 1 ] || fail "a 4x burst accepted nothing"
echo "    $naccepted accepted, $shed shed with Retry-After"

echo "==> every accepted cell completes byte-identical to the unloaded run"
for key in $accepted; do
    wait_done "$key"
    curl -fsS "$base/v1/jobs/$key/result" >"$workdir/burst-$key.json"
    cmp "$workdir/ref-$key.json" "$workdir/burst-$key.json" \
        || fail "cell $key differs between the loaded and unloaded runs"
done

echo "==> an unmeetable deadline is shed at admission"
# Refill the queue so the wait estimate (depth x completed-job EWMA) is
# far beyond a 1ms deadline, then ask for exactly that.
for i in $(seq 0 2); do
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(cell $((7000000 + i)))" "$base/v1/jobs" >/dev/null
done
code="$(curl -s -o "$workdir/deadline-resp.json" -D "$workdir/deadline-hdr.txt" \
    -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"benchmark":"eon","cycles":7100000,"warmup":50000,"deadline_ms":1}' "$base/v1/jobs")"
[ "$code" = "429" ] || fail "unmeetable deadline answered $code: $(cat "$workdir/deadline-resp.json")"
grep -q 'deadline' "$workdir/deadline-resp.json" || fail "429 body does not mention the deadline"
grep -qi '^retry-after:' "$workdir/deadline-hdr.txt" || fail "deadline 429 carries no Retry-After"
curl -fsS "$base/metrics" | grep -q '"jobs_shed_admission":[1-9]' \
    || fail "jobs_shed_admission did not count the shed"
stop_daemon

echo "==> disk yank: breakers trip, daemon degrades but keeps serving"
sentinel="$workdir/disk-fault"
start_daemon "$workdir/daemon-disk.log" \
    -workers 2 -cache-dir "$workdir/cache" -journal-dir "$workdir/journal" \
    -chaos-disk-fault "$sentinel" -breaker-errors 2 -breaker-cooldown 500ms
curl -fsS "$base/statusz" >"$workdir/statusz-healthy.json"
grep -q '"durability":"journaled"' "$workdir/statusz-healthy.json" \
    || fail "daemon did not start journaled: $(cat "$workdir/statusz-healthy.json")"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$(cell 8000000)" "$base/v1/jobs?wait=1" | grep -q '"state":"done"' \
    || fail "pre-fault cell did not complete"

touch "$sentinel"
# Drive disk I/O into the fault until the journal breaker opens; the
# daemon must keep answering the very submissions that trip it.
degraded=""
for i in $(seq 1 20); do
    healthz_ok "the disk fault"
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(cell $((8100000 + i)))" "$base/v1/jobs?wait=1" >"$workdir/fault-resp-$i.json" \
        || fail "submission failed outright during the disk fault"
    grep -q '"state":"done"' "$workdir/fault-resp-$i.json" \
        || fail "cell did not complete during the disk fault: $(cat "$workdir/fault-resp-$i.json")"
    curl -fsS "$base/statusz" >"$workdir/statusz-fault.json"
    if grep -q '"durability":"none"' "$workdir/statusz-fault.json"; then
        degraded=1
        break
    fi
    sleep 0.1
done
[ -n "$degraded" ] || fail "durability never degraded to none: $(cat "$workdir/statusz-fault.json")"
grep -q '"state":"degraded"' "$workdir/statusz-fault.json" \
    || fail "health machine not degraded: $(cat "$workdir/statusz-fault.json")"
# Work submitted while the breaker is open skips the journal entirely;
# push a little more through and the skip counter must move.
skipped=""
for i in $(seq 1 20); do
    healthz_ok "the open breaker"
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(cell $((8200000 + i)))" "$base/v1/jobs?wait=1" >/dev/null \
        || fail "submission failed with the breaker open"
    if curl -fsS "$base/metrics" | grep -q '"journal_skipped":[1-9]'; then
        skipped=1
        break
    fi
    sleep 0.05
done
[ -n "$skipped" ] || fail "journal_skipped did not count the unjournaled work"
code="$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")"
[ "$code" = "200" ] || fail "degraded daemon dropped out of readiness ($code)"
echo "    degraded: durability none, still serving, healthz stayed 200"

echo "==> disk returns: durability recovers on its own"
rm "$sentinel"
recovered=""
for _ in $(seq 1 100); do
    healthz_ok "recovery"
    curl -fsS "$base/statusz" >"$workdir/statusz-recovered.json"
    if grep -q '"durability":"journaled"' "$workdir/statusz-recovered.json"; then
        recovered=1
        break
    fi
    sleep 0.1
done
[ -n "$recovered" ] || fail "durability never recovered: $(cat "$workdir/statusz-recovered.json")"
echo "    durability back to journaled"

echo "==> recovery is real: a post-recovery cell survives SIGKILL"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$(cell 9000000)" "$base/v1/jobs?wait=1" >"$workdir/post-resp.json"
grep -q '"state":"done"' "$workdir/post-resp.json" || fail "post-recovery cell did not complete"
postkey="$(grep -o '"key":"[0-9a-f]\{64\}"' "$workdir/post-resp.json" | head -n1 | grep -o '[0-9a-f]\{64\}')"
curl -fsS "$base/v1/jobs/$postkey/result" >"$workdir/post-$postkey.json"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

start_daemon "$workdir/daemon-restart.log" \
    -workers 2 -cache-dir "$workdir/cache" -journal-dir "$workdir/journal"
grep -q 'journal: replayed' "$workdir/daemon-restart.log" || fail "restart did not replay the journal"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$(cell 9000000)" "$base/v1/jobs?wait=1" >/dev/null
curl -fsS "$base/v1/jobs/$postkey/result" >"$workdir/restart-$postkey.json"
cmp "$workdir/post-$postkey.json" "$workdir/restart-$postkey.json" \
    || fail "post-recovery cell differs across the restart"
curl -fsS "$base/metrics" | grep -q '"disk_hits":[1-9]' \
    || fail "restarted daemon did not serve the cell from the recovered disk cache"
stop_daemon

echo "PASS: overload e2e"
