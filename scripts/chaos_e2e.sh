#!/usr/bin/env bash
# Crash-recovery end-to-end check for pipethermd, run by the CI chaos
# job and usable locally:
#
#   1. reference run: boot a daemon, run a fig6 batch to completion,
#      save every cell's result bytes, shut down cleanly
#   2. chaos run: boot a daemon with fresh cache + journal dirs and the
#      sharded dispatcher spread wide (4 workers × 4 shards), submit
#      the same batch asynchronously, SIGKILL the process mid-batch
#   3. restart the daemon over the same -cache-dir/-journal-dir with the
#      queue squeezed below the pending backlog, so journal replay must
#      take its blocking-admission path: the journal replays the
#      unfinished jobs (readyz gates on it), and every cell completes
#      with result bytes identical to the uninterrupted reference run
#
# Uses only curl/grep/sed/cmp. Any failed step fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir="$(mktemp -d)"
pid=""
cleanup() {
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    for log in "$workdir"/daemon*.log; do
        echo "--- $log ---" >&2
        cat "$log" >&2 || true
    done
    exit 1
}

# start_daemon <logfile> <extra flags...>: boots a daemon and sets
# $pid/$base.
start_daemon() {
    local log="$1"
    shift
    "$workdir/pipethermd" -addr 127.0.0.1:0 -workers 2 "$@" \
        >"$log" 2>&1 &
    pid=$!
    base=""
    for _ in $(seq 1 200); do
        base="$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$log" | head -n1)"
        [ -n "$base" ] && break
        kill -0 "$pid" 2>/dev/null || fail "daemon exited during startup ($log)"
        sleep 0.05
    done
    [ -n "$base" ] || fail "daemon never announced its address ($log)"
}

stop_daemon() {
    kill -TERM "$pid"
    wait "$pid" || true
    pid=""
}

batch='{"experiment":"fig6","benchmarks":["eon","gzip","art","mesa"],"cycles":4000000,"warmup":50000}'

echo "==> building pipethermd"
go build -o "$workdir/pipethermd" ./cmd/pipethermd

echo "==> reference run (uninterrupted)"
start_daemon "$workdir/daemon-ref.log" -cache-dir "$workdir/cache-ref"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$batch" \
    "$base/v1/jobs?wait=1" >"$workdir/batch-ref.json"
grep -q '"state":"done"' "$workdir/batch-ref.json" || fail "reference batch not done: $(cat "$workdir/batch-ref.json")"
# Cell keys only: in the batch status JSON each cell's key is followed
# by its benchmark, which the batch's own key is not.
keys="$(grep -o '"key":"[0-9a-f]\{64\}","benchmark"' "$workdir/batch-ref.json" | grep -o '[0-9a-f]\{64\}' | sort -u)"
nkeys="$(echo "$keys" | wc -l)"
[ "$nkeys" -eq 8 ] || fail "reference batch has $nkeys cell keys, want 8"
for key in $keys; do
    curl -fsS "$base/v1/jobs/$key/result" >"$workdir/ref-$key.json"
done
stop_daemon
echo "    $nkeys reference cells saved"

echo "==> chaos run: SIGKILL mid-batch (sharded dispatch, 4 workers x 4 shards)"
start_daemon "$workdir/daemon-chaos1.log" \
    -workers 4 -shards 4 \
    -cache-dir "$workdir/cache" -journal-dir "$workdir/journal"
curl -fsS "$base/metrics" | grep -q '"jobs_stolen":' \
    || fail "metrics is missing the jobs_stolen counter"
curl -fsS "$base/metrics" | grep -q '"shards":\[' \
    || fail "metrics is missing the per-shard section"
curl -fsS -X POST -H 'Content-Type: application/json' -d "$batch" \
    "$base/v1/jobs" >/dev/null
# SIGKILL as soon as some cells are done but not all: that leaves done
# records, a running job to interrupt, and queued submits to replay.
completed=0
for _ in $(seq 1 400); do
    completed="$(curl -fsS "$base/metrics" | sed -n 's/.*"jobs_completed":\([0-9]*\).*/\1/p')"
    [ -n "$completed" ] && [ "$completed" -ge 1 ] && break
    sleep 0.05
done
[ -n "$completed" ] && [ "$completed" -ge 1 ] || fail "no cell completed before the kill"
[ "$completed" -lt 8 ] || fail "batch finished before the kill; nothing to interrupt"
echo "    killing after $completed/8 cells"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# -queue 2 is smaller than the pending backlog can be (up to 7 jobs),
# so replay cannot admit everything at once: it must block on freed
# capacity and feed jobs in as workers drain them.
echo "==> restart over the same cache + journal (queue squeezed to 2)"
start_daemon "$workdir/daemon-chaos2.log" \
    -workers 4 -shards 4 -queue 2 \
    -cache-dir "$workdir/cache" -journal-dir "$workdir/journal"
grep -q 'journal: replayed' "$workdir/daemon-chaos2.log" || fail "restart did not replay the journal"
pending="$(sed -n 's/.*, \([0-9]*\) pending jobs resubmitted.*/\1/p' "$workdir/daemon-chaos2.log" | head -n1)"
[ -n "$pending" ] && [ "$pending" -ge 1 ] || fail "no pending jobs replayed after SIGKILL (got '$pending')"
echo "    $pending interrupted jobs resubmitted"

for _ in $(seq 1 200); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/readyz")"
    [ "$code" = "200" ] && break
    sleep 0.05
done
[ "$code" = "200" ] || fail "readyz never recovered after replay (last: $code)"

echo "==> every cell completes byte-identical to the reference"
for key in $keys; do
    done_=""
    for _ in $(seq 1 600); do
        if curl -fsS "$base/v1/jobs/$key" 2>/dev/null | grep -q '"state":"done"'; then
            done_=1
            break
        fi
        sleep 0.1
    done
    [ -n "$done_" ] || fail "cell $key never completed after the restart"
    curl -fsS "$base/v1/jobs/$key/result" >"$workdir/chaos-$key.json"
    cmp "$workdir/ref-$key.json" "$workdir/chaos-$key.json" \
        || fail "cell $key differs from the uninterrupted run"
done

echo "==> journal settles: a third start replays nothing"
stop_daemon
start_daemon "$workdir/daemon-chaos3.log" \
    -cache-dir "$workdir/cache" -journal-dir "$workdir/journal"
grep -q ' 0 pending jobs resubmitted' "$workdir/daemon-chaos3.log" \
    || fail "journal did not settle after recovery: $(grep 'journal:' "$workdir/daemon-chaos3.log")"
stop_daemon

echo "PASS: chaos e2e"
