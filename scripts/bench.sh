#!/usr/bin/env bash
# Run the hot-loop microbenchmarks and record the results.
#
# Usage:
#
#   scripts/bench.sh [-count N] [-out FILE] [pattern]
#
# Runs the gated microbenchmarks (default: the cycle hot loop —
# BenchmarkPipelineCycle and BenchmarkSimInterval — plus the thermal
# axis, BenchmarkThermalAdvance and BenchmarkThermalSteadyState at
# N=30/300/3000, the multi-core lockstep interval,
# BenchmarkMulticoreInterval at 1/2/4/8 cores, and the service-layer
# load generator, BenchmarkEngineThroughput in internal/service, at
# hit/miss/mixed × 1/4/16/64 submitters) with -benchmem -count=5
# and writes BENCH_pipeline.json:
# the raw `go test -bench` text (benchstat's input format) alongside
# machine-readable per-run samples. Compare two checkouts with:
#
#   scripts/bench.sh -out /tmp/old.json            # on the baseline
#   scripts/bench.sh -out /tmp/new.json            # on the change
#   benchstat <(jq -r .benchstat /tmp/old.json) <(jq -r .benchstat /tmp/new.json)
#
# The benchmarks are single-threaded simulator loops, so run on an idle
# machine for stable numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=5
OUT=BENCH_pipeline.json
PATTERN='BenchmarkPipelineCycle|BenchmarkSimInterval|BenchmarkThermalAdvance|BenchmarkThermalSteadyState|BenchmarkMulticoreInterval|BenchmarkEngineThroughput'
while [[ $# -gt 0 ]]; do
  case "$1" in
    -count) COUNT="$2"; shift 2 ;;
    -out) OUT="$2"; shift 2 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) PATTERN="$1"; shift ;;
  esac
done

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
echo "bench: running ${PATTERN} with -benchmem -count=${COUNT}" >&2
# The full pattern at -count=5 runs past go test's default 10m timeout.
# The root package holds the simulator loops; internal/service holds the
# engine throughput load generator.
go test -run '^$' -bench "${PATTERN}" -benchmem -count="${COUNT}" -timeout 40m . ./internal/service | tee "$RAW" >&2

# Assemble the JSON record: environment, per-sample parse, and the raw
# benchstat-compatible text. An existing record's hand-curated baseline
# section is carried over and the summary recomputed against it.
PREV=()
if [[ -s "$OUT" ]]; then
  PREV=(-prev "$OUT")
fi
NEW=$(mktemp)
go run ./scripts/benchjson "${PREV[@]}" "$RAW" > "$NEW"
mv "$NEW" "$OUT"
echo "bench: wrote $OUT" >&2
