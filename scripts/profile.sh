#!/usr/bin/env bash
# Profile the cycle hot loop.
#
# Usage:
#
#   scripts/profile.sh [-bench PATTERN] [-time DUR] [OUT.prof]
#
# Runs the given benchmark (default BenchmarkPipelineCycle) with a CPU
# profile and prints the pprof top table. The profile file is kept (default
# /tmp/pipethermal_cpu.prof) for interactive digging:
#
#   go tool pprof -http=:8080 /tmp/pipethermal_cpu.prof
#   go tool pprof -list 'Queue..compact' /tmp/pipethermal_cpu.prof
#
# The simulator is a single-threaded pointer-chasing loop: flat self time
# concentrates in the issue-queue compaction, the wakeup lists, and the
# trace generator's rng draws. See DESIGN.md ("Scheduler data structures
# vs. modeled events") before optimizing — many hot counters are modeled
# hardware events whose counts are locked by the golden tests.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH='BenchmarkPipelineCycle$'
TIME=3s
OUT=/tmp/pipethermal_cpu.prof
while [[ $# -gt 0 ]]; do
  case "$1" in
    -bench) BENCH="$2"; shift 2 ;;
    -time) TIME="$2"; shift 2 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) OUT="$1"; shift ;;
  esac
done

echo "profile: running ${BENCH} for ${TIME}" >&2
go test -run '^$' -bench "${BENCH}" -benchtime "${TIME}" -cpuprofile "${OUT}" . >&2
go tool pprof -top -nodecount=25 "${OUT}"
echo "profile: wrote ${OUT}" >&2
