package trace

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// Generator produces a deterministic dynamic instruction stream for a
// profile. The same (profile, seed) always yields the same stream, so
// different machine configurations can be compared on identical work.
type Generator struct {
	prof Profile
	r    *rng.Source

	seq     uint64
	pc      uint64
	nextReg int

	// lastDest[k] is the destination register of dynamic instruction
	// seq-1-k (bounded history) for dependency-distance sourcing, split by
	// register file.
	intHist []int8
	fpHist  []int8

	// Memory cursors.
	coldPtr uint64

	// Branch sites: per-site PC, bias class, fixed target. Sites are
	// visited mostly in cursor order (code loops over its branches),
	// which gives the global branch history the correlation a real
	// program's history has; a fraction of visits jump randomly.
	sitePCs     []uint64
	siteBias    []float64
	siteTargets []uint64
	siteCursor  int

	// Phase state. Each phase draws its own intensity multiplier so that
	// burst peaks vary run-to-run the way real program phases do; thermal
	// crossings then become occasional and marginal rather than
	// all-or-nothing.
	phaseLeft  int
	inBurst    bool
	phaseScale float64
}

const (
	histLen   = 64
	hotBase   = 0x1000_0000
	warmBase  = 0x2000_0000
	codeBase  = 0x0040_0000
	lineBytes = 64
)

// ColdBase is the start of the streaming ("cold") address region. Cache
// warmup must not touch addresses at or above ColdBase: the stream is
// compulsory-miss traffic by construction, and a warmed stream would
// replay as hits. It equals isa.StreamBase so the architectural memory
// image stores the stream densely.
const ColdBase uint64 = isa.StreamBase

// NewGenerator builds a generator for the profile, seeded from the
// profile's own seed (deterministic across runs).
func NewGenerator(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:    p,
		r:       rng.New(p.Seed),
		intHist: make([]int8, histLen),
		fpHist:  make([]int8, histLen),
	}
	for i := range g.intHist {
		g.intHist[i] = int8(i % isa.NumIntRegs)
		g.fpHist[i] = int8(i % isa.NumFPRegs)
	}
	g.sitePCs = make([]uint64, p.BranchSites)
	g.siteBias = make([]float64, p.BranchSites)
	g.siteTargets = make([]uint64, p.BranchSites)
	// Branch sites sit on a regular stride through the code footprint:
	// compiled code spaces its branches roughly evenly, and the stride
	// keeps distinct sites from colliding in the predictor's PC-indexed
	// tables, which random placement would force at a high rate.
	stride := p.CodeFootprint / p.BranchSites
	stride -= stride % 4
	if stride < 8 {
		stride = 8
	}
	// An odd instruction-slot stride keeps sites from aliasing in any
	// power-of-two-indexed predictor table.
	if (stride/4)%2 == 0 {
		stride += 4
	}
	for i := range g.sitePCs {
		g.sitePCs[i] = codeBase + uint64(i*stride)
		g.siteTargets[i] = g.sitePCs[i] + uint64(4+4*g.r.Intn(64))
		if g.r.Bool(p.BiasedFrac) {
			// Strongly biased site: taken or not-taken dominant.
			if g.r.Bool(p.TakenBias) {
				g.siteBias[i] = 0.985
			} else {
				g.siteBias[i] = 0.015
			}
		} else {
			g.siteBias[i] = 0.5 // unpredictable site
		}
	}
	if p.PhaseLen > 0 {
		g.phaseLeft = p.PhaseLen
	}
	g.phaseScale = 1
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// depDist returns the current mean dependency distance, honoring phases.
// The per-phase intensity multiplier scales the burst distance, so
// successive bursts have different depths.
func (g *Generator) depDist() float64 {
	if g.prof.PhaseLen > 0 && g.inBurst {
		d := g.prof.BurstDepDist * g.phaseScale
		if d < 1 {
			d = 1
		}
		return d
	}
	return g.prof.DepDist
}

// srcReg picks a source register at a geometric dependency distance from
// the history of the given register file.
func (g *Generator) srcReg(hist []int8) int8 {
	return g.srcRegAt(hist, g.depDist())
}

// addrReg picks a memory-operation base register at the profile's
// address-dependency distance (typically much older than value operands).
func (g *Generator) addrReg() int8 {
	return g.srcRegAt(g.intHist, g.depDist()*g.prof.AddrDepFactor)
}

func (g *Generator) srcRegAt(hist []int8, mean float64) int8 {
	d := g.r.Geometric(mean)
	if d > histLen {
		d = histLen
	}
	return hist[(int(g.seq)+histLen-d)%histLen]
}

// destReg allocates the next destination register round-robin, recording
// it in the history ring.
func (g *Generator) destReg(hist []int8, nregs int) int8 {
	g.nextReg++
	reg := int8(g.nextReg % nregs)
	hist[int(g.seq)%histLen] = reg
	return reg
}

// carryHistories keeps BOTH register-history rings current for the slot of
// the instruction just generated: a ring slot not written by a destination
// this instruction carries the previous slot's register forward. Without
// this, dependency distances in the less-active register file dereference
// stale ring entries and silently stretch (inflating ILP).
func (g *Generator) carryHistories(wroteInt, wroteFP bool) {
	i := int(g.seq) % histLen
	prev := (i + histLen - 1) % histLen
	if !wroteInt {
		g.intHist[i] = g.intHist[prev]
	}
	if !wroteFP {
		g.fpHist[i] = g.fpHist[prev]
	}
}

// memAddr draws an effective address from the profile's working sets.
func (g *Generator) memAddr() uint64 {
	x := g.r.Float64()
	switch {
	case x < g.prof.ColdFrac:
		// Streaming access: advance word by word through memory, so one
		// cache line serves several accesses before the stream misses.
		g.coldPtr += 8
		return ColdBase + g.coldPtr
	case x < g.prof.ColdFrac+g.prof.WarmFrac:
		return warmBase + uint64(g.r.Intn(g.prof.WarmSetBytes/8))*8
	default:
		return hotBase + uint64(g.r.Intn(g.prof.HotSetBytes/8))*8
	}
}

// Next produces the next dynamic instruction.
func (g *Generator) Next() isa.Inst {
	// Phase bookkeeping.
	if g.prof.PhaseLen > 0 {
		g.phaseLeft--
		if g.phaseLeft <= 0 {
			// Draw the next phase's length (±30%) and intensity
			// (0.6x-1.4x of the nominal burst depth).
			jitter := 0.7 + 0.6*g.r.Float64()
			if g.inBurst {
				g.inBurst = false
				g.phaseLeft = int(float64(g.prof.PhaseLen) * (1 - g.prof.BurstFrac) * jitter)
			} else {
				g.inBurst = true
				g.phaseLeft = int(float64(g.prof.PhaseLen) * g.prof.BurstFrac * jitter)
				g.phaseScale = 0.75 + 0.5*g.r.Float64()
			}
			if g.phaseLeft <= 0 {
				g.phaseLeft = 1
			}
		}
	}

	in := isa.Inst{Seq: g.seq, PC: codeBase + (g.pc % uint64(g.prof.CodeFootprint))}
	g.pc += 4

	p := g.prof
	x := g.r.Float64()
	wroteInt, wroteFP := false, false
	switch {
	case x < p.FracLoad:
		in.Src1 = g.addrReg()
		in.Src2 = isa.NoReg
		in.Addr = g.memAddr()
		if g.r.Bool(p.FracLoadFP) {
			in.Op = isa.OpLoadFP
			in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
			wroteFP = true
		} else {
			in.Op = isa.OpLoad
			in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
			wroteInt = true
		}
	case x < p.FracLoad+p.FracStore:
		in.Op = isa.OpStore
		in.Src1 = g.addrReg()
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = isa.NoReg
		in.Addr = g.memAddr()
	case x < p.FracLoad+p.FracStore+p.FracBranch:
		in.Op = isa.OpBr
		var site int
		if g.r.Bool(0.9) {
			g.siteCursor++
			if g.siteCursor >= len(g.sitePCs) {
				g.siteCursor = 0
			}
			site = g.siteCursor
		} else {
			site = g.r.Intn(len(g.sitePCs))
		}
		in.PC = g.sitePCs[site]
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = isa.NoReg
		in.Dest = isa.NoReg
		in.Taken = g.r.Bool(g.siteBias[site])
		in.Target = g.siteTargets[site]
	case x < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPAdd:
		in.Op = isa.OpFAdd
		in.Src1 = g.srcReg(g.fpHist)
		in.Src2 = g.srcReg(g.fpHist)
		in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
		wroteFP = true
	case x < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPAdd+p.FracFPMul:
		in.Op = isa.OpFMul
		in.Src1 = g.srcReg(g.fpHist)
		in.Src2 = g.srcReg(g.fpHist)
		in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
		wroteFP = true
	case x < p.FracLoad+p.FracStore+p.FracBranch+p.FracFPAdd+p.FracFPMul+p.FracIntMul:
		in.Op = isa.OpMul
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
		wroteInt = true
	default:
		// Simple integer ALU op; vary the opcode for dataflow diversity.
		ops := [4]isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd}
		in.Op = ops[g.r.Intn(4)]
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
		wroteInt = true
	}

	g.carryHistories(wroteInt, wroteFP)
	g.seq++
	return in
}

// Generate appends n instructions to dst and returns it.
func (g *Generator) Generate(n int, dst []isa.Inst) []isa.Inst {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// InBurst reports whether the generator is currently in a burst phase.
func (g *Generator) InBurst() bool { return g.inBurst }
