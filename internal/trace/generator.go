package trace

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// Generator produces a deterministic dynamic instruction stream for a
// profile. The same (profile, seed) always yields the same stream, so
// different machine configurations can be compared on identical work.
type Generator struct {
	prof Profile
	// r is a buffered draw source: raw 64-bit draws are produced rngBatch
	// at a time (state stays in registers across the refill loop) and
	// consumed one per probability trial. Buffering is read-ahead only —
	// the draw count and order are bit-identical to an unbuffered
	// rng.Source (see rng.Buffered), which TestGeneratorDrawOrderPinned
	// pins end to end.
	r *rng.Buffered

	seq     uint64
	pc      uint64
	nextReg int

	// lastDest[k] is the destination register of dynamic instruction
	// seq-1-k (bounded history) for dependency-distance sourcing, split by
	// register file.
	intHist []int8
	fpHist  []int8

	// Memory cursors.
	coldPtr uint64

	// Branch sites: per-site PC, bias class, fixed target. Sites are
	// visited mostly in cursor order (code loops over its branches),
	// which gives the global branch history the correlation a real
	// program's history has; a fraction of visits jump randomly.
	sitePCs     []uint64
	siteBias    []float64
	siteTargets []uint64
	siteCursor  int

	// Phase state. Each phase draws its own intensity multiplier so that
	// burst peaks vary run-to-run the way real program phases do; thermal
	// crossings then become occasional and marginal rather than
	// all-or-nothing.
	phaseLeft  int
	inBurst    bool
	phaseScale float64

	// Cumulative op-class thresholds in rng.Threshold's integer domain,
	// hoisted from the per-instruction switch. Each encodes the
	// corresponding left-to-right sum of profile fractions, so comparing
	// the 53-bit draw against them is bit-identical to the float
	// comparisons over the inline sums.
	tLoad, tStore, tBranch, tFPAdd, tFPMul, tIntMul uint64

	// Memory-region thresholds (ColdFrac, then ColdFrac+WarmFrac — the
	// same left-to-right sum memAddr's switch used to compute).
	tCold, tColdWarm uint64

	// Per-branch-site taken thresholds (rng.Threshold of siteBias), plus
	// the fixed cursor-advance threshold (0.9) and FP-load threshold.
	tSiteBias []uint64
	tCursor   uint64
	tLoadFP   uint64

	// Cached geometric-trial thresholds for the value- and
	// address-dependency distances (rng.GeometricThreshold of depDist()
	// and depDist()*AddrDepFactor). They change only at phase
	// transitions; caching hoists a float division out of every source
	// register draw.
	tDep, tAddr uint64

	// Magic-number reductions for the fixed divisors on the per-draw
	// path: working-set word counts (memAddr) and the branch-site count.
	// Bit-identical to rng.Intn's `%` (see fastdiv.go), minus the DIV.
	warmMod, hotMod, siteMod fastMod

	// Decoded-instruction ring: refill generates genBatch instructions in
	// one tight pass (same rng draw order as one-at-a-time generation, so
	// the stream is byte-identical), and Peek/Advance hand them out
	// without copying. burst records each slot's phase so InBurst tracks
	// the consumed instruction, not the read-ahead.
	buf       [genBatch]isa.Inst
	burst     [genBatch]bool
	bufPos    int
	bufLen    int
	lastBurst bool
}

// genBatch is the decoded-op ring size: large enough to amortize refill
// overhead, small enough that read-ahead stays a fraction of a sensor
// interval.
const genBatch = 64

// rngBatch is the raw-draw refill size for the generator's buffered rng:
// one decoded-op refill consumes a few draws per instruction, so 256 draws
// (2 KiB) covers roughly one genBatch pass per refill without spilling out
// of L1.
const rngBatch = 256

const (
	histLen   = 64           // register-history ring; must stay a power of two (indexed by & (histLen-1))
	hotBase   = isa.HotBase  // dense hot region in isa.State
	warmBase  = isa.WarmBase // dense warm region in isa.State
	codeBase  = 0x0040_0000
	lineBytes = 64
)

// ColdBase is the start of the streaming ("cold") address region. Cache
// warmup must not touch addresses at or above ColdBase: the stream is
// compulsory-miss traffic by construction, and a warmed stream would
// replay as hits. It equals isa.StreamBase so the architectural memory
// image stores the stream densely.
const ColdBase uint64 = isa.StreamBase

// NewGenerator builds a generator for the profile, seeded from the
// profile's own seed (deterministic across runs).
func NewGenerator(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{
		prof:    p,
		r:       rng.NewBuffered(p.Seed, rngBatch),
		intHist: make([]int8, histLen),
		fpHist:  make([]int8, histLen),
	}
	for i := range g.intHist {
		g.intHist[i] = int8(i % isa.NumIntRegs)
		g.fpHist[i] = int8(i % isa.NumFPRegs)
	}
	g.warmMod = newFastMod(uint64(p.WarmSetBytes / 8))
	g.hotMod = newFastMod(uint64(p.HotSetBytes / 8))
	if p.BranchSites > 0 {
		g.siteMod = newFastMod(uint64(p.BranchSites))
	}
	g.sitePCs = make([]uint64, p.BranchSites)
	g.siteBias = make([]float64, p.BranchSites)
	g.siteTargets = make([]uint64, p.BranchSites)
	// Branch sites sit on a regular stride through the code footprint:
	// compiled code spaces its branches roughly evenly, and the stride
	// keeps distinct sites from colliding in the predictor's PC-indexed
	// tables, which random placement would force at a high rate.
	stride := p.CodeFootprint / p.BranchSites
	stride -= stride % 4
	if stride < 8 {
		stride = 8
	}
	// An odd instruction-slot stride keeps sites from aliasing in any
	// power-of-two-indexed predictor table.
	if (stride/4)%2 == 0 {
		stride += 4
	}
	for i := range g.sitePCs {
		g.sitePCs[i] = codeBase + uint64(i*stride)
		g.siteTargets[i] = g.sitePCs[i] + uint64(4+4*g.r.Intn(64))
		if g.r.Bool(p.BiasedFrac) {
			// Strongly biased site: taken or not-taken dominant.
			if g.r.Bool(p.TakenBias) {
				g.siteBias[i] = 0.985
			} else {
				g.siteBias[i] = 0.015
			}
		} else {
			g.siteBias[i] = 0.5 // unpredictable site
		}
	}
	if p.PhaseLen > 0 {
		g.phaseLeft = p.PhaseLen
	}
	g.phaseScale = 1
	cLoad := p.FracLoad
	cStore := cLoad + p.FracStore
	cBranch := cStore + p.FracBranch
	cFPAdd := cBranch + p.FracFPAdd
	cFPMul := cFPAdd + p.FracFPMul
	g.tLoad = rng.Threshold(cLoad)
	g.tStore = rng.Threshold(cStore)
	g.tBranch = rng.Threshold(cBranch)
	g.tFPAdd = rng.Threshold(cFPAdd)
	g.tFPMul = rng.Threshold(cFPMul)
	g.tIntMul = rng.Threshold(cFPMul + p.FracIntMul)
	g.tCold = rng.Threshold(p.ColdFrac)
	g.tColdWarm = rng.Threshold(p.ColdFrac + p.WarmFrac)
	g.tSiteBias = make([]uint64, len(g.siteBias))
	for i, b := range g.siteBias {
		g.tSiteBias[i] = rng.Threshold(b)
	}
	g.tCursor = rng.Threshold(0.9)
	g.tLoadFP = rng.Threshold(p.FracLoadFP)
	g.refreshDepThresholds()
	return g
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.prof }

// depDist returns the current mean dependency distance, honoring phases.
// The per-phase intensity multiplier scales the burst distance, so
// successive bursts have different depths.
func (g *Generator) depDist() float64 {
	if g.prof.PhaseLen > 0 && g.inBurst {
		d := g.prof.BurstDepDist * g.phaseScale
		if d < 1 {
			d = 1
		}
		return d
	}
	return g.prof.DepDist
}

// refreshDepThresholds recomputes the cached geometric-trial thresholds
// from the current phase state. Must be called whenever depDist()'s inputs
// change (construction and phase transitions).
func (g *Generator) refreshDepThresholds() {
	d := g.depDist()
	g.tDep = rng.GeometricThreshold(d)
	g.tAddr = rng.GeometricThreshold(d * g.prof.AddrDepFactor)
}

// srcReg picks a source register at a geometric dependency distance from
// the history of the given register file.
func (g *Generator) srcReg(hist []int8) int8 {
	return g.histAt(hist, g.r.GeometricT(g.tDep))
}

// addrReg picks a memory-operation base register at the profile's
// address-dependency distance (typically much older than value operands).
func (g *Generator) addrReg() int8 {
	return g.histAt(g.intHist, g.r.GeometricT(g.tAddr))
}

func (g *Generator) histAt(hist []int8, d int) int8 {
	if d > histLen {
		d = histLen
	}
	return hist[(int(g.seq)+histLen-d)&(histLen-1)]
}

// Register-file sizes must be powers of two so destReg's round-robin
// wrap is a mask rather than a divide on the per-instruction path.
var (
	_ [0]struct{} = [isa.NumIntRegs & (isa.NumIntRegs - 1)]struct{}{}
	_ [0]struct{} = [isa.NumFPRegs & (isa.NumFPRegs - 1)]struct{}{}
)

// destReg allocates the next destination register round-robin, recording
// it in the history ring.
func (g *Generator) destReg(hist []int8, nregs int) int8 {
	g.nextReg++
	reg := int8(g.nextReg & (nregs - 1)) // nregs is a power of two (asserted above)
	hist[int(g.seq)&(histLen-1)] = reg
	return reg
}

// carryHistories keeps BOTH register-history rings current for the slot of
// the instruction just generated: a ring slot not written by a destination
// this instruction carries the previous slot's register forward. Without
// this, dependency distances in the less-active register file dereference
// stale ring entries and silently stretch (inflating ILP).
func (g *Generator) carryHistories(wroteInt, wroteFP bool) {
	i := int(g.seq) & (histLen - 1)
	prev := (i + histLen - 1) & (histLen - 1)
	if !wroteInt {
		g.intHist[i] = g.intHist[prev]
	}
	if !wroteFP {
		g.fpHist[i] = g.fpHist[prev]
	}
}

// memAddr draws an effective address from the profile's working sets.
func (g *Generator) memAddr() uint64 {
	x := g.r.U53()
	switch {
	case x < g.tCold:
		// Streaming access: advance word by word through memory, so one
		// cache line serves several accesses before the stream misses.
		g.coldPtr += 8
		return ColdBase + g.coldPtr
	case x < g.tColdWarm:
		return warmBase + g.warmMod.mod(g.r.Uint64())*8
	default:
		return hotBase + g.hotMod.mod(g.r.Uint64())*8
	}
}

// Next produces the next dynamic instruction.
func (g *Generator) Next() isa.Inst {
	in := *g.Peek()
	g.Advance()
	return in
}

// Peek returns the next instruction without consuming it. The pointer
// stays valid until the following Advance; the frontend uses it to retry
// dispatch across stall cycles without copying the instruction.
func (g *Generator) Peek() *isa.Inst {
	if g.bufPos == g.bufLen {
		g.refill()
	}
	return &g.buf[g.bufPos]
}

// Advance consumes the instruction last returned by Peek.
func (g *Generator) Advance() {
	g.lastBurst = g.burst[g.bufPos]
	g.bufPos++
}

// refill generates the next genBatch instructions into the ring in one
// pass. The rng is consumed in exactly the per-instruction order, so the
// stream is byte-identical to unbatched generation.
func (g *Generator) refill() {
	for i := range g.buf {
		g.genOne(&g.buf[i])
		g.burst[i] = g.inBurst
	}
	g.bufPos, g.bufLen = 0, genBatch
}

// genOne generates one dynamic instruction into *in.
func (g *Generator) genOne(in *isa.Inst) {
	// Phase bookkeeping.
	if g.prof.PhaseLen > 0 {
		g.phaseLeft--
		if g.phaseLeft <= 0 {
			// Draw the next phase's length (±30%) and intensity
			// (0.6x-1.4x of the nominal burst depth).
			jitter := 0.7 + 0.6*g.r.Float64()
			if g.inBurst {
				g.inBurst = false
				g.phaseLeft = int(float64(g.prof.PhaseLen) * (1 - g.prof.BurstFrac) * jitter)
			} else {
				g.inBurst = true
				g.phaseLeft = int(float64(g.prof.PhaseLen) * g.prof.BurstFrac * jitter)
				g.phaseScale = 0.75 + 0.5*g.r.Float64()
			}
			if g.phaseLeft <= 0 {
				g.phaseLeft = 1
			}
			g.refreshDepThresholds()
		}
	}

	// g.pc is maintained pre-wrapped into [0, CodeFootprint): the +4 stride
	// with a conditional subtract is the same sequence as pc%footprint over
	// a monotonic pc, without the per-instruction division.
	*in = isa.Inst{Seq: g.seq, PC: codeBase + g.pc}
	g.pc += 4
	for g.pc >= uint64(g.prof.CodeFootprint) {
		g.pc -= uint64(g.prof.CodeFootprint)
	}

	x := g.r.U53()
	wroteInt, wroteFP := false, false
	switch {
	case x < g.tLoad:
		in.Src1 = g.addrReg()
		in.Src2 = isa.NoReg
		in.Addr = g.memAddr()
		if g.r.BoolT(g.tLoadFP) {
			in.Op = isa.OpLoadFP
			in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
			wroteFP = true
		} else {
			in.Op = isa.OpLoad
			in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
			wroteInt = true
		}
	case x < g.tStore:
		in.Op = isa.OpStore
		in.Src1 = g.addrReg()
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = isa.NoReg
		in.Addr = g.memAddr()
	case x < g.tBranch:
		in.Op = isa.OpBr
		var site int
		if g.r.BoolT(g.tCursor) {
			g.siteCursor++
			if g.siteCursor >= len(g.sitePCs) {
				g.siteCursor = 0
			}
			site = g.siteCursor
		} else {
			site = int(g.siteMod.mod(g.r.Uint64()))
		}
		in.PC = g.sitePCs[site]
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = isa.NoReg
		in.Dest = isa.NoReg
		in.Taken = g.r.BoolT(g.tSiteBias[site])
		in.Target = g.siteTargets[site]
	case x < g.tFPAdd:
		in.Op = isa.OpFAdd
		in.Src1 = g.srcReg(g.fpHist)
		in.Src2 = g.srcReg(g.fpHist)
		in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
		wroteFP = true
	case x < g.tFPMul:
		in.Op = isa.OpFMul
		in.Src1 = g.srcReg(g.fpHist)
		in.Src2 = g.srcReg(g.fpHist)
		in.Dest = g.destReg(g.fpHist, isa.NumFPRegs)
		wroteFP = true
	case x < g.tIntMul:
		in.Op = isa.OpMul
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
		wroteInt = true
	default:
		// Simple integer ALU op; vary the opcode for dataflow diversity.
		ops := [4]isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd}
		in.Op = ops[g.r.Intn(4)]
		in.Src1 = g.srcReg(g.intHist)
		in.Src2 = g.srcReg(g.intHist)
		in.Dest = g.destReg(g.intHist, isa.NumIntRegs)
		wroteInt = true
	}

	g.carryHistories(wroteInt, wroteFP)
	g.seq++
}

// Generate appends n instructions to dst and returns it.
func (g *Generator) Generate(n int, dst []isa.Inst) []isa.Inst {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// InBurst reports whether the most recently consumed instruction (via
// Next or Advance) was generated in a burst phase; false before any
// instruction. The ring generates ahead of consumption, so this tracks
// the consumed position, not the generator's internal phase.
func (g *Generator) InBurst() bool { return g.lastBurst }
