package trace

import (
	"testing"

	"repro/internal/rng"
)

// TestFastModExact verifies the magic-number reduction against the hardware
// remainder: the generator's draw-to-index mapping must be bit-identical to
// rng.Intn's `%`, for every divisor a profile can produce and for
// adversarial ones (primes, Mersenne, pow2±1, tiny, huge).
func TestFastModExact(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 13, 60, 64, 100, 127, 128, 129,
		641, 1000, 4093, 4096, 1 << 20, 1<<20 - 1, 1<<20 + 1,
		1<<31 - 1, 1 << 31, 1<<31 + 1, 1<<33 + 7,
		1<<62 - 1, 1 << 62, ^uint64(0) >> 1, ^uint64(0) - 1, ^uint64(0),
	}
	// Profile-derived divisors actually used by generators.
	for _, p := range Profiles() {
		divisors = append(divisors,
			uint64(p.WarmSetBytes/8), uint64(p.HotSetBytes/8), uint64(p.BranchSites))
	}
	r := rng.New(0xfa57d1f)
	for _, n := range divisors {
		f := newFastMod(n)
		check := func(x uint64) {
			t.Helper()
			if got, want := f.mod(x), x%n; got != want {
				t.Fatalf("fastMod(%d).mod(%#x) = %d, want %d", n, x, got, want)
			}
		}
		// Structured inputs: extremes and quotient boundaries.
		for _, x := range []uint64{0, 1, 2, n - 1, n, n + 1, 2*n - 1, 2 * n,
			^uint64(0), ^uint64(0) - 1, ^uint64(0) - (n - 1)} {
			check(x)
		}
		for k := uint64(1); k < 66; k++ {
			x := n * k
			check(x - 1)
			check(x)
			check(x + 1)
		}
		// Random sweep.
		for i := 0; i < 200000; i++ {
			check(r.Uint64())
		}
	}
}

// TestFastModMatchesIntn pins the end-to-end equivalence on the consumer
// side: reducing a draw with fastMod equals what rng.Intn would have
// returned for the same draw.
func TestFastModMatchesIntn(t *testing.T) {
	for _, n := range []int{3, 60, 1000, 12345, 1 << 16, 999983} {
		f := newFastMod(uint64(n))
		a := rng.NewBuffered(42, 64)
		b := rng.NewBuffered(42, 64)
		for i := 0; i < 10000; i++ {
			got := int(f.mod(a.Uint64()))
			want := b.Intn(n)
			if got != want {
				t.Fatalf("n=%d draw %d: fastMod %d, Intn %d", n, i, got, want)
			}
		}
	}
}
