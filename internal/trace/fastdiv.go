package trace

import "math/bits"

// fastMod reduces a full-width 64-bit draw modulo a fixed divisor without a
// hardware divide. The generator maps every load/store draw into a working
// set whose word count is profile-dependent and rarely a power of two, so
// the `%` in rng.Intn costs a 64-bit DIV (20-40 cycles) on the hottest
// instruction-synthesis path. The divisor is fixed for the life of the
// generator, which is exactly the case the classic magic-number
// strength-reduction handles: q = (M*x)>>s computed via a high multiply,
// then mod = x - q*n.
//
// The magic constants come from the unsigned magicu algorithm (Hacker's
// Delight 2nd ed., fig. 10-4, widened to 64 bits). The result is exact for
// every x — not an approximation — which TestFastModExact verifies against
// the hardware remainder over structured and random inputs; the generator's
// draw-to-index mapping therefore stays bit-identical to rng.Intn.
type fastMod struct {
	m   uint64 // magic multiplier
	n   uint64 // divisor
	s   uint   // post shift
	add bool   // overflow ("add indicator") variant
}

// newFastMod builds the reduction for divisor n >= 1.
func newFastMod(n uint64) fastMod {
	if n == 0 {
		panic("trace: fastMod divisor 0")
	}
	if n&(n-1) == 0 {
		// Power of two: mod is a mask; encode as multiplier 0 so mod()
		// takes the mask path.
		return fastMod{m: 0, n: n}
	}
	// magicu: find the smallest p >= 64 with 2^p/n representable as a
	// 64-bit multiplier that divides exactly for all 64-bit x.
	const twoTo63 = uint64(1) << 63
	var (
		a     bool
		p     uint   = 63
		nc    uint64 = ^uint64(0) - (^uint64(0)-n+1)%n
		q1    uint64 = twoTo63 / nc
		r1    uint64 = twoTo63 - q1*nc
		q2    uint64 = (twoTo63 - 1) / n
		r2    uint64 = twoTo63 - 1 - q2*n
		delta uint64
	)
	for {
		p++
		if r1 >= nc-r1 {
			q1 = 2*q1 + 1
			r1 = 2*r1 - nc
		} else {
			q1 = 2 * q1
			r1 = 2 * r1
		}
		if r2+1 >= n-r2 {
			if q2 >= twoTo63-1 {
				a = true
			}
			q2 = 2*q2 + 1
			r2 = 2*r2 + 1 - n
		} else {
			if q2 >= twoTo63 {
				a = true
			}
			q2 = 2 * q2
			r2 = 2*r2 + 1
		}
		delta = n - 1 - r2
		if !(p < 128 && (q1 < delta || (q1 == delta && r1 == 0))) {
			break
		}
	}
	return fastMod{m: q2 + 1, n: n, s: p - 64, add: a}
}

// mod returns x % n for the fixed divisor.
func (f fastMod) mod(x uint64) uint64 {
	if f.m == 0 {
		return x & (f.n - 1)
	}
	q, _ := bits.Mul64(f.m, x)
	if f.add {
		q = ((x-q)>>1 + q) >> (f.s - 1)
	} else {
		q >>= f.s
	}
	return x - q*f.n
}
