// Package trace synthesizes the workloads. The paper runs 22 SPEC2000
// benchmarks (500 M instructions from early SimPoints); we substitute one
// deterministic synthetic profile per benchmark name. A profile controls
// exactly the properties the paper's results depend on:
//
//   - instruction mix (integer / multiply / load / store / branch / FP);
//   - instruction-level parallelism, via the dependency-distance
//     distribution of source operands;
//   - branch predictability (static site count, per-site bias);
//   - memory behaviour (L1-resident hot set, L2-resident warm set,
//     streaming cold fraction);
//   - burstiness (alternating high- and low-ILP phases, the facerec
//     pattern the paper calls out in §4.1).
//
// Profiles are calibrated so each benchmark lands in the utilization class
// the paper reports for it: e.g. eon and perlbmk are cache-resident and
// back-end-hot, mcf and art are memory-bound and cool, facerec alternates
// violently. EXPERIMENTS.md records how the calibrated classes line up
// with the paper's per-benchmark observations.
package trace

import (
	"fmt"
	"sort"
	"sync"
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string
	Seed uint64

	// Instruction mix: fractions of the dynamic stream. The remainder
	// after all listed classes is simple integer ALU operations.
	FracIntMul float64
	FracLoad   float64
	FracStore  float64
	FracBranch float64
	FracFPAdd  float64
	FracFPMul  float64

	// DepDist is the mean dependency distance (in dynamic instructions)
	// from an instruction to the producers of its sources. Larger means
	// more ILP.
	DepDist float64

	// FracLoadFP is the fraction of loads that target the floating-point
	// register file (Alpha ldt/lds). FP loads execute on the integer
	// load/store path but feed the FP dataflow, which is what makes FP
	// issue-queue readiness scatter in FP codes.
	FracLoadFP float64

	// AddrDepFactor scales the dependency distance for memory-operation
	// base registers. Array bases and frame pointers are computed long
	// before the accesses that use them, which is what gives real code
	// its memory-level parallelism; pointer-chasing codes (mcf) keep this
	// near 1 so cache misses serialize.
	AddrDepFactor float64

	// Branch behaviour.
	BranchSites   int     // static branch working set
	BiasedFrac    float64 // fraction of sites with strong (95%) bias
	TakenBias     float64 // taken probability of biased sites
	CodeFootprint int     // bytes of code looped over (I-cache behaviour)

	// Memory behaviour.
	HotSetBytes  int     // L1-resident region
	WarmSetBytes int     // L2-resident region
	WarmFrac     float64 // fraction of accesses to the warm set
	ColdFrac     float64 // fraction of accesses streaming through memory

	// Phase structure: the stream alternates between a base phase
	// (DepDist) and a burst phase (BurstDepDist) when PhaseLen > 0.
	PhaseLen     int
	BurstFrac    float64
	BurstDepDist float64
}

// IsFP reports whether the profile is dominated by floating-point work.
func (p Profile) IsFP() bool { return p.FracFPAdd+p.FracFPMul > 0.15 }

// Validate reports the first inconsistency in the profile, or nil.
func (p Profile) Validate() error {
	sum := p.FracIntMul + p.FracLoad + p.FracStore + p.FracBranch + p.FracFPAdd + p.FracFPMul
	if sum > 1.0 {
		return fmt.Errorf("trace: %s mix fractions sum to %.3f > 1", p.Name, sum)
	}
	if p.DepDist < 1 {
		return fmt.Errorf("trace: %s dep distance %.2f < 1", p.Name, p.DepDist)
	}
	if p.WarmFrac+p.ColdFrac > 1.0 {
		return fmt.Errorf("trace: %s memory fractions exceed 1", p.Name)
	}
	if p.HotSetBytes <= 0 || p.WarmSetBytes <= 0 || p.CodeFootprint <= 0 {
		return fmt.Errorf("trace: %s zero working set", p.Name)
	}
	if p.BranchSites <= 0 && p.FracBranch > 0 {
		return fmt.Errorf("trace: %s branches without branch sites", p.Name)
	}
	if p.PhaseLen > 0 && p.BurstDepDist < 1 {
		return fmt.Errorf("trace: %s burst phase without burst dep distance", p.Name)
	}
	if p.AddrDepFactor < 1 {
		return fmt.Errorf("trace: %s address dependency factor %.2f < 1", p.Name, p.AddrDepFactor)
	}
	return nil
}

const kb = 1024

// intProfile builds a SPEC-int-flavoured profile.
func intProfile(name string, seed uint64, dep float64, load, store, branch float64) Profile {
	return Profile{
		Name: name, Seed: seed,
		FracIntMul: 0.02, FracLoad: load, FracStore: store, FracBranch: branch,
		DepDist: dep, AddrDepFactor: 4,
		BranchSites: 512, BiasedFrac: 0.97, TakenBias: 0.62,
		CodeFootprint: 24 * kb,
		HotSetBytes:   24 * kb, WarmSetBytes: 512 * kb,
		// Mild phase structure: real programs alternate hotter and cooler
		// regions at millisecond scales, which is what makes thermal
		// crossings occasional rather than all-or-nothing.
		PhaseLen: 400_000, BurstFrac: 0.40, BurstDepDist: dep * 1.45,
	}
}

// fpProfile builds a SPEC-fp-flavoured profile.
func fpProfile(name string, seed uint64, dep float64, fadd, fmul, load, store float64) Profile {
	return Profile{
		Name: name, Seed: seed,
		FracIntMul: 0.01, FracLoad: load, FracStore: store, FracBranch: 0.06,
		FracFPAdd: fadd, FracFPMul: fmul, FracLoadFP: 0.55,
		DepDist: dep, AddrDepFactor: 6,
		BranchSites: 128, BiasedFrac: 0.98, TakenBias: 0.85,
		CodeFootprint: 16 * kb,
		HotSetBytes:   32 * kb, WarmSetBytes: 768 * kb,
		PhaseLen: 500_000, BurstFrac: 0.35, BurstDepDist: dep * 1.35,
	}
}

// The profile table is immutable after construction and is built
// exactly once under profilesOnce, so concurrent simulator construction
// (the parallel matrix runner builds one simulator per worker) is
// race-free. Profile contains only value-typed fields, so the per-call
// copies handed out by Profiles and ByName are deep.
var (
	profilesOnce   sync.Once
	profilesMemo   []Profile
	profilesByName map[string]Profile
)

func initProfiles() {
	profilesMemo = buildProfiles()
	profilesByName = make(map[string]Profile, len(profilesMemo))
	for _, p := range profilesMemo {
		profilesByName[p.Name] = p
	}
}

// Profiles returns the 22 benchmark profiles in the paper's figure order
// (alphabetical, as in Figures 6-8). The returned slice is a fresh copy;
// callers may modify it freely.
func Profiles() []Profile {
	profilesOnce.Do(initProfiles)
	out := make([]Profile, len(profilesMemo))
	copy(out, profilesMemo)
	return out
}

func buildProfiles() []Profile {
	ps := []Profile{}

	// --- SPEC2000 FP ---
	applu := fpProfile("applu", 101, 4.5, 0.26, 0.10, 0.24, 0.09)
	applu.ColdFrac = 0.45
	applu.WarmFrac = 0.25
	ps = append(ps, applu)

	apsi := fpProfile("apsi", 102, 5.55, 0.25, 0.10, 0.22, 0.09)
	apsi.WarmFrac = 0.15
	ps = append(ps, apsi)

	art := fpProfile("art", 103, 3.0, 0.20, 0.05, 0.30, 0.06)
	art.ColdFrac = 0.55
	art.WarmFrac = 0.30
	ps = append(ps, art)

	bzip := intProfile("bzip", 104, 6.3, 0.24, 0.11, 0.11)
	bzip.WarmFrac = 0.12
	bzip.BiasedFrac = 0.99
	ps = append(ps, bzip)

	crafty := intProfile("crafty", 105, 5.45, 0.26, 0.07, 0.11)
	crafty.WarmFrac = 0.08
	crafty.BiasedFrac = 0.99
	ps = append(ps, crafty)

	eon := intProfile("eon", 106, 5.1, 0.25, 0.11, 0.10)
	eon.HotSetBytes = 16 * kb // cache-resident: sustained back-end pressure
	eon.WarmFrac = 0.08       // occasional L2 hits scatter issue positions
	eon.BiasedFrac = 0.99     // eon predicts well; the queue stays full
	ps = append(ps, eon)

	facerec := fpProfile("facerec", 107, 4.3, 0.20, 0.08, 0.24, 0.06)
	facerec.PhaseLen = 600_000
	facerec.BurstFrac = 0.35
	facerec.BurstDepDist = 9.0
	facerec.WarmFrac = 0.20
	ps = append(ps, facerec)

	fma3d := fpProfile("fma3d", 108, 5.5, 0.25, 0.10, 0.24, 0.10)
	fma3d.WarmFrac = 0.25
	ps = append(ps, fma3d)

	gcc := intProfile("gcc", 109, 7.0, 0.25, 0.12, 0.13)
	gcc.BiasedFrac = 0.99
	gcc.CodeFootprint = 32 * kb // big code footprint (I-cache pressure)
	gcc.WarmFrac = 0.12
	ps = append(ps, gcc)

	gzip := intProfile("gzip", 110, 5.2, 0.21, 0.08, 0.12)
	gzip.WarmFrac = 0.08
	gzip.BiasedFrac = 0.99
	ps = append(ps, gzip)

	lucas := fpProfile("lucas", 111, 4.0, 0.26, 0.10, 0.22, 0.08)
	lucas.ColdFrac = 0.50
	ps = append(ps, lucas)

	mcf := intProfile("mcf", 112, 2.5, 0.30, 0.08, 0.10)
	mcf.ColdFrac = 0.60
	mcf.WarmFrac = 0.25
	mcf.BiasedFrac = 0.75
	mcf.AddrDepFactor = 1.2 // pointer chasing: misses serialize
	ps = append(ps, mcf)

	mesa := fpProfile("mesa", 113, 5.9, 0.26, 0.12, 0.22, 0.09)
	mesa.HotSetBytes = 20 * kb
	mesa.WarmFrac = 0.10
	ps = append(ps, mesa)

	mgrid := fpProfile("mgrid", 114, 6.0, 0.30, 0.09, 0.26, 0.08)
	mgrid.WarmFrac = 0.30
	ps = append(ps, mgrid)

	parser := intProfile("parser", 115, 4.0, 0.24, 0.09, 0.13)
	parser.WarmFrac = 0.20
	parser.ColdFrac = 0.10
	ps = append(ps, parser)

	perlbmk := intProfile("perlbmk", 116, 5.0, 0.23, 0.12, 0.12)
	perlbmk.HotSetBytes = 16 * kb
	perlbmk.WarmFrac = 0.08
	perlbmk.BiasedFrac = 0.99
	ps = append(ps, perlbmk)

	sixtrack := fpProfile("sixtrack", 117, 6.35, 0.27, 0.12, 0.20, 0.08)
	sixtrack.WarmFrac = 0.10
	ps = append(ps, sixtrack)

	swim := fpProfile("swim", 118, 4.0, 0.30, 0.08, 0.26, 0.10)
	swim.ColdFrac = 0.55
	swim.WarmFrac = 0.25
	ps = append(ps, swim)

	twolf := intProfile("twolf", 119, 3.2, 0.26, 0.08, 0.12)
	twolf.WarmFrac = 0.35
	twolf.BiasedFrac = 0.85
	ps = append(ps, twolf)

	vortex := intProfile("vortex", 120, 6.8, 0.27, 0.14, 0.10)
	vortex.WarmFrac = 0.10
	vortex.BiasedFrac = 0.99
	ps = append(ps, vortex)

	vpr := intProfile("vpr", 121, 3.6, 0.26, 0.09, 0.11)
	vpr.WarmFrac = 0.30
	ps = append(ps, vpr)

	wupwise := fpProfile("wupwise", 122, 7.0, 0.28, 0.14, 0.21, 0.08)
	wupwise.HotSetBytes = 24 * kb
	wupwise.WarmFrac = 0.10
	ps = append(ps, wupwise)

	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// ByName returns the named profile, or an error listing valid names.
func ByName(name string) (Profile, error) {
	profilesOnce.Do(initProfiles)
	if p, ok := profilesByName[name]; ok {
		return p, nil
	}
	names := make([]string, 0, len(profilesMemo))
	for _, p := range profilesMemo {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q (have %v)", name, names)
}
