package trace

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/isa"
)

func TestAll22ProfilesPresent(t *testing.T) {
	want := []string{
		"applu", "apsi", "art", "bzip", "crafty", "eon", "facerec",
		"fma3d", "gcc", "gzip", "lucas", "mcf", "mesa", "mgrid",
		"parser", "perlbmk", "sixtrack", "swim", "twolf", "vortex",
		"vpr", "wupwise",
	}
	ps := Profiles()
	if len(ps) != len(want) {
		t.Fatalf("%d profiles, want %d", len(ps), len(want))
	}
	for i, name := range want {
		if ps[i].Name != name {
			t.Errorf("profile %d = %s, want %s (alphabetical order)", i, ps[i].Name, name)
		}
	}
}

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("eon")
	if err != nil || p.Name != "eon" {
		t.Fatalf("ByName(eon) = %v, %v", p.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p, _ := ByName("gcc")
	a := NewGenerator(p)
	b := NewGenerator(p)
	for i := 0; i < 5000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("streams diverge at %d: %v vs %v", i, ia, ib)
		}
	}
}

func TestSeqNumbersMonotone(t *testing.T) {
	p, _ := ByName("art")
	g := NewGenerator(p)
	for i := uint64(0); i < 1000; i++ {
		if in := g.Next(); in.Seq != i {
			t.Fatalf("seq %d at position %d", in.Seq, i)
		}
	}
}

func TestMixMatchesProfile(t *testing.T) {
	for _, name := range []string{"eon", "swim", "mcf"} {
		p, _ := ByName(name)
		g := NewGenerator(p)
		const n = 200000
		counts := map[isa.Class]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Op.Class()]++
		}
		checks := []struct {
			label string
			want  float64
			got   int
		}{
			{"loads+stores", p.FracLoad + p.FracStore, counts[isa.ClassMem]},
			{"branches", p.FracBranch, counts[isa.ClassBranch]},
			{"fp adds", p.FracFPAdd, counts[isa.ClassFPAdd]},
			{"fp muls", p.FracFPMul, counts[isa.ClassFPMul]},
		}
		for _, c := range checks {
			got := float64(c.got) / n
			if math.Abs(got-c.want) > 0.012 {
				t.Errorf("%s: %s frequency %.4f, want %.4f", name, c.label, got, c.want)
			}
		}
	}
}

func TestRegisterFieldsWellFormed(t *testing.T) {
	p, _ := ByName("perlbmk")
	g := NewGenerator(p)
	for i := 0; i < 20000; i++ {
		in := g.Next()
		check := func(r int8, fp bool) {
			if r == isa.NoReg {
				return
			}
			lim := int8(isa.NumIntRegs)
			if fp {
				lim = isa.NumFPRegs
			}
			if r < 0 || r >= lim {
				t.Fatalf("instruction %v has register %d out of range", in, r)
			}
		}
		fp := in.Op.IsFP()
		check(in.Src1, fp)
		check(in.Src2, fp)
		check(in.Dest, fp)
		if in.Op.HasDest() && in.Dest == isa.NoReg {
			t.Fatalf("%v should have a destination", in)
		}
		if !in.Op.HasDest() && in.Dest != isa.NoReg {
			t.Fatalf("%v should not have a destination", in)
		}
		if in.Op.IsMem() && in.Addr == 0 {
			t.Fatalf("%v memory op without address", in)
		}
	}
}

func TestDependencyDistanceControlsILP(t *testing.T) {
	// Average distance between an instruction and its sources must track
	// the profile's DepDist.
	measure := func(dep float64) float64 {
		p, _ := ByName("eon")
		p.DepDist = dep
		g := NewGenerator(p)
		lastWriter := map[int8]uint64{}
		var sum float64
		var cnt int
		for i := 0; i < 50000; i++ {
			in := g.Next()
			if in.Op.IsFP() || in.Op.IsBranch() || in.Op.IsMem() {
				// Track int ALU chains only for a clean signal.
				if in.Dest != isa.NoReg && !in.Op.IsFP() {
					lastWriter[in.Dest] = in.Seq
				}
				continue
			}
			if w, ok := lastWriter[in.Src1]; ok {
				sum += float64(in.Seq - w)
				cnt++
			}
			lastWriter[in.Dest] = in.Seq
		}
		return sum / float64(cnt)
	}
	short := measure(2)
	long := measure(16)
	if short >= long {
		t.Fatalf("dep distance not controlling: short=%.2f long=%.2f", short, long)
	}
	if long < 2*short {
		t.Fatalf("dep distance signal too weak: short=%.2f long=%.2f", short, long)
	}
}

func TestMemoryWorkingSets(t *testing.T) {
	// A hot-set-only profile touches few distinct lines; a cold-streaming
	// profile touches many.
	hot, _ := ByName("eon")
	cold, _ := ByName("swim")
	lines := func(p Profile) int {
		g := NewGenerator(p)
		seen := map[uint64]bool{}
		for i := 0; i < 50000; i++ {
			in := g.Next()
			if in.Op.IsMem() {
				seen[in.Addr/64] = true
			}
		}
		return len(seen)
	}
	h, c := lines(hot), lines(cold)
	if h*3 > c {
		t.Fatalf("hot profile touched %d lines vs cold %d: want clear separation", h, c)
	}
}

func TestBranchBiasDistribution(t *testing.T) {
	p, _ := ByName("gzip")
	g := NewGenerator(p)
	taken, total := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Op.IsBranch() {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("no branches generated")
	}
	frac := float64(taken) / float64(total)
	if frac < 0.2 || frac > 0.9 {
		t.Fatalf("taken fraction %.3f implausible", frac)
	}
}

func TestFacerecBurstPhases(t *testing.T) {
	p, _ := ByName("facerec")
	if p.PhaseLen == 0 {
		t.Fatal("facerec must have phases")
	}
	g := NewGenerator(p)
	transitions := 0
	prev := g.InBurst()
	for i := 0; i < 2_000_000; i++ {
		g.Next()
		if b := g.InBurst(); b != prev {
			transitions++
			prev = b
		}
	}
	if transitions < 4 {
		t.Fatalf("only %d phase transitions in 2M instructions", transitions)
	}
}

func TestGenerateBatch(t *testing.T) {
	p, _ := ByName("vpr")
	g := NewGenerator(p)
	insts := g.Generate(100, nil)
	if len(insts) != 100 {
		t.Fatalf("generated %d", len(insts))
	}
	insts = g.Generate(50, insts)
	if len(insts) != 150 || insts[149].Seq != 149 {
		t.Fatal("batch append broken")
	}
}

func TestStreamIsExecutable(t *testing.T) {
	// The reference executor must be able to run any stream without
	// panicking, and produce state changes.
	for _, name := range []string{"eon", "art", "facerec"} {
		p, _ := ByName(name)
		g := NewGenerator(p)
		s := isa.NewState()
		for i := 0; i < 20000; i++ {
			s.Exec(g.Next())
		}
		if len(s.Mem)+len(s.Hot)+len(s.Warm)+len(s.Stream) == 0 {
			t.Errorf("%s: no stores executed", name)
		}
	}
}

func TestProfileValidateCatchesBadInputs(t *testing.T) {
	good, _ := ByName("eon")
	bads := []func(*Profile){
		func(p *Profile) { p.FracLoad = 0.9; p.FracStore = 0.3 },
		func(p *Profile) { p.DepDist = 0 },
		func(p *Profile) { p.WarmFrac = 0.7; p.ColdFrac = 0.7 },
		func(p *Profile) { p.HotSetBytes = 0 },
		func(p *Profile) { p.BranchSites = 0 },
		func(p *Profile) { p.PhaseLen = 100; p.BurstDepDist = 0 },
	}
	for i, mod := range bads {
		p := good
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestIsFPClassification(t *testing.T) {
	eon, _ := ByName("eon")
	swim, _ := ByName("swim")
	if eon.IsFP() {
		t.Error("eon classified FP")
	}
	if !swim.IsFP() {
		t.Error("swim classified int")
	}
}

func TestFPLoadFraction(t *testing.T) {
	p, _ := ByName("swim")
	g := NewGenerator(p)
	loads, fpLoads := 0, 0
	for i := 0; i < 200_000; i++ {
		switch g.Next().Op {
		case isa.OpLoad:
			loads++
		case isa.OpLoadFP:
			fpLoads++
		}
	}
	frac := float64(fpLoads) / float64(loads+fpLoads)
	if math.Abs(frac-p.FracLoadFP) > 0.03 {
		t.Fatalf("FP-load fraction %.3f, want %.3f", frac, p.FracLoadFP)
	}
	// Int profiles have no FP loads.
	pi, _ := ByName("gzip")
	gi := NewGenerator(pi)
	for i := 0; i < 50_000; i++ {
		if gi.Next().Op == isa.OpLoadFP {
			t.Fatal("integer profile produced an FP load")
		}
	}
}

func TestAddressDependenciesOlderThanValueDependencies(t *testing.T) {
	// Memory base registers must reference older producers than ALU value
	// operands (AddrDepFactor), which is what gives the pipeline its
	// memory-level parallelism.
	p, _ := ByName("gzip")
	g := NewGenerator(p)
	lastWriter := map[int8]uint64{}
	var memSum, aluSum float64
	var memN, aluN int
	for i := 0; i < 300_000; i++ {
		in := g.Next()
		switch {
		case in.Op == isa.OpLoad || in.Op == isa.OpStore:
			if w, ok := lastWriter[in.Src1]; ok {
				memSum += float64(in.Seq - w)
				memN++
			}
		case in.Op.Class() == isa.ClassIntALU && in.Op != isa.OpBr:
			if w, ok := lastWriter[in.Src1]; ok {
				aluSum += float64(in.Seq - w)
				aluN++
			}
		}
		if in.Dest != isa.NoReg && !in.Op.DestIsFP() {
			lastWriter[in.Dest] = in.Seq
		}
	}
	if memN == 0 || aluN == 0 {
		t.Fatal("no samples")
	}
	memDist, aluDist := memSum/float64(memN), aluSum/float64(aluN)
	if memDist < 1.5*aluDist {
		t.Fatalf("address deps (%.1f) not clearly older than value deps (%.1f)", memDist, aluDist)
	}
}

func TestBurstIntensityVaries(t *testing.T) {
	// Successive bursts must not all have the same depth (the randomized
	// per-phase intensity that makes thermal crossings marginal).
	p, _ := ByName("eon")
	g := NewGenerator(p)
	depths := map[string]bool{}
	prevBurst := false
	var lens []int
	cur := 0
	for i := 0; i < 4_000_000 && len(lens) < 8; i++ {
		g.Next()
		if g.InBurst() {
			cur++
		} else if prevBurst {
			lens = append(lens, cur)
			cur = 0
		}
		prevBurst = g.InBurst()
	}
	if len(lens) < 4 {
		t.Fatalf("only %d bursts observed", len(lens))
	}
	for _, l := range lens {
		depths[fmt.Sprintf("%d", l/10_000)] = true
	}
	if len(depths) < 2 {
		t.Fatalf("all bursts identical length: %v", lens)
	}
}

// TestProfilesConcurrencySafe is the race-detector regression test for
// the memoized profile table: concurrent Profiles and ByName calls (the
// parallel matrix runner constructs simulators on every worker) must
// not race, and the copies handed out must be isolated from each other.
func TestProfilesConcurrencySafe(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps := Profiles()
			// Scribble on the returned slice: a later caller must not see it.
			ps[0].Name = fmt.Sprintf("scribble-%d", i)
			ps[0].Seed = uint64(i)
			if _, err := ByName("eon"); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := Profiles()[0].Name; got != "applu" {
		t.Fatalf("profile table corrupted by a caller's scribble: first profile is %q", got)
	}
}

// fingerprintStream hashes every architecturally visible field of the
// first n instructions of a profile's stream (FNV-1a over the field
// bytes). Any change to the number or order of rng draws per instruction
// moves every subsequent field and therefore the hash.
func fingerprintStream(name string, n int) uint64 {
	prof, err := ByName(name)
	if err != nil {
		panic(err)
	}
	g := NewGenerator(prof)
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for i := 0; i < n; i++ {
		in := g.Next()
		mix(in.Seq)
		mix(in.PC)
		mix(in.Addr)
		mix(in.Target)
		mix(uint64(in.Op))
		mix(uint64(uint8(in.Dest)))
		mix(uint64(uint8(in.Src1)))
		mix(uint64(uint8(in.Src2)))
		if in.Taken {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// TestGeneratorDrawOrderPinned pins the generator's rng draw order end to
// end: the fingerprint of the emitted stream is a pure function of the
// per-instruction draw sequence, so a batched-rng refill (or any future
// rng restructuring) that perturbed draw count or order — even by one draw
// — would change these constants. The goldens consume this exact stream;
// regenerating the constants is only legitimate alongside an intentional,
// documented workload change.
func TestGeneratorDrawOrderPinned(t *testing.T) {
	pins := []struct {
		profile string
		n       int
		want    uint64
	}{
		{"eon", 50_000, 0xdadd90e25d4a02e1},
		{"swim", 50_000, 0xab1748bed7094cb8},
		{"facerec", 50_000, 0x4a08d768c47ef5d3},
	}
	for _, pin := range pins {
		if got := fingerprintStream(pin.profile, pin.n); got != pin.want {
			t.Errorf("%s: stream fingerprint %#x, want %#x (rng draw order shifted?)",
				pin.profile, got, pin.want)
		}
	}
}
