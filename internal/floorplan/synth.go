// Synthetic floorplan generators. The paper's floorplans top out at ~26
// blocks; the sparse thermal solver targets hundreds to thousands of
// nodes (multi-core plans, per-cell banking sweeps, NoC-style meshes).
// These generators produce plans at any size so tests and benchmarks can
// exercise that regime: regular meshes for predictable structure, and
// seeded random guillotine partitions for irregular adjacency patterns.
// Both satisfy the same geometric invariants as the paper plans (no
// overlaps, no gaps, reciprocal adjacency) and are fully deterministic.
package floorplan

import "fmt"

// MeshCell returns the name of the mesh block at row r, column c.
func MeshCell(r, c int) string { return fmt.Sprintf("Cell%d_%d", r, c) }

// Mesh builds a rows × cols grid floorplan covering the standard die
// width in both dimensions: every cell is DieWidth/cols wide and
// DieWidth/rows tall, so the die stays the familiar square regardless of
// the grid shape. Interior cells have four lateral neighbours, edges
// three, corners two — the NoC-style topology the sparse solver is built
// for.
func Mesh(rows, cols int) *Plan {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("floorplan: Mesh(%d, %d)", rows, cols))
	}
	p := &Plan{byName: make(map[string]int, rows*cols)}
	w := DieWidth / float64(cols)
	h := DieWidth / float64(rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			name := MeshCell(r, c)
			p.byName[name] = len(p.Blocks)
			p.Blocks = append(p.Blocks, Block{
				Name: name,
				X:    float64(c) * w,
				Y:    float64(r) * h,
				W:    w,
				H:    h,
			})
		}
	}
	// Mesh adjacency is regular; enumerate it directly instead of the
	// O(n²) geometric scan (a 3000-cell plan would pay ~10M pair checks
	// for a structure we already know). Order matches computeAdjacency's
	// (A < B, A ascending), which the geometry tests verify.
	p.Adj = make([]Adjacency, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if c+1 < cols { // right neighbour: vertical shared edge
				p.Adj = append(p.Adj, Adjacency{A: i, B: i + 1, Shared: h, Dist: w})
			}
			if r+1 < rows { // upper neighbour: horizontal shared edge
				p.Adj = append(p.Adj, Adjacency{A: i, B: i + cols, Shared: w, Dist: h})
			}
		}
	}
	return p
}

// RandomCell returns the name of random-plan block i.
func RandomCell(i int) string { return fmt.Sprintf("Rand%d", i) }

// Random builds an n-block floorplan by deterministic guillotine
// partitioning of the square die: starting from the whole die, the
// largest remaining rectangle is repeatedly split along its longer side
// at a pseudo-random fraction drawn from the seed. The same (n, seed)
// always yields the same plan, byte for byte, so differential tests can
// reference plans by seed. Splits preserve area exactly, so the usual
// no-overlap/no-gap invariants hold at any size.
func Random(n int, seed uint64) *Plan {
	if n <= 0 {
		panic(fmt.Sprintf("floorplan: Random(%d)", n))
	}
	rng := splitmix64{state: seed}
	rects := make([]Block, 1, n)
	rects[0] = Block{X: 0, Y: 0, W: DieWidth, H: DieWidth}
	for len(rects) < n {
		// Split the largest rectangle (ties broken by lowest index, so
		// selection is deterministic).
		best := 0
		for i := 1; i < len(rects); i++ {
			if rects[i].Area() > rects[best].Area() {
				best = i
			}
		}
		r := rects[best]
		f := 0.35 + 0.30*rng.float64() // keep aspect ratios sane
		var a, b Block
		if r.W >= r.H {
			w1 := r.W * f
			a = Block{X: r.X, Y: r.Y, W: w1, H: r.H}
			b = Block{X: r.X + w1, Y: r.Y, W: r.W - w1, H: r.H}
		} else {
			h1 := r.H * f
			a = Block{X: r.X, Y: r.Y, W: r.W, H: h1}
			b = Block{X: r.X, Y: r.Y + h1, W: r.W, H: r.H - h1}
		}
		rects[best] = a
		rects = append(rects, b)
	}
	p := &Plan{byName: make(map[string]int, n)}
	for i, r := range rects {
		r.Name = RandomCell(i)
		p.byName[r.Name] = i
		p.Blocks = append(p.Blocks, r)
	}
	p.computeAdjacency()
	return p
}

// splitmix64 is the standard 64-bit mixing generator; self-contained so
// plan generation never depends on math/rand's version-dependent stream.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
