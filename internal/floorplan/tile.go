package floorplan

import "fmt"

// TileName returns the name block `name` carries on core `core` of a tiled
// plan: "C<core>_<name>". Per-core prefixes keep block names unique on the
// shared die while the underlying single-core plans keep their bare names.
func TileName(core int, name string) string {
	return fmt.Sprintf("C%d_%s", core, name)
}

// Tile replicates plan onto a rows×cols grid, producing one shared die
// whose blocks are laterally coupled across core boundaries: each core's
// outer edge abuts its grid neighbour exactly, so computeAdjacency links
// blocks across tiles the same way it links blocks within one.
//
// Block order is core-major with cores numbered row-major on the grid
// (core = r*cols + c): core k's blocks occupy indices
// [k*plan.NumBlocks(), (k+1)*plan.NumBlocks()) in the same order as the
// source plan. The thermal model preserves block order, so a power or
// temperature vector for the tiled plan is the per-core vectors
// concatenated — the multicore layer scatters and gathers by slicing.
func Tile(plan *Plan, rows, cols int) *Plan {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("floorplan: Tile with non-positive grid %dx%d", rows, cols))
	}
	pitchX := DieWidth
	pitchY := plan.dieHeight()
	nb := plan.NumBlocks()
	p := &Plan{
		Variant: plan.Variant,
		Blocks:  make([]Block, 0, rows*cols*nb),
		byName:  make(map[string]int, rows*cols*nb),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			core := r*cols + c
			for _, b := range plan.Blocks {
				b.Name = TileName(core, b.Name)
				b.X += float64(c) * pitchX
				b.Y += float64(r) * pitchY
				p.byName[b.Name] = len(p.Blocks)
				p.Blocks = append(p.Blocks, b)
			}
		}
	}
	p.computeAdjacency()
	return p
}
