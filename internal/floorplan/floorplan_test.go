package floorplan

import (
	"math"
	"strings"
	"testing"

	"repro/internal/config"
)

var variants = []config.FloorplanVariant{
	config.PlanIQConstrained,
	config.PlanALUConstrained,
	config.PlanRFConstrained,
}

func TestAllBlocksPresent(t *testing.T) {
	want := []string{
		ICache, DCache, BPred, ITB, DTB, LdStQ,
		IntMap, IntQ0, IntQ1, IntReg0, IntReg1,
		FPMap, FPQ0, FPQ1, FPReg, FPMul,
	}
	for i := 0; i < 6; i++ {
		want = append(want, IntExec(i))
	}
	for i := 0; i < 4; i++ {
		want = append(want, FPAdd(i))
	}
	for _, v := range variants {
		p := Build(v)
		for _, name := range want {
			if !p.Has(name) {
				t.Errorf("%v: missing block %s", v, name)
			}
		}
		if p.NumBlocks() != len(want) {
			t.Errorf("%v: %d blocks, want %d", v, p.NumBlocks(), len(want))
		}
	}
}

func TestIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Index of unknown block did not panic")
		}
	}()
	Build(config.PlanIQConstrained).Index("Nonexistent")
}

func TestConstantDieArea(t *testing.T) {
	// The paper scales areas, not total power: all variants must cover
	// the same die area.
	base := Build(config.PlanIQConstrained).TotalArea()
	for _, v := range variants {
		got := Build(v).TotalArea()
		if math.Abs(got-base)/base > 1e-9 {
			t.Errorf("%v: area %.3e, want %.3e", v, got, base)
		}
	}
}

func TestNoOverlapNoGaps(t *testing.T) {
	for _, v := range variants {
		p := Build(v)
		// Pairwise overlap check.
		for i := 0; i < len(p.Blocks); i++ {
			for j := i + 1; j < len(p.Blocks); j++ {
				a, b := p.Blocks[i], p.Blocks[j]
				xOverlap := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
				yOverlap := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
				if xOverlap > 1e-9 && yOverlap > 1e-9 {
					t.Fatalf("%v: %s and %s overlap", v, a.Name, b.Name)
				}
			}
		}
		// Total area must fill the bounding box (no gaps).
		width, height := 0.0, 0.0
		for _, b := range p.Blocks {
			width = math.Max(width, b.X+b.W)
			height = math.Max(height, b.Y+b.H)
		}
		if math.Abs(p.TotalArea()-width*height)/p.TotalArea() > 1e-6 {
			t.Errorf("%v: gaps in floorplan: blocks %.4e vs box %.4e", v, p.TotalArea(), width*height)
		}
	}
}

func TestVariantShrinksItsResource(t *testing.T) {
	iq := Build(config.PlanIQConstrained)
	alu := Build(config.PlanALUConstrained)
	rf := Build(config.PlanRFConstrained)

	// The IQ-constrained plan must have the smallest IntQ halves.
	if !(iq.Blocks[iq.Index(IntQ0)].Area() < alu.Blocks[alu.Index(IntQ0)].Area()) {
		t.Error("IQ-constrained plan does not shrink IntQ0")
	}
	// The ALU-constrained plan must have the smallest IntExec units.
	if !(alu.Blocks[alu.Index(IntExec(0))].Area() < iq.Blocks[iq.Index(IntExec(0))].Area()) {
		t.Error("ALU-constrained plan does not shrink IntExec0")
	}
	// The RF-constrained plan must have the smallest IntReg copies.
	if !(rf.Blocks[rf.Index(IntReg0)].Area() < iq.Blocks[iq.Index(IntReg0)].Area()) {
		t.Error("RF-constrained plan does not shrink IntReg0")
	}
}

func TestCriticalAdjacencies(t *testing.T) {
	for _, v := range variants {
		p := Build(v)
		adjacent := func(a, b string) bool {
			ia, ib := p.Index(a), p.Index(b)
			for _, adj := range p.Adj {
				if (adj.A == ia && adj.B == ib) || (adj.A == ib && adj.B == ia) {
					return true
				}
			}
			return false
		}
		// The two issue-queue halves must touch: lateral conduction
		// between them is central to the activity-toggling result.
		if !adjacent(IntQ0, IntQ1) {
			t.Errorf("%v: IntQ halves not adjacent", v)
		}
		if !adjacent(FPQ0, FPQ1) {
			t.Errorf("%v: FPQ halves not adjacent", v)
		}
		// Register-file copies likewise.
		if !adjacent(IntReg0, IntReg1) {
			t.Errorf("%v: IntReg copies not adjacent", v)
		}
		// Consecutive ALUs form a strip.
		for i := 0; i < 5; i++ {
			if !adjacent(IntExec(i), IntExec(i+1)) {
				t.Errorf("%v: IntExec%d and IntExec%d not adjacent", v, i, i+1)
			}
		}
		// Non-consecutive ALUs must NOT be adjacent (the point of the
		// per-copy model is that heat travels block to block).
		if adjacent(IntExec(0), IntExec(2)) {
			t.Errorf("%v: IntExec0 adjacent to IntExec2", v)
		}
	}
}

func TestAdjacencySymmetricAndPositive(t *testing.T) {
	for _, v := range variants {
		p := Build(v)
		for _, a := range p.Adj {
			if a.A == a.B {
				t.Fatalf("%v: self adjacency", v)
			}
			if a.Shared <= 0 || a.Dist <= 0 {
				t.Fatalf("%v: degenerate adjacency %+v", v, a)
			}
		}
	}
}

func TestNeighbors(t *testing.T) {
	p := Build(config.PlanIQConstrained)
	n := p.Neighbors(p.Index(IntQ0))
	if len(n) < 2 {
		t.Fatalf("IntQ0 has %d neighbours, want at least IntMap and IntQ1", len(n))
	}
}

func TestExecAndFPAddBlockLists(t *testing.T) {
	p := Build(config.PlanALUConstrained)
	ex := p.IntExecBlocks(6)
	if len(ex) != 6 {
		t.Fatalf("IntExecBlocks: %d", len(ex))
	}
	for i, idx := range ex {
		if p.Blocks[idx].Name != IntExec(i) {
			t.Fatalf("exec block %d is %s", i, p.Blocks[idx].Name)
		}
	}
	fa := p.FPAddBlocks(4)
	if len(fa) != 4 || p.Blocks[fa[3]].Name != FPAdd(3) {
		t.Fatal("FPAddBlocks wrong")
	}
}

func TestASCIIRendersAllRows(t *testing.T) {
	for _, v := range variants {
		s := Build(v).ASCII(120)
		for _, name := range []string{"Icache", "IntQ0", "IntExec0"} {
			if !strings.Contains(s, name) {
				t.Errorf("%v ASCII missing %s:\n%s", v, name, s)
			}
		}
		if !strings.Contains(s, "floorplan") {
			t.Errorf("ASCII missing header")
		}
	}
	// Default width path.
	if Build(config.PlanIQConstrained).ASCII(0) == "" {
		t.Error("ASCII(0) empty")
	}
}

func TestBlockAreaPositive(t *testing.T) {
	for _, v := range variants {
		for _, b := range Build(v).Blocks {
			if b.Area() <= 0 {
				t.Fatalf("%v: block %s has area %v", v, b.Name, b.Area())
			}
		}
	}
}
