// Package floorplan defines the die geometry for the thermal model. The
// layout follows the paper's Figure 5, which is itself the Alpha EV6
// floorplan shipped with HotSpot scaled to 90 nm, with the issue queues,
// integer register file, integer ALUs and FP adders split into individual
// thermal blocks (the per-copy granularity that lets the paper observe
// intra-resource heating asymmetry).
//
// Three variants reproduce the paper's §3.2 methodology: for each studied
// resource, its area is scaled down until it is the hottest block under
// peak utilization, and a nearby block is enlarged so the die area and
// total power stay constant.
package floorplan

import (
	"fmt"
	"math"

	"repro/internal/config"
)

// Block names. The thermal model and power meter address blocks by index;
// these names are the stable lookup keys.
const (
	ICache  = "Icache"
	DCache  = "Dcache"
	BPred   = "Bpred"
	ITB     = "ITB"
	DTB     = "DTB"
	LdStQ   = "LdStQ"
	IntMap  = "IntMap"
	IntQ0   = "IntQ0" // issue-queue half 0 (physical bottom half)
	IntQ1   = "IntQ1" // issue-queue half 1 (physical top half)
	IntReg0 = "IntReg0"
	IntReg1 = "IntReg1"
	FPMap   = "FPMap"
	FPQ0    = "FPQ0"
	FPQ1    = "FPQ1"
	FPReg   = "FPReg"
	FPMul   = "FPMul"
)

// IntExec returns the name of integer execution unit i.
func IntExec(i int) string { return fmt.Sprintf("IntExec%d", i) }

// FPAdd returns the name of floating-point adder i.
func FPAdd(i int) string { return fmt.Sprintf("FPAdd%d", i) }

// Block is one rectangular thermal block on the die. Coordinates and sizes
// are in meters.
type Block struct {
	Name       string
	X, Y, W, H float64
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.W * b.H }

// Adjacency records that two blocks share a lateral boundary of the given
// length (meters) and the distance between their centers along the axis
// perpendicular to that boundary.
type Adjacency struct {
	A, B   int
	Shared float64 // shared edge length
	Dist   float64 // center-to-center distance
}

// Plan is a complete floorplan: blocks plus derived adjacency.
type Plan struct {
	Variant config.FloorplanVariant
	Blocks  []Block
	Adj     []Adjacency
	byName  map[string]int
}

// Index returns the block index for name, or panics if absent — floorplan
// names are compile-time constants, so a miss is a programming error.
func (p *Plan) Index(name string) int {
	i, ok := p.byName[name]
	if !ok {
		panic("floorplan: unknown block " + name)
	}
	return i
}

// Has reports whether the plan contains a block with the given name.
func (p *Plan) Has(name string) bool {
	_, ok := p.byName[name]
	return ok
}

// NumBlocks returns the number of thermal blocks.
func (p *Plan) NumBlocks() int { return len(p.Blocks) }

// TotalArea returns the summed block area in m².
func (p *Plan) TotalArea() float64 {
	sum := 0.0
	for _, b := range p.Blocks {
		sum += b.Area()
	}
	return sum
}

// row describes one horizontal band of the die: a height and the blocks
// filling it left to right with relative width weights.
type row struct {
	height float64 // meters
	cells  []cell
}

type cell struct {
	name   string
	weight float64
}

const (
	mm = 1e-3
	// DieWidth is the die edge length; the EV6-derived plan is square.
	DieWidth = 8 * mm
)

// Build constructs the floorplan for the given variant.
//
// Layout (bottom row first, mirroring Figure 5's orientation with the
// caches at the top):
//
//	row 4 (top):    Icache | Dcache
//	row 3:          Bpred | ITB | DTB | LdStQ
//	row 2:          FPMap | FPQ0 | FPQ1 | FPAdd0..3 | FPMul | FPReg
//	row 1:          IntMap | IntQ0 | IntQ1 | IntReg0 | IntReg1
//	row 0 (bottom): IntExec0..5
func Build(variant config.FloorplanVariant) *Plan {
	// Baseline relative width weights. Variants adjust these: the
	// constrained resource shrinks and a named neighbour absorbs the
	// slack, keeping each row exactly full (constant die area).
	intQW := 1.0
	intRegW := 1.2
	intExecW := 1.0
	intMapW := 1.4
	fpQW := 0.9
	fpAddW := 0.8
	fpMapW := 0.65
	ldstqW := 1.2

	switch variant {
	case config.PlanIQConstrained:
		// Shrink both issue queues; IntMap and FPMap absorb the area.
		intMapW += 2 * (intQW - 0.50)
		intQW = 0.50
		fpMapW += 2 * (fpQW - 0.48)
		fpQW = 0.48
	case config.PlanALUConstrained:
		// Shrink the integer ALUs and FP adders; a spacer at the row end
		// (modelled as widening IntExec5's right neighbour, here folded
		// into LdStQ and FPMul which sit above) is approximated by
		// renormalizing within the row: IntExec row gains a filler via
		// wider IntReg copies in row 1 — area moves to the register
		// files, the paper's "nearby resource".
		intRegW += 3 * (intExecW - 0.5)
		intExecW = 0.5
		fpQW += 2 * (fpAddW - 0.22)
		fpAddW = 0.22
	case config.PlanRFConstrained:
		// Shrink the integer register-file copies; IntMap absorbs.
		intMapW += 2 * (intRegW - 0.5)
		intRegW = 0.5
	}

	rows := []row{
		{height: 1.3 * mm, cells: []cell{
			{IntExec(0), intExecW}, {IntExec(1), intExecW}, {IntExec(2), intExecW},
			{IntExec(3), intExecW}, {IntExec(4), intExecW}, {IntExec(5), intExecW},
		}},
		{height: 1.5 * mm, cells: []cell{
			{IntMap, intMapW}, {IntQ0, intQW}, {IntQ1, intQW},
			{IntReg0, intRegW}, {IntReg1, intRegW},
		}},
		{height: 1.5 * mm, cells: []cell{
			{FPMap, fpMapW}, {FPQ0, fpQW}, {FPQ1, fpQW},
			{FPAdd(0), fpAddW}, {FPAdd(1), fpAddW}, {FPAdd(2), fpAddW}, {FPAdd(3), fpAddW},
			{FPMul, 0.75}, {FPReg, 1.6},
		}},
		{height: 1.2 * mm, cells: []cell{
			{BPred, 1.0}, {ITB, 0.7}, {DTB, 0.7}, {LdStQ, ldstqW},
		}},
		{height: 2.5 * mm, cells: []cell{
			{ICache, 1.0}, {DCache, 1.0},
		}},
	}

	// The ALU-constrained variant moves ALU area to the register files in
	// a *different* row; rows always renormalize to the die width, so the
	// absolute areas work out (the register-file row's weights grew, the
	// exec row's shrank, but each row spans the full die width with its
	// own height). To actually shrink the exec blocks' area we reduce the
	// exec row height and grow the register row height by the same die
	// area. Do that here.
	if variant == config.PlanALUConstrained {
		delta := 0.85 * mm
		rows[0].height -= delta
		rows[1].height += delta
	}

	p := &Plan{Variant: variant, byName: make(map[string]int)}
	y := 0.0
	for _, r := range rows {
		total := 0.0
		for _, c := range r.cells {
			total += c.weight
		}
		x := 0.0
		for _, c := range r.cells {
			w := DieWidth * c.weight / total
			p.byName[c.name] = len(p.Blocks)
			p.Blocks = append(p.Blocks, Block{Name: c.name, X: x, Y: y, W: w, H: r.height})
			x += w
		}
		y += r.height
	}
	p.computeAdjacency()
	return p
}

// computeAdjacency finds every pair of blocks sharing a boundary segment
// and records the shared length and center distance. Lateral thermal
// resistances are derived from these.
func (p *Plan) computeAdjacency() {
	const eps = 1e-9
	p.Adj = p.Adj[:0]
	for i := 0; i < len(p.Blocks); i++ {
		for j := i + 1; j < len(p.Blocks); j++ {
			a, b := p.Blocks[i], p.Blocks[j]
			// Vertical shared edge (side-by-side blocks).
			if math.Abs(a.X+a.W-b.X) < eps || math.Abs(b.X+b.W-a.X) < eps {
				lo := math.Max(a.Y, b.Y)
				hi := math.Min(a.Y+a.H, b.Y+b.H)
				if hi-lo > eps {
					p.Adj = append(p.Adj, Adjacency{
						A: i, B: j, Shared: hi - lo,
						Dist: math.Abs((a.X + a.W/2) - (b.X + b.W/2)),
					})
					continue
				}
			}
			// Horizontal shared edge (stacked blocks).
			if math.Abs(a.Y+a.H-b.Y) < eps || math.Abs(b.Y+b.H-a.Y) < eps {
				lo := math.Max(a.X, b.X)
				hi := math.Min(a.X+a.W, b.X+b.W)
				if hi-lo > eps {
					p.Adj = append(p.Adj, Adjacency{
						A: i, B: j, Shared: hi - lo,
						Dist: math.Abs((a.Y + a.H/2) - (b.Y + b.H/2)),
					})
				}
			}
		}
	}
}

// Neighbors returns the adjacency records touching block i.
func (p *Plan) Neighbors(i int) []Adjacency {
	var out []Adjacency
	for _, a := range p.Adj {
		if a.A == i || a.B == i {
			out = append(out, a)
		}
	}
	return out
}

// IntExecBlocks returns the indices of the n integer execution units.
func (p *Plan) IntExecBlocks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p.Index(IntExec(i))
	}
	return out
}

// FPAddBlocks returns the indices of the n floating-point adders.
func (p *Plan) FPAddBlocks(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = p.Index(FPAdd(i))
	}
	return out
}

// ASCII renders the floorplan as a rough text diagram, one row of blocks
// per line from the top of the die down, with block widths proportional to
// geometry. Used by cmd/floorplan to reproduce Figure 5.
func (p *Plan) ASCII(cols int) string {
	if cols <= 0 {
		cols = 96
	}
	// Group blocks into rows by Y coordinate.
	type rowGroup struct {
		y      float64
		blocks []Block
	}
	var groups []rowGroup
	for _, b := range p.Blocks {
		found := false
		for gi := range groups {
			if math.Abs(groups[gi].y-b.Y) < 1e-9 {
				groups[gi].blocks = append(groups[gi].blocks, b)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, rowGroup{y: b.Y, blocks: []Block{b}})
		}
	}
	// Sort rows top-down and blocks left-right (insertion sort: tiny n).
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].y > groups[j-1].y; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
	out := fmt.Sprintf("%v floorplan, %.1f x %.1f mm\n", p.Variant, DieWidth/mm, p.dieHeight()/mm)
	for _, g := range groups {
		bs := g.blocks
		for i := 1; i < len(bs); i++ {
			for j := i; j > 0 && bs[j].X < bs[j-1].X; j-- {
				bs[j], bs[j-1] = bs[j-1], bs[j]
			}
		}
		line := "|"
		for _, b := range bs {
			w := int(b.W / DieWidth * float64(cols))
			if w < 3 {
				w = 3
			}
			label := b.Name
			if len(label) > w-1 {
				label = label[:w-1]
			}
			for len(label) < w-1 {
				label += " "
			}
			line += label + "|"
		}
		out += line + "\n"
	}
	return out
}

func (p *Plan) dieHeight() float64 {
	h := 0.0
	for _, b := range p.Blocks {
		if top := b.Y + b.H; top > h {
			h = top
		}
	}
	return h
}
