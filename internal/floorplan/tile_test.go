package floorplan

import (
	"math"
	"testing"

	"repro/internal/config"
)

func TestTileGeometry(t *testing.T) {
	base := Build(config.PlanIQConstrained)
	for _, dims := range [][2]int{{1, 1}, {1, 2}, {2, 2}, {1, 4}, {2, 4}, {3, 3}} {
		rows, cols := dims[0], dims[1]
		p := Tile(base, rows, cols)
		if p.NumBlocks() != rows*cols*base.NumBlocks() {
			t.Fatalf("Tile(%d,%d): %d blocks, want %d", rows, cols, p.NumBlocks(), rows*cols*base.NumBlocks())
		}
		geometryInvariants(t, p)
	}
}

// TestTileCoreMajorOrder pins the block-index contract the multicore layer
// slices by: core k's blocks occupy [k*nb, (k+1)*nb) in source-plan order
// under the per-core name prefix.
func TestTileCoreMajorOrder(t *testing.T) {
	base := Build(config.PlanALUConstrained)
	nb := base.NumBlocks()
	rows, cols := 2, 3
	p := Tile(base, rows, cols)
	for core := 0; core < rows*cols; core++ {
		for i, b := range base.Blocks {
			want := TileName(core, b.Name)
			got := p.Blocks[core*nb+i]
			if got.Name != want {
				t.Fatalf("core %d block %d: name %q, want %q", core, i, got.Name, want)
			}
			if p.Index(want) != core*nb+i {
				t.Fatalf("core %d block %d: index %d, want %d", core, i, p.Index(want), core*nb+i)
			}
			if got.W != b.W || got.H != b.H {
				t.Fatalf("core %d block %q: size changed", core, b.Name)
			}
		}
	}
}

// TestTileCrossCoreAdjacency: each core reproduces the base plan's internal
// adjacency exactly, and abutting tiles are laterally coupled — the whole
// point of the shared die.
func TestTileCrossCoreAdjacency(t *testing.T) {
	base := Build(config.PlanIQConstrained)
	nb := base.NumBlocks()
	p := Tile(base, 2, 2)
	internal := make(map[int]int) // core -> internal pair count
	cross := 0
	for _, a := range p.Adj {
		ca, cb := a.A/nb, a.B/nb
		if ca == cb {
			internal[ca]++
		} else {
			cross++
		}
	}
	for core := 0; core < 4; core++ {
		if internal[core] != len(base.Adj) {
			t.Fatalf("core %d has %d internal adjacency pairs, base plan has %d",
				core, internal[core], len(base.Adj))
		}
	}
	if cross == 0 {
		t.Fatal("no cross-core adjacency: tiles are thermally decoupled")
	}
	baseSet := adjacencySet(base)
	for _, a := range p.Adj {
		if a.A/nb != a.B/nb {
			continue
		}
		core := a.A / nb
		want, ok := baseSet[[2]int{a.A - core*nb, a.B - core*nb}]
		if !ok {
			t.Fatalf("core %d pair (%d,%d) absent from base plan", core, a.A-core*nb, a.B-core*nb)
		}
		if math.Abs(a.Shared-want.Shared) > 1e-12 || math.Abs(a.Dist-want.Dist) > 1e-12 {
			t.Fatalf("core %d pair (%d,%d): tiled %+v vs base %+v", core, a.A, a.B, a, want)
		}
	}
}

func TestTilePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Tile(0, 2) did not panic")
		}
	}()
	Tile(Build(config.PlanIQConstrained), 0, 2)
}

// TestDegenerateSingleBlockPlans: n=1 / rows=1 shapes must build valid
// plans — one block, empty (but non-degenerate) adjacency, resolvable
// names — so the thermal model can be built on them (see the matching
// construction tests in internal/thermal).
func TestDegenerateSingleBlockPlans(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan *Plan
	}{
		{"Mesh(1,1)", Mesh(1, 1)},
		{"Random(1)", Random(1, 42)},
		{"Tile(base,1,1) single core", Tile(Build(config.PlanIQConstrained), 1, 1)},
	} {
		p := tc.plan
		geometryInvariants(t, p)
		if tc.name != "Tile(base,1,1) single core" {
			if p.NumBlocks() != 1 {
				t.Fatalf("%s: %d blocks", tc.name, p.NumBlocks())
			}
			if len(p.Adj) != 0 {
				t.Fatalf("%s: single block has %d adjacency records", tc.name, len(p.Adj))
			}
			if p.Neighbors(0) != nil {
				t.Fatalf("%s: single block has neighbors", tc.name)
			}
		}
	}
	// rows=1: a single-row mesh is a chain.
	row := Mesh(1, 5)
	geometryInvariants(t, row)
	if len(row.Adj) != 4 {
		t.Fatalf("Mesh(1,5): %d adjacency records, want 4", len(row.Adj))
	}
}
