package floorplan

import (
	"math"
	"testing"
)

// geometryInvariants runs the same no-overlap/no-gap and adjacency
// sanity checks the paper plans satisfy (see floorplan_test.go) against
// a synthetic plan.
func geometryInvariants(t *testing.T, p *Plan) {
	t.Helper()
	for i := 0; i < len(p.Blocks); i++ {
		for j := i + 1; j < len(p.Blocks); j++ {
			a, b := p.Blocks[i], p.Blocks[j]
			xOverlap := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
			yOverlap := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
			if xOverlap > 1e-9 && yOverlap > 1e-9 {
				t.Fatalf("%s and %s overlap", a.Name, b.Name)
			}
		}
	}
	width, height := 0.0, 0.0
	for _, b := range p.Blocks {
		if b.Area() <= 0 {
			t.Fatalf("block %s has area %v", b.Name, b.Area())
		}
		width = math.Max(width, b.X+b.W)
		height = math.Max(height, b.Y+b.H)
	}
	if math.Abs(p.TotalArea()-width*height)/p.TotalArea() > 1e-6 {
		t.Fatalf("gaps: blocks %.6e vs bounding box %.6e", p.TotalArea(), width*height)
	}
	for _, a := range p.Adj {
		if a.A == a.B {
			t.Fatal("self adjacency")
		}
		if a.Shared <= 0 || a.Dist <= 0 {
			t.Fatalf("degenerate adjacency %+v", a)
		}
	}
}

// adjacencySet keys adjacency records by unordered pair for reciprocity
// and cross-checks.
func adjacencySet(p *Plan) map[[2]int]Adjacency {
	set := make(map[[2]int]Adjacency, len(p.Adj))
	for _, a := range p.Adj {
		lo, hi := a.A, a.B
		if lo > hi {
			lo, hi = hi, lo
		}
		set[[2]int{lo, hi}] = a
	}
	return set
}

func TestMeshGeometry(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {4, 4}, {7, 8}, {15, 20}} {
		p := Mesh(dims[0], dims[1])
		if p.NumBlocks() != dims[0]*dims[1] {
			t.Fatalf("Mesh(%d,%d): %d blocks", dims[0], dims[1], p.NumBlocks())
		}
		geometryInvariants(t, p)
	}
}

// TestMeshAdjacencyMatchesGeometricScan pins the mesh's enumerated
// adjacency to the geometric O(n²) scan the paper plans use: same pair
// set, same shared-edge lengths and center distances, each pair recorded
// exactly once (reciprocity).
func TestMeshAdjacencyMatchesGeometricScan(t *testing.T) {
	p := Mesh(6, 9)
	direct := adjacencySet(p)
	if len(direct) != len(p.Adj) {
		t.Fatalf("duplicate adjacency records: %d pairs from %d records", len(direct), len(p.Adj))
	}
	scan := &Plan{Blocks: p.Blocks}
	scan.computeAdjacency()
	scanned := adjacencySet(scan)
	if len(scanned) != len(direct) {
		t.Fatalf("mesh enumerates %d pairs, geometric scan finds %d", len(direct), len(scanned))
	}
	for pair, want := range scanned {
		got, ok := direct[pair]
		if !ok {
			t.Fatalf("pair %v missing from mesh adjacency", pair)
		}
		if math.Abs(got.Shared-want.Shared) > 1e-12 || math.Abs(got.Dist-want.Dist) > 1e-12 {
			t.Fatalf("pair %v: mesh %+v vs scan %+v", pair, got, want)
		}
	}
}

func TestMeshDegrees(t *testing.T) {
	rows, cols := 5, 7
	p := Mesh(rows, cols)
	degree := make(map[int]int)
	for _, a := range p.Adj {
		degree[a.A]++
		degree[a.B]++
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			want := 4
			if r == 0 || r == rows-1 {
				want--
			}
			if c == 0 || c == cols-1 {
				want--
			}
			if got := degree[p.Index(MeshCell(r, c))]; got != want {
				t.Fatalf("cell (%d,%d) degree %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestMeshPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mesh(0, 5) did not panic")
		}
	}()
	Mesh(0, 5)
}

func TestRandomGeometry(t *testing.T) {
	for _, n := range []int{1, 2, 17, 64, 200} {
		p := Random(n, 0xabcd)
		if p.NumBlocks() != n {
			t.Fatalf("Random(%d): %d blocks", n, p.NumBlocks())
		}
		geometryInvariants(t, p)
	}
}

// TestRandomDeterministic: the same (n, seed) yields the same plan —
// geometry and adjacency — across calls; a different seed yields a
// different partition.
func TestRandomDeterministic(t *testing.T) {
	a := Random(40, 7)
	b := Random(40, 7)
	if len(a.Blocks) != len(b.Blocks) || len(a.Adj) != len(b.Adj) {
		t.Fatal("same seed, different shape")
	}
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] {
			t.Fatalf("same seed, block %d differs: %+v vs %+v", i, a.Blocks[i], b.Blocks[i])
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("same seed, adjacency %d differs", i)
		}
	}
	c := Random(40, 8)
	same := true
	for i := range a.Blocks {
		if a.Blocks[i] != c.Blocks[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestRandomAreaConserved: guillotine splits partition the die, so the
// total block area equals the die area at any n.
func TestRandomAreaConserved(t *testing.T) {
	die := DieWidth * DieWidth
	for _, n := range []int{3, 30, 300} {
		if got := Random(n, 1).TotalArea(); math.Abs(got-die)/die > 1e-9 {
			t.Fatalf("Random(%d): area %.6e, want %.6e", n, got, die)
		}
	}
}

func TestRandomPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Random(0) did not panic")
		}
	}()
	Random(0, 1)
}

// TestSynthPlanNamesResolve: generated names round-trip through the
// name index like paper block names do.
func TestSynthPlanNamesResolve(t *testing.T) {
	m := Mesh(3, 4)
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			i := m.Index(MeshCell(r, c))
			if m.Blocks[i].Name != MeshCell(r, c) {
				t.Fatalf("index mismatch for %s", MeshCell(r, c))
			}
		}
	}
	rp := Random(12, 3)
	for i := 0; i < 12; i++ {
		if rp.Index(RandomCell(i)) != i {
			t.Fatalf("random plan index mismatch at %d", i)
		}
	}
	if !m.Has(MeshCell(0, 0)) || m.Has("Nope") {
		t.Fatal("Has misbehaves on synthetic plans")
	}
}
