package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassMapping(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpAdd, ClassIntALU},
		{OpSub, ClassIntALU},
		{OpXor, ClassIntALU},
		{OpAnd, ClassIntALU},
		{OpShl, ClassIntALU},
		{OpMul, ClassIntMul},
		{OpLoad, ClassMem},
		{OpStore, ClassMem},
		{OpBr, ClassBranch},
		{OpFAdd, ClassFPAdd},
		{OpFMul, ClassFPMul},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestIsFP(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		want := op == OpFAdd || op == OpFMul
		if op.IsFP() != want {
			t.Errorf("%v.IsFP() = %v", op, op.IsFP())
		}
	}
}

func TestHasDest(t *testing.T) {
	noDest := map[Op]bool{OpStore: true, OpBr: true, OpNop: true}
	for op := OpNop; op < opCount; op++ {
		if op.HasDest() == noDest[op] {
			t.Errorf("%v.HasDest() = %v", op, op.HasDest())
		}
	}
}

func TestALUResultSemantics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		want uint64
	}{
		{OpAdd, 3, 4, 7},
		{OpSub, 10, 4, 6},
		{OpXor, 0xff, 0x0f, 0xf0},
		{OpAnd, 0xff, 0x0f, 0x0f},
		{OpShl, 1, 4, 16},
		{OpShl, 1, 64 + 4, 16}, // shift amount masked to 6 bits
		{OpMul, 6, 7, 42},
	}
	for _, c := range cases {
		if got := ALUResult(c.op, c.a, c.b); got != c.want {
			t.Errorf("ALUResult(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFPOpsDifferFromIntOps(t *testing.T) {
	// FAdd must not alias Add, else the FP pipeline would be untestable.
	if ALUResult(OpFAdd, 100, 200) == ALUResult(OpAdd, 100, 200) {
		t.Error("FAdd indistinguishable from Add")
	}
	if ALUResult(OpFMul, 100, 200) == ALUResult(OpMul, 100, 200) {
		t.Error("FMul indistinguishable from Mul")
	}
}

func TestEffAddrWraps(t *testing.T) {
	if got := EffAddr(10, -4); got != 6 {
		t.Fatalf("EffAddr(10,-4) = %d", got)
	}
	if got := EffAddr(2, -4); got != ^uint64(0)-1 {
		t.Fatalf("EffAddr(2,-4) = %#x", got)
	}
}

func TestStateInitNonZero(t *testing.T) {
	s := NewState()
	if s.IntReg[1] == 0 || s.FPReg[1] == 0 {
		t.Fatal("registers initialized to zero; dataflow bugs could hide")
	}
	if s.IntReg[1] == s.IntReg[2] {
		t.Fatal("registers not distinct")
	}
}

func TestExecLoadStore(t *testing.T) {
	s := NewState()
	s.IntReg[2] = 0xdead
	s.Exec(Inst{Op: OpStore, Src1: 1, Src2: 2, Addr: 1024})
	if got := s.Mem[1024]; got != 0xdead {
		t.Fatalf("store wrote %#x", got)
	}
	s.Exec(Inst{Op: OpLoad, Dest: 3, Src1: 1, Addr: 1024})
	if got := s.IntReg[3]; got != 0xdead {
		t.Fatalf("load read %#x", got)
	}
}

func TestExecBranchNoEffect(t *testing.T) {
	s := NewState()
	before := *s
	s.Exec(Inst{Op: OpBr, Src1: 4, Taken: true, Target: 0x40})
	if s.IntReg != before.IntReg || s.FPReg != before.FPReg {
		t.Fatal("branch modified register state")
	}
}

func TestDiffDetectsEveryField(t *testing.T) {
	a, b := NewState(), NewState()
	if d := a.Diff(b); d != "" {
		t.Fatalf("fresh states differ: %s", d)
	}
	b.IntReg[5]++
	if d := a.Diff(b); !strings.Contains(d, "r5") {
		t.Fatalf("int diff not detected: %q", d)
	}
	b.IntReg[5]--
	b.FPReg[6]++
	if d := a.Diff(b); !strings.Contains(d, "f6") {
		t.Fatalf("fp diff not detected: %q", d)
	}
	b.FPReg[6]--
	b.Mem[0x100] = 7
	if d := a.Diff(b); !strings.Contains(d, "mem") {
		t.Fatalf("mem diff not detected: %q", d)
	}
	a.Mem[0x100] = 7
	if d := a.Diff(b); d != "" {
		t.Fatalf("states should match: %s", d)
	}
}

func TestDiffTreatsAbsentAsZero(t *testing.T) {
	a, b := NewState(), NewState()
	a.Mem[0x200] = 0
	if d := a.Diff(b); d != "" {
		t.Fatalf("explicit zero should equal absent: %s", d)
	}
}

// Property: Exec is deterministic — executing the same instruction sequence
// on identical states yields identical states.
func TestQuickExecDeterministic(t *testing.T) {
	f := func(ops []uint8) bool {
		a, b := NewState(), NewState()
		for i, raw := range ops {
			op := Op(raw%uint8(opCount-1)) + 1
			in := Inst{
				Op:   op,
				Dest: int8(i % NumIntRegs),
				Src1: int8((i + 3) % NumIntRegs),
				Src2: int8((i + 7) % NumIntRegs),
				Imm:  int64(i * 8),
				Addr: uint64(i%16) * 8,
			}
			a.Exec(in)
			b.Exec(in)
		}
		return a.Diff(b) == ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	in := Inst{Seq: 12, Op: OpLoad, Dest: 3, Src1: 1, Imm: 8}
	if s := in.String(); !strings.Contains(s, "ld") {
		t.Errorf("load string %q", s)
	}
	in = Inst{Seq: 13, Op: OpStore, Src1: 1, Src2: 2, Imm: 8}
	if s := in.String(); !strings.Contains(s, "st") {
		t.Errorf("store string %q", s)
	}
	in = Inst{Seq: 14, Op: OpBr, Src1: 1, Taken: true}
	if s := in.String(); !strings.Contains(s, "br") {
		t.Errorf("branch string %q", s)
	}
	if Op(200).String() == "" {
		t.Error("unknown op should still render")
	}
}

func TestAllOpStringsDistinct(t *testing.T) {
	seen := map[string]Op{}
	for op := OpNop; op < opCount; op++ {
		s := op.String()
		if s == "" {
			t.Fatalf("op %d has empty mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %v and %v share mnemonic %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestInstStringVariants(t *testing.T) {
	cases := []Inst{
		{Op: OpLoadFP, Dest: 2, Src1: 1, Imm: 16},
		{Op: OpAdd, Dest: 1, Src1: 2, Src2: 3},
		{Op: OpNop},
		{Op: OpFMul, Dest: 4, Src1: 5, Src2: 6},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Fatalf("empty string for %v", in.Op)
		}
	}
}

func TestLoadFPClassification(t *testing.T) {
	if OpLoadFP.IsFP() {
		t.Error("FP loads issue on the integer side; IsFP must be false")
	}
	if !OpLoadFP.DestIsFP() {
		t.Error("FP load writes the FP register file")
	}
	if !OpLoadFP.IsMem() || OpLoadFP.Class() != ClassMem {
		t.Error("FP load is a memory operation")
	}
	if !OpFAdd.DestIsFP() || OpAdd.DestIsFP() {
		t.Error("DestIsFP wrong for ALU ops")
	}
}

func TestExecAllMatchesExec(t *testing.T) {
	insts := []Inst{
		{Op: OpAdd, Dest: 1, Src1: 2, Src2: 3},
		{Op: OpStore, Src1: 1, Src2: 2, Addr: 64},
		{Op: OpLoadFP, Dest: 5, Src1: 1, Addr: 64},
	}
	a, b := NewState(), NewState()
	a.ExecAll(insts)
	for _, in := range insts {
		b.Exec(in)
	}
	if d := a.Diff(b); d != "" {
		t.Fatalf("ExecAll differs from Exec loop: %s", d)
	}
	if a.ReadMem(64) == 0 {
		t.Fatal("store did not reach memory")
	}
	a.WriteMem(128, 7)
	if a.ReadMem(128) != 7 {
		t.Fatal("WriteMem/ReadMem roundtrip")
	}
}
