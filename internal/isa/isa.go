// Package isa defines the synthetic instruction set executed by the
// simulator. The paper's substrate executes Alpha binaries under
// SimpleScalar; we substitute a compact trace-driven ISA whose instructions
// carry real register and memory semantics. Real semantics matter for
// validation: the out-of-order pipeline's architectural result is checked
// against an in-order reference executor, which would be impossible with
// opcode-less "bubbles".
//
// The ISA is deliberately Alpha-flavoured: 32 integer registers, 32
// floating-point registers, loads/stores with base+displacement addressing,
// and conditional branches whose outcome is pre-resolved by the trace
// generator (trace-driven simulation, as in the paper's SimPoint runs).
package isa

import "fmt"

// Op identifies an operation. The Class groupings (not individual opcodes)
// determine which functional units may execute an instruction.
type Op uint8

// Operations. OpNop exists only as a zero value guard; generators never
// emit it.
const (
	OpNop    Op = iota
	OpAdd       // dest = src1 + src2
	OpSub       // dest = src1 - src2
	OpXor       // dest = src1 ^ src2
	OpAnd       // dest = src1 & src2
	OpShl       // dest = src1 << (src2 & 63)
	OpMul       // dest = src1 * src2 (integer multiply)
	OpLoad      // dest = mem[src1 + imm]
	OpStore     // mem[src1 + imm] = src2
	OpBr        // conditional branch; outcome carried in Inst.Taken
	OpFAdd      // fdest = fsrc1 (+) fsrc2 (integer-lane FP surrogate)
	OpFMul      // fdest = fsrc1 (*) fsrc2
	OpLoadFP    // fdest = mem[src1 + imm] (FP load: int AGU, FP destination)
	opCount
)

// Class partitions operations by the functional-unit type that executes
// them. Integer ALUs in the modelled core execute arithmetic, loads/stores
// (address generation), and branches, matching the paper's note that the 6
// IntExec units include "arithmetic, load/store, and branch units".
type Class uint8

const (
	ClassIntALU Class = iota // simple integer ops, address gen, branches
	ClassIntMul              // integer multiply (still issues to an int ALU)
	ClassMem                 // loads and stores
	ClassBranch              // conditional branches
	ClassFPAdd               // floating-point add pipeline
	ClassFPMul               // floating-point multiply pipeline
	classCount
)

// NumIntRegs and NumFPRegs size the architectural register files.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
)

// NoReg marks an absent register operand.
const NoReg = int8(-1)

// Inst is one dynamic instruction in a trace. Fields are plain values so
// slices of Inst are cache-friendly in the simulator's hot loop.
type Inst struct {
	Seq    uint64 // dynamic sequence number, 0-based
	PC     uint64 // synthetic program counter (used by branch predictor)
	Op     Op
	Dest   int8   // destination register, NoReg if none
	Src1   int8   // first source, NoReg if none
	Src2   int8   // second source, NoReg if none
	Imm    int64  // displacement for loads/stores
	Addr   uint64 // pre-resolved effective address (memory ops only)
	Taken  bool   // pre-resolved branch outcome (OpBr only)
	Target uint64 // branch target PC (OpBr only)
}

// Class returns the functional class of the operation.
func (op Op) Class() Class {
	switch op {
	case OpAdd, OpSub, OpXor, OpAnd, OpShl:
		return ClassIntALU
	case OpMul:
		return ClassIntMul
	case OpLoad, OpStore, OpLoadFP:
		return ClassMem
	case OpBr:
		return ClassBranch
	case OpFAdd:
		return ClassFPAdd
	case OpFMul:
		return ClassFPMul
	default:
		return ClassIntALU
	}
}

// IsFP reports whether the operation executes on the floating-point
// pipelines and issues into the floating-point issue queue. FP loads are
// NOT included: like the Alpha's ldt, they flow through the integer
// load/store path and only their destination is floating-point.
func (op Op) IsFP() bool {
	return op == OpFAdd || op == OpFMul
}

// DestIsFP reports whether the operation writes the floating-point
// register file.
func (op Op) DestIsFP() bool {
	return op == OpFAdd || op == OpFMul || op == OpLoadFP
}

// IsMem reports whether the operation accesses data memory.
func (op Op) IsMem() bool { return op == OpLoad || op == OpStore || op == OpLoadFP }

// IsBranch reports whether the operation is a control-flow instruction.
func (op Op) IsBranch() bool { return op == OpBr }

// HasDest reports whether the operation writes a destination register.
func (op Op) HasDest() bool {
	switch op {
	case OpStore, OpBr, OpNop:
		return false
	}
	return true
}

// String returns the mnemonic.
func (op Op) String() string {
	switch op {
	case OpNop:
		return "nop"
	case OpAdd:
		return "add"
	case OpSub:
		return "sub"
	case OpXor:
		return "xor"
	case OpAnd:
		return "and"
	case OpShl:
		return "shl"
	case OpMul:
		return "mul"
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpBr:
		return "br"
	case OpFAdd:
		return "fadd"
	case OpFMul:
		return "fmul"
	case OpLoadFP:
		return "ldf"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// String renders the instruction in a readable assembly-like form.
func (in Inst) String() string {
	switch {
	case in.Op == OpLoad || in.Op == OpLoadFP:
		return fmt.Sprintf("%06d %s r%d, %d(r%d)", in.Seq, in.Op, in.Dest, in.Imm, in.Src1)
	case in.Op == OpStore:
		return fmt.Sprintf("%06d %s r%d, %d(r%d)", in.Seq, in.Op, in.Src2, in.Imm, in.Src1)
	case in.Op == OpBr:
		return fmt.Sprintf("%06d %s r%d -> %#x (taken=%v)", in.Seq, in.Op, in.Src1, in.Target, in.Taken)
	case in.Op.HasDest():
		return fmt.Sprintf("%06d %s r%d, r%d, r%d", in.Seq, in.Op, in.Dest, in.Src1, in.Src2)
	default:
		return fmt.Sprintf("%06d %s", in.Seq, in.Op)
	}
}

// ALUResult computes the value produced by a register-writing, non-memory
// operation given its source operand values. It is shared by the
// out-of-order core and the in-order reference executor so they cannot
// disagree about semantics.
func ALUResult(op Op, a, b uint64) uint64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpXor:
		return a ^ b
	case OpAnd:
		return a & b
	case OpShl:
		return a << (b & 63)
	case OpMul:
		return a * b
	case OpFAdd:
		// Integer-lane surrogate for FP add: addition plus a rotation so
		// that FAdd and Add produce different dataflow.
		s := a + b
		return s<<1 | s>>63
	case OpFMul:
		return (a | 1) * (b | 1)
	}
	return 0
}

// EffAddr computes a base+displacement effective address. The simulator's
// memory operations carry generator-resolved addresses (Inst.Addr), so
// this helper exists for tools that synthesize addresses from register
// values.
func EffAddr(base uint64, imm int64) uint64 {
	return base + uint64(imm)
}
