package isa

import "fmt"

// StreamBase is the start of the streaming address region: the trace
// generator's "cold" accesses walk word by word upward from here, so the
// region is dense, 8-byte aligned, and written monotonically.
const StreamBase uint64 = 0x4000_0000

// State is an architectural machine state: the integer and floating-point
// register files plus data memory. It backs the in-order reference executor
// used to validate the out-of-order pipeline, and it also supplies the
// committed memory image that the pipeline's load/store queue reads through.
//
// Memory is split by region: the sparse map holds the hot/warm working
// sets, while aligned addresses at or above StreamBase live in a dense
// slice indexed by word offset. The streaming region grows one word per
// access forever, and a map would pay an overflow-bucket allocation for
// it every few thousand stores — the slice keeps the simulator's commit
// path allocation-free (amortized) in steady state.
type State struct {
	IntReg [NumIntRegs]uint64
	FPReg  [NumFPRegs]uint64
	Mem    map[uint64]uint64
	Stream []uint64
}

// NewState returns a zeroed architectural state with registers initialized
// to a fixed, non-trivial pattern (register i holds i*0x9e3779b9+1) so that
// dataflow bugs surface as value mismatches instead of hiding behind zeros.
func NewState() *State {
	s := &State{Mem: make(map[uint64]uint64)}
	for i := range s.IntReg {
		s.IntReg[i] = uint64(i)*0x9e3779b9 + 1
	}
	for i := range s.FPReg {
		s.FPReg[i] = uint64(i)*0xc2b2ae3d + 3
	}
	return s
}

// streamIdx maps an address to its word index in the dense streaming
// region, or ok=false for addresses the sparse map owns (below
// StreamBase, or unaligned).
func streamIdx(addr uint64) (uint64, bool) {
	if addr < StreamBase || addr%8 != 0 {
		return 0, false
	}
	return (addr - StreamBase) / 8, true
}

// ReadMem returns the value at addr (zero if never written).
func (s *State) ReadMem(addr uint64) uint64 {
	if idx, ok := streamIdx(addr); ok {
		if idx < uint64(len(s.Stream)) {
			return s.Stream[idx]
		}
		return 0
	}
	return s.Mem[addr]
}

// WriteMem stores v at addr.
func (s *State) WriteMem(addr uint64, v uint64) {
	if idx, ok := streamIdx(addr); ok {
		for uint64(len(s.Stream)) <= idx {
			s.Stream = append(s.Stream, 0)
		}
		s.Stream[idx] = v
		return
	}
	s.Mem[addr] = v
}

// Exec executes one instruction architecturally, in program order. Branches
// change no state (trace-driven control flow).
func (s *State) Exec(in Inst) {
	switch in.Op {
	case OpLoad:
		// Trace-driven addressing: the generator resolves the effective
		// address (Inst.Addr); Src1 still sources the AGU for timing.
		s.IntReg[in.Dest] = s.ReadMem(in.Addr)
	case OpLoadFP:
		s.FPReg[in.Dest] = s.ReadMem(in.Addr)
	case OpStore:
		s.WriteMem(in.Addr, s.IntReg[in.Src2])
	case OpBr, OpNop:
		// no architectural effect
	case OpFAdd, OpFMul:
		s.FPReg[in.Dest] = ALUResult(in.Op, s.FPReg[in.Src1], s.FPReg[in.Src2])
	default:
		s.IntReg[in.Dest] = ALUResult(in.Op, s.IntReg[in.Src1], s.IntReg[in.Src2])
	}
}

// ExecAll executes a slice of instructions in order.
func (s *State) ExecAll(insts []Inst) {
	for _, in := range insts {
		s.Exec(in)
	}
}

// Diff compares two states and returns a description of the first
// difference found, or "" if the states are architecturally identical.
// Memory comparison treats absent keys as zero.
func (s *State) Diff(o *State) string {
	for i := range s.IntReg {
		if s.IntReg[i] != o.IntReg[i] {
			return fmt.Sprintf("int r%d: %#x vs %#x", i, s.IntReg[i], o.IntReg[i])
		}
	}
	for i := range s.FPReg {
		if s.FPReg[i] != o.FPReg[i] {
			return fmt.Sprintf("fp f%d: %#x vs %#x", i, s.FPReg[i], o.FPReg[i])
		}
	}
	for addr, v := range s.Mem {
		if o.Mem[addr] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", addr, v, o.Mem[addr])
		}
	}
	for addr, v := range o.Mem {
		if s.Mem[addr] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", addr, s.Mem[addr], v)
		}
	}
	n := len(s.Stream)
	if len(o.Stream) > n {
		n = len(o.Stream)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.Stream) {
			a = s.Stream[i]
		}
		if i < len(o.Stream) {
			b = o.Stream[i]
		}
		if a != b {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", StreamBase+uint64(i)*8, a, b)
		}
	}
	return ""
}
