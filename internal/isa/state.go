package isa

import "fmt"

// StreamBase is the start of the streaming address region: the trace
// generator's "cold" accesses walk word by word upward from here, so the
// region is dense, 8-byte aligned, and written monotonically.
const StreamBase uint64 = 0x4000_0000

// HotBase and WarmBase anchor the trace generator's two reused working
// sets. Both regions are small (tens of KB to ~1 MB) and hammered by
// every load and store, so like the stream they live in dense slices
// instead of the map — the map's hashing was a measurable slice of the
// simulator's commit and store-forwarding paths.
const (
	HotBase  uint64 = 0x1000_0000
	WarmBase uint64 = 0x2000_0000

	// denseCapWords bounds how far the hot/warm slices may grow; aligned
	// addresses past the cap fall back to the sparse map. 2^23 words
	// (64 MB of address span per region) is far beyond any profile's
	// working set while keeping a stray address from ballooning memory.
	denseCapWords uint64 = 1 << 23
)

// State is an architectural machine state: the integer and floating-point
// register files plus data memory. It backs the in-order reference executor
// used to validate the out-of-order pipeline, and it also supplies the
// committed memory image that the pipeline's load/store queue reads through.
//
// Memory is split by region: aligned addresses in the hot, warm and
// streaming regions live in dense slices indexed by word offset (grown on
// first write, zero-filled like real memory); the sparse map holds
// everything else. The streaming region grows one word per access
// forever, and a map would pay an overflow-bucket allocation for it every
// few thousand stores — the slices keep the simulator's commit path
// allocation-free (amortized) in steady state and replace per-access map
// hashing with an index.
type State struct {
	IntReg [NumIntRegs]uint64
	FPReg  [NumFPRegs]uint64
	Mem    map[uint64]uint64
	Hot    []uint64
	Warm   []uint64
	Stream []uint64
}

// NewState returns a zeroed architectural state with registers initialized
// to a fixed, non-trivial pattern (register i holds i*0x9e3779b9+1) so that
// dataflow bugs surface as value mismatches instead of hiding behind zeros.
func NewState() *State {
	s := &State{Mem: make(map[uint64]uint64)}
	for i := range s.IntReg {
		s.IntReg[i] = uint64(i)*0x9e3779b9 + 1
	}
	for i := range s.FPReg {
		s.FPReg[i] = uint64(i)*0xc2b2ae3d + 3
	}
	return s
}

// region maps an address to its dense region and word index, or ok=false
// for addresses the sparse map owns (unaligned, below HotBase, between
// regions, or past a region's growth cap). The predicate depends only on
// the address, so reads and writes always agree on where a value lives.
func (s *State) region(addr uint64) (*[]uint64, uint64, bool) {
	if addr%8 != 0 || addr < HotBase {
		return nil, 0, false
	}
	if addr >= StreamBase {
		return &s.Stream, (addr - StreamBase) / 8, true
	}
	if addr >= WarmBase {
		if idx := (addr - WarmBase) / 8; idx < denseCapWords {
			return &s.Warm, idx, true
		}
		return nil, 0, false
	}
	if idx := (addr - HotBase) / 8; idx < denseCapWords {
		return &s.Hot, idx, true
	}
	return nil, 0, false
}

// ReadMem returns the value at addr (zero if never written).
func (s *State) ReadMem(addr uint64) uint64 {
	if r, idx, ok := s.region(addr); ok {
		if idx < uint64(len(*r)) {
			return (*r)[idx]
		}
		return 0
	}
	return s.Mem[addr]
}

// WriteMem stores v at addr.
func (s *State) WriteMem(addr uint64, v uint64) {
	if r, idx, ok := s.region(addr); ok {
		for uint64(len(*r)) <= idx {
			*r = append(*r, 0)
		}
		(*r)[idx] = v
		return
	}
	s.Mem[addr] = v
}

// Exec executes one instruction architecturally, in program order. Branches
// change no state (trace-driven control flow).
func (s *State) Exec(in Inst) {
	switch in.Op {
	case OpLoad:
		// Trace-driven addressing: the generator resolves the effective
		// address (Inst.Addr); Src1 still sources the AGU for timing.
		s.IntReg[in.Dest] = s.ReadMem(in.Addr)
	case OpLoadFP:
		s.FPReg[in.Dest] = s.ReadMem(in.Addr)
	case OpStore:
		s.WriteMem(in.Addr, s.IntReg[in.Src2])
	case OpBr, OpNop:
		// no architectural effect
	case OpFAdd, OpFMul:
		s.FPReg[in.Dest] = ALUResult(in.Op, s.FPReg[in.Src1], s.FPReg[in.Src2])
	default:
		s.IntReg[in.Dest] = ALUResult(in.Op, s.IntReg[in.Src1], s.IntReg[in.Src2])
	}
}

// ExecAll executes a slice of instructions in order.
func (s *State) ExecAll(insts []Inst) {
	for _, in := range insts {
		s.Exec(in)
	}
}

// Diff compares two states and returns a description of the first
// difference found, or "" if the states are architecturally identical.
// Memory comparison treats absent keys as zero.
func (s *State) Diff(o *State) string {
	for i := range s.IntReg {
		if s.IntReg[i] != o.IntReg[i] {
			return fmt.Sprintf("int r%d: %#x vs %#x", i, s.IntReg[i], o.IntReg[i])
		}
	}
	for i := range s.FPReg {
		if s.FPReg[i] != o.FPReg[i] {
			return fmt.Sprintf("fp f%d: %#x vs %#x", i, s.FPReg[i], o.FPReg[i])
		}
	}
	for addr, v := range s.Mem {
		if o.Mem[addr] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", addr, v, o.Mem[addr])
		}
	}
	for addr, v := range o.Mem {
		if s.Mem[addr] != v {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", addr, s.Mem[addr], v)
		}
	}
	if d := diffDense(s.Hot, o.Hot, HotBase); d != "" {
		return d
	}
	if d := diffDense(s.Warm, o.Warm, WarmBase); d != "" {
		return d
	}
	return diffDense(s.Stream, o.Stream, StreamBase)
}

// diffDense compares two dense memory regions, treating missing tail
// entries as zero, and reports the first mismatch.
func diffDense(x, y []uint64, base uint64) string {
	n := len(x)
	if len(y) > n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(x) {
			a = x[i]
		}
		if i < len(y) {
			b = y[i]
		}
		if a != b {
			return fmt.Sprintf("mem[%#x]: %#x vs %#x", base+uint64(i)*8, a, b)
		}
	}
	return ""
}
