package seltree

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func reqVec(n int, ready ...int) []int32 {
	req := make([]int32, n)
	for i := range req {
		req[i] = -1
	}
	for _, p := range ready {
		req[p] = int32(p + 100)
	}
	return req
}

func TestSingleRequestGoesToUnitZero(t *testing.T) {
	p := NewPool(32, 6)
	g := p.Select(reqVec(32, 17), nil, -1)
	if len(g) != 1 || g[0].Unit != 0 || g[0].Phys != 17 || g[0].ID != 117 {
		t.Fatalf("grants %+v", g)
	}
}

func TestStaticPriorityOrder(t *testing.T) {
	// Requests at several positions: units are assigned in entry priority
	// order (lowest physical first in conventional mode), unit 0 first.
	p := NewPool(32, 6)
	g := p.Select(reqVec(32, 30, 4, 12, 9), nil, -1)
	if len(g) != 4 {
		t.Fatalf("%d grants", len(g))
	}
	wantPhys := []int{4, 9, 12, 30}
	for i, w := range wantPhys {
		if g[i].Unit != i || g[i].Phys != w {
			t.Fatalf("grant %d = %+v, want unit %d phys %d", i, g[i], i, w)
		}
	}
}

func TestNoDoubleGrant(t *testing.T) {
	p := NewPool(32, 6)
	g := p.Select(reqVec(32, 5), nil, -1)
	if len(g) != 1 {
		t.Fatalf("single request granted %d times", len(g))
	}
}

func TestMoreRequestsThanUnits(t *testing.T) {
	p := NewPool(32, 2)
	g := p.Select(reqVec(32, 0, 1, 2, 3, 4), nil, -1)
	if len(g) != 2 {
		t.Fatalf("%d grants with 2 units", len(g))
	}
	if g[0].Phys != 0 || g[1].Phys != 1 {
		t.Fatalf("grants %+v", g)
	}
}

func TestBusyUnitSkipped(t *testing.T) {
	p := NewPool(32, 6)
	p.SetBusy(0, true)
	p.SetBusy(1, true)
	g := p.Select(reqVec(32, 3, 7), nil, -1)
	if len(g) != 2 {
		t.Fatalf("%d grants", len(g))
	}
	// The highest-priority request must fall through to unit 2.
	if g[0].Unit != 2 || g[0].Phys != 3 {
		t.Fatalf("first grant %+v, want unit 2 phys 3", g[0])
	}
	if g[1].Unit != 3 || g[1].Phys != 7 {
		t.Fatalf("second grant %+v", g[1])
	}
	if p.Grants[0] != 0 || p.Grants[2] != 1 {
		t.Fatal("grant counters wrong")
	}
}

func TestAllBusyGrantsNothing(t *testing.T) {
	p := NewPool(32, 3)
	for u := 0; u < 3; u++ {
		p.SetBusy(u, true)
	}
	if !p.AllBusy() {
		t.Fatal("AllBusy false")
	}
	if g := p.Select(reqVec(32, 1, 2), nil, -1); len(g) != 0 {
		t.Fatalf("busy pool granted %d", len(g))
	}
	p.SetBusy(1, false)
	if p.AllBusy() || p.ActiveUnits() != 1 {
		t.Fatal("busy bookkeeping wrong")
	}
}

func TestPreferTopMode(t *testing.T) {
	p := NewPool(32, 2)
	p.SetPreferTop(true)
	if !p.PreferTop() {
		t.Fatal("mode not set")
	}
	// Requests in both halves: top half (16..31) must win, lowest first
	// within the half.
	g := p.Select(reqVec(32, 2, 20, 25), nil, -1)
	if g[0].Phys != 20 || g[1].Phys != 25 {
		t.Fatalf("preferTop grants %+v", g)
	}
	// Bottom half is still served when the top is empty.
	g = p.Select(reqVec(32, 2), nil, -1)
	if len(g) != 1 || g[0].Phys != 2 {
		t.Fatalf("bottom fallback grants %+v", g)
	}
}

func TestMaxGrantsCap(t *testing.T) {
	p := NewPool(32, 6)
	g := p.Select(reqVec(32, 0, 1, 2, 3, 4, 5), nil, 3)
	if len(g) != 3 {
		t.Fatalf("cap ignored: %d grants", len(g))
	}
}

func TestRoundRobinSpreadsGrants(t *testing.T) {
	p := NewPool(32, 6)
	p.SetRoundRobin(true)
	// One request per cycle for 600 cycles: static priority would give
	// unit 0 all 600; round-robin spreads them evenly.
	for c := 0; c < 600; c++ {
		p.Select(reqVec(32, 5), nil, -1)
		p.Rotate()
	}
	for u := 0; u < 6; u++ {
		if p.Grants[u] != 100 {
			t.Fatalf("unit %d got %d grants, want 100", u, p.Grants[u])
		}
	}
}

func TestStaticPriorityConcentratesGrants(t *testing.T) {
	// The asymmetry behind §2.2: with 1-2 ready instructions per cycle,
	// unit 0 is used every cycle and unit 5 never.
	p := NewPool(32, 6)
	r := rng.New(7)
	for c := 0; c < 1000; c++ {
		ready := []int{r.Intn(32)}
		if r.Bool(0.5) {
			q := r.Intn(32)
			if q != ready[0] {
				ready = append(ready, q)
			}
		}
		p.Select(reqVec(32, ready...), nil, -1)
	}
	if p.Grants[0] != 1000 {
		t.Fatalf("unit 0 got %d grants, want 1000", p.Grants[0])
	}
	if p.Grants[2] != 0 || p.Grants[5] != 0 {
		t.Fatalf("low-priority units used: %v", p.Grants)
	}
}

func TestRoundRobinWithBusyUnit(t *testing.T) {
	p := NewPool(32, 4)
	p.SetRoundRobin(true)
	p.SetBusy(2, true)
	counts := make([]uint64, 4)
	for c := 0; c < 400; c++ {
		g := p.Select(reqVec(32, 9), nil, -1)
		if len(g) != 1 {
			t.Fatalf("cycle %d: %d grants", c, len(g))
		}
		counts[g[0].Unit]++
		p.Rotate()
	}
	if counts[2] != 0 {
		t.Fatal("busy unit granted")
	}
	for _, u := range []int{0, 1, 3} {
		if counts[u] == 0 {
			t.Fatalf("unit %d starved under round-robin", u)
		}
	}
}

func TestResetStats(t *testing.T) {
	p := NewPool(32, 2)
	p.Select(reqVec(32, 1), nil, -1)
	p.ResetStats()
	if p.Grants[0] != 0 {
		t.Fatal("stats not reset")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad entries": func() { NewPool(30, 4) },
		"no units":    func() { NewPool(32, 0) },
		"bad reqvec":  func() { NewPool(32, 2).Select(make([]int32, 5), nil, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: the tree-structured selection equals a reference "lowest index
// in preferred half first" scan, for any request pattern and mode.
func TestQuickTreeEqualsReferenceScan(t *testing.T) {
	f := func(mask uint32, preferTop bool) bool {
		p := NewPool(32, 1)
		p.SetPreferTop(preferTop)
		req := make([]int32, 32)
		for i := range req {
			if mask&(1<<i) != 0 {
				req[i] = int32(i)
			} else {
				req[i] = -1
			}
		}
		g := p.Select(req, nil, -1)

		// Reference.
		want := -1
		lo, hi := 0, 16
		if preferTop {
			lo, hi = 16, 32
		}
		for i := lo; i < hi; i++ {
			if req[i] >= 0 {
				want = i
				break
			}
		}
		if want == -1 {
			lo ^= 16
			for i := lo; i < lo+16; i++ {
				if req[i] >= 0 {
					want = i
					break
				}
			}
		}
		if want == -1 {
			return len(g) == 0
		}
		return len(g) == 1 && g[0].Phys == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: no entry is ever granted twice in one Select call, and grants
// never exceed active units or requests.
func TestQuickGrantInvariants(t *testing.T) {
	f := func(mask uint32, busyMask uint8) bool {
		p := NewPool(32, 6)
		for u := 0; u < 6; u++ {
			p.SetBusy(u, busyMask&(1<<u) != 0)
		}
		req := make([]int32, 32)
		nreq := 0
		for i := range req {
			if mask&(1<<i) != 0 {
				req[i] = int32(i)
				nreq++
			} else {
				req[i] = -1
			}
		}
		g := p.Select(req, nil, -1)
		if len(g) > p.ActiveUnits() || len(g) > nreq {
			return false
		}
		seenPhys := map[int]bool{}
		seenUnit := map[int]bool{}
		for _, gr := range g {
			if seenPhys[gr.Phys] || seenUnit[gr.Unit] || p.busy[gr.Unit] || req[gr.Phys] < 0 {
				return false
			}
			seenPhys[gr.Phys] = true
			seenUnit[gr.Unit] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with round-robin rotation over many cycles, single-request
// traffic lands on every unit equally regardless of entry position.
func TestQuickRoundRobinFairness(t *testing.T) {
	f := func(seed uint64) bool {
		p := NewPool(32, 6)
		p.SetRoundRobin(true)
		r := rng.New(seed)
		for c := 0; c < 240; c++ {
			p.Select(reqVec(32, r.Intn(32)), nil, -1)
			p.Rotate()
		}
		for u := 0; u < 6; u++ {
			if p.Grants[u] != 40 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization is work-conserving — with k requests and u free
// units, exactly min(k, u) grants are issued.
func TestQuickWorkConserving(t *testing.T) {
	f := func(mask uint32, busyMask uint8) bool {
		p := NewPool(32, 6)
		free := 0
		for u := 0; u < 6; u++ {
			b := busyMask&(1<<u) != 0
			p.SetBusy(u, b)
			if !b {
				free++
			}
		}
		req := make([]int32, 32)
		k := 0
		for i := range req {
			if mask&(1<<i) != 0 {
				req[i] = int32(i)
				k++
			} else {
				req[i] = -1
			}
		}
		want := k
		if free < want {
			want = free
		}
		return len(p.Select(req, nil, -1)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
