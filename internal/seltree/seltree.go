// Package seltree implements the instruction select logic of §2.2: one
// hierarchical select tree per functional unit, serialized in static
// priority order (tree k sees only requests not granted by trees 0..k-1,
// Palacharla-style). Each tree is hard-wired to its unit, so the static
// tree order imposes a static unit priority: if one instruction is ready,
// unit 0 executes it; unit 5 runs only in full-width cycles. That policy
// is the source of the ALU utilization asymmetry the paper exploits.
//
// Three paper mechanisms live here:
//
//   - Mode-aware root arbiter: for the activity-toggled issue queue, only
//     the root node of each tree flips which physical half has priority
//     (Figure 3); the subtrees are untouched.
//   - Busy-signal turnoff: a unit marked busy (thermally turned off)
//     causes its tree to grant nothing, and its requests pass unmasked to
//     lower-priority trees — the paper's fine-grain turnoff hook.
//   - Round-robin mode: the idealized dynamic-priority rotation the paper
//     uses as an upper bound (and explicitly rejects as real hardware).
package seltree

import (
	"fmt"
	"math/bits"

	"repro/internal/stats"
)

// Arity is the fan-in of the L1/L2 arbiter nodes (Figure 2 shows 4-input
// nodes over a 16-entry queue).
const Arity = 4

// Grant records one selected instruction: the unit that granted it and the
// physical queue entry it came from.
type Grant struct {
	Unit int
	Phys int
	ID   int32
}

// Pool is the bank of serialized select trees for one class of functional
// units (the 6 integer ALUs, the 4 FP adders, or the FP multiplier).
type Pool struct {
	entries int
	units   int

	preferTop  bool // root-arbiter mode (set from the issue queue's mode)
	roundRobin bool
	rotation   int

	busy []bool // per-unit busy (thermal turnoff or structural)

	// Half masks of the request vector, fixed at construction so the
	// per-grant treeSelect does no shift arithmetic.
	lowMask, highMask uint64

	bus        *stats.Bus
	grantSlots []stats.SlotID // one zero-joule slot per unit

	// Grants counts lifetime grants per unit — the utilization asymmetry
	// statistic behind Table 5.
	Grants []uint64
}

// NewPool builds a pool of trees over a queue of the given entry count for
// the given number of units. The entry count must be a positive multiple
// of two Arity groups (so the root can split halves cleanly).
func NewPool(entries, units int) *Pool {
	if entries <= 0 || entries%(2*Arity) != 0 {
		panic(fmt.Sprintf("seltree: %d entries not divisible into two halves of %d-ary groups", entries, Arity))
	}
	if entries > 64 {
		panic("seltree: more than 64 entries exceeds the request bit vector")
	}
	if units <= 0 {
		panic("seltree: no units")
	}
	p := &Pool{
		entries: entries,
		units:   units,
		busy:    make([]bool, units),
		Grants:  make([]uint64, units),
	}
	p.lowMask = uint64(1)<<uint(entries/2) - 1
	p.highMask = p.lowMask << uint(entries/2)
	// Bind a pool-private bus so the grant path never branches on whether
	// telemetry is attached; the pipeline rebinds to the meter's bus.
	blocks := make([]int, units)
	for u := range blocks {
		blocks[u] = u
	}
	p.BindStats(stats.NewBus(units), "unit", blocks)
	return p
}

// BindStats registers one zero-joule grant slot per unit on bus, attributed
// to blocks[u]. Grant energy is charged by the issue queue (select access)
// and the execution stage (ALU op), so these slots exist purely as event
// counters for the utilization telemetry.
func (p *Pool) BindStats(bus *stats.Bus, name string, blocks []int) {
	if len(blocks) != p.units {
		panic(fmt.Sprintf("seltree: %d stat blocks for %d units", len(blocks), p.units))
	}
	p.bus = bus
	p.grantSlots = make([]stats.SlotID, p.units)
	for u := range p.grantSlots {
		p.grantSlots[u] = bus.Register(fmt.Sprintf("%s%d_grant", name, u), blocks[u], 0)
	}
}

// GrantCount returns unit u's lifetime grant count as seen by the stats
// bus; it tracks Grants[u] and survives bus drains.
func (p *Pool) GrantCount(u int) uint64 { return p.bus.LifetimeCount(p.grantSlots[u]) }

// Units returns the number of functional units (trees).
func (p *Pool) Units() int { return p.units }

// SetPreferTop sets the root-arbiter mode: false grants the bottom
// physical half first (conventional head-at-bottom queue), true grants the
// top half first (activity-toggled mid-queue head).
func (p *Pool) SetPreferTop(top bool) { p.preferTop = top }

// PreferTop reports the current root mode.
func (p *Pool) PreferTop() bool { return p.preferTop }

// SetRoundRobin enables or disables the idealized rotating priority.
func (p *Pool) SetRoundRobin(on bool) { p.roundRobin = on }

// Rotate advances the round-robin rotation by one unit; the simulator
// calls it once per cycle when round-robin is enabled.
func (p *Pool) Rotate() {
	p.rotation++
	if p.rotation >= p.units {
		p.rotation = 0
	}
}

// SetBusy marks unit u busy (true) or available (false).
func (p *Pool) SetBusy(u int, busy bool) { p.busy[u] = busy }

// Busy reports whether unit u is busy.
func (p *Pool) Busy(u int) bool { return p.busy[u] }

// AllBusy reports whether every unit is busy (the condition that forces
// the manager to fall back to a global stall).
func (p *Pool) AllBusy() bool {
	for _, b := range p.busy {
		if !b {
			return false
		}
	}
	return true
}

// Select runs the serialized trees over the request vector (req[phys] =
// instruction ID, or -1 for no request) and appends up to one Grant per
// available unit to grants, returning the extended slice. maxGrants caps
// the number of grants (the machine's issue-width budget remaining for
// this pool); pass a negative value for no cap.
func (p *Pool) Select(req []int32, grants []Grant, maxGrants int) []Grant {
	if len(req) != p.entries {
		panic(fmt.Sprintf("seltree: request vector %d, want %d", len(req), p.entries))
	}
	// Build the request bit vector once; the arbiter trees reduce to
	// find-first-set over masked halves, which is exactly what the gate
	// trees compute (bottom-most-first at every level).
	var reqMask uint64
	for i, id := range req {
		if id >= 0 {
			reqMask |= 1 << uint(i)
		}
	}
	start := len(grants)
	grants = p.SelectMask(reqMask, grants, maxGrants)
	for i := start; i < len(grants); i++ {
		grants[i].ID = req[grants[i].Phys]
	}
	return grants
}

// SelectMask is the bit-vector form of Select: reqMask has one bit set per
// requesting physical entry. Grants carry ID -1; callers that track
// instruction IDs fill them from their own payload (the mask has no room
// for them, which is also true of the hardware select tree — the payload
// RAM is read after select, not during).
func (p *Pool) SelectMask(reqMask uint64, grants []Grant, maxGrants int) []Grant {
	if reqMask == 0 {
		return grants
	}
	issued := 0
	for t := 0; t < p.units; t++ {
		if maxGrants >= 0 && issued >= maxGrants {
			break
		}
		unit := t
		if p.roundRobin {
			unit = (t + p.rotation) % p.units
		}
		if p.busy[unit] {
			// A busy unit's tree raises no grant, and requests flow to
			// the next tree unmasked.
			continue
		}
		phys := p.treeSelect(reqMask)
		if phys < 0 {
			break // no requests left anywhere
		}
		reqMask &^= 1 << uint(phys)
		p.Grants[unit]++
		p.bus.Inc(p.grantSlots[unit])
		grants = append(grants, Grant{Unit: unit, Phys: phys, ID: -1})
		issued++
	}
	return grants
}

// treeSelect propagates requests up a tree of Arity-input arbiters and a
// grant back down, honoring bottom-most-first priority within every node
// and the root's half preference. It returns the physical index of the
// granted entry, or -1 if nothing requests. Entries already granted by a
// higher-priority tree have been masked out of reqMask (the serialization
// of Figure 2's trees). Because priority is static bottom-most-first at
// every level of the L1/L2 arbiters, the whole subtree reduces to
// find-first-set over the half's bits, which is gate-equivalent.
func (p *Pool) treeSelect(reqMask uint64) int {
	first, second := p.lowMask, p.highMask
	if p.preferTop {
		first, second = p.highMask, p.lowMask
	}
	if m := reqMask & first; m != 0 {
		return bits.TrailingZeros64(m)
	}
	if m := reqMask & second; m != 0 {
		return bits.TrailingZeros64(m)
	}
	return -1
}

// ActiveUnits returns the number of units not marked busy.
func (p *Pool) ActiveUnits() int {
	n := 0
	for _, b := range p.busy {
		if !b {
			n++
		}
	}
	return n
}

// ResetStats zeroes the per-unit grant counters.
func (p *Pool) ResetStats() {
	for i := range p.Grants {
		p.Grants[i] = 0
	}
}
