package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func mustOpen(t *testing.T, dir string) (*Journal, []Record) {
	t.Helper()
	j, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func submitRec(key string) Record {
	return Record{Op: OpSubmit, Key: key, Req: json.RawMessage(`{"benchmark":"eon"}`)}
}

func TestJournalAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := mustOpen(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := []Record{
		submitRec("k1"),
		submitRec("k2"),
		{Op: OpDone, Key: "k1"},
		{Op: OpFailed, Key: "k2", Err: "boom"},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	_, got := mustOpen(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Op != want[i].Op || got[i].Key != want[i].Key || got[i].Err != want[i].Err {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if string(got[0].Req) != string(want[0].Req) {
		t.Errorf("request payload lost: %s", got[0].Req)
	}
}

func TestJournalTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	j.Append(submitRec("k1"))
	j.Append(Record{Op: OpDone, Key: "k1"})
	j.Close()

	// Simulate a crash mid-append: half a frame of garbage at the tail.
	path := filepath.Join(dir, "journal.wal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00})
	f.Close()
	before, _ := os.Stat(path)

	j2, recs := mustOpen(t, dir)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records through a torn tail, want 2", len(recs))
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	// Appends continue on the clean boundary.
	if err := j2.Append(submitRec("k3")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = mustOpen(t, dir)
	if len(recs) != 3 || recs[2].Key != "k3" {
		t.Fatalf("post-truncation append lost: %+v", recs)
	}
}

func TestJournalBitFlipStopsReplayAtCorruption(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	j.Append(submitRec("k1"))
	j.Append(submitRec("k2"))
	j.Close()

	// Flip one payload byte inside the second frame.
	path := filepath.Join(dir, "journal.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, recs := mustOpen(t, dir)
	if len(recs) != 1 || recs[0].Key != "k1" {
		t.Fatalf("replay past a checksum failure: %+v", recs)
	}
}

func TestJournalZeroLengthAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	for _, contents := range [][]byte{{}, []byte("not a journal at all")} {
		if err := os.WriteFile(path, contents, 0o644); err != nil {
			t.Fatal(err)
		}
		j, recs, err := Open(dir)
		if err != nil {
			t.Fatalf("open over %q: %v", contents, err)
		}
		if len(recs) != 0 {
			t.Fatalf("replayed %d records from garbage", len(recs))
		}
		if err := j.Append(submitRec("k1")); err != nil {
			t.Fatal(err)
		}
		j.Close()
		_, recs, err = Open(dir)
		if err != nil || len(recs) != 1 {
			t.Fatalf("recovery append lost: %v, %+v", err, recs)
		}
	}
}

func TestPending(t *testing.T) {
	recs := []Record{
		submitRec("a"), // stays pending
		submitRec("b"),
		{Op: OpDone, Key: "b"},
		submitRec("c"),
		{Op: OpFailed, Key: "c", Err: "x"},
		submitRec("d"),
		{Op: OpQuarantined, Key: "d", Err: "panicked"},
		submitRec("e"), // stays pending
	}
	pending, quarantined := Pending(recs)
	if len(pending) != 2 || pending[0].Key != "a" || pending[1].Key != "e" {
		t.Fatalf("pending = %+v", pending)
	}
	if len(quarantined) != 1 || quarantined[0].Key != "d" {
		t.Fatalf("quarantined = %+v", quarantined)
	}
}

func TestJournalRewriteCompacts(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		j.Append(submitRec("k"))
		j.Append(Record{Op: OpDone, Key: "k"})
	}
	j.Append(submitRec("live"))
	if err := j.Rewrite([]Record{submitRec("live")}); err != nil {
		t.Fatal(err)
	}
	// Appends after Rewrite land in the compacted file.
	if err := j.Append(Record{Op: OpDone, Key: "live"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := mustOpen(t, dir)
	if len(recs) != 2 || recs[0].Key != "live" || recs[1].Op != OpDone {
		t.Fatalf("compacted journal = %+v", recs)
	}
}

func TestJournalAppendFaultInjection(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	j.Inject = faultinject.New()

	// ENOSPC: append reports the failure but the journal stays usable.
	j.Inject.Arm(faultinject.SiteJournalAppend, faultinject.Outcome{Err: faultinject.ErrNoSpace, Torn: true})
	if err := j.Append(submitRec("k1")); !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("injected append = %v", err)
	}
	if err := j.Append(submitRec("k2")); err != nil {
		t.Fatalf("append after injected failure: %v", err)
	}

	// Torn append: reported as an error, and the tear is dropped on the
	// next open, keeping the good prefix.
	j.Inject.Arm(faultinject.SiteJournalAppend, faultinject.Outcome{Torn: true, Truncate: 5})
	if err := j.Append(submitRec("k3")); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("torn append = %v", err)
	}
	j.Close()

	_, recs := mustOpen(t, dir)
	if len(recs) != 1 || recs[0].Key != "k2" {
		t.Fatalf("replay after faults = %+v", recs)
	}
}

// TestJournalConcurrentAppend exercises Append from many goroutines;
// the -race CI job runs this.
func TestJournalConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := j.Append(submitRec("k")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	j.Close()
	_, recs := mustOpen(t, dir)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
}

// TestJournalRewriteENOSPCKeepsOldWAL is the compaction failure
// contract: when the disk fills mid-rewrite, the temp file is the only
// casualty — the old WAL stays byte-for-byte intact, the journal keeps
// accepting appends into it, and no temp litter survives.
func TestJournalRewriteENOSPCKeepsOldWAL(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := j.Append(submitRec(k)); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}

	j.Inject = faultinject.New()
	j.Inject.Arm(faultinject.SiteJournalRewrite, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	if err := j.Rewrite([]Record{submitRec("k1")}); !errors.Is(err, faultinject.ErrNoSpace) {
		t.Fatalf("Rewrite under ENOSPC = %v, want ErrNoSpace", err)
	}

	after, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed compaction modified the WAL")
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".journal.wal.tmp*")); len(tmps) != 0 {
		t.Fatalf("temp litter after failed compaction: %v", tmps)
	}

	// The journal is still appendable, into the same (old) file.
	if err := j.Append(submitRec("k4")); err != nil {
		t.Fatalf("append after failed compaction: %v", err)
	}
	j.Close()
	_, recs := mustOpen(t, dir)
	if len(recs) != 4 || recs[3].Key != "k4" {
		t.Fatalf("replay after failed compaction = %+v", recs)
	}

	// A later, unfaulted compaction succeeds and drops the stale set.
	j2, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Rewrite([]Record{submitRec("k9")}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Op: OpDone, Key: "k9"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs = mustOpen(t, dir)
	if len(recs) != 2 || recs[0].Key != "k9" || recs[1].Op != OpDone {
		t.Fatalf("replay after recovery compaction = %+v", recs)
	}
}

// TestJournalNoteRecordsAreLifecycleInert: the breaker's probe records
// replay fine but never make a key pending.
func TestJournalNoteRecordsAreLifecycleInert(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir)
	if err := j.Append(Record{Op: OpNote, Key: "breaker-probe"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(submitRec("k1")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := mustOpen(t, dir)
	pending, quarantined := Pending(recs)
	if len(pending) != 1 || pending[0].Key != "k1" || len(quarantined) != 0 {
		t.Fatalf("pending with notes = %+v / %+v", pending, quarantined)
	}
}
