// Package journal is the durable job journal behind pipethermd's crash
// recovery: an append-only write-ahead log of job lifecycle transitions
// (submit, done, failed, quarantined). The engine appends a submit
// record before a job is enqueued and a terminal record when it
// settles; on startup the log is replayed and every submitted key
// without a terminal record is resubmitted, so queued and interrupted
// work survives a SIGKILL. Results themselves are not journaled — they
// are recovered through the content-addressed result cache, which makes
// replay cheap and deterministic.
//
// On-disk format: one file (journal.wal) of length-prefixed,
// CRC-framed records:
//
//	uint32 LE payload length | uint32 LE CRC-32C of payload | payload JSON
//
// A crash can only tear the tail: replay stops at the first short or
// checksum-failing frame, and Open truncates the file back to the last
// good frame so later appends never interleave with garbage. Appends
// are fsynced, so a record that was reported written survives power
// loss.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
)

// Record ops. A key's lifecycle in the journal is submit → one of
// done/failed/quarantined; a key whose latest records lack a terminal
// op is pending and gets replayed.
const (
	OpSubmit      = "submit"
	OpDone        = "done"
	OpFailed      = "failed"
	OpQuarantined = "quarantined"
	// OpNote is a no-op record: it participates in no key's lifecycle
	// (Pending ignores it) and exists so a recovering writer can probe
	// the disk with a real framed, fsynced append — the journal circuit
	// breaker's half-open probe. Compaction drops notes.
	OpNote = "note"
)

// Record is one journaled transition.
type Record struct {
	Op  string          `json:"op"`
	Key string          `json:"key"`
	Req json.RawMessage `json:"req,omitempty"` // canonical request JSON, submit records only
	Err string          `json:"err,omitempty"` // failure/quarantine reason, terminal records only
}

// castagnoli is the CRC-32C table used to frame records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const frameHeader = 8 // uint32 length + uint32 crc

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	// Inject is the chaos seam for append failures; nil in production.
	Inject *faultinject.Injector

	mu   sync.Mutex
	f    *os.File
	path string
}

// Open opens (creating if needed) the journal under dir, replays every
// intact record, truncates any torn tail, and returns the journal ready
// for appends plus the replayed records in append order.
func Open(dir string) (*Journal, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	path := filepath.Join(dir, "journal.wal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	recs, good, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Drop a torn tail so the next append starts on a frame boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{f: f, path: path}, recs, nil
}

// readAll decodes records from the start of f, returning the records
// and the offset of the last fully intact frame. A short or
// CRC-mismatched frame ends the scan: it is the expected artifact of a
// crash mid-append (or of disk corruption), and everything before it is
// still good.
func readAll(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var (
		recs []Record
		good int64
		hdr  [frameHeader]byte
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return recs, good, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > 1<<20 { // a frame this large is corruption, not a record
			return recs, good, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return recs, good, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return recs, good, nil // bit rot or tear inside the frame
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, good, nil
		}
		recs = append(recs, r)
		good += frameHeader + int64(n)
	}
}

// Append frames, writes, and fsyncs one record. An error leaves the
// journal usable (the next Open truncates any torn frame).
func (j *Journal) Append(r Record) error {
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[frameHeader:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	torn, ferr := j.Inject.FireWrite(faultinject.SiteJournalAppend, frame)
	if ferr != nil && len(torn) == len(frame) {
		// Pure injected failure (ENOSPC with no tear): nothing reached
		// the disk, exactly as a failed write(2) would leave it.
		return fmt.Errorf("journal: %w", ferr)
	}
	if _, err := j.f.Write(torn); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if ferr != nil {
		return fmt.Errorf("journal: %w", ferr)
	}
	if len(torn) != len(frame) {
		return fmt.Errorf("journal: torn append")
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Sync flushes the journal file to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// Rewrite atomically replaces the journal's contents with recs —
// compaction: after replay (and after a degraded-mode recovery) the
// engine rewrites only the still-live records (pending submits and
// quarantine markers), so the log stays bounded by the live job set
// instead of growing forever.
//
// Failure contract: any error before the final rename leaves the old
// WAL byte-for-byte intact and the journal still appendable to it —
// a full disk during compaction costs the compaction, never the log.
func (j *Journal) Rewrite(recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal.wal.tmp*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: %w", err)
		}
	}
	if ferr := j.Inject.Fire(faultinject.SiteJournalRewrite); ferr != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", ferr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// Reopen so appends land in the compacted file, not the replaced
	// one. If the reopen fails the old handle points at the unlinked
	// pre-compaction inode — appending there would silently lose
	// records, so fail closed: mark the journal closed and report.
	f, err := os.OpenFile(j.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		j.f.Close()
		j.f = nil
		return fmt.Errorf("journal: reopening after compaction: %w", err)
	}
	j.f.Close()
	j.f = f
	return nil
}

// Pending reduces replayed records to the still-live set: submitted
// keys without a terminal record (in first-submit order) and the keys
// quarantined by a previous process. A quarantined key is never
// pending — its poison marker outlives restarts.
func Pending(recs []Record) (pending []Record, quarantined []Record) {
	state := make(map[string]string, len(recs))
	submit := make(map[string]Record, len(recs))
	quar := make(map[string]bool)
	var order []string
	for _, r := range recs {
		if _, seen := state[r.Key]; !seen {
			order = append(order, r.Key)
		}
		state[r.Key] = r.Op
		if r.Op == OpSubmit {
			if _, ok := submit[r.Key]; !ok {
				submit[r.Key] = r
			}
		}
		if r.Op == OpQuarantined && !quar[r.Key] {
			quar[r.Key] = true
			quarantined = append(quarantined, r)
		}
	}
	for _, k := range order {
		if state[k] == OpSubmit {
			if r, ok := submit[k]; ok {
				pending = append(pending, r)
			}
		}
	}
	return pending, quarantined
}
