package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	ncpu := runtime.GOMAXPROCS(0)
	cases := []struct {
		parallelism, n, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{4, 2, 2},  // clamped to job count
		{8, 0, 8},  // n unknown: keep the request
		{-3, 1, 1}, // auto, clamped to one job
		{0, 1_000_000, ncpu},
	}
	for _, c := range cases {
		if got := Resolve(c.parallelism, c.n); got != c.want {
			t.Errorf("Resolve(%d, %d) = %d, want %d", c.parallelism, c.n, got, c.want)
		}
	}
	if got := Resolve(0, 0); got < 1 {
		t.Errorf("Resolve(0, 0) = %d, want >= 1", got)
	}
}

func TestRunSerialOrder(t *testing.T) {
	var order []int
	if err := Run(context.Background(), 1, 5, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestRunSerialErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Run(context.Background(), 1, 5, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d jobs after error at index 2", ran)
	}
}

func TestRunParallelCoversAllSlots(t *testing.T) {
	const n = 64
	slots := make([]int32, n)
	if err := Run(context.Background(), 8, n, func(i int) error {
		atomic.AddInt32(&slots[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range slots {
		if v != 1 {
			t.Fatalf("slot %d ran %d times", i, v)
		}
	}
}

func TestRunParallelErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := Run(context.Background(), 4, 1000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got == 1000 {
		t.Error("cancellation never kicked in: all 1000 jobs ran")
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(context.Background(), 0, 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestProgressSerialized(t *testing.T) {
	const n = 50
	var buf bytes.Buffer
	p := NewProgress(&buf, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Step("job %d", i)
		}(i)
	}
	wg.Wait()
	if p.Done() != n {
		t.Fatalf("done = %d, want %d", p.Done(), n)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("%d progress lines, want %d", len(lines), n)
	}
	seen := map[string]bool{}
	for _, l := range lines {
		var done, total int
		if _, err := fmt.Sscanf(l, "[%d/%d]", &done, &total); err != nil {
			t.Fatalf("malformed progress line %q: %v", l, err)
		}
		if total != n || done < 1 || done > n {
			t.Fatalf("bad counter in %q", l)
		}
		key := fmt.Sprintf("%d", done)
		if seen[key] {
			t.Fatalf("counter %d repeated", done)
		}
		seen[key] = true
	}
}

func TestProgressNilSafe(t *testing.T) {
	var p *Progress
	p.Step("ignored")
	if p.Done() != 0 {
		t.Fatal("nil Progress counted")
	}
	q := NewProgress(nil, 3)
	q.Step("counted, not written")
	if q.Done() != 1 {
		t.Fatalf("done = %d", q.Done())
	}
}

// TestRunContextCancelParallel checks that cancelling the context stops
// dispatch, drains in-flight jobs, and surfaces context.Canceled.
func TestRunContextCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := Run(ctx, 4, 1000, func(i int) error {
		if ran.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got == 1000 {
		t.Error("cancellation never kicked in: all 1000 jobs ran")
	}
}

// TestRunContextCancelSerial checks the serial path stops between jobs.
func TestRunContextCancelSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := Run(ctx, 1, 10, func(i int) error {
		ran++
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("ran %d jobs after cancel at index 2", ran)
	}
}

// TestRunJobErrorBeatsContextCancel: when a job fails and the context is
// then cancelled, the job error is returned (first-error semantics).
func TestRunJobErrorBeatsContextCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	err := Run(ctx, 4, 100, func(i int) error {
		if i == 0 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want job error to win over cancellation", err)
	}
}

// TestRunNilContext treats nil as context.Background().
func TestRunNilContext(t *testing.T) {
	ran := 0
	if err := Run(nil, 1, 3, func(i int) error { ran++; return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran %d of 3 jobs", ran)
	}
}
