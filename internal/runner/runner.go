// Package runner provides the bounded worker pool that fans the
// experiment matrix (and any other set of independent simulation jobs)
// across CPUs.
//
// The pool's contract is determinism-by-construction: jobs are
// identified by their index in the serial iteration order, every job
// writes its result into a slot that is pre-assigned from that index,
// and no job shares mutable state with another. Under that contract the
// assembled results are byte-identical for every worker count — only
// wall-clock time and the interleaving of progress lines change. The
// determinism tests in internal/experiments hold the simulator to it.
package runner

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve returns the effective worker count for running n jobs at the
// requested parallelism: 0 (or negative) means auto — one worker per
// available CPU — and the result is always clamped to [1, n] (with a
// floor of 1 when n is zero).
func Resolve(parallelism, n int) int {
	p := parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n > 0 && p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Run executes fn(i) for every i in [0, n) on Resolve(parallelism, n)
// workers. Jobs must be independent: each writes only into state owned
// by its index. The first error cancels the run — jobs not yet started
// are skipped, jobs already running finish — and Run returns the error
// of the lowest-indexed failed job once all in-flight work has drained.
// Parallelism 1 is the exact legacy serial path: jobs run in index
// order on the calling goroutine and the first error aborts
// immediately.
//
// Cancelling ctx cancels the run the same way a job error does: no new
// jobs are dispatched, in-flight jobs finish (fn may also observe ctx
// itself to stop early), and Run returns ctx's error — unless a job
// failed first, in which case the job error wins. A nil ctx is treated
// as context.Background().
func Run(ctx context.Context, parallelism, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := Resolve(parallelism, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		stop     atomic.Bool
		mu       sync.Mutex
		firstErr error
		firstIdx = n
		wg       sync.WaitGroup
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if stop.Load() || ctx.Err() != nil {
					continue // drain the queue without running
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stop.Load() || ctx.Err() != nil {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Progress serializes per-job progress lines from concurrent workers
// onto a single writer. Each Step atomically advances the completed-job
// counter and emits one "[done/total] ..." line under the lock, so
// lines never interleave and the counter never repeats or skips. A nil
// *Progress, or one with a nil writer, still counts but writes nothing.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	done  int
	total int
}

// NewProgress returns a Progress reporting completion out of total onto
// w (which may be nil to count silently).
func NewProgress(w io.Writer, total int) *Progress {
	return &Progress{w: w, total: total}
}

// Step records one completed job and writes its progress line. The
// formatted message is appended after the "[done/total]" prefix; a
// trailing newline is added.
func (p *Progress) Step(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.w != nil {
		fmt.Fprintf(p.w, "[%3d/%3d] %s\n", p.done, p.total, fmt.Sprintf(format, args...))
	}
}

// Done returns the number of completed jobs recorded so far.
func (p *Progress) Done() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}
