package stats_test

import (
	"math"
	"testing"

	"repro/internal/power"
	"repro/internal/stats"
)

func TestSlotAttributionPerTable3Constant(t *testing.T) {
	// One slot per Table 3 constant, spread over four blocks; counts are
	// distinct primes so misattribution cannot cancel out.
	constants := []struct {
		name string
		j    float64
	}{
		{"compact_entry_to_entry", power.CompactEntryToEntry},
		{"compact_mux_select", power.CompactMuxSelect},
		{"long_compaction", power.LongCompaction},
		{"counter_stage1", power.CounterStage1},
		{"counter_stage2", power.CounterStage2},
		{"clock_gating_logic", power.ClockGatingLogic},
		{"tag_broadcast_match", power.TagBroadcastMatch},
		{"payload_ram_access", power.PayloadRAMAccess},
		{"select_access", power.SelectAccess},
	}
	counts := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23}
	const nblocks = 4

	b := stats.NewBus(nblocks)
	slots := make([]stats.SlotID, len(constants))
	for i, c := range constants {
		slots[i] = b.Register(c.name, i%nblocks, c.j)
	}
	for i, s := range slots {
		b.IncN(s, counts[i])
	}

	want := make([]float64, nblocks)
	for i, c := range constants {
		want[i%nblocks] += float64(counts[i]) * c.j
	}
	got := make([]float64, nblocks)
	b.Drain(got, 1)
	for blk := range want {
		if math.Abs(got[blk]-want[blk]) > 1e-21 {
			t.Errorf("block %d drained %.6e J, want %.6e J", blk, got[blk], want[blk])
		}
	}
	for i, s := range slots {
		if b.LifetimeCount(s) != counts[i] {
			t.Errorf("slot %s lifetime count %d, want %d", b.Name(s), b.LifetimeCount(s), counts[i])
		}
		wantE := float64(counts[i]) * constants[i].j
		if math.Abs(b.LifetimeEnergy(s)-wantE) > 1e-21 {
			t.Errorf("slot %s lifetime energy %.6e, want %.6e", b.Name(s), b.LifetimeEnergy(s), wantE)
		}
	}
}

func TestDrainResetsAndAccumulatesInto(t *testing.T) {
	b := stats.NewBus(2)
	s0 := b.Register("a", 0, 2e-9)
	s1 := b.Register("b", 1, 3e-9)
	b.IncN(s0, 10)
	b.Inc(s1)

	dst := []float64{1, 1} // Drain must add, not overwrite
	b.Drain(dst, 1)
	if dst[0] != 1+10*2e-9 || dst[1] != 1+3e-9 {
		t.Fatalf("drained %v", dst)
	}
	if b.Drains() != 1 {
		t.Fatalf("drains %d", b.Drains())
	}

	// A second drain with no new events deposits nothing.
	dst[0], dst[1] = 0, 0
	b.Drain(dst, 1)
	if dst[0] != 0 || dst[1] != 0 {
		t.Fatalf("second drain deposited %v", dst)
	}
	// Lifetime survives draining.
	if b.LifetimeCount(s0) != 10 || b.LifetimeEnergy(s0) != 10*2e-9 {
		t.Fatalf("lifetime lost: %d, %v", b.LifetimeCount(s0), b.LifetimeEnergy(s0))
	}
}

func TestDrainAppliesScale(t *testing.T) {
	b := stats.NewBus(1)
	s := b.Register("scaled", 0, 1e-9)
	b.IncN(s, 4)
	b.AddEnergy(s, 0.5e-9)
	dst := make([]float64, 1)
	b.Drain(dst, 0.25)
	want := (4*1e-9 + 0.5e-9) * 0.25
	if math.Abs(dst[0]-want) > 1e-24 {
		t.Fatalf("scaled drain %v, want %v", dst[0], want)
	}
	// Lifetime energy stays unscaled: activity differencing must not see
	// DVFS voltage scaling.
	if got := b.LifetimeEnergy(s); math.Abs(got-(4*1e-9+0.5e-9)) > 1e-24 {
		t.Fatalf("lifetime energy %v scaled", got)
	}
}

func TestAddEnergySideChannel(t *testing.T) {
	b := stats.NewBus(1)
	s := b.Register("match", 0, 0) // zero-joule slot: energy only via AddEnergy
	b.AddEnergy(s, 1.5e-9)
	b.Inc(s) // counted events contribute nothing at 0 J/event
	dst := make([]float64, 1)
	b.Drain(dst, 1)
	if dst[0] != 1.5e-9 {
		t.Fatalf("drained %v", dst[0])
	}
	if b.LifetimeCount(s) != 1 {
		t.Fatalf("count %d", b.LifetimeCount(s))
	}
}

func TestLifetimeIncludesPending(t *testing.T) {
	b := stats.NewBus(1)
	s := b.Register("x", 0, 1e-9)
	b.IncN(s, 3)
	if b.LifetimeCount(s) != 3 || math.Abs(b.LifetimeEnergy(s)-3e-9) > 1e-21 {
		t.Fatal("pending events missing from lifetime before drain")
	}
	b.Drain(make([]float64, 1), 1)
	b.IncN(s, 2)
	if b.LifetimeCount(s) != 5 {
		t.Fatalf("lifetime %d, want 5", b.LifetimeCount(s))
	}
}

func TestResetClearsEverything(t *testing.T) {
	b := stats.NewBus(1)
	s := b.Register("x", 0, 1e-9)
	b.IncN(s, 3)
	b.Drain(make([]float64, 1), 1)
	b.IncN(s, 2)
	b.Reset()
	if b.LifetimeCount(s) != 0 || b.LifetimeEnergy(s) != 0 || b.Drains() != 0 {
		t.Fatal("reset incomplete")
	}
	if b.NumSlots() != 1 {
		t.Fatal("reset dropped slot registrations")
	}
}

func TestRegistrationValidation(t *testing.T) {
	b := stats.NewBus(2)
	for name, f := range map[string]func(){
		"block too high": func() { b.Register("x", 2, 0) },
		"block negative": func() { b.Register("x", -1, 0) },
		"negative joule": func() { b.Register("x", 0, -1e-9) },
		"empty bus":      func() { stats.NewBus(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
	if s := b.Register("ok", 1, 2e-9); b.Block(s) != 1 || b.JoulesPerEvent(s) != 2e-9 || b.Name(s) != "ok" {
		t.Fatal("accessors wrong")
	}
}
