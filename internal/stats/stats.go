// Package stats provides the allocation-free event-count bus that carries
// activity information out of the cycle-level hot loop. Hardware power
// models scale by counting events and multiplying by per-event energy
// constants once per sampling interval, rather than tapping an energy
// accumulator at every event; this package is that counter plane.
//
// A Bus owns a flat slice of uint64 slot counters. Each slot is registered
// once at construction time with a floorplan block index and a per-event
// energy constant; the hot loop then increments slots (Inc/IncN, a single
// indexed add — no floating point, no interface calls, no allocation).
// Once per sensor interval, Drain folds every slot into a per-block joule
// vector as count × joulesPerEvent × scale and resets the interval
// counters, so the energy math runs O(slots) per interval instead of
// O(events).
//
// Events whose energy is not an integer multiple of a constant (for
// example an occupancy-weighted CAM match term) use the per-slot AddEnergy
// side channel, which accumulates raw joules and is drained with the same
// scale factor.
//
// Lifetime counts and energies survive draining (LifetimeCount /
// LifetimeEnergy include both drained totals and the still-pending
// interval), so consumers that difference successive readings — the
// thermal manager's activity detection, the utilization telemetry — share
// the same counters the energy model uses.
package stats

import "fmt"

// SlotID names one registered (block, event-kind) counter on a Bus.
type SlotID int32

// Bus is a fixed-slot event-count accumulator. Register all slots up
// front; the per-cycle operations never allocate.
type Bus struct {
	counts []uint64  // events this interval, per slot
	extra  []float64 // raw joules this interval (fractional events)
	joules []float64 // energy per event, per slot
	block  []int32   // floorplan block index, per slot
	names  []string

	countTotal []uint64  // lifetime drained+pending counts
	extraTotal []float64 // lifetime drained raw joules

	nblocks int
	drains  uint64
}

// NewBus returns an empty bus whose slots may target block indices
// 0..nblocks-1.
func NewBus(nblocks int) *Bus {
	if nblocks <= 0 {
		panic("stats: bus needs at least one block")
	}
	return &Bus{nblocks: nblocks}
}

// Register adds a slot attributed to the given floorplan block, worth
// joulesPerEvent per counted event, and returns its ID. Names are
// informational (debugging and tests); they need not be unique.
func (b *Bus) Register(name string, block int, joulesPerEvent float64) SlotID {
	if block < 0 || block >= b.nblocks {
		panic(fmt.Sprintf("stats: slot %q block %d out of range [0,%d)", name, block, b.nblocks))
	}
	if joulesPerEvent < 0 {
		panic(fmt.Sprintf("stats: slot %q has negative energy", name))
	}
	id := SlotID(len(b.counts))
	b.counts = append(b.counts, 0)
	b.extra = append(b.extra, 0)
	b.joules = append(b.joules, joulesPerEvent)
	b.block = append(b.block, int32(block))
	b.names = append(b.names, name)
	b.countTotal = append(b.countTotal, 0)
	b.extraTotal = append(b.extraTotal, 0)
	return id
}

// Inc counts one event on slot s.
func (b *Bus) Inc(s SlotID) { b.counts[s]++ }

// IncN counts n events on slot s.
func (b *Bus) IncN(s SlotID, n uint64) { b.counts[s] += n }

// AddEnergy deposits raw joules on slot s (the fractional-event side
// channel); drained with the same scale as counted events.
func (b *Bus) AddEnergy(s SlotID, j float64) { b.extra[s] += j }

// Drain converts every slot's pending events into joules — count ×
// joulesPerEvent × scale, plus the raw-energy channel × scale — adds them
// to dst indexed by block, rolls the counts into the lifetime totals, and
// resets the interval accumulators. dst must have one element per block.
func (b *Bus) Drain(dst []float64, scale float64) {
	if len(dst) != b.nblocks {
		panic(fmt.Sprintf("stats: Drain dst length %d, want %d", len(dst), b.nblocks))
	}
	for i := range b.counts {
		c, x := b.counts[i], b.extra[i]
		if c == 0 && x == 0 {
			continue
		}
		dst[b.block[i]] += (float64(c)*b.joules[i] + x) * scale
		b.countTotal[i] += c
		b.extraTotal[i] += x
		b.counts[i] = 0
		b.extra[i] = 0
	}
	b.drains++
}

// Drains returns the number of Drain calls (sensor intervals closed).
func (b *Bus) Drains() uint64 { return b.drains }

// NumSlots returns the number of registered slots.
func (b *Bus) NumSlots() int { return len(b.counts) }

// Name returns slot s's registration name.
func (b *Bus) Name(s SlotID) string { return b.names[s] }

// Block returns slot s's floorplan block index.
func (b *Bus) Block(s SlotID) int { return int(b.block[s]) }

// JoulesPerEvent returns slot s's per-event energy constant.
func (b *Bus) JoulesPerEvent(s SlotID) float64 { return b.joules[s] }

// LifetimeCount returns slot s's total events, drained and pending.
func (b *Bus) LifetimeCount(s SlotID) uint64 {
	return b.countTotal[s] + b.counts[s]
}

// LifetimeEnergy returns slot s's total unscaled joules, drained and
// pending. Consumers difference successive readings for per-interval
// activity; the DVFS energy scale is a drain-time concern and does not
// apply here (matching the historical accumulate-unscaled semantics of
// the structure-private energy counters this bus replaced).
func (b *Bus) LifetimeEnergy(s SlotID) float64 {
	return float64(b.countTotal[s]+b.counts[s])*b.joules[s] + b.extraTotal[s] + b.extra[s]
}

// Reset zeroes every interval and lifetime accumulator, keeping the slot
// registrations.
func (b *Bus) Reset() {
	for i := range b.counts {
		b.counts[i] = 0
		b.extra[i] = 0
		b.countTotal[i] = 0
		b.extraTotal[i] = 0
	}
	b.drains = 0
}
