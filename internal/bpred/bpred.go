// Package bpred implements the branch predictor used by the simulated
// front-end: a gshare direction predictor with 2-bit saturating counters
// plus a direct-mapped branch target buffer. The trace generator supplies
// actual outcomes; the predictor determines when the pipeline suffers a
// misprediction redirect, which sets the bursty fetch behaviour that the
// paper identifies as one source of asymmetric back-end utilization.
package bpred

// Predictor is a gshare branch predictor. The zero value is unusable;
// construct with New.
type Predictor struct {
	historyBits uint
	history     uint64
	counters    []uint8 // 2-bit saturating counters
	btb         []btbEntry
	btbMask     uint64

	// Statistics.
	Lookups    uint64
	Mispredict uint64
}

type btbEntry struct {
	tag    uint64
	target uint64
	valid  bool
}

// New returns a predictor with a 2^tableBits-entry pattern history table and
// a 2^btbBits-entry BTB.
func New(tableBits, btbBits uint) *Predictor {
	if tableBits == 0 || tableBits > 24 {
		panic("bpred: unreasonable table size")
	}
	// Very short history: enough correlation to learn alternating /
	// loop-exit patterns, while keeping each static site concentrated on
	// a few counters so they actually train. Long gshare histories pay
	// off only when successive branch outcomes are strongly correlated;
	// with more history the per-site counters fragment and never
	// saturate (the classic aliasing tradeoff).
	historyBits := uint(2)
	if historyBits > tableBits {
		historyBits = tableBits
	}
	return &Predictor{
		historyBits: historyBits,
		counters:    make([]uint8, 1<<tableBits),
		btb:         make([]btbEntry, 1<<btbBits),
		btbMask:     1<<btbBits - 1,
	}
}

// Default returns the predictor sized for the simulated machine: 8K-entry
// gshare with a 4K-entry BTB.
func Default() *Predictor { return New(13, 12) }

func (p *Predictor) index(pc uint64) uint64 {
	return (pc>>2 ^ p.history) & uint64(len(p.counters)-1)
}

// Predict returns the predicted direction and target for the branch at pc.
// A branch predicted taken with a BTB miss still redirects fetch when the
// target resolves, which the pipeline models as a (shorter) bubble; here we
// simply report the BTB target validity.
func (p *Predictor) Predict(pc uint64) (taken bool, target uint64, targetValid bool) {
	p.Lookups++
	taken = p.counters[p.index(pc)] >= 2
	e := &p.btb[(pc>>2)&p.btbMask]
	if e.valid && e.tag == pc {
		return taken, e.target, true
	}
	return taken, 0, false
}

// Update trains the predictor with the actual outcome of the branch at pc
// and records whether the prediction (made with the pre-update state) was
// wrong. It returns true on a misprediction.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) bool {
	idx := p.index(pc)
	predTaken := p.counters[idx] >= 2

	e := &p.btb[(pc>>2)&p.btbMask]
	targetKnown := e.valid && e.tag == pc && e.target == target

	// 2-bit saturating counter update.
	if taken {
		if p.counters[idx] < 3 {
			p.counters[idx]++
		}
	} else if p.counters[idx] > 0 {
		p.counters[idx]--
	}

	// Train the BTB on taken branches.
	if taken {
		e.tag, e.target, e.valid = pc, target, true
	}

	// Shift global history.
	p.history = (p.history << 1) & (1<<p.historyBits - 1)
	if taken {
		p.history |= 1
	}

	miss := predTaken != taken || (taken && !targetKnown)
	if miss {
		p.Mispredict++
	}
	return miss
}

// MispredictRate returns the fraction of updates that were mispredictions.
func (p *Predictor) MispredictRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Mispredict) / float64(p.Lookups)
}

// Reset clears all state and statistics.
func (p *Predictor) Reset() {
	p.history = 0
	for i := range p.counters {
		p.counters[i] = 0
	}
	for i := range p.btb {
		p.btb[i] = btbEntry{}
	}
	p.Lookups, p.Mispredict = 0, 0
}
