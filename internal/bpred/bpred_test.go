package bpred

import (
	"testing"

	"repro/internal/rng"
)

func TestAlwaysTakenLearned(t *testing.T) {
	p := Default()
	const pc = 0x1000
	// History must saturate to all-taken before the final-index counter
	// trains, so run well past the history length.
	for i := 0; i < 32; i++ {
		p.Predict(pc)
		p.Update(pc, true, 0x2000)
	}
	taken, target, valid := p.Predict(pc)
	if !taken {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	if !valid || target != 0x2000 {
		t.Fatalf("BTB target %#x valid=%v", target, valid)
	}
}

func TestAlwaysNotTakenLearned(t *testing.T) {
	p := Default()
	const pc = 0x1004
	for i := 0; i < 8; i++ {
		p.Update(pc, false, 0)
	}
	if taken, _, _ := p.Predict(pc); taken {
		t.Fatal("never-taken branch predicted taken")
	}
}

func TestAlternatingPatternLearnedViaHistory(t *testing.T) {
	// gshare with global history should learn a strict T/NT alternation
	// almost perfectly after warmup.
	p := Default()
	const pc = 0x4000
	miss := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		p.Predict(pc)
		if p.Update(pc, taken, 0x5000) && i > 200 {
			miss++
		}
	}
	if miss > 20 {
		t.Fatalf("alternating pattern mispredicted %d times after warmup", miss)
	}
}

func TestRandomBranchesMispredictOften(t *testing.T) {
	p := Default()
	r := rng.New(1)
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(0x100 + (i%64)*4)
		taken := r.Bool(0.5)
		p.Predict(pc)
		if p.Update(pc, taken, 0x8000) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate < 0.3 {
		t.Fatalf("random branches mispredicted only %.2f; predictor is cheating", rate)
	}
}

func TestBiasedBranchesPredictWell(t *testing.T) {
	p := Default()
	r := rng.New(2)
	miss := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(0x100 + (i%16)*4)
		taken := r.Bool(0.95)
		p.Predict(pc)
		if p.Update(pc, taken, 0x8000) {
			miss++
		}
	}
	rate := float64(miss) / n
	if rate > 0.15 {
		t.Fatalf("95%%-biased branches mispredicted at %.2f", rate)
	}
}

func TestMispredictRateAccounting(t *testing.T) {
	p := Default()
	p.Predict(0x10)
	p.Update(0x10, true, 0x20) // cold: counter says not-taken -> miss
	if p.Lookups != 1 || p.Mispredict != 1 {
		t.Fatalf("lookups=%d mispredicts=%d", p.Lookups, p.Mispredict)
	}
	if p.MispredictRate() != 1.0 {
		t.Fatalf("rate %v", p.MispredictRate())
	}
}

func TestTargetChangeCausesMispredict(t *testing.T) {
	p := Default()
	const pc = 0x40
	for i := 0; i < 4; i++ {
		p.Update(pc, true, 0x100)
	}
	if !p.Update(pc, true, 0x200) {
		t.Fatal("target change not flagged as mispredict")
	}
}

func TestResetClearsState(t *testing.T) {
	p := Default()
	for i := 0; i < 10; i++ {
		p.Predict(0x10)
		p.Update(0x10, true, 0x20)
	}
	p.Reset()
	if p.Lookups != 0 || p.Mispredict != 0 {
		t.Fatal("stats not cleared")
	}
	if taken, _, valid := p.Predict(0x10); taken || valid {
		t.Fatal("predictor state survived Reset")
	}
}

func TestNewPanicsOnSillySizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, ...) did not panic")
		}
	}()
	New(0, 4)
}

func TestZeroLookupsRate(t *testing.T) {
	if Default().MispredictRate() != 0 {
		t.Fatal("rate on fresh predictor should be 0")
	}
}
