// Package regfile models the integer register-file copies of §2.3.
// Processors replicate the register file so each copy needs fewer read
// ports; every ALU is hard-wired to two read ports of one copy, and all
// results are written to every copy. Because the wiring is static, the ALU
// priority asymmetry (see seltree) becomes a register-file *port*
// asymmetry, and the ALU→copy mapping decides how that asymmetry lands on
// the two copies:
//
//   - Priority mapping: high-priority ALUs on copy 0, low on copy 1
//     (Figure 4 right). Concentrates reads in one copy.
//   - Balanced mapping: interleaved priorities (Figure 4 middle). Spreads
//     reads across copies, but each copy's ports stay asymmetric.
//   - Completely-balanced mapping: every ALU reads one operand from each
//     copy (Figure 4 left). Rejected by the paper for wiring cost; kept
//     here as an ablation.
//
// Fine-grain turnoff marks the ALUs of an overheated copy busy so the
// other copy carries execution while the hot one cools. Register writes
// during cooling follow one of two paper policies: margin writes (turn off
// slightly below the critical threshold and keep writing) or copy-on-cool
// (block writes, then refresh the stale copy from a live one afterwards).
package regfile

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/power"
	"repro/internal/stats"
)

// File is a set of integer register-file copies with a fixed read-port
// mapping.
type File struct {
	copies  int
	alus    int
	mapping config.RFMapping
	policy  config.RFWritePolicy

	aluToCopy []int // reads: copy serving each ALU; -1 = split across all
	off       []bool
	stale     []bool
	physRegs  int

	bus        *stats.Bus
	readSlots  []stats.SlotID // per copy
	writeSlots []stats.SlotID // per copy

	// Statistics.
	Reads         []uint64 // per copy
	Writes        []uint64 // per copy
	TurnoffEvents []uint64 // per copy: transitions into the off state
	RestoreCopies uint64   // copy-on-cool refresh operations
}

// New builds a register file with the given number of copies serving the
// given ALUs under the chosen mapping and write policy. physRegs sizes the
// copy-on-cool refresh cost.
func New(copies, alus int, mapping config.RFMapping, policy config.RFWritePolicy, physRegs int) *File {
	if copies <= 0 || alus <= 0 || alus%copies != 0 {
		panic(fmt.Sprintf("regfile: %d ALUs across %d copies", alus, copies))
	}
	f := &File{
		copies:        copies,
		alus:          alus,
		mapping:       mapping,
		policy:        policy,
		physRegs:      physRegs,
		aluToCopy:     make([]int, alus),
		off:           make([]bool, copies),
		stale:         make([]bool, copies),
		Reads:         make([]uint64, copies),
		Writes:        make([]uint64, copies),
		TurnoffEvents: make([]uint64, copies),
	}
	// Bind a file-private bus (one block per copy) so the charge paths
	// never branch on telemetry; the pipeline rebinds to the meter's bus
	// with real floorplan block indices.
	blocks := make([]int, copies)
	for c := range blocks {
		blocks[c] = c
	}
	f.BindStats(stats.NewBus(copies), blocks)
	perCopy := alus / copies
	for a := 0; a < alus; a++ {
		switch mapping {
		case config.MapPriority:
			// ALUs 0..perCopy-1 -> copy 0, next group -> copy 1, ...
			f.aluToCopy[a] = a / perCopy
		case config.MapBalanced:
			// Interleave: ALU a -> copy a mod copies.
			f.aluToCopy[a] = a % copies
		case config.MapCompletelyBalanced:
			f.aluToCopy[a] = -1
		default:
			panic("regfile: unknown mapping")
		}
	}
	return f
}

// Copies returns the number of register-file copies.
func (f *File) Copies() int { return f.copies }

// Mapping returns the configured read-port mapping.
func (f *File) Mapping() config.RFMapping { return f.mapping }

// CopyOf returns the copy whose read ports serve ALU a, or -1 under the
// completely-balanced mapping (reads split across all copies).
func (f *File) CopyOf(a int) int { return f.aluToCopy[a] }

// ALUsOf returns the ALUs whose read ports are wired to copy c. Under the
// completely-balanced mapping every ALU touches every copy.
func (f *File) ALUsOf(c int) []int {
	var out []int
	for a := 0; a < f.alus; a++ {
		if f.aluToCopy[a] == c || f.aluToCopy[a] == -1 {
			out = append(out, a)
		}
	}
	return out
}

// ChargeRead accounts the register reads for one instruction executing on
// ALU a with the given operand count. Under per-copy mappings both reads
// hit ALU a's copy; under the completely-balanced mapping the reads are
// spread one per copy.
func (f *File) ChargeRead(a, operands int) {
	if operands <= 0 {
		return
	}
	c := f.aluToCopy[a]
	if c >= 0 {
		f.bus.IncN(f.readSlots[c], uint64(operands))
		f.Reads[c] += uint64(operands)
		return
	}
	for i := 0; i < operands; i++ {
		cc := i % f.copies
		f.bus.Inc(f.readSlots[cc])
		f.Reads[cc]++
	}
}

// ChargeWrite accounts one result write. All copies are written — that is
// what keeps them coherent — except copies blocked by the copy-on-cool
// policy, which go stale instead.
func (f *File) ChargeWrite() {
	for c := 0; c < f.copies; c++ {
		if f.off[c] && f.policy == config.WriteCopyOnCool {
			f.stale[c] = true
			continue
		}
		f.bus.Inc(f.writeSlots[c])
		f.Writes[c]++
	}
}

// SetOff turns copy c off (thermal turnoff) or back on. Turning a stale
// copy back on under the copy-on-cool policy triggers the refresh: every
// physical register is copied in from a live copy, charging write energy
// for the whole file (the paper notes this amortizes to negligible time
// over a cooling interval; we still charge the energy).
func (f *File) SetOff(c int, off bool) {
	if off == f.off[c] {
		return
	}
	f.off[c] = off
	if off {
		f.TurnoffEvents[c]++
		return
	}
	if f.stale[c] {
		f.bus.IncN(f.writeSlots[c], uint64(f.physRegs))
		f.Writes[c] += uint64(f.physRegs)
		f.stale[c] = false
		f.RestoreCopies++
	}
}

// Off reports whether copy c is currently turned off.
func (f *File) Off(c int) bool { return f.off[c] }

// Stale reports whether copy c has missed writes (copy-on-cool only).
func (f *File) Stale(c int) bool { return f.stale[c] }

// Readable reports whether copy c may serve reads: it must be on and must
// not be stale. The thermal manager keeps the ALUs of an off copy busy, so
// in normal operation reads never reach an unreadable copy; this predicate
// is the safety check.
func (f *File) Readable(c int) bool { return !f.off[c] && !f.stale[c] }

// AllOff reports whether every copy is off (forces a global stall).
func (f *File) AllOff() bool {
	for _, o := range f.off {
		if !o {
			return false
		}
	}
	return true
}

// BindStats registers per-copy read and write slots on bus, attributed to
// blocks[c]. Reads cost power.RFRead per port access and writes
// power.RFWrite per copy written; the bus does the multiplication at drain
// time.
func (f *File) BindStats(bus *stats.Bus, blocks []int) {
	if len(blocks) != f.copies {
		panic(fmt.Sprintf("regfile: %d stat blocks for %d copies", len(blocks), f.copies))
	}
	f.bus = bus
	f.readSlots = make([]stats.SlotID, f.copies)
	f.writeSlots = make([]stats.SlotID, f.copies)
	for c := 0; c < f.copies; c++ {
		f.readSlots[c] = bus.Register(fmt.Sprintf("rf%d_read", c), blocks[c], power.RFRead)
		f.writeSlots[c] = bus.Register(fmt.Sprintf("rf%d_write", c), blocks[c], power.RFWrite)
	}
}

// TurnoffThreshold returns the temperature at which a copy should be
// turned off given the critical threshold: the margin-writes policy trips
// early so writes can continue safely below critical.
func (f *File) TurnoffThreshold(maxTempK, marginK float64) float64 {
	if f.policy == config.WriteMargin {
		return maxTempK - marginK
	}
	return maxTempK
}

// Policy returns the configured write policy.
func (f *File) Policy() config.RFWritePolicy { return f.policy }

// Table1Row is one cell row of the paper's Table 1: the utilization
// symmetry properties of a mapping with and without fine-grain turnoff.
type Table1Row struct {
	PowerDensity string // "conventional" or "fine-grain turnoff"
	Balanced     string
	Priority     string
}

// Table1 returns the paper's Table 1 ("Register-port mappings").
func Table1() []Table1Row {
	return []Table1Row{
		{
			PowerDensity: "conventional",
			Balanced:     "symmetric across copies but not within",
			Priority:     "symmetric only within high-priority copy; not other copies",
		},
		{
			PowerDensity: "fine-grain turnoff",
			Balanced:     "symmetric across copies but not within",
			Priority:     "symmetric both within and across copies",
		},
	}
}
