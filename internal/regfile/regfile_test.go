package regfile

import (
	"math"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/power"
)

// drainCopies drains the file's private stats bus and returns the joules
// attributed to each copy since the previous drain.
func drainCopies(f *File) []float64 {
	dst := make([]float64, f.copies)
	f.bus.Drain(dst, 1)
	return dst
}

func TestPriorityMapping(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	want := []int{0, 0, 0, 1, 1, 1}
	for a, w := range want {
		if got := f.CopyOf(a); got != w {
			t.Errorf("priority: ALU %d -> copy %d, want %d", a, got, w)
		}
	}
	if alus := f.ALUsOf(0); len(alus) != 3 || alus[0] != 0 || alus[2] != 2 {
		t.Errorf("ALUsOf(0) = %v", alus)
	}
}

func TestBalancedMapping(t *testing.T) {
	f := New(2, 6, config.MapBalanced, config.WriteMargin, 160)
	want := []int{0, 1, 0, 1, 0, 1}
	for a, w := range want {
		if got := f.CopyOf(a); got != w {
			t.Errorf("balanced: ALU %d -> copy %d, want %d", a, got, w)
		}
	}
	// Each copy gets one of the two highest-priority ALUs — the defining
	// property of interleaving.
	if f.CopyOf(0) == f.CopyOf(1) {
		t.Error("balanced mapping put both top-priority ALUs on one copy")
	}
}

func TestCompletelyBalancedMapping(t *testing.T) {
	f := New(2, 6, config.MapCompletelyBalanced, config.WriteMargin, 160)
	for a := 0; a < 6; a++ {
		if f.CopyOf(a) != -1 {
			t.Errorf("completely-balanced: ALU %d pinned to copy %d", a, f.CopyOf(a))
		}
	}
	if alus := f.ALUsOf(1); len(alus) != 6 {
		t.Errorf("every ALU should touch copy 1, got %v", alus)
	}
}

func TestReadChargingPerCopyMapping(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.ChargeRead(1, 2) // ALU 1 -> copy 0
	f.ChargeRead(4, 2) // ALU 4 -> copy 1
	f.ChargeRead(5, 1)
	if f.Reads[0] != 2 || f.Reads[1] != 3 {
		t.Fatalf("reads %v/%v", f.Reads[0], f.Reads[1])
	}
	want0 := 2 * power.RFRead
	if got := drainCopies(f)[0]; math.Abs(got-want0) > 1e-18 {
		t.Fatalf("copy0 energy %v, want %v", got, want0)
	}
	if drainCopies(f)[0] != 0 {
		t.Fatal("drain did not clear")
	}
}

func TestReadChargingCompletelyBalancedSplits(t *testing.T) {
	f := New(2, 6, config.MapCompletelyBalanced, config.WriteMargin, 160)
	f.ChargeRead(0, 2)
	if f.Reads[0] != 1 || f.Reads[1] != 1 {
		t.Fatalf("reads %v,%v; want 1,1", f.Reads[0], f.Reads[1])
	}
}

func TestZeroOperandReadNoop(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.ChargeRead(0, 0)
	if f.Reads[0] != 0 || drainCopies(f)[0] != 0 {
		t.Fatal("zero-operand read charged")
	}
}

func TestWritesGoToAllCopies(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.ChargeWrite()
	if f.Writes[0] != 1 || f.Writes[1] != 1 {
		t.Fatalf("writes %v,%v", f.Writes[0], f.Writes[1])
	}
}

func TestMarginPolicyWritesContinueWhileOff(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.SetOff(0, true)
	f.ChargeWrite()
	if f.Writes[0] != 1 {
		t.Fatal("margin policy must keep writing the cooling copy")
	}
	if f.Stale(0) {
		t.Fatal("margin policy made copy stale")
	}
	if f.Readable(0) {
		t.Fatal("off copy must not be readable")
	}
}

func TestCopyOnCoolStalenessAndRestore(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteCopyOnCool, 160)
	f.SetOff(1, true)
	f.ChargeWrite()
	f.ChargeWrite()
	if f.Writes[1] != 0 {
		t.Fatal("copy-on-cool wrote to the off copy")
	}
	if !f.Stale(1) {
		t.Fatal("missed writes did not mark copy stale")
	}
	drainCopies(f)
	f.SetOff(1, false)
	if f.Stale(1) {
		t.Fatal("restore did not clear staleness")
	}
	if f.RestoreCopies != 1 {
		t.Fatalf("RestoreCopies = %d", f.RestoreCopies)
	}
	// Refresh writes all 160 physical registers.
	if f.Writes[1] != 160 {
		t.Fatalf("refresh wrote %d regs", f.Writes[1])
	}
	want := 160 * power.RFWrite
	if got := drainCopies(f)[1]; math.Abs(got-want) > 1e-15 {
		t.Fatalf("refresh energy %v, want %v", got, want)
	}
	if !f.Readable(1) {
		t.Fatal("restored copy not readable")
	}
}

func TestCopyOnCoolNoRestoreIfNeverStale(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteCopyOnCool, 160)
	f.SetOff(0, true)
	f.SetOff(0, false) // no writes happened while off
	if f.RestoreCopies != 0 || f.Writes[0] != 0 {
		t.Fatal("unnecessary restore")
	}
}

func TestTurnoffEventCounting(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.SetOff(0, true)
	f.SetOff(0, true) // idempotent: no second event
	f.SetOff(0, false)
	f.SetOff(0, true)
	if f.TurnoffEvents[0] != 2 {
		t.Fatalf("turnoff events %d, want 2", f.TurnoffEvents[0])
	}
}

func TestAllOff(t *testing.T) {
	f := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	f.SetOff(0, true)
	if f.AllOff() {
		t.Fatal("AllOff with one copy on")
	}
	f.SetOff(1, true)
	if !f.AllOff() {
		t.Fatal("AllOff false with all copies off")
	}
}

func TestTurnoffThreshold(t *testing.T) {
	margin := New(2, 6, config.MapPriority, config.WriteMargin, 160)
	if got := margin.TurnoffThreshold(358, 0.5); got != 357.5 {
		t.Fatalf("margin threshold %v", got)
	}
	cool := New(2, 6, config.MapPriority, config.WriteCopyOnCool, 160)
	if got := cool.TurnoffThreshold(358, 0.5); got != 358 {
		t.Fatalf("copy-on-cool threshold %v", got)
	}
	if margin.Policy() != config.WriteMargin {
		t.Fatal("policy accessor")
	}
}

func TestMappingAccessors(t *testing.T) {
	f := New(2, 6, config.MapBalanced, config.WriteMargin, 160)
	if f.Copies() != 2 || f.Mapping() != config.MapBalanced {
		t.Fatal("accessors wrong")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].PowerDensity != "conventional" || rows[1].PowerDensity != "fine-grain turnoff" {
		t.Fatal("row labels wrong")
	}
	if !strings.Contains(rows[1].Priority, "both within and across") {
		t.Fatalf("FGT+priority cell %q", rows[1].Priority)
	}
	if !strings.Contains(rows[0].Balanced, "across copies but not within") {
		t.Fatalf("conventional+balanced cell %q", rows[0].Balanced)
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"indivisible": func() { New(2, 5, config.MapPriority, config.WriteMargin, 160) },
		"no copies":   func() { New(0, 6, config.MapPriority, config.WriteMargin, 160) },
		"bad mapping": func() { New(2, 6, config.RFMapping(9), config.WriteMargin, 160) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestFourCopies(t *testing.T) {
	// The model generalizes beyond two copies.
	f := New(4, 8, config.MapPriority, config.WriteMargin, 160)
	if f.CopyOf(0) != 0 || f.CopyOf(7) != 3 {
		t.Fatal("4-copy priority mapping wrong")
	}
	b := New(4, 8, config.MapBalanced, config.WriteMargin, 160)
	if b.CopyOf(0) != 0 || b.CopyOf(1) != 1 || b.CopyOf(5) != 1 {
		t.Fatal("4-copy balanced mapping wrong")
	}
}
