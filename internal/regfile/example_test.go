package regfile_test

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/regfile"
)

// Example shows the Figure 4 read-port mappings for the Table 2 machine
// (six ALUs across two register-file copies).
func Example() {
	for _, m := range []config.RFMapping{config.MapPriority, config.MapBalanced} {
		f := regfile.New(2, 6, m, config.WriteMargin, 160)
		fmt.Printf("%-9s copy0=%v copy1=%v\n", m, f.ALUsOf(0), f.ALUsOf(1))
	}
	// Output:
	// priority  copy0=[0 1 2] copy1=[3 4 5]
	// balanced  copy0=[0 2 4] copy1=[1 3 5]
}
