// Sparse solver backend: transient integration over the CSR adjacency
// and a conjugate-gradient steady state. The conductance Laplacian
// A = diag(gAmb_i + Σ_j g_ij) − G is symmetric positive definite (every
// node reaches the ambient boundary through the sink), which makes CG
// the natural steady-state solver: O(iterations × nnz) instead of the
// dense O(n³) elimination, with nnz ≈ 5n on mesh floorplans.
//
// All scratch lives on the Model (transient) or in cgScratch (steady
// state, lazily sized), so steady-state loops and the per-interval
// Advance path allocate nothing after warmup.
package thermal

// stepSparse is the CSR Euler substep. It visits each row's nonzeros in
// ascending column order — the same terms in the same order as the dense
// reference step — so the two integrators agree bit for bit, which the
// differential suite pins down.
func (m *Model) stepSparse(power []float64, dt float64) {
	d := m.dT
	for i := 0; i < m.nTotal; i++ {
		flow := 0.0
		ti := m.t[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			flow += m.gval[k] * (m.t[m.colIdx[k]] - ti)
		}
		if m.gAmb[i] != 0 {
			flow += m.gAmb[i] * (m.ambient - ti)
		}
		if i < m.n {
			flow += power[i]
		}
		d[i] = dt / m.c[i] * flow
	}
	for i := 0; i < m.nTotal; i++ {
		m.t[i] += d[i]
	}
}

// cgTolerance is the relative convergence target: CG stops once the
// Jacobi-preconditioned residual norm falls below this fraction of the
// preconditioned right-hand-side norm. 1e-14 leaves steady-state
// temperatures within the differential suite's 1e-9 K of the Gaussian
// reference at every size the dense solver can check.
const cgTolerance = 1e-14

// cgIterFactor caps iterations at cgIterFactor × nodes. Exact-arithmetic
// CG terminates in n steps; the slack covers floating-point drift
// without letting a stagnated solve spin forever.
const cgIterFactor = 20

// cgScratch holds the conjugate-gradient work vectors.
type cgScratch struct {
	x    []float64 // solution
	b    []float64 // right-hand side
	r    []float64 // residual
	z    []float64 // preconditioned residual
	p    []float64 // search direction
	ap   []float64 // A·p
	diag []float64 // Laplacian diagonal (Jacobi preconditioner)
}

func (s *cgScratch) ensure(n int) {
	if len(s.x) == n {
		return
	}
	s.x = make([]float64, n)
	s.b = make([]float64, n)
	s.r = make([]float64, n)
	s.z = make([]float64, n)
	s.p = make([]float64, n)
	s.ap = make([]float64, n)
	s.diag = make([]float64, n)
}

// applyA computes dst = A·x over the CSR structure, with A expressed in
// the flux form gAmb_i·x_i + Σ_j g_ij (x_i − x_j) so the operator is
// applied exactly as the physics is stated.
func (m *Model) applyA(x, dst []float64) {
	for i := 0; i < m.nTotal; i++ {
		xi := x[i]
		acc := m.gAmb[i] * xi
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			acc += m.gval[k] * (xi - x[m.colIdx[k]])
		}
		dst[i] = acc
	}
}

// solveCG solves A·x = b for the steady state under the given per-block
// power, leaving the full node solution (blocks, spreader, sink) in x.
// Callers must have sized the scratch via m.cg.ensure(m.nTotal).
func (m *Model) solveCG(power []float64, x []float64) {
	s := &m.cg
	nt := m.nTotal

	// Right-hand side and Jacobi diagonal.
	for i := 0; i < nt; i++ {
		diag := m.gAmb[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			diag += m.gval[k]
		}
		s.diag[i] = diag
		s.b[i] = m.gAmb[i] * m.ambient
	}
	for i := 0; i < m.n; i++ {
		s.b[i] += power[i]
	}

	// Initial guess: uniform ambient. It is the exact solution at zero
	// power and captures the bulk temperature offset otherwise, so CG
	// spends its iterations on the spatial variation only.
	for i := 0; i < nt; i++ {
		x[i] = m.ambient
	}
	m.applyA(x, s.ap)
	rz := 0.0
	for i := 0; i < nt; i++ {
		s.r[i] = s.b[i] - s.ap[i]
		s.z[i] = s.r[i] / s.diag[i]
		s.p[i] = s.z[i]
		rz += s.r[i] * s.z[i]
	}
	// Convergence target in the preconditioned norm.
	bz := 0.0
	for i := 0; i < nt; i++ {
		bz += s.b[i] * s.b[i] / s.diag[i]
	}
	stop := cgTolerance * cgTolerance * bz

	for iter := 0; iter < cgIterFactor*nt && rz > stop; iter++ {
		m.applyA(s.p, s.ap)
		pap := 0.0
		for i := 0; i < nt; i++ {
			pap += s.p[i] * s.ap[i]
		}
		if pap <= 0 {
			break // numerically exhausted; A is SPD so this is the floor
		}
		alpha := rz / pap
		for i := 0; i < nt; i++ {
			x[i] += alpha * s.p[i]
			s.r[i] -= alpha * s.ap[i]
		}
		rzNext := 0.0
		for i := 0; i < nt; i++ {
			s.z[i] = s.r[i] / s.diag[i]
			rzNext += s.r[i] * s.z[i]
		}
		beta := rzNext / rz
		rz = rzNext
		for i := 0; i < nt; i++ {
			s.p[i] = s.z[i] + beta*s.p[i]
		}
	}
}
