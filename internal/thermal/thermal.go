// Package thermal implements the RC thermal network used in place of
// HotSpot. Like HotSpot, the model is an electrical analogue: every
// floorplan block is a node with a capacitance to thermal ground, a
// vertical resistance through the die and heat spreader toward the heat
// sink, and lateral resistances to its floorplan neighbours; the sink
// couples to ambient through the package's convection resistance
// (Table 2: 0.8 K/W, 6.9 mm sink).
//
// Two properties of this structure drive the paper's results and are
// preserved here:
//
//  1. Vertical conduction is much stronger than lateral conduction, so
//     adjacent resource copies can sit at substantially different
//     temperatures (§1, §4.2's 4 K spread across neighbouring ALUs).
//  2. The network is linear, so time can be rescaled: scaling all
//     capacitances by 1/s speeds every transient by s without moving any
//     steady state. The simulator exploits this (config.ThermalAccel) to
//     reproduce 120 ms of paper-time heating in few-million-cycle runs.
//
// Two solver backends share one Model (config.ThermalSolver picks):
//
//   - The dense path is the executable reference: a mirrored [][]float64
//     conductance matrix, a fixed-size explicit-Euler buffer (at most
//     DenseMaxNodes nodes), and Gaussian elimination for steady states.
//     It reproduces the paper's runs byte for byte.
//   - The sparse path iterates the CSR adjacency directly (no node cap,
//     no per-step allocation) and solves steady states with Jacobi-
//     preconditioned conjugate gradient on the symmetric positive-
//     definite conductance Laplacian; see sparse.go.
//
// config.ThermalAuto (the default) selects dense at paper sizes and
// sparse above DenseMaxNodes, so existing runs are unchanged while
// mesh-scale floorplans (floorplan.Mesh, floorplan.Random) just work.
package thermal

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/config"
	"repro/internal/floorplan"
)

// Physical constants. Conductivity of silicon is taken at operating
// temperature (~350 K); the spreader and sink are copper.
const (
	KSilicon     = 100.0  // W/(m·K)
	KCopper      = 400.0  // W/(m·K)
	CvSilicon    = 1.75e6 // J/(m³·K) volumetric heat capacity
	CvCopper     = 3.55e6 // J/(m³·K)
	DieThickness = 0.5e-3 // m
	// SpreaderThickness and SpreaderSide describe the copper heat
	// spreader between die and sink.
	SpreaderThickness = 1.0e-3  // m
	SpreaderSide      = 30.0e-3 // m
	// SinkSide is the heat-sink base plate edge length; its thickness
	// comes from config (Table 2: 6.9 mm).
	SinkSide = 60.0e-3 // m
	// SpreaderSinkRes is the lumped interface resistance between the
	// spreader and sink base.
	SpreaderSinkRes = 0.05 // K/W
	// LateralConstriction derates block-to-block lateral conductances for
	// boundary constriction (see New).
	LateralConstriction = 0.18
)

// DenseMaxNodes is the largest network (blocks + spreader + sink) the
// dense solver accepts: its explicit-Euler scratch is a fixed stack
// buffer of this size. config.ThermalAuto switches to the sparse solver
// above it; config.ThermalDense returns an error from New instead.
const DenseMaxNodes = 64

// Model is the thermal network. Node layout: nodes 0..N-1 are floorplan
// blocks, node N is the heat spreader, node N+1 is the heat sink. Ambient
// is a fixed-temperature boundary attached to the sink.
type Model struct {
	plan    *floorplan.Plan
	n       int // number of block nodes
	nTotal  int // blocks + spreader + sink
	ambient float64
	solver  config.ThermalSolver // resolved: ThermalDense or ThermalSparse

	// CSR form of the symmetric conductance graph: row i's neighbours are
	// colIdx[rowPtr[i]:rowPtr[i+1]] in ascending column order with
	// conductances in gval. Both solvers are built from this; the dense
	// solver additionally mirrors it into g below.
	rowPtr []int32
	colIdx []int32
	gval   []float64

	// g[i][j] is the dense conductance mirror (symmetric, zero diagonal);
	// nil on the sparse path.
	g    [][]float64
	gAmb []float64 // gAmb[i] couples node i to ambient
	c    []float64 // capacitance per node
	t    []float64 // current temperature per node

	maxStable float64 // largest stable Euler step

	dT []float64 // sparse-path integration scratch (no per-step alloc)
	cg cgScratch // sparse-path steady-state scratch (lazily sized)

	// AdvanceCalls counts integration calls (for tests/telemetry).
	AdvanceCalls uint64
}

// New builds the network for a floorplan under the given package
// configuration. Initial temperatures are ambient everywhere; call
// WarmStart (or SetTemps) to begin from a steady state. It fails only
// when cfg forces the dense solver onto a network larger than
// DenseMaxNodes (the fixed-size integration buffer) or names an unknown
// solver; the sparse solver has no size cap.
func New(plan *floorplan.Plan, cfg *config.Config) (*Model, error) {
	n := plan.NumBlocks()
	nTotal := n + 2
	solver := cfg.ThermalSolver
	switch solver {
	case config.ThermalAuto:
		if nTotal > DenseMaxNodes {
			solver = config.ThermalSparse
		} else {
			solver = config.ThermalDense
		}
	case config.ThermalDense:
		if nTotal > DenseMaxNodes {
			return nil, fmt.Errorf("thermal: %d nodes exceed the dense solver's %d-node integration buffer (use the sparse or auto solver)", nTotal, DenseMaxNodes)
		}
	case config.ThermalSparse:
	default:
		return nil, fmt.Errorf("thermal: unknown solver %v", cfg.ThermalSolver)
	}
	m := &Model{
		plan:    plan,
		n:       n,
		nTotal:  nTotal,
		ambient: cfg.AmbientK,
		solver:  solver,
		gAmb:    make([]float64, nTotal),
		c:       make([]float64, nTotal),
		t:       make([]float64, nTotal),
	}
	spreader, sink := n, n+1

	// Conductance edges, each recorded once per unordered pair.
	type edge struct {
		a, b int
		g    float64
	}
	edges := make([]edge, 0, n+len(plan.Adj)+1)

	for i, b := range plan.Blocks {
		area := b.Area()
		// Vertical path: half the die thickness of silicon (heat is
		// generated at the active layer) plus the spreading resistance
		// into the copper, both inversely proportional to block area.
		rv := DieThickness/(KSilicon*area) + SpreaderThickness/(KCopper*area)/2
		edges = append(edges, edge{i, spreader, 1 / rv})
		m.c[i] = CvSilicon * area * DieThickness
	}
	// Lateral conduction between floorplan neighbours: a silicon bar of
	// cross-section (die thickness × shared edge) and length equal to the
	// center-to-center distance, derated by a constriction factor — heat
	// entering a block's edge spreads through a constricted cross-section
	// near the boundary, which HotSpot captures with spreading-resistance
	// corrections. Without it, narrow blocks short together laterally and
	// the per-copy temperature differences the paper reports (e.g. >4 K
	// across adjacent ALUs, §4.2) cannot form.
	for _, adj := range plan.Adj {
		gl := LateralConstriction * KSilicon * DieThickness * adj.Shared / adj.Dist
		edges = append(edges, edge{adj.A, adj.B, gl})
	}

	// Spreader and sink lumps.
	m.c[spreader] = CvCopper * SpreaderSide * SpreaderSide * SpreaderThickness
	sinkThick := cfg.HeatsinkThicknessMM * 1e-3
	m.c[sink] = CvCopper * SinkSide * SinkSide * sinkThick
	edges = append(edges, edge{spreader, sink, 1 / SpreaderSinkRes})
	m.gAmb[sink] = 1 / cfg.ConvectionRes

	// Assemble the CSR rows: bucket both directions of every edge, sort
	// each row by column (stable, so duplicate records — which no current
	// plan produces — would merge in insertion order), then merge.
	type entry struct {
		col int32
		g   float64
	}
	rows := make([][]entry, nTotal)
	for _, e := range edges {
		rows[e.a] = append(rows[e.a], entry{int32(e.b), e.g})
		rows[e.b] = append(rows[e.b], entry{int32(e.a), e.g})
	}
	m.rowPtr = make([]int32, nTotal+1)
	for i, row := range rows {
		sort.SliceStable(row, func(a, b int) bool { return row[a].col < row[b].col })
		merged := row[:0]
		for _, e := range row {
			if k := len(merged); k > 0 && merged[k-1].col == e.col {
				merged[k-1].g += e.g
			} else {
				merged = append(merged, e)
			}
		}
		rows[i] = merged
		m.rowPtr[i+1] = m.rowPtr[i] + int32(len(merged))
	}
	nnz := m.rowPtr[nTotal]
	m.colIdx = make([]int32, nnz)
	m.gval = make([]float64, nnz)
	for i, row := range rows {
		base := m.rowPtr[i]
		for k, e := range row {
			m.colIdx[base+int32(k)] = e.col
			m.gval[base+int32(k)] = e.g
		}
	}

	if solver == config.ThermalDense {
		// Dense mirror for the reference integrator.
		m.g = make([][]float64, nTotal)
		for i := range m.g {
			m.g[i] = make([]float64, nTotal)
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				m.g[i][m.colIdx[k]] = m.gval[k]
			}
		}
	} else {
		m.dT = make([]float64, nTotal)
	}

	for i := range m.t {
		m.t[i] = cfg.AmbientK
	}
	m.maxStable = m.computeMaxStable()
	return m, nil
}

// computeMaxStable derives the explicit-Euler stability bound from the
// fastest node time constant. The CSR row sums visit the same nonzeros
// in the same ascending-column order as the historical dense loop, so
// the bound is bit-identical across solvers.
func (m *Model) computeMaxStable() float64 {
	minTau := math.Inf(1)
	for i := 0; i < m.nTotal; i++ {
		sum := m.gAmb[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			sum += m.gval[k]
		}
		if sum > 0 {
			if tau := m.c[i] / sum; tau < minTau {
				minTau = tau
			}
		}
	}
	return minTau / 2 // explicit Euler stability with margin
}

// Solver reports which backend the model resolved to (ThermalDense or
// ThermalSparse, never ThermalAuto).
func (m *Model) Solver() config.ThermalSolver { return m.solver }

// NumBlocks returns the number of floorplan block nodes.
func (m *Model) NumBlocks() int { return m.n }

// Temp returns the current temperature of block i in kelvin.
func (m *Model) Temp(i int) float64 { return m.t[i] }

// TempByName returns the temperature of the named floorplan block.
func (m *Model) TempByName(name string) float64 {
	return m.t[m.plan.Index(name)]
}

// Temps copies the block temperatures into dst (allocating if nil) and
// returns it. Spreader and sink temperatures are not included.
func (m *Model) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.n)
	}
	copy(dst, m.t[:m.n])
	return dst
}

// SinkTemp returns the heat-sink temperature.
func (m *Model) SinkTemp() float64 { return m.t[m.n+1] }

// SetTemps sets the block temperatures (length must equal NumBlocks);
// spreader and sink are left unchanged.
func (m *Model) SetTemps(ts []float64) {
	if len(ts) != m.n {
		panic(fmt.Sprintf("thermal: SetTemps with %d values for %d blocks", len(ts), m.n))
	}
	copy(m.t[:m.n], ts)
}

// MaxStableStep returns the largest stable explicit-integration substep in
// seconds. Advance subdivides automatically; this is exported for tests.
func (m *Model) MaxStableStep() float64 { return m.maxStable }

// Advance integrates the network forward by the given thermal-time
// duration with the given per-block power (watts, length NumBlocks). The
// step is internally subdivided for stability.
func (m *Model) Advance(power []float64, seconds float64) {
	if len(power) != m.n {
		panic(fmt.Sprintf("thermal: Advance with %d powers for %d blocks", len(power), m.n))
	}
	if seconds <= 0 {
		return
	}
	m.AdvanceCalls++
	steps := int(seconds/m.maxStable) + 1
	dt := seconds / float64(steps)
	if m.solver == config.ThermalSparse {
		for s := 0; s < steps; s++ {
			m.stepSparse(power, dt)
		}
		return
	}
	for s := 0; s < steps; s++ {
		m.step(power, dt)
	}
}

// step is the dense reference Euler substep.
func (m *Model) step(power []float64, dt float64) {
	// dT_i = dt/C_i * (P_i + sum_j G_ij (T_j - T_i) + G_amb (T_amb - T_i))
	var dT [DenseMaxNodes]float64 // nTotal is capped; avoid per-step allocation
	d := dT[:m.nTotal]
	for i := 0; i < m.nTotal; i++ {
		flow := 0.0
		ti := m.t[i]
		gi := m.g[i]
		for j := 0; j < m.nTotal; j++ {
			if gij := gi[j]; gij != 0 {
				flow += gij * (m.t[j] - ti)
			}
		}
		if m.gAmb[i] != 0 {
			flow += m.gAmb[i] * (m.ambient - ti)
		}
		if i < m.n {
			flow += power[i]
		}
		d[i] = dt / m.c[i] * flow
	}
	for i := 0; i < m.nTotal; i++ {
		m.t[i] += d[i]
	}
}

// SteadyState solves for the equilibrium temperatures under constant
// per-block power and returns them (block nodes only). The model's current
// temperatures are not modified. The dense path uses Gaussian elimination;
// the sparse path conjugate gradient (see sparse.go).
func (m *Model) SteadyState(power []float64) []float64 {
	if len(power) != m.n {
		panic("thermal: SteadyState power length mismatch")
	}
	out := make([]float64, m.n)
	if m.solver == config.ThermalSparse {
		m.cg.ensure(m.nTotal)
		m.solveCG(power, m.cg.x)
		copy(out, m.cg.x[:m.n])
		return out
	}
	a, b := m.denseSystem(power)
	solveInPlace(a, b)
	copy(out, b[:m.n])
	return out
}

// SteadyStateDense solves the same equilibrium with the dense Gaussian
// reference regardless of the model's solver. Unlike the dense transient
// integrator it has no node cap — it materializes the O(n²) system on
// every call — so differential tests and benchmarks can hold the sparse
// solver against the reference at any size.
func (m *Model) SteadyStateDense(power []float64) []float64 {
	if len(power) != m.n {
		panic("thermal: SteadyStateDense power length mismatch")
	}
	a, b := m.denseSystem(power)
	solveInPlace(a, b)
	return b[:m.n]
}

// WarmStart sets all node temperatures to the steady state for the given
// per-block power. This mirrors HotSpot's standard practice of
// initializing from the steady-state solution of the average power trace.
func (m *Model) WarmStart(power []float64) {
	if len(power) != m.n {
		panic("thermal: WarmStart power length mismatch")
	}
	if m.solver == config.ThermalSparse {
		m.cg.ensure(m.nTotal)
		m.solveCG(power, m.cg.x)
		copy(m.t, m.cg.x)
		return
	}
	a, b := m.denseSystem(power)
	solveInPlace(a, b)
	copy(m.t, b)
}

// denseSystem builds the steady-state linear system A·T = b, where A is
// the conductance Laplacian plus ambient coupling and b is power plus
// ambient inflow. The CSR traversal adds the same nonzeros in the same
// order as the historical dense loops, keeping the dense path
// byte-identical.
func (m *Model) denseSystem(power []float64) ([][]float64, []float64) {
	nt := m.nTotal
	a := make([][]float64, nt)
	b := make([]float64, nt)
	for i := 0; i < nt; i++ {
		a[i] = make([]float64, nt)
		diag := m.gAmb[i]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			a[i][m.colIdx[k]] = -m.gval[k]
			diag += m.gval[k]
		}
		a[i][i] = diag
		b[i] = m.gAmb[i] * m.ambient
		if i < m.n {
			b[i] += power[i]
		}
	}
	return a, b
}

// solveInPlace performs Gaussian elimination with partial pivoting on the
// dense system a·x = b, leaving x in b. Paper-scale systems are ~30
// nodes, where a dense solve is simplest and exact; it also serves as the
// any-size reference behind SteadyStateDense.
func solveInPlace(a [][]float64, b []float64) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		piv := a[col][col]
		if piv == 0 {
			panic("thermal: singular conductance matrix")
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * b[c]
		}
		b[r] = sum / a[r][r]
	}
}

// conductance returns the direct conductance between nodes i and j (0 if
// not coupled) via binary search in row i's CSR columns.
func (m *Model) conductance(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch c := m.colIdx[mid]; {
		case c == int32(j):
			return m.gval[mid]
		case c < int32(j):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// VerticalResistance returns the block-to-spreader thermal resistance of
// block i (K/W); exported for calibration and tests.
func (m *Model) VerticalResistance(i int) float64 {
	return 1 / m.conductance(i, m.n)
}

// LateralConductance returns the direct block-to-block conductance between
// blocks i and j (0 if not adjacent).
func (m *Model) LateralConductance(i, j int) float64 { return m.conductance(i, j) }

// ScaleCapacitances multiplies every node capacitance by f, rescaling all
// transients by 1/f without changing any steady state. The simulator uses
// this to implement config.ThermalAccel: rather than tracking two time
// axes, capacitances shrink so that cycle-time integration directly yields
// accelerated dynamics. (Equivalently one can pass pre-scaled durations to
// Advance; both paths are exercised in tests.)
func (m *Model) ScaleCapacitances(f float64) {
	if f <= 0 {
		panic("thermal: non-positive capacitance scale")
	}
	for i := range m.c {
		m.c[i] *= f
	}
	m.maxStable = m.computeMaxStable()
}
