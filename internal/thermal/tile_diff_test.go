// Differential coverage for the multicore-shared thermal network: a 2×2
// tiling of the paper plan (104 blocks + spreader + sink) is beyond the
// dense integrator's cap, so the shared-field path runs on the sparse
// solver — held here against the any-size dense Gaussian reference at the
// same 1e-9 the single-plan differential suite uses. The file also proves
// degenerate single-block plans (the floorplan edge cases) build working
// models under both backends.
package thermal

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
)

// TestTiledSharedNetworkDifferential: CG steady states on the shared
// 4-core die match the dense Gaussian reference within diffTol, and a
// warm-started shared network holds its steady state under transient
// integration.
func TestTiledSharedNetworkDifferential(t *testing.T) {
	plan := floorplan.Tile(floorplan.Build(config.PlanIQConstrained), 2, 2)
	cfg := config.Default()
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solver() != config.ThermalSparse {
		t.Fatalf("4 tiled cores resolved to %v; the shared network is sparse territory", m.Solver())
	}
	rng := lcg(0x4c07e5)
	n := plan.NumBlocks()
	for trial := 0; trial < 10; trial++ {
		pow := randomPower(&rng, n, 3.0)
		want := m.SteadyStateDense(pow)
		got := m.SteadyState(pow)
		for i := range want {
			if d := math.Abs(want[i] - got[i]); d > diffTol {
				t.Fatalf("trial %d block %d (%s): gaussian %.12f cg %.12f (Δ %.3g)",
					trial, i, plan.Blocks[i].Name, want[i], got[i], d)
			}
		}
	}
	// Warm start then integrate under the same power: no drift.
	pow := randomPower(&rng, n, 2.0)
	ref := m.SteadyStateDense(pow)
	m.WarmStart(pow)
	for i := range ref {
		if d := math.Abs(m.Temp(i) - ref[i]); d > diffTol {
			t.Fatalf("warm start block %d off dense steady state by %.3g", i, d)
		}
	}
	m.Advance(pow, 2e-3)
	for i := range ref {
		if d := math.Abs(m.Temp(i) - ref[i]); d > 1e-6 {
			t.Fatalf("shared network drifted from steady state at block %d (Δ %.3g)", i, d)
		}
	}
	// Energy balance on the shared die: sink sits at ambient plus total
	// power through the convection resistance.
	total := 0.0
	for _, p := range pow {
		total += p
	}
	wantSink := cfg.AmbientK + total*cfg.ConvectionRes
	if d := math.Abs(m.SinkTemp() - wantSink); d > 1e-6 {
		t.Fatalf("sink %.9f, energy balance wants %.9f", m.SinkTemp(), wantSink)
	}
}

// TestTiledHeatCrossesCoreBoundary: power on core 0 alone must raise core
// 1's blocks above ambient — the tiles share one temperature field, they
// are not four isolated dies.
func TestTiledHeatCrossesCoreBoundary(t *testing.T) {
	base := floorplan.Build(config.PlanIQConstrained)
	nb := base.NumBlocks()
	plan := floorplan.Tile(base, 1, 2)
	cfg := config.Default()
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pow := make([]float64, plan.NumBlocks())
	for i := 0; i < nb; i++ {
		pow[i] = 2.0 // heat core 0 only
	}
	temps := m.SteadyState(pow)
	hottestIdle := 0.0
	for i := nb; i < 2*nb; i++ {
		if temps[i] > hottestIdle {
			hottestIdle = temps[i]
		}
	}
	// The sink couples everything; lateral coupling must add measurably
	// more than the sink-level rise on top of it for blocks near the seam.
	sinkLevel := m.SinkTemp()
	if hottestIdle <= sinkLevel+0.5 {
		t.Fatalf("idle core peak %.4f barely above sink %.4f: no lateral coupling across the seam",
			hottestIdle, sinkLevel)
	}
}

// TestDegeneratePlanThermalConstruction: single-block and single-row
// plans (the floorplan generators' edge cases) build valid models under
// both solver backends, agree with each other, and satisfy the
// steady-state energy balance.
func TestDegeneratePlanThermalConstruction(t *testing.T) {
	plans := map[string]*floorplan.Plan{
		"mesh-1x1": floorplan.Mesh(1, 1),
		"mesh-1x4": floorplan.Mesh(1, 4),
		"rand-1":   floorplan.Random(1, 7),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			dense, sparse := densePair(t, plan)
			n := plan.NumBlocks()
			pow := make([]float64, n)
			total := 0.0
			for i := range pow {
				pow[i] = 1.5 + 0.5*float64(i)
				total += pow[i]
			}
			dt := dense.SteadyState(pow)
			st := sparse.SteadyState(pow)
			cfg := config.Default()
			for i := 0; i < n; i++ {
				if d := math.Abs(dt[i] - st[i]); d > diffTol {
					t.Fatalf("block %d: dense %.12f sparse %.12f", i, dt[i], st[i])
				}
				if dt[i] <= cfg.AmbientK {
					t.Fatalf("block %d steady state %.4f not above ambient", i, dt[i])
				}
			}
			dense.WarmStart(pow)
			wantSink := cfg.AmbientK + total*cfg.ConvectionRes
			if d := math.Abs(dense.SinkTemp() - wantSink); d > 1e-6 {
				t.Fatalf("sink %.9f, energy balance wants %.9f", dense.SinkTemp(), wantSink)
			}
			// Transient integration moves from ambient toward the steady
			// state without overshooting it.
			for step := 0; step < 50; step++ {
				sparse.Advance(pow, 1e-3)
			}
			for i := 0; i < n; i++ {
				if got := sparse.Temp(i); got <= cfg.AmbientK || got > st[i]+diffTol {
					t.Fatalf("block %d transient %.6f outside (ambient %.2f, steady %.6f]",
						i, got, cfg.AmbientK, st[i])
				}
			}
			// A warm-started model holds its steady state.
			sparse.WarmStart(pow)
			sparse.Advance(pow, 1e-3)
			for i := 0; i < n; i++ {
				if d := math.Abs(sparse.Temp(i) - st[i]); d > 1e-6 {
					t.Fatalf("block %d drifted from steady state by %.3g", i, d)
				}
			}
		})
	}
}
