package thermal

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
)

func newModel(t testing.TB) (*Model, *floorplan.Plan, *config.Config) {
	t.Helper()
	cfg := config.Default()
	plan := floorplan.Build(config.PlanIQConstrained)
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m, plan, cfg
}

func TestInitialTemperaturesAmbient(t *testing.T) {
	m, _, cfg := newModel(t)
	for i := 0; i < m.NumBlocks(); i++ {
		if m.Temp(i) != cfg.AmbientK {
			t.Fatalf("block %d starts at %v", i, m.Temp(i))
		}
	}
}

func TestSteadyStateZeroPowerIsAmbient(t *testing.T) {
	m, _, cfg := newModel(t)
	ts := m.SteadyState(make([]float64, m.NumBlocks()))
	for i, temp := range ts {
		if math.Abs(temp-cfg.AmbientK) > 1e-6 {
			t.Fatalf("block %d steady state %v with zero power", i, temp)
		}
	}
}

func TestSteadyStateEnergyConservation(t *testing.T) {
	// At steady state all injected power must leave through the
	// convection resistance: T_sink - T_amb = P_total * R_conv.
	m, _, cfg := newModel(t)
	p := make([]float64, m.NumBlocks())
	total := 0.0
	for i := range p {
		p[i] = 1.5
		total += p[i]
	}
	m.WarmStart(p)
	wantSink := cfg.AmbientK + total*cfg.ConvectionRes
	if got := m.SinkTemp(); math.Abs(got-wantSink) > 1e-6 {
		t.Fatalf("sink temp %v, want %v", got, wantSink)
	}
}

func TestSteadyStateMonotoneInPower(t *testing.T) {
	m, plan, _ := newModel(t)
	idx := plan.Index(floorplan.IntQ0)
	p := make([]float64, m.NumBlocks())
	p[idx] = 1.0
	low := m.SteadyState(p)
	p[idx] = 2.0
	high := m.SteadyState(p)
	for i := range low {
		if high[i] < low[i]-1e-12 {
			t.Fatalf("block %d temp decreased when power increased", i)
		}
	}
	if high[idx]-low[idx] < 1e-3 {
		t.Fatal("powered block barely warmed")
	}
}

func TestVerticalDominatesLateral(t *testing.T) {
	// Power one ALU only: it must get much hotter than its neighbour,
	// reproducing the paper's observation that heat conducts mostly
	// vertically. (§4.2 observes >4 K spread across adjacent ALUs.)
	m, plan, cfg := newModel(t)
	hot := plan.Index(floorplan.IntExec(0))
	neighbor := plan.Index(floorplan.IntExec(1))
	p := make([]float64, m.NumBlocks())
	p[hot] = 2.0
	ts := m.SteadyState(p)
	riseHot := ts[hot] - cfg.AmbientK
	riseNb := ts[neighbor] - cfg.AmbientK
	if riseHot < 2*riseNb {
		t.Fatalf("hot rise %.3f vs neighbour rise %.3f: lateral conduction too strong", riseHot, riseNb)
	}
	if riseNb <= 0 {
		t.Fatal("no lateral conduction at all")
	}
}

func TestAdvanceConvergesToSteadyState(t *testing.T) {
	m, _, _ := newModel(t)
	p := make([]float64, m.NumBlocks())
	for i := range p {
		p[i] = 1.0
	}
	want := m.SteadyState(p)
	// Start from the steady state of a colder trace and integrate for
	// several sink time constants (the slowest pole, ~70 s).
	half := make([]float64, m.NumBlocks())
	for i := range half {
		half[i] = 0.5
	}
	m.WarmStart(half)
	m.Advance(p, 500)
	for i := range want {
		if math.Abs(m.Temp(i)-want[i]) > 0.05 {
			t.Fatalf("block %d: advanced to %.3f, steady state %.3f", i, m.Temp(i), want[i])
		}
	}
}

func TestCapacitanceScalingPreservesSteadyState(t *testing.T) {
	m1, _, _ := newModel(t)
	m2, _, _ := newModel(t)
	m2.ScaleCapacitances(1.0 / 64)
	p := make([]float64, m1.NumBlocks())
	p[0] = 3.0
	s1 := m1.SteadyState(p)
	s2 := m2.SteadyState(p)
	for i := range s1 {
		if math.Abs(s1[i]-s2[i]) > 1e-9 {
			t.Fatalf("steady state changed by capacitance scaling at block %d", i)
		}
	}
}

func TestCapacitanceScalingAcceleratesTransients(t *testing.T) {
	mSlow, _, _ := newModel(t)
	mFast, _, _ := newModel(t)
	const accel = 16
	mFast.ScaleCapacitances(1.0 / accel)
	p := make([]float64, mSlow.NumBlocks())
	p[0] = 2.0
	// Advance the fast model by t and the slow model by accel*t: they
	// must land on the same temperatures (linear-system rescaling).
	mSlow.Advance(p, 0.080)
	mFast.Advance(p, 0.080/accel)
	for i := 0; i < mSlow.NumBlocks(); i++ {
		if math.Abs(mSlow.Temp(i)-mFast.Temp(i)) > 0.02 {
			t.Fatalf("block %d: slow %.4f vs fast %.4f", i, mSlow.Temp(i), mFast.Temp(i))
		}
	}
}

func TestWarmStartMatchesSteadyState(t *testing.T) {
	m, _, _ := newModel(t)
	p := make([]float64, m.NumBlocks())
	for i := range p {
		p[i] = 0.5 + 0.1*float64(i%4)
	}
	want := m.SteadyState(p)
	m.WarmStart(p)
	for i := range want {
		if math.Abs(m.Temp(i)-want[i]) > 1e-9 {
			t.Fatalf("block %d warmstart %.6f vs steady %.6f", i, m.Temp(i), want[i])
		}
	}
	// After a warm start, advancing under the same power must not move.
	before := m.Temps(nil)
	m.Advance(p, 1e-3)
	for i := range before {
		if math.Abs(m.Temp(i)-before[i]) > 1e-6 {
			t.Fatalf("block %d drifted from steady state: %v -> %v", i, before[i], m.Temp(i))
		}
	}
}

func TestCoolingDecaysTowardAmbient(t *testing.T) {
	m, _, _ := newModel(t)
	p := make([]float64, m.NumBlocks())
	for i := range p {
		p[i] = 2.0
	}
	m.WarmStart(p)
	hot := m.Temp(0)
	zero := make([]float64, m.NumBlocks())
	m.Advance(zero, 0.010) // 10 ms cooling stall
	cooled := m.Temp(0)
	if cooled >= hot {
		t.Fatalf("no cooling during stall: %.3f -> %.3f", hot, cooled)
	}
	// Block time constants are single-digit ms: 10 ms must remove a
	// substantial fraction of the local (block minus sink) excess.
	sink := m.SinkTemp()
	if (cooled-sink)/(hot-sink) > 0.7 {
		t.Fatalf("10ms stall removed too little local heat: %.3f -> %.3f (sink %.3f)", hot, cooled, sink)
	}
}

func TestTempsAndSetTemps(t *testing.T) {
	m, _, _ := newModel(t)
	ts := m.Temps(nil)
	if len(ts) != m.NumBlocks() {
		t.Fatal("Temps length")
	}
	for i := range ts {
		ts[i] = 340 + float64(i)
	}
	m.SetTemps(ts)
	for i := range ts {
		if m.Temp(i) != ts[i] {
			t.Fatalf("SetTemps did not apply at %d", i)
		}
	}
	// Reuse a destination slice.
	dst := make([]float64, m.NumBlocks())
	if got := m.Temps(dst); &got[0] != &dst[0] {
		t.Fatal("Temps reallocated when dst provided")
	}
}

func TestTempByName(t *testing.T) {
	m, plan, _ := newModel(t)
	ts := m.Temps(nil)
	ts[plan.Index(floorplan.IntQ1)] = 351.5
	m.SetTemps(ts)
	if got := m.TempByName(floorplan.IntQ1); got != 351.5 {
		t.Fatalf("TempByName = %v", got)
	}
}

func TestPanics(t *testing.T) {
	m, _, _ := newModel(t)
	for name, f := range map[string]func(){
		"SetTemps wrong len":    func() { m.SetTemps(make([]float64, 3)) },
		"Advance wrong len":     func() { m.Advance(make([]float64, 3), 1e-3) },
		"SteadyState wrong len": func() { m.SteadyState(make([]float64, 3)) },
		"Scale non-positive":    func() { m.ScaleCapacitances(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAdvanceZeroDurationNoop(t *testing.T) {
	m, _, _ := newModel(t)
	before := m.Temps(nil)
	m.Advance(make([]float64, m.NumBlocks()), 0)
	for i := range before {
		if m.Temp(i) != before[i] {
			t.Fatal("zero-duration advance changed state")
		}
	}
}

func TestStabilityUnderLongSteps(t *testing.T) {
	// A single Advance over many stability limits must subdivide and stay
	// finite/physical.
	m, _, cfg := newModel(t)
	p := make([]float64, m.NumBlocks())
	for i := range p {
		p[i] = 3.0
	}
	m.Advance(p, m.MaxStableStep()*500)
	for i := 0; i < m.NumBlocks(); i++ {
		temp := m.Temp(i)
		if math.IsNaN(temp) || temp < cfg.AmbientK-1 || temp > 500 {
			t.Fatalf("block %d unphysical temp %v", i, temp)
		}
	}
}

func TestVerticalResistanceScalesWithArea(t *testing.T) {
	m, plan, _ := newModel(t)
	small := plan.Index(floorplan.IntQ0)  // shrunk in IQ-constrained plan
	large := plan.Index(floorplan.ICache) // big cache block
	if m.VerticalResistance(small) <= m.VerticalResistance(large) {
		t.Fatal("smaller block should have higher vertical resistance")
	}
}

func TestLateralConductanceSymmetric(t *testing.T) {
	m, plan, _ := newModel(t)
	a, b := plan.Index(floorplan.IntQ0), plan.Index(floorplan.IntQ1)
	if m.LateralConductance(a, b) != m.LateralConductance(b, a) {
		t.Fatal("lateral conductance asymmetric")
	}
	if m.LateralConductance(a, b) <= 0 {
		t.Fatal("adjacent halves have no lateral conductance")
	}
	far := plan.Index(floorplan.ICache)
	if m.LateralConductance(a, far) != 0 {
		t.Fatal("non-adjacent blocks coupled laterally")
	}
}

// TestReciprocity checks a fundamental property of any passive RC network
// with a symmetric conductance matrix: the steady-state temperature rise
// at block i caused by power injected at block j equals the rise at j
// caused by the same power at i.
func TestReciprocity(t *testing.T) {
	m, plan, cfg := newModel(t)
	i := plan.Index(floorplan.IntQ0)
	j := plan.Index(floorplan.ICache)

	p := make([]float64, m.NumBlocks())
	p[i] = 1.0
	rjFromI := m.SteadyState(p)[j] - cfg.AmbientK

	p[i] = 0
	p[j] = 1.0
	riFromJ := m.SteadyState(p)[i] - cfg.AmbientK

	if math.Abs(rjFromI-riFromJ) > 1e-9 {
		t.Fatalf("reciprocity violated: %.9f vs %.9f", rjFromI, riFromJ)
	}
}

// TestSuperposition checks linearity: the response to the sum of two power
// vectors is the sum of the responses (the property the thermal
// acceleration relies on).
func TestSuperposition(t *testing.T) {
	m, plan, cfg := newModel(t)
	a := make([]float64, m.NumBlocks())
	b := make([]float64, m.NumBlocks())
	a[plan.Index(floorplan.IntExec(0))] = 2.0
	b[plan.Index(floorplan.FPReg)] = 1.5

	sa := m.SteadyState(a)
	sb := m.SteadyState(b)
	both := make([]float64, m.NumBlocks())
	for i := range both {
		both[i] = a[i] + b[i]
	}
	sab := m.SteadyState(both)
	for i := range sab {
		want := sa[i] + sb[i] - cfg.AmbientK // ambient counted once
		if math.Abs(sab[i]-want) > 1e-9 {
			t.Fatalf("block %d: superposition %.9f vs %.9f", i, sab[i], want)
		}
	}
}
