// Differential suite: the dense Gaussian/fixed-buffer solver is the
// executable specification, and every behaviour of the sparse CSR/CG
// solver is held against it in lockstep — transient Advance sequences,
// steady states, warm starts, and the integration-contract telemetry
// (AdvanceCalls, MaxStableStep). Plans come from the paper floorplans,
// synthetic meshes, and seeded random guillotine plans, all within the
// dense solver's node cap so the reference can actually run.
//
// The file also carries the solver-generic property tests (conductance
// symmetry, zero-power relaxation, steady-state energy balance,
// monotonicity in power), run against both backends.
package thermal

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
)

// diffPlans are the floorplans the lockstep suite runs over: every paper
// variant plus synthetic plans up to the dense cap.
func diffPlans() map[string]*floorplan.Plan {
	return map[string]*floorplan.Plan{
		"paper-iq":  floorplan.Build(config.PlanIQConstrained),
		"paper-alu": floorplan.Build(config.PlanALUConstrained),
		"paper-rf":  floorplan.Build(config.PlanRFConstrained),
		"mesh-4x4":  floorplan.Mesh(4, 4),
		"mesh-7x8":  floorplan.Mesh(7, 8), // 56 blocks: just under the dense cap
		"rand-20":   floorplan.Random(20, 0xfeed),
		"rand-45":   floorplan.Random(45, 0xbeef),
		"rand-62":   floorplan.Random(62, 0xcafe), // 64 nodes: exactly at the cap
	}
}

// densePair builds the same plan under both solvers.
func densePair(t testing.TB, plan *floorplan.Plan) (dense, sparse *Model) {
	t.Helper()
	cfgD := config.Default()
	cfgD.ThermalSolver = config.ThermalDense
	cfgS := config.Default()
	cfgS.ThermalSolver = config.ThermalSparse
	var err error
	if dense, err = New(plan, cfgD); err != nil {
		t.Fatal(err)
	}
	if sparse, err = New(plan, cfgS); err != nil {
		t.Fatal(err)
	}
	return dense, sparse
}

// lcg is a tiny deterministic generator for test power vectors.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(uint64(*l)>>11) / (1 << 53)
}

func randomPower(rng *lcg, n int, maxW float64) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = maxW * rng.next()
	}
	return p
}

const diffTol = 1e-9

// TestDenseCapReturnsError replaces the historical 64-node panic: the
// dense path reports the cap as an error, auto falls over to sparse, and
// sparse has no cap at all.
func TestDenseCapReturnsError(t *testing.T) {
	big := floorplan.Mesh(8, 8) // 64 blocks + spreader + sink = 66 nodes
	cfg := config.Default()
	cfg.ThermalSolver = config.ThermalDense
	if _, err := New(big, cfg); err == nil {
		t.Fatal("dense solver accepted a plan beyond its integration buffer")
	}
	cfg.ThermalSolver = config.ThermalAuto
	m, err := New(big, cfg)
	if err != nil {
		t.Fatalf("auto solver rejected a large plan: %v", err)
	}
	if m.Solver() != config.ThermalSparse {
		t.Fatalf("auto resolved to %v above the cap", m.Solver())
	}
	// Paper-size plans stay on the dense reference under auto.
	small, err := New(floorplan.Build(config.PlanIQConstrained), config.Default())
	if err != nil {
		t.Fatal(err)
	}
	if small.Solver() != config.ThermalDense {
		t.Fatalf("auto resolved to %v at paper size", small.Solver())
	}
	// Unknown solver values fail closed.
	cfg.ThermalSolver = config.ThermalSolver(99)
	if _, err := New(big, cfg); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

// TestDiffTransientLockstep drives both solvers through the same
// Advance sequence — varied powers, varied durations, including
// sub-stability and many-substep calls — and requires temperatures
// within diffTol at every checkpoint, plus exact AdvanceCalls and
// MaxStableStep parity.
func TestDiffTransientLockstep(t *testing.T) {
	for name, plan := range diffPlans() {
		t.Run(name, func(t *testing.T) {
			dense, sparse := densePair(t, plan)
			if d, s := dense.MaxStableStep(), sparse.MaxStableStep(); d != s {
				t.Fatalf("MaxStableStep diverges: dense %v sparse %v", d, s)
			}
			rng := lcg(0x5eed)
			n := plan.NumBlocks()
			for step := 0; step < 40; step++ {
				pow := randomPower(&rng, n, 3.0)
				// Mix durations: fractions of the stable step through
				// hundreds of substeps.
				dur := dense.MaxStableStep() * math.Pow(10, 4*rng.next()-1)
				dense.Advance(pow, dur)
				sparse.Advance(pow, dur)
				for i := 0; i < n; i++ {
					if d := math.Abs(dense.Temp(i) - sparse.Temp(i)); d > diffTol {
						t.Fatalf("step %d block %d: dense %.12f sparse %.12f (Δ %.3g)",
							step, i, dense.Temp(i), sparse.Temp(i), d)
					}
				}
			}
			if dense.AdvanceCalls != sparse.AdvanceCalls {
				t.Fatalf("AdvanceCalls diverge: %d vs %d", dense.AdvanceCalls, sparse.AdvanceCalls)
			}
			if dense.AdvanceCalls != 40 {
				t.Fatalf("AdvanceCalls = %d, want 40", dense.AdvanceCalls)
			}
		})
	}
}

// TestDiffSteadyState holds CG against Gaussian elimination on random
// power vectors, and checks SteadyStateDense matches the dense solver's
// own SteadyState exactly (same algorithm, any-size entry point).
func TestDiffSteadyState(t *testing.T) {
	for name, plan := range diffPlans() {
		t.Run(name, func(t *testing.T) {
			dense, sparse := densePair(t, plan)
			rng := lcg(0xabcde)
			n := plan.NumBlocks()
			for trial := 0; trial < 10; trial++ {
				pow := randomPower(&rng, n, 4.0)
				want := dense.SteadyState(pow)
				got := sparse.SteadyState(pow)
				for i := range want {
					if d := math.Abs(want[i] - got[i]); d > diffTol {
						t.Fatalf("trial %d block %d: gaussian %.12f cg %.12f (Δ %.3g)",
							trial, i, want[i], got[i], d)
					}
				}
				ref := sparse.SteadyStateDense(pow)
				for i := range want {
					if ref[i] != want[i] {
						t.Fatalf("SteadyStateDense diverges from the dense solver at block %d", i)
					}
				}
			}
		})
	}
}

// TestDiffWarmStart checks the full warm-start state (blocks and sink)
// agrees across solvers, then that both hold steady under the same
// power.
func TestDiffWarmStart(t *testing.T) {
	for name, plan := range diffPlans() {
		t.Run(name, func(t *testing.T) {
			dense, sparse := densePair(t, plan)
			rng := lcg(0x77)
			pow := randomPower(&rng, plan.NumBlocks(), 2.5)
			dense.WarmStart(pow)
			sparse.WarmStart(pow)
			for i := 0; i < plan.NumBlocks(); i++ {
				if d := math.Abs(dense.Temp(i) - sparse.Temp(i)); d > diffTol {
					t.Fatalf("block %d: dense %.12f sparse %.12f", i, dense.Temp(i), sparse.Temp(i))
				}
			}
			if d := math.Abs(dense.SinkTemp() - sparse.SinkTemp()); d > diffTol {
				t.Fatalf("sink: dense %.12f sparse %.12f", dense.SinkTemp(), sparse.SinkTemp())
			}
			// A warm-started model must not drift under the same power.
			sparse.Advance(pow, 1e-3)
			for i := 0; i < plan.NumBlocks(); i++ {
				if d := math.Abs(dense.Temp(i) - sparse.Temp(i)); d > 1e-6 {
					t.Fatalf("sparse drifted from its own steady state at block %d (Δ %.3g)", i, d)
				}
			}
		})
	}
}

// --- Solver-generic property tests -----------------------------------------

// eachSolver runs f against a model built with each backend on the given
// plan (skipping dense when the plan exceeds its cap).
func eachSolver(t *testing.T, plan *floorplan.Plan, f func(t *testing.T, m *Model, cfg *config.Config)) {
	for _, solver := range []config.ThermalSolver{config.ThermalDense, config.ThermalSparse} {
		t.Run(solver.String(), func(t *testing.T) {
			cfg := config.Default()
			cfg.ThermalSolver = solver
			m, err := New(plan, cfg)
			if err != nil {
				if solver == config.ThermalDense && plan.NumBlocks()+2 > DenseMaxNodes {
					t.Skip("plan beyond the dense cap")
				}
				t.Fatal(err)
			}
			f(t, m, cfg)
		})
	}
}

func propertyPlans() map[string]*floorplan.Plan {
	return map[string]*floorplan.Plan{
		"paper-iq": floorplan.Build(config.PlanIQConstrained),
		"mesh-6x7": floorplan.Mesh(6, 7),
		"rand-33":  floorplan.Random(33, 0x1234),
	}
}

// TestPropertyConductanceSymmetry: g[i][j] == g[j][i] for every node
// pair, on both backends (they share the CSR build, so this pins the
// construction, not just the accessor).
func TestPropertyConductanceSymmetry(t *testing.T) {
	for name, plan := range propertyPlans() {
		t.Run(name, func(t *testing.T) {
			eachSolver(t, plan, func(t *testing.T, m *Model, _ *config.Config) {
				for i := 0; i < m.nTotal; i++ {
					for j := i + 1; j < m.nTotal; j++ {
						if gij, gji := m.conductance(i, j), m.conductance(j, i); gij != gji {
							t.Fatalf("asymmetric conductance (%d,%d): %v vs %v", i, j, gij, gji)
						}
					}
				}
			})
		})
	}
}

// TestPropertyZeroPowerRelaxation: with no power, any initial state
// relaxes toward ambient, and the zero-power steady state is ambient
// exactly (to solver tolerance).
func TestPropertyZeroPowerRelaxation(t *testing.T) {
	for name, plan := range propertyPlans() {
		t.Run(name, func(t *testing.T) {
			eachSolver(t, plan, func(t *testing.T, m *Model, cfg *config.Config) {
				n := m.NumBlocks()
				ss := m.SteadyState(make([]float64, n))
				for i, temp := range ss {
					if math.Abs(temp-cfg.AmbientK) > 1e-6 {
						t.Fatalf("block %d zero-power steady state %v", i, temp)
					}
				}
				hot := make([]float64, n)
				for i := range hot {
					hot[i] = cfg.AmbientK + 20
				}
				m.SetTemps(hot)
				before := m.Temp(0)
				m.Advance(make([]float64, n), 0.050)
				after := m.Temp(0)
				if after >= before {
					t.Fatalf("no relaxation: %.3f -> %.3f", before, after)
				}
				if after < cfg.AmbientK-1e-9 {
					t.Fatalf("undershot ambient: %.6f", after)
				}
			})
		})
	}
}

// TestPropertyEnergyBalance: at steady state, all injected power leaves
// through the convection resistance, so the sink sits at exactly
// ambient + P_total·R_conv.
func TestPropertyEnergyBalance(t *testing.T) {
	for name, plan := range propertyPlans() {
		t.Run(name, func(t *testing.T) {
			eachSolver(t, plan, func(t *testing.T, m *Model, cfg *config.Config) {
				rng := lcg(0x42)
				pow := randomPower(&rng, m.NumBlocks(), 2.0)
				total := 0.0
				for _, p := range pow {
					total += p
				}
				m.WarmStart(pow)
				want := cfg.AmbientK + total*cfg.ConvectionRes
				if got := m.SinkTemp(); math.Abs(got-want) > 1e-6 {
					t.Fatalf("sink %v, want %v (conservation violated)", got, want)
				}
			})
		})
	}
}

// TestPropertyMonotoneInPower: raising one block's power never lowers
// any block's steady-state temperature, and strictly raises its own.
func TestPropertyMonotoneInPower(t *testing.T) {
	for name, plan := range propertyPlans() {
		t.Run(name, func(t *testing.T) {
			eachSolver(t, plan, func(t *testing.T, m *Model, _ *config.Config) {
				rng := lcg(0x99)
				base := randomPower(&rng, m.NumBlocks(), 1.0)
				low := m.SteadyState(base)
				for _, idx := range []int{0, m.NumBlocks() / 2, m.NumBlocks() - 1} {
					bumped := make([]float64, len(base))
					copy(bumped, base)
					bumped[idx] += 1.5
					high := m.SteadyState(bumped)
					for i := range low {
						if high[i] < low[i]-1e-9 {
							t.Fatalf("block %d cooled when block %d's power rose", i, idx)
						}
					}
					if high[idx]-low[idx] < 1e-4 {
						t.Fatalf("block %d barely warmed under its own power", idx)
					}
				}
			})
		})
	}
}

// TestLargeMeshEndToEnd is the scale acceptance check: a 3000-node mesh
// plan (50×60 blocks) builds, integrates transients, and solves steady
// states on the sparse path — the configuration the historical 64-node
// panic made impossible — with physically sane results.
func TestLargeMeshEndToEnd(t *testing.T) {
	rows, cols := 50, 60
	if testing.Short() {
		rows, cols = 20, 30
	}
	plan := floorplan.Mesh(rows, cols)
	cfg := config.Default()
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Solver() != config.ThermalSparse {
		t.Fatalf("solver %v for %d nodes", m.Solver(), plan.NumBlocks()+2)
	}
	n := plan.NumBlocks()
	pow := make([]float64, n)
	total := 0.0
	for i := range pow {
		pow[i] = 40.0 / float64(n) // ~40 W chip
		total += pow[i]
	}
	// Steady state: energy balance pins the sink; the interior must sit
	// above ambient and below an absurd bound.
	m.WarmStart(pow)
	wantSink := cfg.AmbientK + total*cfg.ConvectionRes
	if got := m.SinkTemp(); math.Abs(got-wantSink) > 1e-6 {
		t.Fatalf("sink %v, want %v", got, wantSink)
	}
	for i := 0; i < n; i++ {
		if temp := m.Temp(i); math.IsNaN(temp) || temp < cfg.AmbientK || temp > 500 {
			t.Fatalf("block %d unphysical steady temp %v", i, temp)
		}
	}
	// Transient: a sensor interval's worth of integration stays finite
	// and counts one Advance.
	dt := float64(cfg.SensorIntervalCycles) * cfg.ThermalSecondsPerCycle()
	m.Advance(pow, dt)
	if m.AdvanceCalls != 1 {
		t.Fatalf("AdvanceCalls = %d", m.AdvanceCalls)
	}
	for i := 0; i < n; i++ {
		if temp := m.Temp(i); math.IsNaN(temp) || temp > 500 {
			t.Fatalf("block %d unphysical transient temp %v", i, temp)
		}
	}
	// And a corner block heated alone must dominate its diagonal
	// opposite (vertical-dominance sanity at scale).
	solo := make([]float64, n)
	solo[plan.Index(floorplan.MeshCell(0, 0))] = 5.0
	ss := m.SteadyState(solo)
	hot := ss[plan.Index(floorplan.MeshCell(0, 0))]
	far := ss[plan.Index(floorplan.MeshCell(rows-1, cols-1))]
	if hot-cfg.AmbientK < 2*(far-cfg.AmbientK) {
		t.Fatalf("no locality at scale: hot rise %.4f vs far rise %.4f", hot-cfg.AmbientK, far-cfg.AmbientK)
	}
}

// TestSparseAdvanceDoesNotAllocate locks the sparse transient path to
// zero steady-state heap traffic, matching the dense path's fixed
// buffer: the per-interval Advance sits on the simulator's hot loop.
func TestSparseAdvanceDoesNotAllocate(t *testing.T) {
	plan := floorplan.Mesh(20, 20)
	cfg := config.Default()
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pow := make([]float64, plan.NumBlocks())
	for i := range pow {
		pow[i] = 0.05
	}
	dt := m.MaxStableStep() * 10
	m.Advance(pow, dt) // warm any lazy state
	if avg := testing.AllocsPerRun(50, func() { m.Advance(pow, dt) }); avg != 0 {
		t.Fatalf("sparse Advance allocates %.1f objects per call", avg)
	}
}

// TestSteadyStateScratchReuse: repeated sparse steady-state solves reuse
// the CG scratch — only the returned result slice is allocated.
func TestSteadyStateScratchReuse(t *testing.T) {
	plan := floorplan.Mesh(15, 15)
	cfg := config.Default()
	m, err := New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pow := make([]float64, plan.NumBlocks())
	pow[0] = 2.0
	m.SteadyState(pow) // size the scratch
	if avg := testing.AllocsPerRun(20, func() { m.SteadyState(pow) }); avg > 1 {
		t.Fatalf("sparse SteadyState allocates %.1f objects per call, want just the result", avg)
	}
}

func TestSolverString(t *testing.T) {
	for want, s := range map[string]config.ThermalSolver{
		"auto": config.ThermalAuto, "dense": config.ThermalDense, "sparse": config.ThermalSparse,
	} {
		if s.String() != want {
			t.Fatalf("String() = %q, want %q", s.String(), want)
		}
	}
	if got := fmt.Sprint(config.ThermalSolver(7)); got != "ThermalSolver(7)" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}
