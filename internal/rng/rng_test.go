package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produce %d/100 identical values", same)
	}
}

func TestSeedReset(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after reseed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("Bool(0.25) frequency = %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(13)
	for _, mean := range []float64{1, 2, 5, 20} {
		sum := 0
		const n = 50000
		for i := 0; i < n; i++ {
			sum += s.Geometric(mean)
		}
		got := float64(sum) / n
		want := mean
		if want < 1 {
			want = 1
		}
		if math.Abs(got-want) > want*0.1 {
			t.Fatalf("Geometric(%v) mean = %v", mean, got)
		}
	}
}

func TestGeometricMinimum(t *testing.T) {
	s := New(17)
	for i := 0; i < 1000; i++ {
		if v := s.Geometric(3); v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
	}
}

// TestGeometricTCapPinned pins the GeometricMaxTrials cap behavior: a
// threshold so small that no trial can succeed returns exactly the cap and
// consumes exactly cap-1 draws. The draw count is the load-bearing part —
// every downstream draw shifts if the cap moves — so the test counts draws
// by diffing against a shadow source.
func TestGeometricTCapPinned(t *testing.T) {
	if GeometricMaxTrials != 1<<20 {
		t.Fatalf("GeometricMaxTrials = %d, want %d (changing it shifts every draw after a capped sample)",
			GeometricMaxTrials, 1<<20)
	}
	// t=1 succeeds only on a draw of u53 == 0: with ~2^-53 odds per trial,
	// the capped path is (for any practical stream) always taken. Verify
	// against the seed used here that no trial succeeded early.
	s := New(31337)
	if got := s.GeometricT(1); got != GeometricMaxTrials {
		t.Fatalf("GeometricT(1) = %d, want the GeometricMaxTrials cap (%d)", got, GeometricMaxTrials)
	}
	// Draw-count pin: the capped sample consumed exactly cap-1 draws
	// (trial n fails and increments n, loop exits when n reaches the cap).
	shadow := New(31337)
	for i := 0; i < GeometricMaxTrials-1; i++ {
		shadow.Uint64()
	}
	if a, b := s.Uint64(), shadow.Uint64(); a != b {
		t.Fatalf("capped GeometricT consumed a different number of draws: next draw %#x, want %#x", a, b)
	}
	// The buffered wrapper shares the cap and the draw count.
	bs := NewBuffered(31337, 64)
	if got := bs.GeometricT(1); got != GeometricMaxTrials {
		t.Fatalf("Buffered.GeometricT(1) = %d, want %d", got, GeometricMaxTrials)
	}
	shadow.Seed(31337)
	for i := 0; i < GeometricMaxTrials-1; i++ {
		shadow.Uint64()
	}
	if a, b := bs.Uint64(), shadow.Uint64(); a != b {
		t.Fatalf("Buffered capped GeometricT consumed a different number of draws: next draw %#x, want %#x", a, b)
	}
	// A zero threshold (mean <= 1) draws nothing at all.
	s.Seed(5)
	shadow.Seed(5)
	if got := s.GeometricT(0); got != 1 {
		t.Fatalf("GeometricT(0) = %d, want 1", got)
	}
	if a, b := s.Uint64(), shadow.Uint64(); a != b {
		t.Fatal("GeometricT(0) consumed a draw; it must consume none")
	}
}

func TestRangeInclusive(t *testing.T) {
	s := New(19)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.Range(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("Range(3,6) = %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 6 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("Range(3,6) never hit an endpoint")
	}
}

func TestRangeSingleton(t *testing.T) {
	s := New(23)
	if v := s.Range(5, 5); v != 5 {
		t.Fatalf("Range(5,5) = %d", v)
	}
}

// Property: every seed yields values in range for Intn across arbitrary n.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: reseeding always reproduces the stream.
func TestQuickSeedReproducible(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed)
		b := New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
