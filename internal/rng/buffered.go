package rng

import "fmt"

// DefaultBatch is the refill size Buffered uses when the caller does not
// pick one: large enough to amortize the refill loop, small enough that a
// buffer stays a fraction of an L1 cache (256 draws = 2 KiB).
const DefaultBatch = 256

// Buffered wraps a Source with a refillable draw buffer: Fill produces the
// next batch of raw 64-bit draws in one tight pass, and every sampling
// method consumes them one at a time. Because each method consumes exactly
// the draws its Source counterpart would — one Uint64 per U53/Float64/
// Intn/Bool trial, one per GeometricT trial — the emitted stream is
// bit-identical to an unbuffered Source with the same seed at any batch
// size (locked by TestBufferedMatchesSource across sizes 1/7/64/1024).
// The buffer is read-ahead state only: it never changes draw count or
// order, so the draw-order contract (U53() < Threshold(p)) that the trace
// generator and the goldens pin is untouched.
//
// Buffered is not safe for concurrent use, matching Source.
type Buffered struct {
	src Source
	buf []uint64
	pos int
}

// NewBuffered returns a buffered generator seeded like New(seed),
// refilling batch draws at a time. batch <= 0 selects DefaultBatch.
func NewBuffered(seed uint64, batch int) *Buffered {
	if batch <= 0 {
		batch = DefaultBatch
	}
	b := &Buffered{buf: make([]uint64, batch)}
	b.src.Seed(seed)
	b.pos = batch // empty: first draw refills
	return b
}

// Seed resets the generator state from seed (see Source.Seed) and discards
// any buffered read-ahead.
func (b *Buffered) Seed(seed uint64) {
	b.src.Seed(seed)
	b.pos = len(b.buf)
}

// Uint64 returns the next 64 random bits. The in-buffer fast path is kept
// small enough for the compiler to inline into the samplers below and into
// callers' draw loops; the refill is a separate call so its cost does not
// count against the inlining budget.
func (b *Buffered) Uint64() uint64 {
	pos := b.pos
	if pos >= len(b.buf) {
		b.refill()
		pos = 0
	}
	b.pos = pos + 1
	return b.buf[pos]
}

// refill regenerates the buffer and rewinds the cursor.
func (b *Buffered) refill() {
	b.src.Fill(b.buf)
	b.pos = 0
}

// U53 returns the next draw's 53-bit mantissa sample (see Source.U53).
func (b *Buffered) U53() uint64 {
	return b.Uint64() >> 11
}

// Float64 returns a uniform float64 in [0, 1).
func (b *Buffered) Float64() float64 {
	return float64(b.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (b *Buffered) Bool(p float64) bool {
	return b.Float64() < p
}

// BoolT returns true with the probability encoded by Threshold.
func (b *Buffered) BoolT(t uint64) bool {
	return b.U53() < t
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (b *Buffered) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	if n&(n-1) == 0 {
		return int(b.Uint64() & uint64(n-1))
	}
	return int(b.Uint64() % uint64(n))
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (b *Buffered) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + b.Intn(hi-lo+1)
}

// Geometric returns a sample from a geometric distribution with the given
// mean (see Source.Geometric).
func (b *Buffered) Geometric(mean float64) int {
	return b.GeometricT(GeometricThreshold(mean))
}

// GeometricT samples the geometric distribution whose threshold t was
// produced by GeometricThreshold, consuming one buffered draw per trial
// exactly like Source.GeometricT (including the GeometricMaxTrials cap).
// The trial loop keeps the buffer and cursor in registers and writes the
// cursor back only on exit; wider (unrolled) scans were benchmarked and
// lose at the short dependency distances that dominate call volume.
func (b *Buffered) GeometricT(t uint64) int {
	if t == 0 {
		return 1
	}
	buf, pos := b.buf, b.pos
	n := 1
	for {
		if uint(pos) >= uint(len(buf)) {
			b.src.Fill(buf)
			pos = 0
		}
		v := buf[pos]
		pos++
		if v>>11 < t {
			b.pos = pos
			return n
		}
		n++
		if n >= GeometricMaxTrials {
			b.pos = pos
			return n
		}
	}
}

// BatchSize returns the refill size (for tests and diagnostics).
func (b *Buffered) BatchSize() int { return len(b.buf) }

func (b *Buffered) String() string {
	return fmt.Sprintf("rng.Buffered{batch: %d, unread: %d}", len(b.buf), len(b.buf)-b.pos)
}
