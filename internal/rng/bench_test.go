package rng

import "testing"

// Geometric-threshold fixtures spanning the profile range: dependency
// distances are short (mean ~3) for value operands and long (mean ~20-50)
// for address operands.
var geomThresholds = []struct {
	name string
	t    uint64
}{
	{"mean3", GeometricThreshold(3)},
	{"mean8", GeometricThreshold(8)},
	{"mean32", GeometricThreshold(32)},
}

func BenchmarkBufferedGeometricT(b *testing.B) {
	for _, tc := range geomThresholds {
		b.Run(tc.name, func(b *testing.B) {
			r := NewBuffered(1, DefaultBatch)
			acc := 0
			for i := 0; i < b.N; i++ {
				acc += r.GeometricT(tc.t)
			}
			_ = acc
		})
	}
}

func BenchmarkBufferedUint64(b *testing.B) {
	r := NewBuffered(1, DefaultBatch)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += r.Uint64()
	}
	_ = acc
}
