// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Determinism matters: every
// experiment in the paper reproduction must produce identical instruction
// streams for a given (benchmark, seed) pair so that configurations can be
// compared against each other cycle-for-cycle.
//
// The generator is xorshift128+, which is more than adequate for workload
// synthesis and far cheaper than math/rand's default source.
package rng

// Source is a deterministic xorshift128+ generator. The zero value is not
// usable; construct with New.
type Source struct {
	s0, s1 uint64
}

// New returns a Source seeded from the given seed. Two distinct seeds give
// uncorrelated streams for our purposes (the seed is diffused through
// splitmix64 before use).
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state from seed using splitmix64 diffusion so
// that small seeds (0, 1, 2, ...) still yield well-mixed states.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0 = next()
	s.s1 = next()
	if s.s0 == 0 && s.s1 == 0 {
		s.s0 = 1
	}
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	x, y := s.s0, s.s1
	s.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	s.s1 = x
	return x + y
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with the given
// mean (mean >= 1). It is used for dependency distances and burst lengths.
// The returned value is at least 1.
func (s *Source) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for !s.Bool(p) {
		n++
		if n >= 1<<20 {
			break
		}
	}
	return n
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}
