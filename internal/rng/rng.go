// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Determinism matters: every
// experiment in the paper reproduction must produce identical instruction
// streams for a given (benchmark, seed) pair so that configurations can be
// compared against each other cycle-for-cycle.
//
// The generator is xorshift128+, which is more than adequate for workload
// synthesis and far cheaper than math/rand's default source.
package rng

import "math"

// Source is a deterministic xorshift128+ generator. The zero value is not
// usable; construct with New.
type Source struct {
	s0, s1 uint64
}

// New returns a Source seeded from the given seed. Two distinct seeds give
// uncorrelated streams for our purposes (the seed is diffused through
// splitmix64 before use).
func New(seed uint64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the generator state from seed using splitmix64 diffusion so
// that small seeds (0, 1, 2, ...) still yield well-mixed states.
func (s *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	s.s0 = next()
	s.s1 = next()
	if s.s0 == 0 && s.s1 == 0 {
		s.s0 = 1
	}
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	x, y := s.s0, s.s1
	s.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	s.s1 = x
	return x + y
}

// Fill overwrites dst with the next len(dst) Uint64 draws, leaving the
// generator in exactly the state len(dst) Uint64 calls would. The loop
// keeps the xorshift state in registers across the whole batch instead of
// loading and storing it per draw — the refill half of the Buffered
// wrapper's bargain.
func (s *Source) Fill(dst []uint64) {
	x, y := s.s0, s.s1
	for i := range dst {
		t := x
		t ^= t << 23
		t ^= t >> 17
		t ^= y ^ (y >> 26)
		dst[i] = t + y
		x, y = y, t
	}
	s.s0, s.s1 = x, y
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	if n&(n-1) == 0 {
		// Power-of-two bound: the mask equals the modulo bit for bit, and
		// skips the 64-bit division (n is a variable here, so the compiler
		// cannot strength-reduce it).
		return int(s.Uint64() & uint64(n-1))
	}
	return int(s.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// U53 returns the next draw's 53-bit mantissa sample — the integer u>>11
// that Float64 scales into [0, 1). Exposed so hot callers can compare the
// draw against Threshold-precomputed bounds in the integer domain.
func (s *Source) U53() uint64 {
	return s.Uint64() >> 11
}

// Threshold converts a probability p in [0, 1] into the integer bound t
// such that U53() < t holds exactly when Float64() < p holds for the same
// draw: Float64() < p over the 53-bit sample u is, in exact arithmetic,
// u < p*2^53 (both scalings by 2^53 are exact for p in [0, 1]), and for an
// integer left side that is u < ceil(p*2^53). p <= 0 maps to 0 (never).
func Threshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// BoolT returns true with the probability encoded by Threshold.
func (s *Source) BoolT(t uint64) bool {
	return s.U53() < t
}

// Geometric returns a sample from a geometric distribution with the given
// mean (mean >= 1). It is used for dependency distances and burst lengths.
// The returned value is at least 1.
func (s *Source) Geometric(mean float64) int {
	return s.GeometricT(GeometricThreshold(mean))
}

// GeometricThreshold precomputes the per-trial threshold for GeometricT,
// hoisting the 1/mean division out of hot loops that sample the same
// distribution repeatedly. The zero threshold encodes mean <= 1 (the
// sample is always 1, no random draw).
//
// The trial Float64() < p over the 53-bit mantissa draw u>>11 is, in exact
// arithmetic, u>>11 < p*2^53 (both scalings by 2^53 are exact), and for an
// integer left side that is u>>11 < ceil(p*2^53) — so a single integer
// compare per trial reproduces the float comparison bit for bit.
func GeometricThreshold(mean float64) uint64 {
	if mean <= 1 {
		return 0
	}
	return uint64(math.Ceil((1 / mean) * (1 << 53)))
}

// GeometricMaxTrials caps the trial loop in GeometricT (and therefore
// Geometric): a sample never exceeds this value, and a capped sample
// consumes exactly GeometricMaxTrials-1 draws. The cap only binds when the
// per-trial success probability is pathologically small (mean ≳ 2^53 — a
// threshold of 0 draws nothing at all) and exists so a corrupt or
// adversarial threshold cannot spin the generator forever. The cap value
// is part of the draw-count contract: changing it would silently shift
// every downstream draw, so it is pinned by TestGeometricTCapPinned.
const GeometricMaxTrials = 1 << 20

// GeometricT samples the geometric distribution whose threshold t was
// produced by GeometricThreshold.
func (s *Source) GeometricT(t uint64) int {
	if t == 0 {
		return 1
	}
	n := 1
	for s.Uint64()>>11 >= t {
		n++
		if n >= GeometricMaxTrials {
			break
		}
	}
	return n
}

// Range returns a uniform integer in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}
