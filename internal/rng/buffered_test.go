package rng

import (
	"testing"
	"testing/quick"
)

// refillSizes are the batch sizes the equivalence tests sweep: degenerate
// (1), odd (7, never aligned with caller draw patterns), the trace
// generator's scale (64), and oversized (1024). Boundary behavior differs
// at each — a draw pattern that straddles a refill at one size lands
// mid-buffer at another.
var refillSizes = []int{1, 7, 64, 1024}

// TestBufferedMatchesSource proves the core contract: the buffered U53
// stream is bit-identical to the unbuffered Source stream at every refill
// size, over enough draws to cross every buffer boundary many times.
func TestBufferedMatchesSource(t *testing.T) {
	for _, size := range refillSizes {
		ref := New(0xC0FFEE)
		buf := NewBuffered(0xC0FFEE, size)
		for i := 0; i < 5000; i++ {
			if got, want := buf.U53(), ref.U53(); got != want {
				t.Fatalf("batch=%d: U53 draw %d = %#x, want %#x", size, i, got, want)
			}
		}
	}
}

// TestBufferedMixedDrawsMatchSource interleaves every sampling method in a
// deterministic pattern and requires the buffered and unbuffered streams to
// agree draw for draw — the method mix is what the trace generator actually
// does, so this is the layout the refill boundaries must survive.
func TestBufferedMixedDrawsMatchSource(t *testing.T) {
	gt := GeometricThreshold(3.5)
	bt := Threshold(0.3)
	for _, size := range refillSizes {
		ref := New(99)
		buf := NewBuffered(99, size)
		for i := 0; i < 3000; i++ {
			switch i % 7 {
			case 0:
				if a, b := buf.Uint64(), ref.Uint64(); a != b {
					t.Fatalf("batch=%d draw %d: Uint64 %#x != %#x", size, i, a, b)
				}
			case 1:
				if a, b := buf.U53(), ref.U53(); a != b {
					t.Fatalf("batch=%d draw %d: U53 %#x != %#x", size, i, a, b)
				}
			case 2:
				if a, b := buf.Float64(), ref.Float64(); a != b {
					t.Fatalf("batch=%d draw %d: Float64 %v != %v", size, i, a, b)
				}
			case 3:
				if a, b := buf.Intn(17), ref.Intn(17); a != b {
					t.Fatalf("batch=%d draw %d: Intn %d != %d", size, i, a, b)
				}
			case 4:
				if a, b := buf.BoolT(bt), ref.BoolT(bt); a != b {
					t.Fatalf("batch=%d draw %d: BoolT %v != %v", size, i, a, b)
				}
			case 5:
				if a, b := buf.GeometricT(gt), ref.GeometricT(gt); a != b {
					t.Fatalf("batch=%d draw %d: GeometricT %d != %d", size, i, a, b)
				}
			case 6:
				if a, b := buf.Range(3, 40), ref.Range(3, 40); a != b {
					t.Fatalf("batch=%d draw %d: Range %d != %d", size, i, a, b)
				}
			}
		}
	}
}

// TestBufferedRefillBoundaryProperty is the randomized refill-boundary
// check: arbitrary seeds, arbitrary small batch sizes, arbitrary draw
// counts — the buffered stream must always equal the unbuffered one.
func TestBufferedRefillBoundaryProperty(t *testing.T) {
	f := func(seed uint64, sizeRaw uint8, nRaw uint16) bool {
		size := int(sizeRaw%130) + 1 // 1..130: crosses 64-draw and odd layouts
		n := int(nRaw%2000) + 1
		ref := New(seed)
		buf := NewBuffered(seed, size)
		for i := 0; i < n; i++ {
			if buf.U53() != ref.U53() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBufferedSeedReset proves Seed discards buffered read-ahead: after a
// reseed the stream restarts from the seed, not from stale buffer contents.
func TestBufferedSeedReset(t *testing.T) {
	b := NewBuffered(7, 64)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = b.Uint64()
	}
	b.Seed(7)
	for i := range first {
		if got := b.Uint64(); got != first[i] {
			t.Fatalf("after reseed, draw %d = %#x, want %#x", i, got, first[i])
		}
	}
}

// TestBufferedDefaultBatch pins the default refill size selection.
func TestBufferedDefaultBatch(t *testing.T) {
	if got := NewBuffered(1, 0).BatchSize(); got != DefaultBatch {
		t.Fatalf("NewBuffered(.., 0) batch = %d, want DefaultBatch (%d)", got, DefaultBatch)
	}
	if got := NewBuffered(1, -3).BatchSize(); got != DefaultBatch {
		t.Fatalf("NewBuffered(.., -3) batch = %d, want DefaultBatch (%d)", got, DefaultBatch)
	}
}

// TestFillMatchesUint64 checks Source.Fill directly: one bulk refill must
// produce the same values and leave the same generator state as the
// equivalent sequence of Uint64 calls.
func TestFillMatchesUint64(t *testing.T) {
	a := New(0xABCD)
	b := New(0xABCD)
	got := make([]uint64, 257)
	a.Fill(got)
	for i := range got {
		if want := b.Uint64(); got[i] != want {
			t.Fatalf("Fill[%d] = %#x, want %#x", i, got[i], want)
		}
	}
	// State converged: the next draws agree too.
	for i := 0; i < 16; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("post-Fill draw %d: %#x != %#x", i, x, y)
		}
	}
}
