// Package issueq implements the compacting issue queue, the subject of the
// paper's first technique (§2.1). The queue is modelled at the same level
// of detail as the paper's circuit description (Farrell & Fisher's
// compaction logic): per-entry valid bits, invalid-count-driven compaction
// of up to issue-width holes per cycle, per-entry clock gating, and the
// Table 3 energy events for every data-wire drive, mux-select drive,
// counter stage, tag broadcast, payload-RAM access and select access.
//
// The queue is a circular structure over fixed physical entries. A
// configuration ("mode") places the head either at the physical bottom
// (conventional) or at the middle of the queue with wrap-around compaction
// (the paper's activity-toggled configuration, Figure 3). Logical position
// L maps to physical position (origin+L) mod N; compaction always moves
// instructions toward lower logical positions. In the mid-queue mode a
// move that wraps from physical 0 to physical N-1 drives its contents
// across the length of the queue and is charged the Table 3 "Long
// Compaction" energy — the power-density disadvantage the paper
// deliberately retains.
//
// Entry states are mirrored into per-state bitmasks (one bit per physical
// slot), so the per-cycle scans — drain countdown, occupancy, wakeup and
// select request vectors, hole detection — are popcounts and
// trailing-zero iterations over sparse masks instead of walks over all
// entries.
//
// Energy is counted per physical *half* on the stats bus, because the two
// halves are separate floorplan blocks (IntQ0/IntQ1) and their
// differential heating is the effect activity toggling exploits. Each
// Table 3 event maps to a bus slot whose per-event constant carries the
// historical split (for example, a dispatch drives the payload RAM and
// the dispatch bus: PayloadRAM/2 + LongCompaction/4 to each half, plus
// LongCompaction/2 to the written half); the only event that is not an
// integer multiple of a constant — the occupancy-weighted CAM match share
// of a tag broadcast — uses the bus's raw-energy side channel.
package issueq

import (
	"fmt"
	"math/bits"

	"repro/internal/power"
	"repro/internal/stats"
)

// EntryState is the lifecycle of one queue entry.
type EntryState uint8

// Entry states.
const (
	Empty    EntryState = iota // no instruction (a hole, compactable)
	Waiting                    // occupied, operands not all ready
	Ready                      // occupied, requesting issue
	Draining                   // issued, held for possible replay; not yet a hole
)

// The queue stores no per-entry structs: an entry is a bit in the state
// masks plus its instruction ID in ids[]. Compaction therefore never
// copies payloads — it remaps the ID array and shifts mask bits, while the
// *modeled* data-wire, mux-select and counter events are still charged
// exactly as if every payload had physically moved (see compact).

// Queue is one compacting issue queue (the machine has two: integer and
// floating-point).
type Queue struct {
	n           int // entries
	half        int // n/2
	width       int // max holes compacted per cycle (= issue width)
	drainCycles int8

	origin int // physical position of logical slot 0 (0 or n/2)
	tail   int // logical slots in use (occupied + trapped holes)

	// nonCompacting switches the queue to the related-work alternative
	// the paper cites (Buyuktosunoglu et al.): entries stay where they
	// were dispatched, freed slots are reused directly, and no compaction
	// wires ever switch. Priority falls back to physical position. Used
	// as an ablation of the paper's premise that compaction is both the
	// dominant energy consumer and the source of the utilization
	// asymmetry.
	nonCompacting bool

	ids      []int32 // instruction ID per PHYSICAL position (valid where occMask set)
	idToPhys []int32 // id -> physical position, -1 if absent

	// Per-state occupancy bitmasks over physical slots; occMask is the
	// union of waitMask, readyMask and the drain-age masks. Maintained
	// incrementally by every state transition.
	occMask   uint64
	waitMask  uint64
	readyMask uint64

	// Draining entries are tracked by residency age instead of per-entry
	// counters: ages[a] holds the entries that become holes after a+1 more
	// Ticks, so the per-cycle countdown is a one-slot shift of the mask
	// array rather than a walk over draining entries. agesL/agesN are
	// compaction scratch (logical-coordinate and post-shift accumulators).
	ages  []uint64
	agesL []uint64
	agesN []uint64

	allMask uint64 // n low bits
	loMask  uint64 // bottom physical half
	hiMask  uint64 // top physical half

	// Event-count slots on the stats bus, one per Table 3 event kind per
	// physical half. New binds a queue-private bus; the pipeline rebinds
	// to the power meter's bus with the real floorplan block indices.
	bus             *stats.Bus
	ownBus          bool
	sDispatchBase   [2]stats.SlotID // per dispatch, both halves: PayloadRAM/2 + LongCompaction/4
	sDispatchTarget [2]stats.SlotID // per dispatch, written half: LongCompaction/2
	sIssue          [2]stats.SlotID // per issue, both halves: (Select + PayloadRAM)/2
	sTick           [2]stats.SlotID // per cycle, both halves: ClockGating/2
	sBcastWire      [2]stats.SlotID // per broadcast tag, both halves: TagBroadcastMatch/4
	sBcastMatch     [2]stats.SlotID // raw joules: occupancy-weighted CAM match share
	sCounter        [2]stats.SlotID // per ungated entry in a compacting cycle: CounterStage1+2
	sMoveShort      [2]stats.SlotID // per move, source half: CompactEntryToEntry
	sMoveWrap       [2]stats.SlotID // per wrap move, source half: LongCompaction
	sMuxSel         [2]stats.SlotID // per move, destination half: CompactMuxSelect
	energySlots     [2][]stats.SlotID

	// Statistics.
	Dispatches   uint64
	Issues       uint64
	Compactions  uint64 // cycles in which at least one hole was squeezed
	Moves        uint64 // total entry movements
	WrapMoves    uint64 // movements charged as long compaction
	Toggles      uint64
	HalfMoves    [2]uint64 // entry movements charged to each half
	HalfOccupied [2]uint64 // occupied-entry-cycles per half (utilization)
}

// New builds a queue with n entries (even, at most 64), compaction width w
// per cycle, and the given post-issue drain residency in cycles. idSpace
// bounds the instruction IDs that will be dispatched (IDs are
// reorder-buffer slots, so this is the active-list size). The queue counts
// events on a private two-block stats bus until BindStats points it at a
// shared one.
func New(n, w, drainCycles, idSpace int) *Queue {
	if n <= 0 || n%2 != 0 {
		panic(fmt.Sprintf("issueq: %d entries (must be positive and even)", n))
	}
	if n > 64 {
		panic(fmt.Sprintf("issueq: %d entries exceeds the 64-bit occupancy masks", n))
	}
	if w <= 0 || drainCycles < 0 || idSpace <= 0 {
		panic("issueq: bad width/drain/idSpace")
	}
	k := drainCycles
	if k < 1 {
		k = 1 // zero-residency entries still occupy their slot until the next Tick
	}
	q := &Queue{
		n:           n,
		half:        n / 2,
		width:       w,
		drainCycles: int8(drainCycles),
		ids:         make([]int32, n),
		idToPhys:    make([]int32, idSpace),
		ages:        make([]uint64, k),
		agesL:       make([]uint64, k),
		agesN:       make([]uint64, k),
	}
	for i := range q.idToPhys {
		q.idToPhys[i] = -1
	}
	q.allMask = ^uint64(0) >> (64 - uint(n))
	q.loMask = ^uint64(0) >> (64 - uint(q.half))
	q.hiMask = q.allMask &^ q.loMask
	q.bindSlots(stats.NewBus(2), "iq", 0, 1)
	q.ownBus = true
	return q
}

// BindStats re-registers the queue's event slots on the given bus, with
// the physical halves attributed to floorplan blocks block0 and block1.
// name prefixes the slot names (the machine has two queues on one bus).
// Events counted before rebinding stay on the previous bus.
func (q *Queue) BindStats(bus *stats.Bus, name string, block0, block1 int) {
	q.bindSlots(bus, name, block0, block1)
	q.ownBus = false
}

func (q *Queue) bindSlots(bus *stats.Bus, name string, block0, block1 int) {
	q.bus = bus
	blocks := [2]int{block0, block1}
	for h := 0; h < 2; h++ {
		b := blocks[h]
		q.sDispatchBase[h] = bus.Register(name+"_dispatch", b, power.PayloadRAMAccess/2+power.LongCompaction/4)
		q.sDispatchTarget[h] = bus.Register(name+"_dispatch_target", b, power.LongCompaction/2)
		q.sIssue[h] = bus.Register(name+"_issue", b, (power.SelectAccess+power.PayloadRAMAccess)/2)
		q.sTick[h] = bus.Register(name+"_clock_gating", b, power.ClockGatingLogic/2)
		q.sBcastWire[h] = bus.Register(name+"_bcast_wire", b, power.TagBroadcastMatch/4)
		q.sBcastMatch[h] = bus.Register(name+"_bcast_match", b, 0)
		q.sCounter[h] = bus.Register(name+"_counter", b, power.CounterStage1+power.CounterStage2)
		q.sMoveShort[h] = bus.Register(name+"_move", b, power.CompactEntryToEntry)
		q.sMoveWrap[h] = bus.Register(name+"_move_wrap", b, power.LongCompaction)
		q.sMuxSel[h] = bus.Register(name+"_mux_select", b, power.CompactMuxSelect)
		q.energySlots[h] = []stats.SlotID{
			q.sDispatchBase[h], q.sDispatchTarget[h], q.sIssue[h], q.sTick[h],
			q.sBcastWire[h], q.sBcastMatch[h], q.sCounter[h],
			q.sMoveShort[h], q.sMoveWrap[h], q.sMuxSel[h],
		}
	}
}

// Size returns the number of entries.
func (q *Queue) Size() int { return q.n }

// SetNonCompacting switches the queue to the non-compacting organization
// (see the field comment). Only valid on an empty queue; toggling is
// meaningless in this mode and must not be used.
func (q *Queue) SetNonCompacting(on bool) {
	if q.Occupancy() != 0 {
		panic("issueq: SetNonCompacting on a non-empty queue")
	}
	q.nonCompacting = on
}

// NonCompacting reports whether the queue uses the non-compacting
// organization.
func (q *Queue) NonCompacting() bool { return q.nonCompacting }

// Mode returns 0 for the conventional head-at-bottom configuration and 1
// for the mid-queue-head configuration.
func (q *Queue) Mode() int {
	if q.origin == 0 {
		return 0
	}
	return 1
}

// physOf maps a logical position to its physical entry index.
func (q *Queue) physOf(logical int) int {
	p := q.origin + logical
	if p >= q.n {
		p -= q.n
	}
	return p
}

// halfOf returns the physical half (0 = bottom, 1 = top) of a physical
// position.
func (q *Queue) halfOf(phys int) int {
	if phys < q.half {
		return 0
	}
	return 1
}

// logicalOcc returns the occupancy mask indexed by logical position:
// bit L set iff the entry at physical (origin+L) mod n is occupied.
func (q *Queue) logicalOcc() uint64 {
	return q.toLogical(q.occMask)
}

// toLogical rotates a physical-position mask into logical coordinates
// (bit L of the result is bit (origin+L) mod n of m).
func (q *Queue) toLogical(m uint64) uint64 {
	if q.origin == 0 {
		return m
	}
	r := uint(q.origin)
	return ((m >> r) | (m << (uint(q.n) - r))) & q.allMask
}

// toPhysical is the inverse rotation of toLogical.
func (q *Queue) toPhysical(m uint64) uint64 {
	if q.origin == 0 {
		return m
	}
	r := uint(q.origin)
	return ((m << r) | (m >> (uint(q.n) - r))) & q.allMask
}

// maskRange returns the bits in logical positions [a, b).
func maskRange(a, b int) uint64 {
	if a >= b {
		return 0
	}
	m := ^uint64(0)
	if b < 64 {
		m = uint64(1)<<uint(b) - 1
	}
	return m &^ (uint64(1)<<uint(a) - 1)
}

// Full reports whether dispatch would fail. The compacting queue can be
// "full" while holding holes that have not yet compacted below the tail —
// exactly the transient the real hardware exhibits; the non-compacting
// queue is full only when every slot is occupied.
func (q *Queue) Full() bool {
	if q.nonCompacting {
		return q.occMask == q.allMask
	}
	return q.tail >= q.n
}

// freeSlot returns the lowest free physical slot, or -1.
func (q *Queue) freeSlot() int {
	free := ^q.occMask & q.allMask
	if free == 0 {
		return -1
	}
	return bits.TrailingZeros64(free)
}

// Occupancy returns the number of occupied (Waiting/Ready/Draining)
// entries.
func (q *Queue) Occupancy() int {
	return bits.OnesCount64(q.occMask)
}

// Dispatch inserts instruction id at the tail. It returns false if the
// queue is full. The payload RAM write is charged, split across the halves
// (the payload RAM is physically distributed over both).
func (q *Queue) Dispatch(id int32) bool {
	if id < 0 || int(id) >= len(q.idToPhys) {
		panic(fmt.Sprintf("issueq: dispatch id %d out of range", id))
	}
	if q.idToPhys[id] != -1 {
		panic(fmt.Sprintf("issueq: id %d already in queue", id))
	}
	var p int
	if q.nonCompacting {
		p = q.freeSlot()
		if p < 0 {
			return false
		}
	} else {
		if q.tail >= q.n {
			return false
		}
		p = q.physOf(q.tail)
		q.tail++
	}
	q.ids[p] = id
	bit := uint64(1) << uint(p)
	q.occMask |= bit
	q.waitMask |= bit
	q.idToPhys[id] = int32(p)
	q.Dispatches++
	// The payload RAM is physically distributed over both halves. The
	// dispatch bus drives the instruction's fields across the queue to
	// the tail entry (the paper's §2.1.1 notes dispatch must reach the
	// middle of the queue in the toggled mode): half the drive goes to
	// the written entry's half and the rest to the wire run.
	q.bus.Inc(q.sDispatchBase[0])
	q.bus.Inc(q.sDispatchBase[1])
	q.bus.Inc(q.sDispatchTarget[q.halfOf(p)])
	return true
}

// Contains reports whether instruction id currently occupies an entry.
func (q *Queue) Contains(id int32) bool { return q.idToPhys[id] != -1 }

// MarkReady transitions instruction id to the Ready state (all operands
// available). It is idempotent; marking a draining entry is an error.
func (q *Queue) MarkReady(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		panic(fmt.Sprintf("issueq: MarkReady(%d) not in queue", id))
	}
	bit := uint64(1) << uint(p)
	if (q.waitMask|q.readyMask)&bit == 0 {
		panic(fmt.Sprintf("issueq: MarkReady(%d) after issue", id))
	}
	q.waitMask &^= bit
	q.readyMask |= bit
}

// Issue transitions instruction id from Ready to Draining and charges the
// select and payload-RAM-read energies. The entry remains occupied for the
// drain residency (covering load-miss replay windows) before becoming a
// compactable hole.
func (q *Queue) Issue(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		panic(fmt.Sprintf("issueq: Issue(%d) not in queue", id))
	}
	bit := uint64(1) << uint(p)
	if q.readyMask&bit == 0 {
		panic(fmt.Sprintf("issueq: Issue(%d) in state %d", id, q.StateOf(id)))
	}
	q.readyMask &^= bit
	q.ages[len(q.ages)-1] |= bit
	q.Issues++
	q.bus.Inc(q.sIssue[0])
	q.bus.Inc(q.sIssue[1])
}

// Remove deletes instruction id from the queue immediately (pipeline
// flush). No compaction energy is charged; flushed entries simply become
// holes.
func (q *Queue) Remove(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		return
	}
	bit := uint64(1) << uint(p)
	q.occMask &^= bit
	q.waitMask &^= bit
	q.readyMask &^= bit
	for a := range q.ages {
		q.ages[a] &^= bit
	}
	q.idToPhys[id] = -1
	// Reclaim tail slots freed at the top so dispatch can proceed
	// immediately after a flush (real hardware resets the tail pointer).
	for q.tail > 0 && q.occMask&(1<<uint(q.physOf(q.tail-1))) == 0 {
		q.tail--
	}
}

// Broadcast charges the tag broadcast/match energy for count destination
// tags driven across the queue this cycle. The broadcast wires span both
// halves (half the energy, split evenly); the CAM match energy toggles in
// the occupied entries, so it follows the occupancy of each half.
func (q *Queue) Broadcast(count int) {
	if count <= 0 {
		return
	}
	q.bus.IncN(q.sBcastWire[0], uint64(count))
	q.bus.IncN(q.sBcastWire[1], uint64(count))
	e := float64(count) * power.TagBroadcastMatch
	occ0 := bits.OnesCount64(q.occMask & q.loMask)
	occ1 := bits.OnesCount64(q.occMask & q.hiMask)
	if tot := occ0 + occ1; tot > 0 {
		q.bus.AddEnergy(q.sBcastMatch[0], e/2*float64(occ0)/float64(tot))
		q.bus.AddEnergy(q.sBcastMatch[1], e/2*float64(occ1)/float64(tot))
	} else {
		q.bus.AddEnergy(q.sBcastMatch[0], e/4)
		q.bus.AddEnergy(q.sBcastMatch[1], e/4)
	}
}

// Requests fills req (length n, indexed by PHYSICAL position) with the
// instruction IDs of Ready entries, -1 elsewhere, for the select trees.
// Hot callers use ReadyMask and IDAt instead.
func (q *Queue) Requests(req []int32) {
	if len(req) != q.n {
		panic("issueq: Requests slice length mismatch")
	}
	for i := range req {
		req[i] = -1
	}
	for m := q.readyMask; m != 0; m &= m - 1 {
		p := bits.TrailingZeros64(m)
		req[p] = q.ids[p]
	}
}

// ReadyMask returns the bit vector of physical positions requesting issue
// — the select trees' native input.
func (q *Queue) ReadyMask() uint64 { return q.readyMask }

// WaitMask returns the bit vector of physical positions still waiting for
// operands — the wakeup scan's native input.
func (q *Queue) WaitMask() uint64 { return q.waitMask }

// IDAt returns the instruction ID occupying physical position p. Only
// meaningful for positions set in an occupancy mask.
func (q *Queue) IDAt(p int) int32 { return q.ids[p] }

// Tick advances one cycle: ages the draining entries (turning expired ones
// into holes), performs one compaction pass squeezing up to the compaction
// width of holes, charges all Table 3 energies, and accumulates per-half
// utilization statistics.
func (q *Queue) Tick() {
	// Clock-gating control logic runs every cycle for the whole queue.
	q.bus.Inc(q.sTick[0])
	q.bus.Inc(q.sTick[1])

	// Drain countdown: the age-0 entries expire, everything else moves one
	// age slot closer.
	if expired := q.ages[0]; expired != 0 {
		for m := expired; m != 0; m &= m - 1 {
			q.idToPhys[q.ids[bits.TrailingZeros64(m)]] = -1
		}
		q.occMask &^= expired
	}
	if len(q.ages) == 2 { // common case (two drain cycles): no shift loop
		q.ages[0] = q.ages[1]
		q.ages[1] = 0
	} else {
		for a := 1; a < len(q.ages); a++ {
			q.ages[a-1] = q.ages[a]
		}
		q.ages[len(q.ages)-1] = 0
	}
	q.HalfOccupied[0] += uint64(bits.OnesCount64(q.occMask & q.loMask))
	q.HalfOccupied[1] += uint64(bits.OnesCount64(q.occMask & q.hiMask))

	if !q.nonCompacting {
		q.compact()
	}
}

// compact performs the per-cycle compaction pass. Holes below the tail are
// squeezed out, lowest-logical first, up to the compaction width. Entries
// above a squeezed hole move down by the number of squeezed holes below
// them; each move drives the entry-to-entry data wires (charged to the
// half of the SOURCE entry) and the cross-queue mux-select wires (charged
// to the half of the DESTINATION entry). Valid entries above the lowest
// hole additionally clock their invalid-count stages. A move whose
// physical trajectory wraps across the end of the queue is charged the
// long-compaction energy instead of the entry-to-entry energy.
//
// The compaction is *virtual*: instead of visiting every logical slot
// above the lowest hole and copying entry structs one position at a time,
// the pass partitions the occupied entries into segments by how far they
// shift (everything between the i-th and (i+1)-th squeezed hole shifts
// down i slots), then charges each Table 3 event with a popcount over the
// segment's mask and remaps only the ID array — O(holes + moved IDs)
// bitwise work. The counted events are identical to the entry-walk this
// replaces: every occupied entry above the lowest hole clocks its
// invalid-count stages and moves (removed ≥ 1 there), short/wrap moves
// are classified by whether the physical trajectory crosses slot 0
// (logical source in [n-origin, n-origin+shift)), and mux selects follow
// the destination half.
func (q *Queue) compact() {
	if q.tail == 0 {
		return
	}
	var tailMask uint64
	if q.tail >= 64 {
		tailMask = ^uint64(0)
	} else {
		tailMask = 1<<uint(q.tail) - 1
	}
	occL := q.logicalOcc()
	holes := ^occL & tailMask
	if holes == 0 {
		return // no holes below the tail: nothing compacts, nothing clocks
	}
	removed := bits.OnesCount64(holes)
	if removed > q.width {
		// Holes beyond the compaction width shift down implicitly (their
		// slots are Empty on both ends) and drive no wires.
		removed = q.width
	}

	// Entries above the lowest squeezed hole are not clock-gated: their
	// invalid-count stages toggle this cycle.
	h1 := bits.TrailingZeros64(holes)
	aboveP := q.toPhysical(occL &^ (uint64(1)<<uint(h1+1) - 1))
	q.bus.IncN(q.sCounter[0], uint64(bits.OnesCount64(aboveP&q.loMask)))
	q.bus.IncN(q.sCounter[1], uint64(bits.OnesCount64(aboveP&q.hiMask)))

	// Collapsing the squeezed holes out of a state mask is the same
	// per-segment shift the moves perform: bits below the lowest hole stay,
	// bits in segment i land i slots lower. Each mask is rotated to logical
	// coordinates once, accumulated segment by segment, and rotated back.
	waitL := q.toLogical(q.waitMask)
	readyL := q.toLogical(q.readyMask)
	keep := uint64(1)<<uint(h1) - 1
	waitNew := waitL & keep
	readyNew := readyL & keep
	// The two-age configuration (default drain of 2 cycles) is hot enough
	// to keep in registers; other depths fall back to the slice loops.
	k2 := len(q.ages) == 2
	var age0L, age1L, age0N, age1N uint64
	if k2 {
		age0L = q.toLogical(q.ages[0])
		age1L = q.toLogical(q.ages[1])
		age0N = age0L & keep
		age1N = age1L & keep
	} else {
		for a := range q.ages {
			q.agesL[a] = q.toLogical(q.ages[a])
			q.agesN[a] = q.agesL[a] & keep
		}
	}

	// wrapLo is the logical position whose downward move crosses physical
	// slot 0 (only reachable when the origin is mid-queue).
	wrapLo := q.n - q.origin
	hm := holes
	for i := 1; i <= removed; i++ {
		lo := bits.TrailingZeros64(hm)
		hm &= hm - 1
		hi := q.tail
		if i < removed {
			hi = bits.TrailingZeros64(hm)
		}
		// Occupied entries in logical (lo, hi) shift down by i.
		segRange := maskRange(lo+1, hi)
		seg := occL & segRange
		if seg == 0 {
			continue
		}
		sh := uint(i)
		waitNew |= (waitL & segRange) >> sh
		readyNew |= (readyL & segRange) >> sh
		if k2 {
			age0N |= (age0L & segRange) >> sh
			age1N |= (age1L & segRange) >> sh
		} else {
			for a := range q.agesN {
				q.agesN[a] |= (q.agesL[a] & segRange) >> sh
			}
		}
		var wrapL uint64
		if q.origin != 0 {
			wrapL = seg & maskRange(wrapLo, wrapLo+i)
		}
		shortP := q.toPhysical(seg &^ wrapL)
		s0 := bits.OnesCount64(shortP & q.loMask)
		s1 := bits.OnesCount64(shortP & q.hiMask)
		q.bus.IncN(q.sMoveShort[0], uint64(s0))
		q.bus.IncN(q.sMoveShort[1], uint64(s1))
		q.Moves += uint64(s0 + s1)
		q.HalfMoves[0] += uint64(s0)
		q.HalfMoves[1] += uint64(s1)
		if wrapL != 0 {
			wrapP := q.toPhysical(wrapL)
			w0 := bits.OnesCount64(wrapP & q.loMask)
			w1 := bits.OnesCount64(wrapP & q.hiMask)
			q.bus.IncN(q.sMoveWrap[0], uint64(w0))
			q.bus.IncN(q.sMoveWrap[1], uint64(w1))
			q.Moves += uint64(w0 + w1)
			q.WrapMoves += uint64(w0 + w1)
			q.HalfMoves[0] += uint64(w0)
			q.HalfMoves[1] += uint64(w1)
		}
		dstP := q.toPhysical(seg >> sh)
		q.bus.IncN(q.sMuxSel[0], uint64(bits.OnesCount64(dstP&q.loMask)))
		q.bus.IncN(q.sMuxSel[1], uint64(bits.OnesCount64(dstP&q.hiMask)))

		// Remap the IDs, lowest logical position first so every
		// destination slot was already read (or is a hole).
		if q.origin == 0 {
			if seg == segRange {
				// Fully occupied range (always true between consecutive
				// squeezed holes, and true for the last segment unless
				// holes beyond the compaction width remain): one fused
				// pass moves the ID block and rewrites the map — the
				// source slot is read once, ahead of the overwrite.
				src := q.ids[lo+1 : hi]
				dst := q.ids[lo+1-i : hi-i : hi-i]
				i2p := q.idToPhys
				for j, id := range src {
					dst[j] = id
					i2p[id] = int32(lo + 1 - i + j)
				}
			} else {
				for m := seg; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					id := q.ids[l]
					q.ids[l-i] = id
					q.idToPhys[id] = int32(l - i)
				}
			}
		} else {
			for m := seg; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				d := q.physOf(l - i)
				id := q.ids[q.physOf(l)]
				q.ids[d] = id
				q.idToPhys[id] = int32(d)
			}
		}
	}

	q.waitMask = q.toPhysical(waitNew)
	q.readyMask = q.toPhysical(readyNew)
	occNew := waitNew | readyNew
	if k2 {
		q.ages[0] = q.toPhysical(age0N)
		q.ages[1] = q.toPhysical(age1N)
		occNew |= age0N | age1N
	} else {
		for a := range q.agesN {
			q.ages[a] = q.toPhysical(q.agesN[a])
			occNew |= q.agesN[a]
		}
	}
	q.occMask = q.toPhysical(occNew)
	q.Compactions++
	q.tail -= removed
}

// Toggle flips the head/tail configuration between the conventional and
// mid-queue modes. Entries stay in their physical positions; their logical
// priorities are relabelled by the new origin, transiently inverting age
// order exactly as the paper describes (§2.1.1). The tail is recomputed as
// one past the highest occupied logical slot.
func (q *Queue) Toggle() {
	if q.nonCompacting {
		panic("issueq: Toggle on a non-compacting queue")
	}
	if q.origin == 0 {
		q.origin = q.half
	} else {
		q.origin = 0
	}
	q.Toggles++
	q.tail = bits.Len64(q.logicalOcc())
}

// EnergyTotals returns the lifetime energy of each physical half in
// joules, summed over the half's bus slots (drained and pending events
// alike, unscaled). It does not reset; the thermal manager differences
// successive readings to find the actively heated half.
func (q *Queue) EnergyTotals() (half0, half1 float64) {
	var t [2]float64
	for h := 0; h < 2; h++ {
		for _, s := range q.energySlots[h] {
			t[h] += q.bus.LifetimeEnergy(s)
		}
	}
	return t[0], t[1]
}

// Waiting appends the IDs of entries still waiting for operands to dst and
// returns it. Hot callers iterate WaitMask directly.
func (q *Queue) Waiting(dst []int32) []int32 {
	for m := q.waitMask; m != 0; m &= m - 1 {
		dst = append(dst, q.ids[bits.TrailingZeros64(m)])
	}
	return dst
}

// StateOf returns the state of instruction id, or Empty if absent (for
// tests and debug dumps).
func (q *Queue) StateOf(id int32) EntryState {
	p := q.idToPhys[id]
	if p < 0 {
		return Empty
	}
	switch bit := uint64(1) << uint(p); {
	case q.waitMask&bit != 0:
		return Waiting
	case q.readyMask&bit != 0:
		return Ready
	default:
		return Draining
	}
}

// LogicalOrder appends the IDs of occupied entries in logical (priority)
// order to dst and returns it; used by tests to verify compaction
// preserves order.
func (q *Queue) LogicalOrder(dst []int32) []int32 {
	for l := 0; l < q.n; l++ {
		if p := q.physOf(l); q.occMask&(uint64(1)<<uint(p)) != 0 {
			dst = append(dst, q.ids[p])
		}
	}
	return dst
}

// PhysicalHalfOf returns which physical half instruction id resides in
// (0 or 1), or -1 if absent.
func (q *Queue) PhysicalHalfOf(id int32) int {
	p := q.idToPhys[id]
	if p < 0 {
		return -1
	}
	return q.halfOf(int(p))
}

// Reset empties the queue, returning to mode 0, and clears statistics.
// When the queue still owns its private stats bus the bus counters are
// cleared too; a shared bus (bound via BindStats) is left untouched.
func (q *Queue) Reset() {
	for i := range q.ids {
		q.ids[i] = 0
	}
	for i := range q.idToPhys {
		q.idToPhys[i] = -1
	}
	for a := range q.ages {
		q.ages[a] = 0
	}
	q.origin, q.tail = 0, 0
	q.occMask, q.waitMask, q.readyMask = 0, 0, 0
	if q.ownBus {
		q.bus.Reset()
	}
	q.Dispatches, q.Issues, q.Compactions, q.Moves, q.WrapMoves, q.Toggles = 0, 0, 0, 0, 0, 0
	q.HalfMoves = [2]uint64{}
	q.HalfOccupied = [2]uint64{}
}
