// Package issueq implements the compacting issue queue, the subject of the
// paper's first technique (§2.1). The queue is modelled at the same level
// of detail as the paper's circuit description (Farrell & Fisher's
// compaction logic): per-entry valid bits, invalid-count-driven compaction
// of up to issue-width holes per cycle, per-entry clock gating, and the
// Table 3 energy events for every data-wire drive, mux-select drive,
// counter stage, tag broadcast, payload-RAM access and select access.
//
// The queue is a circular structure over fixed physical entries. A
// configuration ("mode") places the head either at the physical bottom
// (conventional) or at the middle of the queue with wrap-around compaction
// (the paper's activity-toggled configuration, Figure 3). Logical position
// L maps to physical position (origin+L) mod N; compaction always moves
// instructions toward lower logical positions. In the mid-queue mode a
// move that wraps from physical 0 to physical N-1 drives its contents
// across the length of the queue and is charged the Table 3 "Long
// Compaction" energy — the power-density disadvantage the paper
// deliberately retains.
//
// Energy is accumulated per physical *half*, because the two halves are
// separate floorplan blocks (IntQ0/IntQ1) and their differential heating
// is the effect activity toggling exploits.
package issueq

import (
	"fmt"

	"repro/internal/power"
)

// EntryState is the lifecycle of one queue entry.
type EntryState uint8

// Entry states.
const (
	Empty    EntryState = iota // no instruction (a hole, compactable)
	Waiting                    // occupied, operands not all ready
	Ready                      // occupied, requesting issue
	Draining                   // issued, held for possible replay; not yet a hole
)

type entry struct {
	id    int32
	state EntryState
	drain int8
}

// Queue is one compacting issue queue (the machine has two: integer and
// floating-point).
type Queue struct {
	n           int // entries
	half        int // n/2
	width       int // max holes compacted per cycle (= issue width)
	drainCycles int8

	origin int // physical position of logical slot 0 (0 or n/2)
	tail   int // logical slots in use (occupied + trapped holes)

	// nonCompacting switches the queue to the related-work alternative
	// the paper cites (Buyuktosunoglu et al.): entries stay where they
	// were dispatched, freed slots are reused directly, and no compaction
	// wires ever switch. Priority falls back to physical position. Used
	// as an ablation of the paper's premise that compaction is both the
	// dominant energy consumer and the source of the utilization
	// asymmetry.
	nonCompacting bool

	slots    []entry // indexed by PHYSICAL position
	idToPhys []int32 // id -> physical position, -1 if absent

	// halfEnergy accumulates joules per physical half since the last
	// DrainEnergy call; halfEnergyTotal accumulates for the queue's
	// lifetime (the thermal manager uses deltas to find the half that is
	// currently being heated).
	halfEnergy      [2]float64
	halfEnergyTotal [2]float64

	// Statistics.
	Dispatches   uint64
	Issues       uint64
	Compactions  uint64 // cycles in which at least one hole was squeezed
	Moves        uint64 // total entry movements
	WrapMoves    uint64 // movements charged as long compaction
	Toggles      uint64
	HalfMoves    [2]uint64 // entry movements charged to each half
	HalfOccupied [2]uint64 // occupied-entry-cycles per half (utilization)
}

// New builds a queue with n entries (even), compaction width w per cycle,
// and the given post-issue drain residency in cycles. idSpace bounds the
// instruction IDs that will be dispatched (IDs are reorder-buffer slots,
// so this is the active-list size).
func New(n, w, drainCycles, idSpace int) *Queue {
	if n <= 0 || n%2 != 0 {
		panic(fmt.Sprintf("issueq: %d entries (must be positive and even)", n))
	}
	if w <= 0 || drainCycles < 0 || idSpace <= 0 {
		panic("issueq: bad width/drain/idSpace")
	}
	q := &Queue{
		n:           n,
		half:        n / 2,
		width:       w,
		drainCycles: int8(drainCycles),
		slots:       make([]entry, n),
		idToPhys:    make([]int32, idSpace),
	}
	for i := range q.idToPhys {
		q.idToPhys[i] = -1
	}
	return q
}

// Size returns the number of entries.
func (q *Queue) Size() int { return q.n }

// SetNonCompacting switches the queue to the non-compacting organization
// (see the field comment). Only valid on an empty queue; toggling is
// meaningless in this mode and must not be used.
func (q *Queue) SetNonCompacting(on bool) {
	if q.Occupancy() != 0 {
		panic("issueq: SetNonCompacting on a non-empty queue")
	}
	q.nonCompacting = on
}

// NonCompacting reports whether the queue uses the non-compacting
// organization.
func (q *Queue) NonCompacting() bool { return q.nonCompacting }

// Mode returns 0 for the conventional head-at-bottom configuration and 1
// for the mid-queue-head configuration.
func (q *Queue) Mode() int {
	if q.origin == 0 {
		return 0
	}
	return 1
}

// physOf maps a logical position to its physical entry index.
func (q *Queue) physOf(logical int) int {
	p := q.origin + logical
	if p >= q.n {
		p -= q.n
	}
	return p
}

// halfOf returns the physical half (0 = bottom, 1 = top) of a physical
// position.
func (q *Queue) halfOf(phys int) int {
	if phys < q.half {
		return 0
	}
	return 1
}

// Full reports whether dispatch would fail. The compacting queue can be
// "full" while holding holes that have not yet compacted below the tail —
// exactly the transient the real hardware exhibits; the non-compacting
// queue is full only when every slot is occupied.
func (q *Queue) Full() bool {
	if q.nonCompacting {
		return q.freeSlot() < 0
	}
	return q.tail >= q.n
}

// freeSlot returns the lowest free physical slot, or -1.
func (q *Queue) freeSlot() int {
	for i := range q.slots {
		if q.slots[i].state == Empty {
			return i
		}
	}
	return -1
}

// Occupancy returns the number of occupied (Waiting/Ready/Draining)
// entries.
func (q *Queue) Occupancy() int {
	c := 0
	for i := range q.slots {
		if q.slots[i].state != Empty {
			c++
		}
	}
	return c
}

// Dispatch inserts instruction id at the tail. It returns false if the
// queue is full. The payload RAM write is charged, split across the halves
// (the payload RAM is physically distributed over both).
func (q *Queue) Dispatch(id int32) bool {
	if id < 0 || int(id) >= len(q.idToPhys) {
		panic(fmt.Sprintf("issueq: dispatch id %d out of range", id))
	}
	if q.idToPhys[id] != -1 {
		panic(fmt.Sprintf("issueq: id %d already in queue", id))
	}
	var p int
	if q.nonCompacting {
		p = q.freeSlot()
		if p < 0 {
			return false
		}
	} else {
		if q.tail >= q.n {
			return false
		}
		p = q.physOf(q.tail)
		q.tail++
	}
	q.slots[p] = entry{id: id, state: Waiting}
	q.idToPhys[id] = int32(p)
	q.Dispatches++
	// The payload RAM is physically distributed over both halves. The
	// dispatch bus drives the instruction's fields across the queue to
	// the tail entry (the paper's §2.1.1 notes dispatch must reach the
	// middle of the queue in the toggled mode): charge half the drive to
	// the written entry's half and the rest to the wire run.
	q.chargeBoth(power.PayloadRAMAccess)
	q.charge(q.halfOf(p), power.LongCompaction/2)
	q.chargeBoth(power.LongCompaction / 2)
	return true
}

// Contains reports whether instruction id currently occupies an entry.
func (q *Queue) Contains(id int32) bool { return q.idToPhys[id] != -1 }

// MarkReady transitions instruction id to the Ready state (all operands
// available). It is idempotent; marking a draining entry is an error.
func (q *Queue) MarkReady(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		panic(fmt.Sprintf("issueq: MarkReady(%d) not in queue", id))
	}
	e := &q.slots[p]
	if e.state == Draining {
		panic(fmt.Sprintf("issueq: MarkReady(%d) after issue", id))
	}
	e.state = Ready
}

// Issue transitions instruction id from Ready to Draining and charges the
// select and payload-RAM-read energies. The entry remains occupied for the
// drain residency (covering load-miss replay windows) before becoming a
// compactable hole.
func (q *Queue) Issue(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		panic(fmt.Sprintf("issueq: Issue(%d) not in queue", id))
	}
	e := &q.slots[p]
	if e.state != Ready {
		panic(fmt.Sprintf("issueq: Issue(%d) in state %d", id, e.state))
	}
	e.state = Draining
	e.drain = q.drainCycles
	q.Issues++
	q.chargeBoth(power.SelectAccess + power.PayloadRAMAccess)
}

// Remove deletes instruction id from the queue immediately (pipeline
// flush). No compaction energy is charged; flushed entries simply become
// holes.
func (q *Queue) Remove(id int32) {
	p := q.idToPhys[id]
	if p < 0 {
		return
	}
	q.slots[p] = entry{}
	q.idToPhys[id] = -1
	// Reclaim tail slots freed at the top so dispatch can proceed
	// immediately after a flush (real hardware resets the tail pointer).
	for q.tail > 0 && q.slots[q.physOf(q.tail-1)].state == Empty {
		q.tail--
	}
}

// Broadcast charges the tag broadcast/match energy for count destination
// tags driven across the queue this cycle. The broadcast wires span both
// halves (half the energy, split evenly); the CAM match energy toggles in
// the occupied entries, so it follows the occupancy of each half.
func (q *Queue) Broadcast(count int) {
	if count <= 0 {
		return
	}
	e := float64(count) * power.TagBroadcastMatch
	q.chargeBoth(e / 2)
	occ0, occ1 := 0, 0
	for i := range q.slots {
		if q.slots[i].state != Empty {
			if q.halfOf(i) == 0 {
				occ0++
			} else {
				occ1++
			}
		}
	}
	if tot := occ0 + occ1; tot > 0 {
		q.charge(0, e/2*float64(occ0)/float64(tot))
		q.charge(1, e/2*float64(occ1)/float64(tot))
	} else {
		q.chargeBoth(e / 2)
	}
}

// Requests fills req (length n, indexed by PHYSICAL position) with the
// instruction IDs of Ready entries, -1 elsewhere, for the select trees.
func (q *Queue) Requests(req []int32) {
	if len(req) != q.n {
		panic("issueq: Requests slice length mismatch")
	}
	for i := range req {
		if q.slots[i].state == Ready {
			req[i] = q.slots[i].id
		} else {
			req[i] = -1
		}
	}
}

// Tick advances one cycle: decrements drain counters (turning expired
// Draining entries into holes), performs one compaction pass squeezing up
// to the compaction width of holes, charges all Table 3 energies, and
// accumulates per-half utilization statistics.
func (q *Queue) Tick() {
	// Clock-gating control logic runs every cycle for the whole queue.
	q.chargeBoth(power.ClockGatingLogic)

	// Drain countdown.
	for i := range q.slots {
		e := &q.slots[i]
		if e.state == Draining {
			if e.drain > 0 {
				e.drain--
			}
			if e.drain == 0 {
				q.idToPhys[e.id] = -1
				*e = entry{}
			}
		}
		if e.state != Empty {
			q.HalfOccupied[q.halfOf(i)]++
		}
	}

	if !q.nonCompacting {
		q.compact()
	}
}

// compact performs the per-cycle compaction pass. Holes below the tail are
// squeezed out, lowest-logical first, up to the compaction width. Entries
// above a squeezed hole move down by the number of squeezed holes below
// them; each move drives the entry-to-entry data wires (charged to the
// half of the SOURCE entry) and the cross-queue mux-select wires (charged
// to the half of the DESTINATION entry). Valid entries above the lowest
// hole additionally clock their invalid-count stages. A move whose
// physical trajectory wraps across the end of the queue is charged the
// long-compaction energy instead of the entry-to-entry energy.
func (q *Queue) compact() {
	removed := 0
	for readL := 0; readL < q.tail; readL++ {
		p := q.physOf(readL)
		e := q.slots[p]
		if e.state == Empty {
			if removed < q.width {
				// This hole is squeezed out this cycle.
				removed++
			}
			// Holes beyond the compaction width shift down implicitly
			// (their slots are Empty on both ends) and drive no wires.
			continue
		}
		if removed > 0 {
			// Entries above the lowest squeezed hole are not clock-gated:
			// their invalid-count stages toggle this cycle.
			q.charge(q.halfOf(p), power.CounterStage1+power.CounterStage2)
		}
		dstL := readL - removed
		if dstL != readL {
			dstP := q.physOf(dstL)
			// Move the entry.
			q.slots[dstP] = e
			q.slots[p] = entry{}
			q.idToPhys[e.id] = int32(dstP)
			q.Moves++
			srcHalf := q.halfOf(p)
			q.HalfMoves[srcHalf]++
			if dstP > p {
				// Physically upward move while logically downward: the
				// wrap-around long compaction of the toggled mode.
				q.WrapMoves++
				q.charge(srcHalf, power.LongCompaction)
			} else {
				q.charge(srcHalf, power.CompactEntryToEntry)
			}
			q.charge(q.halfOf(dstP), power.CompactMuxSelect)
		}
	}
	if removed > 0 {
		q.Compactions++
		q.tail -= removed
	}
}

// Toggle flips the head/tail configuration between the conventional and
// mid-queue modes. Entries stay in their physical positions; their logical
// priorities are relabelled by the new origin, transiently inverting age
// order exactly as the paper describes (§2.1.1). The tail is recomputed as
// one past the highest occupied logical slot.
func (q *Queue) Toggle() {
	if q.nonCompacting {
		panic("issueq: Toggle on a non-compacting queue")
	}
	if q.origin == 0 {
		q.origin = q.half
	} else {
		q.origin = 0
	}
	q.Toggles++
	q.tail = 0
	for l := q.n - 1; l >= 0; l-- {
		if q.slots[q.physOf(l)].state != Empty {
			q.tail = l + 1
			break
		}
	}
}

// DrainEnergy returns and clears the energy (joules) accumulated by
// physical half h since the last call.
func (q *Queue) DrainEnergy(h int) float64 {
	e := q.halfEnergy[h]
	q.halfEnergy[h] = 0
	return e
}

func (q *Queue) charge(half int, j float64) {
	q.halfEnergy[half] += j
	q.halfEnergyTotal[half] += j
}

func (q *Queue) chargeBoth(j float64) {
	q.charge(0, j/2)
	q.charge(1, j/2)
}

// EnergyTotals returns the lifetime energy of each physical half in
// joules. Unlike DrainEnergy it does not reset; the thermal manager
// differences successive readings to find the actively heated half.
func (q *Queue) EnergyTotals() (half0, half1 float64) {
	return q.halfEnergyTotal[0], q.halfEnergyTotal[1]
}

// Waiting appends the IDs of entries still waiting for operands to dst and
// returns it; the pipeline's wakeup scan iterates these instead of the
// whole active list.
func (q *Queue) Waiting(dst []int32) []int32 {
	for i := range q.slots {
		if q.slots[i].state == Waiting {
			dst = append(dst, q.slots[i].id)
		}
	}
	return dst
}

// StateOf returns the state of instruction id, or Empty if absent (for
// tests and debug dumps).
func (q *Queue) StateOf(id int32) EntryState {
	p := q.idToPhys[id]
	if p < 0 {
		return Empty
	}
	return q.slots[p].state
}

// LogicalOrder appends the IDs of occupied entries in logical (priority)
// order to dst and returns it; used by tests to verify compaction
// preserves order.
func (q *Queue) LogicalOrder(dst []int32) []int32 {
	for l := 0; l < q.n; l++ {
		if e := q.slots[q.physOf(l)]; e.state != Empty {
			dst = append(dst, e.id)
		}
	}
	return dst
}

// PhysicalHalfOf returns which physical half instruction id resides in
// (0 or 1), or -1 if absent.
func (q *Queue) PhysicalHalfOf(id int32) int {
	p := q.idToPhys[id]
	if p < 0 {
		return -1
	}
	return q.halfOf(int(p))
}

// Reset empties the queue, returning to mode 0, and clears statistics.
func (q *Queue) Reset() {
	for i := range q.slots {
		q.slots[i] = entry{}
	}
	for i := range q.idToPhys {
		q.idToPhys[i] = -1
	}
	q.origin, q.tail = 0, 0
	q.halfEnergy = [2]float64{}
	q.halfEnergyTotal = [2]float64{}
	q.Dispatches, q.Issues, q.Compactions, q.Moves, q.WrapMoves, q.Toggles = 0, 0, 0, 0, 0, 0
	q.HalfMoves = [2]uint64{}
	q.HalfOccupied = [2]uint64{}
}
