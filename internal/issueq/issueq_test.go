package issueq

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/power"
	"repro/internal/rng"
)

func newQ() *Queue { return New(32, 6, 2, 128) }

// drainHalves drains the queue's private stats bus and returns the joules
// attributed to each physical half since the previous drain.
func drainHalves(q *Queue) (float64, float64) {
	dst := make([]float64, 2)
	q.bus.Drain(dst, 1)
	return dst[0], dst[1]
}

// drainTicks runs enough ticks for issued entries to become holes and be
// compacted away.
func drainTicks(q *Queue, n int) {
	for i := 0; i < n; i++ {
		q.Tick()
	}
}

func TestDispatchIssueLifecycle(t *testing.T) {
	q := newQ()
	if !q.Dispatch(7) {
		t.Fatal("dispatch failed on empty queue")
	}
	if q.StateOf(7) != Waiting {
		t.Fatal("dispatched entry not Waiting")
	}
	q.MarkReady(7)
	if q.StateOf(7) != Ready {
		t.Fatal("entry not Ready")
	}
	q.Issue(7)
	if q.StateOf(7) != Draining {
		t.Fatal("entry not Draining after issue")
	}
	drainTicks(q, 3)
	if q.Contains(7) {
		t.Fatal("entry still present after drain + compaction")
	}
	if q.Occupancy() != 0 {
		t.Fatal("queue not empty")
	}
}

func TestFullQueueRejectsDispatch(t *testing.T) {
	q := newQ()
	for i := int32(0); i < 32; i++ {
		if !q.Dispatch(i) {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.Dispatch(99) {
		t.Fatal("dispatch succeeded on full queue")
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	q := newQ()
	for i := int32(0); i < 20; i++ {
		q.Dispatch(i)
	}
	// Issue a scattering of entries.
	for _, id := range []int32{0, 3, 4, 9, 15} {
		q.MarkReady(id)
		q.Issue(id)
	}
	drainTicks(q, 5)
	var got []int32
	got = q.LogicalOrder(got)
	want := []int32{1, 2, 5, 6, 7, 8, 10, 11, 12, 13, 14, 16, 17, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestCompactionWidthLimit(t *testing.T) {
	q := New(32, 2, 1, 128) // only 2 holes squeezed per cycle
	for i := int32(0); i < 10; i++ {
		q.Dispatch(i)
	}
	// Create 6 holes at the bottom.
	for i := int32(0); i < 6; i++ {
		q.MarkReady(i)
		q.Issue(i)
	}
	q.Tick() // drain countdown -> holes
	movesAfterOneCompaction := q.Moves
	// With width 2, squeezing 6 holes takes 3 compaction cycles.
	drainTicks(q, 2)
	if q.Moves <= movesAfterOneCompaction {
		t.Fatal("compaction finished too fast for width limit")
	}
	var got []int32
	got = q.LogicalOrder(got)
	if len(got) != 4 {
		t.Fatalf("%d entries left, want 4", len(got))
	}
	for i, id := range []int32{6, 7, 8, 9} {
		if got[i] != id {
			t.Fatalf("order %v", got)
		}
	}
}

func TestDrainResidencyDelaysCompaction(t *testing.T) {
	q := New(32, 6, 3, 128)
	q.Dispatch(0)
	q.Dispatch(1)
	q.MarkReady(0)
	q.Issue(0)
	// For drainCycles=3 the entry must survive at least 2 ticks.
	q.Tick()
	if !q.Contains(0) {
		t.Fatal("entry compacted during drain residency")
	}
	q.Tick()
	if !q.Contains(0) {
		t.Fatal("entry compacted during drain residency (tick 2)")
	}
	drainTicks(q, 2)
	if q.Contains(0) {
		t.Fatal("entry never drained")
	}
}

func TestTailRegionCompactsMoreThanHead(t *testing.T) {
	// The paper's core observation (§2.1): entries near the tail compact
	// when ANY instruction issues, entries near the head only when an
	// instruction below them issues. Out-of-order issue removes entries
	// from scattered queue positions, so tail-half entries move far more
	// often. Reproduce that pattern and check the asymmetry.
	q := newQ()
	r := rng.New(1)
	next := int32(0)
	inFlight := []int32{}
	for cycle := 0; cycle < 2000; cycle++ {
		// Keep the queue fairly full.
		for len(inFlight) < 28 {
			id := next % 128
			if q.Contains(id) {
				break
			}
			if !q.Dispatch(id) {
				break
			}
			inFlight = append(inFlight, id)
			next++
		}
		// Issue 1-2 instructions from random queue positions (dataflow
		// readiness is scattered in real code).
		issues := 1 + r.Intn(2)
		for k := 0; k < issues && len(inFlight) > 0; k++ {
			i := r.Intn(len(inFlight))
			id := inFlight[i]
			inFlight = append(inFlight[:i], inFlight[i+1:]...)
			q.MarkReady(id)
			q.Issue(id)
		}
		q.Tick()
	}
	if float64(q.HalfMoves[1]) < 1.5*float64(q.HalfMoves[0]) {
		t.Fatalf("tail half moved %d, head half %d: expected strong asymmetry",
			q.HalfMoves[1], q.HalfMoves[0])
	}
}

func TestToggleBalancesCompactionAcrossHalves(t *testing.T) {
	// With periodic toggling, the two physical halves should see much
	// more similar movement counts.
	q := newQ()
	r := rng.New(1)
	next := int32(0)
	inFlight := []int32{}
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle > 0 && cycle%500 == 0 {
			q.Toggle()
		}
		for len(inFlight) < 28 {
			id := next % 128
			if q.Contains(id) {
				break
			}
			if !q.Dispatch(id) {
				break
			}
			inFlight = append(inFlight, id)
			next++
		}
		issues := 1 + r.Intn(2)
		for k := 0; k < issues && len(inFlight) > 0; k++ {
			i := r.Intn(len(inFlight))
			id := inFlight[i]
			inFlight = append(inFlight[:i], inFlight[i+1:]...)
			q.MarkReady(id)
			q.Issue(id)
		}
		q.Tick()
	}
	lo, hi := q.HalfMoves[0], q.HalfMoves[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(hi) > 2.2*float64(lo) {
		t.Fatalf("toggling left halves imbalanced: %d vs %d", q.HalfMoves[0], q.HalfMoves[1])
	}
	if q.Toggles != 7 {
		t.Fatalf("toggles %d, want 7", q.Toggles)
	}
}

func TestToggleRelabelsWithoutLosingEntries(t *testing.T) {
	q := newQ()
	for i := int32(0); i < 10; i++ {
		q.Dispatch(i)
	}
	q.Toggle()
	if q.Mode() != 1 {
		t.Fatal("mode not toggled")
	}
	var got []int32
	got = q.LogicalOrder(got)
	if len(got) != 10 {
		t.Fatalf("%d entries after toggle, want 10", len(got))
	}
	for i := range got {
		if got[i] != int32(i) {
			t.Fatalf("relative order broken: %v", got)
		}
	}
	// All ten sat in physical half 0 (phys 0..9); they must still be
	// there (toggling moves no data).
	for i := int32(0); i < 10; i++ {
		if q.PhysicalHalfOf(i) != 0 {
			t.Fatalf("entry %d moved physically on toggle", i)
		}
	}
	// Dispatch after toggle must land in the new tail region.
	if !q.Dispatch(20) {
		t.Fatal("dispatch failed after toggle")
	}
	got = q.LogicalOrder(got[:0])
	if got[len(got)-1] != 20 {
		t.Fatalf("new dispatch not at tail: %v", got)
	}
}

func TestWrapMovesChargedInMode1(t *testing.T) {
	q := newQ()
	// Enter mode 1 with an empty queue: head at physical 16.
	q.Toggle()
	// Fill logical 0..19 (physical 16..31 then 0..3).
	for i := int32(0); i < 20; i++ {
		q.Dispatch(i)
	}
	// Issue the head (logical 0, physical 16): everything compacts down
	// one, and the entry at logical 16 (physical 0) wraps to physical 31.
	q.MarkReady(0)
	q.Issue(0)
	drainTicks(q, 3)
	if q.WrapMoves == 0 {
		t.Fatal("no wrap moves recorded in mode 1 compaction")
	}
	if q.Contains(0) {
		t.Fatal("issued head entry still present")
	}
	var got []int32
	got = q.LogicalOrder(got)
	for i := range got {
		if got[i] != int32(i+1) {
			t.Fatalf("order after wrap compaction: %v", got)
		}
	}
}

func TestNoWrapMovesInMode0(t *testing.T) {
	q := newQ()
	r := rng.New(3)
	next := int32(0)
	for cycle := 0; cycle < 500; cycle++ {
		for j := 0; j < 4; j++ {
			id := next % 128
			if !q.Contains(id) && q.Dispatch(id) {
				next++
			}
		}
		var ready []int32
		for id := int32(0); id < 128; id++ {
			if q.StateOf(id) == Waiting {
				ready = append(ready, id)
			}
		}
		for k := 0; k < 2 && len(ready) > 0; k++ {
			i := r.Intn(len(ready))
			q.MarkReady(ready[i])
			q.Issue(ready[i])
			ready = append(ready[:i], ready[i+1:]...)
		}
		q.Tick()
	}
	if q.WrapMoves != 0 {
		t.Fatalf("%d wrap moves in conventional mode", q.WrapMoves)
	}
}

func TestEnergyAccountingHandComputed(t *testing.T) {
	q := New(8, 4, 2, 16)
	// Dispatch 3 entries at physical slots 0-2 (all in half 0). Each
	// dispatch charges: payload RAM split evenly, half the dispatch-bus
	// drive to the written half, and the other half of the drive split.
	q.Dispatch(0)
	q.Dispatch(1)
	q.Dispatch(2)
	want0 := 3 * (power.PayloadRAMAccess/2 + power.LongCompaction/2 + power.LongCompaction/4)
	want1 := 3 * (power.PayloadRAMAccess/2 + power.LongCompaction/4)
	// Nothing has been drained yet, so EnergyTotals is exactly the pending
	// per-half energy on the bus.
	if got, _ := q.EnergyTotals(); math.Abs(got-want0) > 1e-18 {
		t.Fatalf("half0 after dispatch %.3e, want %.3e", got, want0)
	}
	if _, got := q.EnergyTotals(); math.Abs(got-want1) > 1e-18 {
		t.Fatalf("half1 after dispatch %.3e, want %.3e", got, want1)
	}
	// Issue entry 0: select + payload read, split evenly.
	q.MarkReady(0)
	q.Issue(0)
	want0 += (power.SelectAccess + power.PayloadRAMAccess) / 2
	want1 += (power.SelectAccess + power.PayloadRAMAccess) / 2
	if _, got := q.EnergyTotals(); math.Abs(got-want1) > 1e-18 {
		t.Fatalf("half1 after issue %.3e, want %.3e", got, want1)
	}
	// Tick 1: clock gating only (entry still draining).
	q.Tick()
	want0 += power.ClockGatingLogic / 2
	want1 += power.ClockGatingLogic / 2
	if got, _ := q.EnergyTotals(); math.Abs(got-want0) > 1e-18 {
		t.Fatalf("half0 after drain tick %.3e, want %.3e", got, want0)
	}
	// Tick 2: hole appears at logical 0 and compacts: entries 1 and 2
	// (physical 1, 2 -> 0, 1; both in half 0 of the 8-entry queue) each
	// pay counter stages + entry-to-entry + mux select, all in half 0.
	q.Tick()
	want0 += power.ClockGatingLogic/2 +
		2*(power.CounterStage1+power.CounterStage2) +
		2*power.CompactEntryToEntry + 2*power.CompactMuxSelect
	want1 += power.ClockGatingLogic / 2
	if got, _ := q.EnergyTotals(); math.Abs(got-want0) > 1e-18 {
		t.Fatalf("half0 after compaction %.3e, want %.3e", got, want0)
	}
	if _, got := q.EnergyTotals(); math.Abs(got-want1) > 1e-18 {
		t.Fatalf("half1 after compaction %.3e, want %.3e", got, want1)
	}
	// Draining the bus converts the pending counts to joules per half and
	// resets the interval accumulators; lifetime totals survive.
	d0, d1 := drainHalves(q)
	if math.Abs(d0-want0) > 1e-18 || math.Abs(d1-want1) > 1e-18 {
		t.Fatalf("bus drain (%.3e, %.3e), want (%.3e, %.3e)", d0, d1, want0, want1)
	}
	if d0, d1 = drainHalves(q); d0 != 0 || d1 != 0 {
		t.Fatal("bus drain did not clear the interval counters")
	}
	if t0, _ := q.EnergyTotals(); math.Abs(t0-want0) > 1e-18 {
		t.Fatal("EnergyTotals reset by bus drain")
	}
}

func TestBroadcastEnergy(t *testing.T) {
	q := newQ()
	q.Broadcast(3)
	q.Broadcast(0) // no-op
	want := 3 * power.TagBroadcastMatch / 2
	d0, d1 := drainHalves(q)
	if math.Abs(d0-want) > 1e-18 {
		t.Fatalf("broadcast energy %v, want %v", d0, want)
	}
	if math.Abs(d1-want) > 1e-18 {
		t.Fatal("half 1 should match half 0")
	}
}

func TestBroadcastMatchFollowsOccupancy(t *testing.T) {
	// With three entries in half 0 and one in half 1, the CAM match share
	// of a broadcast splits 3:1; the wire share stays even.
	q := New(8, 4, 2, 16)
	for i := int32(0); i < 3; i++ {
		q.Dispatch(i) // physical 0-2: half 0
	}
	q.Dispatch(3)
	q.Dispatch(4) // physical 4: half 1
	q.Remove(3)   // leave a hole at physical 3 so halves hold 3 and 1
	drainHalves(q) // discard dispatch energy
	q.Broadcast(2)
	e := 2 * power.TagBroadcastMatch
	want0 := e/4 + e/2*3/4
	want1 := e/4 + e/2*1/4
	d0, d1 := drainHalves(q)
	if math.Abs(d0-want0) > 1e-18 || math.Abs(d1-want1) > 1e-18 {
		t.Fatalf("broadcast split (%.3e, %.3e), want (%.3e, %.3e)", d0, d1, want0, want1)
	}
}

func TestRequestsVector(t *testing.T) {
	q := newQ()
	q.Dispatch(5)
	q.Dispatch(6)
	q.MarkReady(6)
	req := make([]int32, 32)
	q.Requests(req)
	found := 0
	for p, id := range req {
		switch id {
		case -1:
		case 6:
			found++
			if p != 1 {
				t.Fatalf("ready entry at phys %d, want 1", p)
			}
		default:
			t.Fatalf("unexpected request id %d", id)
		}
	}
	if found != 1 {
		t.Fatalf("found %d ready entries", found)
	}
}

func TestRemoveAndTailReclaim(t *testing.T) {
	q := newQ()
	for i := int32(0); i < 32; i++ {
		q.Dispatch(i)
	}
	// Flush the top 10 (a branch mispredict squashes the youngest).
	for i := int32(22); i < 32; i++ {
		q.Remove(i)
	}
	if q.Full() {
		t.Fatal("tail not reclaimed after flush")
	}
	if !q.Dispatch(50) {
		t.Fatal("dispatch failed after flush reclaim")
	}
	q.Remove(99) // absent: no-op
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"odd entries":     func() { New(31, 6, 2, 128) },
		"too many":        func() { New(66, 6, 2, 128) },
		"zero width":      func() { New(32, 0, 2, 128) },
		"double dispatch": func() { q := newQ(); q.Dispatch(1); q.Dispatch(1) },
		"ready absent":    func() { newQ().MarkReady(3) },
		"issue absent":    func() { newQ().Issue(3) },
		"issue not ready": func() { q := newQ(); q.Dispatch(1); q.Issue(1) },
		"requests size":   func() { newQ().Requests(make([]int32, 4)) },
		"dispatch range":  func() { newQ().Dispatch(128) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReset(t *testing.T) {
	q := newQ()
	q.Dispatch(1)
	q.MarkReady(1)
	q.Issue(1)
	q.Tick()
	q.Toggle()
	q.Reset()
	if q.Occupancy() != 0 || q.Mode() != 0 || q.Toggles != 0 || q.Moves != 0 {
		t.Fatal("Reset incomplete")
	}
	if !q.Dispatch(1) {
		t.Fatal("dispatch after reset")
	}
}

// Property: under random dispatch/issue/toggle traffic the queue never
// loses or duplicates an instruction, and id->position stays consistent.
func TestQuickNoLostInstructions(t *testing.T) {
	f := func(seed uint64) bool {
		q := newQ()
		r := rng.New(seed)
		present := map[int32]bool{}
		draining := map[int32]int{}
		next := int32(0)
		for cycle := 0; cycle < 300; cycle++ {
			// Random dispatches.
			for j := 0; j < r.Intn(4); j++ {
				id := next % 128
				if present[id] || draining[id] > 0 || q.Contains(id) {
					continue
				}
				if q.Dispatch(id) {
					present[id] = true
					next++
				}
			}
			// Random issues.
			var waiting []int32
			for id := range present {
				if q.StateOf(id) == Waiting {
					waiting = append(waiting, id)
				}
			}
			for k := 0; k < r.Intn(3) && len(waiting) > 0; k++ {
				i := r.Intn(len(waiting))
				id := waiting[i]
				q.MarkReady(id)
				q.Issue(id)
				delete(present, id)
				draining[id] = 3
				waiting = append(waiting[:i], waiting[i+1:]...)
			}
			// Occasional toggle.
			if r.Bool(0.02) {
				q.Toggle()
			}
			q.Tick()
			for id := range draining {
				draining[id]--
				if draining[id] <= 0 {
					delete(draining, id)
				}
			}
			// Invariant: every present instruction is in the queue exactly
			// once and queue occupancy >= len(present).
			var order []int32
			order = q.LogicalOrder(order)
			seen := map[int32]int{}
			for _, id := range order {
				seen[id]++
			}
			for id := range present {
				if seen[id] != 1 {
					return false
				}
			}
			for _, n := range seen {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: relative logical order of un-issued instructions is preserved
// by compaction (within a mode epoch).
func TestQuickOrderPreservedWithinEpoch(t *testing.T) {
	f := func(seed uint64) bool {
		q := newQ()
		r := rng.New(seed)
		var fifo []int32
		next := int32(0)
		for cycle := 0; cycle < 200; cycle++ {
			for j := 0; j < r.Intn(3); j++ {
				id := next % 128
				if q.Contains(id) {
					continue
				}
				if q.Dispatch(id) {
					fifo = append(fifo, id)
					next++
				}
			}
			// Issue from random positions.
			for k := 0; k < r.Intn(3) && len(fifo) > 0; k++ {
				i := r.Intn(len(fifo))
				id := fifo[i]
				q.MarkReady(id)
				q.Issue(id)
				fifo = append(fifo[:i], fifo[i+1:]...)
			}
			q.Tick()
			var order []int32
			order = q.LogicalOrder(order)
			// Filter draining entries out of the comparison.
			var live []int32
			for _, id := range order {
				if q.StateOf(id) != Draining {
					live = append(live, id)
				}
			}
			if len(live) != len(fifo) {
				return false
			}
			for i := range live {
				if live[i] != fifo[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestNonCompactingBasics(t *testing.T) {
	q := newQ()
	q.SetNonCompacting(true)
	if !q.NonCompacting() {
		t.Fatal("mode not set")
	}
	for i := int32(0); i < 32; i++ {
		if !q.Dispatch(i) {
			t.Fatalf("dispatch %d failed", i)
		}
	}
	if !q.Full() || q.Dispatch(99) {
		t.Fatal("full queue accepted a dispatch")
	}
	// Issue a middle entry: its slot frees and is reused in place, with
	// no movement of anything else.
	q.MarkReady(10)
	q.Issue(10)
	drainTicks(q, 3)
	if q.Moves != 0 {
		t.Fatalf("non-compacting queue moved %d entries", q.Moves)
	}
	if q.Full() {
		t.Fatal("freed slot not visible")
	}
	if !q.Dispatch(99) {
		t.Fatal("freed slot not reusable")
	}
	if q.PhysicalHalfOf(99) != 0 {
		t.Fatal("freed slot (phys 10) should be in half 0")
	}
	// Everything else stayed in place.
	for i := int32(0); i < 10; i++ {
		if q.PhysicalHalfOf(i) != 0 {
			t.Fatalf("entry %d moved", i)
		}
	}
}

func TestNonCompactingChargesNoCompactionEnergy(t *testing.T) {
	run := func(nonCompacting bool) float64 {
		q := newQ()
		q.SetNonCompacting(nonCompacting)
		r := rng.New(5)
		next := int32(0)
		var inFlight []int32
		for cycle := 0; cycle < 3000; cycle++ {
			for len(inFlight) < 24 {
				id := next % 128
				if q.Contains(id) || !q.Dispatch(id) {
					break
				}
				inFlight = append(inFlight, id)
				next++
			}
			for k := 0; k < 2 && len(inFlight) > 0; k++ {
				i := r.Intn(len(inFlight))
				id := inFlight[i]
				inFlight = append(inFlight[:i], inFlight[i+1:]...)
				q.MarkReady(id)
				q.Issue(id)
			}
			q.Tick()
		}
		d0, d1 := drainHalves(q)
		return d0 + d1
	}
	compacting, non := run(false), run(true)
	if non >= compacting {
		t.Fatalf("non-compacting energy %.3e not below compacting %.3e", non, compacting)
	}
}

func TestNonCompactingPanics(t *testing.T) {
	q := newQ()
	q.Dispatch(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetNonCompacting on occupied queue did not panic")
			}
		}()
		q.SetNonCompacting(true)
	}()
	q2 := newQ()
	q2.SetNonCompacting(true)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Toggle on non-compacting queue did not panic")
			}
		}()
		q2.Toggle()
	}()
}
