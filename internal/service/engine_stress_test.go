package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/rng"
)

// stubResultJSON is the minimal result body the stress stubs return —
// shaped like a sim result so finish() can fold it without error noise.
func stubResultJSON(bench string) []byte {
	return []byte(`{"benchmark":"` + bench + `","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`)
}

// TestEngineStressConcurrent hammers one engine from hundreds of
// goroutines mixing duplicate keys, distinct keys, Status probes, and
// Waits, under -race in CI. It asserts the engine's global accounting
// survives the melee: every submission either settles done or was
// refused with ErrQueueFull, the hot duplicate key ran exactly once
// (single-flight), and the final counters balance.
func TestEngineStressConcurrent(t *testing.T) {
	var hotRuns atomic.Int64
	e := NewEngine(EngineConfig{
		Workers:    8,
		Shards:     8,
		QueueDepth: 32,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			if req.Cycles == 100_000 {
				hotRuns.Add(1)
			}
			return stubResultJSON(req.Benchmark), nil
		},
	})
	defer shutdownEngine(t, e)

	hot := Request{Benchmark: "eon", Cycles: 100_000, Warmup: 10_000}
	hotKey, err := hot.Key()
	if err != nil {
		t.Fatal(err)
	}

	const (
		goroutines = 200
		perG       = 50
	)
	var (
		wg       sync.WaitGroup
		rejected atomic.Int64
		settled  atomic.Int64
	)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				req := hot
				if i%3 == 0 { // distinct key per (g, i)
					req = Request{Benchmark: "eon", Cycles: int64(200_000 + g*perG + i), Warmup: 10_000}
				}
				j, err := e.Submit(req)
				if err != nil {
					if err != ErrQueueFull {
						t.Errorf("Submit: %v", err)
					}
					rejected.Add(1)
					continue
				}
				if i%5 == 0 { // interleave Status probes with the churn
					if _, ok := e.Job(j.Key); !ok {
						t.Errorf("Job(%s) lost a just-submitted key", j.Key)
					}
				}
				st, err := e.Wait(ctx, j.Key)
				if err != nil {
					t.Errorf("Wait: %v", err)
					continue
				}
				if st.State != JobDone {
					t.Errorf("job %s settled %s: %s", j.Key, st.State, st.Error)
				}
				settled.Add(1)
			}
		}(g)
	}
	wg.Wait()

	if n := hotRuns.Load(); n != 1 {
		t.Errorf("hot key ran %d times, want exactly 1 (single-flight + cache)", n)
	}
	if settled.Load()+rejected.Load() != goroutines*perG {
		t.Errorf("accounting leak: settled %d + rejected %d != %d",
			settled.Load(), rejected.Load(), goroutines*perG)
	}
	m := e.Metrics()
	if m.JobsQueued != 0 {
		t.Errorf("JobsQueued = %d after drain, want 0", m.JobsQueued)
	}
	if m.JobsFailed != 0 {
		t.Errorf("JobsFailed = %d, want 0", m.JobsFailed)
	}
	if st, ok := e.Job(hotKey); !ok || st.State != JobDone {
		t.Errorf("hot key status = %+v, %v", st, ok)
	}
}

// TestEngineStress429Accounting pins exact backpressure accounting at
// aggregate capacity: with workers gated shut, concurrent submitters
// racing distinct keys get exactly QueueDepth admissions and every
// other submission is refused with ErrQueueFull — the sharded queues
// still enforce one aggregate bound, not one bound per shard.
func TestEngineStress429Accounting(t *testing.T) {
	release := make(chan struct{})
	e := NewEngine(EngineConfig{
		Workers:    4,
		Shards:     4,
		QueueDepth: 16,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResultJSON(req.Benchmark), nil
		},
	})
	defer shutdownEngine(t, e)

	// Fill every worker with a running job so queue slots only drain
	// into busy workers and the queue bound is the binding constraint.
	running := make([]*Job, 4)
	for i := range running {
		j, err := e.Submit(Request{Benchmark: "eon", Cycles: int64(1_000_000 + i), Warmup: 10_000})
		if err != nil {
			t.Fatal(err)
		}
		running[i] = j
	}
	waitRunningN(t, e, 4)

	const submitters = 64
	var (
		wg       sync.WaitGroup
		admitted atomic.Int64
		refused  atomic.Int64
	)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				_, err := e.Submit(Request{Benchmark: "eon", Cycles: int64(2_000_000 + s*4 + i), Warmup: 10_000})
				switch err {
				case nil:
					admitted.Add(1)
				case ErrQueueFull:
					refused.Add(1)
				default:
					t.Errorf("Submit: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()

	if n := admitted.Load(); n != 16 {
		t.Errorf("admitted %d jobs at QueueDepth 16, want exactly 16", n)
	}
	if admitted.Load()+refused.Load() != submitters*4 {
		t.Errorf("accounting leak: admitted %d + refused %d != %d",
			admitted.Load(), refused.Load(), submitters*4)
	}
	if m := e.Metrics(); m.JobsQueued != 16 {
		t.Errorf("JobsQueued = %d, want 16", m.JobsQueued)
	}
	close(release)
}

// TestEngineStressBatchAllOrNothing races batch submissions against a
// swarm of single-cell submitters around a tiny queue and asserts batch
// admission never wedges half in: every batch either has all its cells
// tracked (each one queued, running, done, or deduped onto a live job)
// or was rejected whole with ErrQueueFull — observed cell-by-cell the
// moment SubmitBatch returns.
func TestEngineStressBatchAllOrNothing(t *testing.T) {
	release := make(chan struct{})
	var gate sync.Once
	e := NewEngine(EngineConfig{
		Workers:    4,
		Shards:     4,
		QueueDepth: 8, // fig6/eon+gzip needs 12 slots when cold
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResultJSON(req.Benchmark), nil
		},
	})
	defer func() {
		gate.Do(func() { close(release) })
		shutdownEngine(t, e)
	}()

	// Racing phase: workers gated shut, batch submitters (each attempt a
	// distinct batch, so each is its own admission) race single-cell
	// churners for the 8 queue slots. Admission may or may not win any
	// given race — the property under test is that whichever way it
	// goes, nothing is ever half-admitted: an ErrQueueFull batch
	// enqueued no cell, an admitted one has every cell live.
	var wg sync.WaitGroup
	for s := 0; s < 16; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				if s%2 == 0 {
					// Churn single cells to race the batch's reservation.
					_, err := e.Submit(Request{Benchmark: "eon", Cycles: int64(3_000_000 + s*8 + i), Warmup: 10_000})
					if err != nil && err != ErrQueueFull {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				breq := BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon"}, Cycles: int64(4_000_000 + s*8 + i), Warmup: 10_000}
				b, err := e.SubmitBatch(breq)
				if err == ErrQueueFull {
					continue // rejected whole; nothing enqueued (checked below)
				}
				if err != nil {
					t.Errorf("SubmitBatch: %v", err)
					continue
				}
				// Admission promised every cell a live job: none may be
				// missing or failed at this instant.
				for _, cell := range b.cells {
					st := cell.snapshot()
					if st.State == JobFailed {
						t.Errorf("batch admitted with failed cell %s: %s", cell.Key, st.Error)
					}
				}
			}
		}(s)
	}
	wg.Wait()

	// The queue can hold at most QueueDepth reservations no matter how
	// the races interleaved — a torn batch would have leaked extras.
	if q := e.Metrics().JobsQueued; q > 8 {
		t.Errorf("JobsQueued = %d exceeds aggregate capacity 8", q)
	}

	// Deterministic phase: open the gate so the backlog drains, then an
	// admission that lost every race above must eventually succeed and
	// settle completely.
	gate.Do(func() { close(release) })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	breq := BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon", "gzip"}, Cycles: 100_000, Warmup: 10_000}
	var bkey string
	for {
		b, err := e.SubmitBatch(breq)
		if err == nil {
			bkey = b.Key
			break
		}
		if err != ErrQueueFull {
			t.Fatalf("SubmitBatch: %v", err)
		}
		select {
		case <-ctx.Done():
			t.Fatal("batch was never admitted after workers were released")
		case <-time.After(time.Millisecond):
		}
	}
	st, err := e.WaitBatch(ctx, bkey)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("batch settled %s: %s", st.State, st.Error)
	}
}

// TestEngineStealCompletesSiblingBacklog pins the work-stealing path:
// every request is mined (by scanning Cycles values) to hash onto
// shard 0, so shards 1..3 never receive local work — yet all four
// workers end up running shard-0 jobs simultaneously, which is only
// possible if the idle siblings stole them, and the whole backlog
// completes while shard 0's own worker is still occupied.
func TestEngineStealCompletesSiblingBacklog(t *testing.T) {
	const nshards = 4
	block := make(chan struct{})
	e := NewEngine(EngineConfig{
		Workers:    nshards,
		Shards:     nshards,
		QueueDepth: 64,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			if req.Warmup == 1 { // plug jobs block until released
				select {
				case <-block:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return stubResultJSON(req.Benchmark), nil
		},
	})
	released := sync.OnceFunc(func() { close(block) })
	defer func() {
		released() // a failed test must still unblock the plugs
		shutdownEngine(t, e)
	}()

	// mine collects n requests with the given Warmup whose keys all
	// hash to shard 0.
	target := e.shards[0]
	next := int64(1)
	mine := func(n, warmup int) []Request {
		var out []Request
		for ; len(out) < n; next++ {
			r := Request{Benchmark: "eon", Cycles: next, Warmup: warmup}
			if e.shardFor(mustKey(t, r)) == target {
				out = append(out, r)
			}
		}
		return out
	}
	plugs := mine(nshards, 1)
	backlog := mine(12, 2)

	for _, p := range plugs {
		if _, err := e.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	// All four workers running jobs that are all homed on shard 0:
	// three of them must have stolen theirs.
	waitRunningN(t, e, nshards)
	if m := e.Metrics(); m.JobsStolen < nshards-1 {
		t.Errorf("JobsStolen = %d with %d shard-0 jobs running, want >= %d",
			m.JobsStolen, nshards, nshards-1)
	}

	keys := make([]string, len(backlog))
	for i, r := range backlog {
		j, err := e.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = j.Key
	}
	released()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, k := range keys {
		st, err := e.Wait(ctx, k)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobDone {
			t.Fatalf("backlog job %s settled %s: %s", k, st.State, st.Error)
		}
	}
}

// waitRunningN polls until exactly n jobs are running simultaneously.
func waitRunningN(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if e.Metrics().JobsRunning >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("never saw %d jobs running (now %d)", n, e.Metrics().JobsRunning)
}

func mustKey(t *testing.T, r Request) string {
	t.Helper()
	k, err := r.Key()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestJitterSeedDeterministic pins the per-worker jitter derivation:
// the same (seed, worker) pair always yields the same stream, distinct
// workers get decorrelated streams, and the engine threads
// EngineConfig.JitterSeed through to the workers it builds.
func TestJitterSeedDeterministic(t *testing.T) {
	draw := func(seed uint64, worker, n int) []uint64 {
		src := rng.New(jitterSeed(seed, worker))
		out := make([]uint64, n)
		for i := range out {
			out[i] = src.Uint64()
		}
		return out
	}
	a, b := draw(1, 0, 8), draw(1, 0, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, worker) diverged at draw %d", i)
		}
	}
	c := draw(1, 1, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("workers 0 and 1 share a jitter stream")
	}
}

// TestEngineJitterSeedThreaded asserts the config seed reaches the
// worker rngs: two engines with the same seed produce identical
// per-worker first draws, a different seed produces a different one.
func TestEngineJitterSeedThreaded(t *testing.T) {
	build := func(seed uint64) []uint64 {
		e := NewEngine(EngineConfig{Workers: 3, JitterSeed: seed,
			runFunc: func(ctx context.Context, req Request) ([]byte, error) {
				return stubResultJSON(req.Benchmark), nil
			}})
		defer shutdownEngine(t, e)
		out := make([]uint64, len(e.workers))
		for i, w := range e.workers {
			out[i] = w.rng.Uint64()
		}
		return out
	}
	a, b, c := build(7), build(7), build(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same JitterSeed produced different worker streams: %v vs %v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("different JitterSeed produced identical worker streams: %v", a)
	}
	if strings.Count(fmt.Sprint(a), " ") != 2 {
		t.Fatalf("expected 3 worker streams, got %v", a)
	}
}

// TestEngineStressBatchAdmissionVsShutdown lands Shutdown in the
// middle of a storm of batch and single-cell admissions, under -race
// in CI. The properties: the batch path's all-or-nothing CAS
// reservation never leaks capacity across a shutdown (the aggregate
// reservation counter returns to exactly zero), and the journal's
// pending set replays exactly — a restarted engine runs each
// interrupted job once and drains completely.
func TestEngineStressBatchAdmissionVsShutdown(t *testing.T) {
	dir := t.TempDir()
	jnl, recs, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	e := NewEngine(EngineConfig{
		Workers: 4, Shards: 4, QueueDepth: 16,
		Journal: jnl, Replay: recs,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return stubResultJSON(req.Benchmark), nil
		},
	})

	var wg sync.WaitGroup
	for s := 0; s < 12; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if s%2 == 0 {
					_, err := e.Submit(Request{Benchmark: "eon", Cycles: int64(5_000_000 + s*16 + i), Warmup: 10_000})
					if err != nil && err != ErrQueueFull && err != ErrShutdown {
						t.Errorf("Submit: %v", err)
					}
					continue
				}
				breq := BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon"}, Cycles: int64(6_000_000 + s*16 + i), Warmup: 10_000}
				if _, err := e.SubmitBatch(breq); err != nil && err != ErrQueueFull && err != ErrShutdown {
					t.Errorf("SubmitBatch: %v", err)
				}
			}
		}(s)
	}

	// Shut down while admissions are in full flight. The short drain
	// deadline forces the cancellation path for running jobs too, so
	// pending covers both never-run and interrupted work.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	e.Shutdown(ctx)
	cancel()
	wg.Wait()

	// The CAS reservation balanced: every admitted slot was released by
	// a pop, a shed, or the shutdown sweep; every rejected batch
	// released its whole claim.
	if q := e.queued.Load(); q != 0 {
		t.Fatalf("aggregate reservation counter = %d after shutdown, want 0", q)
	}

	// Replay exactness: each pending key is unique, and a restarted
	// engine runs exactly the pending set to completion.
	jnl2, recs2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, _ := journal.Pending(recs2)
	seen := make(map[string]bool, len(pending))
	for _, r := range pending {
		if seen[r.Key] {
			t.Fatalf("key %s pending twice", r.Key)
		}
		seen[r.Key] = true
	}

	var runs2 atomic.Int64
	e2 := NewEngine(EngineConfig{
		Workers: 4, Shards: 4, QueueDepth: 2 * len(pending),
		Journal: jnl2, Replay: recs2,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			runs2.Add(1)
			return stubResultJSON(req.Benchmark), nil
		},
	})
	defer shutdownEngine(t, e2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := e2.Metrics()
		if m.Ready && m.JobsQueued == 0 && m.JobsRunning == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replay never drained: %+v", m)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := runs2.Load(); got != int64(len(pending)) {
		t.Fatalf("restart ran %d jobs for %d pending records", got, len(pending))
	}
	if m := e2.Metrics(); m.JobsCompleted != uint64(len(pending)) || m.JobsFailed != 0 {
		t.Fatalf("replay accounting: %d completed / %d failed, want %d / 0", m.JobsCompleted, m.JobsFailed, len(pending))
	}
}
