package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer wires a real engine (real simulations, tiny windows)
// behind httptest.
func newTestServer(t *testing.T) (*httptest.Server, *Engine) {
	t.Helper()
	cache, err := NewCache(64, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Workers: 2, QueueDepth: 16, Cache: cache})
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return ts, e
}

const tinyCell = `{"benchmark":"eon","plan":"issue-queue-constrained","techniques":{"iq":"activity-toggling"},"cycles":120000,"warmup":20000}`

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServerCellLifecycle is the end-to-end contract the CI job also
// checks over a real daemon: submit a cell twice, the second response is
// a cache hit with byte-identical result JSON.
func TestServerCellLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)

	code, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", tinyCell)
	if code != http.StatusOK {
		t.Fatalf("first submit: %d %s", code, body)
	}
	var st1 JobStatus
	if err := json.Unmarshal(body, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.State != JobDone || st1.Cached || len(st1.Result) == 0 {
		t.Fatalf("first submit status: %+v", st1)
	}

	code, body = postJSON(t, ts.URL+"/v1/jobs?wait=1", tinyCell)
	if code != http.StatusOK {
		t.Fatalf("second submit: %d %s", code, body)
	}
	var st2 JobStatus
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.Key != st1.Key {
		t.Fatalf("second submit not a cache hit: %+v", st2)
	}
	if string(st1.Result) != string(st2.Result) {
		t.Error("result JSON not byte-identical across submissions")
	}

	// GET endpoints.
	code, body = get(t, ts.URL+"/v1/jobs/"+st1.Key)
	if code != http.StatusOK || !strings.Contains(string(body), `"state":"done"`) {
		t.Fatalf("GET job: %d %s", code, body)
	}
	code, res1 := get(t, ts.URL+"/v1/jobs/"+st1.Key+"/result")
	if code != http.StatusOK || string(res1) != string(st1.Result) {
		t.Fatalf("GET result: %d, bytes differ from submit response", code)
	}
	code, rep := get(t, ts.URL+"/v1/jobs/"+st1.Key+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET report: %d %s", code, rep)
	}
	for _, want := range []string{"benchmark    eon", "IPC", "per-block temperatures"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	// Metrics counted one hit, one run.
	code, mb := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET metrics: %d", code)
	}
	var m Metrics
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits < 1 || m.JobsCompleted != 1 {
		t.Errorf("metrics = %+v, want >=1 cache hit and exactly 1 completed run", m)
	}
}

func TestServerAsyncSubmitAndPoll(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/jobs", tinyCell)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("async submit: %d %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body = get(t, ts.URL+"/v1/jobs/"+st.Key)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == JobDone {
			break
		}
		if st.State == JobFailed {
			t.Fatalf("job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s (HTTP %d)", st.State, code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(st.Result) == 0 {
		t.Fatal("done job has no result")
	}
}

func TestServerBatchLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"experiment":"fig6","benchmarks":["eon"],"cycles":120000,"warmup":20000}`
	code, resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("batch submit: %d %s", code, resp)
	}
	var st BatchStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || len(st.Cells) != 2 || st.Experiment != "fig6" {
		t.Fatalf("batch status: %+v", st)
	}
	code, rep := get(t, ts.URL+"/v1/jobs/"+st.Key+"/report")
	if code != http.StatusOK || !strings.Contains(string(rep), "Issue-queue constrained") {
		t.Fatalf("batch report: %d\n%s", code, rep)
	}
	if !strings.Contains(string(rep), "speedup") {
		t.Errorf("figure report missing speedup summary:\n%s", rep)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad JSON", "POST", "/v1/jobs", "{nope", http.StatusBadRequest},
		{"unknown benchmark", "POST", "/v1/jobs", `{"benchmark":"doom3"}`, http.StatusBadRequest},
		{"unknown experiment", "POST", "/v1/jobs", `{"experiment":"fig9"}`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/jobs", `{"benchmark":"eon","bogus":1}`, http.StatusBadRequest},
		{"unknown job", "GET", "/v1/jobs/" + strings.Repeat("ab", 32), "", http.StatusNotFound},
		{"unknown result", "GET", "/v1/jobs/" + strings.Repeat("ab", 32) + "/result", "", http.StatusNotFound},
		{"unknown report", "GET", "/v1/jobs/" + strings.Repeat("ab", 32) + "/report", "", http.StatusNotFound},
	}
	for _, c := range cases {
		var code int
		var body []byte
		if c.method == "POST" {
			code, body = postJSON(t, ts.URL+c.path, c.body)
		} else {
			code, body = get(t, ts.URL+c.path)
		}
		if code != c.want {
			t.Errorf("%s: %d (%s), want %d", c.name, code, body, c.want)
		}
		if !strings.Contains(string(body), `"error"`) {
			t.Errorf("%s: error body missing message: %s", c.name, body)
		}
	}
}

func TestServerQueueFullIs429(t *testing.T) {
	cache, _ := NewCache(4, "")
	e := NewEngine(EngineConfig{Workers: 1, QueueDepth: 1, Cache: cache})
	release := make(chan struct{})
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return []byte(`{"benchmark":"x","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), nil
	}
	ts := httptest.NewServer(NewServer(e))
	defer func() {
		close(release)
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	}()

	benches := []string{"eon", "gzip", "art", "mesa", "parser"}
	got429 := false
	for _, b := range benches {
		code, body := postJSON(t, ts.URL+"/v1/jobs", fmt.Sprintf(`{"benchmark":%q}`, b))
		if code == http.StatusTooManyRequests {
			got429 = true
			if !strings.Contains(string(body), "queue full") {
				t.Errorf("429 body: %s", body)
			}
			break
		}
	}
	if !got429 {
		t.Error("no submission was rejected with 429 despite queue depth 1")
	}
}

func TestServerHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", code, body)
	}
}

// TestServerReadyz: readiness is distinct from liveness — it drops to
// 503 the moment a drain begins, while /healthz keeps answering 200.
func TestServerReadyz(t *testing.T) {
	ts, e := newTestServer(t)
	code, body := get(t, ts.URL+"/readyz")
	if code != http.StatusOK || !strings.Contains(string(body), "ready") {
		t.Fatalf("readyz before drain: %d %s", code, body)
	}

	e.BeginDrain()
	code, body = get(t, ts.URL+"/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("readyz during drain: %d %s", code, body)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz dropped during drain: %d", code)
	}
	var m Metrics
	if _, body := get(t, ts.URL+"/metrics"); json.Unmarshal(body, &m) != nil || m.Ready {
		t.Errorf("metrics ready flag during drain: %+v", m.Ready)
	}
}

// TestServerQuarantinedJobIs500: a quarantined job answers like a
// failure, with the quarantine reason and stack in the error field.
func TestServerQuarantinedJobIs500(t *testing.T) {
	cache, err := NewCache(16, "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, Cache: cache, QuarantineAfter: 1})
	cfg.runFunc = func(ctx context.Context, req Request) ([]byte, error) {
		panic("poisoned input")
	}
	e := NewEngine(cfg)
	ts := httptest.NewServer(NewServer(e))
	t.Cleanup(func() {
		ts.Close()
		shutdownEngine(t, e)
	})

	code, body := postJSON(t, ts.URL+"/v1/jobs?wait=1", tinyCell)
	if code != http.StatusInternalServerError {
		t.Fatalf("quarantined job: %d %s", code, body)
	}
	var st JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != JobQuarantined || !strings.Contains(st.Error, "quarantined after 1 panics") {
		t.Fatalf("status = %+v", st)
	}
	// Polling the job again returns the same quarantined answer.
	code, _ = get(t, ts.URL+"/v1/jobs/"+st.Key)
	if code != http.StatusInternalServerError {
		t.Errorf("poll of quarantined job: %d", code)
	}
}
