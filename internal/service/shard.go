// The sharded dispatcher under the job engine: jobs are hashed by key
// onto N shards, each owning a slice of the job map, the single-flight
// table, and a bounded FIFO run queue. Worker i is pinned to shard i:
// it drains its local queue first and, when idle, steals the oldest job
// from the busiest sibling, so a burst that hashes unevenly still keeps
// every worker busy. Aggregate capacity (EngineConfig.QueueDepth) is a
// single atomic reservation counter, which is what makes batch
// admission all-or-nothing without a global lock (see DESIGN.md,
// "Sharded engine and work stealing").
package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// shard is one slice of the engine: a job map, panic counters, and a
// run queue, all guarded by its own mutex. Submissions for a key always
// land on the same shard (shardFor), so single-flight deduplication and
// panic quarantine counters need no cross-shard coordination.
type shard struct {
	mu          sync.Mutex
	jobs        map[string]*Job
	panicCounts map[string]int // recovered panics per job key
	queue       []*Job         // FIFO run queue: push at tail, pop at queue[qhead]
	qhead       int
	deduped     uint64 // single-flight joins on this shard

	// qlen mirrors the queue length for the lock-free busiest-sibling
	// scan; pops under mu are the authority.
	qlen atomic.Int64
}

// push appends a job to the run queue. Caller holds s.mu.
func (s *shard) push(j *Job) {
	s.queue = append(s.queue, j)
	s.qlen.Add(1)
}

// pop removes and returns the oldest queued job, or nil.
func (s *shard) pop() *Job {
	s.mu.Lock()
	j := s.popLocked()
	s.mu.Unlock()
	return j
}

func (s *shard) popLocked() *Job {
	if s.qhead == len(s.queue) {
		return nil
	}
	j := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead++
	if s.qhead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qhead = 0
	}
	s.qlen.Add(-1)
	return j
}

// workerState is one worker's private slice of the engine metrics plus
// its retry-jitter rng. The stats block is written only by its owner
// worker (and the submit path never touches it), so folding telemetry
// after every job contends with nothing; Metrics() combines the blocks
// at read time under the per-worker statsMu.
type workerState struct {
	statsMu sync.Mutex
	stats   workerStats

	// rng drives retry-backoff jitter for this worker alone — the
	// global math/rand lock is off the retry path. Seeded by
	// jitterSeed, so the draw sequence is deterministic per worker.
	rng *rng.Source
}

// workerStats are the run-side counters and telemetry folds.
type workerStats struct {
	completed   uint64
	failed      uint64
	retries     uint64
	panics      uint64
	quarantined uint64
	stolen      uint64
	shedExpired uint64 // deadline passed before/between attempts
	abandoned   uint64 // sole synchronous waiter disconnected
	watchdog    uint64 // attempts force-failed for lack of progress

	utilN   uint64
	utilSum UtilizationMetrics
	mcSum   MulticoreMetrics
	mcCoreN []uint64
}

// jitterSeed derives worker i's retry-jitter stream from the engine
// seed: the golden-ratio multiply decorrelates consecutive workers and
// rng.New diffuses the result through splitmix64 (the same derivation
// discipline as multicore's per-core streams). Deterministic by
// construction: the same (seed, worker) pair always yields the same
// jitter sequence.
func jitterSeed(seed uint64, worker int) uint64 {
	return seed ^ 0x9e3779b97f4a7c15*uint64(worker+1)
}

// defaultJitterSeed seeds the per-worker retry-jitter rngs when
// EngineConfig.JitterSeed is zero. Jitter needs decorrelation, not
// entropy, so a fixed seed is fine — and keeps backoff schedules
// reproducible in tests.
const defaultJitterSeed = 0x70697065746864 // "pipethd"

// shardFor hashes a job key onto its home shard with FNV-1a over at
// most the first 16 bytes. The hash must accept arbitrary strings
// (status lookups probe unknown ids), and job keys are uniform SHA-256
// hex, so a 16-hex-digit prefix already carries 64 uniform bits —
// mixing the remaining 48 bytes would spend time buying nothing.
func (e *Engine) shardFor(key string) *shard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	n := len(key)
	if n > 16 {
		n = 16
	}
	h := uint64(offset64)
	for i := 0; i < n; i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return e.shards[h%uint64(len(e.shards))]
}

// worker is the pinned dispatch loop for shard id%len(shards): drain
// the local queue, then steal, then sleep on the wake channel until
// either new work or shutdown arrives.
func (e *Engine) worker(id int) {
	defer e.wg.Done()
	local := e.shards[id%len(e.shards)]
	for {
		j, stolen := e.next(local)
		if j == nil {
			select {
			case <-e.wakeCh:
				continue
			case <-e.stopCh:
				e.failQueued(id)
				return
			}
		}
		// The job left its queue: aggregate capacity is free again.
		e.releaseSlot(1)
		if stolen {
			w := e.workers[id]
			w.statsMu.Lock()
			w.stats.stolen++
			w.statsMu.Unlock()
		}
		if e.closing.Load() {
			// Graceful shutdown drains *running* jobs; queued ones fail
			// fast so clients can resubmit elsewhere.
			e.finish(id, j, nil, ErrShutdown)
			continue
		}
		// Shed before running: a job whose client gave up — deadline
		// passed in the queue, or its only waiter disconnected — is
		// failed in O(1) instead of burning a worker on it.
		if e.jobAbandoned(j) {
			w := e.workers[id]
			w.statsMu.Lock()
			w.stats.abandoned++
			w.statsMu.Unlock()
			e.finish(id, j, nil, ErrAbandoned)
			continue
		}
		if e.jobExpired(j) {
			w := e.workers[id]
			w.statsMu.Lock()
			w.stats.shedExpired++
			w.statsMu.Unlock()
			e.finish(id, j, nil, ErrDeadlineExpired)
			continue
		}
		e.runJob(id, j)
	}
}

// next pops the local queue, falling back to stealing the oldest job
// from the busiest sibling. The busiest-first policy mirrors the
// paper's balance thesis at the dispatch layer: taking load from the
// deepest queue flattens the utilization (and hence the wait-time)
// peaks across shards.
func (e *Engine) next(local *shard) (j *Job, stolen bool) {
	if j := local.pop(); j != nil {
		return j, false
	}
	var busiest *shard
	var depth int64
	for _, s := range e.shards {
		if s == local {
			continue
		}
		if n := s.qlen.Load(); n > depth {
			busiest, depth = s, n
		}
	}
	if busiest == nil {
		return nil, false
	}
	if j := busiest.pop(); j != nil {
		return j, true
	}
	return nil, false
}

// signalWork wakes one idle worker. The channel holds QueueDepth
// tokens — as many as there can be queued jobs — so a dropped send
// implies enough outstanding tokens that every queued job is still
// guaranteed a wakeup (each consumed token triggers a full rescan of
// all shards before the worker sleeps again).
func (e *Engine) signalWork() {
	select {
	case e.wakeCh <- struct{}{}:
	default:
	}
}

// reserveSlots claims n units of aggregate queue capacity, all or
// nothing — the contention-free form of the old "is there room in the
// channel" check, and the primitive that makes batch admission atomic
// across shards.
func (e *Engine) reserveSlots(n int) bool {
	if n == 0 {
		return true
	}
	for {
		cur := e.queued.Load()
		if int(cur)+n > e.depth {
			return false
		}
		if e.queued.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// releaseSlot returns n units of queue capacity and nudges a blocked
// journal-replay submitter, which waits on spaceCh instead of polling.
func (e *Engine) releaseSlot(n int) {
	if n == 0 {
		return
	}
	e.queued.Add(-int64(n))
	select {
	case e.spaceCh <- struct{}{}:
	default:
	}
}

// failQueued is a worker's exit sweep at shutdown: every job still
// queued on any shard fails fast with ErrShutdown (keeping its pending
// journal record, so a restart replays it). Concurrent sweepers are
// fine — pops are serialized per shard.
func (e *Engine) failQueued(id int) {
	for _, s := range e.shards {
		for {
			j := s.pop()
			if j == nil {
				break
			}
			e.releaseSlot(1)
			e.finish(id, j, nil, ErrShutdown)
		}
	}
}

// backoff sleeps the exponential-backoff delay for attempt (0-based)
// with jitter in [d/2, d] drawn from the worker's own rng, returning
// false if the engine shut down while sleeping.
func (e *Engine) backoff(id int, attempt int) bool {
	d := e.retryBase << uint(attempt)
	if d <= 0 || d > e.retryMax {
		d = e.retryMax
	}
	d = d/2 + time.Duration(e.workers[id].rng.Intn(int(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.baseCtx.Done():
		return false
	}
}
