// Package service is the simulation-as-a-service job engine: it accepts
// simulation requests, canonicalizes them to a stable JSON form, hashes
// that form into a content-addressed job key, and serves results from an
// LRU + optional on-disk cache or schedules a run with single-flight
// deduplication on a bounded queue. cmd/pipethermd exposes the engine
// over HTTP; cmd/experiments can run its matrices through a local engine
// so already-computed cells are skipped.
//
// Caching whole simulation results by request content is sound because
// runs are fully deterministic: the canonical request (benchmark,
// floorplan, techniques, cycles, warmup — everything else comes from
// config.Default()) pins the entire machine state trajectory, so equal
// keys imply byte-identical result JSON (see DESIGN.md, "Job keys and
// the result cache").
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/multicore"
	"repro/internal/trace"
)

// Request describes one simulation cell: a benchmark × technique ×
// floorplan run. The zero Techniques value is the conventional baseline.
// Cycles <= 0 selects experiments.DefaultCycles; Warmup <= 0 selects the
// simulator's default architectural warmup.
//
// A non-nil Multicore field selects the multi-core scheduling job kind
// instead: the cell fields stay zero and the run is one
// multicore.Run(*Multicore). The field is omitted from the canonical
// form when nil, so every pre-existing cell request keeps its exact
// canonical bytes — and therefore its cache key.
type Request struct {
	Benchmark  string                  `json:"benchmark"`
	Plan       config.FloorplanVariant `json:"plan"`
	Techniques config.Techniques       `json:"techniques"`
	Cycles     int64                   `json:"cycles"`
	Warmup     int                     `json:"warmup"`
	Multicore  *multicore.Params       `json:"multicore,omitempty"`
}

// Normalize returns the request with defaults applied — the form that
// is hashed, so explicit defaults and omitted fields share a key.
func (r Request) Normalize() Request {
	if r.Multicore != nil {
		p := r.Multicore.Normalized()
		r.Multicore = &p
		return r
	}
	if r.Cycles <= 0 {
		r.Cycles = experiments.DefaultCycles
	}
	if r.Warmup < 0 {
		r.Warmup = 0
	}
	return r
}

// Validate reports whether the request can run at all. Invalid requests
// fail at submission (HTTP 400), not as failed jobs.
func (r Request) Validate() error {
	if r.Multicore != nil {
		if r.Benchmark != "" {
			return fmt.Errorf("service: request mixes the cell and multicore shapes")
		}
		return r.Multicore.Normalized().Validate()
	}
	if _, err := trace.ByName(r.Benchmark); err != nil {
		return err
	}
	return validateCell(r.Plan, r.Techniques)
}

// cellShape is the part of a cell request that config validation
// depends on — everything else in the validated Config is
// config.Default(), which never changes at runtime.
type cellShape struct {
	plan config.FloorplanVariant
	tech config.Techniques
}

// validateVerdicts memoizes config.Validate verdicts per cellShape:
// building and checking a full Config per submission is the dominant
// non-hash cost on the cache-hit burst path, and the verdict is a pure
// function of the shape. Only nil verdicts are cached — the accepted
// shape space is the few dozen combinations real clients use, while
// rejected shapes are unbounded (arbitrary enum bytes) and would let a
// hostile client grow the map without limit.
var validateVerdicts sync.Map // cellShape -> struct{} (validated OK)

func validateCell(plan config.FloorplanVariant, tech config.Techniques) error {
	k := cellShape{plan, tech}
	if _, ok := validateVerdicts.Load(k); ok {
		return nil
	}
	cfg := config.Default()
	cfg.Plan = plan
	cfg.Techniques = tech
	if err := cfg.Validate(); err != nil {
		return err
	}
	validateVerdicts.Store(k, struct{}{})
	return nil
}

// Canonical returns the stable JSON encoding of the normalized request:
// fixed field order (struct declaration order), enums as names, defaults
// applied. Equal requests — however they were spelled on the wire —
// produce equal canonical bytes.
//
// Cell-shaped requests take a hand-rolled encoder (appendCanonical)
// that skips the reflection-based json.Marshal on the submission hot
// path; anything it cannot encode byte-identically falls back to
// json.Marshal, so the canonical bytes — and therefore every cache key
// and journal record — are exactly what they have always been.
func (r Request) Canonical() ([]byte, error) {
	n := r.Normalize()
	if c, ok := appendCanonical(make([]byte, 0, canonicalBufSize), n); ok {
		return c, nil
	}
	return json.Marshal(n)
}

// Key returns the content-addressed job key: the hex SHA-256 of the
// canonical form. The canonical bytes are assembled in a stack buffer
// and hashed in place, so the submission fast path allocates only the
// returned key string.
func (r Request) Key() (string, error) {
	n := r.Normalize()
	var buf [canonicalBufSize]byte
	c, ok := appendCanonical(buf[:0], n)
	if !ok {
		var err error
		if c, err = json.Marshal(n); err != nil {
			return "", err
		}
	}
	sum := sha256.Sum256(c)
	var out [sha256.Size * 2]byte
	hex.Encode(out[:], sum[:])
	return string(out[:]), nil
}

// canonicalBufSize comfortably holds any cell request's canonical form
// (the fixed skeleton is ~140 bytes; names add a few dozen). Overflow
// just spills the append to the heap — correct, merely slower.
const canonicalBufSize = 256

// appendCanonical appends r's canonical JSON to dst, reporting whether
// it produced bytes identical to json.Marshal(r). It handles the cell
// shape only (Multicore == nil) and requires every string to be "plain"
// — printable ASCII that json.Marshal would emit unescaped (it escapes
// control chars, quotes, backslashes, and — in HTML-safe mode — <, >,
// and &). Anything else returns ok == false and the caller falls back
// to json.Marshal; the fallback is what defines correctness, this is
// only a byte-for-byte shortcut (TestRequestCanonicalFastPath holds the
// two paths equal across grids of requests).
func appendCanonical(dst []byte, r Request) ([]byte, bool) {
	if r.Multicore != nil {
		return dst, false
	}
	if !plainJSONString(r.Benchmark) {
		return dst, false
	}
	// Enum String() values need no check: every output — the fixed
	// lowercase names and the out-of-range "Type(%d)" form — is plain
	// ASCII by construction (TestEnumNamesArePlain pins this for all
	// 256 values of every enum encoded here).
	t := r.Techniques
	plan := r.Plan.String()
	iq, alu := t.IQ.String(), t.ALU.String()
	rfMap, rfWrites, temporal := t.RFMap.String(), t.RFWrites.String(), t.Temporal.String()
	dst = append(dst, `{"benchmark":"`...)
	dst = append(dst, r.Benchmark...)
	dst = append(dst, `","plan":"`...)
	dst = append(dst, plan...)
	dst = append(dst, `","techniques":{"iq":"`...)
	dst = append(dst, iq...)
	dst = append(dst, `","alu":"`...)
	dst = append(dst, alu...)
	dst = append(dst, `","rf_map":"`...)
	dst = append(dst, rfMap...)
	dst = append(dst, `","rf_turnoff":`...)
	if t.RFTurnoff {
		dst = append(dst, "true"...)
	} else {
		dst = append(dst, "false"...)
	}
	dst = append(dst, `,"rf_writes":"`...)
	dst = append(dst, rfWrites...)
	dst = append(dst, `","temporal":"`...)
	dst = append(dst, temporal...)
	dst = append(dst, `"},"cycles":`...)
	dst = strconv.AppendInt(dst, r.Cycles, 10)
	dst = append(dst, `,"warmup":`...)
	dst = strconv.AppendInt(dst, int64(r.Warmup), 10)
	dst = append(dst, '}')
	return dst, true
}

// plainJSONString reports whether json.Marshal would emit s between
// quotes byte-for-byte unchanged: printable ASCII with no `"` or `\`
// and none of the HTML-escaped trio `<`, `>`, `&`. Multi-byte UTF-8 is
// rejected wholesale (U+2028/U+2029 would be escaped) — benchmark and
// enum names are plain ASCII, so the fast path never misses in
// practice.
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// BatchRequest submits one experiment matrix by its registry ID
// (fig6/fig7/fig8/table4/table5/table6/temporal), reusing
// experiments.Spec to expand into cell requests. Benchmarks narrows the
// figure-style experiments (empty = all 22; the tables pin their own
// sets).
type BatchRequest struct {
	Experiment string   `json:"experiment"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	Cycles     int64    `json:"cycles"`
	Warmup     int      `json:"warmup"`
}

// Spec resolves the batch to its experiment spec.
func (b BatchRequest) Spec() (experiments.Spec, error) {
	spec, err := experiments.ByID(b.Experiment, b.Cycles, b.Benchmarks...)
	if err != nil {
		return experiments.Spec{}, err
	}
	spec.Warmup = b.Warmup
	return spec, nil
}

// Key returns the batch job key: the hex SHA-256 of the canonical batch
// form (experiment ID, explicit benchmark list, defaults applied). The
// canonical form embeds the "experiment" field, which no cell request
// has, so batch and cell keys can never collide.
func (b BatchRequest) Key() (string, error) {
	spec, err := b.Spec()
	if err != nil {
		return "", err
	}
	norm := BatchRequest{
		Experiment: b.Experiment,
		Benchmarks: specBenchmarks(spec),
		Cycles:     spec.Cycles,
		Warmup:     spec.Warmup,
	}
	if norm.Cycles <= 0 {
		norm.Cycles = experiments.DefaultCycles
	}
	c, err := json.Marshal(norm)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Cells expands the batch into its cell requests in the matrix's serial
// iteration order (benchmark-major, variant-minor — the same order
// experiments.Run assigns result slots).
func (b BatchRequest) Cells() (experiments.Spec, []Request, error) {
	spec, err := b.Spec()
	if err != nil {
		return experiments.Spec{}, nil, err
	}
	return spec, SpecCells(spec), nil
}

// SpecCells expands an experiment spec into cell requests in serial
// iteration order.
func SpecCells(spec experiments.Spec) []Request {
	benches := specBenchmarks(spec)
	cells := make([]Request, 0, len(benches)*len(spec.Variants))
	for _, b := range benches {
		for _, v := range spec.Variants {
			cells = append(cells, Request{
				Benchmark:  b,
				Plan:       spec.Plan,
				Techniques: v.Tech,
				Cycles:     spec.Cycles,
				Warmup:     spec.Warmup,
			}.Normalize())
		}
	}
	return cells
}

func specBenchmarks(spec experiments.Spec) []string {
	if len(spec.Benchmarks) > 0 {
		return spec.Benchmarks
	}
	return experiments.AllBenchmarks()
}

// isKey reports whether s looks like a job key (hex SHA-256). Keys are
// used as cache file names; this guards the disk cache against path
// injection.
func isKey(s string) bool {
	if len(s) != sha256.Size*2 {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
