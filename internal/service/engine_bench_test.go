package service

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// BenchmarkEngineThroughput is the service-layer load generator: S
// submitter goroutines drive tiny cells through a full engine (stubbed
// runner, so the dispatch path itself is what is measured) and every
// iteration is one job submitted and settled. Three regimes:
//
//   - hit:   one hot pre-cached key — the cache-hit burst path, pure
//     Submit-side work (key hashing, dedup, cache lookup), no worker
//     involvement;
//   - miss:  every submission is a distinct key, so each job runs the
//     full queue → worker → finish → cache path;
//   - mixed: alternating hot and distinct keys.
//
// Submitter counts 1/4/16/64 model a single client up to a bursty
// many-client front end; workers are max(16, GOMAXPROCS) so the
// many-core dispatch shape is exercised even on small CI hosts.
// ns/op is per job; the jobs/s metric is the headline number recorded
// in BENCH_pipeline.json and gated (time-only) by scripts/benchgate.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, regime := range []string{"hit", "miss", "mixed"} {
		for _, subs := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/sub%d", regime, subs), func(b *testing.B) {
				benchEngineThroughput(b, regime, subs)
			})
		}
	}
}

// benchWorkers resolves the worker count for the throughput benchmark:
// at least 16 so the ≥16-worker dispatch regime exists everywhere.
func benchWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 16 {
		return n
	}
	return 16
}

func benchEngineThroughput(b *testing.B, regime string, subs int) {
	e := NewEngine(EngineConfig{
		Workers:    benchWorkers(),
		QueueDepth: 1024,
		runFunc: func(ctx context.Context, req Request) ([]byte, error) {
			return []byte(`{"benchmark":"` + req.Benchmark + `","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), nil
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	}()

	hot := Request{Benchmark: "eon", Cycles: 100_000, Warmup: 10_000}
	// Pre-warm the hot key so the hit regime is all cache hits.
	j, err := e.Submit(hot)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := e.Wait(context.Background(), j.Key); err != nil {
		b.Fatal(err)
	}

	// uniqueReq derives a distinct job key per index: Cycles is part of
	// the canonical request form, so each value is a new content hash.
	uniqueReq := func(i int64) Request {
		return Request{Benchmark: "eon", Cycles: 200_000 + i, Warmup: 10_000}
	}

	var next atomic.Int64
	var failures atomic.Int64
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				req := hot
				wait := false
				switch regime {
				case "miss":
					req, wait = uniqueReq(i), true
				case "mixed":
					if i%2 == 1 {
						req, wait = uniqueReq(i), true
					}
				}
				j, err := e.Submit(req)
				if err != nil {
					failures.Add(1)
					continue
				}
				if wait {
					if _, err := e.Wait(ctx, j.Key); err != nil {
						failures.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	if n := failures.Load(); n > 0 {
		b.Fatalf("%d of %d submissions failed", n, b.N)
	}
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/s")
	}
}
