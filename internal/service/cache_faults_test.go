package service

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// writeEntry puts payload for key through a throwaway cache so the disk
// entry exists, then returns the entry path.
func writeEntry(t *testing.T, dir, key string, payload []byte) string {
	t.Helper()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key, payload)
	p := filepath.Join(dir, key[:2], key+".json")
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("entry not written: %v", err)
	}
	return p
}

// freshGet looks key up through a cache with no memory state, forcing
// the disk path, and returns the result plus the corrupt counter.
func freshGet(t *testing.T, dir, key string) ([]byte, bool, uint64) {
	t.Helper()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	data, ok := c.Get(key)
	return data, ok, c.Stats().Corrupt
}

func TestCacheTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := testKey(1)
	p := writeEntry(t, dir, key, fakeResultJSON(t, "truncme"))
	info, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(p, info.Size()/2); err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := freshGet(t, dir, key); ok || corrupt != 1 {
		t.Fatalf("truncated entry: hit=%v corrupt=%d, want miss/1", ok, corrupt)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Errorf("truncated entry not removed: %v", err)
	}
}

// TestCacheBitFlippedPayloadIsMiss flips payload bytes in a way that
// keeps the envelope valid JSON — only the checksum can catch this kind
// of damage, which is exactly why the envelope exists.
func TestCacheBitFlippedPayloadIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2)
	p := writeEntry(t, dir, key, fakeResultJSON(t, "bitflip"))
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Replace(blob, []byte("bitflip"), []byte("bitflap"), 1)
	if bytes.Equal(flipped, blob) {
		t.Fatal("payload marker not found in envelope")
	}
	if err := os.WriteFile(p, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := freshGet(t, dir, key); ok || corrupt != 1 {
		t.Fatalf("bit-flipped entry: hit=%v corrupt=%d, want miss/1", ok, corrupt)
	}
}

func TestCacheZeroLengthEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3)
	p := writeEntry(t, dir, key, fakeResultJSON(t, "emptied"))
	if err := os.WriteFile(p, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := freshGet(t, dir, key); ok || corrupt != 1 {
		t.Fatalf("zero-length entry: hit=%v corrupt=%d, want miss/1", ok, corrupt)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Errorf("zero-length entry not removed: %v", err)
	}
}

// TestCacheLegacyRawEntryIsMiss: a pre-envelope entry (raw result JSON,
// no checksum frame) is rejected and recomputed rather than trusted.
func TestCacheLegacyRawEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := testKey(4)
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, fakeResultJSON(t, "legacy"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, corrupt := freshGet(t, dir, key); ok || corrupt != 1 {
		t.Fatalf("legacy entry: hit=%v corrupt=%d, want miss/1", ok, corrupt)
	}
}

// TestCacheTornWriteDetected: an injected torn write lands a truncated
// blob under the final entry name — as a crash on a non-atomic
// filesystem would — and the checksum rejects it on read.
func TestCacheTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	key := testKey(5)
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	c.SetInjector(inj)
	inj.Arm(faultinject.SiteCacheWrite, faultinject.Outcome{Torn: true, Truncate: 24})
	c.Put(key, fakeResultJSON(t, "tornwrite"))

	p := filepath.Join(dir, key[:2], key+".json")
	if info, err := os.Stat(p); err != nil || info.Size() != 24 {
		t.Fatalf("torn entry on disk: %v (size %v)", err, info)
	}
	if _, ok, corrupt := freshGet(t, dir, key); ok || corrupt != 1 {
		t.Fatalf("torn entry: hit=%v corrupt=%d, want miss/1", ok, corrupt)
	}
	// The seam is FIFO and now empty: a rewrite repairs the entry.
	c.Put(key, fakeResultJSON(t, "tornwrite"))
	if _, ok, _ := freshGet(t, dir, key); !ok {
		t.Error("repaired entry not served")
	}
}

// TestCacheNoSpaceDropsDiskWrite: an injected ENOSPC drops the disk
// write; the entry stays served from memory and the next write lands.
func TestCacheNoSpaceDropsDiskWrite(t *testing.T) {
	dir := t.TempDir()
	key := testKey(6)
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	c.SetInjector(inj)
	inj.Arm(faultinject.SiteCacheWrite, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	payload := fakeResultJSON(t, "nospace")
	c.Put(key, payload)

	if _, ok := c.Get(key); !ok {
		t.Fatal("memory layer lost the entry")
	}
	if _, ok, _ := freshGet(t, dir, key); ok {
		t.Fatal("dropped disk write still produced an entry")
	}
	c.Put(key, payload) // disk is "back": this write persists
	if got, ok, _ := freshGet(t, dir, key); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("recovered write not served: %q, %v", got, ok)
	}
}

// TestCacheReaderDuringRename races disk reads against repeated
// crash-safe writes of the same keys: a reader must only ever see a
// complete valid payload — never a torn one — because replacement is an
// atomic rename. Runs under -race in CI.
func TestCacheReaderDuringRename(t *testing.T) {
	dir := t.TempDir()
	keys := []string{testKey(10), testKey(11)}
	payloads := [][]byte{fakeResultJSON(t, "alpha"), fakeResultJSON(t, "beta")}

	writer, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity 1 and two alternating keys: almost every reader Get
	// misses memory and takes the disk path under the writer's renames.
	reader, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := i % 2
			writer.Put(keys[k], payloads[k])
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := i % 2
				if got, ok := reader.Get(keys[k]); ok && !bytes.Equal(got, payloads[k]) {
					t.Errorf("reader saw a foreign payload for key %d: %q", k, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if corrupt := reader.Stats().Corrupt; corrupt != 0 {
		t.Errorf("%d reads saw a torn entry across an atomic rename", corrupt)
	}
}
