// The HTTP surface of the job engine, mounted by cmd/pipethermd:
//
//	POST /v1/jobs              submit one cell or one batch matrix
//	GET  /v1/jobs/{id}         job or batch status + result JSON
//	GET  /v1/jobs/{id}/result  the raw result JSON bytes alone
//	GET  /v1/jobs/{id}/report  paper-style table / report text
//	GET  /healthz              liveness: the process is up and serving
//	GET  /readyz               readiness: 503 during journal replay and
//	                           from the moment a drain begins, so load
//	                           balancers stop routing before shutdown
//	                           loses requests
//	GET  /metrics              engine + cache + Go-runtime counters and
//	                           aggregated pipeline-utilization telemetry
//	GET  /statusz              overload/degradation snapshot: health
//	                           state machine, breaker states, durability
//	                           mode, queue-wait estimate, shed counters
//	GET  /debug/pprof/         live CPU/heap/goroutine profiling
//
// Submission bodies: a cell is {"benchmark","plan","techniques",
// "cycles","warmup"}; a batch is {"experiment","benchmarks","cycles",
// "warmup"} (the "experiment" field selects the shape); a multi-core
// scheduling run is {"multicore":{...multicore.Params...}} and follows
// the cell path (single job, cached by canonical request). Either shape
// may add "deadline_ms": jobs the queue cannot meet in time are
// rejected up front, and expired queued jobs are shed unrun. ?wait=1
// blocks until the job settles; if the waiting client disconnects and
// no one else wants the job, the attempt is cancelled and counted
// abandoned. Backpressure rejections (full queue, unmeetable deadline)
// answer 429 with a Retry-After estimate; invalid requests 400,
// unknown keys 404.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/multicore"
	"repro/internal/sim"
)

// Server wires the engine into an http.Handler.
type Server struct {
	engine *Engine
	mux    *http.ServeMux
}

// NewServer returns the HTTP front end for the engine.
func NewServer(e *Engine) *Server {
	s := &Server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	// Live profiling: a long matrix run can be inspected in place with
	// `go tool pprof http://host/debug/pprof/profile`.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// submitBody is the union of the two POST /v1/jobs shapes.
type submitBody struct {
	// Batch form.
	Experiment string   `json:"experiment"`
	Benchmarks []string `json:"benchmarks"`
	// DeadlineMS, when positive, is a client deadline in milliseconds
	// from now: admission rejects the job with 429 (and a Retry-After
	// hint) if the estimated queue wait already exceeds it, and workers
	// shed it unrun if it expires while queued. Not part of the job key
	// — the same cell with a different deadline is still the same cell.
	DeadlineMS int64 `json:"deadline_ms"`
	// Cell form (Benchmark alone distinguishes it).
	Request
}

// options lifts the wire-level deadline into engine submit options.
func (b submitBody) options(e *Engine) SubmitOptions {
	var opt SubmitOptions
	if b.DeadlineMS > 0 {
		opt.Deadline = e.Now().Add(time.Duration(b.DeadlineMS) * time.Millisecond)
	}
	return opt
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var body submitBody
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	wait := isTrue(r.URL.Query().Get("wait"))
	if body.Experiment != "" {
		s.submitBatch(w, r, body, wait)
		return
	}
	s.submitCell(w, r, body, wait)
}

func (s *Server) submitCell(w http.ResponseWriter, r *http.Request, body submitBody, wait bool) {
	req, opt := body.Request, body.options(s.engine)
	if wait {
		// The synchronous path ties the job to this request: if the
		// client disconnects and nobody else wants the job, the engine
		// cancels the attempt instead of computing for a closed socket.
		st, err := s.engine.SubmitWait(r.Context(), req, opt)
		if err != nil {
			if r.Context().Err() != nil {
				return // client is gone; nothing to answer
			}
			s.submitError(w, err)
			return
		}
		writeJSON(w, jobHTTPStatus(st), st)
		return
	}
	j, err := s.engine.SubmitOpts(req, opt)
	if err != nil {
		s.submitError(w, err)
		return
	}
	st, _ := s.engine.Job(j.Key)
	writeJSON(w, jobHTTPStatus(st), st)
}

func (s *Server) submitBatch(w http.ResponseWriter, r *http.Request, body submitBody, wait bool) {
	breq := BatchRequest{
		Experiment: body.Experiment,
		Benchmarks: body.Benchmarks,
		Cycles:     body.Cycles,
		Warmup:     body.Warmup,
	}
	b, err := s.engine.SubmitBatchOpts(breq, body.options(s.engine))
	if err != nil {
		s.submitError(w, err)
		return
	}
	if wait {
		st, err := s.engine.WaitBatch(r.Context(), b.Key)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, batchHTTPStatus(st), st)
		return
	}
	st, _ := s.engine.BatchJob(b.Key)
	writeJSON(w, batchHTTPStatus(st), st)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st, ok := s.engine.Job(id); ok {
		writeJSON(w, jobHTTPStatus(st), st)
		return
	}
	if st, ok := s.engine.BatchJob(id); ok {
		writeJSON(w, batchHTTPStatus(st), st)
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := s.engine.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if st.State != JobDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %q is %s", id, st.State))
		return
	}
	// The exact cached bytes: identical requests get identical responses.
	w.Header().Set("Content-Type", "application/json")
	w.Write(st.Result)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st, ok := s.engine.Job(id); ok {
		if st.State != JobDone {
			httpError(w, http.StatusConflict, fmt.Errorf("job %q is %s", id, st.State))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if st.Req.Multicore != nil {
			var res multicore.Result
			if err := json.Unmarshal(st.Result, &res); err != nil {
				httpError(w, http.StatusInternalServerError, err)
				return
			}
			fmt.Fprint(w, res.Report())
			return
		}
		var res sim.Result
		if err := json.Unmarshal(st.Result, &res); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		fmt.Fprint(w, CellReport(&res))
		return
	}
	if st, ok := s.engine.BatchJob(id); ok {
		if st.State != JobDone {
			httpError(w, http.StatusConflict, fmt.Errorf("batch %q is %s", id, st.State))
			return
		}
		m, err := s.engine.BatchMatrix(id)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, m.Report())
		return
	}
	httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if ready, reason := s.engine.Ready(); !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Metrics())
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Statusz())
}

// --- helpers ---------------------------------------------------------------

// submitError answers a failed submission. Backpressure rejections
// (full queue, unmeetable deadline) carry a Retry-After hint computed
// from the current queue depth and the recent per-job latency, so
// well-behaved clients back off for about as long as the congestion
// will actually take to clear.
func (s *Server) submitError(w http.ResponseWriter, err error) {
	code := submitStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.engine.RetryAfterSeconds()))
	}
	httpError(w, code, err)
}

func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDeadlineUnmeetable):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShutdown):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func jobHTTPStatus(st JobStatus) int {
	switch st.State {
	case JobDone:
		return http.StatusOK
	case JobFailed, JobQuarantined:
		return http.StatusInternalServerError
	default:
		return http.StatusAccepted
	}
}

func batchHTTPStatus(st BatchStatus) int {
	switch st.State {
	case JobDone:
		return http.StatusOK
	case JobFailed:
		return http.StatusInternalServerError
	default:
		return http.StatusAccepted
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func isTrue(s string) bool {
	switch strings.ToLower(s) {
	case "1", "true", "yes":
		return true
	}
	return false
}
