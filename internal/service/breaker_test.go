package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// clockBreaker builds a breaker on a fake clock so cooldown expiry is
// tested by advancing time, not sleeping through it.
func clockBreaker(failures int, latency, cooldown time.Duration) (*Breaker, *faultinject.Clock) {
	clk := faultinject.NewClock(time.Unix(1000, 0))
	return newBreaker("test", failures, latency, cooldown, clk.Now), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := clockBreaker(3, time.Second, time.Second)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if b.Record(0, boom); b.State() != BreakerClosed {
			t.Fatalf("open after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the run: two more failures must not trip.
	b.Record(0, nil)
	b.Record(0, boom)
	b.Record(0, boom)
	if b.State() != BreakerClosed {
		t.Fatal("tripped on a non-consecutive run of failures")
	}
	b.Record(0, boom)
	if b.State() != BreakerOpen {
		t.Fatal("did not trip on the third consecutive failure")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a caller before cooldown")
	}
	snap := b.Snapshot()
	if snap.State != "open" || snap.Trips != 1 || snap.LastError != "boom" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	b, clk := clockBreaker(1, time.Second, time.Second)
	b.Record(0, errors.New("boom"))
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not trip on first failure")
	}
	if b.Allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while the probe is in flight")
	}
	// Probe fails: back to open, full cooldown again.
	if b.Record(0, errors.New("still down")) {
		t.Fatal("failed probe reported recovery")
	}
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("failed probe did not re-open the breaker")
	}
	clk.Advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused after second cooldown")
	}
	// Probe succeeds: closed, and exactly this edge reports recovered.
	if !b.Record(0, nil) {
		t.Fatal("successful probe did not report recovery")
	}
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if b.Record(0, nil) {
		t.Fatal("steady-state success reported recovery")
	}
	if snap := b.Snapshot(); snap.Probes != 2 || snap.LastError != "" {
		t.Fatalf("snapshot after recovery = %+v", snap)
	}
}

func TestBreakerSlowSuccessIsFailure(t *testing.T) {
	b, _ := clockBreaker(2, 10*time.Millisecond, time.Second)
	b.Record(50*time.Millisecond, nil)
	b.Record(50*time.Millisecond, nil)
	if b.State() != BreakerOpen {
		t.Fatal("over-latency successes did not trip the breaker")
	}
	if snap := b.Snapshot(); snap.LastError == "" {
		t.Fatal("latency trip left no last_error")
	}
}

func TestBreakerStragglerSuccessCloses(t *testing.T) {
	// An operation admitted before the trip finishes successfully while
	// the breaker is open: the backend demonstrably answered, so the
	// breaker closes without waiting out the cooldown.
	b, _ := clockBreaker(1, time.Second, time.Hour)
	b.Record(0, errors.New("boom"))
	if b.State() != BreakerOpen {
		t.Fatal("did not trip")
	}
	if !b.Record(0, nil) {
		t.Fatal("straggler success did not report recovery")
	}
	if b.State() != BreakerClosed {
		t.Fatal("straggler success did not close the breaker")
	}
}

func TestBreakerNilIsAlwaysClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("nil breaker not pass-through")
	}
	if b.Record(time.Hour, errors.New("boom")) {
		t.Fatal("nil breaker reported recovery")
	}
	if snap := b.Snapshot(); snap.State != "closed" {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}
