package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/sim"
)

// fakeResultJSON builds a minimal valid result document distinguishable
// by tag.
func fakeResultJSON(t *testing.T, tag string) []byte {
	t.Helper()
	var r sim.Result
	if err := json.Unmarshal([]byte(`{"benchmark":"`+tag+`","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), &r); err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func testKey(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestCacheHitMissAccounting(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(testKey(1), fakeResultJSON(t, "a"))
	if got, ok := c.Get(testKey(1)); !ok || string(got) != string(fakeResultJSON(t, "a")) {
		t.Fatalf("lookup after put: %q, %v", got, ok)
	}
	c.Get(testKey(2)) // miss
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(testKey(1), fakeResultJSON(t, "a"))
	c.Put(testKey(2), fakeResultJSON(t, "b"))
	c.Get(testKey(1)) // make key 1 most recent
	c.Put(testKey(3), fakeResultJSON(t, "c"))
	if c.Len() != 2 {
		t.Fatalf("len = %d, want capacity 2", c.Len())
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Error("least-recently-used entry 2 survived eviction")
	}
	for _, k := range []int{1, 3} {
		if _, ok := c.Get(testKey(k)); !ok {
			t.Errorf("entry %d evicted, want kept", k)
		}
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := fakeResultJSON(t, "persisted")
	c1.Put(testKey(7), want)

	// A fresh cache over the same directory serves the entry from disk.
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(testKey(7))
	if !ok || string(got) != string(want) {
		t.Fatalf("disk entry: %q, %v", got, ok)
	}
	st := c2.Stats()
	if st.DiskHits != 1 {
		t.Errorf("disk hits = %d, want 1", st.DiskHits)
	}
	// Promoted to memory: second lookup is a memory hit, not another
	// disk read.
	if _, ok := c2.Get(testKey(7)); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("after promotion: %+v", st)
	}
}

func TestCacheCorruptDiskEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(9)
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, corrupt := range []string{
		"{truncated",
		`{"blocks":["A"],"avg_temp_k":[],"peak_temp_k":[]}`, // inconsistent vectors
	} {
		if err := os.WriteFile(p, []byte(corrupt), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Fatalf("corrupted entry %q served as a hit", corrupt)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("corrupted entry %q not removed: %v", corrupt, err)
		}
	}
	st := c.Stats()
	if st.Corrupt != 2 || st.Hits != 0 {
		t.Errorf("stats = %+v, want 2 corrupt, 0 hits", st)
	}
}

// TestCacheConcurrentAccess exercises the cache from many goroutines;
// the -race CI job runs this.
func TestCacheConcurrentAccess(t *testing.T) {
	c, err := NewCache(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := fakeResultJSON(t, "x")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := testKey(i % 16)
				if i%2 == 0 {
					c.Put(k, payload)
				} else {
					c.Get(k)
				}
				c.Contains(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("len = %d exceeds capacity", c.Len())
	}
}
