package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
)

// stubEngine builds an engine whose run function is replaced: it blocks
// until release is closed (if non-nil), counts executions, and returns
// a valid result document derived from the request.
func stubEngine(t *testing.T, cfg EngineConfig, release <-chan struct{}, runs *atomic.Int64) *Engine {
	t.Helper()
	e := NewEngine(cfg)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		if runs != nil {
			runs.Add(1)
		}
		if release != nil {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte(`{"benchmark":"` + req.Benchmark + `","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), nil
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	return e
}

func cellReq(bench string) Request {
	return Request{Benchmark: bench, Cycles: 100_000, Warmup: 10_000}
}

func TestRequestKeyStable(t *testing.T) {
	k1, err := cellReq("eon").Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cellReq("eon").Key()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || !isKey(k1) {
		t.Fatalf("keys %q / %q not stable hex SHA-256", k1, k2)
	}
	// Defaults and explicit values share a key.
	explicit := Request{Benchmark: "eon", Cycles: experiments.DefaultCycles}
	defaulted := Request{Benchmark: "eon"}
	ke, _ := explicit.Key()
	kd, _ := defaulted.Key()
	if ke != kd {
		t.Error("explicit default cycles and omitted cycles hash differently")
	}
	// Different techniques hash differently.
	other := cellReq("eon")
	other.Techniques.IQ = config.IQToggle
	ko, _ := other.Key()
	if ko == k1 {
		t.Error("different techniques share a key")
	}
}

func TestEngineSubmitRunsAndCaches(t *testing.T) {
	var runs atomic.Int64
	e := stubEngine(t, EngineConfig{Workers: 2, QueueDepth: 8}, nil, &runs)
	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Cached {
		t.Fatalf("first run: %+v", st)
	}

	// Second submission: served from cache, byte-identical, no new run.
	j2, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.Wait(context.Background(), j2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobDone || !st2.Cached {
		t.Fatalf("second run not served from cache: %+v", st2)
	}
	if !bytes.Equal(st.Result, st2.Result) {
		t.Error("cached result bytes differ from the original")
	}
	if runs.Load() != 1 {
		t.Errorf("%d runs for two identical submissions", runs.Load())
	}
	m := e.Metrics()
	if m.CacheHits != 1 || m.JobsCompleted != 1 {
		t.Errorf("metrics = %+v, want 1 cache hit / 1 completed", m)
	}
}

// TestEngineConcurrentSingleFlight submits the same request from many
// goroutines while the only worker is blocked: exactly one run must
// execute, and every submitter shares it. Runs under -race in CI.
func TestEngineConcurrentSingleFlight(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	e := stubEngine(t, EngineConfig{Workers: 1, QueueDepth: 8}, release, &runs)

	first, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobs[i], errs[i] = e.Submit(cellReq("eon"))
		}(i)
	}
	wg.Wait()
	close(release)
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if jobs[i] != first {
			t.Fatalf("submit %d got a distinct job: single-flight broken", i)
		}
	}
	if _, err := e.Wait(context.Background(), first.Key); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d runs for %d concurrent identical submissions", got, n+1)
	}
	if m := e.Metrics(); m.JobsDeduped != n {
		t.Errorf("deduped = %d, want %d", m.JobsDeduped, n)
	}
}

func TestEngineQueueFull(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := stubEngine(t, EngineConfig{Workers: 1, QueueDepth: 1}, release, nil)

	// First job occupies the worker, second fills the queue.
	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	if _, err := e.Submit(cellReq("gzip")); err != nil {
		t.Fatal(err)
	}
	_, err := e.Submit(cellReq("art"))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overfull submit: %v, want ErrQueueFull", err)
	}
}

func waitForRunning(t *testing.T, e *Engine) {
	t.Helper()
	for i := 0; i < 500; i++ {
		if e.Metrics().JobsRunning > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("no job entered the running state")
}

func TestEngineJobTimeout(t *testing.T) {
	release := make(chan struct{}) // never released: the stub blocks until ctx fires
	defer close(release)
	e := stubEngine(t, EngineConfig{Workers: 1, QueueDepth: 4, JobTimeout: 20 * time.Millisecond}, release, nil)
	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out job: %+v", st)
	}
	if m := e.Metrics(); m.JobsFailed != 1 {
		t.Errorf("failed = %d, want 1", m.JobsFailed)
	}
	// A failed key is retried on resubmission, not served from a cache.
	j2, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	if j2 == j {
		t.Error("failed job was replayed instead of re-enqueued")
	}
}

func TestEngineInvalidRequestRejected(t *testing.T) {
	e := stubEngine(t, EngineConfig{Workers: 1}, nil, nil)
	if _, err := e.Submit(cellReq("doom3")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestEngineShutdownDrainsRunning(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	e := NewEngine(EngineConfig{Workers: 1, QueueDepth: 4})
	done := make(chan struct{})
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		select {
		case <-release:
			return []byte(`{"benchmark":"x","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	running, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	queued, err := e.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release) // the running job completes during the drain
	}()
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := e.Shutdown(ctx); err != nil {
			t.Errorf("drain within deadline failed: %v", err)
		}
		close(done)
	}()
	<-done

	st, _ := e.Job(running.Key)
	if st.State != JobDone {
		t.Errorf("running job was not drained: %+v", st)
	}
	qst, _ := e.Job(queued.Key)
	if qst.State != JobFailed || !strings.Contains(qst.Error, "shutting down") {
		t.Errorf("queued job not failed fast at shutdown: %+v", qst)
	}
	if _, err := e.Submit(cellReq("art")); !errors.Is(err, ErrShutdown) {
		t.Errorf("submit after shutdown: %v", err)
	}
}

func TestEngineShutdownDeadlineCancelsRuns(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 1, QueueDepth: 4})
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		<-ctx.Done() // only a cancelled context ends this job
		return nil, ctx.Err()
	}
	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := e.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("shutdown = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("shutdown did not force-cancel the stuck job")
	}
	st, _ := e.Job(j.Key)
	if st.State != JobFailed {
		t.Errorf("stuck job after forced shutdown: %+v", st)
	}
}

func TestEngineBatchSubmitAggregates(t *testing.T) {
	var runs atomic.Int64
	e := stubEngine(t, EngineConfig{Workers: 4, QueueDepth: 16}, nil, &runs)
	breq := BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon", "gzip"}, Cycles: 100_000, Warmup: 10_000}
	b, err := e.SubmitBatch(breq)
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.WaitBatch(context.Background(), b.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || len(st.Cells) != 4 { // 2 benchmarks × 2 variants
		t.Fatalf("batch = %+v", st)
	}
	if runs.Load() != 4 {
		t.Errorf("%d runs for a 4-cell batch", runs.Load())
	}

	// The batch shares the cell cache: fig6's base/toggling cells for eon
	// are already cached, so a single-benchmark resubmission runs nothing.
	b2, err := e.SubmitBatch(BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon"}, Cycles: 100_000, Warmup: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.WaitBatch(context.Background(), b2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobDone {
		t.Fatalf("second batch: %+v", st2)
	}
	if runs.Load() != 4 {
		t.Errorf("cached cells re-ran: %d total runs", runs.Load())
	}
	for _, c := range st2.Cells {
		if !c.Cached {
			t.Errorf("cell %s/%s not marked cached", c.Benchmark, c.Variant)
		}
	}

	// Matrix assembly gives the paper-style report.
	m, err := e.BatchMatrix(b.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Report(); !strings.Contains(got, "Issue-queue") {
		t.Errorf("batch report missing title:\n%s", got)
	}
}

func TestEngineBatchRejectedWhenQueueCannotHoldIt(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := stubEngine(t, EngineConfig{Workers: 1, QueueDepth: 2}, release, nil)
	// fig6 × 2 benchmarks = 4 cells > queue 2 (+1 running).
	_, err := e.SubmitBatch(BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon", "gzip"}, Cycles: 100_000})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("oversized batch: %v, want ErrQueueFull", err)
	}
	if m := e.Metrics(); m.JobsQueued != 0 {
		t.Errorf("rejected batch left %d jobs enqueued", m.JobsQueued)
	}
}

func TestEngineUnknownExperiment(t *testing.T) {
	e := stubEngine(t, EngineConfig{Workers: 1}, nil, nil)
	_, err := e.SubmitBatch(BatchRequest{Experiment: "fig9"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

// TestEngineRunMatrixRealSim runs a tiny real matrix through the engine
// twice and checks the second pass is all cache hits with an identical
// report — the in-process path cmd/experiments -cache-dir uses.
func TestEngineRunMatrixRealSim(t *testing.T) {
	cache, err := NewCache(64, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineConfig{Workers: 2, QueueDepth: 64, Cache: cache})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	}()

	spec := experiments.Fig6(120_000, "eon")
	spec.Warmup = 20_000

	var prog1 bytes.Buffer
	m1, err := e.RunMatrix(context.Background(), spec, &prog1)
	if err != nil {
		t.Fatal(err)
	}
	var prog2 bytes.Buffer
	m2, err := e.RunMatrix(context.Background(), spec, &prog2)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Report() != m2.Report() {
		t.Error("cached matrix renders a different report")
	}
	if !strings.Contains(prog2.String(), "(cached)") {
		t.Errorf("second pass not served from cache:\n%s", prog2.String())
	}
	if strings.Contains(prog1.String(), "(cached)") {
		t.Errorf("first pass claims cache hits:\n%s", prog1.String())
	}

	// The engine matrix must match a direct experiments.Run byte for byte.
	direct, err := experiments.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Report() != m1.Report() {
		t.Errorf("engine report differs from direct run:\n--- engine ---\n%s--- direct ---\n%s", m1.Report(), direct.Report())
	}
}

func TestBatchAndCellKeysDisjoint(t *testing.T) {
	b := BatchRequest{Experiment: "fig6", Benchmarks: []string{"eon"}, Cycles: 100_000}
	bk, err := b.Key()
	if err != nil {
		t.Fatal(err)
	}
	_, cells, err := b.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		ck, err := c.Key()
		if err != nil {
			t.Fatal(err)
		}
		if ck == bk {
			t.Fatalf("cell key %s collides with batch key", ck)
		}
	}
	if len(cells) != 2 {
		t.Fatalf("fig6×eon expands to %d cells, want 2", len(cells))
	}
}
