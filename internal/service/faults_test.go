package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

// stubResult is a minimal valid result document for fault tests.
func stubResult(bench string) []byte {
	return []byte(`{"benchmark":"` + bench + `","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`)
}

// fastRetries shrinks the backoff knobs so retry tests settle in
// milliseconds.
func fastRetries(cfg EngineConfig) EngineConfig {
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 4 * time.Millisecond
	return cfg
}

func shutdownEngine(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e.Shutdown(ctx)
}

// TestEnginePanicIsolated: a panicking run fails only that attempt — the
// worker survives, the job retries and completes, and the engine keeps
// serving other work.
func TestEnginePanicIsolated(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8}))
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		if runs.Add(1) == 1 {
			panic("simulator bug: index out of range")
		}
		return stubResult(req.Benchmark), nil
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("job after one panic: %+v", st)
	}
	if st.Attempts != 2 || st.Panics != 1 {
		t.Errorf("attempts=%d panics=%d, want 2/1", st.Attempts, st.Panics)
	}
	if m := e.Metrics(); m.JobPanics != 1 {
		t.Errorf("JobPanics = %d, want 1", m.JobPanics)
	}
	// The worker that recovered the panic still serves new work.
	j2, err := e.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	if st2, err := e.Wait(context.Background(), j2.Key); err != nil || st2.State != JobDone {
		t.Fatalf("engine dead after panic: %+v, %v", st2, err)
	}
}

// TestEngineQuarantineAfterRepeatedPanics: a key that keeps panicking is
// quarantined with the stack in its error, and resubmitting it returns
// the poisoned job without another run.
func TestEngineQuarantineAfterRepeatedPanics(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, QuarantineAfter: 2}))
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		panic("deterministic crasher")
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQuarantined {
		t.Fatalf("job = %+v, want quarantined", st)
	}
	if !strings.Contains(st.Error, "quarantined after 2 panics") {
		t.Errorf("quarantine error = %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Errorf("quarantine error carries no stack trace: %q", st.Error)
	}
	if runs.Load() != 2 {
		t.Errorf("%d runs before quarantine, want 2", runs.Load())
	}
	m := e.Metrics()
	if m.JobsQuarantined != 1 || m.JobPanics != 2 || m.JobsFailed != 1 {
		t.Errorf("metrics = quarantined %d, panics %d, failed %d", m.JobsQuarantined, m.JobPanics, m.JobsFailed)
	}

	// Resubmission returns the poisoned job as-is: no new run.
	j2, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	if j2 != j {
		t.Error("quarantined key was re-enqueued")
	}
	if runs.Load() != 2 {
		t.Errorf("quarantined key ran again: %d runs", runs.Load())
	}
}

// TestEnginePanicCountSpansSubmissions: the per-key panic counter
// accumulates across separate submissions, so a crasher that fails
// between panics is still quarantined.
func TestEnginePanicCountSpansSubmissions(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, QuarantineAfter: 2}))
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		switch runs.Add(1) {
		case 2:
			return nil, errors.New("deterministic failure") // permanent: ends submission 1
		default:
			panic("crash")
		}
	}

	j1, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st1, err := e.Wait(context.Background(), j1.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st1.State != JobFailed || st1.Panics != 1 {
		t.Fatalf("first submission = %+v, want failed with 1 panic", st1)
	}

	// Second submission panics once more: key total hits 2 → quarantine.
	j2, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := e.Wait(context.Background(), j2.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != JobQuarantined {
		t.Fatalf("second submission = %+v, want quarantined", st2)
	}
	if runs.Load() != 3 {
		t.Errorf("%d total runs, want 3", runs.Load())
	}
}

// TestEngineTransientErrorRetried: injected transient I/O failures are
// retried with backoff until the run succeeds.
func TestEngineTransientErrorRetried(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8})) // MaxRetries default: 2
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		if runs.Add(1) <= 2 {
			return nil, fmt.Errorf("reading trace: %w", faultinject.ErrIO)
		}
		return stubResult(req.Benchmark), nil
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || st.Attempts != 3 {
		t.Fatalf("job = %+v, want done on attempt 3", st)
	}
	if m := e.Metrics(); m.JobsRetried != 2 {
		t.Errorf("JobsRetried = %d, want 2", m.JobsRetried)
	}
}

// TestEngineRetriesExhausted: a transient failure that never clears
// fails after MaxRetries+1 attempts with the attempt count in the error.
func TestEngineRetriesExhausted(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, MaxRetries: 1}))
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		return nil, faultinject.ErrIO
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "after 2 attempts") {
		t.Fatalf("job = %+v, want failure after 2 attempts", st)
	}
	if runs.Load() != 2 {
		t.Errorf("%d runs with MaxRetries=1, want 2", runs.Load())
	}
}

// TestEnginePermanentErrorNotRetried: deterministic simulator errors
// fail immediately — retrying them is waste.
func TestEnginePermanentErrorNotRetried(t *testing.T) {
	var runs atomic.Int64
	e := NewEngine(fastRetries(EngineConfig{Workers: 1, QueueDepth: 8}))
	defer shutdownEngine(t, e)
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		return nil, errors.New("benchmark trace malformed")
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || st.Attempts != 1 || runs.Load() != 1 {
		t.Fatalf("job = %+v after %d runs, want one failed attempt", st, runs.Load())
	}
	if m := e.Metrics(); m.JobsRetried != 0 {
		t.Errorf("JobsRetried = %d, want 0", m.JobsRetried)
	}
}

// TestEngineInjectorDrivesJobSite: the EngineConfig.Inject seam injects
// faults at the job-run site without touching the run function — one
// armed panic, then the real run proceeds on retry.
func TestEngineInjectorDrivesJobSite(t *testing.T) {
	inj := faultinject.New()
	inj.Arm(faultinject.SiteJobRun, faultinject.Outcome{Panic: "injected crash"})
	inj.Arm(faultinject.SiteJobRun, faultinject.Outcome{Err: faultinject.ErrIO})
	var runs atomic.Int64
	cfg := fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, Inject: inj})
	cfg.runFunc = func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		return stubResult(req.Benchmark), nil
	}
	e := NewEngine(cfg)
	defer shutdownEngine(t, e)

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	// Attempt 1 panics (injected), attempt 2 observes the injected
	// transient error, attempt 3 reaches the run function and succeeds.
	if st.State != JobDone || st.Attempts != 3 || st.Panics != 1 {
		t.Fatalf("job = %+v, want done on attempt 3 with 1 panic", st)
	}
	if runs.Load() != 1 {
		t.Errorf("run function executed %d times, want 1", runs.Load())
	}
	if got := inj.Fired(faultinject.SiteJobRun); got != 2 {
		t.Errorf("job.run site fired %d times, want 2", got)
	}
}

// journalCfg opens the journal under dir and returns an EngineConfig
// wired for replay with the given run function.
func journalCfg(t *testing.T, dir string, run func(ctx context.Context, req Request) ([]byte, error)) EngineConfig {
	t.Helper()
	jnl, recs, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastRetries(EngineConfig{Workers: 1, QueueDepth: 8, Journal: jnl, Replay: recs})
	cfg.runFunc = run
	return cfg
}

// waitJobDone polls for key to appear and settle as done on e —
// journal-replayed jobs are resubmitted asynchronously, so the job may
// not be registered yet when the poll starts.
func waitJobDone(t *testing.T, e *Engine, key string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := e.Job(key); ok {
			switch st.State {
			case JobDone:
				return st
			case JobFailed, JobQuarantined:
				t.Fatalf("job %s settled badly: %+v", key, st)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", key)
	return JobStatus{}
}

// TestEngineJournalReplaysInterruptedJobs simulates a crash: engine 1 is
// shut down by deadline with one job running and one queued, writing no
// terminal records for either; engine 2 opens the same journal, replays
// both submits, and completes them.
func TestEngineJournalReplaysInterruptedJobs(t *testing.T) {
	dir := t.TempDir()

	// Engine 1: jobs block until shutdown cancels them.
	cfg1 := journalCfg(t, dir, func(ctx context.Context, req Request) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	e1 := NewEngine(cfg1)
	runningJob, err := e1.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e1)
	queuedJob, err := e1.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if err := e1.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("interrupted shutdown = %v, want deadline exceeded", err)
	}
	cancel()

	// The journal holds both submits and no terminal records: both jobs
	// are pending for the next start.
	jnl, recs, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, quarantined := journal.Pending(recs)
	if len(pending) != 2 || len(quarantined) != 0 {
		t.Fatalf("after crash: %d pending, %d quarantined, want 2/0", len(pending), len(quarantined))
	}
	jnl.Close()

	// Engine 2: same journal dir, working runner. Both jobs replay to done.
	var runs atomic.Int64
	cfg2 := journalCfg(t, dir, func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		return stubResult(req.Benchmark), nil
	})
	e2 := NewEngine(cfg2)
	waitJobDone(t, e2, runningJob.Key)
	waitJobDone(t, e2, queuedJob.Key)
	if runs.Load() != 2 {
		t.Errorf("replay ran %d jobs, want 2", runs.Load())
	}
	if ready, _ := e2.Ready(); !ready {
		t.Error("engine not ready after replay settled")
	}
	shutdownEngine(t, e2)

	// Third open: the done records settled both jobs; nothing replays.
	_, recs3, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending3, _ := journal.Pending(recs3)
	if len(pending3) != 0 {
		t.Errorf("jobs still pending after a clean run: %+v", pending3)
	}
}

// TestEngineQuarantineSurvivesRestart: a quarantine marker written by
// one engine poisons the key in the next one — the job is not re-run
// even though the journal replay path resubmits pending work.
func TestEngineQuarantineSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	cfg1 := journalCfg(t, dir, func(ctx context.Context, req Request) ([]byte, error) {
		panic("poison")
	})
	cfg1.QuarantineAfter = 1
	e1 := NewEngine(cfg1)
	j, err := e1.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e1.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQuarantined {
		t.Fatalf("job = %+v, want quarantined", st)
	}
	shutdownEngine(t, e1)

	var runs atomic.Int64
	cfg2 := journalCfg(t, dir, func(ctx context.Context, req Request) ([]byte, error) {
		runs.Add(1)
		return stubResult(req.Benchmark), nil
	})
	cfg2.QuarantineAfter = 1
	e2 := NewEngine(cfg2)
	defer shutdownEngine(t, e2)

	// The restored marker answers directly; nothing is enqueued.
	j2, err := e2.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	if state := j2.snapshot().State; state != JobQuarantined {
		t.Fatalf("restarted engine re-admitted a quarantined key: %v", state)
	}
	if runs.Load() != 0 {
		t.Errorf("quarantined key ran %d times after restart", runs.Load())
	}
	st2, ok := e2.Job(j.Key)
	if !ok || st2.State != JobQuarantined || !strings.Contains(st2.Error, "quarantined") {
		t.Errorf("restored quarantine status = %+v", st2)
	}
}

// TestEngineShutdownPersistsFinalStates: a job that completes during the
// drain writes its done record before Shutdown returns, so a restart
// does not replay it.
func TestEngineShutdownPersistsFinalStates(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	cfg := journalCfg(t, dir, func(ctx context.Context, req Request) ([]byte, error) {
		select {
		case <-release:
			return stubResult(req.Benchmark), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	e := NewEngine(cfg)
	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release) // completes while the drain is in progress
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}

	_, recs, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pending, _ := journal.Pending(recs)
	if len(pending) != 0 {
		t.Errorf("drained job still pending after shutdown: %+v", pending)
	}
}
