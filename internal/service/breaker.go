// Circuit breakers for the engine's disk-backed dependencies (the
// result cache's disk layer and the job journal). A breaker trips open
// after a run of consecutive failures — where an over-latency success
// also counts as a failure, so a disk that still answers but has gone
// to seconds-per-write degrades instead of stalling every job — and
// recovers through the standard half-open probe: after the cooldown one
// caller is let through, success closes the breaker, failure re-opens
// it for another cooldown. See DESIGN.md, "Overload and degraded
// modes".
//
// Time flows through an injected now func (the faultinject clock seam),
// so cooldown expiry is testable without sleeping.
package service

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerSnapshot is the wire shape of a breaker, served in /metrics
// and /statusz.
type BreakerSnapshot struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Trips               uint64 `json:"trips"`
	Probes              uint64 `json:"probes"`
	LastError           string `json:"last_error,omitempty"`
}

// Breaker guards one backend. A nil *Breaker is always closed and
// records nothing, so call sites need no guards. Safe for concurrent
// use.
type Breaker struct {
	name          string
	failThreshold int           // consecutive failures that trip the breaker
	latThreshold  time.Duration // a slower success still counts as a failure; 0 disables
	cooldown      time.Duration // open → half-open delay
	now           func() time.Time

	mu       sync.Mutex
	state    BreakerState
	consec   int
	openedAt time.Time
	trips    uint64
	probes   uint64
	lastErr  string
}

// newBreaker builds a breaker; zero/negative knobs take the defaults
// (3 consecutive failures, 2s latency threshold, 2s cooldown).
func newBreaker(name string, failures int, latency, cooldown time.Duration, now func() time.Time) *Breaker {
	if failures <= 0 {
		failures = 3
	}
	if latency <= 0 {
		latency = 2 * time.Second
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{name: name, failThreshold: failures, latThreshold: latency, cooldown: cooldown, now: now}
}

// Allow reports whether the caller may touch the backend. In the open
// state it returns false until the cooldown has elapsed, then admits
// exactly one caller as the half-open probe; in half-open every caller
// but the in-flight probe is refused.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true
	default: // half-open: one probe is already out
		return false
	}
}

// Record reports one backend operation's outcome. err != nil is a
// failure; so is a success slower than the latency threshold. It
// returns true exactly when this outcome closed a non-closed breaker —
// the "recovered" edge the engine uses to re-journal outstanding state.
func (b *Breaker) Record(d time.Duration, err error) (recovered bool) {
	if b == nil {
		return false
	}
	fail := err != nil || (b.latThreshold > 0 && d > b.latThreshold)
	b.mu.Lock()
	defer b.mu.Unlock()
	if err != nil {
		b.lastErr = err.Error()
	} else if fail {
		b.lastErr = "slow: " + d.String()
	}
	switch b.state {
	case BreakerHalfOpen:
		if fail {
			b.tripLocked()
			return false
		}
		b.state = BreakerClosed
		b.consec = 0
		b.lastErr = ""
		return true
	case BreakerClosed:
		if !fail {
			b.consec = 0
			return false
		}
		b.consec++
		if b.consec >= b.failThreshold {
			b.tripLocked()
		}
		return false
	default: // open: a straggler finishing an operation started earlier
		if !fail {
			// Treat it as a free successful probe: the backend answered.
			b.state = BreakerClosed
			b.consec = 0
			b.lastErr = ""
			return true
		}
		return false
	}
}

// tripLocked opens the breaker; caller holds b.mu.
func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.trips++
	b.consec = 0
}

// State returns the current state, advancing open → half-open is left
// to Allow (State is a pure read).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the wire view of the breaker.
func (b *Breaker) Snapshot() BreakerSnapshot {
	if b == nil {
		return BreakerSnapshot{State: "closed"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               b.state.String(),
		ConsecutiveFailures: b.consec,
		Trips:               b.trips,
		Probes:              b.probes,
		LastError:           b.lastErr,
	}
}
