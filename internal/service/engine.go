// The job engine: content-addressed job submission with single-flight
// deduplication, a bounded queue with explicit rejection, per-job
// timeout/cancellation, worker-pool execution, and queryable job
// states. One Engine is shared by the HTTP daemon (cmd/pipethermd) and
// the in-process matrix path (cmd/experiments -cache-dir).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/sim"
)

// JobState is the lifecycle of a job: queued → running → done|failed.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// ErrQueueFull is returned by Submit when the bounded queue has no room
// — the engine's explicit 429-style backpressure signal.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShutdown is returned by Submit after Shutdown has begun, and used
// to fail jobs abandoned in the queue at shutdown.
var ErrShutdown = errors.New("service: engine shutting down")

// Job is one submitted cell. All mutable fields are guarded by the
// engine mutex; callers read them through Status snapshots or after
// Wait.
type Job struct {
	Key string
	Req Request

	state      JobState
	cached     bool
	resultJSON []byte
	err        error
	done       chan struct{} // closed on done/failed
}

// JobStatus is an immutable snapshot of a job, in the wire shape the
// HTTP API serves. Result holds the exact cached bytes, so identical
// requests always see byte-identical result JSON.
type JobStatus struct {
	Key    string          `json:"key"`
	State  JobState        `json:"state"`
	Cached bool            `json:"cached"`
	Req    Request         `json:"request"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Batch is one submitted experiment matrix, aggregating cell jobs.
type Batch struct {
	Key   string
	Spec  experiments.Spec
	cells []*Job

	state JobState
	err   error
	done  chan struct{}
}

// BatchStatus is the wire snapshot of a batch.
type BatchStatus struct {
	Key        string          `json:"key"`
	State      JobState        `json:"state"`
	Experiment string          `json:"experiment"`
	Error      string          `json:"error,omitempty"`
	Cells      []BatchCellInfo `json:"cells"`
}

// BatchCellInfo names one cell of a batch and its current state.
type BatchCellInfo struct {
	Key       string   `json:"key"`
	Benchmark string   `json:"benchmark"`
	Variant   string   `json:"variant"`
	State     JobState `json:"state"`
	Cached    bool     `json:"cached"`
}

// EngineConfig sizes an engine.
type EngineConfig struct {
	// Workers is the simulation worker count; <= 0 means one per CPU
	// (runner.Resolve semantics).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; <= 0 means 64.
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// JobTimeout cancels a single cell run after this long; <= 0 means
	// no per-job timeout.
	JobTimeout time.Duration
	// Cache is the result cache; nil means a small memory-only cache.
	Cache *Cache
}

// Metrics is the engine's counter snapshot, served at /metrics.
type Metrics struct {
	UptimeSeconds  float64    `json:"uptime_seconds"`
	JobsQueued     int        `json:"jobs_queued"`
	JobsRunning    int        `json:"jobs_running"`
	JobsCompleted  uint64     `json:"jobs_completed"`
	JobsFailed     uint64     `json:"jobs_failed"`
	JobsDeduped    uint64     `json:"jobs_deduped"`
	CacheHits      uint64     `json:"cache_hits"`
	CacheMisses    uint64     `json:"cache_misses"`
	CacheEntries   int        `json:"cache_entries"`
	CellsPerSecond float64    `json:"cells_per_second"`
	Cache          CacheStats `json:"cache"`

	// Runtime is the Go runtime health section: memory, GC, and
	// goroutine gauges for the serving process.
	Runtime RuntimeMetrics `json:"runtime"`
	// Utilization averages the per-cell pipeline utilization telemetry
	// over every cell this process simulated (cache hits are excluded:
	// their telemetry was accounted when they were first computed,
	// possibly by an earlier process sharing the cache directory).
	Utilization UtilizationMetrics `json:"utilization"`
}

// RuntimeMetrics is the Go runtime section of /metrics.
type RuntimeMetrics struct {
	Goroutines      int     `json:"goroutines"`
	NumCPU          int     `json:"num_cpu"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
}

// UtilizationMetrics is the mean of sim results' Utilization over the
// cells this engine simulated. Share vectors are element-wise means, so
// they still sum to ~1 when every cell had activity.
type UtilizationMetrics struct {
	Cells         uint64     `json:"cells"`
	IntQHalfOcc   [2]float64 `json:"intq_half_occupancy"`
	FPQHalfOcc    [2]float64 `json:"fpq_half_occupancy"`
	ALUGrantShare []float64  `json:"alu_grant_share"`
	RFReadShare   []float64  `json:"rf_read_share"`
}

// Engine runs jobs. Create with NewEngine, stop with Shutdown.
type Engine struct {
	cache      *Cache
	queue      chan *Job
	jobTimeout time.Duration

	mu      sync.Mutex
	jobs    map[string]*Job
	batches map[string]*Batch
	closed  bool

	closing atomic.Bool
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	start     time.Time
	running   atomic.Int64
	completed atomic.Uint64
	failed    atomic.Uint64
	deduped   atomic.Uint64

	// Utilization accumulator over freshly simulated cells (sums; the
	// Metrics snapshot divides by utilN). Guarded by utilMu, not the job
	// mutex: finish() folds results in from worker goroutines.
	utilMu  sync.Mutex
	utilN   uint64
	utilSum UtilizationMetrics

	// runCell executes one cell and returns its canonical result JSON.
	// Tests replace it with a controllable stub; production uses runCell.
	run func(ctx context.Context, req Request) ([]byte, error)
}

// NewEngine starts an engine with cfg.Workers simulation workers.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache := cfg.Cache
	if cache == nil {
		cache, _ = NewCache(128, "")
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cache:      cache,
		queue:      make(chan *Job, cfg.QueueDepth),
		jobTimeout: cfg.JobTimeout,
		jobs:       make(map[string]*Job),
		batches:    make(map[string]*Batch),
		baseCtx:    ctx,
		cancel:     cancel,
		start:      time.Now(),
		run:        runCell,
	}
	workers := runner.Resolve(cfg.Workers, 0)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		if e.closing.Load() {
			// Graceful shutdown drains *running* jobs; queued ones fail
			// fast so clients can resubmit elsewhere.
			e.finish(j, nil, ErrShutdown)
			continue
		}
		e.runJob(j)
	}
}

func (e *Engine) runJob(j *Job) {
	e.mu.Lock()
	j.state = JobRunning
	e.mu.Unlock()
	e.running.Add(1)
	defer e.running.Add(-1)

	ctx := e.baseCtx
	if e.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.jobTimeout)
		defer cancel()
	}
	data, err := e.run(ctx, j.Req)
	if err == nil {
		e.cache.Put(j.Key, data)
	}
	e.finish(j, data, err)
}

func (e *Engine) finish(j *Job, data []byte, err error) {
	e.mu.Lock()
	if err != nil {
		j.state, j.err = JobFailed, err
	} else {
		j.state, j.resultJSON = JobDone, data
	}
	e.mu.Unlock()
	if err != nil {
		e.failed.Add(1)
	} else {
		e.completed.Add(1)
		var r sim.Result
		if json.Unmarshal(data, &r) == nil {
			e.addUtilization(r.Utilization)
		}
	}
	close(j.done)
}

// addUtilization folds one freshly simulated cell's utilization
// telemetry into the engine-wide accumulator behind /metrics.
func (e *Engine) addUtilization(u pipeline.Utilization) {
	e.utilMu.Lock()
	defer e.utilMu.Unlock()
	e.utilN++
	for h := 0; h < 2; h++ {
		e.utilSum.IntQHalfOcc[h] += u.IntQHalfOcc[h]
		e.utilSum.FPQHalfOcc[h] += u.FPQHalfOcc[h]
	}
	e.utilSum.ALUGrantShare = addVec(e.utilSum.ALUGrantShare, u.ALUGrantShare)
	e.utilSum.RFReadShare = addVec(e.utilSum.RFReadShare, u.RFReadShare)
}

// addVec accumulates b into a element-wise, growing a as needed.
func addVec(a, b []float64) []float64 {
	for len(a) < len(b) {
		a = append(a, 0)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// runCell executes one simulation cell on config.Default() with the
// request's plan/techniques and returns the canonical result JSON.
func runCell(ctx context.Context, req Request) ([]byte, error) {
	req = req.Normalize()
	cfg := config.Default()
	cfg.Plan = req.Plan
	cfg.Techniques = req.Techniques
	s, err := sim.NewByName(cfg, req.Benchmark)
	if err != nil {
		return nil, err
	}
	s.WarmupInstructions = req.Warmup
	r, err := s.RunCyclesContext(ctx, req.Cycles)
	if err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// Submit registers the request and returns its job. The fast paths, in
// order: an identical job already queued or running is shared
// (single-flight); a cached result completes the job immediately; a
// known done job is returned as-is. Otherwise the job is enqueued, or
// ErrQueueFull is returned when the queue is at capacity. A previously
// failed key is re-enqueued (failures are not cached).
func (e *Engine) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = req.Normalize()
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(key, req)
}

func (e *Engine) submitLocked(key string, req Request) (*Job, error) {
	if e.closed {
		return nil, ErrShutdown
	}
	if j, ok := e.jobs[key]; ok && (j.state == JobQueued || j.state == JobRunning) {
		e.deduped.Add(1)
		return j, nil
	}
	if data, ok := e.cache.Get(key); ok {
		j := &Job{Key: key, Req: req, state: JobDone, cached: true, resultJSON: data, done: make(chan struct{})}
		close(j.done)
		e.jobs[key] = j
		return j, nil
	}
	if j, ok := e.jobs[key]; ok && j.state == JobDone {
		// Done but evicted from the cache: still serve the job's bytes.
		return j, nil
	}
	j := &Job{Key: key, Req: req, state: JobQueued, done: make(chan struct{})}
	select {
	case e.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	e.jobs[key] = j
	return j, nil
}

// SubmitBatch expands the batch into cell jobs and registers an
// aggregate batch job. All cells are admitted atomically: if the free
// queue capacity cannot hold every cell that actually needs to run, the
// whole batch is rejected with ErrQueueFull and nothing is enqueued.
func (e *Engine) SubmitBatch(breq BatchRequest) (*Batch, error) {
	key, err := breq.Key()
	if err != nil {
		return nil, err
	}
	spec, cells, err := breq.Cells()
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrShutdown
	}
	if b, ok := e.batches[key]; ok && b.state != JobFailed {
		e.deduped.Add(1)
		return b, nil
	}

	// Admission check: count cells that would need a queue slot.
	need := 0
	keys := make([]string, len(cells))
	for i, c := range cells {
		k, err := c.Key()
		if err != nil {
			return nil, err
		}
		keys[i] = k
		j, known := e.jobs[k]
		inFlight := known && (j.state == JobQueued || j.state == JobRunning || j.state == JobDone)
		if !inFlight && !e.cache.Contains(k) {
			need++
		}
	}
	if need > cap(e.queue)-len(e.queue) {
		return nil, ErrQueueFull
	}

	b := &Batch{Key: key, Spec: spec, state: JobQueued, done: make(chan struct{})}
	b.cells = make([]*Job, len(cells))
	for i, c := range cells {
		j, err := e.submitLocked(keys[i], c)
		if err != nil {
			// Cannot happen after the admission check, but fail closed.
			b.state, b.err = JobFailed, err
			close(b.done)
			e.batches[key] = b
			return nil, err
		}
		b.cells[i] = j
	}
	e.batches[key] = b
	go e.aggregate(b)
	return b, nil
}

// aggregate waits for every cell of the batch and settles the batch
// state: failed with the first (lowest-indexed) cell error, else done.
func (e *Engine) aggregate(b *Batch) {
	for _, j := range b.cells {
		<-j.done
	}
	e.mu.Lock()
	b.state = JobDone
	for _, j := range b.cells {
		if j.err != nil {
			b.state, b.err = JobFailed, j.err
			break
		}
	}
	e.mu.Unlock()
	close(b.done)
}

// Job returns a snapshot of the job for key. Unknown in-memory keys
// fall back to the cache (content-addressed, so a daemon restarted over
// a warm disk cache still answers for completed jobs).
func (e *Engine) Job(key string) (JobStatus, bool) {
	e.mu.Lock()
	j, ok := e.jobs[key]
	if ok {
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, true
	}
	e.mu.Unlock()
	if !isKey(key) {
		return JobStatus{}, false
	}
	if data, ok := e.cache.Get(key); ok {
		return JobStatus{Key: key, State: JobDone, Cached: true, Result: data}, true
	}
	return JobStatus{}, false
}

func (e *Engine) statusLocked(j *Job) JobStatus {
	st := JobStatus{Key: j.Key, State: j.state, Cached: j.cached, Req: j.Req}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone {
		st.Result = j.resultJSON
	}
	return st
}

// BatchJob returns a snapshot of the batch for key.
func (e *Engine) BatchJob(key string) (BatchStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.batches[key]
	if !ok {
		return BatchStatus{}, false
	}
	return e.batchStatusLocked(b), true
}

func (e *Engine) batchStatusLocked(b *Batch) BatchStatus {
	st := BatchStatus{Key: b.Key, State: b.state, Experiment: b.Spec.ID}
	if b.err != nil {
		st.Error = b.err.Error()
	}
	st.Cells = make([]BatchCellInfo, len(b.cells))
	for i, j := range b.cells {
		st.Cells[i] = BatchCellInfo{
			Key: j.Key, Benchmark: j.Req.Benchmark,
			Variant: variantName(b.Spec, i), State: j.state, Cached: j.cached,
		}
	}
	return st
}

func variantName(spec experiments.Spec, cellIndex int) string {
	if len(spec.Variants) == 0 {
		return ""
	}
	return spec.Variants[cellIndex%len(spec.Variants)].Name
}

// Wait blocks until the job for key settles or ctx is done, and returns
// the settled snapshot.
func (e *Engine) Wait(ctx context.Context, key string) (JobStatus, error) {
	e.mu.Lock()
	j, ok := e.jobs[key]
	e.mu.Unlock()
	if !ok {
		if st, ok := e.Job(key); ok { // cache fallback
			return st, nil
		}
		return JobStatus{}, fmt.Errorf("service: unknown job %q", key)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked(j), nil
}

// WaitBatch blocks until the batch settles or ctx is done.
func (e *Engine) WaitBatch(ctx context.Context, key string) (BatchStatus, error) {
	e.mu.Lock()
	b, ok := e.batches[key]
	e.mu.Unlock()
	if !ok {
		return BatchStatus{}, fmt.Errorf("service: unknown batch %q", key)
	}
	select {
	case <-b.done:
	case <-ctx.Done():
		return BatchStatus{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batchStatusLocked(b), nil
}

// BatchMatrix assembles a settled done batch into an experiments.Matrix
// (cells in serial iteration order, results decoded from the cached
// JSON), ready for the paper-style report renderers.
func (e *Engine) BatchMatrix(key string) (*experiments.Matrix, error) {
	e.mu.Lock()
	b, ok := e.batches[key]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("service: unknown batch %q", key)
	}
	if b.state != JobDone {
		e.mu.Unlock()
		return nil, fmt.Errorf("service: batch %q is %s", key, b.state)
	}
	spec := b.Spec
	cells := make([]*Job, len(b.cells))
	copy(cells, b.cells)
	e.mu.Unlock()

	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	for i, j := range cells {
		var r sim.Result
		if err := json.Unmarshal(j.resultJSON, &r); err != nil {
			return nil, fmt.Errorf("service: batch %q cell %d: %w", key, i, err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
	}
	return m, nil
}

// RunMatrix runs an experiment spec through the engine: every cell is
// submitted (cached cells settle instantly) and awaited in serial
// order, so progress lines and the assembled Matrix are deterministic.
// This is the path cmd/experiments -cache-dir takes.
func (e *Engine) RunMatrix(ctx context.Context, spec experiments.Spec, w io.Writer) (*experiments.Matrix, error) {
	cells := SpecCells(spec)
	jobs := make([]*Job, len(cells))
	for i, c := range cells {
		j, err := e.Submit(c)
		if err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", c.Benchmark, variantName(spec, i), err)
		}
		jobs[i] = j
	}
	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	prog := runner.NewProgress(w, len(cells))
	for i, j := range jobs {
		st, err := e.Wait(ctx, j.Key)
		if err != nil {
			return nil, err
		}
		if st.State != JobDone {
			return nil, fmt.Errorf("service: %s/%s: %s", j.Req.Benchmark, variantName(spec, i), st.Error)
		}
		var r sim.Result
		if err := json.Unmarshal(st.Result, &r); err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", j.Req.Benchmark, variantName(spec, i), err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
		note := ""
		if st.Cached {
			note = " (cached)"
		}
		prog.Step("%s %-9s %-24s IPC=%.3f stalls=%d%s", spec.ID, j.Req.Benchmark, variantName(spec, i), r.IPC, r.Stalls, note)
	}
	return m, nil
}

// Metrics returns the engine counter snapshot.
func (e *Engine) Metrics() Metrics {
	cs := e.cache.Stats()
	up := time.Since(e.start).Seconds()
	completed := e.completed.Load()
	cps := 0.0
	if up > 0 {
		cps = float64(completed) / up
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Metrics{
		UptimeSeconds:  up,
		JobsQueued:     len(e.queue),
		JobsRunning:    int(e.running.Load()),
		JobsCompleted:  completed,
		JobsFailed:     e.failed.Load(),
		JobsDeduped:    e.deduped.Load(),
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,
		CacheEntries:   cs.Entries,
		CellsPerSecond: cps,
		Cache:          cs,
		Runtime: RuntimeMetrics{
			Goroutines:      runtime.NumGoroutine(),
			NumCPU:          runtime.NumCPU(),
			HeapAllocBytes:  ms.HeapAlloc,
			HeapSysBytes:    ms.HeapSys,
			TotalAllocBytes: ms.TotalAlloc,
			GCCycles:        ms.NumGC,
			GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		},
		Utilization: e.utilizationSnapshot(),
	}
}

// utilizationSnapshot averages the accumulated per-cell telemetry.
func (e *Engine) utilizationSnapshot() UtilizationMetrics {
	e.utilMu.Lock()
	defer e.utilMu.Unlock()
	out := UtilizationMetrics{Cells: e.utilN}
	if e.utilN == 0 {
		return out
	}
	n := float64(e.utilN)
	for h := 0; h < 2; h++ {
		out.IntQHalfOcc[h] = e.utilSum.IntQHalfOcc[h] / n
		out.FPQHalfOcc[h] = e.utilSum.FPQHalfOcc[h] / n
	}
	out.ALUGrantShare = scaleVec(e.utilSum.ALUGrantShare, 1/n)
	out.RFReadShare = scaleVec(e.utilSum.RFReadShare, 1/n)
	return out
}

// scaleVec returns a copy of v with every element multiplied by k.
func scaleVec(v []float64, k float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}

// Shutdown stops accepting submissions, lets running jobs drain, and
// fails jobs still queued. If ctx expires before the drain completes,
// in-flight runs are cancelled (they stop at their next sensor
// interval) and Shutdown returns ctx's error; otherwise nil.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.closing.Store(true)
	close(e.queue) // Submit holds the mutex when sending, so this is safe
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		e.cancel() // abort in-flight runs
		<-done
	}
	e.cancel()
	return err
}
