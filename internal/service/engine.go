// The job engine: content-addressed job submission with single-flight
// deduplication, a bounded queue with explicit rejection, per-job
// timeout/cancellation, worker-pool execution, and queryable job
// states. One Engine is shared by the HTTP daemon (cmd/pipethermd) and
// the in-process matrix path (cmd/experiments -cache-dir).
//
// Fault tolerance: every job attempt runs under recover(), so a
// panicking cell fails only that job (the stack lands in
// JobStatus.Error) while the workers keep serving; a key that keeps
// panicking is quarantined — failed permanently, never retried — after
// QuarantineAfter attempts; transient failures (job timeout, injected
// I/O errors) retry with exponential backoff and jitter up to
// MaxRetries; and with a journal attached, submit/done/failed
// transitions are WAL-logged so queued and interrupted jobs survive a
// crash and are replayed on the next start (see DESIGN.md, "Failure
// model and recovery").
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/multicore"
	"repro/internal/pipeline"
	"repro/internal/runner"
	"repro/internal/sim"
)

// JobState is the lifecycle of a job: queued → running →
// done|failed|quarantined.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobQuarantined marks a job key that panicked QuarantineAfter
	// times: permanently failed, never re-enqueued, its poison marker
	// journaled across restarts.
	JobQuarantined JobState = "quarantined"
)

// ErrQueueFull is returned by Submit when the bounded queue has no room
// — the engine's explicit 429-style backpressure signal.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShutdown is returned by Submit after Shutdown has begun, and used
// to fail jobs abandoned in the queue at shutdown.
var ErrShutdown = errors.New("service: engine shutting down")

// Job is one submitted cell. All mutable fields are guarded by the
// engine mutex; callers read them through Status snapshots or after
// Wait.
type Job struct {
	Key string
	Req Request

	state      JobState
	cached     bool
	resultJSON []byte
	err        error
	attempts   int           // execution attempts this submission (1 = no retry)
	panics     int           // recovered panics for this job's key
	done       chan struct{} // closed on done/failed/quarantined
}

// JobStatus is an immutable snapshot of a job, in the wire shape the
// HTTP API serves. Result holds the exact cached bytes, so identical
// requests always see byte-identical result JSON.
type JobStatus struct {
	Key      string          `json:"key"`
	State    JobState        `json:"state"`
	Cached   bool            `json:"cached"`
	Req      Request         `json:"request"`
	Attempts int             `json:"attempts,omitempty"`
	Panics   int             `json:"panics,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// Batch is one submitted experiment matrix, aggregating cell jobs.
type Batch struct {
	Key   string
	Spec  experiments.Spec
	cells []*Job

	state JobState
	err   error
	done  chan struct{}
}

// BatchStatus is the wire snapshot of a batch.
type BatchStatus struct {
	Key        string          `json:"key"`
	State      JobState        `json:"state"`
	Experiment string          `json:"experiment"`
	Error      string          `json:"error,omitempty"`
	Cells      []BatchCellInfo `json:"cells"`
}

// BatchCellInfo names one cell of a batch and its current state.
type BatchCellInfo struct {
	Key       string   `json:"key"`
	Benchmark string   `json:"benchmark"`
	Variant   string   `json:"variant"`
	State     JobState `json:"state"`
	Cached    bool     `json:"cached"`
}

// EngineConfig sizes an engine.
type EngineConfig struct {
	// Workers is the simulation worker count; <= 0 means one per CPU
	// (runner.Resolve semantics).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; <= 0 means 64.
	// Submissions beyond it fail with ErrQueueFull.
	QueueDepth int
	// JobTimeout cancels a single cell run after this long; <= 0 means
	// no per-job timeout. A timed-out attempt counts as transient and
	// is retried up to MaxRetries.
	JobTimeout time.Duration
	// Cache is the result cache; nil means a small memory-only cache.
	Cache *Cache

	// MaxRetries bounds retries of transient failures (timeouts,
	// injected I/O errors) per submission: 0 means the default of 2
	// (three attempts total), negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff delay (doubled per retry, with
	// jitter); <= 0 means 50ms.
	RetryBase time.Duration
	// RetryMax caps the backoff delay; <= 0 means 2s.
	RetryMax time.Duration
	// QuarantineAfter is how many recovered panics a job key may
	// accumulate before it is quarantined; <= 0 means 3.
	QuarantineAfter int

	// Journal, when non-nil, makes job transitions durable: submits are
	// WAL-logged before enqueue, terminal states on settle, and Replay
	// (the records journal.Open returned) is recovered at startup —
	// pending jobs are resubmitted, quarantine markers restored, and
	// the log compacted.
	Journal *journal.Journal
	Replay  []journal.Record

	// Inject is the chaos-testing seam (internal/faultinject); nil — the
	// production case — disarms every site.
	Inject *faultinject.Injector

	// runFunc replaces the cell runner before workers and journal
	// replay start. In-package tests only.
	runFunc func(ctx context.Context, req Request) ([]byte, error)
}

// Metrics is the engine's counter snapshot, served at /metrics.
type Metrics struct {
	UptimeSeconds   float64    `json:"uptime_seconds"`
	JobsQueued      int        `json:"jobs_queued"`
	JobsRunning     int        `json:"jobs_running"`
	JobsCompleted   uint64     `json:"jobs_completed"`
	JobsFailed      uint64     `json:"jobs_failed"`
	JobsDeduped     uint64     `json:"jobs_deduped"`
	JobsRetried     uint64     `json:"jobs_retried"`
	JobPanics       uint64     `json:"job_panics"`
	JobsQuarantined uint64     `json:"jobs_quarantined"`
	JournalErrors   uint64     `json:"journal_errors"`
	Ready           bool       `json:"ready"`
	CacheHits       uint64     `json:"cache_hits"`
	CacheMisses     uint64     `json:"cache_misses"`
	CacheEntries    int        `json:"cache_entries"`
	CellsPerSecond  float64    `json:"cells_per_second"`
	Cache           CacheStats `json:"cache"`

	// Runtime is the Go runtime health section: memory, GC, and
	// goroutine gauges for the serving process.
	Runtime RuntimeMetrics `json:"runtime"`
	// Utilization averages the per-cell pipeline utilization telemetry
	// over every cell this process simulated (cache hits are excluded:
	// their telemetry was accounted when they were first computed,
	// possibly by an earlier process sharing the cache directory).
	Utilization UtilizationMetrics `json:"utilization"`
	// Multicore aggregates the multi-core scheduling runs this process
	// computed, with the same cache-hit exclusion as Utilization.
	Multicore MulticoreMetrics `json:"multicore"`
}

// RuntimeMetrics is the Go runtime section of /metrics.
type RuntimeMetrics struct {
	Goroutines      int     `json:"goroutines"`
	NumCPU          int     `json:"num_cpu"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
}

// UtilizationMetrics is the mean of sim results' Utilization over the
// cells this engine simulated. Share vectors are element-wise means, so
// they still sum to ~1 when every cell had activity.
type UtilizationMetrics struct {
	Cells         uint64     `json:"cells"`
	IntQHalfOcc   [2]float64 `json:"intq_half_occupancy"`
	FPQHalfOcc    [2]float64 `json:"fpq_half_occupancy"`
	ALUGrantShare []float64  `json:"alu_grant_share"`
	RFReadShare   []float64  `json:"rf_read_share"`
}

// MulticoreMetrics aggregates the multi-core scheduling runs this
// engine computed. Per-core vectors are indexed by core id and sized to
// the widest run seen: utilization and average temperature are means
// over the runs that had that core, peak temperature is the running
// maximum.
type MulticoreMetrics struct {
	Runs            uint64    `json:"runs"`
	CoolingStalls   uint64    `json:"cooling_stalls"`
	Migrations      uint64    `json:"migrations"`
	CoreUtilization []float64 `json:"core_utilization,omitempty"`
	CoreAvgTempK    []float64 `json:"core_avg_temp_k,omitempty"`
	CorePeakTempK   []float64 `json:"core_peak_temp_k,omitempty"`
}

// Engine runs jobs. Create with NewEngine, stop with Shutdown.
type Engine struct {
	cache      *Cache
	queue      chan *Job
	jobTimeout time.Duration

	// Fault-tolerance knobs (see EngineConfig).
	maxRetries      int
	retryBase       time.Duration
	retryMax        time.Duration
	quarantineAfter int
	journal         *journal.Journal
	inj             *faultinject.Injector

	mu          sync.Mutex
	jobs        map[string]*Job
	batches     map[string]*Batch
	panicCounts map[string]int // recovered panics per job key
	closed      bool

	closing  atomic.Bool
	draining atomic.Bool // readiness off ahead of shutdown (BeginDrain)
	replayed atomic.Bool // journal replay finished (true when no journal)
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	start       time.Time
	running     atomic.Int64
	completed   atomic.Uint64
	failed      atomic.Uint64
	deduped     atomic.Uint64
	retries     atomic.Uint64
	panicsTotal atomic.Uint64
	quarantined atomic.Uint64
	journalErrs atomic.Uint64

	// Utilization accumulator over freshly simulated cells (sums; the
	// Metrics snapshot divides by utilN). Guarded by utilMu, not the job
	// mutex: finish() folds results in from worker goroutines.
	utilMu  sync.Mutex
	utilN   uint64
	utilSum UtilizationMetrics

	// Multicore accumulator over freshly computed scheduling runs.
	// mcSum's per-core vectors hold sums (peaks hold maxima); mcCoreN[i]
	// counts the runs wide enough to include core i, so the snapshot can
	// average mixed core counts per slot.
	mcMu    sync.Mutex
	mcSum   MulticoreMetrics
	mcCoreN []uint64

	// runCell executes one cell and returns its canonical result JSON.
	// Tests replace it with a controllable stub; production uses runCell.
	run func(ctx context.Context, req Request) ([]byte, error)
}

// NewEngine starts an engine with cfg.Workers simulation workers. With
// a journal configured, replayed pending jobs are resubmitted in the
// background; Ready reports false until that finishes.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache := cfg.Cache
	if cache == nil {
		cache, _ = NewCache(128, "")
	}
	cache.SetInjector(cfg.Inject)
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cache:           cache,
		queue:           make(chan *Job, cfg.QueueDepth),
		jobTimeout:      cfg.JobTimeout,
		maxRetries:      cfg.MaxRetries,
		retryBase:       cfg.RetryBase,
		retryMax:        cfg.RetryMax,
		quarantineAfter: cfg.QuarantineAfter,
		journal:         cfg.Journal,
		inj:             cfg.Inject,
		jobs:            make(map[string]*Job),
		batches:         make(map[string]*Batch),
		panicCounts:     make(map[string]int),
		baseCtx:         ctx,
		cancel:          cancel,
		start:           time.Now(),
		run:             runCell,
	}
	if cfg.runFunc != nil {
		e.run = cfg.runFunc
	}
	e.replayed.Store(true)
	workers := runner.Resolve(cfg.Workers, 0)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	e.recoverJournal(cfg.Replay)
	return e
}

// recover restores journaled state: quarantine markers become
// quarantined jobs, the log is compacted to the live set, and pending
// submits are resubmitted in the background (readiness is withheld
// until they are all enqueued; their results then arrive through the
// normal worker/cache path).
func (e *Engine) recoverJournal(recs []journal.Record) {
	if e.journal == nil {
		return
	}
	pending, quarantined := journal.Pending(recs)
	for _, rec := range quarantined {
		var req Request
		json.Unmarshal(rec.Req, &req) // best-effort: old markers may lack the request
		j := &Job{Key: rec.Key, Req: req, state: JobQuarantined,
			err: errors.New(rec.Err), panics: e.quarantineAfter, done: make(chan struct{})}
		close(j.done)
		e.jobs[rec.Key] = j
		e.panicCounts[rec.Key] = e.quarantineAfter
	}
	compact := append(append([]journal.Record{}, quarantined...), pending...)
	if err := e.journal.Rewrite(compact); err != nil {
		e.journalErrs.Add(1)
	}
	if len(pending) > 0 {
		e.replayed.Store(false)
		go e.replayPending(pending)
	}
}

// replayPending resubmits journaled pending jobs, blocking past a full
// queue (10ms probes) rather than dropping recovered work.
func (e *Engine) replayPending(pending []journal.Record) {
	defer e.replayed.Store(true)
	for _, rec := range pending {
		var req Request
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			continue // unreadable request: nothing to replay
		}
		for {
			j, err := e.Submit(req)
			if err == nil {
				// Replay-from-cache: the run completed before the crash
				// but its done record was lost; settle the journal now.
				e.mu.Lock()
				cachedDone := j.state == JobDone && j.cached
				e.mu.Unlock()
				if cachedDone {
					e.journalAppend(journal.Record{Op: journal.OpDone, Key: j.Key})
				}
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				break // invalid under current config, or engine shut down
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-e.baseCtx.Done():
				return
			}
		}
	}
}

// journalAppend WAL-logs one transition. Journal failures degrade
// durability, not availability: they are counted, never fatal.
func (e *Engine) journalAppend(r journal.Record) {
	if e.journal == nil {
		return
	}
	if err := e.journal.Append(r); err != nil {
		e.journalErrs.Add(1)
	}
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		if e.closing.Load() {
			// Graceful shutdown drains *running* jobs; queued ones fail
			// fast so clients can resubmit elsewhere.
			e.finish(j, nil, ErrShutdown)
			continue
		}
		e.runJob(j)
	}
}

func (e *Engine) runJob(j *Job) {
	e.mu.Lock()
	j.state = JobRunning
	e.mu.Unlock()
	e.running.Add(1)
	defer e.running.Add(-1)

	for attempt := 0; ; attempt++ {
		e.mu.Lock()
		j.attempts = attempt + 1
		e.mu.Unlock()
		data, err := e.attempt(j)
		if err == nil {
			e.cache.Put(j.Key, data)
			e.finish(j, data, nil)
			return
		}
		var pe *panicError
		if errors.As(err, &pe) {
			// A panic fails only this job; the worker survives. The
			// per-key counter quarantines deterministic crashers instead
			// of retrying them forever.
			e.panicsTotal.Add(1)
			e.mu.Lock()
			j.panics++
			e.panicCounts[j.Key]++
			n := e.panicCounts[j.Key]
			e.mu.Unlock()
			if n >= e.quarantineAfter {
				e.quarantine(j, err)
				return
			}
		} else if isShutdownErr(err) || !transient(err) {
			e.finish(j, nil, err)
			return
		} else if attempt >= e.maxRetries {
			e.finish(j, nil, fmt.Errorf("after %d attempts: %w", attempt+1, err))
			return
		}
		if e.closing.Load() || !e.backoff(attempt) {
			e.finish(j, nil, err)
			return
		}
		e.retries.Add(1)
	}
}

// attempt executes the job once with panic isolation: a panicking run
// (simulator bug, injected fault) is converted into a *panicError
// carrying the goroutine stack instead of killing the worker.
func (e *Engine) attempt(j *Job) (data []byte, err error) {
	ctx := e.baseCtx
	if e.jobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.jobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			data, err = nil, &panicError{val: r, stack: debug.Stack()}
		}
	}()
	if ferr := e.inj.Fire(faultinject.SiteJobRun); ferr != nil {
		return nil, ferr
	}
	return e.run(ctx, j.Req)
}

// panicError is a recovered worker panic in error form; the stack it
// carries surfaces in JobStatus.Error.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", p.val, p.stack)
}

// transient reports whether an attempt error is worth retrying: job
// timeouts and injected transient I/O failures. Simulator and
// validation errors are deterministic, so retrying them is waste.
func transient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, faultinject.ErrIO)
}

// isShutdownErr reports whether the failure is shutdown interruption
// rather than a property of the job — such jobs keep their pending
// journal record so a restart replays them.
func isShutdownErr(err error) bool {
	return errors.Is(err, ErrShutdown) || errors.Is(err, context.Canceled)
}

// backoff sleeps the exponential-backoff delay for attempt (0-based)
// with jitter in [d/2, d], returning false if the engine shut down
// while sleeping.
func (e *Engine) backoff(attempt int) bool {
	d := e.retryBase << uint(attempt)
	if d <= 0 || d > e.retryMax {
		d = e.retryMax
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.baseCtx.Done():
		return false
	}
}

// quarantine permanently fails a job whose key keeps panicking and
// journals the poison marker so it survives restarts.
func (e *Engine) quarantine(j *Job, cause error) {
	e.mu.Lock()
	j.state = JobQuarantined
	j.err = fmt.Errorf("quarantined after %d panics: %w", j.panics, cause)
	msg := j.err.Error()
	e.mu.Unlock()
	e.quarantined.Add(1)
	e.failed.Add(1)
	rec := journal.Record{Op: journal.OpQuarantined, Key: j.Key, Err: msg}
	if c, err := j.Req.Canonical(); err == nil {
		rec.Req = c
	}
	e.journalAppend(rec)
	close(j.done)
}

func (e *Engine) finish(j *Job, data []byte, err error) {
	e.mu.Lock()
	if err != nil {
		j.state, j.err = JobFailed, err
	} else {
		j.state, j.resultJSON = JobDone, data
	}
	e.mu.Unlock()
	if err != nil {
		e.failed.Add(1)
		// Shutdown-interrupted jobs keep their pending journal record
		// so the next start replays them; genuine failures are terminal.
		if !isShutdownErr(err) && !e.closing.Load() {
			e.journalAppend(journal.Record{Op: journal.OpFailed, Key: j.Key, Err: err.Error()})
		}
	} else {
		e.completed.Add(1)
		e.journalAppend(journal.Record{Op: journal.OpDone, Key: j.Key})
		if j.Req.Multicore != nil {
			var r multicore.Result
			if json.Unmarshal(data, &r) == nil {
				e.addMulticore(&r)
			}
		} else {
			var r sim.Result
			if json.Unmarshal(data, &r) == nil {
				e.addUtilization(r.Utilization)
			}
		}
	}
	close(j.done)
}

// addUtilization folds one freshly simulated cell's utilization
// telemetry into the engine-wide accumulator behind /metrics.
func (e *Engine) addUtilization(u pipeline.Utilization) {
	e.utilMu.Lock()
	defer e.utilMu.Unlock()
	e.utilN++
	for h := 0; h < 2; h++ {
		e.utilSum.IntQHalfOcc[h] += u.IntQHalfOcc[h]
		e.utilSum.FPQHalfOcc[h] += u.FPQHalfOcc[h]
	}
	e.utilSum.ALUGrantShare = addVec(e.utilSum.ALUGrantShare, u.ALUGrantShare)
	e.utilSum.RFReadShare = addVec(e.utilSum.RFReadShare, u.RFReadShare)
}

// addMulticore folds one freshly computed scheduling run's per-core
// telemetry into the engine-wide accumulator behind /metrics.
func (e *Engine) addMulticore(r *multicore.Result) {
	e.mcMu.Lock()
	defer e.mcMu.Unlock()
	e.mcSum.Runs++
	e.mcSum.CoolingStalls += r.CoolingStalls
	e.mcSum.Migrations += uint64(r.Migrations)
	for len(e.mcCoreN) < len(r.PerCore) {
		e.mcCoreN = append(e.mcCoreN, 0)
		e.mcSum.CoreUtilization = append(e.mcSum.CoreUtilization, 0)
		e.mcSum.CoreAvgTempK = append(e.mcSum.CoreAvgTempK, 0)
		e.mcSum.CorePeakTempK = append(e.mcSum.CorePeakTempK, 0)
	}
	for i, c := range r.PerCore {
		e.mcCoreN[i]++
		e.mcSum.CoreUtilization[i] += c.Utilization
		e.mcSum.CoreAvgTempK[i] += c.AvgTempK
		if c.PeakTempK > e.mcSum.CorePeakTempK[i] {
			e.mcSum.CorePeakTempK[i] = c.PeakTempK
		}
	}
}

// multicoreSnapshot averages the accumulated per-run telemetry.
func (e *Engine) multicoreSnapshot() MulticoreMetrics {
	e.mcMu.Lock()
	defer e.mcMu.Unlock()
	out := MulticoreMetrics{
		Runs:          e.mcSum.Runs,
		CoolingStalls: e.mcSum.CoolingStalls,
		Migrations:    e.mcSum.Migrations,
	}
	if len(e.mcCoreN) == 0 {
		return out
	}
	out.CoreUtilization = make([]float64, len(e.mcCoreN))
	out.CoreAvgTempK = make([]float64, len(e.mcCoreN))
	out.CorePeakTempK = make([]float64, len(e.mcCoreN))
	for i, n := range e.mcCoreN {
		if n == 0 {
			continue
		}
		out.CoreUtilization[i] = e.mcSum.CoreUtilization[i] / float64(n)
		out.CoreAvgTempK[i] = e.mcSum.CoreAvgTempK[i] / float64(n)
		out.CorePeakTempK[i] = e.mcSum.CorePeakTempK[i]
	}
	return out
}

// addVec accumulates b into a element-wise, growing a as needed.
func addVec(a, b []float64) []float64 {
	for len(a) < len(b) {
		a = append(a, 0)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// runCell executes one simulation cell on config.Default() with the
// request's plan/techniques — or one multi-core scheduling run when the
// request carries the multicore shape — and returns the canonical
// result JSON.
func runCell(ctx context.Context, req Request) ([]byte, error) {
	req = req.Normalize()
	if req.Multicore != nil {
		r, err := multicore.Run(ctx, *req.Multicore)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}
	cfg := config.Default()
	cfg.Plan = req.Plan
	cfg.Techniques = req.Techniques
	s, err := sim.NewByName(cfg, req.Benchmark)
	if err != nil {
		return nil, err
	}
	s.WarmupInstructions = req.Warmup
	r, err := s.RunCyclesContext(ctx, req.Cycles)
	if err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// Submit registers the request and returns its job. The fast paths, in
// order: an identical job already queued or running is shared
// (single-flight); a cached result completes the job immediately; a
// known done job is returned as-is. Otherwise the job is enqueued, or
// ErrQueueFull is returned when the queue is at capacity. A previously
// failed key is re-enqueued (failures are not cached).
func (e *Engine) Submit(req Request) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = req.Normalize()
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.submitLocked(key, req)
}

func (e *Engine) submitLocked(key string, req Request) (*Job, error) {
	if e.closed {
		return nil, ErrShutdown
	}
	if j, ok := e.jobs[key]; ok && (j.state == JobQueued || j.state == JobRunning) {
		e.deduped.Add(1)
		return j, nil
	}
	if j, ok := e.jobs[key]; ok && j.state == JobQuarantined {
		// Poisoned input: permanently failed, never re-enqueued.
		return j, nil
	}
	if data, ok := e.cache.Get(key); ok {
		j := &Job{Key: key, Req: req, state: JobDone, cached: true, resultJSON: data, done: make(chan struct{})}
		close(j.done)
		e.jobs[key] = j
		return j, nil
	}
	if j, ok := e.jobs[key]; ok && j.state == JobDone {
		// Done but evicted from the cache: still serve the job's bytes.
		return j, nil
	}
	// Capacity check before the WAL append: under e.mu only workers
	// touch the queue, and they only drain it, so room observed here
	// cannot vanish before the send below.
	if len(e.queue) == cap(e.queue) {
		return nil, ErrQueueFull
	}
	j := &Job{Key: key, Req: req, state: JobQueued, done: make(chan struct{})}
	if c, err := req.Canonical(); err == nil {
		e.journalAppend(journal.Record{Op: journal.OpSubmit, Key: key, Req: c})
	}
	e.queue <- j
	e.jobs[key] = j
	return j, nil
}

// SubmitBatch expands the batch into cell jobs and registers an
// aggregate batch job. All cells are admitted atomically: if the free
// queue capacity cannot hold every cell that actually needs to run, the
// whole batch is rejected with ErrQueueFull and nothing is enqueued.
func (e *Engine) SubmitBatch(breq BatchRequest) (*Batch, error) {
	key, err := breq.Key()
	if err != nil {
		return nil, err
	}
	spec, cells, err := breq.Cells()
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrShutdown
	}
	if b, ok := e.batches[key]; ok && b.state != JobFailed {
		e.deduped.Add(1)
		return b, nil
	}

	// Admission check: count cells that would need a queue slot.
	need := 0
	keys := make([]string, len(cells))
	for i, c := range cells {
		k, err := c.Key()
		if err != nil {
			return nil, err
		}
		keys[i] = k
		j, known := e.jobs[k]
		inFlight := known && j.state != JobFailed
		if !inFlight && !e.cache.Contains(k) {
			need++
		}
	}
	if need > cap(e.queue)-len(e.queue) {
		return nil, ErrQueueFull
	}

	b := &Batch{Key: key, Spec: spec, state: JobQueued, done: make(chan struct{})}
	b.cells = make([]*Job, len(cells))
	for i, c := range cells {
		j, err := e.submitLocked(keys[i], c)
		if err != nil {
			// Cannot happen after the admission check, but fail closed.
			b.state, b.err = JobFailed, err
			close(b.done)
			e.batches[key] = b
			return nil, err
		}
		b.cells[i] = j
	}
	e.batches[key] = b
	go e.aggregate(b)
	return b, nil
}

// aggregate waits for every cell of the batch and settles the batch
// state: failed with the first (lowest-indexed) cell error, else done.
func (e *Engine) aggregate(b *Batch) {
	for _, j := range b.cells {
		<-j.done
	}
	e.mu.Lock()
	b.state = JobDone
	for _, j := range b.cells {
		if j.err != nil {
			b.state, b.err = JobFailed, j.err
			break
		}
	}
	e.mu.Unlock()
	close(b.done)
}

// Job returns a snapshot of the job for key. Unknown in-memory keys
// fall back to the cache (content-addressed, so a daemon restarted over
// a warm disk cache still answers for completed jobs).
func (e *Engine) Job(key string) (JobStatus, bool) {
	e.mu.Lock()
	j, ok := e.jobs[key]
	if ok {
		st := e.statusLocked(j)
		e.mu.Unlock()
		return st, true
	}
	e.mu.Unlock()
	if !isKey(key) {
		return JobStatus{}, false
	}
	if data, ok := e.cache.Get(key); ok {
		return JobStatus{Key: key, State: JobDone, Cached: true, Result: data}, true
	}
	return JobStatus{}, false
}

func (e *Engine) statusLocked(j *Job) JobStatus {
	st := JobStatus{Key: j.Key, State: j.state, Cached: j.cached, Req: j.Req,
		Attempts: j.attempts, Panics: j.panics}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone {
		st.Result = j.resultJSON
	}
	return st
}

// BatchJob returns a snapshot of the batch for key.
func (e *Engine) BatchJob(key string) (BatchStatus, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.batches[key]
	if !ok {
		return BatchStatus{}, false
	}
	return e.batchStatusLocked(b), true
}

func (e *Engine) batchStatusLocked(b *Batch) BatchStatus {
	st := BatchStatus{Key: b.Key, State: b.state, Experiment: b.Spec.ID}
	if b.err != nil {
		st.Error = b.err.Error()
	}
	st.Cells = make([]BatchCellInfo, len(b.cells))
	for i, j := range b.cells {
		st.Cells[i] = BatchCellInfo{
			Key: j.Key, Benchmark: j.Req.Benchmark,
			Variant: variantName(b.Spec, i), State: j.state, Cached: j.cached,
		}
	}
	return st
}

func variantName(spec experiments.Spec, cellIndex int) string {
	if len(spec.Variants) == 0 {
		return ""
	}
	return spec.Variants[cellIndex%len(spec.Variants)].Name
}

// Wait blocks until the job for key settles or ctx is done, and returns
// the settled snapshot.
func (e *Engine) Wait(ctx context.Context, key string) (JobStatus, error) {
	e.mu.Lock()
	j, ok := e.jobs[key]
	e.mu.Unlock()
	if !ok {
		if st, ok := e.Job(key); ok { // cache fallback
			return st, nil
		}
		return JobStatus{}, fmt.Errorf("service: unknown job %q", key)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statusLocked(j), nil
}

// WaitBatch blocks until the batch settles or ctx is done.
func (e *Engine) WaitBatch(ctx context.Context, key string) (BatchStatus, error) {
	e.mu.Lock()
	b, ok := e.batches[key]
	e.mu.Unlock()
	if !ok {
		return BatchStatus{}, fmt.Errorf("service: unknown batch %q", key)
	}
	select {
	case <-b.done:
	case <-ctx.Done():
		return BatchStatus{}, ctx.Err()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.batchStatusLocked(b), nil
}

// BatchMatrix assembles a settled done batch into an experiments.Matrix
// (cells in serial iteration order, results decoded from the cached
// JSON), ready for the paper-style report renderers.
func (e *Engine) BatchMatrix(key string) (*experiments.Matrix, error) {
	e.mu.Lock()
	b, ok := e.batches[key]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("service: unknown batch %q", key)
	}
	if b.state != JobDone {
		e.mu.Unlock()
		return nil, fmt.Errorf("service: batch %q is %s", key, b.state)
	}
	spec := b.Spec
	cells := make([]*Job, len(b.cells))
	copy(cells, b.cells)
	e.mu.Unlock()

	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	for i, j := range cells {
		var r sim.Result
		if err := json.Unmarshal(j.resultJSON, &r); err != nil {
			return nil, fmt.Errorf("service: batch %q cell %d: %w", key, i, err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
	}
	return m, nil
}

// RunMatrix runs an experiment spec through the engine: every cell is
// submitted (cached cells settle instantly) and awaited in serial
// order, so progress lines and the assembled Matrix are deterministic.
// This is the path cmd/experiments -cache-dir takes.
func (e *Engine) RunMatrix(ctx context.Context, spec experiments.Spec, w io.Writer) (*experiments.Matrix, error) {
	cells := SpecCells(spec)
	jobs := make([]*Job, len(cells))
	for i, c := range cells {
		j, err := e.Submit(c)
		if err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", c.Benchmark, variantName(spec, i), err)
		}
		jobs[i] = j
	}
	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	prog := runner.NewProgress(w, len(cells))
	for i, j := range jobs {
		st, err := e.Wait(ctx, j.Key)
		if err != nil {
			return nil, err
		}
		if st.State != JobDone {
			return nil, fmt.Errorf("service: %s/%s: %s", j.Req.Benchmark, variantName(spec, i), st.Error)
		}
		var r sim.Result
		if err := json.Unmarshal(st.Result, &r); err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", j.Req.Benchmark, variantName(spec, i), err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
		note := ""
		if st.Cached {
			note = " (cached)"
		}
		prog.Step("%s %-9s %-24s IPC=%.3f stalls=%d%s", spec.ID, j.Req.Benchmark, variantName(spec, i), r.IPC, r.Stalls, note)
	}
	return m, nil
}

// Metrics returns the engine counter snapshot.
func (e *Engine) Metrics() Metrics {
	cs := e.cache.Stats()
	up := time.Since(e.start).Seconds()
	completed := e.completed.Load()
	cps := 0.0
	if up > 0 {
		cps = float64(completed) / up
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ready, _ := e.Ready()
	return Metrics{
		UptimeSeconds:   up,
		JobsQueued:      len(e.queue),
		JobsRunning:     int(e.running.Load()),
		JobsCompleted:   completed,
		JobsFailed:      e.failed.Load(),
		JobsDeduped:     e.deduped.Load(),
		JobsRetried:     e.retries.Load(),
		JobPanics:       e.panicsTotal.Load(),
		JobsQuarantined: e.quarantined.Load(),
		JournalErrors:   e.journalErrs.Load(),
		Ready:           ready,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEntries:    cs.Entries,
		CellsPerSecond:  cps,
		Cache:           cs,
		Runtime: RuntimeMetrics{
			Goroutines:      runtime.NumGoroutine(),
			NumCPU:          runtime.NumCPU(),
			HeapAllocBytes:  ms.HeapAlloc,
			HeapSysBytes:    ms.HeapSys,
			TotalAllocBytes: ms.TotalAlloc,
			GCCycles:        ms.NumGC,
			GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		},
		Utilization: e.utilizationSnapshot(),
		Multicore:   e.multicoreSnapshot(),
	}
}

// utilizationSnapshot averages the accumulated per-cell telemetry.
func (e *Engine) utilizationSnapshot() UtilizationMetrics {
	e.utilMu.Lock()
	defer e.utilMu.Unlock()
	out := UtilizationMetrics{Cells: e.utilN}
	if e.utilN == 0 {
		return out
	}
	n := float64(e.utilN)
	for h := 0; h < 2; h++ {
		out.IntQHalfOcc[h] = e.utilSum.IntQHalfOcc[h] / n
		out.FPQHalfOcc[h] = e.utilSum.FPQHalfOcc[h] / n
	}
	out.ALUGrantShare = scaleVec(e.utilSum.ALUGrantShare, 1/n)
	out.RFReadShare = scaleVec(e.utilSum.RFReadShare, 1/n)
	return out
}

// scaleVec returns a copy of v with every element multiplied by k.
func scaleVec(v []float64, k float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}

// Ready reports whether the engine should receive traffic, with a
// reason when it should not: false while journal replay is still
// resubmitting recovered jobs, and from the moment a drain begins.
// The HTTP /readyz endpoint serves this.
func (e *Engine) Ready() (bool, string) {
	if e.closing.Load() || e.draining.Load() {
		return false, "draining"
	}
	if !e.replayed.Load() {
		return false, "journal replay"
	}
	return true, ""
}

// BeginDrain flips readiness off ahead of Shutdown, so a load balancer
// polling /readyz stops routing before the listener closes and the
// queue starts refusing work.
func (e *Engine) BeginDrain() { e.draining.Store(true) }

// Shutdown stops accepting submissions, lets running jobs drain, and
// fails jobs still queued. If ctx expires before the drain completes,
// in-flight runs are cancelled (they stop at their next sensor
// interval) and Shutdown returns ctx's error; otherwise nil.
//
// Journal semantics: every state reached during the drain is persisted
// before Shutdown returns — jobs that complete write their done
// records, while jobs abandoned in the queue or cancelled by the
// deadline write no terminal record at all, which is what makes
// restart replay accurate: exactly the interrupted work is resubmitted.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.closing.Store(true)
	e.draining.Store(true)
	close(e.queue) // Submit holds the mutex when sending, so this is safe
	e.mu.Unlock()

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		e.cancel() // abort in-flight runs
		<-done
	}
	e.cancel()
	// Workers are parked, so every journal append has happened; flush
	// them to stable storage before reporting the engine stopped.
	if e.journal != nil {
		if cerr := e.journal.Close(); cerr != nil {
			e.journalErrs.Add(1)
		}
	}
	return err
}
