// The job engine: content-addressed job submission with single-flight
// deduplication, a bounded queue with explicit rejection, per-job
// timeout/cancellation, worker-pool execution, and queryable job
// states. One Engine is shared by the HTTP daemon (cmd/pipethermd) and
// the in-process matrix path (cmd/experiments -cache-dir).
//
// Dispatch is sharded (shard.go): jobs hash by key onto per-shard
// queues and job-map slices, each worker drains its own shard and
// steals from the busiest sibling when idle, and aggregate queue
// capacity is one atomic reservation counter — so a burst of
// submissions on a many-core host never serializes on a global lock,
// while the observable semantics (single-flight, 429 at QueueDepth,
// all-or-nothing batch admission, journal ordering) are unchanged.
//
// Fault tolerance: every job attempt runs under recover(), so a
// panicking cell fails only that job (the stack lands in
// JobStatus.Error) while the workers keep serving; a key that keeps
// panicking is quarantined — failed permanently, never retried — after
// QuarantineAfter attempts; transient failures (job timeout, injected
// I/O errors) retry with exponential backoff and per-worker-rng jitter
// up to MaxRetries; and with a journal attached, submit/done/failed
// transitions are WAL-logged so queued and interrupted jobs survive a
// crash and are replayed on the next start (see DESIGN.md, "Failure
// model and recovery").
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/multicore"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
)

// JobState is the lifecycle of a job: queued → running →
// done|failed|quarantined.
type JobState string

const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
	// JobQuarantined marks a job key that panicked QuarantineAfter
	// times: permanently failed, never re-enqueued, its poison marker
	// journaled across restarts.
	JobQuarantined JobState = "quarantined"
)

// ErrQueueFull is returned by Submit when the bounded queue has no room
// — the engine's explicit 429-style backpressure signal.
var ErrQueueFull = errors.New("service: job queue full")

// ErrShutdown is returned by Submit after Shutdown has begun, and used
// to fail jobs abandoned in the queue at shutdown.
var ErrShutdown = errors.New("service: engine shutting down")

// ErrDeadlineUnmeetable is the admission-control shed: the estimated
// queue wait (queue depth × the EWMA of recent job latency) already
// exceeds the submission's deadline, so running it would waste a worker
// on a result nobody will be there to read. Served as 429 + Retry-After.
var ErrDeadlineUnmeetable = errors.New("service: deadline unmeetable at current load")

// ErrDeadlineExpired fails a job whose client deadline passed while it
// waited in the queue (or between retry attempts) — the worker sheds it
// instead of running it.
var ErrDeadlineExpired = errors.New("service: deadline expired before the job ran")

// ErrAbandoned fails a job whose only synchronous waiter disconnected:
// the run context is cancelled with this cause and the worker stops
// computing a result nobody is waiting for.
var ErrAbandoned = errors.New("service: abandoned by client")

// ErrStuck is the watchdog's verdict on an attempt whose goroutine
// stopped making progress (no cancellation-poll ticks from the
// simulator's interval loop for a full watchdog period).
var ErrStuck = errors.New("service: attempt made no progress (watchdog)")

// Job is one submitted cell. All mutable fields are guarded by the
// home shard's mutex; callers read them through Status snapshots or
// after Wait.
type Job struct {
	Key string
	Req Request

	home       *shard
	state      JobState
	cached     bool
	resultJSON []byte
	err        error
	attempts   int           // execution attempts this submission (1 = no retry)
	panics     int           // recovered panics for this job's key
	done       chan struct{} // closed on done/failed/quarantined

	// Overload-protection state (all guarded by home.mu).
	deadline   time.Time // zero = no deadline
	runCtx     context.Context
	runCancel  context.CancelCauseFunc
	waiters    int  // synchronous waiters currently blocked on this job
	pinned     bool // joined by a non-abandonable submitter (async, batch, replay)
	nonDurable bool // settled while the journal breaker was open
}

// closedDone is the shared pre-closed settle channel for jobs born
// settled (cache hits, restored quarantine markers): <-j.done behaves
// identically and the per-hit channel allocation disappears.
var closedDone = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// JobStatus is an immutable snapshot of a job, in the wire shape the
// HTTP API serves. Result holds the exact cached bytes, so identical
// requests always see byte-identical result JSON.
type JobStatus struct {
	Key      string          `json:"key"`
	State    JobState        `json:"state"`
	Cached   bool            `json:"cached"`
	Req      Request         `json:"request"`
	Attempts int             `json:"attempts,omitempty"`
	Panics   int             `json:"panics,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
	// NonJournaled marks a result that settled while the journal
	// breaker was open (durability "none"): correct, served, cached —
	// but its terminal record never reached the WAL.
	NonJournaled bool `json:"non_journaled,omitempty"`
}

// Batch is one submitted experiment matrix, aggregating cell jobs.
type Batch struct {
	Key   string
	Spec  experiments.Spec
	cells []*Job

	state JobState
	err   error
	done  chan struct{}
}

// BatchStatus is the wire snapshot of a batch.
type BatchStatus struct {
	Key        string          `json:"key"`
	State      JobState        `json:"state"`
	Experiment string          `json:"experiment"`
	Error      string          `json:"error,omitempty"`
	Cells      []BatchCellInfo `json:"cells"`
}

// BatchCellInfo names one cell of a batch and its current state.
type BatchCellInfo struct {
	Key       string   `json:"key"`
	Benchmark string   `json:"benchmark"`
	Variant   string   `json:"variant"`
	State     JobState `json:"state"`
	Cached    bool     `json:"cached"`
}

// EngineConfig sizes an engine.
type EngineConfig struct {
	// Workers is the simulation worker count; <= 0 means one per CPU
	// (runner.Resolve semantics).
	Workers int
	// Shards is the dispatcher shard count; <= 0 means one per worker —
	// the production shape, where every worker owns a shard. Exposed so
	// tests can pin hashing behavior.
	Shards int
	// QueueDepth bounds the number of jobs waiting to run, in aggregate
	// across all shards; <= 0 means 64. Submissions beyond it fail with
	// ErrQueueFull.
	QueueDepth int
	// JobTimeout cancels a single cell run after this long; <= 0 means
	// no per-job timeout. A timed-out attempt counts as transient and
	// is retried up to MaxRetries.
	JobTimeout time.Duration
	// Cache is the result cache; nil means a small memory-only cache.
	Cache *Cache

	// MaxRetries bounds retries of transient failures (timeouts,
	// injected I/O errors) per submission: 0 means the default of 2
	// (three attempts total), negative disables retries.
	MaxRetries int
	// RetryBase is the first backoff delay (doubled per retry, with
	// jitter); <= 0 means 50ms.
	RetryBase time.Duration
	// RetryMax caps the backoff delay; <= 0 means 2s.
	RetryMax time.Duration
	// QuarantineAfter is how many recovered panics a job key may
	// accumulate before it is quarantined; <= 0 means 3.
	QuarantineAfter int
	// JitterSeed seeds the per-worker retry-jitter rngs (jitterSeed
	// derivation in shard.go); 0 means defaultJitterSeed.
	JitterSeed uint64

	// Journal, when non-nil, makes job transitions durable: submits are
	// WAL-logged before enqueue, terminal states on settle, and Replay
	// (the records journal.Open returned) is recovered at startup —
	// pending jobs are resubmitted, quarantine markers restored, and
	// the log compacted.
	Journal *journal.Journal
	Replay  []journal.Record

	// DefaultDeadline, when positive, gives every submission that does
	// not carry its own deadline one of now+DefaultDeadline — the
	// server-side guard against queues full of work nobody still wants.
	DefaultDeadline time.Duration
	// Watchdog force-fails an attempt whose goroutine stops making
	// progress for this long (progress = cancellation-poll ticks from
	// the simulator's sensor-interval loop). 0 means 10× JobTimeout
	// (disabled when JobTimeout is 0 too); negative disables it.
	Watchdog time.Duration

	// Breaker thresholds shared by the cache-disk and journal breakers:
	// BreakerFailures consecutive failures (or over-latency successes,
	// past BreakerLatency) trip a breaker open; after BreakerCooldown
	// one probe is admitted. Zero values mean 3 / 2s / 2s.
	BreakerFailures int
	BreakerLatency  time.Duration
	BreakerCooldown time.Duration

	// OverloadHold is how long after a shed/rejection the engine keeps
	// reporting the overloaded health state (hysteresis so /readyz does
	// not flap on a single burst); <= 0 means 2s.
	OverloadHold time.Duration

	// Inject is the chaos-testing seam (internal/faultinject); nil — the
	// production case — disarms every site. Its clock, when set, also
	// drives the breakers' cooldown timing and deadline arithmetic.
	Inject *faultinject.Injector

	// runFunc replaces the cell runner before workers and journal
	// replay start. In-package tests only.
	runFunc func(ctx context.Context, req Request) ([]byte, error)
}

// Metrics is the engine's counter snapshot, served at /metrics.
type Metrics struct {
	UptimeSeconds   float64        `json:"uptime_seconds"`
	JobsQueued      int            `json:"jobs_queued"`
	JobsRunning     int            `json:"jobs_running"`
	JobsCompleted   uint64         `json:"jobs_completed"`
	JobsFailed      uint64         `json:"jobs_failed"`
	JobsDeduped     uint64         `json:"jobs_deduped"`
	JobsRetried     uint64         `json:"jobs_retried"`
	JobPanics       uint64         `json:"job_panics"`
	JobsQuarantined uint64         `json:"jobs_quarantined"`
	JobsStolen      uint64         `json:"jobs_stolen"`
	JournalErrors   uint64         `json:"journal_errors"`
	Ready           bool           `json:"ready"`

	// Overload-protection counters and gauges (see DESIGN.md,
	// "Overload and degraded modes").
	JobsShedExpired     uint64          `json:"jobs_shed_expired"`
	JobsShedAdmission   uint64          `json:"jobs_shed_admission"`
	JobsClientAbandoned uint64          `json:"jobs_client_abandoned"`
	JobsWatchdogFired   uint64          `json:"jobs_watchdog_fired"`
	JournalSkipped      uint64          `json:"journal_skipped"`
	CacheDegraded       int             `json:"cache_degraded"`
	Durability          string          `json:"durability"` // journaled | none | off
	QueueWaitEWMAMS     float64         `json:"queue_wait_ewma_ms"`
	CacheBreaker        BreakerSnapshot `json:"cache_breaker"`
	JournalBreaker      BreakerSnapshot `json:"journal_breaker"`
	Health              HealthMetrics   `json:"health"`

	CacheHits       uint64         `json:"cache_hits"`
	CacheMisses     uint64         `json:"cache_misses"`
	CacheEntries    int            `json:"cache_entries"`
	CellsPerSecond  float64        `json:"cells_per_second"`
	Cache           CacheStats     `json:"cache"`
	Shards          []ShardMetrics `json:"shards"`

	// Runtime is the Go runtime health section: memory, GC, and
	// goroutine gauges for the serving process.
	Runtime RuntimeMetrics `json:"runtime"`
	// Utilization averages the per-cell pipeline utilization telemetry
	// over every cell this process simulated (cache hits are excluded:
	// their telemetry was accounted when they were first computed,
	// possibly by an earlier process sharing the cache directory).
	Utilization UtilizationMetrics `json:"utilization"`
	// Multicore aggregates the multi-core scheduling runs this process
	// computed, with the same cache-hit exclusion as Utilization.
	Multicore MulticoreMetrics `json:"multicore"`
}

// ShardMetrics is one dispatcher shard's gauge slice of /metrics.
type ShardMetrics struct {
	QueueDepth int `json:"queue_depth"`
}

// HealthMetrics is the health-state-machine section of /metrics: the
// current state, how long it has held, and how many times each state
// has been entered since the process started.
type HealthMetrics struct {
	State        string            `json:"state"`
	SinceSeconds float64           `json:"since_seconds"`
	Entered      map[string]uint64 `json:"entered"`
}

// RuntimeMetrics is the Go runtime section of /metrics.
type RuntimeMetrics struct {
	Goroutines      int     `json:"goroutines"`
	NumCPU          int     `json:"num_cpu"`
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64  `json:"heap_sys_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	GCCycles        uint32  `json:"gc_cycles"`
	GCPauseTotalMS  float64 `json:"gc_pause_total_ms"`
}

// UtilizationMetrics is the mean of sim results' Utilization over the
// cells this engine simulated. Share vectors are element-wise means, so
// they still sum to ~1 when every cell had activity.
type UtilizationMetrics struct {
	Cells         uint64     `json:"cells"`
	IntQHalfOcc   [2]float64 `json:"intq_half_occupancy"`
	FPQHalfOcc    [2]float64 `json:"fpq_half_occupancy"`
	ALUGrantShare []float64  `json:"alu_grant_share"`
	RFReadShare   []float64  `json:"rf_read_share"`
}

// MulticoreMetrics aggregates the multi-core scheduling runs this
// engine computed. Per-core vectors are indexed by core id and sized to
// the widest run seen: utilization and average temperature are means
// over the runs that had that core, peak temperature is the running
// maximum.
type MulticoreMetrics struct {
	Runs            uint64    `json:"runs"`
	CoolingStalls   uint64    `json:"cooling_stalls"`
	Migrations      uint64    `json:"migrations"`
	CoreUtilization []float64 `json:"core_utilization,omitempty"`
	CoreAvgTempK    []float64 `json:"core_avg_temp_k,omitempty"`
	CorePeakTempK   []float64 `json:"core_peak_temp_k,omitempty"`
}

// Engine runs jobs. Create with NewEngine, stop with Shutdown.
type Engine struct {
	cache      *Cache
	jobTimeout time.Duration

	// Fault-tolerance knobs (see EngineConfig).
	maxRetries      int
	retryBase       time.Duration
	retryMax        time.Duration
	quarantineAfter int
	journal         *journal.Journal
	inj             *faultinject.Injector

	// The sharded dispatcher (shard.go). depth is the aggregate queue
	// capacity; queued counts reserved slots across all shards; wakeCh
	// carries work-available tokens to idle workers; spaceCh nudges the
	// blocking journal-replay submitter when capacity frees.
	shards  []*shard
	workers []*workerState
	depth   int
	queued  atomic.Int64
	wakeCh  chan struct{}
	spaceCh chan struct{}
	stopCh  chan struct{}

	// Batches are rare and aggregate many shards, so they keep a
	// conventional mutex; batch admission locks batchMu, then every
	// shard in index order (the one place the engine still has a global
	// critical section — by design, it is what makes admission atomic).
	batchMu      sync.Mutex
	batches      map[string]*Batch
	batchDeduped uint64

	closed   atomic.Bool
	closing  atomic.Bool
	draining atomic.Bool // readiness off ahead of shutdown (BeginDrain)
	replayed atomic.Bool // journal replay finished (true when no journal)
	baseCtx  context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	start       time.Time
	running     atomic.Int64
	journalErrs atomic.Uint64

	// Overload protection (see DESIGN.md, "Overload and degraded
	// modes"). now is the clock seam (the injector's fake clock in
	// tests, time.Now in production); latEWMA holds float64 bits of the
	// exponentially weighted moving average of attempt latency in
	// seconds; lastReject is the UnixNano of the most recent
	// shed/queue-full rejection, the overload-hysteresis signal.
	now             func() time.Time
	defaultDeadline time.Duration
	watchdog        time.Duration
	overloadHold    time.Duration
	cbrk            *Breaker // cache-disk breaker
	jbrk            *Breaker // journal breaker
	latEWMA         atomic.Uint64
	lastReject      atomic.Int64
	shedAdmission   atomic.Uint64
	journalSkipped  atomic.Uint64
	rejournalMu     sync.Mutex // one re-journal compaction at a time

	healthMu      sync.Mutex
	healthCur     HealthState
	healthSince   time.Time
	healthEntered map[HealthState]uint64

	// runCell executes one cell and returns its canonical result JSON.
	// Tests replace it with a controllable stub; production uses runCell.
	run func(ctx context.Context, req Request) ([]byte, error)
}

// NewEngine starts an engine with cfg.Workers simulation workers. With
// a journal configured, replayed pending jobs are resubmitted in the
// background; Ready reports false until that finishes.
func NewEngine(cfg EngineConfig) *Engine {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	cache := cfg.Cache
	if cache == nil {
		cache, _ = NewCache(128, "")
	}
	cache.SetInjector(cfg.Inject)
	switch {
	case cfg.MaxRetries == 0:
		cfg.MaxRetries = 2
	case cfg.MaxRetries < 0:
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = defaultJitterSeed
	}
	switch {
	case cfg.Watchdog == 0 && cfg.JobTimeout > 0:
		cfg.Watchdog = 10 * cfg.JobTimeout
	case cfg.Watchdog < 0:
		cfg.Watchdog = 0
	}
	if cfg.OverloadHold <= 0 {
		cfg.OverloadHold = 2 * time.Second
	}
	workers := runner.Resolve(cfg.Workers, 0)
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cache:           cache,
		jobTimeout:      cfg.JobTimeout,
		maxRetries:      cfg.MaxRetries,
		retryBase:       cfg.RetryBase,
		retryMax:        cfg.RetryMax,
		quarantineAfter: cfg.QuarantineAfter,
		journal:         cfg.Journal,
		inj:             cfg.Inject,
		depth:           cfg.QueueDepth,
		wakeCh:          make(chan struct{}, cfg.QueueDepth),
		spaceCh:         make(chan struct{}, 1),
		stopCh:          make(chan struct{}),
		batches:         make(map[string]*Batch),
		baseCtx:         ctx,
		cancel:          cancel,
		start:           time.Now(),
		run:             runCell,
		now:             cfg.Inject.Now, // nil-receiver safe: falls back to time.Now
		defaultDeadline: cfg.DefaultDeadline,
		watchdog:        cfg.Watchdog,
		overloadHold:    cfg.OverloadHold,
		healthCur:       HealthHealthy,
		healthEntered:   map[HealthState]uint64{HealthHealthy: 1},
	}
	e.healthSince = e.now()
	e.cbrk = newBreaker("cache", cfg.BreakerFailures, cfg.BreakerLatency, cfg.BreakerCooldown, e.now)
	cache.SetBreaker(e.cbrk)
	if cfg.Journal != nil {
		e.jbrk = newBreaker("journal", cfg.BreakerFailures, cfg.BreakerLatency, cfg.BreakerCooldown, e.now)
	}
	if cfg.runFunc != nil {
		e.run = cfg.runFunc
	}
	e.shards = make([]*shard, nshards)
	for i := range e.shards {
		e.shards[i] = &shard{
			jobs:        make(map[string]*Job),
			panicCounts: make(map[string]int),
		}
	}
	e.workers = make([]*workerState, workers)
	for i := range e.workers {
		e.workers[i] = &workerState{rng: rng.New(jitterSeed(cfg.JitterSeed, i))}
	}
	e.replayed.Store(true)
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	e.recoverJournal(cfg.Replay)
	if e.journal != nil {
		// The maintenance loop probes an open journal breaker so
		// durability recovers on its own, without waiting for traffic.
		e.wg.Add(1)
		go e.maintain()
	}
	return e
}

// recoverJournal restores journaled state: quarantine markers become
// quarantined jobs, the log is compacted to the live set, and pending
// submits are resubmitted in the background (readiness is withheld
// until they are all enqueued; their results then arrive through the
// normal worker/cache path).
func (e *Engine) recoverJournal(recs []journal.Record) {
	if e.journal == nil {
		return
	}
	pending, quarantined := journal.Pending(recs)
	for _, rec := range quarantined {
		var req Request
		json.Unmarshal(rec.Req, &req) // best-effort: old markers may lack the request
		sh := e.shardFor(rec.Key)
		j := &Job{Key: rec.Key, Req: req, home: sh, state: JobQuarantined,
			err: errors.New(rec.Err), panics: e.quarantineAfter, done: closedDone}
		sh.mu.Lock()
		sh.jobs[rec.Key] = j
		sh.panicCounts[rec.Key] = e.quarantineAfter
		sh.mu.Unlock()
	}
	compact := append(append([]journal.Record{}, quarantined...), pending...)
	if err := e.journal.Rewrite(compact); err != nil {
		// Startup compaction failing (disk full) degrades durability, it
		// never blocks startup: the breaker sees the failure and the
		// maintenance loop retries once the disk recovers.
		e.journalErrs.Add(1)
		e.jbrk.Record(0, err)
	}
	if len(pending) > 0 {
		e.replayed.Store(false)
		go e.replayPending(pending)
	}
}

// replayPending resubmits journaled pending jobs. A full queue blocks
// on the capacity-freed signal rather than polling, so recovered work
// admits the moment a slot opens and /readyz flips as soon as the last
// replay lands.
func (e *Engine) replayPending(pending []journal.Record) {
	defer e.replayed.Store(true)
	for _, rec := range pending {
		var req Request
		if err := json.Unmarshal(rec.Req, &req); err != nil {
			continue // unreadable request: nothing to replay
		}
		for {
			j, err := e.Submit(req)
			if err == nil {
				// Replay-from-cache: the run completed before the crash
				// but its done record was lost; settle the journal now.
				st := j.snapshot()
				if st.State == JobDone && st.Cached {
					e.journalAppend(journal.Record{Op: journal.OpDone, Key: j.Key})
				}
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				break // invalid under current config, or engine shut down
			}
			select {
			case <-e.spaceCh:
			case <-e.baseCtx.Done():
				return
			}
		}
	}
}

// journalAppend WAL-logs one transition. Journal failures degrade
// durability, not availability: they are counted, never fatal. The
// journal breaker turns a run of failures into durability=none mode —
// appends are skipped (counted in journal_skipped) instead of paying a
// failing, possibly slow syscall per transition — and the breaker
// closing again triggers a re-journal of all outstanding state.
// Returns whether the record actually reached the WAL.
func (e *Engine) journalAppend(r journal.Record) bool {
	if e.journal == nil {
		return false
	}
	if !e.jbrk.Allow() {
		e.journalSkipped.Add(1)
		return false
	}
	start := e.now()
	err := e.journal.Append(r)
	if err != nil {
		e.journalErrs.Add(1)
	}
	if e.jbrk.Record(e.now().Sub(start), err) {
		go e.rejournal()
	}
	return err == nil
}

// maintain is the engine's background recovery loop: while the journal
// breaker is open it periodically probes the disk with a no-op note
// append, and on success re-journals outstanding state — so a daemon
// whose disk comes back recovers journaled durability on its own, with
// no traffic required.
func (e *Engine) maintain() {
	defer e.wg.Done()
	t := time.NewTicker(200 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-e.stopCh:
			return
		case <-t.C:
			if e.jbrk.State() == BreakerClosed || !e.jbrk.Allow() {
				continue
			}
			start := e.now()
			err := e.journal.Append(journal.Record{Op: journal.OpNote, Key: "breaker-probe"})
			if err != nil {
				e.journalErrs.Add(1)
			}
			if e.jbrk.Record(e.now().Sub(start), err) {
				e.rejournal()
			}
		}
	}
}

// rejournal compacts the WAL back to the live job set — the recovery
// step after a stretch of durability=none, when the on-disk log is
// missing every transition that happened while the breaker was open.
// It rewrites pending submits and quarantine markers from the in-memory
// truth; settled jobs simply vanish from the log, exactly as compaction
// would have left them. Holding every shard lock across the rewrite
// keeps concurrent appends from landing in the pre-compaction file and
// being lost by the rename.
func (e *Engine) rejournal() {
	if e.journal == nil || !e.rejournalMu.TryLock() {
		return
	}
	defer e.rejournalMu.Unlock()
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	var recs []journal.Record
	for _, sh := range e.shards {
		for key, j := range sh.jobs {
			switch j.state {
			case JobQueued, JobRunning:
				rec := journal.Record{Op: journal.OpSubmit, Key: key}
				if c, err := j.Req.Canonical(); err == nil {
					rec.Req = c
				}
				recs = append(recs, rec)
			case JobQuarantined:
				rec := journal.Record{Op: journal.OpQuarantined, Key: key}
				if j.err != nil {
					rec.Err = j.err.Error()
				}
				if c, err := j.Req.Canonical(); err == nil {
					rec.Req = c
				}
				recs = append(recs, rec)
			}
		}
	}
	sort.Slice(recs, func(i, k int) bool { return recs[i].Key < recs[k].Key })
	start := e.now()
	err := e.journal.Rewrite(recs)
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	if err != nil {
		e.journalErrs.Add(1)
	}
	e.jbrk.Record(e.now().Sub(start), err)
}

func (e *Engine) runJob(id int, j *Job) {
	h := j.home
	h.mu.Lock()
	j.state = JobRunning
	h.mu.Unlock()
	e.running.Add(1)
	defer e.running.Add(-1)

	w := e.workers[id]
	for attempt := 0; ; attempt++ {
		if e.jobExpired(j) {
			w.statsMu.Lock()
			w.stats.shedExpired++
			w.statsMu.Unlock()
			e.finish(id, j, nil, ErrDeadlineExpired)
			return
		}
		h.mu.Lock()
		j.attempts = attempt + 1
		h.mu.Unlock()
		astart := e.now()
		data, err := e.attempt(j)
		e.noteLatency(e.now().Sub(astart))
		if err == nil {
			e.cache.Put(j.Key, data)
			e.finish(id, j, data, nil)
			return
		}
		if e.jobAbandoned(j) {
			w.statsMu.Lock()
			w.stats.abandoned++
			w.statsMu.Unlock()
			e.finish(id, j, nil, ErrAbandoned)
			return
		}
		if errors.Is(err, ErrStuck) {
			w.statsMu.Lock()
			w.stats.watchdog++
			w.statsMu.Unlock()
			e.finish(id, j, nil, fmt.Errorf("%w after %s without progress", ErrStuck, e.watchdog))
			return
		}
		var pe *panicError
		if errors.As(err, &pe) {
			// A panic fails only this job; the worker survives. The
			// per-key counter quarantines deterministic crashers instead
			// of retrying them forever.
			w.statsMu.Lock()
			w.stats.panics++
			w.statsMu.Unlock()
			h.mu.Lock()
			j.panics++
			h.panicCounts[j.Key]++
			n := h.panicCounts[j.Key]
			h.mu.Unlock()
			if n >= e.quarantineAfter {
				e.quarantine(id, j, err)
				return
			}
		} else if isShutdownErr(err) || !transient(err) {
			e.finish(id, j, nil, err)
			return
		} else if attempt >= e.maxRetries {
			e.finish(id, j, nil, fmt.Errorf("after %d attempts: %w", attempt+1, err))
			return
		}
		if e.closing.Load() || !e.backoff(id, attempt) {
			e.finish(id, j, nil, err)
			return
		}
		w.statsMu.Lock()
		w.stats.retries++
		w.statsMu.Unlock()
	}
}

// attempt executes the job once with panic isolation: a panicking run
// (simulator bug, injected fault) is converted into a *panicError
// carrying the goroutine stack instead of killing the worker. The
// attempt context stacks, innermost first: job timeout, client
// deadline, the job's cancellable run context (client abandonment),
// and the engine's base context (shutdown).
func (e *Engine) attempt(j *Job) (data []byte, err error) {
	h := j.home
	h.mu.Lock()
	ctx := j.runCtx
	deadline := j.deadline
	h.mu.Unlock()
	if ctx == nil {
		ctx = e.baseCtx
	}
	var cancel context.CancelFunc
	if !deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, deadline)
		defer cancel()
	}
	if e.jobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, e.jobTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			data, err = nil, &panicError{val: r, stack: debug.Stack()}
		}
	}()
	if ferr := e.inj.Fire(faultinject.SiteJobRun); ferr != nil {
		return nil, ferr
	}
	if e.watchdog > 0 {
		return e.runWatched(ctx, j)
	}
	return e.run(ctx, j.Req)
}

// progressCtx is the watchdog's liveness tap: the simulator's interval
// loop polls ctx.Err() once per sensor interval, so routing the
// attempt's context through this wrapper turns every poll into a
// progress tick — no hot-loop or stats-bus changes needed.
type progressCtx struct {
	context.Context
	ticks *atomic.Uint64
}

func (p *progressCtx) Err() error {
	p.ticks.Add(1)
	return p.Context.Err()
}

func (p *progressCtx) Done() <-chan struct{} {
	p.ticks.Add(1)
	return p.Context.Done()
}

// runWatched executes the attempt on a child goroutine under a soft
// watchdog: if the run neither finishes nor polls its context for a
// full watchdog period, the attempt is force-failed with ErrStuck and
// the wedged goroutine is abandoned (its eventual send lands in a
// buffered channel). A run that merely takes long but keeps polling is
// never shot — the watchdog watches progress, not duration.
func (e *Engine) runWatched(ctx context.Context, j *Job) ([]byte, error) {
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var ticks atomic.Uint64
	type outcome struct {
		data []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{nil, &panicError{val: r, stack: debug.Stack()}}
			}
		}()
		data, err := e.run(&progressCtx{Context: wctx, ticks: &ticks}, j.Req)
		ch <- outcome{data, err}
	}()
	poll := e.watchdog / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := ticks.Load()
	lastProgress := e.now()
	for {
		select {
		case r := <-ch:
			return r.data, r.err
		case <-t.C:
			if cur := ticks.Load(); cur != last {
				last, lastProgress = cur, e.now()
				continue
			}
			if e.now().Sub(lastProgress) >= e.watchdog {
				cancel()
				return nil, ErrStuck
			}
		}
	}
}

// jobExpired reports whether the job's client deadline has passed.
func (e *Engine) jobExpired(j *Job) bool {
	h := j.home
	h.mu.Lock()
	d := j.deadline
	h.mu.Unlock()
	return !d.IsZero() && e.now().After(d)
}

// jobAbandoned reports whether the job's run context was cancelled
// because its last synchronous waiter disconnected. A job that picked
// up a new waiter (or a pinned async submitter) after the cancellation
// raced in is revived with a fresh run context while still queued.
func (e *Engine) jobAbandoned(j *Job) bool {
	h := j.home
	h.mu.Lock()
	defer h.mu.Unlock()
	if j.runCtx == nil || context.Cause(j.runCtx) != ErrAbandoned {
		return false
	}
	if (j.waiters > 0 || j.pinned) && j.state == JobQueued {
		j.runCtx, j.runCancel = context.WithCancelCause(e.baseCtx)
		return false
	}
	return true
}

// noteLatency folds one attempt's wall-clock duration into the EWMA
// (α = 0.2) that admission control multiplies by queue depth to
// estimate wait time. Stored as float64 bits in an atomic, CAS-looped:
// workers record concurrently and the submit path reads lock-free.
func (e *Engine) noteLatency(d time.Duration) {
	s := d.Seconds()
	for {
		old := e.latEWMA.Load()
		next := s
		if old != 0 {
			next = 0.8*math.Float64frombits(old) + 0.2*s
		}
		if e.latEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// latencyEWMA returns the smoothed per-job latency, zero when no job
// has completed an attempt yet.
func (e *Engine) latencyEWMA() time.Duration {
	return time.Duration(math.Float64frombits(e.latEWMA.Load()) * float64(time.Second))
}

// estimateWait is the admission-control wait estimate for a job landing
// on shard sh: the jobs already queued there, each costing one EWMA
// latency. Work stealing makes this pessimistic on idle siblings —
// which is the right bias for a shedding decision.
func (e *Engine) estimateWait(sh *shard) time.Duration {
	return time.Duration(sh.qlen.Load()) * e.latencyEWMA()
}

// noteReject stamps the overload-hysteresis clock: the health state
// machine reports overloaded for overloadHold after the last rejection.
func (e *Engine) noteReject() {
	e.lastReject.Store(e.now().UnixNano())
}

// RetryAfterSeconds is the Retry-After hint served with 429 responses:
// the time to drain the current aggregate queue through all workers at
// the observed per-job latency, rounded up, at least 1s.
func (e *Engine) RetryAfterSeconds() int {
	ewma := e.latencyEWMA()
	if ewma <= 0 {
		return 1
	}
	drain := time.Duration(e.queued.Load()) * ewma / time.Duration(len(e.workers))
	secs := int((drain + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Now returns the engine's current time through the injectable clock
// seam — callers computing deadlines must use it so fake-clock tests
// stay coherent.
func (e *Engine) Now() time.Time { return e.now() }

// panicError is a recovered worker panic in error form; the stack it
// carries surfaces in JobStatus.Error.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("job panicked: %v\n%s", p.val, p.stack)
}

// transient reports whether an attempt error is worth retrying: job
// timeouts and injected transient I/O failures. Simulator and
// validation errors are deterministic, so retrying them is waste.
func transient(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, faultinject.ErrIO)
}

// isShutdownErr reports whether the failure is shutdown interruption
// rather than a property of the job — such jobs keep their pending
// journal record so a restart replays them.
func isShutdownErr(err error) bool {
	return errors.Is(err, ErrShutdown) || errors.Is(err, context.Canceled)
}

// quarantine permanently fails a job whose key keeps panicking and
// journals the poison marker so it survives restarts.
func (e *Engine) quarantine(id int, j *Job, cause error) {
	h := j.home
	h.mu.Lock()
	j.state = JobQuarantined
	j.err = fmt.Errorf("quarantined after %d panics: %w", j.panics, cause)
	msg := j.err.Error()
	h.mu.Unlock()
	w := e.workers[id]
	w.statsMu.Lock()
	w.stats.quarantined++
	w.stats.failed++
	w.statsMu.Unlock()
	rec := journal.Record{Op: journal.OpQuarantined, Key: j.Key, Err: msg}
	if c, err := j.Req.Canonical(); err == nil {
		rec.Req = c
	}
	e.journalAppend(rec)
	e.settle(j)
}

// settle releases a job's run context and closes its done channel —
// the single exit point for quarantine and finish.
func (e *Engine) settle(j *Job) {
	h := j.home
	h.mu.Lock()
	if j.runCancel != nil {
		j.runCancel(nil)
	}
	h.mu.Unlock()
	close(j.done)
}

func (e *Engine) finish(id int, j *Job, data []byte, err error) {
	h := j.home
	h.mu.Lock()
	if err != nil {
		j.state, j.err = JobFailed, err
	} else {
		j.state, j.resultJSON = JobDone, data
	}
	h.mu.Unlock()
	w := e.workers[id]
	journaled := false
	if err != nil {
		w.statsMu.Lock()
		w.stats.failed++
		w.statsMu.Unlock()
		// Shutdown-interrupted jobs keep their pending journal record
		// so the next start replays them; genuine failures are terminal.
		if !isShutdownErr(err) && !e.closing.Load() {
			journaled = e.journalAppend(journal.Record{Op: journal.OpFailed, Key: j.Key, Err: err.Error()})
		} else {
			journaled = true // intentionally left pending, not a durability gap
		}
	} else {
		journaled = e.journalAppend(journal.Record{Op: journal.OpDone, Key: j.Key})
		w.statsMu.Lock()
		w.stats.completed++
		if j.Req.Multicore != nil {
			var r multicore.Result
			if json.Unmarshal(data, &r) == nil {
				addMulticoreLocked(&w.stats, &r)
			}
		} else {
			var r sim.Result
			if json.Unmarshal(data, &r) == nil {
				addUtilizationLocked(&w.stats, r.Utilization)
			}
		}
		w.statsMu.Unlock()
	}
	if e.journal != nil && !journaled {
		h.mu.Lock()
		j.nonDurable = true
		h.mu.Unlock()
	}
	e.settle(j)
}

// addUtilizationLocked folds one freshly simulated cell's utilization
// telemetry into the worker's accumulator. Caller holds statsMu.
func addUtilizationLocked(ws *workerStats, u pipeline.Utilization) {
	ws.utilN++
	for h := 0; h < 2; h++ {
		ws.utilSum.IntQHalfOcc[h] += u.IntQHalfOcc[h]
		ws.utilSum.FPQHalfOcc[h] += u.FPQHalfOcc[h]
	}
	ws.utilSum.ALUGrantShare = addVec(ws.utilSum.ALUGrantShare, u.ALUGrantShare)
	ws.utilSum.RFReadShare = addVec(ws.utilSum.RFReadShare, u.RFReadShare)
}

// addMulticoreLocked folds one freshly computed scheduling run's
// per-core telemetry into the worker's accumulator. Caller holds
// statsMu.
func addMulticoreLocked(ws *workerStats, r *multicore.Result) {
	ws.mcSum.Runs++
	ws.mcSum.CoolingStalls += r.CoolingStalls
	ws.mcSum.Migrations += uint64(r.Migrations)
	for len(ws.mcCoreN) < len(r.PerCore) {
		ws.mcCoreN = append(ws.mcCoreN, 0)
		ws.mcSum.CoreUtilization = append(ws.mcSum.CoreUtilization, 0)
		ws.mcSum.CoreAvgTempK = append(ws.mcSum.CoreAvgTempK, 0)
		ws.mcSum.CorePeakTempK = append(ws.mcSum.CorePeakTempK, 0)
	}
	for i, c := range r.PerCore {
		ws.mcCoreN[i]++
		ws.mcSum.CoreUtilization[i] += c.Utilization
		ws.mcSum.CoreAvgTempK[i] += c.AvgTempK
		if c.PeakTempK > ws.mcSum.CorePeakTempK[i] {
			ws.mcSum.CorePeakTempK[i] = c.PeakTempK
		}
	}
}

// addVec accumulates b into a element-wise, growing a as needed.
func addVec(a, b []float64) []float64 {
	for len(a) < len(b) {
		a = append(a, 0)
	}
	for i, v := range b {
		a[i] += v
	}
	return a
}

// runCell executes one simulation cell on config.Default() with the
// request's plan/techniques — or one multi-core scheduling run when the
// request carries the multicore shape — and returns the canonical
// result JSON.
func runCell(ctx context.Context, req Request) ([]byte, error) {
	req = req.Normalize()
	if req.Multicore != nil {
		r, err := multicore.Run(ctx, *req.Multicore)
		if err != nil {
			return nil, err
		}
		return json.Marshal(r)
	}
	cfg := config.Default()
	cfg.Plan = req.Plan
	cfg.Techniques = req.Techniques
	s, err := sim.NewByName(cfg, req.Benchmark)
	if err != nil {
		return nil, err
	}
	s.WarmupInstructions = req.Warmup
	r, err := s.RunCyclesContext(ctx, req.Cycles)
	if err != nil {
		return nil, err
	}
	return json.Marshal(r)
}

// SubmitOptions carries per-submission overload-protection options.
type SubmitOptions struct {
	// Deadline, when nonzero, is the latest wall-clock instant the
	// caller still wants the result. Admission sheds the submission
	// (ErrDeadlineUnmeetable) when the estimated queue wait already
	// blows it; workers shed queued jobs whose deadline passed
	// (ErrDeadlineExpired). Zero applies the engine's default deadline,
	// if configured.
	Deadline time.Time
}

// Submit registers the request and returns its job. The fast paths, in
// order: an identical job already queued or running is shared
// (single-flight); a cached result completes the job immediately; a
// known done job is returned as-is. Otherwise the job is enqueued on
// its key's shard, or ErrQueueFull is returned when the aggregate
// queue is at capacity. A previously failed key is re-enqueued
// (failures are not cached).
func (e *Engine) Submit(req Request) (*Job, error) {
	return e.submit(req, SubmitOptions{}, false)
}

// SubmitOpts is Submit with overload-protection options.
func (e *Engine) SubmitOpts(req Request, opt SubmitOptions) (*Job, error) {
	return e.submit(req, opt, false)
}

func (e *Engine) submit(req Request, opt SubmitOptions, abandonable bool) (*Job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	req = req.Normalize()
	key, err := req.Key()
	if err != nil {
		return nil, err
	}
	if opt.Deadline.IsZero() && e.defaultDeadline > 0 {
		opt.Deadline = e.now().Add(e.defaultDeadline)
	}
	sh := e.shardFor(key)
	sh.mu.Lock()
	j, _, err := e.submitLocked(sh, key, req, opt, false, abandonable)
	sh.mu.Unlock()
	return j, err
}

// SubmitWait submits on the synchronous path and blocks until the job
// settles or ctx is done. When ctx dies first — the HTTP client behind
// a ?wait=1 request disconnected — the waiter deregisters, and if it
// was the job's only interested party (no other waiters, never joined
// by an async/batch/replay submission) the job's run context is
// cancelled with ErrAbandoned so the worker stops computing a result
// nobody will read.
func (e *Engine) SubmitWait(ctx context.Context, req Request, opt SubmitOptions) (JobStatus, error) {
	j, err := e.submit(req, opt, true)
	if err != nil {
		return JobStatus{}, err
	}
	h := j.home
	h.mu.Lock()
	if j.state == JobDone || j.state == JobFailed || j.state == JobQuarantined {
		st := statusLocked(j)
		h.mu.Unlock()
		return st, nil
	}
	j.waiters++
	h.mu.Unlock()
	select {
	case <-j.done:
		h.mu.Lock()
		j.waiters--
		h.mu.Unlock()
		return j.snapshot(), nil
	case <-ctx.Done():
		h.mu.Lock()
		j.waiters--
		if j.waiters == 0 && !j.pinned && j.runCancel != nil &&
			(j.state == JobQueued || j.state == JobRunning) {
			j.runCancel(ErrAbandoned)
		}
		h.mu.Unlock()
		return JobStatus{}, ctx.Err()
	}
}

// submitLocked is the admission path for one job; the caller holds
// sh.mu. With reserved true (batch admission) the aggregate capacity
// was claimed up front and enqueued reports whether this job actually
// consumed a slot. abandonable marks a sole-synchronous-waiter
// submission; any other join pins the job against client abandonment.
func (e *Engine) submitLocked(sh *shard, key string, req Request, opt SubmitOptions, reserved, abandonable bool) (j *Job, enqueued bool, err error) {
	if e.closed.Load() {
		return nil, false, ErrShutdown
	}
	if j, ok := sh.jobs[key]; ok && (j.state == JobQueued || j.state == JobRunning) {
		sh.deduped++
		if !abandonable {
			j.pinned = true
		}
		// The shared job honors the most generous deadline among its
		// submitters: any no-deadline join clears it, otherwise the
		// later deadline wins.
		if opt.Deadline.IsZero() {
			j.deadline = time.Time{}
		} else if !j.deadline.IsZero() && opt.Deadline.After(j.deadline) {
			j.deadline = opt.Deadline
		}
		return j, false, nil
	}
	if j, ok := sh.jobs[key]; ok && j.state == JobQuarantined {
		// Poisoned input: permanently failed, never re-enqueued.
		return j, false, nil
	}
	if data, ok := e.cache.Get(key); ok {
		if j, ok := sh.jobs[key]; ok && j.state == JobDone && j.cached {
			// Repeat hit: results are deterministic, so the bytes are the
			// job's bytes — reuse it instead of allocating a twin.
			return j, false, nil
		}
		j := &Job{Key: key, Req: req, home: sh, state: JobDone, cached: true, resultJSON: data, done: closedDone}
		sh.jobs[key] = j
		return j, false, nil
	}
	if j, ok := sh.jobs[key]; ok && j.state == JobDone {
		// Done but evicted from the cache: still serve the job's bytes.
		return j, false, nil
	}
	if !opt.Deadline.IsZero() {
		if wait := e.estimateWait(sh); wait > 0 && e.now().Add(wait).After(opt.Deadline) {
			e.shedAdmission.Add(1)
			e.noteReject()
			return nil, false, ErrDeadlineUnmeetable
		}
	}
	if !reserved && !e.reserveSlots(1) {
		e.noteReject()
		return nil, false, ErrQueueFull
	}
	j = &Job{Key: key, Req: req, home: sh, state: JobQueued, done: make(chan struct{}),
		deadline: opt.Deadline, pinned: !abandonable}
	j.runCtx, j.runCancel = context.WithCancelCause(e.baseCtx)
	// Journal ordering: the submit record lands before the job becomes
	// runnable, so a crash between the two replays rather than loses it.
	if c, err := req.Canonical(); err == nil {
		e.journalAppend(journal.Record{Op: journal.OpSubmit, Key: key, Req: c})
	}
	sh.push(j)
	sh.jobs[key] = j
	e.signalWork()
	return j, true, nil
}

// SubmitBatch expands the batch into cell jobs and registers an
// aggregate batch job. All cells are admitted atomically: the batch
// reserves every needed queue slot in one operation while holding all
// shard locks, so either every cell that needs to run is enqueued or
// the whole batch is rejected with ErrQueueFull and nothing is
// enqueued — no concurrent submitter can wedge a batch half in.
func (e *Engine) SubmitBatch(breq BatchRequest) (*Batch, error) {
	return e.SubmitBatchOpts(breq, SubmitOptions{})
}

// SubmitBatchOpts is SubmitBatch with overload-protection options; the
// deadline applies to every cell, and a single unmeetable cell rejects
// the whole batch (all-or-nothing, like capacity).
func (e *Engine) SubmitBatchOpts(breq BatchRequest, opt SubmitOptions) (*Batch, error) {
	key, err := breq.Key()
	if err != nil {
		return nil, err
	}
	if opt.Deadline.IsZero() && e.defaultDeadline > 0 {
		opt.Deadline = e.now().Add(e.defaultDeadline)
	}
	spec, cells, err := breq.Cells()
	if err != nil {
		return nil, err
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		if err := c.Validate(); err != nil {
			return nil, err
		}
		if keys[i], err = c.Key(); err != nil {
			return nil, err
		}
	}

	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.closed.Load() {
		return nil, ErrShutdown
	}
	if b, ok := e.batches[key]; ok && b.state != JobFailed {
		e.batchDeduped++
		return b, nil
	}

	// Admission: count the cells that need a queue slot with every
	// shard locked (freezing job states and the queues), then claim
	// that many slots in one atomic reservation. Workers may free
	// capacity concurrently — that only helps — but no submitter can
	// take it: they would need a shard lock we hold.
	for _, s := range e.shards {
		s.mu.Lock()
	}
	unlock := func() {
		for _, s := range e.shards {
			s.mu.Unlock()
		}
	}
	need := 0
	for i := range cells {
		sh := e.shardFor(keys[i])
		j, known := sh.jobs[keys[i]]
		inFlight := known && j.state != JobFailed
		if !inFlight && !e.cache.Contains(keys[i]) {
			need++
		}
	}
	if !e.reserveSlots(need) {
		unlock()
		e.noteReject()
		return nil, ErrQueueFull
	}

	b := &Batch{Key: key, Spec: spec, state: JobQueued, done: make(chan struct{})}
	b.cells = make([]*Job, len(cells))
	used := 0
	for i, c := range cells {
		sh := e.shardFor(keys[i])
		j, enq, err := e.submitLocked(sh, keys[i], c, opt, true, false)
		if err != nil {
			// A cell was shed (deadline unmeetable) or the engine closed
			// under us: release the unused reservation and reject the
			// whole batch — admission stays all-or-nothing.
			e.releaseSlot(need - used)
			unlock()
			b.state, b.err = JobFailed, err
			close(b.done)
			e.batches[key] = b
			return nil, err
		}
		if enq {
			used++
		}
		b.cells[i] = j
	}
	e.releaseSlot(need - used) // cells deduped inside the batch, if any
	unlock()
	e.batches[key] = b
	go e.aggregate(b)
	return b, nil
}

// aggregate waits for every cell of the batch and settles the batch
// state: failed with the first (lowest-indexed) cell error, else done.
func (e *Engine) aggregate(b *Batch) {
	for _, j := range b.cells {
		<-j.done
	}
	e.batchMu.Lock()
	b.state = JobDone
	for _, j := range b.cells {
		// Settled before close(done), so the read is ordered.
		if j.err != nil {
			b.state, b.err = JobFailed, j.err
			break
		}
	}
	e.batchMu.Unlock()
	close(b.done)
}

// Job returns a snapshot of the job for key. Unknown in-memory keys
// fall back to the cache (content-addressed, so a daemon restarted over
// a warm disk cache still answers for completed jobs).
func (e *Engine) Job(key string) (JobStatus, bool) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	if j, ok := sh.jobs[key]; ok {
		st := statusLocked(j)
		sh.mu.Unlock()
		return st, true
	}
	sh.mu.Unlock()
	if !isKey(key) {
		return JobStatus{}, false
	}
	if data, ok := e.cache.Get(key); ok {
		return JobStatus{Key: key, State: JobDone, Cached: true, Result: data}, true
	}
	return JobStatus{}, false
}

// snapshot returns the job's status under its home shard lock.
func (j *Job) snapshot() JobStatus {
	j.home.mu.Lock()
	defer j.home.mu.Unlock()
	return statusLocked(j)
}

// statusLocked snapshots a job; the caller holds the home shard mutex.
func statusLocked(j *Job) JobStatus {
	st := JobStatus{Key: j.Key, State: j.state, Cached: j.cached, Req: j.Req,
		Attempts: j.attempts, Panics: j.panics, NonJournaled: j.nonDurable}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == JobDone {
		st.Result = j.resultJSON
	}
	return st
}

// BatchJob returns a snapshot of the batch for key.
func (e *Engine) BatchJob(key string) (BatchStatus, bool) {
	e.batchMu.Lock()
	b, ok := e.batches[key]
	st := BatchStatus{}
	if ok {
		st = e.batchStatus(b)
	}
	e.batchMu.Unlock()
	return st, ok
}

// batchStatus snapshots a batch; the caller holds batchMu. Cell states
// are read through each cell's own shard lock.
func (e *Engine) batchStatus(b *Batch) BatchStatus {
	st := BatchStatus{Key: b.Key, State: b.state, Experiment: b.Spec.ID}
	if b.err != nil {
		st.Error = b.err.Error()
	}
	st.Cells = make([]BatchCellInfo, len(b.cells))
	for i, j := range b.cells {
		cs := j.snapshot()
		st.Cells[i] = BatchCellInfo{
			Key: j.Key, Benchmark: j.Req.Benchmark,
			Variant: variantName(b.Spec, i), State: cs.State, Cached: cs.Cached,
		}
	}
	return st
}

func variantName(spec experiments.Spec, cellIndex int) string {
	if len(spec.Variants) == 0 {
		return ""
	}
	return spec.Variants[cellIndex%len(spec.Variants)].Name
}

// Wait blocks until the job for key settles or ctx is done, and returns
// the settled snapshot.
func (e *Engine) Wait(ctx context.Context, key string) (JobStatus, error) {
	sh := e.shardFor(key)
	sh.mu.Lock()
	j, ok := sh.jobs[key]
	sh.mu.Unlock()
	if !ok {
		if st, ok := e.Job(key); ok { // cache fallback
			return st, nil
		}
		return JobStatus{}, fmt.Errorf("service: unknown job %q", key)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	return j.snapshot(), nil
}

// WaitBatch blocks until the batch settles or ctx is done.
func (e *Engine) WaitBatch(ctx context.Context, key string) (BatchStatus, error) {
	e.batchMu.Lock()
	b, ok := e.batches[key]
	e.batchMu.Unlock()
	if !ok {
		return BatchStatus{}, fmt.Errorf("service: unknown batch %q", key)
	}
	select {
	case <-b.done:
	case <-ctx.Done():
		return BatchStatus{}, ctx.Err()
	}
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	return e.batchStatus(b), nil
}

// BatchMatrix assembles a settled done batch into an experiments.Matrix
// (cells in serial iteration order, results decoded from the cached
// JSON), ready for the paper-style report renderers.
func (e *Engine) BatchMatrix(key string) (*experiments.Matrix, error) {
	e.batchMu.Lock()
	b, ok := e.batches[key]
	if !ok {
		e.batchMu.Unlock()
		return nil, fmt.Errorf("service: unknown batch %q", key)
	}
	if b.state != JobDone {
		e.batchMu.Unlock()
		return nil, fmt.Errorf("service: batch %q is %s", key, b.state)
	}
	spec := b.Spec
	cells := make([]*Job, len(b.cells))
	copy(cells, b.cells)
	e.batchMu.Unlock()

	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	for i, j := range cells {
		var r sim.Result
		// b.state == JobDone was set after every cell settled, so the
		// result bytes are ordered before this read.
		if err := json.Unmarshal(j.resultJSON, &r); err != nil {
			return nil, fmt.Errorf("service: batch %q cell %d: %w", key, i, err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
	}
	return m, nil
}

// RunMatrix runs an experiment spec through the engine: every cell is
// submitted (cached cells settle instantly) and awaited in serial
// order, so progress lines and the assembled Matrix are deterministic.
// This is the path cmd/experiments -cache-dir takes.
func (e *Engine) RunMatrix(ctx context.Context, spec experiments.Spec, w io.Writer) (*experiments.Matrix, error) {
	cells := SpecCells(spec)
	jobs := make([]*Job, len(cells))
	for i, c := range cells {
		j, err := e.Submit(c)
		if err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", c.Benchmark, variantName(spec, i), err)
		}
		jobs[i] = j
	}
	m := &experiments.Matrix{Spec: spec, Cells: make([]experiments.Cell, len(cells))}
	prog := runner.NewProgress(w, len(cells))
	for i, j := range jobs {
		st, err := e.Wait(ctx, j.Key)
		if err != nil {
			return nil, err
		}
		if st.State != JobDone {
			return nil, fmt.Errorf("service: %s/%s: %s", j.Req.Benchmark, variantName(spec, i), st.Error)
		}
		var r sim.Result
		if err := json.Unmarshal(st.Result, &r); err != nil {
			return nil, fmt.Errorf("service: %s/%s: %w", j.Req.Benchmark, variantName(spec, i), err)
		}
		m.Cells[i] = experiments.Cell{Benchmark: j.Req.Benchmark, Variant: variantName(spec, i), R: &r}
		note := ""
		if st.Cached {
			note = " (cached)"
		}
		prog.Step("%s %-9s %-24s IPC=%.3f stalls=%d%s", spec.ID, j.Req.Benchmark, variantName(spec, i), r.IPC, r.Stalls, note)
	}
	return m, nil
}

// Metrics returns the engine counter snapshot, folding the per-worker
// and per-shard accumulators — the only place they are combined.
func (e *Engine) Metrics() Metrics {
	cs := e.cache.Stats()
	up := time.Since(e.start).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ready, _ := e.Ready()

	m := Metrics{
		UptimeSeconds:     up,
		JobsQueued:        int(e.queued.Load()),
		JobsRunning:       int(e.running.Load()),
		JournalErrors:     e.journalErrs.Load(),
		Ready:             ready,
		JobsShedAdmission: e.shedAdmission.Load(),
		JournalSkipped:    e.journalSkipped.Load(),
		Durability:        e.durability(),
		QueueWaitEWMAMS:   float64(e.latencyEWMA()) / float64(time.Millisecond),
		CacheBreaker:      e.cbrk.Snapshot(),
		JournalBreaker:    e.jbrk.Snapshot(),
		Health:            e.healthMetrics(),
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheEntries:  cs.Entries,
		Cache:         cs,
		Shards:        make([]ShardMetrics, len(e.shards)),
		Runtime: RuntimeMetrics{
			Goroutines:      runtime.NumGoroutine(),
			NumCPU:          runtime.NumCPU(),
			HeapAllocBytes:  ms.HeapAlloc,
			HeapSysBytes:    ms.HeapSys,
			TotalAllocBytes: ms.TotalAlloc,
			GCCycles:        ms.NumGC,
			GCPauseTotalMS:  float64(ms.PauseTotalNs) / 1e6,
		},
	}
	if e.cbrk.State() != BreakerClosed {
		m.CacheDegraded = 1
	}
	for i, s := range e.shards {
		m.Shards[i] = ShardMetrics{QueueDepth: int(s.qlen.Load())}
		s.mu.Lock()
		m.JobsDeduped += s.deduped
		s.mu.Unlock()
	}
	e.batchMu.Lock()
	m.JobsDeduped += e.batchDeduped
	e.batchMu.Unlock()

	var utilN uint64
	utilSum := UtilizationMetrics{}
	mcSum := MulticoreMetrics{}
	var mcCoreN []uint64
	for _, w := range e.workers {
		w.statsMu.Lock()
		st := &w.stats
		m.JobsCompleted += st.completed
		m.JobsFailed += st.failed
		m.JobsRetried += st.retries
		m.JobPanics += st.panics
		m.JobsQuarantined += st.quarantined
		m.JobsStolen += st.stolen
		m.JobsShedExpired += st.shedExpired
		m.JobsClientAbandoned += st.abandoned
		m.JobsWatchdogFired += st.watchdog
		utilN += st.utilN
		for h := 0; h < 2; h++ {
			utilSum.IntQHalfOcc[h] += st.utilSum.IntQHalfOcc[h]
			utilSum.FPQHalfOcc[h] += st.utilSum.FPQHalfOcc[h]
		}
		utilSum.ALUGrantShare = addVec(utilSum.ALUGrantShare, st.utilSum.ALUGrantShare)
		utilSum.RFReadShare = addVec(utilSum.RFReadShare, st.utilSum.RFReadShare)
		mcSum.Runs += st.mcSum.Runs
		mcSum.CoolingStalls += st.mcSum.CoolingStalls
		mcSum.Migrations += st.mcSum.Migrations
		for len(mcCoreN) < len(st.mcCoreN) {
			mcCoreN = append(mcCoreN, 0)
			mcSum.CoreUtilization = append(mcSum.CoreUtilization, 0)
			mcSum.CoreAvgTempK = append(mcSum.CoreAvgTempK, 0)
			mcSum.CorePeakTempK = append(mcSum.CorePeakTempK, 0)
		}
		for i, n := range st.mcCoreN {
			mcCoreN[i] += n
			mcSum.CoreUtilization[i] += st.mcSum.CoreUtilization[i]
			mcSum.CoreAvgTempK[i] += st.mcSum.CoreAvgTempK[i]
			if st.mcSum.CorePeakTempK[i] > mcSum.CorePeakTempK[i] {
				mcSum.CorePeakTempK[i] = st.mcSum.CorePeakTempK[i]
			}
		}
		w.statsMu.Unlock()
	}
	if up > 0 {
		m.CellsPerSecond = float64(m.JobsCompleted) / up
	}
	m.Utilization = utilizationSnapshot(utilN, utilSum)
	m.Multicore = multicoreSnapshot(mcSum, mcCoreN)
	return m
}

// utilizationSnapshot averages the folded per-cell telemetry.
func utilizationSnapshot(utilN uint64, sum UtilizationMetrics) UtilizationMetrics {
	out := UtilizationMetrics{Cells: utilN}
	if utilN == 0 {
		return out
	}
	n := float64(utilN)
	for h := 0; h < 2; h++ {
		out.IntQHalfOcc[h] = sum.IntQHalfOcc[h] / n
		out.FPQHalfOcc[h] = sum.FPQHalfOcc[h] / n
	}
	out.ALUGrantShare = scaleVec(sum.ALUGrantShare, 1/n)
	out.RFReadShare = scaleVec(sum.RFReadShare, 1/n)
	return out
}

// multicoreSnapshot averages the folded per-run telemetry.
func multicoreSnapshot(sum MulticoreMetrics, coreN []uint64) MulticoreMetrics {
	out := MulticoreMetrics{
		Runs:          sum.Runs,
		CoolingStalls: sum.CoolingStalls,
		Migrations:    sum.Migrations,
	}
	if len(coreN) == 0 {
		return out
	}
	out.CoreUtilization = make([]float64, len(coreN))
	out.CoreAvgTempK = make([]float64, len(coreN))
	out.CorePeakTempK = make([]float64, len(coreN))
	for i, n := range coreN {
		if n == 0 {
			continue
		}
		out.CoreUtilization[i] = sum.CoreUtilization[i] / float64(n)
		out.CoreAvgTempK[i] = sum.CoreAvgTempK[i] / float64(n)
		out.CorePeakTempK[i] = sum.CorePeakTempK[i]
	}
	return out
}

// scaleVec returns a copy of v with every element multiplied by k.
func scaleVec(v []float64, k float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * k
	}
	return out
}

// HealthState is the engine's single degraded-mode state machine,
// ordered by severity: healthy → degraded (a disk breaker is open:
// serving and computing continue with reduced durability or cache
// reach) → overloaded (shedding work, or still replaying the journal)
// → draining (shutting down). It drives /readyz (503 only when
// overloaded or draining), /statusz, and the /metrics health section.
type HealthState string

const (
	HealthHealthy    HealthState = "healthy"
	HealthDegraded   HealthState = "degraded"
	HealthOverloaded HealthState = "overloaded"
	HealthDraining   HealthState = "draining"
)

// evalHealth derives the current state from the engine's signals. A
// rejection keeps the engine overloaded for overloadHold — hysteresis,
// so one burst does not flap /readyz per request.
func (e *Engine) evalHealth() HealthState {
	switch {
	case e.closing.Load() || e.draining.Load():
		return HealthDraining
	case !e.replayed.Load():
		return HealthOverloaded
	}
	if last := e.lastReject.Load(); last != 0 && e.now().UnixNano()-last < int64(e.overloadHold) {
		return HealthOverloaded
	}
	if e.cbrk.State() != BreakerClosed || e.jbrk.State() != BreakerClosed {
		return HealthDegraded
	}
	return HealthHealthy
}

// Health returns the current state and how long it has held, folding
// transitions into the per-state entered counters.
func (e *Engine) Health() (HealthState, time.Duration) {
	cur := e.evalHealth()
	e.healthMu.Lock()
	defer e.healthMu.Unlock()
	if cur != e.healthCur {
		e.healthCur = cur
		e.healthSince = e.now()
		e.healthEntered[cur]++
	}
	return cur, e.now().Sub(e.healthSince)
}

// healthMetrics snapshots the health section for /metrics and /statusz.
func (e *Engine) healthMetrics() HealthMetrics {
	state, held := e.Health()
	e.healthMu.Lock()
	entered := make(map[string]uint64, len(e.healthEntered))
	for s, n := range e.healthEntered {
		entered[string(s)] = n
	}
	e.healthMu.Unlock()
	return HealthMetrics{State: string(state), SinceSeconds: held.Seconds(), Entered: entered}
}

// Ready reports whether the engine should receive traffic, with a
// reason when it should not. Degraded is still ready — a daemon
// serving from memory with durability off beats no daemon — only
// overloaded and draining fail the readiness probe. The HTTP /readyz
// endpoint serves this.
func (e *Engine) Ready() (bool, string) {
	switch state, _ := e.Health(); state {
	case HealthDraining:
		return false, "draining"
	case HealthOverloaded:
		if !e.replayed.Load() {
			return false, "journal replay"
		}
		return false, "overloaded"
	}
	return true, ""
}

// durability names the journal contract currently in force: "off" (no
// journal configured), "journaled" (every transition WAL-logged), or
// "none" (journal breaker open: work is accepted and computed but
// transitions are not persisted; results settle NonJournaled and the
// engine re-journals outstanding state when the disk recovers).
func (e *Engine) durability() string {
	switch {
	case e.journal == nil:
		return "off"
	case e.jbrk.State() != BreakerClosed:
		return "none"
	default:
		return "journaled"
	}
}

// Statusz is the operator-facing /statusz snapshot: the health state
// machine, the degraded-mode contracts in force, breaker internals, and
// the overload-control readings behind recent admission decisions.
type Statusz struct {
	State          string            `json:"state"`
	SinceSeconds   float64           `json:"since_seconds"`
	Entered        map[string]uint64 `json:"entered"`
	Ready          bool              `json:"ready"`
	Reason         string            `json:"reason,omitempty"`
	Durability     string            `json:"durability"`
	CacheDegraded  bool              `json:"cache_degraded"`
	CacheBreaker   BreakerSnapshot   `json:"cache_breaker"`
	JournalBreaker BreakerSnapshot   `json:"journal_breaker"`

	QueueDepth        int     `json:"queue_depth"`
	QueueCapacity     int     `json:"queue_capacity"`
	QueueWaitEWMAMS   float64 `json:"queue_wait_ewma_ms"`
	RetryAfterSeconds int     `json:"retry_after_seconds"`
	DefaultDeadlineMS int64   `json:"default_deadline_ms,omitempty"`
	WatchdogMS        int64   `json:"watchdog_ms,omitempty"`

	JobsShedExpired     uint64 `json:"jobs_shed_expired"`
	JobsShedAdmission   uint64 `json:"jobs_shed_admission"`
	JobsClientAbandoned uint64 `json:"jobs_client_abandoned"`
	JobsWatchdogFired   uint64 `json:"jobs_watchdog_fired"`
	JournalSkipped      uint64 `json:"journal_skipped"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
}

// Statusz returns the degraded-mode snapshot served at /statusz.
func (e *Engine) Statusz() Statusz {
	hm := e.healthMetrics()
	ready, reason := e.Ready()
	var shed, abandoned, watchdog uint64
	for _, w := range e.workers {
		w.statsMu.Lock()
		shed += w.stats.shedExpired
		abandoned += w.stats.abandoned
		watchdog += w.stats.watchdog
		w.statsMu.Unlock()
	}
	return Statusz{
		State:          hm.State,
		SinceSeconds:   hm.SinceSeconds,
		Entered:        hm.Entered,
		Ready:          ready,
		Reason:         reason,
		Durability:     e.durability(),
		CacheDegraded:  e.cbrk.State() != BreakerClosed,
		CacheBreaker:   e.cbrk.Snapshot(),
		JournalBreaker: e.jbrk.Snapshot(),

		QueueDepth:        int(e.queued.Load()),
		QueueCapacity:     e.depth,
		QueueWaitEWMAMS:   float64(e.latencyEWMA()) / float64(time.Millisecond),
		RetryAfterSeconds: e.RetryAfterSeconds(),
		DefaultDeadlineMS: e.defaultDeadline.Milliseconds(),
		WatchdogMS:        e.watchdog.Milliseconds(),

		JobsShedExpired:     shed,
		JobsShedAdmission:   e.shedAdmission.Load(),
		JobsClientAbandoned: abandoned,
		JobsWatchdogFired:   watchdog,
		JournalSkipped:      e.journalSkipped.Load(),
		UptimeSeconds:       time.Since(e.start).Seconds(),
	}
}

// BeginDrain flips readiness off ahead of Shutdown, so a load balancer
// polling /readyz stops routing before the listener closes and the
// queue starts refusing work.
func (e *Engine) BeginDrain() { e.draining.Store(true) }

// Shutdown stops accepting submissions, lets running jobs drain, and
// fails jobs still queued. If ctx expires before the drain completes,
// in-flight runs are cancelled (they stop at their next sensor
// interval) and Shutdown returns ctx's error; otherwise nil.
//
// Journal semantics: every state reached during the drain is persisted
// before Shutdown returns — jobs that complete write their done
// records, while jobs abandoned in the queue or cancelled by the
// deadline write no terminal record at all, which is what makes
// restart replay accurate: exactly the interrupted work is resubmitted.
func (e *Engine) Shutdown(ctx context.Context) error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	e.closing.Store(true)
	e.draining.Store(true)
	// Fence: a submitter past the closed check holds its shard lock
	// until its job is enqueued, so after one lock/unlock round every
	// in-flight enqueue is visible to the workers' shutdown sweep and
	// every later submit fails with ErrShutdown.
	for _, s := range e.shards {
		s.mu.Lock()
		s.mu.Unlock() //nolint:staticcheck // empty critical section as a fence
	}
	close(e.stopCh)

	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		e.cancel() // abort in-flight runs
		<-done
	}
	e.cancel()
	// Workers are parked, so every journal append has happened; flush
	// them to stable storage before reporting the engine stopped.
	if e.journal != nil {
		if cerr := e.journal.Close(); cerr != nil {
			e.journalErrs.Add(1)
		}
	}
	return err
}
