// The content-addressed result cache: an in-memory LRU over result JSON
// bytes keyed by job key, with an optional on-disk layer that survives
// restarts. Disk entries are one file per key, written crash-safe:
// temp file + fsync + atomic rename, so a crash never leaves a
// half-written entry under the final name, and a reader racing the
// rename sees either the old or the new complete entry. Each entry
// wraps the result bytes in a CRC-32C envelope, so corruption —
// truncation, bit flips, zero-length files — is detected by checksum
// rather than by hoping JSON parsing fails; anything that fails the
// checksum or result validation is deleted and treated as a miss,
// never served.
package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/sim"
)

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits     uint64 `json:"hits"`      // total hits, memory + disk
	Misses   uint64 `json:"misses"`    // lookups that found nothing usable
	DiskHits uint64 `json:"disk_hits"` // hits served by promoting a disk entry
	Corrupt  uint64 `json:"corrupt"`   // disk entries rejected and removed
	Entries  int    `json:"entries"`   // current in-memory entry count
}

// Cache is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	dir      string // "" = memory only
	ll       *list.List
	items    map[string]*list.Element
	stats    CacheStats
	inj      *faultinject.Injector // chaos seam for disk I/O; nil in production
	brk      *Breaker              // disk-layer circuit breaker; nil = always closed
}

// SetInjector arms the disk-write chaos seam; a nil injector (the
// default) disarms it.
func (c *Cache) SetInjector(in *faultinject.Injector) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.inj = in
	c.mu.Unlock()
}

// SetBreaker wraps the disk layer in a circuit breaker: while it is
// open, reads and writes skip the disk entirely and the cache serves
// memory-only (degraded mode). A nil breaker — the default — never
// opens. The engine installs its cache breaker here at construction.
func (c *Cache) SetBreaker(b *Breaker) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.brk = b
	c.mu.Unlock()
}

type cacheEntry struct {
	key  string
	data []byte
}

// NewCache returns a cache holding at most capacity entries in memory
// (capacity < 1 is raised to 1), persisting entries under dir when dir
// is non-empty. The directory is created if needed.
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity < 1 {
		capacity = 1
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		capacity: capacity,
		dir:      dir,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// Get returns the cached result bytes for key. A disk entry is
// validated, promoted into memory, and counted as a (disk) hit; invalid
// disk entries are removed and counted as corrupt misses.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).data, true
	}
	if data, ok := c.diskGet(key); ok {
		c.put(key, data)
		c.stats.Hits++
		c.stats.DiskHits++
		return data, true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores the result bytes for key in memory (evicting the
// least-recently-used entry beyond capacity) and, if configured, on
// disk. Write errors to disk are ignored: the disk layer is an
// optimization, not a durability guarantee.
func (c *Cache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, data)
	c.diskPut(key, data)
}

func (c *Cache) put(key string, data []byte) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).data = data
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.items[key] = el
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Contains reports whether key is present in memory or on disk,
// without touching the hit/miss counters or the LRU order. Used for
// batch admission control, where a probe is not a lookup.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	_, ok := c.items[key]
	c.mu.Unlock()
	if ok {
		return true
	}
	if c.dir == "" || !isKey(key) || c.brk.State() != BreakerClosed {
		// Degraded mode: the disk cannot be trusted to answer, so batch
		// admission must assume the cell needs computing.
		return false
	}
	_, err := os.Stat(c.path(key))
	return err == nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// --- disk layer -----------------------------------------------------------

// diskEnvelope frames a disk entry: the result bytes plus their length
// and CRC-32C. Torn or bit-flipped entries fail the checksum — a much
// stronger detector than "does it still parse as JSON".
type diskEnvelope struct {
	CRC32C uint32          `json:"crc32c"`
	Len    int             `json:"len"`
	Result json.RawMessage `json:"result"`
}

// castagnoli is the CRC-32C polynomial table shared with the journal.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func (c *Cache) path(key string) string {
	// Two-character fan-out keeps directories small at scale.
	return filepath.Join(c.dir, key[:2], key+".json")
}

func (c *Cache) diskGet(key string) ([]byte, bool) {
	if c.dir == "" || !isKey(key) {
		return nil, false
	}
	if !c.brk.Allow() {
		return nil, false // degraded: memory-only until the disk recovers
	}
	start := c.inj.Now()
	if err := c.inj.Fire(faultinject.SiteCacheRead); err != nil {
		c.brk.Record(c.inj.Now().Sub(start), err)
		return nil, false
	}
	p := c.path(key)
	blob, err := os.ReadFile(p)
	if err != nil {
		// A missing entry is a healthy miss; any other read error is
		// the disk failing under us.
		if os.IsNotExist(err) {
			c.brk.Record(c.inj.Now().Sub(start), nil)
		} else {
			c.brk.Record(c.inj.Now().Sub(start), err)
		}
		return nil, false
	}
	c.brk.Record(c.inj.Now().Sub(start), nil)
	data, ok := decodeEnvelope(blob)
	if !ok || !validResult(data) {
		c.stats.Corrupt++
		os.Remove(p)
		return nil, false
	}
	return data, true
}

// decodeEnvelope unwraps and checksums one disk entry, reporting false
// for anything damaged: truncated files, zero-length files, bit flips
// (in payload or frame), or pre-envelope legacy entries.
func decodeEnvelope(blob []byte) ([]byte, bool) {
	var env diskEnvelope
	if err := json.Unmarshal(blob, &env); err != nil || env.Result == nil {
		return nil, false
	}
	data := []byte(env.Result)
	if len(data) != env.Len || crc32.Checksum(data, castagnoli) != env.CRC32C {
		return nil, false
	}
	return data, true
}

// encodeEnvelope wraps result bytes for disk. data must be valid JSON
// (it always is: these are marshalled sim results), so embedding it as
// a RawMessage keeps the exact bytes.
func encodeEnvelope(data []byte) ([]byte, error) {
	return json.Marshal(diskEnvelope{
		CRC32C: crc32.Checksum(data, castagnoli),
		Len:    len(data),
		Result: json.RawMessage(data),
	})
}

func (c *Cache) diskPut(key string, data []byte) {
	if c.dir == "" || !isKey(key) {
		return
	}
	if !c.brk.Allow() {
		return // degraded: memory-only until the disk recovers
	}
	blob, err := encodeEnvelope(data)
	if err != nil {
		return
	}
	p := c.path(key)
	start := c.inj.Now()
	record := func(err error) {
		c.brk.Record(c.inj.Now().Sub(start), err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		record(err)
		return
	}
	if torn, ferr := c.inj.FireWrite(faultinject.SiteCacheWrite, blob); ferr != nil || len(torn) != len(blob) {
		// Injected fault: ENOSPC drops the write; a torn outcome lands
		// the truncated blob under the final name, as a crash on a
		// non-atomic filesystem would — the checksum must catch it. The
		// breaker sees the error form; a silent tear looked like
		// success to the writer, so it records success.
		if len(torn) != len(blob) {
			os.WriteFile(p, torn, 0o644)
		}
		record(ferr)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		record(err)
		return
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		record(err)
		return
	}
	// fsync before rename: otherwise a power cut can leave the rename
	// durable but the contents not — exactly the torn entry the
	// checksum exists to catch, but better never to create it.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		record(err)
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		record(err)
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		record(err)
		return
	}
	record(nil)
}

// validResult reports whether data parses as a result JSON document
// with consistent block/temperature vectors.
func validResult(data []byte) bool {
	var r sim.Result
	return json.Unmarshal(data, &r) == nil
}
