package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
)

// mcParams is a real multicore run small enough for the test suite: two
// cores, a four-task queue, well under a second of wall time.
func mcParams() *multicore.Params {
	return &multicore.Params{
		Cores:      2,
		Scheduler:  config.SchedCoolestFirst,
		Cycles:     300_000,
		Warmup:     10_000,
		Tasks:      4,
		TaskCycles: 60_000,
		Seed:       7,
	}
}

// TestMulticoreRequestKeys pins the cache-compatibility contract of the
// multicore job kind: plain cell requests keep their exact canonical
// bytes (the multicore field must not appear), multicore requests hash
// on their normalized params, and the two shapes can never collide.
func TestMulticoreRequestKeys(t *testing.T) {
	cell, err := cellReq("eon").Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cell), "multicore") {
		t.Errorf("cell canonical form grew a multicore field: %s", cell)
	}

	mc := Request{Multicore: mcParams()}
	k1, err := mc.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := Request{Multicore: mcParams()}.Key()
	if k1 != k2 || !isKey(k1) {
		t.Fatalf("multicore keys %q / %q not stable", k1, k2)
	}
	ck, _ := cellReq("eon").Key()
	if k1 == ck {
		t.Error("multicore and cell requests share a key")
	}
	// Explicit defaults and omitted fields share a key, as for cells.
	explicit := mcParams()
	norm := explicit.Normalized()
	ke, _ := Request{Multicore: explicit}.Key()
	kn, _ := Request{Multicore: &norm}.Key()
	if ke != kn {
		t.Error("normalized and raw multicore params hash differently")
	}
	// Different schedulers are different jobs.
	other := mcParams()
	other.Scheduler = config.SchedRoundRobin
	ko, _ := Request{Multicore: other}.Key()
	if ko == k1 {
		t.Error("different schedulers share a key")
	}
}

func TestMulticoreRequestValidate(t *testing.T) {
	if err := (Request{Multicore: mcParams()}).Validate(); err != nil {
		t.Errorf("valid multicore request rejected: %v", err)
	}
	mixed := Request{Benchmark: "eon", Multicore: mcParams()}
	if err := mixed.Validate(); err == nil {
		t.Error("request mixing cell and multicore shapes accepted")
	}
	bad := mcParams()
	bad.Cores = 999
	if err := (Request{Multicore: bad}).Validate(); err == nil {
		t.Error("out-of-range core count accepted")
	}
}

// TestServerMulticoreLifecycle drives the multicore job kind end to end
// over HTTP: submit, cached resubmit with byte-identical result JSON,
// rendered report, and the aggregated /metrics section.
func TestServerMulticoreLifecycle(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"multicore":{"cores":2,"scheduler":"coolest-first","cycles":300000,` +
		`"warmup":10000,"tasks":4,"task_cycles":60000,"seed":7}}`

	code, resp := postJSON(t, ts.URL+"/v1/jobs?wait=1", body)
	if code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var st1 JobStatus
	if err := json.Unmarshal(resp, &st1); err != nil {
		t.Fatal(err)
	}
	if st1.State != JobDone || st1.Cached {
		t.Fatalf("first submit status: %+v", st1)
	}
	var r multicore.Result
	if err := json.Unmarshal(st1.Result, &r); err != nil {
		t.Fatal(err)
	}
	if r.Cores != 2 || r.Scheduler != "coolest-first" || len(r.PerCore) != 2 {
		t.Fatalf("unexpected result shape: %+v", r)
	}

	code, resp = postJSON(t, ts.URL+"/v1/jobs?wait=1", body)
	var st2 JobStatus
	if code != http.StatusOK || json.Unmarshal(resp, &st2) != nil {
		t.Fatalf("resubmit: %d %s", code, resp)
	}
	if !st2.Cached || st2.Key != st1.Key {
		t.Fatalf("resubmit not a cache hit: %+v", st2)
	}
	if string(st1.Result) != string(st2.Result) {
		t.Error("result JSON not byte-identical across submissions")
	}

	code, rep := get(t, ts.URL+"/v1/jobs/"+st1.Key+"/report")
	if code != http.StatusOK {
		t.Fatalf("GET report: %d %s", code, rep)
	}
	for _, want := range []string{"scheduler coolest-first", "aggregate IPC", "hottest"} {
		if !strings.Contains(string(rep), want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}

	code, mb := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET metrics: %d", code)
	}
	var m Metrics
	if err := json.Unmarshal(mb, &m); err != nil {
		t.Fatal(err)
	}
	// One fresh run folded in; the cache hit did not double-count.
	if m.Multicore.Runs != 1 {
		t.Errorf("multicore runs = %d, want 1", m.Multicore.Runs)
	}
	if len(m.Multicore.CoreUtilization) != 2 || len(m.Multicore.CorePeakTempK) != 2 {
		t.Errorf("per-core metrics not sized to the run: %+v", m.Multicore)
	}
	for i, u := range m.Multicore.CoreUtilization {
		if u < 0 || u > 1 {
			t.Errorf("core %d utilization %f out of [0,1]", i, u)
		}
	}
	for i, p := range m.Multicore.CorePeakTempK {
		if p < m.Multicore.CoreAvgTempK[i] {
			t.Errorf("core %d peak %f below its average %f", i, p, m.Multicore.CoreAvgTempK[i])
		}
	}
}
