package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"testing"

	"repro/internal/config"
	"repro/internal/multicore"
)

// TestRequestCanonicalFastPath holds the hand-rolled canonical encoder
// equal, byte for byte, to the json.Marshal path it shortcuts — across
// grids of enum values (in and out of range), boolean/int corners, and
// benchmark names that force escaping. Canonical bytes are load-bearing
// (cache keys, journal records), so "identical or fall back" is the
// whole contract.
func TestRequestCanonicalFastPath(t *testing.T) {
	benches := []string{
		"eon", "gzip", "", "weird name", "UPPER.case-ok_123",
		`has"quote`, `back\slash`, "html<&>", "utf8-é", "ctrl\x01char", "tab\tsep",
	}
	var reqs []Request
	for _, b := range benches {
		for _, plan := range []config.FloorplanVariant{0, 1, 2, 250} {
			for _, iq := range []config.IQPolicy{config.IQBase, config.IQNonCompacting, 99} {
				for _, off := range []bool{false, true} {
					reqs = append(reqs, Request{
						Benchmark: b,
						Plan:      plan,
						Techniques: config.Techniques{
							IQ:        iq,
							ALU:       config.ALURoundRobin,
							RFMap:     config.MapBalanced,
							RFTurnoff: off,
							RFWrites:  config.WriteCopyOnCool,
							Temporal:  config.TemporalDVFS,
						},
						Cycles: int64(len(reqs)) * 1_000_003,
						Warmup: len(reqs),
					})
				}
			}
		}
	}
	reqs = append(reqs,
		Request{Benchmark: "eon"},                          // all defaults
		Request{Benchmark: "eon", Cycles: -5, Warmup: -1},  // normalized up
		Request{Multicore: &multicore.Params{Cores: 4}},    // multicore shape: fallback
	)

	for _, r := range reqs {
		want, err := json.Marshal(r.Normalize())
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("Canonical(%+v)\n got %s\nwant %s", r, got, want)
		}
		sum := sha256.Sum256(want)
		wantKey := hex.EncodeToString(sum[:])
		gotKey, err := r.Key()
		if err != nil {
			t.Fatal(err)
		}
		if gotKey != wantKey {
			t.Errorf("Key(%+v) = %s, want %s", r, gotKey, wantKey)
		}
	}
}

// TestEnumNamesArePlain pins the invariant appendCanonical leans on:
// every enum it encodes emits a plain-ASCII String() for all 256
// possible values (named values and the out-of-range "Type(%d)" form
// alike), so the fast path may skip escaping checks on them.
func TestEnumNamesArePlain(t *testing.T) {
	for v := 0; v < 256; v++ {
		b := uint8(v)
		for _, s := range []string{
			config.FloorplanVariant(b).String(),
			config.IQPolicy(b).String(),
			config.ALUPolicy(b).String(),
			config.RFMapping(b).String(),
			config.RFWritePolicy(b).String(),
			config.TemporalPolicy(b).String(),
		} {
			if !plainJSONString(s) {
				t.Fatalf("enum name %q (value %d) is not plain ASCII", s, v)
			}
		}
	}
}

// TestPlainJSONString pins the escape predicate to json.Marshal's
// actual behavior: every string the predicate accepts must be emitted
// unescaped, and every byte json.Marshal escapes must be rejected.
func TestPlainJSONString(t *testing.T) {
	for c := 0; c < 256; c++ {
		s := "x" + string(rune(c)) + "y"
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		literal := string(enc) == `"`+s+`"`
		if plainJSONString(s) && !literal {
			t.Errorf("plainJSONString accepts %q but json.Marshal emits %s", s, enc)
		}
	}
	if plainJSONString("utf8-é") {
		t.Error("plainJSONString must reject multi-byte UTF-8")
	}
}
