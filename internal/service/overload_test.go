// Tests for the overload-protection and graceful-degradation layer:
// deadline admission shedding, queued-job expiry, client abandonment,
// the stuck-attempt watchdog, the disk circuit breakers with their
// degraded modes, and the health state machine behind /readyz and
// /statusz. See DESIGN.md, "Overload and degraded modes".
package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

// waitUntil polls cond every few milliseconds until it holds or the
// deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestEngineAdmissionShedsUnmeetableDeadline(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8, OverloadHold: 50 * time.Millisecond}, release, nil)
	defer close(release)

	// Occupy the worker and put one job in the queue, then pretend
	// recent jobs have been taking a minute each.
	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	if _, err := e.Submit(cellReq("gzip")); err != nil {
		t.Fatal(err)
	}
	e.noteLatency(time.Minute)

	// One queued job x one minute per job cannot finish within a second.
	_, err := e.SubmitOpts(cellReq("art"), SubmitOptions{Deadline: e.Now().Add(time.Second)})
	if !errors.Is(err, ErrDeadlineUnmeetable) {
		t.Fatalf("err = %v, want ErrDeadlineUnmeetable", err)
	}
	m := e.Metrics()
	if m.JobsShedAdmission != 1 {
		t.Errorf("jobs_shed_admission = %d, want 1", m.JobsShedAdmission)
	}
	if m.QueueWaitEWMAMS == 0 {
		t.Error("queue_wait_ewma_ms not exported")
	}
	if s := e.RetryAfterSeconds(); s < 1 {
		t.Errorf("Retry-After = %ds, want >= 1", s)
	}

	// The shed drives the health machine overloaded, which fails
	// readiness; after the hysteresis hold it recovers on its own.
	if state, _ := e.Health(); state != HealthOverloaded {
		t.Errorf("health after shed = %s, want overloaded", state)
	}
	if ready, reason := e.Ready(); ready || reason != "overloaded" {
		t.Errorf("Ready() = %v %q during overload", ready, reason)
	}
	waitUntil(t, 2*time.Second, "overload hold to lapse", func() bool {
		state, _ := e.Health()
		return state == HealthHealthy
	})

	// A roomy deadline is admitted even with the EWMA primed.
	if _, err := e.SubmitOpts(cellReq("mesa"), SubmitOptions{Deadline: e.Now().Add(time.Hour)}); err != nil {
		t.Fatalf("roomy deadline rejected: %v", err)
	}
}

func TestEngineQueuedJobShedsOnExpiredDeadline(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8}, release, nil)

	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	j, err := e.SubmitOpts(cellReq("gzip"), SubmitOptions{Deadline: e.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // deadline passes while queued
	close(release)

	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, ErrDeadlineExpired.Error()) {
		t.Fatalf("expired job settled %s (%q), want failed with deadline error", st.State, st.Error)
	}
	waitUntil(t, time.Second, "shed counter", func() bool {
		return e.Metrics().JobsShedExpired == 1
	})
}

func TestEngineDefaultDeadlineApplies(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{
		Workers: 1, Shards: 1, QueueDepth: 8,
		DefaultDeadline: 20 * time.Millisecond, MaxRetries: -1,
	}, release, nil)

	// Two jobs: one holds the worker, one waits out its default
	// deadline in the queue. Neither submission names a deadline.
	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	j, err := e.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("default deadline not applied: %s (%q)", st.State, st.Error)
	}
}

func TestEngineSubmitWaitClientAbandon(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8}, release, nil)

	if _, err := e.Submit(cellReq("eon")); err != nil { // holds the worker
		t.Fatal(err)
	}
	waitForRunning(t, e)

	// A synchronous submitter queues a job and disconnects. Nobody else
	// wants it, so the worker must shed it instead of running it.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.SubmitWait(ctx, cellReq("gzip"), SubmitOptions{})
		errCh <- err
	}()
	key, _ := cellReq("gzip").Normalize().Key()
	waitUntil(t, time.Second, "job to queue", func() bool {
		_, ok := e.Job(key)
		return ok
	})
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitWait after disconnect = %v, want context.Canceled", err)
	}
	// Free the worker so it reaches the abandoned job in its queue.
	close(release)
	waitUntil(t, time.Second, "abandoned job to settle", func() bool {
		st, ok := e.Job(key)
		return ok && st.State == JobFailed
	})
	st, _ := e.Job(key)
	if !strings.Contains(st.Error, ErrAbandoned.Error()) {
		t.Errorf("abandoned job error = %q", st.Error)
	}
	if n := e.Metrics().JobsClientAbandoned; n != 1 {
		t.Errorf("jobs_client_abandoned = %d, want 1", n)
	}

	// A failed key is resubmittable: the abandonment cost nothing
	// durable.
	if _, err := e.Submit(cellReq("gzip")); err != nil {
		t.Errorf("resubmit after abandonment: %v", err)
	}
}

func TestEngineAsyncJoinPinsAgainstAbandon(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8}, release, nil)

	if _, err := e.Submit(cellReq("eon")); err != nil { // holds the worker
		t.Fatal(err)
	}
	waitForRunning(t, e)

	// Async submit first (pinned), then a synchronous waiter joins the
	// same job and disconnects: the async submitter still wants the
	// result, so the job must run to completion.
	j, err := e.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := e.SubmitWait(ctx, cellReq("gzip"), SubmitOptions{})
		errCh <- err
	}()
	waitUntil(t, time.Second, "waiter to register", func() bool {
		j.home.mu.Lock()
		defer j.home.mu.Unlock()
		return j.waiters == 1
	})
	cancel()
	<-errCh
	close(release)

	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("pinned job settled %s (%q), want done", st.State, st.Error)
	}
	if n := e.Metrics().JobsClientAbandoned; n != 0 {
		t.Errorf("jobs_client_abandoned = %d for a pinned job", n)
	}
}

func TestEngineWatchdogFiresOnStuckRun(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	e := NewEngine(EngineConfig{Workers: 1, QueueDepth: 4, Watchdog: 50 * time.Millisecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	// A run that neither returns nor polls its context: a wedged
	// simulator. The watchdog must shoot it; cancellation alone cannot.
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		<-hang
		return nil, errors.New("unreachable")
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobFailed || !strings.Contains(st.Error, "no progress") {
		t.Fatalf("stuck job settled %s (%q), want watchdog failure", st.State, st.Error)
	}
	if n := e.Metrics().JobsWatchdogFired; n != 1 {
		t.Errorf("jobs_watchdog_fired = %d, want 1", n)
	}
}

func TestEngineWatchdogSparesPollingRun(t *testing.T) {
	e := NewEngine(EngineConfig{Workers: 1, QueueDepth: 4, Watchdog: 40 * time.Millisecond})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		e.Shutdown(ctx)
	})
	// Slower than the watchdog period but polling its context the way
	// the simulator's sensor-interval loop does: never shot.
	e.run = func(ctx context.Context, req Request) ([]byte, error) {
		for i := 0; i < 40; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			time.Sleep(5 * time.Millisecond)
		}
		return []byte(`{"benchmark":"eon","blocks":[],"avg_temp_k":[],"peak_temp_k":[]}`), nil
	}

	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone {
		t.Fatalf("slow-but-alive job settled %s (%q)", st.State, st.Error)
	}
	if n := e.Metrics().JobsWatchdogFired; n != 0 {
		t.Errorf("jobs_watchdog_fired = %d for a polling run", n)
	}
}

// TestEngineJournalBreakerDegradesAndRecovers is the durability=none
// contract end to end: a run of journal failures opens the breaker,
// the engine keeps serving (appends skipped, results marked
// non-journaled, still ready), and when the disk recovers the engine
// re-journals outstanding state so a restart replays exactly the live
// set — here, nothing.
func TestEngineJournalBreakerDegradesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	jnl, recs, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	jnl.Inject = inj

	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{
		Workers: 1, Shards: 1, QueueDepth: 8,
		Journal: jnl, Replay: recs, Inject: inj,
		BreakerFailures: 2, BreakerCooldown: 50 * time.Millisecond,
	}, release, nil)
	waitUntil(t, 2*time.Second, "replay", func() bool { ready, _ := e.Ready(); return ready })

	// Job A's submit record lands while the disk is healthy.
	ja, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)

	// Disk dies. A's done record and B's submit record both fail,
	// opening the breaker (threshold 2); B's done record is skipped
	// outright.
	inj.ArmPersistent(faultinject.SiteJournalAppend, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	inj.ArmPersistent(faultinject.SiteJournalRewrite, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	close(release)
	if _, err := e.Wait(context.Background(), ja.Key); err != nil {
		t.Fatal(err)
	}
	jb, err := e.Submit(cellReq("gzip"))
	if err != nil {
		t.Fatal(err)
	}
	stb, err := e.Wait(context.Background(), jb.Key)
	if err != nil {
		t.Fatal(err)
	}

	m := e.Metrics()
	if m.Durability != "none" {
		t.Fatalf("durability = %q after journal failures, want none", m.Durability)
	}
	if m.JournalBreaker.State != "open" {
		t.Errorf("journal breaker = %q, want open", m.JournalBreaker.State)
	}
	if stb.State != JobDone || !stb.NonJournaled {
		t.Errorf("degraded-mode job = %+v, want done and non_journaled", stb)
	}
	if ready, _ := e.Ready(); !ready {
		t.Error("degraded engine stopped reporting ready")
	}
	if state, _ := e.Health(); state != HealthDegraded {
		t.Errorf("health = %s, want degraded", state)
	}

	// Disk comes back. The maintenance loop probes it, closes the
	// breaker, and re-journals the live set — all without traffic.
	inj.DisarmPersistent(faultinject.SiteJournalAppend)
	inj.DisarmPersistent(faultinject.SiteJournalRewrite)
	waitUntil(t, 3*time.Second, "durability recovery", func() bool {
		return e.Metrics().Durability == "journaled"
	})
	if n := e.Metrics().JournalSkipped; n == 0 {
		t.Error("journal_skipped = 0 despite skipped appends")
	}

	// A restart replays nothing: both jobs settled, and the re-journal
	// compacted their records (including A's stale submit, which the
	// dead disk never saw terminate) out of the WAL.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	jnl2, recs2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	pending, quarantined := journal.Pending(recs2)
	if len(pending) != 0 || len(quarantined) != 0 {
		t.Fatalf("restart would replay %d pending / %d quarantined, want none", len(pending), len(quarantined))
	}
}

func TestEngineCacheBreakerDegradesToMemory(t *testing.T) {
	cache, err := NewCache(8, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New()
	cache.SetInjector(inj)
	e := stubEngine(t, EngineConfig{
		Workers: 1, QueueDepth: 8, Cache: cache, Inject: inj,
		BreakerFailures: 2, BreakerCooldown: 30 * time.Millisecond,
	}, nil, nil)

	// Every disk touch fails: each cell costs a failed read (miss path)
	// and a failed write (store path), so the second cell trips the
	// breaker.
	inj.ArmPersistent(faultinject.SiteCacheRead, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	inj.ArmPersistent(faultinject.SiteCacheWrite, faultinject.Outcome{Err: faultinject.ErrNoSpace})
	for _, b := range []string{"eon", "gzip"} {
		j, err := e.Submit(cellReq(b))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Wait(context.Background(), j.Key); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.CacheDegraded != 1 {
		t.Fatalf("cache_degraded = %d with the disk dead, want 1 (breaker %+v)", m.CacheDegraded, m.CacheBreaker)
	}
	if state, _ := e.Health(); state != HealthDegraded {
		t.Errorf("health = %s, want degraded", state)
	}

	// Memory-only service continues: a repeat of a computed cell is a
	// hit without touching the disk.
	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := e.Wait(context.Background(), j.Key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobDone || !st.Cached {
		t.Errorf("memory hit during degraded mode = %+v", st)
	}

	// Disk recovers: the next miss after the cooldown is the half-open
	// probe, and a clean miss (ENOENT) closes the breaker. Each poll
	// submits a fresh key — a repeat would be a memory hit and never
	// consult the disk.
	inj.DisarmPersistent(faultinject.SiteCacheRead)
	inj.DisarmPersistent(faultinject.SiteCacheWrite)
	probe := int64(0)
	waitUntil(t, 2*time.Second, "cache breaker recovery", func() bool {
		req := cellReq("art")
		req.Cycles += probe
		probe++
		j, err := e.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Wait(context.Background(), j.Key); err != nil {
			t.Fatal(err)
		}
		return e.Metrics().CacheDegraded == 0
	})
}

func TestEngineStatuszSnapshot(t *testing.T) {
	e := stubEngine(t, EngineConfig{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute}, nil, nil)
	j, err := e.Submit(cellReq("eon"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Wait(context.Background(), j.Key); err != nil {
		t.Fatal(err)
	}
	s := e.Statusz()
	if s.State != "healthy" || !s.Ready || s.Reason != "" {
		t.Errorf("statusz health = %q ready=%v reason=%q", s.State, s.Ready, s.Reason)
	}
	if s.Durability != "off" {
		t.Errorf("durability = %q without a journal, want off", s.Durability)
	}
	if s.QueueCapacity != 16 || s.DefaultDeadlineMS != time.Minute.Milliseconds() {
		t.Errorf("statusz config echo: %+v", s)
	}
	if s.Entered["healthy"] == 0 {
		t.Error("healthy state never counted as entered")
	}

	e.BeginDrain()
	s = e.Statusz()
	if s.State != "draining" || s.Ready || s.Reason != "draining" {
		t.Errorf("statusz during drain = %q ready=%v reason=%q", s.State, s.Ready, s.Reason)
	}
}

func TestServerDeadlineShedIs429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8}, release, nil)
	defer close(release)
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	if _, err := e.Submit(cellReq("eon")); err != nil {
		t.Fatal(err)
	}
	waitForRunning(t, e)
	if _, err := e.Submit(cellReq("gzip")); err != nil {
		t.Fatal(err)
	}
	e.noteLatency(time.Minute)

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"benchmark":"art","deadline_ms":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("429 body: %s", body)
	}
}

func TestServerStatusz(t *testing.T) {
	ts, _ := newTestServer(t)
	code, body := get(t, ts.URL+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz: %d %s", code, body)
	}
	var s Statusz
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("statusz body %s: %v", body, err)
	}
	if s.State != "healthy" || !s.Ready || s.QueueCapacity == 0 {
		t.Errorf("statusz = %+v", s)
	}
}

func TestServerWaitClientDisconnectAbandonsJob(t *testing.T) {
	release := make(chan struct{})
	e := stubEngine(t, EngineConfig{Workers: 1, Shards: 1, QueueDepth: 8}, release, nil)
	ts := httptest.NewServer(NewServer(e))
	defer ts.Close()

	if _, err := e.Submit(cellReq("eon")); err != nil { // holds the worker
		t.Fatal(err)
	}
	waitForRunning(t, e)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"benchmark":"gzip"}`))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errCh <- err
	}()
	// The wire request carries only the benchmark, so its key is the
	// defaulted request's key, not cellReq's.
	key, _ := Request{Benchmark: "gzip"}.Normalize().Key()
	waitUntil(t, time.Second, "job to queue", func() bool {
		_, ok := e.Job(key)
		return ok
	})
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned no error")
	}
	// The client has given up, but the server notices asynchronously:
	// hold the worker until the handler's SubmitWait has actually
	// cancelled the job, or the job would just run to completion.
	sh := e.shardFor(key)
	waitUntil(t, 2*time.Second, "server to abandon the job", func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		j := sh.jobs[key]
		return j != nil && j.runCtx != nil && context.Cause(j.runCtx) == ErrAbandoned
	})
	close(release)
	waitUntil(t, 2*time.Second, "abandon accounting", func() bool {
		return e.Metrics().JobsClientAbandoned == 1
	})
}
