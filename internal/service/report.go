// Report rendering for the HTTP API's /report endpoints: a
// pipetherm-style text block for single cells, and the paper-style
// table/figure renderers (experiments.Matrix.Report) for batches.
package service

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// CellReport renders one result as the human-readable text block the
// pipetherm CLI prints: run summary, event counts, and per-block
// temperatures sorted hottest first.
func CellReport(r *sim.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "benchmark    %s\n", r.Benchmark)
	fmt.Fprintf(&sb, "floorplan    %v\n", r.Plan)
	fmt.Fprintf(&sb, "techniques   %v\n", r.Techniques)
	fmt.Fprintf(&sb, "cycles       %d (%d active, %d stalled)\n", r.Cycles, r.ActiveCycles, r.StallCycles)
	fmt.Fprintf(&sb, "committed    %d instructions\n", r.Committed)
	fmt.Fprintf(&sb, "IPC          %.3f\n", r.IPC)
	fmt.Fprintf(&sb, "chip power   %.1f W (average)\n", r.AvgChipPowerW)
	fmt.Fprintf(&sb, "events       %d cooling stalls, %d IQ toggles (%d int / %d fp), %d ALU turnoffs, %d RF-copy turnoffs\n",
		r.Stalls, r.IntToggles+r.FPToggles, r.IntToggles, r.FPToggles, r.ALUTurnoffs, r.RFCopyTurnoffs)
	hot, temp := r.HottestBlock()
	fmt.Fprintf(&sb, "hottest      %s at %.1f K average\n", hot, temp)

	avg := func(n string) float64 { t, _ := r.AvgTemp(n); return t }
	blocks := r.Blocks()
	sort.Slice(blocks, func(a, b int) bool {
		return avg(blocks[a]) > avg(blocks[b])
	})
	fmt.Fprintf(&sb, "\nper-block temperatures (avg / peak, K):\n")
	for _, n := range blocks {
		peak, _ := r.PeakTemp(n)
		fmt.Fprintf(&sb, "  %-10s %7.2f / %7.2f\n", n, avg(n), peak)
	}
	return sb.String()
}
