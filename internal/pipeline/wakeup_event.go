//go:build !scanwakeup

package pipeline

// defaultScanWakeup selects the wakeup implementation new pipelines start
// with. The default build uses the event-driven path; building with
// -tags scanwakeup flips every pipeline to the reference per-cycle scan
// (wakeQueue/srcReady/loadBlocked), which the differential tests prove
// schedule-identical. SetScanWakeup overrides per pipeline.
const defaultScanWakeup = false
