package pipeline

import "repro/internal/isa"

// The active list is stored structure-of-arrays: the fields the back end's
// data-dependent walks touch (completion buckets, wakeup waiter lists,
// the in-order commit scan) are split from the fields only dispatch and
// issue read, so each walk pulls full cache lines of exactly the state it
// needs. See DESIGN.md "ROB memory layout" for the cache-line budget.
//
// Three parallel groups, all indexed by active-list slot:
//
//   - robHot: the scheduler-visible per-slot state — 8 bytes exactly, so
//     one 64-byte line carries 8 entries (the whole 128-entry hot array is
//     16 lines, vs one line per entry in the old array-of-structs ring).
//   - the wakeup link words (wnext, sNext): hot-side bookkeeping for the
//     event-driven scheduler, kept out of robHot because they are only
//     touched on waiter-list registration and drain, not by every state
//     transition. wnext is flat and token-indexed (token = slot*2 +
//     operand), so following a waiter chain is one indexed load with no
//     per-operand branch.
//   - robCold: dispatch-time operands and memory identity — read at issue
//     (register sources, effective address), at completion (result value,
//     LSQ link, redirect flag) and at commit (LSQ link, previous mapping),
//     but never by the wakeup walks.
//
// Both wakeup implementations — the event-driven default and the
// scanwakeup-tagged reference scheduler — go through the hotAt/coldAt
// accessor seam below, so the layout can change again without touching
// scheduler logic.

// robHot is one active-list slot's scheduler state. Keep it at 8 bytes:
// completion, wakeup and commit chase these in data-dependent order, and
// the density is the point of the split.
type robHot struct {
	op       isa.Op
	state    slotState
	fp       bool // integer vs floating-point issue queue
	destFP   bool // destination register file (valid iff destPhys >= 0)
	unit     int8
	waitCnt  uint8 // unready source registers this entry is registered on
	destPhys int16
}

// robCold is one active-list slot's dispatch-time payload: instruction
// identity, renamed sources, memory identity, and the result value. Only
// pointer-chased from a known slot, never scanned.
type robCold struct {
	seq       uint64
	addr      uint64 // pre-resolved effective address (memory ops)
	value     uint64
	prevPhys  int16
	src1Phys  int16
	src2Phys  int16
	mispredct bool
	lsqIdx    int32
}

// window is the in-flight instruction store: the active-list ring (SoA,
// see above) and the program-ordered load/store queue ring.
type window struct {
	hot  []robHot
	cold []robCold

	// Event-driven wakeup links (unused in scan mode). wnext[slot*2+op]
	// chains the per-register waiter lists; sNext[slot] chains the
	// per-store list a blocked load sits on. Link words are only read
	// while the slot is on the corresponding list.
	wnext []int32
	sNext []int32

	head  int
	tail  int
	count int

	lsq      []lsqEntry
	lsqHead  int
	lsqTail  int
	lsqCount int
}

// init sizes the window for an active list of n slots and an LSQ of m.
func (w *window) init(n, m int) {
	w.hot = make([]robHot, n)
	w.cold = make([]robCold, n)
	w.wnext = make([]int32, 2*n)
	w.sNext = make([]int32, n)
	w.lsq = make([]lsqEntry, m)
}

// hotAt and coldAt are the accessor seam shared by the event-driven and
// scan wakeup paths (and everything else that resolves a slot ID to entry
// state): all layout knowledge stays behind these two calls.
func (w *window) hotAt(id int32) *robHot   { return &w.hot[id] }
func (w *window) coldAt(id int32) *robCold { return &w.cold[id] }
