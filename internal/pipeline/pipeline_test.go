package pipeline

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/trace"
)

func newPipe(cfg *config.Config, prof trace.Profile) (*Pipeline, *power.Meter) {
	plan := floorplan.Build(cfg.Plan)
	meter := power.NewMeter(plan, cfg)
	gen := trace.NewGenerator(prof)
	p, err := New(cfg, plan, meter, gen)
	if err != nil {
		panic(err)
	}
	return p, meter
}

// runAndValidate executes n instructions, drains, and cross-checks the
// architectural state against the in-order reference executor.
func runAndValidate(t *testing.T, cfg *config.Config, prof trace.Profile, n uint64) *Pipeline {
	t.Helper()
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(n)
	for p.Fetched < n {
		p.Cycle()
		if p.Cycles() > int64(n*100+10_000) {
			t.Fatalf("%s: no forward progress (fetched %d of %d in %d cycles)",
				prof.Name, p.Fetched, n, p.Cycles())
		}
	}
	p.Drain(100_000)
	if p.Committed != n {
		t.Fatalf("%s: committed %d, want %d", prof.Name, p.Committed, n)
	}

	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	for i := uint64(0); i < n; i++ {
		ref.Exec(gen.Next())
	}
	if d := p.ArchState().Diff(ref); d != "" {
		t.Fatalf("%s: out-of-order result differs from in-order reference: %s", prof.Name, d)
	}
	return p
}

func TestOoOMatchesReferenceAllBenchmarks(t *testing.T) {
	cfg := config.Default()
	for _, prof := range trace.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			runAndValidate(t, cfg, prof, 20_000)
		})
	}
}

func TestOoOMatchesReferenceLongerRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long validation run")
	}
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	runAndValidate(t, cfg, prof, 200_000)
}

func TestIPCInPlausibleRange(t *testing.T) {
	cfg := config.Default()
	for _, name := range []string{"eon", "mcf", "swim"} {
		prof, _ := trace.ByName(name)
		p, _ := newPipe(cfg, prof)
		p.SetFetchLimit(50_000)
		for p.Fetched < 50_000 {
			p.Cycle()
		}
		ipc := p.IPC()
		if ipc <= 0.05 || ipc > float64(cfg.IssueWidth) {
			t.Errorf("%s: IPC %.3f implausible", name, ipc)
		}
		t.Logf("%s: IPC %.2f", name, ipc)
	}
}

func TestHighILPBeatsMemoryBound(t *testing.T) {
	cfg := config.Default()
	ipc := func(name string) float64 {
		prof, _ := trace.ByName(name)
		p, _ := newPipe(cfg, prof)
		p.SetFetchLimit(60_000)
		for p.Fetched < 60_000 {
			p.Cycle()
		}
		return p.IPC()
	}
	eon, mcf := ipc("eon"), ipc("mcf")
	if eon < 1.5*mcf {
		t.Fatalf("eon IPC %.2f not clearly above mcf %.2f", eon, mcf)
	}
}

func TestALUUtilizationAsymmetry(t *testing.T) {
	// §2.2: static select-tree priority concentrates work on ALU0.
	cfg := config.Default()
	prof, _ := trace.ByName("gzip")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(50_000)
	for p.Fetched < 50_000 {
		p.Cycle()
	}
	g := p.IntPool().Grants
	if g[0] == 0 {
		t.Fatal("ALU0 never used")
	}
	if g[0] < 3*g[5] {
		t.Fatalf("ALU grants not asymmetric: %v", g)
	}
	for u := 1; u < 6; u++ {
		if g[u] > g[u-1] {
			t.Fatalf("ALU grants not monotone in priority: %v", g)
		}
	}
}

func TestRoundRobinEqualizesALUs(t *testing.T) {
	cfg := config.Default()
	cfg.Techniques.ALU = config.ALURoundRobin
	prof, _ := trace.ByName("gzip")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(50_000)
	for p.Fetched < 50_000 {
		p.Cycle()
	}
	g := p.IntPool().Grants
	min, max := g[0], g[0]
	for _, v := range g {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if float64(max) > 1.5*float64(min) {
		t.Fatalf("round-robin grants unbalanced: %v", g)
	}
}

func TestIntQueueHalfActivityAsymmetry(t *testing.T) {
	// §2.1: the physical tail half of the queue compacts more.
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	p, _ := newPipe(cfg, prof)
	p.Warmup(400_000)
	p.SetFetchLimit(60_000)
	for p.Fetched < 60_000 {
		p.Cycle()
	}
	q := p.IntQueue()
	if q.HalfMoves[1] <= q.HalfMoves[0] {
		t.Fatalf("tail half moves %d not above head half %d", q.HalfMoves[1], q.HalfMoves[0])
	}
	if q.WrapMoves != 0 {
		t.Fatal("wrap moves in conventional mode")
	}
}

func TestFPWorkloadUsesFPPipes(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("swim")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(30_000)
	for p.Fetched < 30_000 {
		p.Cycle()
	}
	if p.FPAddPool().Grants[0] == 0 {
		t.Fatal("FP adder never used on swim")
	}
	if p.FPMulPool().Grants[0] == 0 {
		t.Fatal("FP multiplier never used on swim")
	}
	if p.FPQueue().Issues == 0 {
		t.Fatal("FP queue idle on swim")
	}
}

func TestBusyALUsDegradeButPreserveCorrectness(t *testing.T) {
	// Turning off ALUs 0-3 must slow the machine down but not break it.
	cfg := config.Default()
	prof, _ := trace.ByName("gzip")

	full, _ := newPipe(cfg, prof)
	full.SetFetchLimit(20_000)
	for full.Fetched < 20_000 {
		full.Cycle()
	}

	p, _ := newPipe(cfg, prof)
	for u := 0; u < 4; u++ {
		p.IntPool().SetBusy(u, true)
	}
	p.SetFetchLimit(20_000)
	for p.Fetched < 20_000 {
		p.Cycle()
		if p.Cycles() > 4_000_000 {
			t.Fatal("no progress with 2 ALUs")
		}
	}
	p.Drain(100_000)

	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	for i := 0; i < 20_000; i++ {
		ref.Exec(gen.Next())
	}
	if d := p.ArchState().Diff(ref); d != "" {
		t.Fatalf("busy-ALU run diverged: %s", d)
	}
	if p.IntPool().Grants[0] != 0 {
		t.Fatal("busy ALU0 granted")
	}
	if p.IPC() >= full.IPC() {
		t.Fatalf("2-ALU IPC %.2f not below 6-ALU IPC %.2f", p.IPC(), full.IPC())
	}
}

func TestToggledQueueStillCorrect(t *testing.T) {
	// Toggle the issue queues every 2000 cycles mid-run: results must
	// stay identical to the reference.
	cfg := config.Default()
	prof, _ := trace.ByName("crafty")
	p, _ := newPipe(cfg, prof)
	const n = 30_000
	p.SetFetchLimit(n)
	for p.Fetched < n {
		p.Cycle()
		if p.Cycles()%2000 == 0 {
			p.IntQueue().Toggle()
			p.FPQueue().Toggle()
		}
	}
	p.Drain(100_000)
	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	for i := 0; i < n; i++ {
		ref.Exec(gen.Next())
	}
	if d := p.ArchState().Diff(ref); d != "" {
		t.Fatalf("toggled run diverged: %s", d)
	}
	if p.IntQueue().WrapMoves == 0 {
		t.Fatal("mode-1 epochs produced no wrap compactions")
	}
}

func TestRegfileReadWriteAccounting(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("gzip")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(20_000)
	for p.Fetched < 20_000 {
		p.Cycle()
	}
	rf := p.RegFile()
	// Priority mapping concentrates reads on copy 0 (high-priority ALUs).
	if rf.Reads[0] == 0 {
		t.Fatal("no register reads recorded")
	}
	if rf.Reads[0] < 3*rf.Reads[1] {
		t.Fatalf("priority mapping read asymmetry missing: %v vs %v", rf.Reads[0], rf.Reads[1])
	}
	// Writes go to both copies equally.
	if rf.Writes[0] != rf.Writes[1] {
		t.Fatalf("write counts differ: %v vs %v", rf.Writes[0], rf.Writes[1])
	}
}

func TestBalancedMappingSpreadsReads(t *testing.T) {
	cfg := config.Default()
	cfg.Techniques.RFMap = config.MapBalanced
	prof, _ := trace.ByName("gzip")
	p, _ := newPipe(cfg, prof)
	p.Warmup(400_000)
	p.SetFetchLimit(20_000)
	for p.Fetched < 20_000 {
		p.Cycle()
	}
	rf := p.RegFile()
	hi, lo := rf.Reads[0], rf.Reads[1]
	if lo > hi {
		hi, lo = lo, hi
	}
	if float64(hi) > 1.8*float64(lo) {
		t.Fatalf("balanced mapping reads skewed: %v", rf.Reads)
	}
}

func TestMeterDrainDepositsEventEnergy(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	p, meter := newPipe(cfg, prof)
	p.Warmup(400_000)
	p.SetFetchLimit(5_000)
	for p.Fetched < 5_000 {
		p.Cycle()
	}
	pw := meter.Drain(int(p.Cycles()), 0, nil)
	plan := floorplan.Build(cfg.Plan)
	for _, name := range []string{floorplan.IntQ0, floorplan.IntQ1, floorplan.IntReg0, "IntExec0", floorplan.ICache} {
		idx := plan.Index(name)
		if pw[idx] <= 0 {
			t.Errorf("block %s has no power", name)
		}
	}
	// IntExec0 must dissipate more than IntExec5 (utilization asymmetry).
	if pw[plan.Index("IntExec0")] <= pw[plan.Index("IntExec5")] {
		t.Error("ALU power not asymmetric")
	}
	// The tail half of the int queue must out-dissipate the head half.
	if pw[plan.Index(floorplan.IntQ1)] <= pw[plan.Index(floorplan.IntQ0)] {
		t.Error("issue-queue halves not asymmetric")
	}
}

func TestBranchStatsAndMispredicts(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("gcc")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(40_000)
	for p.Fetched < 40_000 {
		p.Cycle()
	}
	if p.Branches == 0 {
		t.Fatal("no branches executed")
	}
	if p.Mispredicts == 0 {
		t.Fatal("gcc should mispredict sometimes")
	}
	rate := float64(p.Mispredicts) / float64(p.Branches)
	if rate > 0.5 {
		t.Fatalf("mispredict rate %.2f implausibly high", rate)
	}
}

func TestStallCountersMove(t *testing.T) {
	// A tiny active list forces dispatch stalls.
	cfg := config.Default()
	cfg.ActiveList = 16
	cfg.PhysIntRegs = 48
	cfg.PhysFPRegs = 48
	prof, _ := trace.ByName("mcf")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(20_000)
	for p.Fetched < 20_000 {
		p.Cycle()
	}
	if p.StallROB == 0 {
		t.Fatal("no ROB stalls with a 16-entry active list on mcf")
	}
}

func TestDrainPanicsOnDeadlock(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(1_000)
	for p.Fetched < 1_000 {
		p.Cycle()
	}
	// Mark every int ALU busy: in-flight int work can never issue.
	for u := 0; u < cfg.IntALUs; u++ {
		p.IntPool().SetBusy(u, true)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("drain converged with all ALUs off")
		}
	}()
	p.Drain(5_000)
}

// Property: random valid configurations still produce reference-equal
// results (scheduling must never change semantics).
func TestQuickConfigVariationsPreserveSemantics(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed uint64) bool {
		cfg := config.Default()
		// Vary structural parameters within legal bounds.
		widths := []int{2, 4, 6}
		cfg.IssueWidth = widths[seed%3]
		cfg.FetchWidth = cfg.IssueWidth
		iqs := []int{16, 32}
		cfg.IQEntries = iqs[(seed>>2)%2]
		if cfg.IssueWidth > cfg.IQEntries {
			cfg.IssueWidth = cfg.IQEntries
		}
		profs := trace.Profiles()
		prof := profs[int(seed>>4)%len(profs)]

		plan := floorplan.Build(cfg.Plan)
		meter := power.NewMeter(plan, cfg)
		p, err := New(cfg, plan, meter, trace.NewGenerator(prof))
		if err != nil {
			return false
		}
		const n = 6_000
		p.SetFetchLimit(n)
		for p.Fetched < n {
			p.Cycle()
			if p.Cycles() > 2_000_000 {
				return false
			}
		}
		p.Drain(100_000)
		ref := isa.NewState()
		gen := trace.NewGenerator(prof)
		for i := 0; i < n; i++ {
			ref.Exec(gen.Next())
		}
		return p.ArchState().Diff(ref) == ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
