package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/trace"
)

// rngNew keeps the fuzz test readable.
func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

// scripted builds a pipeline fed by a fixed instruction sequence, using a
// generator stub via a custom profile is impossible (the generator is
// synthetic), so these tests drive the real generator but verify specific
// microarchitectural behaviours through the statistics interfaces.

func TestStoreToLoadForwarding(t *testing.T) {
	// Construct a stream where a load reads an address written by an
	// in-flight store; the architectural cross-check in runAndValidate
	// exercises forwarding, but here we verify the forwarded VALUE
	// explicitly by ending the run right after the pair commits.
	cfg := config.Default()
	prof, _ := trace.ByName("vortex") // store-heavy profile
	p, _ := newPipe(cfg, prof)
	const n = 30_000
	p.SetFetchLimit(n)
	for p.Fetched < n {
		p.Cycle()
	}
	p.Drain(100_000)
	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	for i := 0; i < n; i++ {
		ref.Exec(gen.Next())
	}
	if d := p.ArchState().Diff(ref); d != "" {
		t.Fatalf("store-heavy stream diverged (forwarding bug?): %s", d)
	}
	if p.Stores == 0 || p.Loads == 0 {
		t.Fatal("stream exercised no memory operations")
	}
}

func TestFPLoadsFlowThroughIntPath(t *testing.T) {
	// FP loads (ldt-style) must issue on the integer side but write the
	// FP register file; swim's profile has FracLoadFP > 0.
	cfg := config.Default()
	prof, _ := trace.ByName("swim")
	if prof.FracLoadFP == 0 {
		t.Fatal("swim should use FP loads")
	}
	p, _ := newPipe(cfg, prof)
	const n = 20_000
	p.SetFetchLimit(n)
	for p.Fetched < n {
		p.Cycle()
	}
	p.Drain(100_000)
	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	fpLoads := 0
	for i := 0; i < n; i++ {
		in := gen.Next()
		if in.Op == isa.OpLoadFP {
			fpLoads++
		}
		ref.Exec(in)
	}
	if fpLoads == 0 {
		t.Fatal("no FP loads in stream")
	}
	if d := p.ArchState().Diff(ref); d != "" {
		t.Fatalf("FP-load stream diverged: %s", d)
	}
}

func TestL1DPortContentionLimitsThroughput(t *testing.T) {
	// With 1 L1D port, cache-resident memory-heavy code must run slower
	// than with 2 (swim-style latency-bound code hides port contention
	// behind memory misses, so use vortex: 41% memory operations, mostly
	// L1 hits).
	run := func(ports int) float64 {
		cfg := config.Default()
		cfg.L1Ports = ports
		prof, _ := trace.ByName("vortex")
		p, _ := newPipe(cfg, prof)
		p.Warmup(1_500_000)
		p.SetFetchLimit(40_000)
		for p.Fetched < 40_000 {
			p.Cycle()
		}
		return p.IPC()
	}
	one, two := run(1), run(2)
	if one >= two {
		t.Fatalf("1-port IPC %.3f not below 2-port IPC %.3f", one, two)
	}
}

func TestIssueNeverExceedsWidth(t *testing.T) {
	cfg := config.Default()
	cfg.IssueWidth = 3
	cfg.FetchWidth = 6
	prof, _ := trace.ByName("mesa")
	p, _ := newPipe(cfg, prof)
	p.Warmup(200_000)
	prev := p.Issued
	for c := 0; c < 20_000; c++ {
		p.Cycle()
		if got := p.Issued - prev; got > 3 {
			t.Fatalf("cycle %d issued %d > width 3", c, got)
		}
		prev = p.Issued
	}
}

func TestNarrowMachineStillCorrect(t *testing.T) {
	cfg := config.Default()
	cfg.IssueWidth = 2
	cfg.FetchWidth = 2
	cfg.CommitWidth = 2
	cfg.IQEntries = 16
	prof, _ := trace.ByName("gcc")
	runAndValidate(t, cfg, prof, 15_000)
}

func TestSmallQueueBackpressure(t *testing.T) {
	cfg := config.Default()
	cfg.IQEntries = 8
	prof, _ := trace.ByName("eon")
	p, _ := newPipe(cfg, prof)
	p.SetFetchLimit(20_000)
	for p.Fetched < 20_000 {
		p.Cycle()
	}
	if p.StallIQ == 0 {
		t.Fatal("8-entry queue produced no dispatch backpressure")
	}
}

func TestCommitInProgramOrder(t *testing.T) {
	// Committed count must never exceed fetched, and after drain they
	// must match exactly (no lost or duplicated instructions).
	cfg := config.Default()
	prof, _ := trace.ByName("twolf")
	p, _ := newPipe(cfg, prof)
	const n = 25_000
	p.SetFetchLimit(n)
	for p.Fetched < n {
		p.Cycle()
		if p.Committed > p.Fetched {
			t.Fatalf("committed %d > fetched %d", p.Committed, p.Fetched)
		}
	}
	p.Drain(100_000)
	if p.Committed != n {
		t.Fatalf("committed %d != fetched %d after drain", p.Committed, n)
	}
	if p.InFlight() != 0 {
		t.Fatalf("%d instructions still in flight after drain", p.InFlight())
	}
}

func TestRoundRobinMatchesReference(t *testing.T) {
	cfg := config.Default()
	cfg.Techniques.ALU = config.ALURoundRobin
	prof, _ := trace.ByName("perlbmk")
	runAndValidate(t, cfg, prof, 20_000)
}

func TestMulUsesLongerLatency(t *testing.T) {
	// A mul-free and mul-only comparison is impossible with the fixed
	// profiles; instead check the configuration plumbing: raising the
	// multiply latency must not break correctness and must not speed
	// anything up.
	base := config.Default()
	slow := config.Default()
	slow.IntMulLatency = 12
	prof, _ := trace.ByName("gzip")

	pb, _ := newPipe(base, prof)
	pb.SetFetchLimit(20_000)
	for pb.Fetched < 20_000 {
		pb.Cycle()
	}
	ps, _ := newPipe(slow, prof)
	ps.SetFetchLimit(20_000)
	for ps.Fetched < 20_000 {
		ps.Cycle()
	}
	if ps.IPC() > pb.IPC() {
		t.Fatalf("slower multiplier raised IPC: %.3f > %.3f", ps.IPC(), pb.IPC())
	}
	ps.Drain(100_000)
	ref := isa.NewState()
	gen := trace.NewGenerator(prof)
	for i := 0; i < 20_000; i++ {
		ref.Exec(gen.Next())
	}
	if d := ps.ArchState().Diff(ref); d != "" {
		t.Fatalf("long-latency multiply diverged: %s", d)
	}
}

func TestWarmupImprovesShortRunIPC(t *testing.T) {
	prof, _ := trace.ByName("bzip")
	cold, _ := newPipe(config.Default(), prof)
	cold.SetFetchLimit(30_000)
	for cold.Fetched < 30_000 {
		cold.Cycle()
	}
	warm, _ := newPipe(config.Default(), prof)
	warm.Warmup(2_000_000)
	warm.SetFetchLimit(30_000)
	for warm.Fetched < 30_000 {
		warm.Cycle()
	}
	if warm.IPC() <= cold.IPC() {
		t.Fatalf("warmup did not help: warm %.3f vs cold %.3f", warm.IPC(), cold.IPC())
	}
}

func TestMeterDrainIdempotentWhenIdle(t *testing.T) {
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	p, meter := newPipe(cfg, prof)
	p.SetFetchLimit(1_000)
	for p.Fetched < 1_000 {
		p.Cycle()
	}
	before := meter.TotalChipEnergy()
	meter.Drain(100, 0, nil)
	after := meter.TotalChipEnergy()
	// Second drain right away adds only idle energy, not re-counted events.
	meter.Drain(100, 0, nil)
	second := meter.TotalChipEnergy() - after
	if second >= after-before {
		t.Fatalf("repeated meter drain re-deposited event energy: %.3e vs %.3e", second, after-before)
	}
}

// TestQuickRandomTurnoffFuzzing drives the pipeline while randomly
// toggling unit busy flags, queue modes and register-file copy states —
// an adversarial thermal manager. The architectural result must still
// match the in-order reference exactly.
func TestQuickRandomTurnoffFuzzing(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing run")
	}
	for _, seed := range []uint64{1, 2, 3} {
		cfg := config.Default()
		cfg.Techniques.RFTurnoff = true // enables the write-policy paths
		prof, _ := trace.ByName("crafty")
		p, _ := newPipe(cfg, prof)
		r := rngNew(seed)
		const n = 25_000
		p.SetFetchLimit(n)
		for p.Fetched < n {
			p.Cycle()
			if p.Cycles()%512 == 0 {
				// Random ALU turnoffs, but never all units at once.
				busyCount := 0
				for u := 0; u < cfg.IntALUs; u++ {
					b := r.Bool(0.3) && busyCount < cfg.IntALUs-1
					p.IntPool().SetBusy(u, b)
					if b {
						busyCount++
					}
				}
				for u := 0; u < cfg.FPAdders; u++ {
					p.FPAddPool().SetBusy(u, r.Bool(0.3) && u > 0)
				}
				if r.Bool(0.1) {
					p.IntQueue().Toggle()
				}
				if r.Bool(0.1) {
					p.FPQueue().Toggle()
				}
				// Register-file copy off/on (never both off): the manager
				// would mask the copy's ALUs; here we only exercise the
				// write-policy bookkeeping.
				p.RegFile().SetOff(0, r.Bool(0.3))
			}
			if p.Cycles() > 8_000_000 {
				t.Fatalf("seed %d: no forward progress", seed)
			}
		}
		// Clear all busy flags so the drain cannot deadlock.
		for u := 0; u < cfg.IntALUs; u++ {
			p.IntPool().SetBusy(u, false)
		}
		for u := 0; u < cfg.FPAdders; u++ {
			p.FPAddPool().SetBusy(u, false)
		}
		p.RegFile().SetOff(0, false)
		p.Drain(200_000)
		ref := isa.NewState()
		gen := trace.NewGenerator(prof)
		for i := 0; i < n; i++ {
			ref.Exec(gen.Next())
		}
		if d := p.ArchState().Diff(ref); d != "" {
			t.Fatalf("seed %d: adversarial turnoff fuzzing diverged: %s", seed, d)
		}
	}
}
