//go:build scanwakeup

package pipeline

// defaultScanWakeup: the scanwakeup build tag makes the reference
// scan-based wakeup the default, so the whole suite (including the fig6
// golden) can be run against the original implementation.
const defaultScanWakeup = true
