// Package pipeline implements the out-of-order core: a 6-wide machine with
// a 128-entry active list, 64-entry load/store queue, two 32-entry
// compacting issue queues (integer and floating-point), hierarchical
// select trees serialized per functional unit, six integer execution units
// (arithmetic, address-generation and branch capable), four FP adders, an
// FP multiplier, and two integer register-file copies (Table 2).
//
// The model is execution-driven over the synthetic trace: instructions
// carry real register semantics, values flow through renamed physical
// registers, loads forward from older in-flight stores, and the
// architectural result is checkable against an in-order reference
// executor. Control flow is trace-driven: no wrong-path instructions are
// fetched; a mispredicted branch stalls fetch until it resolves plus the
// redirect penalty, the standard trace-driven approximation.
//
// Every structural event increments a slot on the power meter's
// event-count stats bus (see internal/stats): the hot loop does integer
// counter adds only, and the counts×constants→joules conversion happens
// once per sensor interval inside power.Meter.Drain. The issue queues and
// register file register their own slots at the granularity the paper's
// techniques act on (per half / per copy); the drained counts also feed
// the utilization telemetry (Utilization).
package pipeline

import (
	"fmt"
	"math/bits"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/isa"
	"repro/internal/issueq"
	"repro/internal/power"
	"repro/internal/regfile"
	"repro/internal/seltree"
	"repro/internal/stats"
	"repro/internal/trace"
)

type slotState uint8

const (
	slotFree slotState = iota
	slotInQueue
	slotIssued
	slotDone
)

// The per-slot in-flight instruction state lives in rob.go, split into
// parallel hot (robHot) and cold (robCold) arrays inside window.

// storeRef is a snapshot of an unresolved store for disambiguation.
type storeRef struct {
	seq  uint64
	addr uint64
	rob  int32
}

type lsqEntry struct {
	rob      int32
	seq      uint64
	isStore  bool
	addr     uint64
	data     uint64
	resolved bool // store has executed (address and data known)
}

// completionRing sizes the completion scheduler; it must exceed the
// longest possible operation latency (memory + port queueing).
const completionRing = 2048

// Pipeline is the simulated core. Construct with New; drive with Cycle.
type Pipeline struct {
	cfg   *config.Config
	gen   *trace.Generator
	meter *power.Meter
	mem   *cache.Hierarchy
	bp    *bpred.Predictor

	intQ, fpQ                     *issueq.Queue
	intPool, fpAddPool, fpMulPool *seltree.Pool
	rf                            *regfile.File
	ebus                          *stats.Bus // the meter's event bus

	// Rename state.
	ratInt, ratFP   [isa.NumIntRegs]int16
	physInt, physFP []uint64
	readyInt        []bool
	readyFP         []bool
	freeInt, freeFP []int16

	// Active list (ring).
	rob                window
	committedMem       *isa.State
	cycle              int64
	fetchResume        int64
	mispredictInFlight bool

	// Completion scheduler: intrusive singly-linked lists threaded through
	// cnext (one link word per active-list slot; a slot is scheduled at
	// most once at a time), headed by completionHead[cycle%completionRing].
	// Replaces per-slot []int32 buckets — the whole scheduler is now
	// ring+links (~8.5 KB at the default geometry) instead of ~1 MB of
	// pre-sized bucket capacity, and scheduling is two stores, no append.
	// Within-cycle processing order is immaterial (see completeStage).
	completionHead [completionRing]int32
	cnext          []int32

	// L1D port scheduling.
	portFree []int64

	// Fetch state.
	curLine                             uint64
	lineShift                           uint   // log2(L1LineB); the cache guarantees a power of two
	issueWidth, commitWidth, fetchWidth int    // cached config widths
	maxFetched                          uint64 // fetch budget; 0 = unlimited
	fetchOff                            bool

	// Cached floorplan block indices.
	bIcache, bDcache, bBpred, bITB, bDTB, bLdStQ int
	bIntMap, bFPMap                              int
	bIntQ0, bIntQ1, bFPQ0, bFPQ1                 int
	bFPReg, bFPMulBlk                            int
	bIntExec                                     []int
	bFPAdd                                       []int
	bIntReg                                      []int

	// Event-count slots on the meter's stats bus (see internal/stats).
	sIcache, sITB, sBpred    stats.SlotID
	sIntMap, sFPMap          stats.SlotID
	sLSQ, sDTB, sDcache      stats.SlotID
	sFPRegRead, sFPRegWrite  stats.SlotID
	sFPMulOp                 stats.SlotID
	sIntALU, sIntMul, sFPAdd []stats.SlotID

	// Scratch buffers reused across cycles.
	grantBuf   []seltree.Grant
	unresolved []storeRef

	// Event-driven wakeup state (the default; scanWakeup selects the
	// reference per-cycle scan instead). waitHeadInt/waitHeadFP hold, per
	// physical register, the head token of the intrusive list of entries
	// waiting on it; storeWaitHead holds, per active-list slot of an
	// unresolved store, the head of the list of loads blocked on it.
	// wakeBuf collects the IDs that became ready since the last
	// wakeupStage; it is bounded by the active-list size.
	scanWakeup    bool
	waitHeadInt   []int32
	waitHeadFP    []int32
	storeWaitHead []int32
	wakeBuf       []int32

	// storeMask tracks which LSQ ring slots hold stores, for the
	// store-forwarding scan (usable while the LSQ fits a 64-bit mask).
	storeMask uint64
	lsqMaskOK bool

	// Statistics.
	Fetched     uint64
	Committed   uint64
	Issued      uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	StallROB    uint64 // dispatch stalls: active list full
	StallLSQ    uint64
	StallIQ     uint64 // dispatch stalls: issue queue full
}

// New wires up a pipeline for the given configuration, floorplan, power
// meter and instruction source. It returns an error if the configuration
// does not validate.
func New(cfg *config.Config, plan *floorplan.Plan, meter *power.Meter, gen *trace.Generator) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	p := &Pipeline{
		cfg:   cfg,
		gen:   gen,
		meter: meter,
		mem: cache.NewHierarchy(cfg.L1SizeKB, cfg.L1Assoc, cfg.L1LineB, cfg.L1Latency,
			cfg.L2SizeKB, cfg.L2Assoc, cfg.L2Latency, cfg.MemLatency),
		bp:        bpred.Default(),
		intQ:      issueq.New(cfg.IQEntries, cfg.IssueWidth, cfg.IssueDrainCycles, cfg.ActiveList),
		fpQ:       issueq.New(cfg.IQEntries, cfg.IssueWidth, cfg.IssueDrainCycles, cfg.ActiveList),
		intPool:   seltree.NewPool(cfg.IQEntries, cfg.IntALUs),
		fpAddPool: seltree.NewPool(cfg.IQEntries, cfg.FPAdders),
		fpMulPool: seltree.NewPool(cfg.IQEntries, cfg.FPMuls),
		rf: regfile.New(cfg.IntRFCopies, cfg.IntALUs, cfg.Techniques.RFMap,
			cfg.Techniques.RFWrites, cfg.PhysIntRegs),
		physInt:      make([]uint64, cfg.PhysIntRegs),
		physFP:       make([]uint64, cfg.PhysFPRegs),
		readyInt:     make([]bool, cfg.PhysIntRegs),
		readyFP:      make([]bool, cfg.PhysFPRegs),
		committedMem: isa.NewState(),
		portFree:     make([]int64, cfg.L1Ports),
	}
	p.rob.init(cfg.ActiveList, cfg.LSQEntries)
	p.lsqMaskOK = cfg.LSQEntries <= 64

	p.scanWakeup = defaultScanWakeup
	p.waitHeadInt = make([]int32, cfg.PhysIntRegs)
	p.waitHeadFP = make([]int32, cfg.PhysFPRegs)
	p.storeWaitHead = make([]int32, cfg.ActiveList)
	for i := range p.waitHeadInt {
		p.waitHeadInt[i] = -1
	}
	for i := range p.waitHeadFP {
		p.waitHeadFP[i] = -1
	}
	for i := range p.storeWaitHead {
		p.storeWaitHead[i] = -1
	}
	p.wakeBuf = make([]int32, 0, cfg.ActiveList)

	p.cnext = make([]int32, cfg.ActiveList)
	for i := range p.completionHead {
		p.completionHead[i] = -1
	}

	// Initial rename map: arch register i lives in physical register i,
	// seeded with the reference model's initial values.
	init := isa.NewState()
	for i := 0; i < isa.NumIntRegs; i++ {
		p.ratInt[i] = int16(i)
		p.physInt[i] = init.IntReg[i]
		p.readyInt[i] = true
		p.ratFP[i] = int16(i)
		p.physFP[i] = init.FPReg[i]
		p.readyFP[i] = true
	}
	for r := cfg.PhysIntRegs - 1; r >= isa.NumIntRegs; r-- {
		p.freeInt = append(p.freeInt, int16(r))
	}
	for r := cfg.PhysFPRegs - 1; r >= isa.NumFPRegs; r-- {
		p.freeFP = append(p.freeFP, int16(r))
	}

	// Cache block indices.
	p.bIcache = plan.Index(floorplan.ICache)
	p.bDcache = plan.Index(floorplan.DCache)
	p.bBpred = plan.Index(floorplan.BPred)
	p.bITB = plan.Index(floorplan.ITB)
	p.bDTB = plan.Index(floorplan.DTB)
	p.bLdStQ = plan.Index(floorplan.LdStQ)
	p.bIntMap = plan.Index(floorplan.IntMap)
	p.bFPMap = plan.Index(floorplan.FPMap)
	p.bIntQ0 = plan.Index(floorplan.IntQ0)
	p.bIntQ1 = plan.Index(floorplan.IntQ1)
	p.bFPQ0 = plan.Index(floorplan.FPQ0)
	p.bFPQ1 = plan.Index(floorplan.FPQ1)
	p.bFPReg = plan.Index(floorplan.FPReg)
	p.bFPMulBlk = plan.Index(floorplan.FPMul)
	p.bIntExec = plan.IntExecBlocks(cfg.IntALUs)
	p.bFPAdd = plan.FPAddBlocks(cfg.FPAdders)
	p.bIntReg = make([]int, cfg.IntRFCopies)
	for c := 0; c < cfg.IntRFCopies; c++ {
		p.bIntReg[c] = plan.Index(fmt.Sprintf("IntReg%d", c))
	}

	// Register the pipeline's event slots on the meter's bus and rebind
	// the structures that carry their own (the issue queues per half, the
	// register file per copy, the select pools per unit) from their
	// private buses to the meter's, against real floorplan blocks.
	bus := meter.Bus()
	p.ebus = bus
	p.sIcache = bus.Register("icache_access", p.bIcache, power.ICacheAccess)
	p.sITB = bus.Register("itb_access", p.bITB, power.TLBAccess)
	p.sBpred = bus.Register("bpred_access", p.bBpred, power.BpredAccess)
	p.sIntMap = bus.Register("int_rename", p.bIntMap, power.RenameOp)
	p.sFPMap = bus.Register("fp_rename", p.bFPMap, power.RenameOp)
	p.sLSQ = bus.Register("lsq_op", p.bLdStQ, power.LSQOp)
	p.sDTB = bus.Register("dtb_access", p.bDTB, power.TLBAccess)
	p.sDcache = bus.Register("dcache_access", p.bDcache, power.DCacheAccess)
	p.sFPRegRead = bus.Register("fpreg_read", p.bFPReg, power.RFRead)
	p.sFPRegWrite = bus.Register("fpreg_write", p.bFPReg, power.RFWrite)
	p.sFPMulOp = bus.Register("fpmul_op", p.bFPMulBlk, power.FPMulOp)
	p.sIntALU = make([]stats.SlotID, cfg.IntALUs)
	p.sIntMul = make([]stats.SlotID, cfg.IntALUs)
	for u := 0; u < cfg.IntALUs; u++ {
		p.sIntALU[u] = bus.Register(fmt.Sprintf("intalu%d_op", u), p.bIntExec[u], power.IntALUOp)
		p.sIntMul[u] = bus.Register(fmt.Sprintf("intalu%d_mul", u), p.bIntExec[u], power.IntMulOp)
	}
	p.sFPAdd = make([]stats.SlotID, cfg.FPAdders)
	for u := 0; u < cfg.FPAdders; u++ {
		p.sFPAdd[u] = bus.Register(fmt.Sprintf("fpadd%d_op", u), p.bFPAdd[u], power.FPAddOp)
	}
	p.intQ.BindStats(bus, "intq", p.bIntQ0, p.bIntQ1)
	p.fpQ.BindStats(bus, "fpq", p.bFPQ0, p.bFPQ1)
	p.rf.BindStats(bus, p.bIntReg)
	p.intPool.BindStats(bus, "alu", p.bIntExec)
	p.fpAddPool.BindStats(bus, "fpadd", p.bFPAdd)
	fpMulBlocks := make([]int, cfg.FPMuls)
	for u := range fpMulBlocks {
		fpMulBlocks[u] = p.bFPMulBlk
	}
	p.fpMulPool.BindStats(bus, "fpmul", fpMulBlocks)

	if cfg.Techniques.ALU == config.ALURoundRobin {
		p.intPool.SetRoundRobin(true)
		p.fpAddPool.SetRoundRobin(true)
		p.fpMulPool.SetRoundRobin(true)
	}
	if cfg.Techniques.IQ == config.IQNonCompacting {
		p.intQ.SetNonCompacting(true)
		p.fpQ.SetNonCompacting(true)
	}
	p.curLine = ^uint64(0)
	p.lineShift = uint(bits.TrailingZeros64(uint64(cfg.L1LineB)))
	p.issueWidth, p.commitWidth, p.fetchWidth = cfg.IssueWidth, cfg.CommitWidth, cfg.FetchWidth
	return p, nil
}

// Accessors for the thermal manager and experiments.

// IntQueue returns the integer issue queue.
func (p *Pipeline) IntQueue() *issueq.Queue { return p.intQ }

// FPQueue returns the floating-point issue queue.
func (p *Pipeline) FPQueue() *issueq.Queue { return p.fpQ }

// IntPool returns the integer-ALU select-tree pool.
func (p *Pipeline) IntPool() *seltree.Pool { return p.intPool }

// FPAddPool returns the FP-adder select-tree pool.
func (p *Pipeline) FPAddPool() *seltree.Pool { return p.fpAddPool }

// FPMulPool returns the FP-multiplier select-tree pool.
func (p *Pipeline) FPMulPool() *seltree.Pool { return p.fpMulPool }

// RegFile returns the integer register-file copies.
func (p *Pipeline) RegFile() *regfile.File { return p.rf }

// Mem returns the cache hierarchy.
func (p *Pipeline) Mem() *cache.Hierarchy { return p.mem }

// Bpred returns the branch predictor.
func (p *Pipeline) Bpred() *bpred.Predictor { return p.bp }

// Cycles returns the number of active (non-stalled) cycles executed.
func (p *Pipeline) Cycles() int64 { return p.cycle }

// InFlight returns the number of instructions in the active list.
func (p *Pipeline) InFlight() int { return p.rob.count }

// SetFetchLimit caps the number of instructions fetched (0 = unlimited);
// used to run an exact instruction count and then drain.
func (p *Pipeline) SetFetchLimit(n uint64) { p.maxFetched = n }

// SetFetchEnabled pauses or resumes fetch (drain support).
func (p *Pipeline) SetFetchEnabled(on bool) { p.fetchOff = !on }

// Warmup primes the caches and branch predictor with the first n
// instructions of the profile's stream, architecturally only (no cycles,
// no energy), mirroring the paper's L2 warmup during SimPoint
// fast-forward. It uses a fresh generator so the measured run still begins
// at instruction zero.
func (p *Pipeline) Warmup(n int) {
	g := trace.NewGenerator(p.gen.Profile())
	line := ^uint64(0)
	for i := 0; i < n; i++ {
		in := g.Next()
		if l := in.PC >> p.lineShift; l != line {
			line = l
			p.mem.Inst(in.PC)
		}
		switch {
		case in.Op.IsMem():
			// Streaming (cold) addresses are compulsory misses by
			// construction; warming them would replay the measured run's
			// stream as hits.
			if in.Addr < trace.ColdBase {
				p.mem.WarmData(in.Addr)
			}
		case in.Op.IsBranch():
			p.bp.Predict(in.PC)
			p.bp.Update(in.PC, in.Taken, in.Target)
		}
	}
	// Warmup statistics would pollute measurement; clear them.
	p.mem.L1I.Accesses, p.mem.L1I.Misses = 0, 0
	p.mem.L1D.Accesses, p.mem.L1D.Misses = 0, 0
	p.mem.L2.Accesses, p.mem.L2.Misses = 0, 0
	p.bp.Lookups, p.bp.Mispredict = 0, 0
}

// Cycle advances the core by one active cycle.
func (p *Pipeline) Cycle() {
	// Select-tree root mode tracks the issue-queue configuration.
	p.intPool.SetPreferTop(p.intQ.Mode() == 1)
	p.fpAddPool.SetPreferTop(p.fpQ.Mode() == 1)
	p.fpMulPool.SetPreferTop(p.fpQ.Mode() == 1)

	p.completeStage()
	p.commitStage()
	p.wakeupStage()
	p.issueStage()
	p.frontendStage()

	p.intQ.Tick()
	p.fpQ.Tick()
	if p.cfg.Techniques.ALU == config.ALURoundRobin {
		p.intPool.Rotate()
		p.fpAddPool.Rotate()
		p.fpMulPool.Rotate()
	}
	p.cycle++
}

// completeStage retires this cycle's finishing executions: results become
// visible, dependants wake, stores resolve, mispredicted branches release
// fetch.
//
// The walk follows the cnext intrusive list, which yields entries in
// reverse scheduling order. Within-cycle order is immaterial: destination
// physical registers are unique per in-flight entry, the queues' ready
// sets are bit masks, waiter lists of distinct registers are disjoint, and
// a load parked on one of several same-address blockers re-checks the
// whole unresolved set when woken — so every interleaving converges to the
// same post-stage state (locked by the scan-vs-event lockstep suite and
// the fig6 golden).
func (p *Pipeline) completeStage() {
	slot := uint64(p.cycle) & (completionRing - 1)
	id := p.completionHead[slot]
	if id < 0 {
		return
	}
	p.completionHead[slot] = -1
	intTags, fpTags := 0, 0
	for ; id >= 0; id = p.cnext[id] {
		h := p.rob.hotAt(id)
		c := p.rob.coldAt(id)
		h.state = slotDone
		if h.destPhys >= 0 {
			if h.destFP {
				p.physFP[h.destPhys] = c.value
				p.readyFP[h.destPhys] = true
				fpTags++
				p.ebus.Inc(p.sFPRegWrite)
				if t := p.waitHeadFP[h.destPhys]; t >= 0 && !p.scanWakeup {
					p.waitHeadFP[h.destPhys] = -1
					p.wakeRegWaiters(t)
				}
			} else {
				p.physInt[h.destPhys] = c.value
				p.readyInt[h.destPhys] = true
				intTags++
				p.rf.ChargeWrite()
				if t := p.waitHeadInt[h.destPhys]; t >= 0 && !p.scanWakeup {
					p.waitHeadInt[h.destPhys] = -1
					p.wakeRegWaiters(t)
				}
			}
		}
		if h.op == isa.OpStore && c.lsqIdx >= 0 {
			p.rob.lsq[c.lsqIdx].resolved = true
			p.rob.lsq[c.lsqIdx].data = c.value
			p.removeUnresolved(c.seq)
			if !p.scanWakeup {
				p.wakeStoreWaiters(id)
			}
		}
		if c.mispredct {
			p.fetchResume = p.cycle + int64(p.cfg.BranchPenalty)
			p.mispredictInFlight = false
		}
	}
	p.intQ.Broadcast(intTags)
	p.fpQ.Broadcast(fpTags)
}

// commitStage retires completed instructions in program order.
func (p *Pipeline) commitStage() {
	for n := 0; n < p.commitWidth && p.rob.count > 0; n++ {
		head := int32(p.rob.head)
		h := p.rob.hotAt(head)
		if h.state != slotDone {
			return
		}
		c := p.rob.coldAt(head)
		if h.op == isa.OpStore {
			le := &p.rob.lsq[c.lsqIdx]
			p.committedMem.WriteMem(le.addr, le.data)
			p.ebus.Inc(p.sDcache)
		}
		if c.lsqIdx >= 0 {
			p.storeMask &^= 1 << uint(c.lsqIdx)
			if p.rob.lsqHead++; p.rob.lsqHead == len(p.rob.lsq) {
				p.rob.lsqHead = 0
			}
			p.rob.lsqCount--
		}
		if c.prevPhys >= 0 {
			if h.destFP {
				p.freeFP = append(p.freeFP, c.prevPhys)
			} else {
				p.freeInt = append(p.freeInt, c.prevPhys)
			}
		}
		// The active-list slot is about to be recycled: if the issued
		// entry is still in its queue's post-issue drain window, clear it
		// now so the slot ID can be re-dispatched. The Contains guard
		// keeps the already-expired common case call-free.
		if h.fp {
			if p.fpQ.Contains(head) {
				p.fpQ.Remove(head)
			}
		} else if p.intQ.Contains(head) {
			p.intQ.Remove(head)
		}
		h.state = slotFree
		if p.rob.head++; p.rob.head == len(p.rob.hot) {
			p.rob.head = 0
		}
		p.rob.count--
		p.Committed++
	}
}

// wakeupStage marks queue entries whose operands (and memory ordering
// constraints) are satisfied as ready to request selection.
//
// In the default event-driven mode the ready set was computed
// incrementally — producers marked exactly their consumers ready at
// writeback (wakeRegWaiters/wakeStoreWaiters via wakeNow) — so this stage
// only flushes the born-ready instructions dispatch buffered last cycle.
// The timing is identical to the scan: both observe the register/store
// state as of this cycle's completeStage, and MarkReady order within a
// cycle cannot matter because the ready set is a bit mask.
func (p *Pipeline) wakeupStage() {
	if p.scanWakeup {
		p.wakeQueue(p.intQ)
		p.wakeQueue(p.fpQ)
		return
	}
	for _, id := range p.wakeBuf {
		if p.rob.hot[id].fp {
			p.fpQ.MarkReady(id)
		} else {
			p.intQ.MarkReady(id)
		}
	}
	p.wakeBuf = p.wakeBuf[:0]
}

// SetScanWakeup switches the pipeline to the reference scan-based wakeup
// (true) or the event-driven wakeup (false). Only valid before the first
// cycle; the two paths produce bit-identical schedules (see
// wakeup_diff_test.go) but maintain different bookkeeping.
func (p *Pipeline) SetScanWakeup(on bool) {
	if p.cycle != 0 || p.Fetched != 0 {
		panic("pipeline: SetScanWakeup after execution started")
	}
	p.scanWakeup = on
}

// ScanWakeup reports which wakeup implementation is active.
func (p *Pipeline) ScanWakeup() bool { return p.scanWakeup }

// wakeRegWaiters drains the waiter list of a physical register that just
// wrote back, starting from token t (the caller detaches the list head):
// every entry on it has one fewer unready operand, and those reaching zero
// either become ready now or (loads) park on a blocking store's list.
func (p *Pipeline) wakeRegWaiters(t int32) {
	for t >= 0 {
		next := p.rob.wnext[t]
		h := p.rob.hotAt(t >> 1)
		h.waitCnt--
		if h.waitCnt == 0 {
			p.wakeNow(t>>1, h)
		}
		t = next
	}
}

// wakeStoreWaiters drains the list of loads blocked on a store that just
// resolved; each re-checks the (shrunken) unresolved set and either parks
// on another blocking store or becomes ready.
func (p *Pipeline) wakeStoreWaiters(store int32) {
	t := p.storeWaitHead[store]
	p.storeWaitHead[store] = -1
	for t >= 0 {
		next := p.rob.sNext[t]
		p.wakeNow(t, p.rob.hotAt(t))
		t = next
	}
}

// maybeWake is called exactly once each time an entry runs out of unready
// register operands or loses its blocking store: loads re-check memory
// ordering and park on an older unresolved same-address store if one
// remains; everything else joins the next wakeupStage's ready flush.
//
// Only dispatch calls maybeWake: a born-ready instruction dispatched this
// cycle becomes visible to selection at the NEXT cycle's wakeupStage in
// both wakeup modes, so its readiness must stay buffered.
func (p *Pipeline) maybeWake(id int32, h *robHot) {
	if h.op == isa.OpLoad || h.op == isa.OpLoadFP {
		c := p.rob.coldAt(id)
		if s := p.findBlocker(c.seq, c.addr); s >= 0 {
			p.rob.sNext[id] = p.storeWaitHead[s]
			p.storeWaitHead[s] = id
			return
		}
	}
	p.wakeBuf = append(p.wakeBuf, id)
}

// wakeNow is maybeWake for completion-originated readiness: the ready bit
// lands in the queue immediately instead of round-tripping through wakeBuf.
// Nothing between completeStage and wakeupStage reads the ready masks
// (commitStage only removes already-issued, draining entries), so the
// end-of-cycle state — what the scan-mode lockstep suite compares — is
// bit-identical to buffering; only the append/flush is skipped.
func (p *Pipeline) wakeNow(id int32, h *robHot) {
	if h.op == isa.OpLoad || h.op == isa.OpLoadFP {
		c := p.rob.coldAt(id)
		if s := p.findBlocker(c.seq, c.addr); s >= 0 {
			p.rob.sNext[id] = p.storeWaitHead[s]
			p.storeWaitHead[s] = id
			return
		}
	}
	if h.fp {
		p.fpQ.MarkReady(id)
	} else {
		p.intQ.MarkReady(id)
	}
}

// findBlocker returns the active-list slot of an unresolved same-address
// store older than seq blocking a load, or -1.
func (p *Pipeline) findBlocker(seq, addr uint64) int32 {
	for i := range p.unresolved {
		s := &p.unresolved[i]
		if s.seq < seq && s.addr == addr {
			return s.rob
		}
	}
	return -1
}

// wakeQueue walks q's waiting entries by bit mask. The mask is snapshotted
// before the walk; MarkReady only clears bits the walk has already
// consumed, so the iteration is equivalent to the buffered snapshot it
// replaced (wakeup readiness never depends on other wakeups this cycle).
func (p *Pipeline) wakeQueue(q *issueq.Queue) {
	for m := q.WaitMask(); m != 0; m &= m - 1 {
		id := q.IDAt(bits.TrailingZeros64(m))
		h := p.rob.hotAt(id)
		if !p.srcReady(h, p.rob.coldAt(id)) {
			continue
		}
		if h.op == isa.OpLoad || h.op == isa.OpLoadFP {
			c := p.rob.coldAt(id)
			if p.loadBlocked(c.seq, c.addr) {
				continue
			}
		}
		q.MarkReady(id)
	}
}

// loadBlocked reports whether an older unresolved same-address store
// prevents this load from issuing. The unresolved set is maintained
// incrementally: stores enter it at dispatch (their addresses are
// trace-resolved, so disambiguation is address-precise — the
// perfect-disambiguation assumption common to SimpleScalar-era studies)
// and leave when their data resolves.
func (p *Pipeline) loadBlocked(seq, addr uint64) bool {
	for _, s := range p.unresolved {
		if s.seq < seq && s.addr == addr {
			return true
		}
	}
	return false
}

// removeUnresolved drops the store with the given sequence number from the
// unresolved set (swap delete; the set is small).
func (p *Pipeline) removeUnresolved(seq uint64) {
	for i := range p.unresolved {
		if p.unresolved[i].seq == seq {
			last := len(p.unresolved) - 1
			p.unresolved[i] = p.unresolved[last]
			p.unresolved = p.unresolved[:last]
			return
		}
	}
}

func (p *Pipeline) srcReady(h *robHot, c *robCold) bool {
	if h.fp {
		return (c.src1Phys < 0 || p.readyFP[c.src1Phys]) &&
			(c.src2Phys < 0 || p.readyFP[c.src2Phys])
	}
	return (c.src1Phys < 0 || p.readyInt[c.src1Phys]) &&
		(c.src2Phys < 0 || p.readyInt[c.src2Phys])
}

// issueStage runs the select trees over the ready bit vectors and launches
// granted instructions into execution.
func (p *Pipeline) issueStage() {
	// Split the FP queue's ready entries by target unit class.
	var addMask, mulMask uint64
	for m := p.fpQ.ReadyMask(); m != 0; m &= m - 1 {
		phys := bits.TrailingZeros64(m)
		if p.rob.hot[p.fpQ.IDAt(phys)].op == isa.OpFMul {
			mulMask |= 1 << uint(phys)
		} else {
			addMask |= 1 << uint(phys)
		}
	}

	budget := p.issueWidth
	p.grantBuf = p.grantBuf[:0]
	p.grantBuf = p.intPool.SelectMask(p.intQ.ReadyMask(), p.grantBuf, budget)
	nInt := len(p.grantBuf)
	budget -= nInt
	p.grantBuf = p.fpAddPool.SelectMask(addMask, p.grantBuf, budget)
	nAdd := len(p.grantBuf) - nInt
	budget -= nAdd
	p.grantBuf = p.fpMulPool.SelectMask(mulMask, p.grantBuf, budget)

	// Issue queues do not compact mid-cycle, so physical positions stay
	// valid between select and issue; read the instruction IDs out of the
	// payload here (the mask carries none, as in the hardware).
	for i := range p.grantBuf {
		g := &p.grantBuf[i]
		switch {
		case i < nInt:
			g.ID = p.intQ.IDAt(g.Phys)
			p.issueInt(*g)
		case i < nInt+nAdd:
			g.ID = p.fpQ.IDAt(g.Phys)
			p.issueFPAdd(*g)
		default:
			g.ID = p.fpQ.IDAt(g.Phys)
			p.issueFPMul(*g)
		}
	}
}

func (p *Pipeline) issueInt(g seltree.Grant) {
	h := p.rob.hotAt(g.ID)
	c := p.rob.coldAt(g.ID)
	p.intQ.Issue(g.ID)
	h.state = slotIssued
	h.unit = int8(g.Unit)
	p.Issued++

	// Register reads through this ALU's register-file copy ports.
	ops := 0
	if c.src1Phys >= 0 {
		ops++
	}
	if c.src2Phys >= 0 {
		ops++
	}
	p.rf.ChargeRead(g.Unit, ops)

	var lat int
	switch h.op {
	case isa.OpMul:
		p.ebus.Inc(p.sIntMul[g.Unit])
		c.value = isa.ALUResult(h.op, p.physInt[c.src1Phys], p.physInt[c.src2Phys])
		lat = p.cfg.IntMulLatency
	case isa.OpBr:
		p.ebus.Inc(p.sIntALU[g.Unit])
		p.Branches++
		lat = p.cfg.IntALULatency
	case isa.OpLoad, isa.OpLoadFP:
		p.ebus.Inc(p.sIntALU[g.Unit]) // AGU
		p.ebus.Inc(p.sLSQ)
		p.ebus.Inc(p.sDTB)
		p.Loads++
		lat = p.loadLatency(c.addr)
		c.value = p.loadValue(c.seq, c.addr)
	case isa.OpStore:
		p.ebus.Inc(p.sIntALU[g.Unit]) // AGU + data read
		p.ebus.Inc(p.sLSQ)
		p.ebus.Inc(p.sDTB)
		p.Stores++
		c.value = p.physInt[c.src2Phys]
		lat = p.cfg.IntALULatency
	default:
		p.ebus.Inc(p.sIntALU[g.Unit])
		c.value = isa.ALUResult(h.op, p.physInt[c.src1Phys], p.physInt[c.src2Phys])
		lat = p.cfg.IntALULatency
	}
	p.schedule(g.ID, lat)
}

// loadLatency computes a load's completion latency including AGU, L1D port
// queueing, and the cache/memory access.
func (p *Pipeline) loadLatency(addr uint64) int {
	// Pick the earliest-free L1D port.
	best := 0
	for i := 1; i < len(p.portFree); i++ {
		if p.portFree[i] < p.portFree[best] {
			best = i
		}
	}
	start := p.cycle + int64(p.cfg.IntALULatency)
	if p.portFree[best] > start {
		start = p.portFree[best]
	}
	p.portFree[best] = start + 1
	lat, _ := p.mem.Data(addr)
	p.ebus.Inc(p.sDcache)
	return int(start-p.cycle) + lat
}

// loadValue resolves the load's value: forward from the youngest older
// in-flight store to the same address, else read committed memory. All
// older stores are resolved by the wakeup constraint, so this is exact.
func (p *Pipeline) loadValue(seq, addr uint64) uint64 {
	var (
		bestSeq uint64
		found   bool
		val     uint64
	)
	if p.lsqMaskOK {
		// Visit only the slots holding stores; picking the max sequence
		// number is order-independent, so mask order equals ring order.
		for m := p.storeMask; m != 0; m &= m - 1 {
			le := &p.rob.lsq[bits.TrailingZeros64(m)]
			if le.seq < seq && le.addr == addr &&
				(!found || le.seq > bestSeq) {
				bestSeq, val, found = le.seq, le.data, true
			}
		}
	} else {
		idx := p.rob.lsqHead
		for n := 0; n < p.rob.lsqCount; n++ {
			le := &p.rob.lsq[idx]
			if le.isStore && le.seq < seq && le.addr == addr &&
				(!found || le.seq > bestSeq) {
				bestSeq, val, found = le.seq, le.data, true
			}
			if idx++; idx == len(p.rob.lsq) {
				idx = 0
			}
		}
	}
	if found {
		return val
	}
	return p.committedMem.ReadMem(addr)
}

func (p *Pipeline) issueFPAdd(g seltree.Grant) {
	h := p.rob.hotAt(g.ID)
	c := p.rob.coldAt(g.ID)
	p.fpQ.Issue(g.ID)
	h.state = slotIssued
	h.unit = int8(g.Unit)
	p.Issued++
	p.ebus.Inc(p.sFPAdd[g.Unit])
	p.ebus.IncN(p.sFPRegRead, 2)
	c.value = isa.ALUResult(h.op, p.physFP[c.src1Phys], p.physFP[c.src2Phys])
	p.schedule(g.ID, p.cfg.FPAddLatency)
}

func (p *Pipeline) issueFPMul(g seltree.Grant) {
	h := p.rob.hotAt(g.ID)
	c := p.rob.coldAt(g.ID)
	p.fpQ.Issue(g.ID)
	h.state = slotIssued
	h.unit = int8(g.Unit)
	p.Issued++
	p.ebus.Inc(p.sFPMulOp)
	p.ebus.IncN(p.sFPRegRead, 2)
	c.value = isa.ALUResult(h.op, p.physFP[c.src1Phys], p.physFP[c.src2Phys])
	p.schedule(g.ID, p.cfg.FPMulLatency)
}

// schedule enqueues id for completion lat cycles from now: push onto the
// target slot's intrusive list. Each active-list slot is in flight through
// at most one execution at a time, so its cnext link is free here.
func (p *Pipeline) schedule(id int32, lat int) {
	if lat < 1 {
		lat = 1
	}
	if lat >= completionRing {
		panic(fmt.Sprintf("pipeline: latency %d exceeds completion ring", lat))
	}
	at := uint64(p.cycle+int64(lat)) & (completionRing - 1)
	p.cnext[id] = p.completionHead[at]
	p.completionHead[at] = id
}

// frontendStage fetches, renames and dispatches up to FetchWidth
// instructions.
func (p *Pipeline) frontendStage() {
	if p.fetchOff || p.mispredictInFlight || p.cycle < p.fetchResume {
		return
	}
	for n := 0; n < p.fetchWidth; n++ {
		if p.maxFetched > 0 && p.Fetched >= p.maxFetched {
			return
		}
		// Peek keeps the instruction in the generator's ring across stall
		// returns; it is only consumed (Advance) once dispatched.
		in := p.gen.Peek()

		// Structural resources.
		if p.rob.count >= len(p.rob.hot) {
			p.StallROB++
			return
		}
		if in.Op.IsMem() && p.rob.lsqCount >= len(p.rob.lsq) {
			p.StallLSQ++
			return
		}
		fp := in.Op.IsFP()
		if fp {
			if p.fpQ.Full() {
				p.StallIQ++
				return
			}
		} else if p.intQ.Full() {
			p.StallIQ++
			return
		}
		if in.Op.HasDest() {
			if in.Op.DestIsFP() {
				if len(p.freeFP) == 0 {
					return
				}
			} else if len(p.freeInt) == 0 {
				return
			}
		}

		// Instruction cache: one access per new line.
		line := in.PC >> p.lineShift
		if line != p.curLine {
			p.curLine = line
			lat, lvl := p.mem.Inst(in.PC)
			p.ebus.Inc(p.sIcache)
			p.ebus.Inc(p.sITB)
			if lvl != cache.LevelL1 {
				// Fetch stalls for the miss; resume when the line
				// arrives.
				p.fetchResume = p.cycle + int64(lat)
				return
			}
		}

		// Branch prediction at fetch (trace-driven redirect model).
		endGroup := false
		if in.Op.IsBranch() {
			p.ebus.Inc(p.sBpred)
			p.bp.Predict(in.PC)
			miss := p.bp.Update(in.PC, in.Taken, in.Target)
			if miss {
				p.Mispredicts++
				p.mispredictInFlight = true
				endGroup = true
			} else if in.Taken {
				endGroup = true // taken branch ends the fetch group
			}
		}

		p.dispatch(in, fp)
		p.gen.Advance()
		p.Fetched++
		if endGroup {
			if p.mispredictInFlight {
				// Mark the just-dispatched branch as the redirect source.
				idx := (p.rob.tail + len(p.rob.hot) - 1) % len(p.rob.hot)
				p.rob.cold[idx].mispredct = true
			}
			return
		}
	}
}

// dispatch renames the instruction, allocates active-list/LSQ entries and
// inserts it into its issue queue. Resource availability was checked by
// the caller.
func (p *Pipeline) dispatch(in *isa.Inst, fp bool) {
	idx := int32(p.rob.tail)
	h := p.rob.hotAt(idx)
	c := p.rob.coldAt(idx)
	// Field stores instead of struct literals: a literal builds a temporary
	// and copies it over the slot every dispatch. The wakeup link words
	// (wnext/sNext) need no clearing — they are written at list registration
	// and only read while the entry is on that list.
	h.op = in.Op
	h.state = slotInQueue
	h.fp = fp
	h.destFP = false
	h.unit = 0
	h.waitCnt = 0
	h.destPhys = -1
	c.seq, c.addr = in.Seq, in.Addr
	c.value = 0
	c.prevPhys = -1
	c.src1Phys, c.src2Phys = -1, -1
	c.mispredct = false
	c.lsqIdx = -1

	// Rename sources through the map table of the queue's side (FP loads
	// source their address from the integer file).
	if fp {
		p.ebus.Inc(p.sFPMap)
		if in.Src1 != isa.NoReg {
			c.src1Phys = p.ratFP[in.Src1]
		}
		if in.Src2 != isa.NoReg {
			c.src2Phys = p.ratFP[in.Src2]
		}
	} else {
		p.ebus.Inc(p.sIntMap)
		if in.Src1 != isa.NoReg {
			c.src1Phys = p.ratInt[in.Src1]
		}
		if in.Src2 != isa.NoReg {
			c.src2Phys = p.ratInt[in.Src2]
		}
	}
	if in.Op.HasDest() {
		if in.Op.DestIsFP() {
			newPhys := p.freeFP[len(p.freeFP)-1]
			p.freeFP = p.freeFP[:len(p.freeFP)-1]
			c.prevPhys = p.ratFP[in.Dest]
			h.destPhys = newPhys
			h.destFP = true
			p.ratFP[in.Dest] = newPhys
			p.readyFP[newPhys] = false
		} else {
			newPhys := p.freeInt[len(p.freeInt)-1]
			p.freeInt = p.freeInt[:len(p.freeInt)-1]
			c.prevPhys = p.ratInt[in.Dest]
			h.destPhys = newPhys
			p.ratInt[in.Dest] = newPhys
			p.readyInt[newPhys] = false
		}
	}

	if in.Op.IsMem() {
		l := int32(p.rob.lsqTail)
		p.rob.lsq[l] = lsqEntry{rob: idx, seq: in.Seq, isStore: in.Op == isa.OpStore, addr: in.Addr}
		if in.Op == isa.OpStore {
			p.unresolved = append(p.unresolved, storeRef{seq: in.Seq, addr: in.Addr, rob: idx})
			p.storeMask |= 1 << uint(l)
		}
		if p.rob.lsqTail++; p.rob.lsqTail == len(p.rob.lsq) {
			p.rob.lsqTail = 0
		}
		p.rob.lsqCount++
		c.lsqIdx = l
		p.ebus.Inc(p.sLSQ)
	}

	if fp {
		p.fpQ.Dispatch(idx)
	} else {
		p.intQ.Dispatch(idx)
	}

	// Event-driven wakeup: register on each unready source register's
	// waiter list; born-ready instructions head straight for the next
	// wakeupStage (possibly via a blocking store's list). The scan path
	// discovers the same readiness by polling srcReady/loadBlocked.
	if !p.scanWakeup {
		wc := uint8(0)
		ready := p.readyInt
		heads := p.waitHeadInt
		if fp {
			ready = p.readyFP
			heads = p.waitHeadFP
		}
		if c.src1Phys >= 0 && !ready[c.src1Phys] {
			p.rob.wnext[idx*2] = heads[c.src1Phys]
			heads[c.src1Phys] = idx * 2
			wc++
		}
		if c.src2Phys >= 0 && !ready[c.src2Phys] {
			p.rob.wnext[idx*2+1] = heads[c.src2Phys]
			heads[c.src2Phys] = idx*2 + 1
			wc++
		}
		h.waitCnt = wc
		if wc == 0 {
			p.maybeWake(idx, h)
		}
	}

	if p.rob.tail++; p.rob.tail == len(p.rob.hot) {
		p.rob.tail = 0
	}
	p.rob.count++
}

// Utilization is the resource-usage telemetry derived from the same event
// counters that drive the energy model: how unevenly the paper's three
// structures are being used. Shares are fractions of the structure's total
// activity (they sum to 1 when there is any activity; all-zero otherwise).
type Utilization struct {
	// IntQHalfOcc and FPQHalfOcc are the average per-cycle occupancy of
	// each physical issue-queue half, in entries.
	IntQHalfOcc [2]float64 `json:"intq_half_occupancy"`
	FPQHalfOcc  [2]float64 `json:"fpq_half_occupancy"`
	// ALUGrantShare is each integer ALU's share of all integer grants —
	// the select-priority asymmetry behind Table 5.
	ALUGrantShare []float64 `json:"alu_grant_share"`
	// RFReadShare is each integer register-file copy's share of reads —
	// the port asymmetry behind Table 6.
	RFReadShare []float64 `json:"rf_read_share"`
}

// Utilization reports the lifetime utilization statistics.
func (p *Pipeline) Utilization() Utilization {
	var u Utilization
	if p.cycle > 0 {
		for h := 0; h < 2; h++ {
			u.IntQHalfOcc[h] = float64(p.intQ.HalfOccupied[h]) / float64(p.cycle)
			u.FPQHalfOcc[h] = float64(p.fpQ.HalfOccupied[h]) / float64(p.cycle)
		}
	}
	u.ALUGrantShare = shares(p.intPool.Grants)
	u.RFReadShare = shares(p.rf.Reads)
	return u
}

// shares converts event counts to fractions of their sum.
func shares(counts []uint64) []float64 {
	out := make([]float64, len(counts))
	var tot uint64
	for _, c := range counts {
		tot += c
	}
	if tot == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(tot)
	}
	return out
}

// Drain stops fetch and runs the core until the active list empties,
// returning the number of cycles it took. A drain that exceeds maxCycles
// panics (deadlock guard for tests).
func (p *Pipeline) Drain(maxCycles int) int {
	p.SetFetchEnabled(false)
	n := 0
	for p.rob.count > 0 {
		p.Cycle()
		n++
		if n > maxCycles {
			panic("pipeline: drain did not converge (deadlock)")
		}
	}
	p.SetFetchEnabled(true)
	return n
}

// ArchState reconstructs the committed architectural state (registers via
// the rename map, memory from the committed image). Call after Drain.
func (p *Pipeline) ArchState() *isa.State {
	s := isa.NewState()
	for i := 0; i < isa.NumIntRegs; i++ {
		s.IntReg[i] = p.physInt[p.ratInt[i]]
		s.FPReg[i] = p.physFP[p.ratFP[i]]
	}
	s.Mem = make(map[uint64]uint64, len(p.committedMem.Mem))
	for k, v := range p.committedMem.Mem {
		s.Mem[k] = v
	}
	s.Hot = append([]uint64(nil), p.committedMem.Hot...)
	s.Warm = append([]uint64(nil), p.committedMem.Warm...)
	s.Stream = append([]uint64(nil), p.committedMem.Stream...)
	return s
}

// IPC returns committed instructions per active cycle.
func (p *Pipeline) IPC() float64 {
	if p.cycle == 0 {
		return 0
	}
	return float64(p.Committed) / float64(p.cycle)
}
