package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The event-driven wakeup (per-register waiter lists, per-store wake
// lists) replaced the reference per-cycle scan as a pure data-structure
// optimization: the set of instructions that become ready each cycle, and
// therefore every grant, counter, and joule downstream, must be identical.
// These tests drive a scan-based and an event-driven pipeline in lockstep
// over the same trace and fail on the first cycle the two diverge.

// diffPair holds the two pipelines under lockstep comparison.
type diffPair struct {
	scan, event *Pipeline
}

func newDiffPair(cfg *config.Config, prof trace.Profile) diffPair {
	ps, _ := newPipe(cfg, prof)
	ps.SetScanWakeup(true)
	pe, _ := newPipe(cfg, prof)
	pe.SetScanWakeup(false)
	return diffPair{scan: ps, event: pe}
}

// step advances both pipelines one cycle and compares every piece of
// scheduler-visible state the wakeup implementation could influence.
func (d diffPair) step(t *testing.T, cycle int) {
	t.Helper()
	d.scan.Cycle()
	d.event.Cycle()

	for _, q := range []struct {
		name        string
		scan, event interface {
			ReadyMask() uint64
			WaitMask() uint64
			Occupancy() int
			Mode() int
		}
	}{
		{"intQ", d.scan.IntQueue(), d.event.IntQueue()},
		{"fpQ", d.scan.FPQueue(), d.event.FPQueue()},
	} {
		if a, b := q.scan.ReadyMask(), q.event.ReadyMask(); a != b {
			t.Fatalf("cycle %d: %s ready mask scan=%#x event=%#x", cycle, q.name, a, b)
		}
		if a, b := q.scan.WaitMask(), q.event.WaitMask(); a != b {
			t.Fatalf("cycle %d: %s wait mask scan=%#x event=%#x", cycle, q.name, a, b)
		}
		if a, b := q.scan.Occupancy(), q.event.Occupancy(); a != b {
			t.Fatalf("cycle %d: %s occupancy scan=%d event=%d", cycle, q.name, a, b)
		}
		if a, b := q.scan.Mode(), q.event.Mode(); a != b {
			t.Fatalf("cycle %d: %s mode scan=%d event=%d", cycle, q.name, a, b)
		}
	}
	if d.scan.Issued != d.event.Issued {
		t.Fatalf("cycle %d: issued scan=%d event=%d", cycle, d.scan.Issued, d.event.Issued)
	}
	if d.scan.Committed != d.event.Committed {
		t.Fatalf("cycle %d: committed scan=%d event=%d", cycle, d.scan.Committed, d.event.Committed)
	}
	if d.scan.Fetched != d.event.Fetched {
		t.Fatalf("cycle %d: fetched scan=%d event=%d", cycle, d.scan.Fetched, d.event.Fetched)
	}
}

// finish compares end-of-run aggregates: per-unit grant order totals,
// issue-queue event counters, the full stats-bus lifetime (event counts
// AND accumulated joules per slot), and the architectural state.
func (d diffPair) finish(t *testing.T) {
	t.Helper()
	for _, pp := range []struct {
		name        string
		scan, event interface {
			Units() int
			GrantCount(int) uint64
		}
	}{
		{"int", d.scan.IntPool(), d.event.IntPool()},
		{"fpAdd", d.scan.FPAddPool(), d.event.FPAddPool()},
		{"fpMul", d.scan.FPMulPool(), d.event.FPMulPool()},
	} {
		for u := 0; u < pp.scan.Units(); u++ {
			if a, b := pp.scan.GrantCount(u), pp.event.GrantCount(u); a != b {
				t.Errorf("%s pool unit %d grants scan=%d event=%d", pp.name, u, a, b)
			}
		}
	}
	sq, eq := d.scan.IntQueue(), d.event.IntQueue()
	for i, pair := range [][2]uint64{
		{sq.Dispatches, eq.Dispatches},
		{sq.Issues, eq.Issues},
		{sq.Compactions, eq.Compactions},
		{sq.Moves, eq.Moves},
		{sq.WrapMoves, eq.WrapMoves},
		{sq.HalfMoves[0], eq.HalfMoves[0]},
		{sq.HalfMoves[1], eq.HalfMoves[1]},
		{sq.HalfOccupied[0], eq.HalfOccupied[0]},
		{sq.HalfOccupied[1], eq.HalfOccupied[1]},
	} {
		if pair[0] != pair[1] {
			t.Errorf("intQ counter %d scan=%d event=%d", i, pair[0], pair[1])
		}
	}

	sb, eb := d.scan.meter.Bus(), d.event.meter.Bus()
	if sb.NumSlots() != eb.NumSlots() {
		t.Fatalf("stats bus slot count scan=%d event=%d", sb.NumSlots(), eb.NumSlots())
	}
	for s := 0; s < sb.NumSlots(); s++ {
		id := stats.SlotID(s)
		if a, b := sb.LifetimeCount(id), eb.LifetimeCount(id); a != b {
			t.Errorf("slot %q count scan=%d event=%d", sb.Name(id), a, b)
		}
		if a, b := sb.LifetimeEnergy(id), eb.LifetimeEnergy(id); a != b {
			t.Errorf("slot %q energy scan=%g event=%g", sb.Name(id), a, b)
		}
	}

	if diff := d.scan.ArchState().Diff(d.event.ArchState()); diff != "" {
		t.Errorf("architectural state diverged: %s", diff)
	}
}

// TestEventWakeupMatchesScanAllTechniques runs the lockstep comparison
// over every IQ × ALU technique combination on both an integer-heavy and
// an FP-heavy trace.
func TestEventWakeupMatchesScanAllTechniques(t *testing.T) {
	iqs := []config.IQPolicy{config.IQBase, config.IQToggle, config.IQNonCompacting}
	alus := []config.ALUPolicy{config.ALUBase, config.ALURoundRobin}
	for _, profName := range []string{"eon", "swim"} {
		prof, err := trace.ByName(profName)
		if err != nil {
			t.Fatalf("profile %s: %v", profName, err)
		}
		for _, iq := range iqs {
			for _, alu := range alus {
				iq, alu := iq, alu
				t.Run(fmt.Sprintf("%s/iq=%s/alu=%s", profName, iq, alu), func(t *testing.T) {
					t.Parallel()
					cfg := config.Default()
					cfg.Techniques.IQ = iq
					cfg.Techniques.ALU = alu
					d := newDiffPair(cfg, prof)
					const n = 6000
					d.scan.SetFetchLimit(n)
					d.event.SetFetchLimit(n)
					for c := 0; d.scan.Committed < n; c++ {
						d.step(t, c)
						if c > 100*n {
							t.Fatal("no forward progress")
						}
					}
					d.finish(t)
				})
			}
		}
	}
}

// TestEventWakeupMatchesScanUnderModeChurn toggles the issue-queue mode
// and flips ALU busy bits mid-flight (the thermal manager's actions) on
// both pipelines at the same cycles, exercising wakeup across origin
// rotations and busy-masked select trees.
func TestEventWakeupMatchesScanUnderModeChurn(t *testing.T) {
	prof, _ := trace.ByName("eon")
	cfg := config.Default()
	cfg.Techniques.IQ = config.IQToggle
	d := newDiffPair(cfg, prof)
	const n = 8000
	d.scan.SetFetchLimit(n)
	d.event.SetFetchLimit(n)
	for c := 0; d.scan.Committed < n; c++ {
		if c%257 == 200 {
			d.scan.IntQueue().Toggle()
			d.event.IntQueue().Toggle()
		}
		if c%403 == 100 {
			u := (c / 403) % d.scan.IntPool().Units()
			busy := !d.scan.IntPool().Busy(u)
			d.scan.IntPool().SetBusy(u, busy)
			d.event.IntPool().SetBusy(u, busy)
		}
		d.step(t, c)
		if c > 100*n {
			t.Fatal("no forward progress")
		}
	}
	d.finish(t)
}

// TestEventWakeupMatchesScanRandomProfiles sweeps randomized profile
// variants (different seeds and dependency distances) through the
// lockstep harness with the base techniques.
func TestEventWakeupMatchesScanRandomProfiles(t *testing.T) {
	base, _ := trace.ByName("mcf")
	for i := 0; i < 4; i++ {
		i := i
		t.Run(fmt.Sprintf("variant%d", i), func(t *testing.T) {
			t.Parallel()
			prof := base
			prof.Name = fmt.Sprintf("mcf-var%d", i)
			prof.Seed = 0xD1F5 + uint64(i)*977
			prof.DepDist = 2 + float64(i)
			cfg := config.Default()
			d := newDiffPair(cfg, prof)
			const n = 5000
			d.scan.SetFetchLimit(n)
			d.event.SetFetchLimit(n)
			for c := 0; d.scan.Committed < n; c++ {
				d.step(t, c)
				if c > 100*n {
					t.Fatal("no forward progress")
				}
			}
			d.finish(t)
		})
	}
}
