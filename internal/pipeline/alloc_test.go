package pipeline

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestCycleDoesNotAllocate proves the hot loop is allocation-free in
// steady state: every per-event energy deposit is a stats-bus counter
// increment, and the scratch structures (grant buffer, completion ring
// buckets, committed-memory image, store sets) have all reached their
// working-set capacity after a long drive. Only the drive length makes
// this hold — a cold pipeline still grows those buffers.
func TestCycleDoesNotAllocate(t *testing.T) {
	if testing.Short() {
		t.Skip("long steady-state drive")
	}
	cfg := config.Default()
	prof, _ := trace.ByName("eon")
	p, _ := newPipe(cfg, prof)
	p.Warmup(200_000)
	for i := 0; i < 300_000; i++ {
		p.Cycle()
	}
	if avg := testing.AllocsPerRun(2000, p.Cycle); avg != 0 {
		t.Fatalf("Cycle allocates %.3f times per call in steady state", avg)
	}
}
