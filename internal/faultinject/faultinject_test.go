package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Fire(SiteJobRun); err != nil {
		t.Fatalf("nil Fire = %v", err)
	}
	data := []byte("payload")
	got, err := in.FireWrite(SiteCacheWrite, data)
	if err != nil || string(got) != "payload" {
		t.Fatalf("nil FireWrite = %q, %v", got, err)
	}
	if in.Fired(SiteJobRun) != 0 || in.Armed(SiteJobRun) != 0 {
		t.Fatal("nil injector reports activity")
	}
}

func TestFireConsumesOutcomesFIFO(t *testing.T) {
	in := New()
	e1, e2 := errors.New("first"), errors.New("second")
	in.Arm(SiteJobRun, Outcome{Err: e1})
	in.Arm(SiteJobRun, Outcome{Err: e2})
	if err := in.Fire(SiteJobRun); err != e1 {
		t.Fatalf("first fire = %v", err)
	}
	if err := in.Fire(SiteJobRun); err != e2 {
		t.Fatalf("second fire = %v", err)
	}
	if err := in.Fire(SiteJobRun); err != nil {
		t.Fatalf("disarmed fire = %v", err)
	}
	if got := in.Fired(SiteJobRun); got != 2 {
		t.Fatalf("fired = %d, want 2", got)
	}
}

func TestArmNAndArmed(t *testing.T) {
	in := New()
	in.ArmN(SiteJournalAppend, 3, Outcome{Err: ErrNoSpace})
	if got := in.Armed(SiteJournalAppend); got != 3 {
		t.Fatalf("armed = %d, want 3", got)
	}
	for i := 0; i < 3; i++ {
		if err := in.Fire(SiteJournalAppend); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("fire %d = %v", i, err)
		}
	}
	if got := in.Armed(SiteJournalAppend); got != 0 {
		t.Fatalf("armed after drain = %d", got)
	}
}

func TestFirePanics(t *testing.T) {
	in := New()
	in.Arm(SiteJobRun, Outcome{Panic: "boom"})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("armed panic did not fire")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") || !strings.Contains(s, SiteJobRun) {
			t.Fatalf("panic value = %v", r)
		}
	}()
	in.Fire(SiteJobRun)
}

func TestFireDelay(t *testing.T) {
	in := New()
	in.Arm(SiteJobRun, Outcome{Delay: 30 * time.Millisecond, Err: ErrIO})
	start := time.Now()
	err := in.Fire(SiteJobRun)
	if !errors.Is(err, ErrIO) {
		t.Fatalf("fire = %v", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("delay not applied: %v", elapsed)
	}
}

func TestFireWriteTorn(t *testing.T) {
	in := New()
	data := []byte("0123456789")
	in.Arm(SiteCacheWrite, Outcome{Torn: true, Truncate: 4})
	got, err := in.FireWrite(SiteCacheWrite, data)
	if err != nil || string(got) != "0123" {
		t.Fatalf("torn write = %q, %v", got, err)
	}
	// Zero-length tear.
	in.Arm(SiteCacheWrite, Outcome{Torn: true})
	got, err = in.FireWrite(SiteCacheWrite, data)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero tear = %q, %v", got, err)
	}
	// Error without Torn leaves the payload whole.
	in.Arm(SiteCacheWrite, Outcome{Err: ErrNoSpace})
	got, err = in.FireWrite(SiteCacheWrite, data)
	if !errors.Is(err, ErrNoSpace) || string(got) != "0123456789" {
		t.Fatalf("error-only write = %q, %v", got, err)
	}
}

// TestInjectorConcurrent arms and fires from many goroutines; the -race
// CI job runs this.
func TestInjectorConcurrent(t *testing.T) {
	in := New()
	const n = 8
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Arm(SiteJobRun, Outcome{Err: ErrIO})
				in.Fire(SiteJobRun)
				in.Fired(SiteJobRun)
			}
		}()
	}
	wg.Wait()
	// Every armed outcome was either fired or is still armed.
	if got := in.Fired(SiteJobRun) + uint64(in.Armed(SiteJobRun)); got != n*100 {
		t.Fatalf("fired+armed = %d, want %d", got, n*100)
	}
}

func TestArmPersistentFiresUntilDisarmed(t *testing.T) {
	in := New()
	in.ArmPersistent("site", Outcome{Err: ErrNoSpace})
	for i := 0; i < 3; i++ {
		if err := in.Fire("site"); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("fire %d = %v, want ErrNoSpace", i, err)
		}
	}
	if got := in.Fired("site"); got != 3 {
		t.Fatalf("fired = %d, want 3", got)
	}
	in.DisarmPersistent("site")
	if err := in.Fire("site"); err != nil {
		t.Fatalf("fire after disarm = %v", err)
	}
}

func TestQueuedOutcomesPrecedePersistent(t *testing.T) {
	in := New()
	in.ArmPersistent("site", Outcome{Err: ErrNoSpace})
	in.Arm("site", Outcome{Err: ErrIO})
	if err := in.Fire("site"); !errors.Is(err, ErrIO) {
		t.Fatalf("first fire = %v, want the queued ErrIO", err)
	}
	if err := in.Fire("site"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("second fire = %v, want the persistent ErrNoSpace", err)
	}
}

func TestArmWhileFileGatesOnSentinel(t *testing.T) {
	in := New()
	sentinel := filepath.Join(t.TempDir(), "disk-dead")
	in.ArmWhileFile("site", sentinel, Outcome{Err: ErrNoSpace})

	if err := in.Fire("site"); err != nil {
		t.Fatalf("fired without the sentinel: %v", err)
	}
	if err := os.WriteFile(sentinel, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := in.Fire("site"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("fire with sentinel = %v, want ErrNoSpace", err)
	}
	if err := os.Remove(sentinel); err != nil {
		t.Fatal(err)
	}
	if err := in.Fire("site"); err != nil {
		t.Fatalf("fired after sentinel removal: %v", err)
	}
}

func TestClockAndInjectorNow(t *testing.T) {
	var nilInj *Injector
	if d := time.Since(nilInj.Now()); d < 0 || d > time.Minute {
		t.Fatalf("nil injector Now() drifted: %v", d)
	}
	in := New()
	if d := time.Since(in.Now()); d < 0 || d > time.Minute {
		t.Fatalf("clockless injector Now() drifted: %v", d)
	}

	t0 := time.Unix(5000, 0)
	clk := NewClock(t0)
	in.SetClock(clk)
	if !in.Now().Equal(t0) {
		t.Fatalf("Now() = %v, want %v", in.Now(), t0)
	}
	clk.Advance(3 * time.Second)
	if !in.Now().Equal(t0.Add(3 * time.Second)) {
		t.Fatalf("Now() after Advance = %v", in.Now())
	}
	clk.Set(t0)
	if !in.Now().Equal(t0) {
		t.Fatalf("Now() after Set = %v", in.Now())
	}
	in.SetClock(nil)
	if d := time.Since(in.Now()); d < 0 || d > time.Minute {
		t.Fatalf("detached clock did not fall back to real time: %v", d)
	}
}
