// Package faultinject is the chaos-testing seam for the service stack:
// named injection sites in the engine, cache, and journal consult an
// *Injector that tests arm with outcomes — panics, transient I/O
// errors, ENOSPC, extra latency, and torn (truncated) writes.
//
// Production never constructs an Injector: every seam holds a nil
// *Injector, and all methods are nil-receiver no-ops, so the disarmed
// cost at a site is one pointer test and no allocation. The seams live
// only on the service layer (per-job, per-cache-write, per-journal
// append) — never inside the cycle hot loop.
package faultinject

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Injection sites. A site name is the contract between the code under
// test and the test arming the injector.
const (
	// SiteJobRun fires at the top of every job execution attempt.
	SiteJobRun = "job.run"
	// SiteCacheWrite fires before every disk-cache entry write; torn
	// outcomes truncate the entry as a crash would.
	SiteCacheWrite = "cache.write"
	// SiteCacheRead fires before every disk-cache entry read.
	SiteCacheRead = "cache.read"
	// SiteJournalAppend fires before every journal record append.
	SiteJournalAppend = "journal.append"
	// SiteJournalRewrite fires inside journal compaction, before the
	// temp file is synced — the "disk fills up mid-compaction" case.
	SiteJournalRewrite = "journal.rewrite"
)

// ErrIO is the injected transient I/O failure; the engine's retry
// classifier treats anything wrapping it as retryable.
var ErrIO = errors.New("faultinject: transient I/O error")

// ErrNoSpace is the injected ENOSPC-style failure for the durability
// layers (cache and journal writes).
var ErrNoSpace = errors.New("faultinject: no space left on device")

// Outcome is one armed fault. Zero fields do nothing; a single outcome
// may combine a delay with an error or a panic (the delay is applied
// first).
type Outcome struct {
	// Err, if non-nil, is returned from the site.
	Err error
	// Panic, if non-empty, panics at the site with this message
	// (after Delay, instead of returning Err).
	Panic string
	// Delay sleeps before failing or proceeding — the "slow job" and
	// "deadline blowout" injection.
	Delay time.Duration
	// Torn, on a write site, hands the site only the first Truncate
	// bytes of its payload (Truncate 0 = a zero-length torn write).
	Torn     bool
	Truncate int
}

// persistentRule is a standing outcome for a site: unlike the FIFO
// queue it fires on every visit until disarmed, modelling sustained
// failures (a full disk, a dead device). With whileFile set the rule is
// active only while that file exists, which lets a shell script "yank
// the disk" (touch the sentinel) and "plug it back in" (rm it) under a
// live daemon.
type persistentRule struct {
	o         Outcome
	whileFile string
}

// Injector queues outcomes per site. The zero value is ready to use;
// a nil *Injector is the production no-op. Safe for concurrent use.
type Injector struct {
	mu         sync.Mutex
	rules      map[string][]Outcome
	persistent map[string]persistentRule
	fired      map[string]uint64
	clock      *Clock
}

// New returns an empty, armed-capable injector.
func New() *Injector { return &Injector{} }

// Arm queues one outcome at site; outcomes fire in FIFO order, each
// exactly once.
func (in *Injector) Arm(site string, o Outcome) { in.ArmN(site, 1, o) }

// ArmN queues n copies of the outcome at site.
func (in *Injector) ArmN(site string, n int, o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rules == nil {
		in.rules = make(map[string][]Outcome)
	}
	for i := 0; i < n; i++ {
		in.rules[site] = append(in.rules[site], o)
	}
}

// ArmPersistent installs a standing outcome at site: it fires on every
// visit (after any queued FIFO outcomes) until DisarmPersistent.
func (in *Injector) ArmPersistent(site string, o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.persistent == nil {
		in.persistent = make(map[string]persistentRule)
	}
	in.persistent[site] = persistentRule{o: o}
}

// ArmWhileFile installs a standing outcome at site that is active only
// while path exists — the file-sentinel form of ArmPersistent, usable
// from outside the process (chaos scripts touch/rm the sentinel).
func (in *Injector) ArmWhileFile(site, path string, o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.persistent == nil {
		in.persistent = make(map[string]persistentRule)
	}
	in.persistent[site] = persistentRule{o: o, whileFile: path}
}

// DisarmPersistent removes the standing outcome at site, if any.
func (in *Injector) DisarmPersistent(site string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.persistent, site)
}

// Fired returns how many times site has consumed an armed outcome.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Armed returns how many outcomes remain queued at site.
func (in *Injector) Armed(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rules[site])
}

// take pops the next outcome for site: the FIFO queue first, then the
// standing persistent rule (consulting its file sentinel), if any.
func (in *Injector) take(site string) (Outcome, bool) {
	if in == nil {
		return Outcome{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if q := in.rules[site]; len(q) > 0 {
		o := q[0]
		in.rules[site] = q[1:]
		in.markFiredLocked(site)
		return o, true
	}
	p, ok := in.persistent[site]
	if !ok {
		return Outcome{}, false
	}
	if p.whileFile != "" {
		if _, err := os.Stat(p.whileFile); err != nil {
			return Outcome{}, false
		}
	}
	in.markFiredLocked(site)
	return p.o, true
}

func (in *Injector) markFiredLocked(site string) {
	if in.fired == nil {
		in.fired = make(map[string]uint64)
	}
	in.fired[site]++
}

// Fire consumes the next outcome armed at site: it sleeps the outcome's
// delay, panics if a panic is armed, and otherwise returns the armed
// error. With a nil receiver or nothing armed it returns nil
// immediately — the production path.
func (in *Injector) Fire(site string) error {
	o, ok := in.take(site)
	if !ok {
		return nil
	}
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, o.Panic))
	}
	return o.Err
}

// FireWrite is Fire for write sites carrying a payload. It returns the
// payload the site should actually write (truncated when a torn
// outcome is armed) and the error the site should observe. With no
// outcome armed it returns the payload untouched and a nil error.
func (in *Injector) FireWrite(site string, data []byte) ([]byte, error) {
	o, ok := in.take(site)
	if !ok {
		return data, nil
	}
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, o.Panic))
	}
	if o.Torn && o.Truncate < len(data) {
		return data[:max(o.Truncate, 0)], o.Err
	}
	return data, o.Err
}

// Clock is a settable fake clock for time-dependent recovery logic
// (circuit-breaker cooldowns, overload holds). Tests construct one,
// attach it with SetClock, and Advance it; production code reads time
// through Injector.Now, which falls back to the real clock when no
// injector or no fake clock is attached.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock returns a fake clock frozen at t0.
func NewClock(t0 time.Time) *Clock { return &Clock{t: t0} }

// Now returns the fake clock's current time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the fake clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Set pins the fake clock to t.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

// SetClock attaches a fake clock to the injector; nil detaches it.
func (in *Injector) SetClock(c *Clock) {
	in.mu.Lock()
	in.clock = c
	in.mu.Unlock()
}

// Now is the time seam: the fake clock when one is attached, otherwise
// the real clock. Nil-receiver safe, so production code can hold the
// method value of a nil injector.
func (in *Injector) Now() time.Time {
	if in == nil {
		return time.Now()
	}
	in.mu.Lock()
	c := in.clock
	in.mu.Unlock()
	if c == nil {
		return time.Now()
	}
	return c.Now()
}
