// Package faultinject is the chaos-testing seam for the service stack:
// named injection sites in the engine, cache, and journal consult an
// *Injector that tests arm with outcomes — panics, transient I/O
// errors, ENOSPC, extra latency, and torn (truncated) writes.
//
// Production never constructs an Injector: every seam holds a nil
// *Injector, and all methods are nil-receiver no-ops, so the disarmed
// cost at a site is one pointer test and no allocation. The seams live
// only on the service layer (per-job, per-cache-write, per-journal
// append) — never inside the cycle hot loop.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Injection sites. A site name is the contract between the code under
// test and the test arming the injector.
const (
	// SiteJobRun fires at the top of every job execution attempt.
	SiteJobRun = "job.run"
	// SiteCacheWrite fires before every disk-cache entry write; torn
	// outcomes truncate the entry as a crash would.
	SiteCacheWrite = "cache.write"
	// SiteJournalAppend fires before every journal record append.
	SiteJournalAppend = "journal.append"
)

// ErrIO is the injected transient I/O failure; the engine's retry
// classifier treats anything wrapping it as retryable.
var ErrIO = errors.New("faultinject: transient I/O error")

// ErrNoSpace is the injected ENOSPC-style failure for the durability
// layers (cache and journal writes).
var ErrNoSpace = errors.New("faultinject: no space left on device")

// Outcome is one armed fault. Zero fields do nothing; a single outcome
// may combine a delay with an error or a panic (the delay is applied
// first).
type Outcome struct {
	// Err, if non-nil, is returned from the site.
	Err error
	// Panic, if non-empty, panics at the site with this message
	// (after Delay, instead of returning Err).
	Panic string
	// Delay sleeps before failing or proceeding — the "slow job" and
	// "deadline blowout" injection.
	Delay time.Duration
	// Torn, on a write site, hands the site only the first Truncate
	// bytes of its payload (Truncate 0 = a zero-length torn write).
	Torn     bool
	Truncate int
}

// Injector queues outcomes per site. The zero value is ready to use;
// a nil *Injector is the production no-op. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]Outcome
	fired map[string]uint64
}

// New returns an empty, armed-capable injector.
func New() *Injector { return &Injector{} }

// Arm queues one outcome at site; outcomes fire in FIFO order, each
// exactly once.
func (in *Injector) Arm(site string, o Outcome) { in.ArmN(site, 1, o) }

// ArmN queues n copies of the outcome at site.
func (in *Injector) ArmN(site string, n int, o Outcome) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rules == nil {
		in.rules = make(map[string][]Outcome)
	}
	for i := 0; i < n; i++ {
		in.rules[site] = append(in.rules[site], o)
	}
}

// Fired returns how many times site has consumed an armed outcome.
func (in *Injector) Fired(site string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[site]
}

// Armed returns how many outcomes remain queued at site.
func (in *Injector) Armed(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rules[site])
}

// take pops the next outcome for site, if any.
func (in *Injector) take(site string) (Outcome, bool) {
	if in == nil {
		return Outcome{}, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	q := in.rules[site]
	if len(q) == 0 {
		return Outcome{}, false
	}
	o := q[0]
	in.rules[site] = q[1:]
	if in.fired == nil {
		in.fired = make(map[string]uint64)
	}
	in.fired[site]++
	return o, true
}

// Fire consumes the next outcome armed at site: it sleeps the outcome's
// delay, panics if a panic is armed, and otherwise returns the armed
// error. With a nil receiver or nothing armed it returns nil
// immediately — the production path.
func (in *Injector) Fire(site string) error {
	o, ok := in.take(site)
	if !ok {
		return nil
	}
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, o.Panic))
	}
	return o.Err
}

// FireWrite is Fire for write sites carrying a payload. It returns the
// payload the site should actually write (truncated when a torn
// outcome is armed) and the error the site should observe. With no
// outcome armed it returns the payload untouched and a nil error.
func (in *Injector) FireWrite(site string, data []byte) ([]byte, error) {
	o, ok := in.take(site)
	if !ok {
		return data, nil
	}
	if o.Delay > 0 {
		time.Sleep(o.Delay)
	}
	if o.Panic != "" {
		panic(fmt.Sprintf("faultinject: %s: %s", site, o.Panic))
	}
	if o.Torn && o.Truncate < len(data) {
		return data[:max(o.Truncate, 0)], o.Err
	}
	return data, o.Err
}
