package config

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultMatchesTable2(t *testing.T) {
	c := Default()
	if c.IssueWidth != 6 {
		t.Errorf("issue width %d, want 6", c.IssueWidth)
	}
	if c.ActiveList != 128 {
		t.Errorf("active list %d, want 128", c.ActiveList)
	}
	if c.LSQEntries != 64 {
		t.Errorf("LSQ %d, want 64", c.LSQEntries)
	}
	if c.IQEntries != 32 {
		t.Errorf("issue queue %d, want 32", c.IQEntries)
	}
	if c.L1SizeKB != 64 || c.L1Assoc != 4 || c.L1Latency != 2 || c.L1Ports != 2 {
		t.Errorf("L1 config %d/%d/%d/%d", c.L1SizeKB, c.L1Assoc, c.L1Latency, c.L1Ports)
	}
	if c.L2SizeKB != 2048 || c.L2Assoc != 8 {
		t.Errorf("L2 config %d/%d", c.L2SizeKB, c.L2Assoc)
	}
	if c.MemLatency != 250 {
		t.Errorf("memory latency %d, want 250", c.MemLatency)
	}
	if c.HeatsinkThicknessMM != 6.9 {
		t.Errorf("heatsink %v, want 6.9", c.HeatsinkThicknessMM)
	}
	if c.ConvectionRes != 0.8 {
		t.Errorf("convection %v, want 0.8", c.ConvectionRes)
	}
	if c.CoolingTimeMS != 10 {
		t.Errorf("cooling time %v, want 10", c.CoolingTimeMS)
	}
	if c.MaxTempK != 358 {
		t.Errorf("max temp %v, want 358", c.MaxTempK)
	}
	if c.FrequencyGHz != 4.2 || c.VddVolts != 1.2 || c.TechnologyNM != 90 {
		t.Errorf("clock/volt/tech %v/%v/%v", c.FrequencyGHz, c.VddVolts, c.TechnologyNM)
	}
	if c.IntALUs != 6 || c.FPAdders != 4 {
		t.Errorf("ALUs %d/%d, want 6/4", c.IntALUs, c.FPAdders)
	}
	if c.ToggleThresholdK != 0.5 {
		t.Errorf("toggle threshold %v, want 0.5", c.ToggleThresholdK)
	}
}

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"issue width", func(c *Config) { c.IssueWidth = 0 }},
		{"odd IQ", func(c *Config) { c.IQEntries = 31 }},
		{"no ALUs", func(c *Config) { c.IntALUs = 0 }},
		{"indivisible RF", func(c *Config) { c.IntALUs = 5 }},
		{"no active list", func(c *Config) { c.ActiveList = 0 }},
		{"few phys regs", func(c *Config) { c.PhysIntRegs = 10 }},
		{"max below ambient", func(c *Config) { c.MaxTempK = 300 }},
		{"bad accel", func(c *Config) { c.ThermalAccel = 0 }},
		{"bad sensor", func(c *Config) { c.SensorIntervalCycles = 0 }},
		{"no L1 ports", func(c *Config) { c.L1Ports = 0 }},
		{"bad thermal solver", func(c *Config) { c.ThermalSolver = ThermalSolver(9) }},
	}
	for _, m := range mods {
		c := Default()
		m.mod(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", m.name)
		}
	}
}

func TestCycleSeconds(t *testing.T) {
	c := Default()
	want := 1 / 4.2e9
	if got := c.CycleSeconds(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("CycleSeconds = %v, want %v", got, want)
	}
}

func TestThermalAcceleration(t *testing.T) {
	c := Default()
	if got, want := c.ThermalSecondsPerCycle(), c.CycleSeconds()*c.ThermalAccel; got != want {
		t.Fatalf("ThermalSecondsPerCycle = %v, want %v", got, want)
	}
	// Cooling stall must cover 10ms of thermal time.
	cool := float64(c.CoolingCycles()) * c.ThermalSecondsPerCycle()
	if math.Abs(cool-10e-3) > 1e-5 {
		t.Fatalf("cooling stall covers %v s of thermal time, want 10ms", cool)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := Default()
	b := a.Clone()
	b.IssueWidth = 99
	b.Techniques.IQ = IQToggle
	if a.IssueWidth == 99 || a.Techniques.IQ == IQToggle {
		t.Fatal("Clone shares state with original")
	}
}

func TestStringers(t *testing.T) {
	if IQToggle.String() != "activity-toggling" || IQBase.String() != "base" {
		t.Error("IQPolicy strings wrong")
	}
	if !strings.Contains(ALUFineGrain.String(), "fine-grain") {
		t.Error("ALUPolicy string wrong")
	}
	if MapPriority.String() != "priority" || MapBalanced.String() != "balanced" {
		t.Error("RFMapping strings wrong")
	}
	if !strings.Contains(PlanALUConstrained.String(), "alu") {
		t.Error("FloorplanVariant string wrong")
	}
	if !strings.Contains(WriteMargin.String(), "margin") || !strings.Contains(WriteCopyOnCool.String(), "cool") {
		t.Error("RFWritePolicy strings wrong")
	}
	if ThermalAuto.String() != "auto" || ThermalDense.String() != "dense" || ThermalSparse.String() != "sparse" {
		t.Error("ThermalSolver strings wrong")
	}
	// Unknown values must not panic and must render something.
	for _, s := range []string{IQPolicy(9).String(), ALUPolicy(9).String(), RFMapping(9).String(), FloorplanVariant(9).String(), RFWritePolicy(9).String(), ThermalSolver(9).String()} {
		if s == "" {
			t.Error("empty string for out-of-range enum")
		}
	}
	tech := Techniques{IQ: IQToggle, ALU: ALUFineGrain}
	if s := tech.String(); !strings.Contains(s, "toggling") || !strings.Contains(s, "fine-grain") {
		t.Errorf("Techniques string %q", s)
	}
}

func TestTemporalPolicyStrings(t *testing.T) {
	if TemporalStopGo.String() != "stop-go" || TemporalDVFS.String() != "dvfs" {
		t.Fatal("temporal policy strings wrong")
	}
	if TemporalPolicy(9).String() == "" {
		t.Fatal("unknown temporal policy renders empty")
	}
}

func TestDVFSValidation(t *testing.T) {
	c := Default()
	c.Techniques.Temporal = TemporalDVFS
	if err := c.Validate(); err != nil {
		t.Fatalf("default DVFS invalid: %v", err)
	}
	c.DVFSDivider = 1
	if err := c.Validate(); err == nil {
		t.Fatal("divider 1 accepted")
	}
	c.DVFSDivider = 2
	c.DVFSVoltageScale = 1.5
	if err := c.Validate(); err == nil {
		t.Fatal("voltage scale > 1 accepted")
	}
	// Invalid DVFS parameters are fine while stop-go is selected.
	c.Techniques.Temporal = TemporalStopGo
	if err := c.Validate(); err != nil {
		t.Fatalf("stop-go should ignore DVFS params: %v", err)
	}
}

func TestTechniquesStringIncludesNonDefaultTemporal(t *testing.T) {
	tech := Techniques{Temporal: TemporalDVFS}
	if !strings.Contains(tech.String(), "temporal=dvfs") {
		t.Fatalf("techniques string %q missing temporal", tech.String())
	}
	if strings.Contains(Techniques{}.String(), "temporal") {
		t.Fatal("default temporal should be elided")
	}
}

// TestDefaultReturnsIndependentValues locks in the contract the parallel
// matrix runner depends on: every Default call yields a fresh Config, so
// one cell's technique/plan mutations can never leak into another's.
func TestDefaultReturnsIndependentValues(t *testing.T) {
	a, b := Default(), Default()
	if a == b {
		t.Fatal("Default returned the same pointer twice")
	}
	a.Plan = PlanRFConstrained
	a.Techniques.IQ = IQToggle
	a.IQEntries = 64
	if b.Plan != PlanIQConstrained || b.Techniques.IQ != IQBase || b.IQEntries != 32 {
		t.Fatal("mutating one Default leaked into another")
	}
	if c := Default(); c.Plan != PlanIQConstrained || c.IQEntries != 32 {
		t.Fatal("mutating a Default leaked into a later call")
	}
}
