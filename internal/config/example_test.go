package config_test

import (
	"fmt"

	"repro/internal/config"
)

// ExampleDefault shows the Table 2 machine and how technique selections
// compose onto it.
func ExampleDefault() {
	cfg := config.Default()
	fmt.Printf("%d-wide, %d-entry active list, %d-entry issue queues\n",
		cfg.IssueWidth, cfg.ActiveList, cfg.IQEntries)
	fmt.Printf("threshold %.0f K, cooling %.0f ms\n", cfg.MaxTempK, cfg.CoolingTimeMS)

	cfg.Techniques = config.Techniques{
		IQ:        config.IQToggle,
		ALU:       config.ALUFineGrain,
		RFMap:     config.MapPriority,
		RFTurnoff: true,
	}
	fmt.Println(cfg.Techniques)
	// Output:
	// 6-wide, 128-entry active list, 32-entry issue queues
	// threshold 358 K, cooling 10 ms
	// iq=activity-toggling alu=fine-grain-turnoff rfmap=priority rfturnoff=true
}
