package config

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestTechniquesJSONRoundTrip marshals every enum combination the
// experiments use and checks the decoded value is identical and the
// encoding is stable (same value → same bytes).
func TestTechniquesJSONRoundTrip(t *testing.T) {
	cases := []Techniques{
		{},
		{IQ: IQToggle},
		{IQ: IQNonCompacting, ALU: ALURoundRobin},
		{ALU: ALUFineGrain, RFMap: MapBalanced, RFTurnoff: true},
		{RFMap: MapCompletelyBalanced, RFWrites: WriteCopyOnCool},
		{IQ: IQToggle, ALU: ALUFineGrain, RFMap: MapPriority, RFTurnoff: true, Temporal: TemporalDVFS},
	}
	for _, tc := range cases {
		b1, err := json.Marshal(tc)
		if err != nil {
			t.Fatalf("marshal %+v: %v", tc, err)
		}
		var got Techniques
		if err := json.Unmarshal(b1, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b1, err)
		}
		if got != tc {
			t.Errorf("round trip %+v -> %s -> %+v", tc, b1, got)
		}
		b2, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("unstable encoding: %s != %s", b1, b2)
		}
	}
}

// TestTechniquesJSONNames pins the wire format: enums are readable
// strings, keys are snake_case, and the field order is the declaration
// order (the canonical form the service job keys hash).
func TestTechniquesJSONNames(t *testing.T) {
	b, err := json.Marshal(Techniques{IQ: IQToggle, ALU: ALURoundRobin, RFMap: MapBalanced, RFTurnoff: true})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"iq":"activity-toggling","alu":"round-robin","rf_map":"balanced","rf_turnoff":true,"rf_writes":"margin-writes","temporal":"stop-go"}`
	if string(b) != want {
		t.Errorf("techniques JSON =\n %s\nwant\n %s", b, want)
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Plan = PlanRFConstrained
	cfg.Techniques = Techniques{IQ: IQToggle, RFTurnoff: true, Temporal: TemporalDVFS}
	cfg.SensorNoiseK = 1.5

	b1, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got Config
	if err := json.Unmarshal(b1, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, cfg) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *cfg)
	}
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("unstable encoding:\n %s\n %s", b1, b2)
	}
	if !strings.Contains(string(b1), `"Plan":"register-file-constrained"`) {
		t.Errorf("plan did not marshal as its name: %s", b1)
	}
}

// TestEnumUnmarshalErrors checks that bad names fail with an error
// naming the valid set instead of silently zeroing the field.
func TestEnumUnmarshalErrors(t *testing.T) {
	cases := []struct {
		dst  any
		text string
	}{
		{new(IQPolicy), "toggling"},
		{new(ALUPolicy), "fgt"},
		{new(RFMapping), "complete"},
		{new(RFWritePolicy), "margins"},
		{new(TemporalPolicy), "stopgo"},
		{new(FloorplanVariant), "iq"},
		{new(ThermalSolver), "csr"},
		{new(Scheduler), "coolest"},
	}
	for _, c := range cases {
		err := json.Unmarshal([]byte(`"`+c.text+`"`), c.dst)
		if err == nil {
			t.Errorf("%T accepted %q", c.dst, c.text)
			continue
		}
		if !strings.Contains(err.Error(), "valid:") {
			t.Errorf("%T error %q does not list valid names", c.dst, err)
		}
	}
}

// TestEnumRoundTripAll round-trips every defined enum value through its
// text form.
func TestEnumRoundTripAll(t *testing.T) {
	for _, v := range []IQPolicy{IQBase, IQToggle, IQNonCompacting} {
		var got IQPolicy
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("IQPolicy %v: %v %v", v, got, err)
		}
	}
	for _, v := range []ALUPolicy{ALUBase, ALUFineGrain, ALURoundRobin} {
		var got ALUPolicy
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("ALUPolicy %v: %v %v", v, got, err)
		}
	}
	for _, v := range []RFMapping{MapPriority, MapBalanced, MapCompletelyBalanced} {
		var got RFMapping
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("RFMapping %v: %v %v", v, got, err)
		}
	}
	for _, v := range []RFWritePolicy{WriteMargin, WriteCopyOnCool} {
		var got RFWritePolicy
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("RFWritePolicy %v: %v %v", v, got, err)
		}
	}
	for _, v := range []TemporalPolicy{TemporalStopGo, TemporalDVFS} {
		var got TemporalPolicy
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("TemporalPolicy %v: %v %v", v, got, err)
		}
	}
	for _, v := range []FloorplanVariant{PlanIQConstrained, PlanALUConstrained, PlanRFConstrained} {
		var got FloorplanVariant
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("FloorplanVariant %v: %v %v", v, got, err)
		}
	}
	for _, v := range []ThermalSolver{ThermalAuto, ThermalDense, ThermalSparse} {
		var got ThermalSolver
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("ThermalSolver %v: %v %v", v, got, err)
		}
	}
	for _, v := range Schedulers() {
		var got Scheduler
		b, _ := v.MarshalText()
		if err := got.UnmarshalText(b); err != nil || got != v {
			t.Errorf("Scheduler %v: %v %v", v, got, err)
		}
	}
}
