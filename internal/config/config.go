// Package config holds the processor, thermal-package, and technique
// parameters for the simulated machine. The defaults reproduce Table 2 of
// the paper ("Processor Parameters") and the dynamic-thermal-management
// constants given in its §3 (sensor interval, toggle threshold, cooling
// time, maximum temperature).
package config

import "fmt"

// IQPolicy selects the issue-queue power-density technique (§2.1).
type IQPolicy uint8

const (
	// IQBase is the conventional compacting queue: head fixed at the
	// bottom, static priority, no thermal response short of a global stall.
	IQBase IQPolicy = iota
	// IQToggle is the paper's activity toggling: when the temperature
	// difference between the queue halves exceeds ToggleThresholdK, the
	// head/tail configuration toggles between bottom-of-queue and
	// middle-of-queue modes.
	IQToggle
	// IQNonCompacting replaces the compacting queue with the
	// related-work non-compacting organization (Buyuktosunoglu et al.,
	// cited by the paper): no compaction wires, entries stay in place.
	// Used as an ablation of the paper's premise.
	IQNonCompacting
)

func (p IQPolicy) String() string {
	switch p {
	case IQBase:
		return "base"
	case IQToggle:
		return "activity-toggling"
	case IQNonCompacting:
		return "non-compacting"
	}
	return fmt.Sprintf("IQPolicy(%d)", uint8(p))
}

// ALUPolicy selects the ALU power-density technique (§2.2).
type ALUPolicy uint8

const (
	// ALUBase stalls the whole processor when any ALU overheats.
	ALUBase ALUPolicy = iota
	// ALUFineGrain marks an overheated ALU busy so select steers work to
	// the remaining cool ALUs; the core stalls only if every ALU of a
	// class is hot.
	ALUFineGrain
	// ALURoundRobin is the paper's idealized upper bound: select priority
	// rotates every cycle, spreading accesses evenly. It also permits
	// fine-grain turnoff.
	ALURoundRobin
)

func (p ALUPolicy) String() string {
	switch p {
	case ALUBase:
		return "base"
	case ALUFineGrain:
		return "fine-grain-turnoff"
	case ALURoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("ALUPolicy(%d)", uint8(p))
}

// RFMapping selects how ALU read ports are wired to register-file copies
// (Figure 4 of the paper).
type RFMapping uint8

const (
	// MapPriority wires all high-priority ALUs to copy 0 and all
	// low-priority ALUs to copy 1.
	MapPriority RFMapping = iota
	// MapBalanced (the paper's "simplified balanced mapping") interleaves
	// high- and low-priority ALUs across the copies.
	MapBalanced
	// MapCompletelyBalanced gives every ALU one read port on each copy.
	// The paper rejects it for wiring reasons; we keep it as an ablation.
	MapCompletelyBalanced
)

func (m RFMapping) String() string {
	switch m {
	case MapPriority:
		return "priority"
	case MapBalanced:
		return "balanced"
	case MapCompletelyBalanced:
		return "completely-balanced"
	}
	return fmt.Sprintf("RFMapping(%d)", uint8(m))
}

// RFWritePolicy selects how writes are handled while a register-file copy
// cools (§2.3, last paragraph).
type RFWritePolicy uint8

const (
	// WriteMargin turns a copy off at MaxTempK-RFWriteMarginK so that
	// writes (one third of accesses) may continue while the copy cools.
	WriteMargin RFWritePolicy = iota
	// WriteCopyOnCool blocks writes to the overheated copy and copies the
	// register values back in when cooling ends, charging the copy cost.
	WriteCopyOnCool
)

func (p RFWritePolicy) String() string {
	switch p {
	case WriteMargin:
		return "margin-writes"
	case WriteCopyOnCool:
		return "copy-on-cool"
	}
	return fmt.Sprintf("RFWritePolicy(%d)", uint8(p))
}

// TemporalPolicy selects the temporal fallback used when the spatial
// techniques cannot contain an overheat (§1 and §5 of the paper discuss
// both families).
type TemporalPolicy uint8

const (
	// TemporalStopGo halts the processor for the thermal cooling time,
	// like the Pentium 4 mechanism the paper compares against.
	TemporalStopGo TemporalPolicy = iota
	// TemporalDVFS drops to a divided clock (and scaled voltage) until
	// the hot resource recovers below the hysteresis point — the
	// fine-grain temporal technique of Skadron et al. that the paper
	// cites as the main temporal alternative.
	TemporalDVFS
)

func (p TemporalPolicy) String() string {
	switch p {
	case TemporalStopGo:
		return "stop-go"
	case TemporalDVFS:
		return "dvfs"
	}
	return fmt.Sprintf("TemporalPolicy(%d)", uint8(p))
}

// ThermalSolver selects the linear-algebra backend for the RC thermal
// network (internal/thermal).
type ThermalSolver uint8

const (
	// ThermalAuto picks the dense solver for small networks (at most
	// thermal.DenseMaxNodes nodes, which covers every paper floorplan) and
	// the sparse solver above that. This is the default.
	ThermalAuto ThermalSolver = iota
	// ThermalDense forces the dense Gaussian solver and fixed-buffer
	// integrator — the executable reference. Building a model beyond the
	// dense node cap fails with an error.
	ThermalDense
	// ThermalSparse forces the CSR + conjugate-gradient solver, which has
	// no node cap.
	ThermalSparse
)

func (s ThermalSolver) String() string {
	switch s {
	case ThermalAuto:
		return "auto"
	case ThermalDense:
		return "dense"
	case ThermalSparse:
		return "sparse"
	}
	return fmt.Sprintf("ThermalSolver(%d)", uint8(s))
}

// Scheduler selects the multicore task-to-core scheduling policy
// (internal/multicore). The single-core paper pipeline never consults it.
type Scheduler uint8

const (
	// SchedRoundRobin assigns tasks to idle cores in rotating index order,
	// blind to temperature. This is the default and the paper-agnostic
	// baseline the thermal-aware policies are compared against.
	SchedRoundRobin Scheduler = iota
	// SchedRandom assigns tasks to a uniformly random idle core, drawn
	// from the scheduler's own deterministic rng stream.
	SchedRandom
	// SchedCoolestFirst assigns the next task to the idle core whose
	// hottest block is coldest (Hung et al.'s thermal-aware allocation).
	SchedCoolestFirst
	// SchedThresholdMigrate is coolest-first assignment plus migration: a
	// task moves off a core whose peak block temperature enters the band
	// below the critical threshold, onto a sufficiently cooler idle core
	// (Chrobak et al.'s cooling-aware shape).
	SchedThresholdMigrate
)

func (s Scheduler) String() string {
	switch s {
	case SchedRoundRobin:
		return "roundrobin"
	case SchedRandom:
		return "random"
	case SchedCoolestFirst:
		return "coolest-first"
	case SchedThresholdMigrate:
		return "threshold-migrate"
	}
	return fmt.Sprintf("Scheduler(%d)", uint8(s))
}

// Schedulers lists every scheduling policy in definition order.
func Schedulers() []Scheduler {
	return []Scheduler{SchedRoundRobin, SchedRandom, SchedCoolestFirst, SchedThresholdMigrate}
}

// FloorplanVariant selects which back-end resource the floorplan makes the
// thermal bottleneck (Figure 5 of the paper).
type FloorplanVariant uint8

const (
	// PlanIQConstrained shrinks the issue queues so they run hottest.
	PlanIQConstrained FloorplanVariant = iota
	// PlanALUConstrained shrinks the integer ALUs so they run hottest.
	PlanALUConstrained
	// PlanRFConstrained shrinks the integer register-file copies so they
	// run hottest.
	PlanRFConstrained
)

func (v FloorplanVariant) String() string {
	switch v {
	case PlanIQConstrained:
		return "issue-queue-constrained"
	case PlanALUConstrained:
		return "alu-constrained"
	case PlanRFConstrained:
		return "register-file-constrained"
	}
	return fmt.Sprintf("FloorplanVariant(%d)", uint8(v))
}

// Techniques bundles the power-density technique selections for one run.
// The zero value is the conventional baseline everywhere.
type Techniques struct {
	IQ        IQPolicy       `json:"iq"`
	ALU       ALUPolicy      `json:"alu"`
	RFMap     RFMapping      `json:"rf_map"`
	RFTurnoff bool           `json:"rf_turnoff"` // fine-grain turnoff of register-file copies
	RFWrites  RFWritePolicy  `json:"rf_writes"`
	Temporal  TemporalPolicy `json:"temporal"` // fallback when spatial techniques run out
}

func (t Techniques) String() string {
	s := fmt.Sprintf("iq=%v alu=%v rfmap=%v rfturnoff=%v", t.IQ, t.ALU, t.RFMap, t.RFTurnoff)
	if t.Temporal != TemporalStopGo {
		s += fmt.Sprintf(" temporal=%v", t.Temporal)
	}
	return s
}

// Config is the full machine configuration. Construct with Default and
// modify fields before wiring up a simulator; the configuration is treated
// as immutable once a simulation starts.
type Config struct {
	// Pipeline parameters (Table 2).
	IssueWidth  int // out-of-order issue width (6)
	FetchWidth  int // fetch/dispatch width per cycle
	CommitWidth int // commit width per cycle
	ActiveList  int // reorder-buffer entries (128)
	LSQEntries  int // load/store queue entries (64)
	IQEntries   int // entries in EACH of the int and FP issue queues (32)
	IntALUs     int // integer execution units (6), incl. ld/st and branch
	FPAdders    int // floating-point adders (4)
	FPMuls      int // floating-point multipliers (1)
	IntRFCopies int // integer register-file copies (2)
	PhysIntRegs int // physical integer registers
	PhysFPRegs  int // physical floating-point registers

	// Operation latencies in cycles.
	IntALULatency int
	IntMulLatency int
	FPAddLatency  int
	FPMulLatency  int
	BranchPenalty int // cycles lost on a mispredict redirect

	// Issue-queue residency: an issued entry stays (marked invalid) this
	// many cycles before it may be compacted away, covering load replays
	// as described in §2.1.
	IssueDrainCycles int

	// Memory hierarchy (Table 2).
	L1SizeKB   int // 64 KB
	L1Assoc    int // 4-way
	L1LineB    int // line size
	L1Latency  int // 2-cycle
	L1Ports    int // 2 ports
	L2SizeKB   int // 2 MB unified
	L2Assoc    int // 8-way
	L2Latency  int
	MemLatency int // 250 cycles

	// Clock and package (Table 2).
	FrequencyGHz        float64 // 4.2
	VddVolts            float64 // 1.2
	TechnologyNM        int     // 90
	HeatsinkThicknessMM float64 // 6.9
	ConvectionRes       float64 // 0.8 K/W
	AmbientK            float64 // ambient air temperature
	MaxTempK            float64 // 358 K thermal threshold
	CoolingTimeMS       float64 // 10 ms stall when a resource overheats

	// Dynamic thermal management (§3).
	// SensorIntervalCycles is the temperature sampling period. The paper
	// samples every 100 k cycles (~24 µs at 4.2 GHz); under the thermal
	// acceleration one simulated cycle covers ThermalAccel cycles of
	// thermal time, so the default of 10 k keeps the sampled thermal
	// period (~0.3 ms) well below the block time constants, as §3
	// requires.
	SensorIntervalCycles int
	ToggleThresholdK     float64 // issue-queue half imbalance that triggers a toggle
	TurnoffHysteresisK   float64 // a turned-off unit resumes below MaxTempK-this
	RFWriteMarginK       float64 // RF turnoff threshold margin for WriteMargin policy

	// DVFS parameters (TemporalDVFS): the clock divider applied while
	// hot, and the voltage scale factor (dynamic energy scales with V²).
	DVFSDivider      int
	DVFSVoltageScale float64

	// SensorNoiseK adds deterministic pseudo-random measurement error of
	// this amplitude (uniform ±SensorNoiseK) to every temperature sensor
	// reading the manager sees. The paper assumes ideal sensors; real
	// on-chip sensors (e.g. POWER5's 24) have ~1-2 K error, and this knob
	// quantifies the techniques' robustness to it. Zero disables noise.
	SensorNoiseK float64

	// ThermalSolver selects the thermal network's linear-algebra backend.
	// The zero value (ThermalAuto) keeps the paper's floorplans on the
	// dense reference solver and switches large synthetic floorplans
	// (meshes, multi-core plans) to the sparse solver automatically.
	ThermalSolver ThermalSolver

	// ThermalAccel compresses the thermal time axis: each simulated cycle
	// advances thermal time by ThermalAccel cycles. The paper runs 500 M
	// instructions (~120 ms) per benchmark; acceleration lets runs of a
	// few million cycles exhibit the same heating/cooling dynamics. The
	// RC network is linear, so this is a pure rescaling (see DESIGN.md).
	ThermalAccel float64

	Plan       FloorplanVariant
	Techniques Techniques
}

// Default returns the paper's Table 2 configuration with the conventional
// (baseline) techniques selected.
func Default() *Config {
	return &Config{
		IssueWidth:  6,
		FetchWidth:  8,
		CommitWidth: 8,
		ActiveList:  128,
		LSQEntries:  64,
		IQEntries:   32,
		IntALUs:     6,
		FPAdders:    4,
		FPMuls:      1,
		IntRFCopies: 2,
		PhysIntRegs: 160,
		PhysFPRegs:  160,

		IntALULatency: 1,
		IntMulLatency: 3,
		FPAddLatency:  2,
		FPMulLatency:  4,
		BranchPenalty: 8,

		IssueDrainCycles: 2,

		L1SizeKB:   64,
		L1Assoc:    4,
		L1LineB:    64,
		L1Latency:  2,
		L1Ports:    2,
		L2SizeKB:   2048,
		L2Assoc:    8,
		L2Latency:  12,
		MemLatency: 250,

		FrequencyGHz:        4.2,
		VddVolts:            1.2,
		TechnologyNM:        90,
		HeatsinkThicknessMM: 6.9,
		ConvectionRes:       0.8,
		AmbientK:            318.0, // 45 C ambient inside the case
		MaxTempK:            358.0,
		CoolingTimeMS:       10.0,

		DVFSDivider:      2,
		DVFSVoltageScale: 0.85,

		SensorIntervalCycles: 10_000,
		ToggleThresholdK:     0.5,
		TurnoffHysteresisK:   1.0,
		RFWriteMarginK:       0.5,

		ThermalAccel: 128.0,

		Plan: PlanIQConstrained,
	}
}

// CycleSeconds returns the wall-clock duration of one cycle.
func (c *Config) CycleSeconds() float64 {
	return 1 / (c.FrequencyGHz * 1e9)
}

// ThermalSecondsPerCycle returns the thermal-time advance per simulated
// cycle, including the acceleration factor.
func (c *Config) ThermalSecondsPerCycle() float64 {
	return c.CycleSeconds() * c.ThermalAccel
}

// CoolingCycles returns the length of a global cooling stall in simulated
// cycles. The paper's 10 ms stall is divided by the thermal acceleration so
// that the stall covers the same amount of *thermal* time as in the paper.
func (c *Config) CoolingCycles() int {
	return int(c.CoolingTimeMS * 1e-3 / c.ThermalSecondsPerCycle())
}

// Validate reports the first configuration inconsistency found, or nil.
func (c *Config) Validate() error {
	switch {
	case c.IssueWidth <= 0:
		return fmt.Errorf("config: issue width %d", c.IssueWidth)
	case c.IQEntries <= 0 || c.IQEntries%2 != 0:
		return fmt.Errorf("config: issue queue entries %d must be positive and even (two halves)", c.IQEntries)
	case c.IntALUs <= 0:
		return fmt.Errorf("config: %d integer ALUs", c.IntALUs)
	case c.IntRFCopies <= 0 || c.IntALUs%c.IntRFCopies != 0:
		return fmt.Errorf("config: %d ALUs not divisible across %d register-file copies", c.IntALUs, c.IntRFCopies)
	case c.ActiveList <= 0 || c.LSQEntries <= 0:
		return fmt.Errorf("config: active list %d / LSQ %d", c.ActiveList, c.LSQEntries)
	case c.PhysIntRegs < 2*c.ActiveList/2+32:
		return fmt.Errorf("config: %d physical int registers too few for %d in flight", c.PhysIntRegs, c.ActiveList)
	case c.MaxTempK <= c.AmbientK:
		return fmt.Errorf("config: max temp %.1fK not above ambient %.1fK", c.MaxTempK, c.AmbientK)
	case c.ThermalAccel <= 0:
		return fmt.Errorf("config: thermal acceleration %v", c.ThermalAccel)
	case c.SensorIntervalCycles <= 0:
		return fmt.Errorf("config: sensor interval %d", c.SensorIntervalCycles)
	case c.L1Ports <= 0:
		return fmt.Errorf("config: %d L1 ports", c.L1Ports)
	case c.Techniques.Temporal == TemporalDVFS && (c.DVFSDivider < 2 || c.DVFSVoltageScale <= 0 || c.DVFSVoltageScale > 1):
		return fmt.Errorf("config: DVFS divider %d / voltage scale %v", c.DVFSDivider, c.DVFSVoltageScale)
	case c.ThermalSolver > ThermalSparse:
		return fmt.Errorf("config: unknown thermal solver %v", c.ThermalSolver)
	}
	return nil
}

// Clone returns a deep copy of the configuration.
func (c *Config) Clone() *Config {
	dup := *c
	return &dup
}
