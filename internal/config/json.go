// JSON/text serialization for the enum types and technique bundles.
//
// Every enum marshals as its String() name (encoding.TextMarshaler), so
// JSON-encoded configurations are readable, stable across enum-value
// reordering, and round-trip exactly. Struct fields marshal in
// declaration order (encoding/json guarantees that), which makes
// json.Marshal of Config and Techniques a canonical form: the same
// value always produces the same bytes. internal/service relies on that
// to derive content-addressed job keys.
package config

import "fmt"

// parseEnum maps a text name back to its enum value, with an error that
// lists the valid names in a stable order.
func parseEnum[T ~uint8](kind, s string, names []string, values []T) (T, error) {
	for i, n := range names {
		if s == n {
			return values[i], nil
		}
	}
	var zero T
	return zero, fmt.Errorf("config: unknown %s %q (valid: %v)", kind, s, names)
}

func (p IQPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

func (p *IQPolicy) UnmarshalText(b []byte) error {
	v, err := parseEnum("issue-queue policy", string(b),
		[]string{"base", "activity-toggling", "non-compacting"},
		[]IQPolicy{IQBase, IQToggle, IQNonCompacting})
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p ALUPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

func (p *ALUPolicy) UnmarshalText(b []byte) error {
	v, err := parseEnum("ALU policy", string(b),
		[]string{"base", "fine-grain-turnoff", "round-robin"},
		[]ALUPolicy{ALUBase, ALUFineGrain, ALURoundRobin})
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (m RFMapping) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

func (m *RFMapping) UnmarshalText(b []byte) error {
	v, err := parseEnum("register-file mapping", string(b),
		[]string{"priority", "balanced", "completely-balanced"},
		[]RFMapping{MapPriority, MapBalanced, MapCompletelyBalanced})
	if err != nil {
		return err
	}
	*m = v
	return nil
}

func (p RFWritePolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

func (p *RFWritePolicy) UnmarshalText(b []byte) error {
	v, err := parseEnum("register-file write policy", string(b),
		[]string{"margin-writes", "copy-on-cool"},
		[]RFWritePolicy{WriteMargin, WriteCopyOnCool})
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (p TemporalPolicy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

func (p *TemporalPolicy) UnmarshalText(b []byte) error {
	v, err := parseEnum("temporal policy", string(b),
		[]string{"stop-go", "dvfs"},
		[]TemporalPolicy{TemporalStopGo, TemporalDVFS})
	if err != nil {
		return err
	}
	*p = v
	return nil
}

func (s ThermalSolver) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

func (s *ThermalSolver) UnmarshalText(b []byte) error {
	v, err := parseEnum("thermal solver", string(b),
		[]string{"auto", "dense", "sparse"},
		[]ThermalSolver{ThermalAuto, ThermalDense, ThermalSparse})
	if err != nil {
		return err
	}
	*s = v
	return nil
}

func (s Scheduler) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

func (s *Scheduler) UnmarshalText(b []byte) error {
	v, err := parseEnum("scheduler", string(b),
		[]string{"roundrobin", "random", "coolest-first", "threshold-migrate"},
		[]Scheduler{SchedRoundRobin, SchedRandom, SchedCoolestFirst, SchedThresholdMigrate})
	if err != nil {
		return err
	}
	*s = v
	return nil
}

func (v FloorplanVariant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

func (v *FloorplanVariant) UnmarshalText(b []byte) error {
	fv, err := parseEnum("floorplan variant", string(b),
		[]string{"issue-queue-constrained", "alu-constrained", "register-file-constrained"},
		[]FloorplanVariant{PlanIQConstrained, PlanALUConstrained, PlanRFConstrained})
	if err != nil {
		return err
	}
	*v = fv
	return nil
}
