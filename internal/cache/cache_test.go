package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func small() *Cache { return NewCache(1, 2, 64) } // 1KB, 2-way, 64B lines: 8 sets

func TestGeometry(t *testing.T) {
	c := small()
	if c.Sets() != 8 || c.Ways() != 2 {
		t.Fatalf("geometry %d sets x %d ways", c.Sets(), c.Ways())
	}
	big := NewCache(64, 4, 64)
	if big.Sets() != 256 {
		t.Fatalf("64KB 4-way 64B: %d sets, want 256", big.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x103f) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1040) {
		t.Fatal("next-line access hit")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := small() // 8 sets: addresses 64*8=512 apart map to same set
	const stride = 512
	a, b, d := uint64(0), uint64(stride), uint64(2*stride)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a most recent; LRU is b
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Fatal("a evicted, but b was LRU")
	}
	if c.Probe(b) {
		t.Fatal("b survived eviction")
	}
	if !c.Probe(d) {
		t.Fatal("d not filled")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := small()
	c.Access(0x0)
	acc, miss := c.Accesses, c.Misses
	if c.Probe(0x4000) {
		t.Fatal("probe hit absent line")
	}
	if c.Accesses != acc || c.Misses != miss {
		t.Fatal("probe changed statistics")
	}
	if c.Probe(0x4000) {
		t.Fatal("probe filled the line")
	}
}

func TestAssociativityFullSetHits(t *testing.T) {
	c := NewCache(1, 4, 64) // 4 sets of 4 ways
	const stride = 64 * 4
	for w := 0; w < 4; w++ {
		c.Access(uint64(w * stride))
	}
	for w := 0; w < 4; w++ {
		if !c.Access(uint64(w * stride)) {
			t.Fatalf("way %d evicted within associativity", w)
		}
	}
}

func TestMissRate(t *testing.T) {
	c := small()
	c.Access(0)
	c.Access(0)
	c.Access(0)
	c.Access(0)
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("miss rate %v, want 0.25", got)
	}
	c.Reset()
	if c.MissRate() != 0 || c.Probe(0) {
		t.Fatal("Reset incomplete")
	}
}

func TestNewCachePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache(0, 2, 64) },
		func() { NewCache(1, 2, 60) }, // non-power-of-two line
		func() { NewCache(1, 3, 64) }, // 5.33 sets
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry accepted")
				}
			}()
			f()
		}()
	}
}

func newTestHierarchy() *Hierarchy {
	return NewHierarchy(64, 4, 64, 2, 2048, 8, 12, 250)
}

func TestHierarchyLatencies(t *testing.T) {
	h := newTestHierarchy()
	lat, lvl := h.Data(0x1000)
	if lvl != LevelMem || lat != 2+12+250 {
		t.Fatalf("cold data access: %d cycles from %v", lat, lvl)
	}
	lat, lvl = h.Data(0x1000)
	if lvl != LevelL1 || lat != 2 {
		t.Fatalf("warm data access: %d cycles from %v", lat, lvl)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := newTestHierarchy()
	h.Data(0x2000) // fills L1 and L2
	// Evict 0x2000 from L1 by filling its set (4 ways, 64KB/4w/64B = 256 sets).
	stride := uint64(256 * 64)
	for w := 1; w <= 4; w++ {
		h.L1D.Access(0x2000 + uint64(w)*stride)
	}
	if h.L1D.Probe(0x2000) {
		t.Fatal("line still in L1")
	}
	lat, lvl := h.Data(0x2000)
	if lvl != LevelL2 || lat != 2+12 {
		t.Fatalf("L2 hit: %d cycles from %v", lat, lvl)
	}
}

func TestInstPathSeparateFromData(t *testing.T) {
	h := newTestHierarchy()
	h.Inst(0x3000)
	if _, lvl := h.Data(0x3000); lvl == LevelL1 {
		t.Fatal("data access hit in L1I-warmed line without L2")
	}
}

func TestWarmData(t *testing.T) {
	h := newTestHierarchy()
	h.WarmData(0x5000)
	lat, lvl := h.Data(0x5000)
	if lvl != LevelL1 || lat != 2 {
		t.Fatalf("after warmup: %d from %v", lat, lvl)
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "memory" {
		t.Fatal("level strings wrong")
	}
	if Level(9).String() == "" {
		t.Fatal("unknown level string empty")
	}
}

// Property: a working set smaller than the cache never misses after the
// first pass, regardless of access order.
func TestQuickSmallWorkingSetAlwaysHits(t *testing.T) {
	f := func(seed uint64) bool {
		c := NewCache(4, 4, 64) // 4KB
		r := rng.New(seed)
		lines := 32 // 2KB working set: half the cache
		// First pass: touch everything.
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
		// Random accesses must all hit.
		for i := 0; i < 500; i++ {
			if !c.Access(uint64(r.Intn(lines) * 64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: misses never exceed accesses and both only grow.
func TestQuickStatsMonotone(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := small()
		var prevA, prevM uint64
		for _, a := range addrs {
			c.Access(uint64(a) << 4)
			if c.Accesses < prevA || c.Misses < prevM || c.Misses > c.Accesses {
				return false
			}
			prevA, prevM = c.Accesses, c.Misses
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
