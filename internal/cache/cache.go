// Package cache implements the simulated memory hierarchy: set-associative
// L1 instruction and data caches backed by a unified L2 and a fixed-latency
// main memory (Table 2: 64 KB 4-way 2-cycle L1s, 2 MB 8-way unified L2,
// 250-cycle memory). Cache behaviour shapes the ILP that reaches the
// back-end: memory-bound workloads keep the issue queue drained and cool,
// while cache-resident workloads sustain the bursts that overheat it.
package cache

import "fmt"

// Cache is one set-associative cache level with true-LRU replacement. It
// tracks tags only (data values live in the architectural memory model).
//
// A way's tag word stores line+1, so the zero value means "invalid": the
// hit loop probes a single array instead of separate tag and valid-bit
// arrays. (The encoding conflates only the line at the very top of the
// address space, unreachable for any line size above one byte.)
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets*ways; line+1, 0 = invalid
	stamp     []uint64 // LRU timestamps
	tick      uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of sizeKB kilobytes with the given associativity
// and line size in bytes. Size, associativity and line size must yield a
// power-of-two number of sets.
func NewCache(sizeKB, assoc, lineB int) *Cache {
	if sizeKB <= 0 || assoc <= 0 || lineB <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeKB * 1024 / lineB
	sets := lines / assoc
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: %d sets not a power of two", sets))
	}
	shift := uint(0)
	for 1<<shift < lineB {
		shift++
	}
	if 1<<shift != lineB {
		panic("cache: line size not a power of two")
	}
	return &Cache{
		sets:      sets,
		ways:      assoc,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*assoc),
		stamp:     make([]uint64, sets*assoc),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Access looks up addr, fills the line on a miss (evicting the LRU way),
// and returns whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.tick++
	line := addr >> c.lineShift
	key := line + 1
	base := int(line&c.setMask) * c.ways
	set := c.tags[base : base+c.ways]
	for w := range set {
		if set[w] == key {
			c.stamp[base+w] = c.tick
			return true
		}
	}
	c.Misses++
	// Fill: pick an invalid way, else the LRU way.
	victim := base
	for w := range set {
		if set[w] == 0 {
			victim = base + w
			goto fill
		}
		if c.stamp[base+w] < c.stamp[victim] {
			victim = base + w
		}
	}
fill:
	c.tags[victim] = key
	c.stamp[victim] = c.tick
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineShift
	key := line + 1
	base := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == key {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses, or 0 before any access.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.Accesses, c.Misses, c.tick = 0, 0, 0
}

// Level identifies where an access was satisfied.
type Level uint8

// Hierarchy levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "memory"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// Hierarchy bundles the two L1s, the unified L2 and main memory latency.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	L1Latency  int
	L2Latency  int
	MemLatency int
}

// NewHierarchy builds the Table 2 memory system.
func NewHierarchy(l1KB, l1Assoc, lineB, l1Lat, l2KB, l2Assoc, l2Lat, memLat int) *Hierarchy {
	return &Hierarchy{
		L1I:        NewCache(l1KB, l1Assoc, lineB),
		L1D:        NewCache(l1KB, l1Assoc, lineB),
		L2:         NewCache(l2KB, l2Assoc, lineB),
		L1Latency:  l1Lat,
		L2Latency:  l2Lat,
		MemLatency: memLat,
	}
}

// Data performs a data access and returns its total latency in cycles and
// the level that satisfied it. Misses propagate down and fill upward
// (non-inclusive fill-on-miss).
func (h *Hierarchy) Data(addr uint64) (latency int, level Level) {
	if h.L1D.Access(addr) {
		return h.L1Latency, LevelL1
	}
	if h.L2.Access(addr) {
		return h.L1Latency + h.L2Latency, LevelL2
	}
	return h.L1Latency + h.L2Latency + h.MemLatency, LevelMem
}

// Inst performs an instruction fetch access.
func (h *Hierarchy) Inst(addr uint64) (latency int, level Level) {
	if h.L1I.Access(addr) {
		return h.L1Latency, LevelL1
	}
	if h.L2.Access(addr) {
		return h.L1Latency + h.L2Latency, LevelL2
	}
	return h.L1Latency + h.L2Latency + h.MemLatency, LevelMem
}

// WarmData touches addr in the data path without recording statistics
// anywhere but the caches themselves; used for cache warmup before
// measurement, mirroring the paper's L2 warmup during fast-forward.
func (h *Hierarchy) WarmData(addr uint64) {
	if !h.L1D.Access(addr) {
		h.L2.Access(addr)
	}
}

// Reset clears all levels.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
}
