package multicore

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/config"
)

// testParams is a short but non-trivial workload: enough tasks for every
// scheduler to make real choices, short enough for the race detector.
func testParams(parallelism int) Params {
	return Params{
		Cores:       4,
		Cycles:      1_200_000,
		Warmup:      20_000,
		Tasks:       12,
		TaskCycles:  60_000,
		Seed:        7,
		Parallelism: parallelism,
	}
}

// TestMulticoreParallelDeterminism is the determinism contract of the
// lockstep core fan-out, mirroring the experiment matrix's
// TestParallelDeterminism: a Parallelism=8 run must be bit-identical to
// the serial run in every field of the result — per-core power lands in
// disjoint slices and every reduction is serial in core order, so worker
// count must not leak into the physics.
func TestMulticoreParallelDeterminism(t *testing.T) {
	for _, sch := range config.Schedulers() {
		p1, p8 := testParams(1), testParams(8)
		p1.Scheduler, p8.Scheduler = sch, sch
		serial, err := Run(context.Background(), p1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(context.Background(), p8)
		if err != nil {
			t.Fatal(err)
		}
		a, errA := json.Marshal(serial)
		b, errB := json.Marshal(par)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if string(a) != string(b) {
			t.Errorf("%v: parallel run diverged from serial\nserial: %s\npar:    %s", sch, a, b)
		}
	}
}

// TestMulticoreSeedChangesRun: the per-core rng streams derive from
// (seed, coreID), so a different seed must produce a different run.
func TestMulticoreSeedChangesRun(t *testing.T) {
	p := testParams(0)
	r1, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = 8
	r2, err := Run(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalCommitted == r2.TotalCommitted && r1.PeakTempK == r2.PeakTempK {
		t.Fatal("changing the seed changed neither committed work nor peak temperature")
	}
}

// TestMulticoreRunInvariants checks the accounting identities of a full
// run and that the result round-trips through JSON.
func TestMulticoreRunInvariants(t *testing.T) {
	r, err := Run(context.Background(), testParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Cores != 4 || len(r.PerCore) != 4 {
		t.Fatalf("expected 4 cores, got %d (%d per-core rows)", r.Cores, len(r.PerCore))
	}
	if r.TasksCompleted != r.TasksTotal || r.HorizonHit {
		t.Fatalf("short queue should drain: %d/%d done, horizon %v",
			r.TasksCompleted, r.TasksTotal, r.HorizonHit)
	}
	if r.Cycles <= 0 || r.Cycles > testParams(0).Cycles {
		t.Fatalf("makespan %d out of range", r.Cycles)
	}
	if r.AggIPC <= 0 {
		t.Fatal("no aggregate throughput")
	}
	tasks := 0
	for _, c := range r.PerCore {
		if c.ActiveCycles+c.StallCycles+c.IdleCycles != r.Cycles {
			t.Fatalf("core %d: active %d + stall %d + idle %d != makespan %d",
				c.Core, c.ActiveCycles, c.StallCycles, c.IdleCycles, r.Cycles)
		}
		if c.Utilization < 0 || c.Utilization > 1 {
			t.Fatalf("core %d: utilization %v outside [0, 1]", c.Core, c.Utilization)
		}
		if c.AvgTempK <= 0 || c.PeakTempK < c.AvgTempK-50 || c.HottestBlock == "" {
			t.Fatalf("core %d: implausible temperatures %v/%v (%q)",
				c.Core, c.AvgTempK, c.PeakTempK, c.HottestBlock)
		}
		tasks += c.TasksRun
	}
	// Migration restarts count a task on both cores; without migration the
	// counts match the queue exactly.
	if tasks < r.TasksTotal {
		t.Fatalf("%d per-core task runs for %d queued tasks", tasks, r.TasksTotal)
	}

	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.PeakTempK != r.PeakTempK || back.TotalCommitted != r.TotalCommitted ||
		len(back.PerCore) != len(r.PerCore) {
		t.Fatal("result did not round-trip through JSON")
	}
	if r.Report() == "" {
		t.Fatal("empty report")
	}
}

// TestGridShapes: near-square tilings, strips for primes.
func TestGridShapes(t *testing.T) {
	cases := []struct{ n, rows, cols int }{
		{1, 1, 1}, {2, 1, 2}, {3, 1, 3}, {4, 2, 2}, {6, 2, 3},
		{7, 1, 7}, {8, 2, 4}, {9, 3, 3}, {12, 3, 4}, {16, 4, 4},
	}
	for _, c := range cases {
		rows, cols := Grid(c.n)
		if rows != c.rows || cols != c.cols {
			t.Errorf("Grid(%d) = %dx%d, want %dx%d", c.n, rows, cols, c.rows, c.cols)
		}
	}
}

// TestParamsValidate: the representative rejection paths.
func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Cores: 257},
		{Cores: 4, Cycles: 4_000_000, Scheduler: config.Scheduler(9)},
		{Cores: 4, Benchmarks: []string{"nonesuch"}},
		{Cores: 4, MaxTempK: 1},
	}
	for i, p := range bad {
		if err := p.Normalized().Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, p)
		}
	}
	if err := (Params{}).Normalized().Validate(); err != nil {
		t.Errorf("defaults failed validation: %v", err)
	}
}

// schedSystem builds a system without running it, then hand-sets the
// observed tile temperatures so the policy choices are test-controlled.
func schedSystem(t *testing.T, sch config.Scheduler, peaks []float64) *System {
	t.Helper()
	p := testParams(0)
	p.Scheduler = sch
	p.Cores = len(peaks)
	s, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range s.cores {
		c.lastPeak = peaks[i]
	}
	return s
}

// TestRoundRobinRotation: round-robin cycles through the idle cores in
// order, independent of temperature.
func TestRoundRobinRotation(t *testing.T) {
	s := schedSystem(t, config.SchedRoundRobin, []float64{390, 320, 320, 320})
	rr, _ := NewScheduler(config.SchedRoundRobin, 1)
	idle := []int{0, 1, 2, 3}
	want := []int{0, 1, 2, 3, 0, 1}
	for i, w := range want {
		if got := rr.Pick(s, idle); got != w {
			t.Fatalf("pick %d: got core %d, want %d", i, got, w)
		}
	}
	// With the wanted core busy, rotation takes the next idle one.
	if got := rr.Pick(s, []int{0, 3}); got != 3 {
		t.Fatalf("partial idle: got %d, want 3", got)
	}
}

// TestCoolestFirstPick: argmin of the observed tile peaks, ties to the
// lower id.
func TestCoolestFirstPick(t *testing.T) {
	s := schedSystem(t, config.SchedCoolestFirst, []float64{330, 325, 340, 325})
	cf, _ := NewScheduler(config.SchedCoolestFirst, 1)
	if got := cf.Pick(s, []int{0, 1, 2, 3}); got != 1 {
		t.Fatalf("got core %d, want coolest core 1", got)
	}
	if got := cf.Pick(s, []int{0, 2, 3}); got != 3 {
		t.Fatalf("got core %d, want 3", got)
	}
}

// TestRandomPickDeterministic: the random policy draws from its own
// seeded stream — same seed, same sequence; it must also stay in range.
func TestRandomPickDeterministic(t *testing.T) {
	s := schedSystem(t, config.SchedRandom, []float64{330, 330, 330, 330})
	a, _ := NewScheduler(config.SchedRandom, 42)
	b, _ := NewScheduler(config.SchedRandom, 42)
	idle := []int{0, 1, 2, 3}
	for i := 0; i < 32; i++ {
		pa, pb := a.Pick(s, idle), b.Pick(s, idle)
		if pa != pb {
			t.Fatalf("pick %d: %d != %d for identical seeds", i, pa, pb)
		}
		if pa < 0 || pa > 3 {
			t.Fatalf("pick %d out of range", pa)
		}
	}
}

// TestThresholdMigrateMoves: migration triggers only inside the band
// below the budget, and only toward an idle core at least the margin
// cooler; destinations are not reused within one rebalance.
func TestThresholdMigrateMoves(t *testing.T) {
	budget := DefaultMaxTempK
	s := schedSystem(t, config.SchedThresholdMigrate,
		[]float64{budget - 0.2, budget - 8, budget - 0.4, budget - 9})
	// Cores 0 and 2 are busy inside the band; 1 and 3 idle and cool.
	s.cores[0].task = &Task{}
	s.cores[2].task = &Task{}
	tm := s.sched.(Rebalancer)
	moves := tm.Rebalance(s)
	if len(moves) != 2 {
		t.Fatalf("got %d moves, want 2: %+v", len(moves), moves)
	}
	// Both sources move, each to a distinct destination, coolest first.
	if moves[0] != (Move{From: 0, To: 3}) || moves[1] != (Move{From: 2, To: 1}) {
		t.Fatalf("unexpected move set %+v", moves)
	}

	// Below the band nothing moves.
	s.cores[0].lastPeak = budget - MigrateBandK - 1
	s.cores[2].lastPeak = budget - MigrateBandK - 1
	if moves := tm.Rebalance(s); len(moves) != 0 {
		t.Fatalf("cool cores migrated: %+v", moves)
	}

	// In the band but with no destination cooler by the margin: no move.
	s.cores[0].lastPeak = budget - 0.2
	s.cores[1].lastPeak = budget - 1
	s.cores[3].lastPeak = budget - 1
	if moves := tm.Rebalance(s); len(moves) != 0 {
		t.Fatalf("migrated without thermal headroom: %+v", moves)
	}
}

// TestSchedulerNames: the policy names round-trip the config enum.
func TestSchedulerNames(t *testing.T) {
	for _, kind := range config.Schedulers() {
		sch, err := NewScheduler(kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		if sch.Name() != kind.String() {
			t.Errorf("%v: name %q", kind, sch.Name())
		}
	}
	if _, err := NewScheduler(config.Scheduler(9), 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
