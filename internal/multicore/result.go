package multicore

import (
	"fmt"
	"strings"
)

// Result summarizes one multicore scheduling run. All fields are plain
// data with stable snake_case JSON names; results round-trip through
// encoding/json for the service's content-addressed cache.
type Result struct {
	Cores     int    `json:"cores"`
	Rows      int    `json:"rows"`
	Cols      int    `json:"cols"`
	Scheduler string `json:"scheduler"`
	Seed      uint64 `json:"seed"`

	// Cycles is the wall-clock makespan: lockstep cycles until the last
	// task retired (or the horizon, if tasks were still in flight).
	Cycles    int64 `json:"cycles"`
	Intervals int   `json:"intervals"`
	// HorizonHit records that the cycle cap ended the run before the
	// queue drained.
	HorizonHit bool `json:"horizon_hit"`

	TasksCompleted int `json:"tasks_completed"`
	TasksTotal     int `json:"tasks_total"`
	Migrations     int `json:"migrations"`

	CoolingStalls uint64 `json:"cooling_stalls"`
	StallCycles   int64  `json:"stall_cycles"`

	TotalCommitted uint64 `json:"total_committed"`
	// AggIPC is the aggregate throughput: instructions committed across
	// all cores per wall-clock cycle.
	AggIPC float64 `json:"agg_ipc"`

	PeakTempK float64 `json:"peak_temp_k"`
	AvgTempK  float64 `json:"avg_temp_k"`

	PerCore []CoreResult `json:"per_core"`
}

// CoreResult is one core's slice of the run.
type CoreResult struct {
	Core          int     `json:"core"`
	TasksRun      int     `json:"tasks_run"`
	Committed     uint64  `json:"committed"`
	ActiveCycles  int64   `json:"active_cycles"`
	StallCycles   int64   `json:"stall_cycles"`
	IdleCycles    int64   `json:"idle_cycles"`
	CoolingStalls uint64  `json:"cooling_stalls"`
	Utilization   float64 `json:"utilization"`
	AvgPowerW     float64 `json:"avg_power_w"`
	AvgTempK      float64 `json:"avg_temp_k"`
	PeakTempK     float64 `json:"peak_temp_k"`
	HottestBlock  string  `json:"hottest_block"`
}

// Result snapshots the run's summary. In-flight tasks (horizon runs)
// contribute their committed instructions without being counted complete.
func (s *System) Result() *Result {
	rows, cols := Grid(len(s.cores))
	r := &Result{
		Cores:     len(s.cores),
		Rows:      rows,
		Cols:      cols,
		Scheduler: s.sched.Name(),
		Seed:      s.Params.Seed,
		Cycles:    s.cycles,
		Intervals: s.intervals,

		TasksTotal: len(s.queue),
		Migrations: s.migrations,
	}
	for _, t := range s.queue {
		if t.done {
			r.TasksCompleted++
		}
	}
	r.HorizonHit = s.cycles >= s.Params.Cycles && r.TasksCompleted < r.TasksTotal
	for _, c := range s.cores {
		committed := c.committed
		if c.machine != nil {
			committed += c.machine.Snapshot().Committed
		}
		cr := CoreResult{
			Core:          c.id,
			TasksRun:      c.tasksRun,
			Committed:     committed,
			ActiveCycles:  c.activeCycles,
			StallCycles:   c.stallCycles,
			IdleCycles:    s.cycles - c.activeCycles - c.stallCycles,
			CoolingStalls: c.coolingStallEvents,
			PeakTempK:     c.tempPeak,
			HottestBlock:  s.basePlan.Blocks[c.hotBlock].Name,
		}
		if s.cycles > 0 {
			cr.Utilization = float64(c.activeCycles) / float64(s.cycles)
		}
		if s.intervals > 0 {
			cr.AvgTempK = c.tempSum / float64(s.intervals)
		}
		if s.intervals > 0 {
			cr.AvgPowerW = c.powerSum / float64(s.intervals)
		}
		r.PerCore = append(r.PerCore, cr)
		r.TotalCommitted += committed
		r.StallCycles += c.stallCycles
		r.CoolingStalls += c.coolingStallEvents
		if cr.PeakTempK > r.PeakTempK {
			r.PeakTempK = cr.PeakTempK
		}
		r.AvgTempK += cr.AvgTempK
	}
	r.AvgTempK /= float64(len(s.cores))
	if s.cycles > 0 {
		r.AggIPC = float64(r.TotalCommitted) / float64(s.cycles)
	}
	return r
}

// Report renders the run as the fixed-width text block the experiment
// report and the service's report endpoint share.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d cores (%dx%d), scheduler %s, %d/%d tasks",
		r.Cores, r.Rows, r.Cols, r.Scheduler, r.TasksCompleted, r.TasksTotal)
	if r.HorizonHit {
		b.WriteString(" [horizon hit]")
	}
	fmt.Fprintf(&b, "\n  makespan %d cycles, aggregate IPC %.3f, %d migrations\n",
		r.Cycles, r.AggIPC, r.Migrations)
	fmt.Fprintf(&b, "  peak %.2f K, avg %.2f K, %d cooling stalls (%d stall cycles)\n",
		r.PeakTempK, r.AvgTempK, r.CoolingStalls, r.StallCycles)
	b.WriteString("  core  tasks  util   avgW    avgK    peakK  stalls  hottest\n")
	for _, c := range r.PerCore {
		fmt.Fprintf(&b, "  %4d  %5d  %4.2f  %5.2f  %6.2f  %6.2f  %6d  %s\n",
			c.Core, c.TasksRun, c.Utilization, c.AvgPowerW, c.AvgTempK, c.PeakTempK,
			c.CoolingStalls, c.HottestBlock)
	}
	return b.String()
}
