package multicore

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/rng"
)

// Scheduler decides task placement on the shared die. Pick receives the
// idle core ids in ascending order (never empty) and returns the one the
// next queued task lands on. Implementations must be deterministic given
// their construction seed: the system calls them in a fixed order, and
// the P=1 vs P=8 determinism suite holds the whole run bit-identical.
type Scheduler interface {
	Name() string
	Pick(sys *System, idle []int) int
}

// Rebalancer is implemented by policies that also migrate running tasks
// between cores. Rebalance is called once per interval after sensing;
// each Move carries a task from a busy core to an idle one (moves whose
// source went idle or whose destination got taken are skipped).
type Rebalancer interface {
	Rebalance(sys *System) []Move
}

// Move is one task migration: From must be busy, To idle.
type Move struct {
	From, To int
}

// Threshold-migrate tuning (kelvin): a task leaves its core when the
// core's peak block enters the band below the critical threshold, and
// only for an idle core at least the margin cooler — far enough that the
// move buys real thermal headroom, per Chrobak et al.'s cooling-aware
// shape.
const (
	MigrateBandK   = 1.0
	MigrateMarginK = 1.5
)

// NewScheduler builds the policy for the config enum value, seeding any
// internal randomness from the run seed.
func NewScheduler(kind config.Scheduler, seed uint64) (Scheduler, error) {
	switch kind {
	case config.SchedRoundRobin:
		return &roundRobin{}, nil
	case config.SchedRandom:
		return &randomPick{src: rng.New(seedFor(seed, -3))}, nil
	case config.SchedCoolestFirst:
		return coolestFirst{}, nil
	case config.SchedThresholdMigrate:
		return &thresholdMigrate{}, nil
	}
	return nil, fmt.Errorf("multicore: unknown scheduler %v", kind)
}

// roundRobin rotates through core ids, blind to temperature.
type roundRobin struct {
	next int
}

func (*roundRobin) Name() string { return config.SchedRoundRobin.String() }

func (r *roundRobin) Pick(sys *System, idle []int) int {
	pick := idle[0]
	for _, c := range idle {
		if c >= r.next {
			pick = c
			break
		}
	}
	r.next = (pick + 1) % sys.NumCores()
	return pick
}

// randomPick selects a uniformly random idle core from its own
// deterministic stream.
type randomPick struct {
	src *rng.Source
}

func (*randomPick) Name() string { return config.SchedRandom.String() }

func (r *randomPick) Pick(_ *System, idle []int) int {
	return idle[r.src.Intn(len(idle))]
}

// coolestFirst assigns the next task to the idle core whose hottest block
// is coldest (Hung et al.), ties to the lower id.
type coolestFirst struct{}

func (coolestFirst) Name() string { return config.SchedCoolestFirst.String() }

func (coolestFirst) Pick(sys *System, idle []int) int {
	pick := idle[0]
	for _, c := range idle[1:] {
		if sys.CorePeak(c) < sys.CorePeak(pick) {
			pick = c
		}
	}
	return pick
}

// thresholdMigrate is coolest-first assignment plus band-triggered
// migration: a task on a core whose peak has climbed into the band below
// the critical threshold moves to the coolest idle core that is at least
// MigrateMarginK cooler. Stalled tasks migrate too — resuming on a cool
// core beats waiting out the stall on a hot one.
type thresholdMigrate struct {
	coolestFirst
}

func (*thresholdMigrate) Name() string { return config.SchedThresholdMigrate.String() }

func (m *thresholdMigrate) Rebalance(sys *System) []Move {
	var moves []Move
	taken := make(map[int]bool)
	for from := 0; from < sys.NumCores(); from++ {
		if !sys.CoreBusy(from) || sys.CorePeak(from) < sys.MaxTempK()-MigrateBandK {
			continue
		}
		to, toPeak := -1, 0.0
		for c := 0; c < sys.NumCores(); c++ {
			if sys.CoreBusy(c) || taken[c] {
				continue
			}
			if p := sys.CorePeak(c); p <= sys.CorePeak(from)-MigrateMarginK && (to < 0 || p < toPeak) {
				to, toPeak = c, p
			}
		}
		if to >= 0 {
			taken[to] = true
			moves = append(moves, Move{From: from, To: to})
		}
	}
	return moves
}
