// Package multicore maps N independent core instances — each a full
// sim/pipeline stack with its own rng stream and trace profile — onto one
// shared floorplan (floorplan.Tile) and one shared thermal network,
// advanced in lockstep sensor intervals so every core's power deposits
// into the same temperature field. A pluggable task-to-core scheduler
// (see Scheduler) drains a finite queue of jobs drawn from the calibrated
// trace profiles; thermal-aware policies (coolest-first per Hung et al.,
// threshold-migrate per Chrobak et al.) are compared against
// temperature-blind baselines on peak temperature, average temperature,
// cooling stalls, and aggregate throughput.
//
// The layer above the paper: the paper balances utilization *within* one
// core's pipeline to flatten power density; this package balances work
// *across* cores against the shared thermal state. Each core keeps its
// own single-core floorplan and thermal model as a sensor mirror — the
// per-core dynamic thermal manager reads the shared field's temperatures
// through it unchanged — while only the shared tiled network is ever
// integrated.
package multicore

import (
	"context"
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// DefaultMix is the task benchmark rotation used when Params.Benchmarks
// is empty: hot cache-resident codes (~25 W) strictly alternating with
// cool memory-bound ones (~15-19 W), so the die heats asymmetrically and
// placement decisions matter. A blind rotation phase-locks the hot tasks
// onto the same tiles at the default core counts, which is exactly the
// stacking a thermal-aware policy exists to avoid.
func DefaultMix() []string {
	return []string{"eon", "mcf", "perlbmk", "art", "crafty", "swim", "gzip", "parser"}
}

// Params describes one multicore scheduling run. The zero value is not
// runnable; use Normalized to fill defaults. Parallelism is excluded from
// the JSON identity: results are bit-identical at any worker count.
type Params struct {
	Cores     int              `json:"cores"`
	Scheduler config.Scheduler `json:"scheduler"`
	// Cycles caps the lockstep wall-clock horizon; the run ends earlier
	// once every task has completed (its makespan).
	Cycles int64 `json:"cycles"`
	// Warmup is the per-task architectural warmup in instructions;
	// defaults to 100k — tasks are short jobs, not steady-state runs.
	Warmup int `json:"warmup"`
	// Tasks is the queue length; defaults to 8×Cores.
	Tasks int `json:"tasks"`
	// TaskCycles is the base per-task budget in active cycles; individual
	// task lengths vary deterministically in [0.5, 1.5)× around it.
	// Defaults to Cycles/64, which puts a task's active residence well
	// below the block-level thermal time constant (~4 ms): consecutive hot
	// tasks on one tile ratchet its temperature upward instead of washing
	// out, so the tile temperature a scheduler sees at assignment still
	// matters when the task peaks.
	TaskCycles int64 `json:"task_cycles"`
	// MaxTempK is the scenario's DTM budget (critical threshold for the
	// per-core managers and the migration band). The single-core default
	// threshold sits above any operating point the shared package allows,
	// so it would never engage here; the multicore default is sized to the
	// shared-die regime instead. Zero selects that default.
	MaxTempK float64 `json:"max_temp_k"`
	// ArrivalGap spaces task release times (cycles). Tasks are only
	// assignable once released, so at the default — 3·TaskCycles/(2·Cores),
	// about 2/3 load — cores regularly sit idle and placement is a real
	// choice among several cooling tiles, the regime the thermal-aware
	// policies are about. Set to 1 to release everything up front (a
	// saturated queue degenerates every policy to "take the one idle
	// core").
	ArrivalGap int64  `json:"arrival_gap"`
	Seed       uint64 `json:"seed"`
	// Benchmarks is the task mix, cycled in task order; empty = DefaultMix.
	Benchmarks []string                `json:"benchmarks,omitempty"`
	Plan       config.FloorplanVariant `json:"plan"`

	// Parallelism bounds the workers advancing cores within one interval;
	// <=0 means GOMAXPROCS. Not part of the run's identity.
	Parallelism int `json:"-"`
}

// DefaultMaxTempK is the default multicore DTM budget: just under the
// peaks a temperature-blind scheduler reaches at the default operating
// point, so blind placement trips cooling stalls that thermal-aware
// placement avoids.
const DefaultMaxTempK = 354.0

// Normalized returns p with defaults filled in.
func (p Params) Normalized() Params {
	if p.Cores <= 0 {
		p.Cores = 4
	}
	if p.Cycles <= 0 {
		p.Cycles = 4_000_000
	}
	if p.Warmup <= 0 {
		p.Warmup = 100_000
	}
	if p.Tasks <= 0 {
		p.Tasks = 16 * p.Cores
	}
	if p.TaskCycles <= 0 {
		p.TaskCycles = p.Cycles / 64
	}
	if p.MaxTempK <= 0 {
		p.MaxTempK = DefaultMaxTempK
	}
	if p.ArrivalGap <= 0 {
		p.ArrivalGap = 3 * p.TaskCycles / (2 * int64(p.Cores))
	}
	if len(p.Benchmarks) == 0 {
		p.Benchmarks = DefaultMix()
	}
	return p
}

// Validate checks a normalized Params.
func (p Params) Validate() error {
	switch {
	case p.Cores < 1 || p.Cores > 256:
		return fmt.Errorf("multicore: cores %d out of range [1, 256]", p.Cores)
	case p.Cycles < 1:
		return fmt.Errorf("multicore: non-positive cycle horizon %d", p.Cycles)
	case p.Tasks < 1:
		return fmt.Errorf("multicore: non-positive task count %d", p.Tasks)
	case p.TaskCycles < 1:
		return fmt.Errorf("multicore: non-positive task budget %d", p.TaskCycles)
	case p.Scheduler > config.SchedThresholdMigrate:
		return fmt.Errorf("multicore: unknown scheduler %v", p.Scheduler)
	case p.MaxTempK <= config.Default().AmbientK:
		return fmt.Errorf("multicore: DTM budget %.1f K not above ambient", p.MaxTempK)
	}
	for _, b := range p.Benchmarks {
		if _, err := trace.ByName(b); err != nil {
			return fmt.Errorf("multicore: %w", err)
		}
	}
	return nil
}

// Grid returns the near-square rows×cols tiling for n cores: the largest
// divisor pair with rows ≤ cols (a 1×n strip when n is prime).
func Grid(n int) (rows, cols int) {
	rows = 1
	for r := 2; r*r <= n; r++ {
		if n%r == 0 {
			rows = r
		}
	}
	return rows, n / rows
}

// Task is one finite job in the queue.
type Task struct {
	ID        int
	Benchmark string
	// Cycles is the task's budget in active (non-stalled) cycles.
	Cycles int64
	// Arrival is the wall-clock cycle the task becomes assignable at.
	Arrival int64

	executed   int64
	committed  uint64 // accumulated across migrations
	migrations int
	done       bool
}

// coreState is one core slot on the shared die.
type coreState struct {
	id     int
	stream *rng.Source // the (seed, coreID)-derived per-core stream

	machine *sim.Simulator // nil while idle
	task    *Task
	// stallRemaining quantizes a cooling-stall demand to whole sensor
	// intervals (see sim's interval-stepping seam).
	stallRemaining int64

	tasksRun              int
	activeCycles          int64
	stallCycles           int64
	coolingStallEvents    uint64
	committed             uint64 // finished work only; in-flight added at the end
	tempSum               float64
	tempPeak              float64
	hotBlock              int // base-plan block index of the peak sample
	lastPeak              float64
	powerSum              float64 // watt-intervals, for avg power
}

// System is one multicore run in progress: the shared die, the shared
// thermal field, N core slots, and the task queue.
type System struct {
	Params Params
	Plan   *floorplan.Plan // the tiled shared die
	Th     *thermal.Model  // the only thermal model ever advanced

	base     *config.Config // per-core configuration template
	basePlan *floorplan.Plan
	sched    Scheduler
	cores    []*coreState
	queue    []*Task
	nextTask int

	nb          int // blocks per core
	pow         []float64
	temps       []float64
	interval    int
	secPerCycle float64
	cycles      int64
	intervals   int
	migrations  int
	parallelism int

	idleBuf []int
	taskLen *rng.Source
}

// seedFor derives the core's stream seed from (seed, coreID); rng.New
// diffuses it through splitmix64, so consecutive cores get uncorrelated
// streams.
func seedFor(seed uint64, coreID int) uint64 {
	return seed ^ 0x9e3779b97f4a7c15*uint64(coreID+1)
}

// NewSystem builds the shared die, thermal network, core slots, and task
// queue for p (normalized and validated here).
func NewSystem(p Params) (*System, error) {
	p = p.Normalized()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base := config.Default()
	base.Plan = p.Plan
	base.MaxTempK = p.MaxTempK
	if err := base.Validate(); err != nil {
		return nil, err
	}
	basePlan := floorplan.Build(p.Plan)
	rows, cols := Grid(p.Cores)
	plan := floorplan.Tile(basePlan, rows, cols)
	// The shared die dissipates every core's power into ONE package. The
	// copper spreader and sink plates (30/60 mm) dwarf even a tiled die;
	// only the sink-to-ambient convection is resized, sublinearly in core
	// count (R/√N): the larger package gets more fin area but shares one
	// airflow, so N cores cannot all run hot at once. One core reproduces
	// the single-core package exactly; at N=4 the package carries about
	// two cores' worth of sustained hot power — the thermally-limited
	// regime the scheduling papers study, where placement decides whether
	// a hot task's excursion over the background crosses the threshold.
	sharedCfg := base.Clone()
	sharedCfg.ConvectionRes = base.ConvectionRes / math.Sqrt(float64(p.Cores))
	th, err := thermal.New(plan, sharedCfg)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(p.Scheduler, p.Seed)
	if err != nil {
		return nil, err
	}
	s := &System{
		Params:      p,
		Plan:        plan,
		Th:          th,
		base:        base,
		basePlan:    basePlan,
		sched:       sched,
		nb:          basePlan.NumBlocks(),
		pow:         make([]float64, plan.NumBlocks()),
		temps:       make([]float64, plan.NumBlocks()),
		interval:    base.SensorIntervalCycles,
		secPerCycle: base.ThermalSecondsPerCycle(),
		parallelism: runner.Resolve(p.Parallelism, p.Cores),
		taskLen:     rng.New(seedFor(p.Seed, -2)),
	}
	for c := 0; c < p.Cores; c++ {
		s.cores = append(s.cores, &coreState{
			id:       c,
			stream:   rng.New(seedFor(p.Seed, c)),
			lastPeak: base.AmbientK,
			tempPeak: base.AmbientK,
			hotBlock: 0,
		})
	}
	for i := 0; i < p.Tasks; i++ {
		// Task lengths vary in [0.5, 1.5)× the base budget, drawn from a
		// queue-level stream so the workload is fixed before scheduling.
		cycles := int64(float64(p.TaskCycles) * (0.5 + s.taskLen.Float64()))
		if cycles < int64(s.interval) {
			cycles = int64(s.interval)
		}
		s.queue = append(s.queue, &Task{
			ID:        i,
			Benchmark: p.Benchmarks[i%len(p.Benchmarks)],
			Cycles:    cycles,
			Arrival:   int64(i) * p.ArrivalGap,
		})
	}
	if err := s.backgroundWarmStart(); err != nil {
		return nil, err
	}
	return s, nil
}

// NumCores returns the number of core slots.
func (s *System) NumCores() int { return len(s.cores) }

// CoreBusy reports whether core c is running or stalling a task.
func (s *System) CoreBusy(c int) bool { return s.cores[c].task != nil }

// CoreStalled reports whether core c is inside a cooling stall.
func (s *System) CoreStalled(c int) bool { return s.cores[c].stallRemaining > 0 }

// CorePeak returns the hottest block temperature of core c's tile in the
// shared field as of the last completed interval (ambient before the
// first).
func (s *System) CorePeak(c int) float64 { return s.cores[c].lastPeak }

// MaxTempK returns the critical threshold the per-core managers stall at.
func (s *System) MaxTempK() float64 { return s.base.MaxTempK }

// Cycles returns the wall-clock cycles advanced so far.
func (s *System) Cycles() int64 { return s.cycles }

// Done reports whether the run is over: every task completed, or the
// cycle horizon reached.
func (s *System) Done() bool {
	if s.cycles >= s.Params.Cycles {
		return true
	}
	if s.nextTask < len(s.queue) {
		return false
	}
	for _, c := range s.cores {
		if c.task != nil {
			return false
		}
	}
	return true
}

// start places task t on core c: a fresh machine with the task's profile
// reseeded from the core's stream, architecturally warmed.
func (s *System) start(c *coreState, t *Task) error {
	prof, err := trace.ByName(t.Benchmark)
	if err != nil {
		return err
	}
	prof.Seed = c.stream.Uint64()
	cfg := s.base.Clone()
	m, err := sim.New(cfg, prof)
	if err != nil {
		return err
	}
	m.WarmupInstructions = s.Params.Warmup
	c.machine = m
	c.task = t
	c.stallRemaining = 0
	c.tasksRun++
	return nil
}

// finish retires core c's task (or banks its progress, when the run ends
// with the task in flight).
func (s *System) finish(c *coreState, completed bool) {
	r := c.machine.Snapshot()
	c.task.committed += r.Committed
	c.committed += r.Committed
	c.task.done = completed
	c.machine = nil
	c.task = nil
	c.stallRemaining = 0
}

// Step advances the whole system one sensor interval: assign, advance all
// busy cores (in parallel, bit-identically at any worker count), deposit
// power into the shared field, integrate it once, then sense and run each
// core's thermal manager against the shared temperatures, and finally let
// the policy migrate. The error is only ever a task-start failure, which
// validation makes unreachable in practice.
func (s *System) Step() error {
	// Assignment: policy decisions are serial and in deterministic order;
	// machine construction and warmup fan out below.
	var started []*coreState
	for s.nextTask < len(s.queue) && s.queue[s.nextTask].Arrival <= s.cycles {
		idle := s.idleBuf[:0]
		for _, c := range s.cores {
			if c.task == nil {
				idle = append(idle, c.id)
			}
		}
		s.idleBuf = idle
		if len(idle) == 0 {
			break
		}
		pick := s.sched.Pick(s, idle)
		c := s.cores[pick]
		if err := s.start(c, s.queue[s.nextTask]); err != nil {
			return err
		}
		s.nextTask++
		started = append(started, c)
	}
	if len(started) > 1 && s.parallelism > 1 {
		runner.Run(context.Background(), s.parallelism, len(started), func(i int) error {
			started[i].machine.WarmupArch()
			return nil
		})
	} else {
		for _, c := range started {
			c.machine.WarmupArch()
		}
	}

	// Advance: each busy core runs one interval; power lands in the
	// core's disjoint slice of the shared vector, so the fan-out is
	// race-free and the result independent of worker count.
	runner.Run(context.Background(), s.parallelism, len(s.cores), func(i int) error {
		c := s.cores[i]
		seg := s.pow[c.id*s.nb : (c.id+1)*s.nb]
		if c.task == nil {
			for b := range seg {
				seg[b] = 0
			}
			return nil
		}
		stalled := c.stallRemaining > 0
		copy(seg, c.machine.StepInterval(stalled))
		return nil
	})
	for _, c := range s.cores {
		if c.task == nil {
			continue
		}
		if c.stallRemaining > 0 {
			c.stallRemaining -= int64(s.interval)
			c.stallCycles += int64(s.interval)
		} else {
			c.activeCycles += int64(s.interval)
			c.task.executed += int64(s.interval)
		}
	}

	s.cycles += int64(s.interval)
	s.intervals++
	for _, c := range s.cores {
		for _, p := range s.pow[c.id*s.nb : (c.id+1)*s.nb] {
			c.powerSum += p
		}
	}

	// One shared integration carries every core's heat, including
	// lateral flow across tile seams.
	s.Th.Advance(s.pow, float64(s.interval)*s.secPerCycle)

	// Sense: gather the shared field once, fold the per-core temperature
	// statistics (idle tiles included — a hot idle core is still hot),
	// and run each active core's manager against its tile.
	s.Th.Temps(s.temps)
	for _, c := range s.cores {
		seg := s.temps[c.id*s.nb : (c.id+1)*s.nb]
		peak, hot := seg[0], 0
		sum := 0.0
		for b, t := range seg {
			sum += t
			if t > peak {
				peak, hot = t, b
			}
		}
		c.lastPeak = peak
		c.tempSum += sum / float64(s.nb)
		if peak > c.tempPeak {
			c.tempPeak = peak
			c.hotBlock = hot
		}
		if c.task == nil || c.stallRemaining > 0 {
			continue
		}
		if stall := c.machine.SenseExternal(seg); stall > 0 {
			c.stallRemaining = int64(stall)
			c.coolingStallEvents++
		}
	}

	// Migration: policies with a rebalance rule move tasks between cores.
	if rb, ok := s.sched.(Rebalancer); ok {
		for _, mv := range rb.Rebalance(s) {
			from, to := s.cores[mv.From], s.cores[mv.To]
			if from.task == nil || to.task != nil {
				continue
			}
			t := from.task
			s.finish(from, false)
			if err := s.start(to, t); err != nil {
				return err
			}
			to.machine.WarmupArch()
			t.migrations++
			s.migrations++
		}
	}

	s.retire()
	return nil
}

// warmIntervals is the per-benchmark power-measurement window for the
// background warm start, matching the single-core protocol's window.
const warmIntervals = 4

// backgroundWarmStart initializes the shared field at the steady state of
// the workload's background power: each mix benchmark's per-block power is
// measured on a scratch machine (the analogue of the single-core run's
// measurement window), the mix average is scaled by the offered load
// TaskCycles/(ArrivalGap·Cores), and the result is replicated onto every
// tile. This models a machine that has been running the mix at this load
// long enough for the package — whose thermal time constant is far beyond
// any run horizon — to equilibrate, without baking any one task's private
// steady state in as an unreachable ceiling. The measurement is
// scheduler-independent and identical at any worker count: scratch seeds
// derive only from (Seed, benchmark index), and the per-benchmark vectors
// are folded serially in mix order.
func (s *System) backgroundWarmStart() error {
	perBench := make([][]float64, len(s.Params.Benchmarks))
	err := runner.Run(context.Background(), s.parallelism, len(perBench), func(i int) error {
		prof, err := trace.ByName(s.Params.Benchmarks[i])
		if err != nil {
			return err
		}
		prof.Seed = seedFor(s.Params.Seed, -4-i)
		m, err := sim.New(s.base.Clone(), prof)
		if err != nil {
			return err
		}
		m.WarmupInstructions = s.Params.Warmup
		m.WarmupArch()
		avg := make([]float64, s.nb)
		for k := 0; k < warmIntervals; k++ {
			for b, p := range m.StepInterval(false) {
				avg[b] += p
			}
		}
		for b := range avg {
			avg[b] /= warmIntervals
		}
		perBench[i] = avg
		return nil
	})
	if err != nil {
		return err
	}
	load := float64(s.Params.TaskCycles) / (float64(s.Params.ArrivalGap) * float64(s.Params.Cores))
	if load > 1 {
		load = 1
	}
	bg := make([]float64, s.nb)
	for _, avg := range perBench {
		for b, p := range avg {
			bg[b] += p
		}
	}
	for b := range bg {
		bg[b] *= load / float64(len(perBench))
	}
	warm := make([]float64, len(s.pow))
	for c := range s.cores {
		copy(warm[c*s.nb:(c+1)*s.nb], bg)
	}
	s.Th.WarmStart(warm)
	s.clampBelowThreshold()
	return nil
}

// clampBelowThreshold scales the warm-started field back toward ambient if
// any block would otherwise start at or above the critical threshold, so
// the first intervals measure scheduling, not the initial condition.
func (s *System) clampBelowThreshold() {
	temps := s.Th.Temps(s.temps)
	maxT := 0.0
	for _, t := range temps {
		if t > maxT {
			maxT = t
		}
	}
	limit := s.base.MaxTempK - 0.5
	if maxT < limit {
		return
	}
	scale := (limit - s.base.AmbientK) / (maxT - s.base.AmbientK)
	for i := range temps {
		temps[i] = s.base.AmbientK + (temps[i]-s.base.AmbientK)*scale
	}
	s.Th.SetTemps(temps)
}

// retire frees cores whose task has used up its budget; they become
// assignable at the next interval.
func (s *System) retire() {
	for _, c := range s.cores {
		if c.task != nil && c.task.executed >= c.task.Cycles {
			s.finish(c, true)
		}
	}
}

// Run drives a system built from p to completion. Cancellation is
// consulted between intervals only, so an uncancelled context is
// bit-identical to a plain loop.
func Run(ctx context.Context, p Params) (*Result, error) {
	s, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Result(), nil
}
