package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// rig builds a manager with direct access to the thermal model so tests
// can script temperature scenarios.
func rig(t *testing.T, mod func(*config.Config)) (*Manager, *thermal.Model, *pipeline.Pipeline, *floorplan.Plan, *config.Config) {
	t.Helper()
	cfg := config.Default()
	if mod != nil {
		mod(cfg)
	}
	plan := floorplan.Build(cfg.Plan)
	meter := power.NewMeter(plan, cfg)
	prof, _ := trace.ByName("eon")
	pipe, err := pipeline.New(cfg, plan, meter, trace.NewGenerator(prof))
	if err != nil {
		t.Fatal(err)
	}
	th, err := thermal.New(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(cfg, plan, pipe, th)
	return mgr, th, pipe, plan, cfg
}

// setTemp sets one block's temperature, leaving the rest at the given
// background.
func setTemps(th *thermal.Model, plan *floorplan.Plan, bg float64, hot map[string]float64) {
	ts := make([]float64, plan.NumBlocks())
	for i := range ts {
		ts[i] = bg
	}
	for name, t := range hot {
		ts[plan.Index(name)] = t
	}
	th.SetTemps(ts)
}

func TestNoActionWhenCool(t *testing.T) {
	mgr, th, _, plan, _ := rig(t, nil)
	setTemps(th, plan, 340, nil)
	if stall := mgr.Control(); stall != 0 {
		t.Fatalf("cool chip requested %d stall cycles", stall)
	}
	if mgr.Stalls != 0 || mgr.IntToggles != 0 {
		t.Fatal("spurious events")
	}
}

func TestIQOverheatForcesStall(t *testing.T) {
	// Queue halves cannot be turned off: at threshold the core must take
	// the temporal fallback regardless of technique.
	for _, iq := range []config.IQPolicy{config.IQBase, config.IQToggle} {
		mgr, th, _, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.IQ = iq })
		setTemps(th, plan, 340, map[string]float64{floorplan.IntQ1: cfg.MaxTempK})
		stall := mgr.Control()
		if stall != cfg.CoolingCycles() {
			t.Fatalf("iq=%v: stall %d, want %d", iq, stall, cfg.CoolingCycles())
		}
		if mgr.Stalls != 1 {
			t.Fatalf("stall not counted")
		}
	}
}

func TestToggleFiresOnActiveHotHalf(t *testing.T) {
	mgr, th, pipe, plan, _ := rig(t, func(c *config.Config) { c.Techniques.IQ = config.IQToggle })
	// Make physical half 1 both hotter (by > 0.5 K) and more active.
	q := pipe.IntQueue()
	for id := int32(0); id < 20; id++ {
		q.Dispatch(id)
	}
	for i := 0; i < 50; i++ {
		q.Tick() // generates activity charged mostly to occupied region
	}
	// Manually bias activity: issue from the bottom so the tail moves.
	for id := int32(0); id < 10; id++ {
		q.MarkReady(id)
		q.Issue(id)
		q.Tick()
	}
	setTemps(th, plan, 350, map[string]float64{floorplan.IntQ1: 351.0})
	mode := q.Mode()
	mgr.Control()
	// Whether it fires depends on which half was more active; force the
	// unambiguous case: hot half 1, and half-1 energy strictly higher.
	if q.Mode() == mode {
		// Acceptable only if half 0 accumulated more energy (activity on
		// the cool half suppresses toggling by design).
		e0, e1 := q.EnergyTotals()
		if e1 > e0 {
			t.Fatalf("hot+active half did not trigger toggle (e0=%g e1=%g)", e0, e1)
		}
	}
}

func TestToggleRespectsThreshold(t *testing.T) {
	mgr, th, pipe, plan, _ := rig(t, func(c *config.Config) { c.Techniques.IQ = config.IQToggle })
	setTemps(th, plan, 350, map[string]float64{floorplan.IntQ1: 350.4}) // 0.4 K < 0.5 K
	mgr.Control()
	if pipe.IntQueue().Mode() != 0 || mgr.IntToggles != 0 {
		t.Fatal("toggle fired below threshold")
	}
}

func TestALUFineGrainTurnoffAndResume(t *testing.T) {
	mgr, th, pipe, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.ALU = config.ALUFineGrain })
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK})
	if stall := mgr.Control(); stall != 0 {
		t.Fatal("fine-grain turnoff should avoid the stall")
	}
	if !pipe.IntPool().Busy(0) {
		t.Fatal("hot ALU not marked busy")
	}
	if pipe.IntPool().Busy(1) {
		t.Fatal("cool ALU marked busy")
	}
	if mgr.ALUTurnoffs != 1 {
		t.Fatalf("turnoffs %d", mgr.ALUTurnoffs)
	}

	// Still above resume point: stays off.
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK - cfg.TurnoffHysteresisK/2})
	mgr.Control()
	if !pipe.IntPool().Busy(0) {
		t.Fatal("ALU resumed within hysteresis band")
	}

	// Below resume point: resumes.
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK - 2*cfg.TurnoffHysteresisK})
	mgr.Control()
	if pipe.IntPool().Busy(0) {
		t.Fatal("ALU did not resume after cooling")
	}
	if mgr.ALUTurnoffs != 1 {
		t.Fatal("resume should not count as a turnoff")
	}
}

func TestALUBasePolicyStallsInstead(t *testing.T) {
	mgr, th, _, plan, cfg := rig(t, nil) // ALUBase
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK})
	if stall := mgr.Control(); stall == 0 {
		t.Fatal("base policy must stall on a hot ALU")
	}
}

func TestAllALUsHotForcesStall(t *testing.T) {
	mgr, th, _, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.ALU = config.ALUFineGrain })
	hot := map[string]float64{}
	for u := 0; u < cfg.IntALUs; u++ {
		hot[floorplan.IntExec(u)] = cfg.MaxTempK
	}
	setTemps(th, plan, 345, hot)
	if stall := mgr.Control(); stall == 0 {
		t.Fatal("all-ALUs-hot must fall back to the temporal technique")
	}
}

func TestFPAdderTurnoff(t *testing.T) {
	mgr, th, pipe, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.ALU = config.ALUFineGrain })
	setTemps(th, plan, 345, map[string]float64{floorplan.FPAdd(2): cfg.MaxTempK})
	if stall := mgr.Control(); stall != 0 {
		t.Fatal("hot FP adder should be tolerated")
	}
	if !pipe.FPAddPool().Busy(2) {
		t.Fatal("hot FP adder not busy")
	}
	_ = mgr
}

func TestFPMulToleratedWhileCooling(t *testing.T) {
	mgr, th, pipe, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.ALU = config.ALUFineGrain })
	setTemps(th, plan, 345, map[string]float64{floorplan.FPMul: cfg.MaxTempK})
	if stall := mgr.Control(); stall != 0 {
		t.Fatal("single FP multiplier should cool without a global stall")
	}
	if !pipe.FPMulPool().Busy(0) {
		t.Fatal("hot FP multiplier not busy")
	}
}

func TestRFTurnoffMasksMappedALUs(t *testing.T) {
	mgr, th, pipe, plan, cfg := rig(t, func(c *config.Config) {
		c.Techniques.RFTurnoff = true
		c.Techniques.RFMap = config.MapPriority
	})
	thr := pipe.RegFile().TurnoffThreshold(cfg.MaxTempK, cfg.RFWriteMarginK)
	setTemps(th, plan, 345, map[string]float64{floorplan.IntReg0: thr})
	if stall := mgr.Control(); stall != 0 {
		t.Fatal("copy turnoff should avoid the stall")
	}
	rf := pipe.RegFile()
	if !rf.Off(0) || rf.Off(1) {
		t.Fatal("copy 0 should be off, copy 1 on")
	}
	// Priority mapping: ALUs 0-2 wired to copy 0 must be busy.
	for u := 0; u < 3; u++ {
		if !pipe.IntPool().Busy(u) {
			t.Fatalf("ALU %d of off copy not busy", u)
		}
	}
	for u := 3; u < 6; u++ {
		if pipe.IntPool().Busy(u) {
			t.Fatalf("ALU %d of live copy busy", u)
		}
	}
	if mgr.RFCopyTurnoffs != 1 {
		t.Fatalf("rf turnoffs %d", mgr.RFCopyTurnoffs)
	}

	// Cooling below resume releases the copy and its ALUs.
	setTemps(th, plan, 345, nil)
	mgr.Control()
	if rf.Off(0) || pipe.IntPool().Busy(0) {
		t.Fatal("copy or ALUs did not resume")
	}
}

func TestLastRFCopyNeverTurnedOff(t *testing.T) {
	mgr, th, pipe, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.RFTurnoff = true })
	// Both copies at the CRITICAL threshold: one may turn off; the other
	// must stay readable, leaving a hot untolerated block.
	setTemps(th, plan, 345, map[string]float64{
		floorplan.IntReg0: cfg.MaxTempK,
		floorplan.IntReg1: cfg.MaxTempK,
	})
	stall := mgr.Control()
	rf := pipe.RegFile()
	off := 0
	for c := 0; c < rf.Copies(); c++ {
		if rf.Off(c) {
			off++
		}
	}
	if off != 1 {
		t.Fatalf("%d copies off, want exactly 1 (never the last)", off)
	}
	// One copy is at threshold and NOT off: that forces the stall.
	if stall == 0 {
		t.Fatal("both copies hot must stall")
	}
}

func TestRFBaseStallsOnHotCopy(t *testing.T) {
	mgr, th, _, plan, cfg := rig(t, nil) // RFTurnoff false
	setTemps(th, plan, 345, map[string]float64{floorplan.IntReg1: cfg.MaxTempK})
	if stall := mgr.Control(); stall == 0 {
		t.Fatal("hot RF copy without turnoff must stall")
	}
}

func TestFPRegAlwaysStalls(t *testing.T) {
	// The FP register file has no copies: no technique can tolerate it.
	mgr, th, _, plan, cfg := rig(t, func(c *config.Config) {
		c.Techniques.IQ = config.IQToggle
		c.Techniques.ALU = config.ALUFineGrain
		c.Techniques.RFTurnoff = true
	})
	setTemps(th, plan, 345, map[string]float64{floorplan.FPReg: cfg.MaxTempK})
	if stall := mgr.Control(); stall == 0 {
		t.Fatal("hot FP register file must stall")
	}
}

func TestHotAndStallAttribution(t *testing.T) {
	mgr, th, _, plan, cfg := rig(t, func(c *config.Config) { c.Techniques.ALU = config.ALUFineGrain })
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK})
	mgr.Control()
	idx := plan.Index("IntExec0")
	if mgr.HotCounts[idx] != 1 {
		t.Fatalf("hot count %d", mgr.HotCounts[idx])
	}
	if mgr.StallCauses[idx] != 0 {
		t.Fatal("tolerated block recorded as stall cause")
	}
	setTemps(th, plan, 345, map[string]float64{floorplan.IntQ0: cfg.MaxTempK})
	mgr.Control()
	qidx := plan.Index(floorplan.IntQ0)
	if mgr.StallCauses[qidx] != 1 {
		t.Fatal("stall cause not recorded")
	}
	if mgr.HotSamples != 2 || mgr.Samples != 2 {
		t.Fatalf("samples=%d hot=%d", mgr.Samples, mgr.HotSamples)
	}
}

func TestTempDiff(t *testing.T) {
	mgr, th, pipe, plan, _ := rig(t, nil)
	setTemps(th, plan, 350, map[string]float64{floorplan.IntQ1: 352})
	if d := mgr.TempDiff(); d != 2 {
		t.Fatalf("TempDiff %v, want 2 (tail-head, mode 0)", d)
	}
	pipe.IntQueue().Toggle()
	if d := mgr.TempDiff(); d != -2 {
		t.Fatalf("TempDiff %v after toggle, want -2", d)
	}
}

func TestSensorNoiseDoesNotBreakControl(t *testing.T) {
	mgr, th, _, plan, cfg := rig(t, func(c *config.Config) {
		c.SensorNoiseK = 1.5
		c.Techniques.ALU = config.ALUFineGrain
	})
	// Well below threshold: even with ±1.5 K noise, no block can appear
	// hot (threshold is 358, background 345).
	setTemps(th, plan, 345, nil)
	for i := 0; i < 200; i++ {
		if stall := mgr.Control(); stall != 0 {
			t.Fatal("noise alone triggered a stall 13 K below threshold")
		}
	}
	// Right at threshold: noisy sensing must trigger at least sometimes.
	setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK})
	turnedOff := false
	for i := 0; i < 50; i++ {
		mgr.Control()
		if mgr.ALUTurnoffs > 0 {
			turnedOff = true
			break
		}
	}
	if !turnedOff {
		t.Fatal("noisy sensor never detected an at-threshold block")
	}
	// Physical temperatures are untouched by sensing noise.
	if th.TempByName("IntExec0") != cfg.MaxTempK {
		t.Fatal("sensor noise leaked into the thermal model")
	}
}

func TestSensorNoiseDeterministic(t *testing.T) {
	run := func() uint64 {
		mgr, th, _, plan, cfg := rig(t, func(c *config.Config) {
			c.SensorNoiseK = 1.0
			c.Techniques.ALU = config.ALUFineGrain
		})
		setTemps(th, plan, 345, map[string]float64{"IntExec0": cfg.MaxTempK - 0.5})
		for i := 0; i < 100; i++ {
			mgr.Control()
		}
		return mgr.ALUTurnoffs
	}
	if run() != run() {
		t.Fatal("sensor noise not deterministic across identical runs")
	}
}
