// Package core implements the paper's contribution: a dynamic thermal
// manager that balances asymmetric utilization inside back-end pipeline
// resources, avoiding performance-destroying global stalls.
//
// The manager samples on-chip temperature sensors every sensor interval
// (§3: 100 k cycles, well under the ms-scale thermal time constants) and
// applies three spatial techniques:
//
//   - Activity toggling (§2.1): when the temperature difference between an
//     issue queue's two physical halves exceeds 0.5 K with the hot half on
//     the high-activity (tail) side, the queue's head/tail configuration
//     toggles between bottom-of-queue and middle-of-queue modes.
//   - Fine-grain ALU turnoff (§2.2): an execution unit at the thermal
//     threshold is marked busy so its select tree grants nothing and work
//     flows to cooler units; it resumes below a hysteresis margin.
//   - Register-file copy turnoff (§2.3): an overheated copy is disabled by
//     marking busy the ALUs whose read ports are wired to it; writes
//     follow the configured staleness policy.
//
// When a technique cannot contain an overheat — an issue-queue half at the
// threshold, every unit of a class hot, every register-file copy off, or a
// resource without copies — the manager falls back to the temporal
// technique the paper compares against: a full stall for the package's
// 10 ms cooling time (Pentium 4 style).
package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/regfile"
	"repro/internal/rng"
	"repro/internal/thermal"
)

// Manager is the dynamic thermal manager for one simulated core.
type Manager struct {
	cfg  *config.Config
	pipe *pipeline.Pipeline
	th   *thermal.Model

	// Cached block indices.
	intQ0, intQ1, fpQ0, fpQ1 int
	intExec                  []int
	fpAdd                    []int
	fpMul                    int
	intReg                   []int
	fpReg                    int
	nBlocks                  int

	// Per-unit thermal state (separate from register-file-induced
	// busyness so the two causes compose).
	intALUHot []bool
	fpAddHot  []bool
	fpMulHot  bool
	rfOffALU  []bool // int ALUs masked because their RF copy is off

	// Last-seen per-half queue energies for activity detection.
	lastIntE [2]float64
	lastFPE  [2]float64

	dvfsActive bool

	temps []float64
	noise *rng.Source // sensor-noise source (nil when disabled)

	// Statistics.
	Stalls         uint64 // global cooling stalls triggered
	IntToggles     uint64
	FPToggles      uint64
	ALUTurnoffs    uint64 // transitions of a unit into thermal turnoff
	RFCopyTurnoffs uint64 // transitions of an RF copy into turnoff
	HotSamples     uint64 // sensor samples with any block at threshold
	Samples        uint64
	// DVFSEngagements counts transitions into the scaled-clock mode
	// (TemporalDVFS only).
	DVFSEngagements uint64
	// HotCounts tallies, per block, the sensor samples at which the block
	// sat at or above the critical threshold — the stall-attribution
	// diagnostic behind the per-experiment tables.
	HotCounts []uint64
	// StallCauses tallies, per block, the samples where the block both
	// crossed the threshold and could not be tolerated.
	StallCauses []uint64
}

// New builds a manager bound to a pipeline and thermal model sharing the
// same floorplan.
func New(cfg *config.Config, plan *floorplan.Plan, pipe *pipeline.Pipeline, th *thermal.Model) *Manager {
	m := &Manager{
		cfg:         cfg,
		pipe:        pipe,
		th:          th,
		intQ0:       plan.Index(floorplan.IntQ0),
		intQ1:       plan.Index(floorplan.IntQ1),
		fpQ0:        plan.Index(floorplan.FPQ0),
		fpQ1:        plan.Index(floorplan.FPQ1),
		intExec:     plan.IntExecBlocks(cfg.IntALUs),
		fpAdd:       plan.FPAddBlocks(cfg.FPAdders),
		fpMul:       plan.Index(floorplan.FPMul),
		intReg:      make([]int, cfg.IntRFCopies),
		fpReg:       plan.Index(floorplan.FPReg),
		nBlocks:     plan.NumBlocks(),
		intALUHot:   make([]bool, cfg.IntALUs),
		fpAddHot:    make([]bool, cfg.FPAdders),
		rfOffALU:    make([]bool, cfg.IntALUs),
		temps:       make([]float64, plan.NumBlocks()),
		HotCounts:   make([]uint64, plan.NumBlocks()),
		StallCauses: make([]uint64, plan.NumBlocks()),
	}
	for c := 0; c < cfg.IntRFCopies; c++ {
		m.intReg[c] = plan.Index(fmt.Sprintf("IntReg%d", c))
	}
	if cfg.SensorNoiseK > 0 {
		m.noise = rng.New(0x5e9507)
	}
	return m
}

// Control runs one sensor sample: it reads temperatures, applies the
// configured techniques, and returns the number of cycles the core must
// stall globally (0 if execution may continue).
func (m *Manager) Control() int {
	m.Samples++
	m.th.Temps(m.temps)
	if m.noise != nil {
		// The manager acts on SENSED temperatures; physical temperatures
		// in the thermal model are untouched.
		amp := m.cfg.SensorNoiseK
		for b := range m.temps {
			m.temps[b] += amp * (2*m.noise.Float64() - 1)
		}
	}

	if m.cfg.Techniques.IQ == config.IQToggle {
		m.toggleQueues()
	}
	if m.cfg.Techniques.ALU != config.ALUBase {
		m.aluTurnoff()
	}
	if m.cfg.Techniques.RFTurnoff {
		m.rfTurnoff()
	}
	m.applyBusy()

	need := m.mustStall()
	if m.cfg.Techniques.Temporal == config.TemporalDVFS {
		m.updateDVFS(need)
		return 0
	}
	if need {
		m.Stalls++
		return m.cfg.CoolingCycles()
	}
	return 0
}

// updateDVFS drives the scaled-clock mode: engage when the spatial
// techniques run out, disengage once every block has cooled below the
// hysteresis point.
func (m *Manager) updateDVFS(need bool) {
	if !m.dvfsActive {
		if need {
			m.dvfsActive = true
			m.DVFSEngagements++
		}
		return
	}
	resume := m.cfg.MaxTempK - m.cfg.TurnoffHysteresisK
	for b := 0; b < m.nBlocks; b++ {
		if m.temps[b] > resume {
			return // still hot somewhere: stay slow
		}
	}
	m.dvfsActive = false
}

// DVFSActive reports whether the core is currently running at the divided
// clock.
func (m *Manager) DVFSActive() bool { return m.dvfsActive }

// toggleQueues applies activity toggling to both issue queues: when the
// half currently receiving more compaction activity is also hotter than
// the other half by the threshold, the head moves. Keying the decision on
// measured activity (not temperature alone) keeps the controller from
// oscillating: right after a toggle the old hot half is still hotter, but
// it is no longer the active one, so no immediate toggle-back occurs.
func (m *Manager) toggleQueues() {
	thr := m.cfg.ToggleThresholdK

	e0, e1 := m.pipe.IntQueue().EnergyTotals()
	if m.shouldToggle(e0-m.lastIntE[0], e1-m.lastIntE[1], m.temps[m.intQ0], m.temps[m.intQ1], thr) {
		m.pipe.IntQueue().Toggle()
		m.IntToggles++
	}
	m.lastIntE[0], m.lastIntE[1] = e0, e1

	f0, f1 := m.pipe.FPQueue().EnergyTotals()
	if m.shouldToggle(f0-m.lastFPE[0], f1-m.lastFPE[1], m.temps[m.fpQ0], m.temps[m.fpQ1], thr) {
		m.pipe.FPQueue().Toggle()
		m.FPToggles++
	}
	m.lastFPE[0], m.lastFPE[1] = f0, f1
}

// shouldToggle reports whether the actively heated half (higher energy
// deposit over the last interval) is hotter than the other by thr.
func (m *Manager) shouldToggle(de0, de1, t0, t1, thr float64) bool {
	if de0 > de1 {
		return t0-t1 > thr
	}
	return t1-t0 > thr
}

// aluTurnoff updates the per-unit thermal busy state: units at the
// threshold turn off; turned-off units resume below the hysteresis margin.
func (m *Manager) aluTurnoff() {
	max := m.cfg.MaxTempK
	resume := max - m.cfg.TurnoffHysteresisK
	for i, b := range m.intExec {
		m.updateHot(&m.intALUHot[i], m.temps[b], max, resume)
	}
	for i, b := range m.fpAdd {
		m.updateHot(&m.fpAddHot[i], m.temps[b], max, resume)
	}
	m.updateHot(&m.fpMulHot, m.temps[m.fpMul], max, resume)
}

func (m *Manager) updateHot(hot *bool, t, max, resume float64) {
	switch {
	case !*hot && t >= max:
		*hot = true
		m.ALUTurnoffs++
	case *hot && t <= resume:
		*hot = false
	}
}

// rfTurnoff turns register-file copies off and on, masking and unmasking
// the ALUs wired to each copy.
func (m *Manager) rfTurnoff() {
	rf := m.pipe.RegFile()
	threshold := rf.TurnoffThreshold(m.cfg.MaxTempK, m.cfg.RFWriteMarginK)
	resume := threshold - m.cfg.TurnoffHysteresisK
	for c := 0; c < rf.Copies(); c++ {
		t := m.temps[m.intReg[c]]
		switch {
		case !rf.Off(c) && t >= threshold:
			// Never turn off the last readable copy: integer execution
			// would deadlock without the global-stall decision, which
			// mustStall makes from temperature alone.
			if offCopies(rf) < rf.Copies()-1 {
				rf.SetOff(c, true)
				m.RFCopyTurnoffs++
			}
		case rf.Off(c) && t <= resume:
			rf.SetOff(c, false)
		}
	}
	for a := range m.rfOffALU {
		copyOf := rf.CopyOf(a)
		m.rfOffALU[a] = copyOf >= 0 && rf.Off(copyOf)
	}
}

func offCopies(rf *regfile.File) int {
	n := 0
	for c := 0; c < rf.Copies(); c++ {
		if rf.Off(c) {
			n++
		}
	}
	return n
}

// applyBusy pushes the combined (thermal + register-file) busy state into
// the select trees.
func (m *Manager) applyBusy() {
	ip := m.pipe.IntPool()
	for i := range m.intALUHot {
		ip.SetBusy(i, m.intALUHot[i] || m.rfOffALU[i])
	}
	fa := m.pipe.FPAddPool()
	for i := range m.fpAddHot {
		fa.SetBusy(i, m.fpAddHot[i])
	}
	m.pipe.FPMulPool().SetBusy(0, m.fpMulHot)
}

// mustStall decides whether the temporal fallback is required: some block
// is at the critical threshold and the configured techniques cannot
// tolerate it.
func (m *Manager) mustStall() bool {
	max := m.cfg.MaxTempK
	anyHot := false
	stall := false
	for b := 0; b < m.nBlocks; b++ {
		if m.temps[b] < max {
			continue
		}
		anyHot = true
		m.HotCounts[b]++
		if !m.tolerated(b) {
			m.StallCauses[b]++
			stall = true
		}
	}
	if anyHot {
		m.HotSamples++
	}
	return stall
}

// tolerated reports whether an at-threshold block is contained by a
// spatial technique so execution may continue.
func (m *Manager) tolerated(b int) bool {
	// Execution units: tolerated under fine-grain turnoff while at least
	// one unit of the class remains available.
	if m.cfg.Techniques.ALU != config.ALUBase {
		for _, eb := range m.intExec {
			if eb == b {
				return !m.pipe.IntPool().AllBusy()
			}
		}
		for _, fb := range m.fpAdd {
			if fb == b {
				return !m.pipe.FPAddPool().AllBusy()
			}
		}
		if b == m.fpMul {
			// The lone multiplier has no spare copy, but marking it busy
			// lets it cool while the rest of the core runs; its queue
			// simply backs up.
			return true
		}
	}
	// Register-file copies: tolerated under fine-grain turnoff while a
	// readable copy remains.
	if m.cfg.Techniques.RFTurnoff {
		for c, rb := range m.intReg {
			if rb == b {
				rf := m.pipe.RegFile()
				return rf.Off(c) && !rf.AllOff()
			}
		}
	}
	// Issue-queue halves, the FP register file, caches, and everything
	// else: no spatial slack to exploit once at the threshold.
	return false
}

// TempDiff returns the current temperature difference (tail-region half
// minus head half) of the integer issue queue; used by experiments.
func (m *Manager) TempDiff() float64 {
	m.th.Temps(m.temps)
	if m.pipe.IntQueue().Mode() == 1 {
		return m.temps[m.intQ0] - m.temps[m.intQ1]
	}
	return m.temps[m.intQ1] - m.temps[m.intQ0]
}
