// Package power implements per-event energy accounting in place of Wattch.
// The issue-queue circuit model uses the paper's own Table 3 energies
// verbatim ("Issue energy by component"); other structures use calibrated
// per-event energies that stand in for Wattch's capacitance models, chosen
// so that each floorplan variant's target resource approaches the 358 K
// threshold under peak utilization (the paper's §3.2 scaling methodology).
//
// Accounting granularity follows the paper: energy is attributed to
// individual floorplan blocks — per issue-queue *half*, per ALU copy, per
// register-file copy — because intra-resource asymmetry is the effect
// under study. Aggregate (whole-resource) accounting is exactly the
// modelling shortcut the paper criticizes in prior work.
package power

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/stats"
)

// Table 3: issue energy by component, in joules. Names mirror the paper's
// rows; values are the paper's, converted from nJ.
const (
	// CompactEntryToEntry is charged per entry moved during compaction
	// (driving the entry's contents down the entry-to-entry data wires).
	CompactEntryToEntry = 0.0123e-9
	// CompactMuxSelect is charged per entry that drives its mux-select
	// lines across the width of the queue during compaction.
	CompactMuxSelect = 0.0023e-9
	// LongCompaction is charged per entry that must drive its contents
	// across the length of the queue when compaction wraps around in the
	// toggled (mid-queue head) configuration.
	LongCompaction = 0.0687e-9
	// CounterStage1 and CounterStage2 are the per-entry invalid-count
	// adder/mux stages; charged per entry per compaction cycle unless
	// clock-gated.
	CounterStage1 = 0.0011e-9
	CounterStage2 = 0.0021e-9
	// ClockGatingLogic is charged for the entire queue every cycle.
	ClockGatingLogic = 0.0015e-9
	// TagBroadcastMatch is charged per destination-tag broadcast across
	// the queue (wakeup).
	TagBroadcastMatch = 0.0450e-9
	// PayloadRAMAccess is charged per instruction inserted or issued
	// (payload RAM write at dispatch, read at issue).
	PayloadRAMAccess = 0.0675e-9
	// SelectAccess is charged per instruction selected for issue.
	SelectAccess = 0.0051e-9
)

// Calibrated per-event energies (joules) for the structures outside the
// paper's Table 3 — stand-ins for Wattch's array and wire models at 90 nm,
// 1.2 V. See DESIGN.md for the calibration procedure.
const (
	ICacheAccess = 0.36e-9 // per fetch-line access
	DCacheAccess = 0.30e-9 // per load/store L1D access
	// L2Access is the energy of one unified-L2 access. The L2 sits
	// outside the modelled die area (the paper's Figure 5 floorplans
	// cover the core only, as does HotSpot's EV6 plan), so this energy is
	// not deposited into any thermal block; it is exported for energy
	// reporting and tooling.
	L2Access    = 1.20e-9
	BpredAccess = 0.045e-9
	RenameOp    = 0.11e-9 // per instruction through map logic
	LSQOp       = 0.14e-9 // per LSQ insert/search
	IntALUOp    = 0.52e-9 // per integer ALU operation
	IntMulOp    = 0.95e-9
	FPAddOp     = 0.60e-9
	FPMulOp     = 1.05e-9
	RFRead      = 0.17e-9 // per read port access on one copy
	RFWrite     = 0.21e-9 // per write into one copy
	TLBAccess   = 0.03e-9
)

// Idle power densities (W/m²): the clock grid and leakage floor charged to
// every block every cycle. Aggressive clock gating (the paper uses
// Wattch's) makes the active-idle density modest; a globally stalled core
// gates harder but still leaks.
const (
	IdleActiveDensity = 2.1e5 // W/m² while the core runs
	IdleStallDensity  = 0.9e5 // W/m² during a global cooling stall
)

// Meter accumulates per-block energy over a sensor interval and converts
// it to average power for the thermal model. It owns the event-count stats
// bus: hot-loop structures register slots on Bus() and increment them; the
// counts×constants→joules conversion happens here, once per Drain.
type Meter struct {
	plan     *floorplan.Plan
	cycleSec float64
	scale    float64 // energy multiplier (DVFS voltage scaling)

	bus    *stats.Bus
	energy []float64 // joules deposited this interval, per block
	total  []float64 // lifetime joules per block
	area   []float64 // cached block areas

	// TotalCycles counts cycles drained through the meter.
	TotalCycles uint64
}

// NewMeter builds a meter for the floorplan.
func NewMeter(plan *floorplan.Plan, cfg *config.Config) *Meter {
	m := &Meter{
		plan:     plan,
		cycleSec: cfg.CycleSeconds(),
		scale:    1,
		bus:      stats.NewBus(plan.NumBlocks()),
		energy:   make([]float64, plan.NumBlocks()),
		total:    make([]float64, plan.NumBlocks()),
		area:     make([]float64, plan.NumBlocks()),
	}
	for i, b := range plan.Blocks {
		m.area[i] = b.Area()
	}
	return m
}

// Bus returns the meter's event-count bus. Structures register slots
// against floorplan block indices and increment them in the hot loop;
// Drain folds the pending counts into the interval energy.
func (m *Meter) Bus() *stats.Bus { return m.bus }

// Deposit adds joules of dynamic energy to block i for the current
// interval, scaled by the current energy scale.
func (m *Meter) Deposit(i int, joules float64) {
	m.energy[i] += joules * m.scale
}

// SetEnergyScale multiplies all subsequent deposits and idle energy; the
// simulator models DVFS voltage scaling with it (dynamic energy ∝ V²).
// Scale 1 is nominal.
func (m *Meter) SetEnergyScale(f float64) {
	if f <= 0 {
		panic("power: non-positive energy scale")
	}
	m.scale = f
}

// Index exposes the floorplan's name-to-block mapping so hot paths can
// cache block indices instead of doing string lookups per event.
func (m *Meter) Index(name string) int { return m.plan.Index(name) }

// Drain closes the current interval, which covered activeCycles of normal
// operation and stallCycles of global cooling stall. It writes the
// per-block average power in watts into dst (allocated if nil), resets the
// interval accumulators, and returns dst. Idle/leakage power is added per
// block according to its area and the active/stall split.
func (m *Meter) Drain(activeCycles, stallCycles int, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(m.energy))
	}
	if len(dst) != len(m.energy) {
		panic(fmt.Sprintf("power: Drain dst length %d, want %d", len(dst), len(m.energy)))
	}
	cycles := activeCycles + stallCycles
	if cycles <= 0 {
		panic("power: Drain over empty interval")
	}
	// Fold the interval's event counts into per-block joules first. The
	// energy scale is constant within an interval (the simulator sets it
	// before running the interval), so applying it here is exact, not an
	// approximation of per-event scaling.
	m.bus.Drain(m.energy, m.scale)
	seconds := float64(cycles) * m.cycleSec
	aSec := float64(activeCycles) * m.cycleSec
	sSec := float64(stallCycles) * m.cycleSec
	for i := range dst {
		idle := m.scale * m.area[i] * (IdleActiveDensity*aSec + IdleStallDensity*sSec)
		joules := m.energy[i] + idle
		dst[i] = joules / seconds
		m.total[i] += joules
		m.energy[i] = 0
	}
	m.TotalCycles += uint64(cycles)
	return dst
}

// TotalEnergy returns the lifetime energy of block i in joules (only
// intervals already drained are included).
func (m *Meter) TotalEnergy(i int) float64 { return m.total[i] }

// TotalChipEnergy returns the lifetime energy of the whole die in joules.
func (m *Meter) TotalChipEnergy() float64 {
	sum := 0.0
	for _, j := range m.total {
		sum += j
	}
	return sum
}

// AvgChipPower returns the lifetime average chip power in watts.
func (m *Meter) AvgChipPower() float64 {
	if m.TotalCycles == 0 {
		return 0
	}
	return m.TotalChipEnergy() / (float64(m.TotalCycles) * m.cycleSec)
}

// Reset clears all accumulators, including the bus counters.
func (m *Meter) Reset() {
	for i := range m.energy {
		m.energy[i] = 0
		m.total[i] = 0
	}
	m.bus.Reset()
	m.TotalCycles = 0
}

// Table3Row describes one row of the paper's Table 3 for reporting.
type Table3Row struct {
	Component string
	Unit      string
	NanoJ     float64
}

// Table3 returns the paper's issue-energy table, for cmd/experiments and
// the Table 3 bench.
func Table3() []Table3Row {
	return []Table3Row{
		{"Compact (entry-to-entry)", "per entry", CompactEntryToEntry * 1e9},
		{"Compact (Mux select)", "per entry", CompactMuxSelect * 1e9},
		{"Long Compaction", "per entry", LongCompaction * 1e9},
		{"Counter Stage 1", "per entry", CounterStage1 * 1e9},
		{"Counter Stage 2", "per entry", CounterStage2 * 1e9},
		{"Clock Gating Logic", "entire queue", ClockGatingLogic * 1e9},
		{"Tag Broadcast/Match", "per broadcast", TagBroadcastMatch * 1e9},
		{"Payload RAM Access", "per inst.", PayloadRAMAccess * 1e9},
		{"Select Access", "per inst.", SelectAccess * 1e9},
	}
}
