package power

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
)

func newMeter() (*Meter, *floorplan.Plan, *config.Config) {
	cfg := config.Default()
	plan := floorplan.Build(config.PlanIQConstrained)
	return NewMeter(plan, cfg), plan, cfg
}

func TestTable3MatchesPaper(t *testing.T) {
	want := map[string]float64{
		"Compact (entry-to-entry)": 0.0123,
		"Compact (Mux select)":     0.0023,
		"Long Compaction":          0.0687,
		"Counter Stage 1":          0.0011,
		"Counter Stage 2":          0.0021,
		"Clock Gating Logic":       0.0015,
		"Tag Broadcast/Match":      0.0450,
		"Payload RAM Access":       0.0675,
		"Select Access":            0.0051,
	}
	rows := Table3()
	if len(rows) != len(want) {
		t.Fatalf("Table3 has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.Component]
		if !ok {
			t.Errorf("unexpected component %q", r.Component)
			continue
		}
		if math.Abs(r.NanoJ-w) > 1e-9 {
			t.Errorf("%s = %v nJ, want %v", r.Component, r.NanoJ, w)
		}
	}
}

func TestLongCompactionCostsMoreThanShort(t *testing.T) {
	// The activity-toggled queue pays a premium for wrap-around moves;
	// the model must keep that disadvantage (paper §3.1).
	if LongCompaction <= CompactEntryToEntry {
		t.Fatal("long compaction not more expensive than entry-to-entry")
	}
}

func TestDepositAndDrain(t *testing.T) {
	m, plan, cfg := newMeter()
	iq0 := plan.Index(floorplan.IntQ0)
	const joules = 1e-6
	m.Deposit(iq0, joules)
	p := m.Drain(1000, 0, nil)
	seconds := 1000 * cfg.CycleSeconds()
	idle := plan.Blocks[iq0].Area() * IdleActiveDensity * seconds
	want := (joules + idle) / seconds
	if math.Abs(p[iq0]-want)/want > 1e-12 {
		t.Fatalf("power %v, want %v", p[iq0], want)
	}
	// Accumulators reset after drain: a second drain has idle power only.
	p2 := m.Drain(1000, 0, p)
	wantIdle := idle / seconds
	if math.Abs(p2[iq0]-wantIdle)/wantIdle > 1e-12 {
		t.Fatalf("second drain %v, want idle-only %v", p2[iq0], wantIdle)
	}
}

func TestStallCyclesUseLowerDensity(t *testing.T) {
	m, _, _ := newMeter()
	active := m.Drain(1000, 0, nil)
	m2, _, _ := newMeter()
	stalled := m2.Drain(0, 1000, nil)
	for i := range active {
		if stalled[i] >= active[i] {
			t.Fatalf("block %d: stall power %v >= active power %v", i, stalled[i], active[i])
		}
		if stalled[i] <= 0 {
			t.Fatalf("block %d: stall power %v not positive (leakage must remain)", i, stalled[i])
		}
	}
}

func TestMixedInterval(t *testing.T) {
	m, plan, cfg := newMeter()
	p := m.Drain(600, 400, nil)
	sec := 1000 * cfg.CycleSeconds()
	area := plan.Blocks[0].Area()
	want := area * (IdleActiveDensity*600*cfg.CycleSeconds() + IdleStallDensity*400*cfg.CycleSeconds()) / sec
	if math.Abs(p[0]-want)/want > 1e-12 {
		t.Fatalf("mixed interval power %v, want %v", p[0], want)
	}
}

func TestLifetimeTotals(t *testing.T) {
	m, plan, _ := newMeter()
	idx := plan.Index(floorplan.IntExec(0))
	m.Deposit(idx, 2e-6)
	m.Drain(100, 0, nil)
	m.Deposit(idx, 3e-6)
	m.Drain(100, 0, nil)
	got := m.TotalEnergy(idx)
	if got < 5e-6 {
		t.Fatalf("total energy %v, want >= 5e-6 (deposits) plus idle", got)
	}
	if m.TotalCycles != 200 {
		t.Fatalf("TotalCycles %d", m.TotalCycles)
	}
	if m.TotalChipEnergy() <= got {
		t.Fatal("chip energy should exceed single block")
	}
	if m.AvgChipPower() <= 0 {
		t.Fatal("avg chip power not positive")
	}
}

func TestAvgChipPowerInPlausibleRange(t *testing.T) {
	// Idle power alone should land the chip in a plausible band for a
	// 90nm high-performance core (tens of watts once dynamic energy is
	// added; idle floor must be meaningfully smaller).
	m, plan, _ := newMeter()
	m.Drain(10000, 0, nil)
	idleW := m.AvgChipPower()
	if idleW < 3 || idleW > 40 {
		t.Fatalf("idle chip power %v W implausible", idleW)
	}
	_ = plan
}

func TestResetClears(t *testing.T) {
	m, _, _ := newMeter()
	m.Deposit(0, 1e-6)
	m.Drain(10, 0, nil)
	m.Reset()
	if m.TotalChipEnergy() != 0 || m.TotalCycles != 0 {
		t.Fatal("Reset incomplete")
	}
	if m.AvgChipPower() != 0 {
		t.Fatal("AvgChipPower after reset")
	}
}

func TestDrainPanics(t *testing.T) {
	m, _, _ := newMeter()
	for name, f := range map[string]func(){
		"empty interval": func() { m.Drain(0, 0, nil) },
		"bad dst":        func() { m.Drain(10, 0, make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIndexPassthrough(t *testing.T) {
	m, plan, _ := newMeter()
	if m.Index(floorplan.IntQ1) != plan.Index(floorplan.IntQ1) {
		t.Fatal("Index mismatch")
	}
}

func TestDrainReusesDst(t *testing.T) {
	m, _, _ := newMeter()
	dst := make([]float64, len(m.energy))
	out := m.Drain(10, 0, dst)
	if &out[0] != &dst[0] {
		t.Fatal("Drain reallocated dst")
	}
}
