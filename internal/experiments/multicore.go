package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"repro/internal/config"
	"repro/internal/multicore"
	"repro/internal/runner"
)

// MulticoreSpec describes the multi-core scheduling experiment: the same
// task queue drained by each scheduling policy on the same tiled die, so
// the policies are compared on identical work. This extends the paper's
// single-core evaluation by one layer: where the paper balances
// utilization within a pipeline, this balances tasks across a shared
// thermal field (Hung et al.'s coolest-first, Chrobak et al.'s
// band-triggered migration, against temperature-blind baselines).
type MulticoreSpec struct {
	Cores  int
	Cycles int64
	Warmup int
	Seed   uint64
	// Schedulers lists the policies to compare; empty = all four.
	Schedulers []config.Scheduler
	// Parallelism fans each run's cores out, exactly like Spec's field;
	// results are bit-identical at every setting.
	Parallelism int
}

// MulticoreCell is one scheduler's completed run.
type MulticoreCell struct {
	Scheduler config.Scheduler
	R         *multicore.Result
}

// MulticoreMatrix holds the scheduler comparison.
type MulticoreMatrix struct {
	Spec  MulticoreSpec
	Cells []MulticoreCell
}

// Multicore returns the multi-core scheduling experiment spec.
func Multicore(cycles int64, cores int, schedulers ...config.Scheduler) MulticoreSpec {
	return MulticoreSpec{Cores: cores, Cycles: cycles, Schedulers: schedulers}
}

// params maps the spec onto one scheduler's run parameters. Everything
// except the scheduler is shared, so every policy sees the same die, the
// same task queue, and the same per-core rng streams.
func (s MulticoreSpec) params(sch config.Scheduler) multicore.Params {
	return multicore.Params{
		Cores:       s.Cores,
		Scheduler:   sch,
		Cycles:      s.Cycles,
		Warmup:      s.Warmup,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	}
}

// RunMulticore drains the same task queue under each scheduler in spec,
// reporting per-run progress to w (may be nil). Runs execute serially in
// spec order — each one already fans its cores out over
// spec.Parallelism workers — and the matrix is bit-identical at every
// worker count.
func RunMulticore(ctx context.Context, spec MulticoreSpec, w io.Writer) (*MulticoreMatrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Cycles <= 0 {
		spec.Cycles = DefaultCycles
	}
	scheds := spec.Schedulers
	if len(scheds) == 0 {
		scheds = config.Schedulers()
	}
	m := &MulticoreMatrix{Spec: spec}
	prog := runner.NewProgress(w, len(scheds))
	for _, sch := range scheds {
		r, err := multicore.Run(ctx, spec.params(sch))
		if err != nil {
			return nil, fmt.Errorf("experiments: multicore/%v: %w", sch, err)
		}
		m.Cells = append(m.Cells, MulticoreCell{Scheduler: sch, R: r})
		prog.Step("multicore %-18s peak=%.2fK stalls=%d IPC=%.3f",
			sch, r.PeakTempK, r.CoolingStalls, r.AggIPC)
	}
	return m, nil
}

// Get returns the named scheduler's result, or nil.
func (m *MulticoreMatrix) Get(sch config.Scheduler) *multicore.Result {
	for _, c := range m.Cells {
		if c.Scheduler == sch {
			return c.R
		}
	}
	return nil
}

// Report renders the scheduler comparison: one row per policy over
// identical work, then the headline peak-temperature gap between the
// thermal-aware assignment policy and the blind rotation it replaces.
func (m *MulticoreMatrix) Report() string {
	var b strings.Builder
	if len(m.Cells) == 0 {
		return "multicore: no runs\n"
	}
	first := m.Cells[0].R
	fmt.Fprintf(&b, "Multi-core scheduling on a shared %dx%d die (%d cores, %d tasks, DTM budget %.1f K)\n",
		first.Rows, first.Cols, first.Cores, first.TasksTotal, m.Spec.params(0).Normalized().MaxTempK)
	b.WriteString("  scheduler           peakK    avgK  stalls  stallMcyc  migr  makespanMcyc  aggIPC  done\n")
	for _, c := range m.Cells {
		r := c.R
		done := fmt.Sprintf("%d/%d", r.TasksCompleted, r.TasksTotal)
		fmt.Fprintf(&b, "  %-18s %7.2f %7.2f  %6d  %9.2f  %4d  %12.2f  %6.3f  %s\n",
			r.Scheduler, r.PeakTempK, r.AvgTempK, r.CoolingStalls,
			float64(r.StallCycles)/1e6, r.Migrations, float64(r.Cycles)/1e6, r.AggIPC, done)
	}
	if rr, cf := m.Get(config.SchedRoundRobin), m.Get(config.SchedCoolestFirst); rr != nil && cf != nil {
		fmt.Fprintf(&b, "  coolest-first peak %.2f K vs round-robin %.2f K: %.2f K cooler\n",
			cf.PeakTempK, rr.PeakTempK, rr.PeakTempK-cf.PeakTempK)
	}
	return b.String()
}
