package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/config"
)

// testCycles keeps experiment tests fast; thermal behaviour is validated
// at full length by the benchmarks and EXPERIMENTS.md runs.
const testCycles = 150_000

func TestAllBenchmarksCount(t *testing.T) {
	if got := len(AllBenchmarks()); got != 22 {
		t.Fatalf("%d benchmarks, want 22", got)
	}
}

func TestSpecConstructors(t *testing.T) {
	cases := []struct {
		spec     Spec
		plan     config.FloorplanVariant
		variants int
		benches  int
	}{
		{Fig6(0), config.PlanIQConstrained, 2, 0},
		{Table4(0), config.PlanIQConstrained, 2, 3},
		{Fig7(0), config.PlanALUConstrained, 3, 0},
		{Table5(0), config.PlanALUConstrained, 3, 2},
		{Fig8(0), config.PlanRFConstrained, 4, 0},
		{Table6(0), config.PlanRFConstrained, 4, 1},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if c.spec.Plan != c.plan {
			t.Errorf("%s: plan %v", c.spec.ID, c.spec.Plan)
		}
		if len(c.spec.Variants) != c.variants {
			t.Errorf("%s: %d variants", c.spec.ID, len(c.spec.Variants))
		}
		if len(c.spec.Benchmarks) != c.benches {
			t.Errorf("%s: %d benchmarks", c.spec.ID, len(c.spec.Benchmarks))
		}
		if seen[c.spec.ID] {
			t.Errorf("duplicate id %s", c.spec.ID)
		}
		seen[c.spec.ID] = true
	}
}

func TestFig8VariantsMatchPaper(t *testing.T) {
	s := Fig8(0)
	want := map[string]config.Techniques{
		"fgt+priority":  {RFMap: config.MapPriority, RFTurnoff: true},
		"fgt+balanced":  {RFMap: config.MapBalanced, RFTurnoff: true},
		"balanced-only": {RFMap: config.MapBalanced},
		"priority-only": {RFMap: config.MapPriority},
	}
	for _, v := range s.Variants {
		w, ok := want[v.Name]
		if !ok {
			t.Errorf("unexpected variant %q", v.Name)
			continue
		}
		if v.Tech != w {
			t.Errorf("%s: techniques %+v, want %+v", v.Name, v.Tech, w)
		}
	}
}

func fast(s Spec) Spec {
	s.Warmup = 50_000
	return s
}

func TestRunMatrixAndReports(t *testing.T) {
	spec := fast(Fig6(testCycles, "eon", "art"))
	var progress bytes.Buffer
	m, err := Run(context.Background(), spec, &progress)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 4 {
		t.Fatalf("%d cells", len(m.Cells))
	}
	if !strings.Contains(progress.String(), "fig6") {
		t.Error("no progress output")
	}
	if r := m.Get("eon", "base"); r == nil || r.IPC <= 0 {
		t.Fatal("missing eon/base result")
	}
	if m.Get("eon", "nope") != nil || m.Get("nope", "base") != nil {
		t.Fatal("Get invented a result")
	}
	bs := m.Benchmarks()
	if len(bs) != 2 || bs[0] != "art" || bs[1] != "eon" {
		t.Fatalf("benchmarks %v", bs)
	}

	rep := m.FigureReport()
	for _, want := range []string{"eon", "art", "activity-toggling", "speedup"} {
		if !strings.Contains(rep, want) {
			t.Errorf("figure report missing %q:\n%s", want, rep)
		}
	}
}

func TestTableReports(t *testing.T) {
	m4, err := Run(context.Background(), fast(Table4(testCycles)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := m4.Table4Report()
	for _, want := range []string{"art", "facerec", "mesa", "tail", "head"} {
		if !strings.Contains(rep, want) {
			t.Errorf("table4 missing %q", want)
		}
	}

	m5, err := Run(context.Background(), fast(Table5(testCycles)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep5 := m5.Table5Report()
	for _, want := range []string{"parser", "perlbmk", "round-robin", "ALU0", "ALU5"} {
		if !strings.Contains(rep5, want) {
			t.Errorf("table5 missing %q", want)
		}
	}

	m6, err := Run(context.Background(), fast(Table6(testCycles)), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep6 := m6.Table6Report()
	for _, want := range []string{"eon", "fgt+priority", "copy0", "turnoffs"} {
		if !strings.Contains(rep6, want) {
			t.Errorf("table6 missing %q", want)
		}
	}
}

func TestSpeedupMath(t *testing.T) {
	m, err := Run(context.Background(), fast(Fig6(testCycles, "eon")), nil)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Get("eon", "base").IPC
	tog := m.Get("eon", "activity-toggling").IPC
	want := tog/base - 1
	if got := m.Speedup("eon", "activity-toggling", "base"); got != want {
		t.Fatalf("speedup %v, want %v", got, want)
	}
	if got := m.Speedup("eon", "activity-toggling", "missing"); got != 0 {
		t.Fatalf("missing variant speedup %v", got)
	}
	mean, n := m.MeanSpeedup("activity-toggling", "base", false)
	if n != 1 || mean != want {
		t.Fatalf("mean %v n=%d", mean, n)
	}
}

func TestTemporalAndCombinedSpecs(t *testing.T) {
	tp := Temporal(0)
	if len(tp.Variants) != 4 || tp.Plan != config.PlanIQConstrained {
		t.Fatalf("temporal spec %+v", tp)
	}
	cb := Combined(0, config.PlanALUConstrained)
	if len(cb.Variants) != 2 || cb.Plan != config.PlanALUConstrained {
		t.Fatalf("combined spec %+v", cb)
	}
	if cb.Variants[1].Tech.ALU != config.ALUFineGrain || !cb.Variants[1].Tech.RFTurnoff {
		t.Fatal("combined variant missing techniques")
	}
	m, err := Run(context.Background(), fast(Temporal(testCycles, "eon")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("eon", "dvfs") == nil {
		t.Fatal("dvfs cell missing")
	}
}

func TestRunRejectsUnknownBenchmark(t *testing.T) {
	if _, err := Run(context.Background(), fast(Fig6(testCycles, "doom3")), nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestDefaultCyclesApplied(t *testing.T) {
	spec := Fig6(0, "eon")
	if spec.Cycles != 0 {
		t.Fatal("constructor should leave zero for default")
	}
	// Run applies the default; use a tiny override to avoid a long test.
	spec.Cycles = testCycles
	spec.Warmup = 50_000
	if _, err := Run(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarChart(t *testing.T) {
	m, err := Run(context.Background(), fast(Fig6(testCycles, "eon")), nil)
	if err != nil {
		t.Fatal(err)
	}
	chart := m.BarChart(40)
	for _, want := range []string{"eon", "legend:", "base", "activity-toggling", "|"} {
		if !strings.Contains(chart, want) {
			t.Errorf("bar chart missing %q:\n%s", want, chart)
		}
	}
	if m2 := (&Matrix{Spec: Fig6(0)}); !strings.Contains(m2.BarChart(0), "no data") {
		t.Error("empty matrix chart")
	}
}
