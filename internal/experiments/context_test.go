package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

// TestRunContextCancelAborts cancels a matrix mid-run and checks the
// error surfaces and no partial matrix is returned, at both the serial
// and the parallel setting.
func TestRunContextCancelAborts(t *testing.T) {
	for _, p := range []int{1, 4} {
		spec := Fig6(DefaultCycles) // all 22 benchmarks: long enough to outlive the cancel
		spec.Warmup = 10_000
		spec.Parallelism = p
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var progress bytes.Buffer
		go func() {
			time.Sleep(50 * time.Millisecond)
			cancel()
			close(done)
		}()
		m, err := Run(ctx, spec, &progress)
		<-done
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: err = %v, want context.Canceled", p, err)
		}
		if m != nil {
			t.Fatalf("parallelism %d: partial matrix returned alongside cancellation", p)
		}
	}
}
