package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/config"
)

// mcSpec is the short multicore comparison used by the golden and
// determinism tests: long enough for every policy to place tasks on a
// warmed die, short enough for the race detector.
func mcSpec(parallelism int) MulticoreSpec {
	s := Multicore(1_200_000, 4)
	s.Warmup = 20_000
	s.Seed = 7
	s.Parallelism = parallelism
	return s
}

// TestGoldenMulticoreShort pins the scheduler-comparison report bytes
// for a fixed short run. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGoldenMulticoreShort -update
func TestGoldenMulticoreShort(t *testing.T) {
	m, err := RunMulticore(context.Background(), mcSpec(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Report()

	golden := filepath.Join("testdata", "multicore_short.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("report output drifted from %s (regenerate with -update if the change is intended)\n--- want ---\n%s--- got ---\n%s",
			golden, want, got)
	}
}

// TestMulticoreMatrixParallelDeterminism mirrors TestParallelDeterminism
// for the multicore family: the comparison report must be byte-identical
// at every worker count.
func TestMulticoreMatrixParallelDeterminism(t *testing.T) {
	serial, err := RunMulticore(context.Background(), mcSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMulticore(context.Background(), mcSpec(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := serial.Report(), par.Report(); a != b {
		t.Errorf("parallel multicore matrix diverged from serial\n--- serial ---\n%s--- parallel ---\n%s", a, b)
	}
}

// TestMulticoreMatrixShape: default spec compares all four policies on
// identical work, and the report carries the headline gap line.
func TestMulticoreMatrixShape(t *testing.T) {
	spec := mcSpec(0)
	spec.Schedulers = []config.Scheduler{config.SchedRoundRobin, config.SchedCoolestFirst}
	m, err := RunMulticore(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(m.Cells))
	}
	rr, cf := m.Get(config.SchedRoundRobin), m.Get(config.SchedCoolestFirst)
	if rr == nil || cf == nil {
		t.Fatal("missing scheduler results")
	}
	if rr.TasksTotal != cf.TasksTotal || rr.Seed != cf.Seed {
		t.Fatal("schedulers did not see identical work")
	}
	if m.Get(config.SchedRandom) != nil {
		t.Fatal("Get returned a result for a policy that did not run")
	}
}
