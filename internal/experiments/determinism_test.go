package experiments

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// detSpec is the determinism workload: a 3-benchmark Fig6 subset at
// short cycles, long enough for thermal events (toggles, stalls) to
// fire on gzip so the compared fields are not trivially zero.
func detSpec(parallelism int) Spec {
	s := Fig6(testCycles, "eon", "gzip", "art")
	s.Warmup = 50_000
	s.Parallelism = parallelism
	return s
}

// TestParallelDeterminism is the determinism contract of the parallel
// matrix runner: a Parallelism=8 run must be bit-identical to the
// legacy serial run in every Result field the reports consume, and two
// parallel runs must be bit-identical to each other.
func TestParallelDeterminism(t *testing.T) {
	var progress bytes.Buffer
	serial, err := Run(context.Background(), detSpec(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), detSpec(8), &progress)
	if err != nil {
		t.Fatal(err)
	}
	par2, err := Run(context.Background(), detSpec(8), nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(par.Cells) != len(serial.Cells) {
		t.Fatalf("parallel run has %d cells, serial %d", len(par.Cells), len(serial.Cells))
	}
	events := 0
	for i, sc := range serial.Cells {
		pc := par.Cells[i]
		if sc.Benchmark != pc.Benchmark || sc.Variant != pc.Variant {
			t.Fatalf("cell %d: parallel ordering (%s,%s) != serial (%s,%s)",
				i, pc.Benchmark, pc.Variant, sc.Benchmark, sc.Variant)
		}
		a, b := sc.R, pc.R
		id := fmt.Sprintf("%s/%s", sc.Benchmark, sc.Variant)
		// Every scalar field the reports consume, compared bit-for-bit.
		if a.IPC != b.IPC {
			t.Errorf("%s: IPC %v != %v", id, b.IPC, a.IPC)
		}
		if a.Committed != b.Committed || a.Cycles != b.Cycles ||
			a.ActiveCycles != b.ActiveCycles || a.StallCycles != b.StallCycles {
			t.Errorf("%s: cycle accounting diverged", id)
		}
		if a.Stalls != b.Stalls || a.IntToggles != b.IntToggles || a.FPToggles != b.FPToggles {
			t.Errorf("%s: stall/toggle counts diverged", id)
		}
		if a.ALUTurnoffs != b.ALUTurnoffs || a.RFCopyTurnoffs != b.RFCopyTurnoffs ||
			!reflect.DeepEqual(a.RFTurnoffsPerCopy, b.RFTurnoffsPerCopy) {
			t.Errorf("%s: turnoff counts diverged", id)
		}
		if a.DVFSEngagements != b.DVFSEngagements || a.SlowCycles != b.SlowCycles ||
			a.AvgChipPowerW != b.AvgChipPowerW {
			t.Errorf("%s: DVFS/power accounting diverged", id)
		}
		for _, blk := range a.Blocks() {
			aAvg, _ := a.AvgTemp(blk)
			bAvg, _ := b.AvgTemp(blk)
			if aAvg != bAvg {
				t.Errorf("%s: %s avg temp %v != %v", id, blk, bAvg, aAvg)
			}
			aPeak, _ := a.PeakTemp(blk)
			bPeak, _ := b.PeakTemp(blk)
			if aPeak != bPeak {
				t.Errorf("%s: %s peak temp %v != %v", id, blk, bPeak, aPeak)
			}
		}
		events += int(a.Stalls + a.IntToggles + a.FPToggles)
	}
	if events == 0 {
		t.Error("no thermal events fired anywhere: determinism comparison is vacuous")
	}

	// Two parallel runs must match each other exactly (full deep compare,
	// unexported temperature vectors included).
	if !reflect.DeepEqual(par.Cells, par2.Cells) {
		t.Error("two Parallelism=8 runs are not bit-identical")
	}

	// Report rendering sees identical bytes.
	if s, p := serial.FigureReport(), par.FigureReport(); s != p {
		t.Errorf("FigureReport differs between serial and parallel:\n--- serial ---\n%s--- parallel ---\n%s", s, p)
	}

	// Progress lines are serialized: one well-formed line per cell, each
	// [done/total] counter used exactly once.
	lines := strings.Split(strings.TrimRight(progress.String(), "\n"), "\n")
	if len(lines) != len(par.Cells) {
		t.Fatalf("%d progress lines for %d cells", len(lines), len(par.Cells))
	}
	seen := map[int]bool{}
	for _, l := range lines {
		var done, total int
		if _, err := fmt.Sscanf(l, "[%d/%d]", &done, &total); err != nil {
			t.Fatalf("malformed progress line %q: %v", l, err)
		}
		if total != len(par.Cells) || seen[done] {
			t.Fatalf("bad or repeated counter in %q", l)
		}
		seen[done] = true
		if !strings.Contains(l, "fig6") {
			t.Fatalf("progress line %q lost its payload", l)
		}
	}
}

// TestParallelErrorAborts checks the early-cancel path end to end: a
// matrix containing an unknown benchmark must fail at any parallelism
// and name the offending cell.
func TestParallelErrorAborts(t *testing.T) {
	for _, p := range []int{1, 8} {
		spec := fast(Fig6(testCycles, "eon", "doom3", "gzip"))
		spec.Parallelism = p
		m, err := Run(context.Background(), spec, nil)
		if err == nil {
			t.Fatalf("parallelism %d: unknown benchmark accepted", p)
		}
		if m != nil {
			t.Fatalf("parallelism %d: partial matrix returned alongside error", p)
		}
		if !strings.Contains(err.Error(), "doom3") {
			t.Errorf("parallelism %d: error %q does not name the bad cell", p, err)
		}
	}
}
