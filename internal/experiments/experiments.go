// Package experiments regenerates every table and figure of the paper's
// evaluation (§4). Each experiment is a matrix of benchmark × technique
// runs on the floorplan variant the paper uses for it:
//
//	Table 4 / Figure 6 — issue-queue-constrained CPU, activity toggling
//	Table 5 / Figure 7 — ALU-constrained CPU, fine-grain turnoff and the
//	                     idealized round-robin bound
//	Table 6 / Figure 8 — register-file-constrained CPU, the four
//	                     mapping × turnoff combinations
//
// Tables 1-3 are static (mapping symmetry, processor parameters, circuit
// energies) and are printed from their source packages.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultCycles is the default per-run length. With the default thermal
// acceleration it covers roughly the same heating history as the paper's
// 500 M-instruction windows (~120 ms at 4.2 GHz).
const DefaultCycles = 4_000_000

// Variant names one technique configuration within an experiment.
type Variant struct {
	Name string
	Tech config.Techniques
}

// Spec describes one experiment's run matrix.
type Spec struct {
	ID         string
	Title      string
	Plan       config.FloorplanVariant
	Variants   []Variant
	Benchmarks []string // empty = all 22
	Cycles     int64
	// Warmup overrides the simulator's architectural warmup when
	// positive (tests use small values).
	Warmup int
	// Parallelism is the worker count for the matrix run: 0 = auto (one
	// worker per CPU, capped at the cell count), 1 = the legacy serial
	// path, n > 1 = at most n workers. Every cell builds its own
	// simulator and owns its result slot, so the assembled Matrix — cell
	// ordering included — is byte-identical at every setting; only
	// wall-clock time and progress-line interleaving change.
	Parallelism int
}

// Cell is one completed run.
type Cell struct {
	Benchmark string
	Variant   string
	R         *sim.Result
}

// Matrix holds all cells of one experiment, indexable by (benchmark,
// variant).
type Matrix struct {
	Spec  Spec
	Cells []Cell

	// Lookup index for Get, built lazily from Cells (reports call Get
	// once per table cell, so a linear scan per lookup is O(cells²)
	// across a report). Rebuilt automatically if Cells has grown since
	// the last lookup.
	mu     sync.Mutex
	idx    map[cellKey]int
	idxLen int
}

type cellKey struct{ bench, variant string }

// Get returns the result for (benchmark, variant), or nil. Lookups go
// through an index map built once, not a per-call scan of Cells.
func (m *Matrix) Get(bench, variant string) *sim.Result {
	m.mu.Lock()
	if m.idx == nil || m.idxLen != len(m.Cells) {
		m.idx = make(map[cellKey]int, len(m.Cells))
		for i, c := range m.Cells {
			k := cellKey{c.Benchmark, c.Variant}
			if _, dup := m.idx[k]; !dup { // first cell wins, as the scan did
				m.idx[k] = i
			}
		}
		m.idxLen = len(m.Cells)
	}
	i, ok := m.idx[cellKey{bench, variant}]
	m.mu.Unlock()
	if !ok {
		return nil
	}
	return m.Cells[i].R
}

// Benchmarks returns the benchmark list the matrix ran (sorted).
func (m *Matrix) Benchmarks() []string {
	seen := map[string]bool{}
	var out []string
	for _, c := range m.Cells {
		if !seen[c.Benchmark] {
			seen[c.Benchmark] = true
			out = append(out, c.Benchmark)
		}
	}
	sort.Strings(out)
	return out
}

// AllBenchmarks returns the 22 SPEC2000 benchmark names.
func AllBenchmarks() []string {
	ps := trace.Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Run executes the experiment matrix on spec.Parallelism workers,
// reporting progress to w (may be nil). Every cell constructs its own
// simulator and writes into a slot pre-assigned from the serial
// iteration order, so Matrix.Cells is byte-identical to a serial run at
// any parallelism; progress lines are serialized but arrive in
// completion order. The first cell-construction error cancels the
// outstanding jobs and is returned after in-flight cells drain.
//
// Cancelling ctx aborts the matrix: pending cells are skipped, each
// in-flight cell stops at its next sensor interval, and Run returns
// ctx's error. A never-cancelled ctx leaves the output bit-identical to
// the pre-context behaviour.
func Run(ctx context.Context, spec Spec, w io.Writer) (*Matrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Cycles <= 0 {
		spec.Cycles = DefaultCycles
	}
	benches := spec.Benchmarks
	if len(benches) == 0 {
		benches = AllBenchmarks()
	}
	nv := len(spec.Variants)
	total := len(benches) * nv
	m := &Matrix{Spec: spec}
	if total == 0 {
		return m, nil
	}
	m.Cells = make([]Cell, total)
	prog := runner.NewProgress(w, total)
	err := runner.Run(ctx, spec.Parallelism, total, func(i int) error {
		b, v := benches[i/nv], spec.Variants[i%nv]
		cfg := config.Default()
		cfg.Plan = spec.Plan
		cfg.Techniques = v.Tech
		s, err := sim.NewByName(cfg, b)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", b, v.Name, err)
		}
		s.WarmupInstructions = spec.Warmup
		r, err := s.RunCyclesContext(ctx, spec.Cycles)
		if err != nil {
			return fmt.Errorf("experiments: %s/%s: %w", b, v.Name, err)
		}
		m.Cells[i] = Cell{Benchmark: b, Variant: v.Name, R: r}
		prog.Step("%s %-9s %-24s IPC=%.3f stalls=%d", spec.ID, b, v.Name, r.IPC, r.Stalls)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ByID returns the named experiment's Spec — the registry the service
// batch API and cmd/experiments share. benchmarks applies only to the
// figure-style experiments; the tables pin the paper's benchmark sets.
func ByID(id string, cycles int64, benchmarks ...string) (Spec, error) {
	switch id {
	case "fig6":
		return Fig6(cycles, benchmarks...), nil
	case "fig7":
		return Fig7(cycles, benchmarks...), nil
	case "fig8":
		return Fig8(cycles, benchmarks...), nil
	case "table4":
		return Table4(cycles), nil
	case "table5":
		return Table5(cycles), nil
	case "table6":
		return Table6(cycles), nil
	case "temporal":
		return Temporal(cycles, benchmarks...), nil
	}
	return Spec{}, fmt.Errorf("experiments: unknown experiment %q (valid: fig6 fig7 fig8 table4 table5 table6 temporal)", id)
}

// --- Experiment specs -----------------------------------------------------

// Fig6 is the issue-queue experiment: base vs activity toggling.
func Fig6(cycles int64, benchmarks ...string) Spec {
	return Spec{
		ID:    "fig6",
		Title: "Issue-queue constrained IPC with and without activity-toggling (Figure 6)",
		Plan:  config.PlanIQConstrained,
		Variants: []Variant{
			{Name: "base", Tech: config.Techniques{}},
			{Name: "activity-toggling", Tech: config.Techniques{IQ: config.IQToggle}},
		},
		Benchmarks: benchmarks,
		Cycles:     cycles,
	}
}

// Table4 is the issue-queue half-temperature table (art, facerec, mesa).
func Table4(cycles int64) Spec {
	s := Fig6(cycles, "art", "facerec", "mesa")
	s.ID = "table4"
	s.Title = "Average temperature of issue-queue halves (Table 4)"
	return s
}

// Fig7 is the ALU experiment: base vs fine-grain turnoff vs round-robin.
func Fig7(cycles int64, benchmarks ...string) Spec {
	return Spec{
		ID:    "fig7",
		Title: "ALU-constrained IPC (Figure 7)",
		Plan:  config.PlanALUConstrained,
		Variants: []Variant{
			{Name: "base", Tech: config.Techniques{}},
			{Name: "fine-grain-turnoff", Tech: config.Techniques{ALU: config.ALUFineGrain}},
			{Name: "round-robin", Tech: config.Techniques{ALU: config.ALURoundRobin}},
		},
		Benchmarks: benchmarks,
		Cycles:     cycles,
	}
}

// Table5 is the per-ALU temperature table (parser, perlbmk).
func Table5(cycles int64) Spec {
	s := Fig7(cycles, "parser", "perlbmk")
	s.ID = "table5"
	s.Title = "Average integer ALU temperatures (Table 5)"
	return s
}

// Fig8 is the register-file experiment: the four mapping × turnoff
// combinations.
func Fig8(cycles int64, benchmarks ...string) Spec {
	return Spec{
		ID:    "fig8",
		Title: "Register-file constrained IPC (Figure 8)",
		Plan:  config.PlanRFConstrained,
		Variants: []Variant{
			{Name: "fgt+priority", Tech: config.Techniques{RFMap: config.MapPriority, RFTurnoff: true}},
			{Name: "fgt+balanced", Tech: config.Techniques{RFMap: config.MapBalanced, RFTurnoff: true}},
			{Name: "balanced-only", Tech: config.Techniques{RFMap: config.MapBalanced}},
			{Name: "priority-only", Tech: config.Techniques{RFMap: config.MapPriority}},
		},
		Benchmarks: benchmarks,
		Cycles:     cycles,
	}
}

// Temporal compares the temporal fallbacks the paper discusses in §5 —
// Pentium-4-style stop-go versus DVFS — with and without activity
// toggling, on the issue-queue-constrained machine. This extends the
// paper's evaluation: it quantifies how much of the temporal technique's
// use each spatial technique removes.
func Temporal(cycles int64, benchmarks ...string) Spec {
	return Spec{
		ID:    "temporal",
		Title: "Temporal fallbacks (stop-go vs DVFS) with and without activity toggling",
		Plan:  config.PlanIQConstrained,
		Variants: []Variant{
			{Name: "stop-go", Tech: config.Techniques{Temporal: config.TemporalStopGo}},
			{Name: "dvfs", Tech: config.Techniques{Temporal: config.TemporalDVFS}},
			{Name: "stop-go+toggling", Tech: config.Techniques{IQ: config.IQToggle}},
			{Name: "dvfs+toggling", Tech: config.Techniques{IQ: config.IQToggle, Temporal: config.TemporalDVFS}},
		},
		Benchmarks: benchmarks,
		Cycles:     cycles,
	}
}

// Combined applies all three spatial techniques at once on each floorplan
// variant — the composition the paper says "would be possible" but does
// not evaluate (§4, first paragraph).
func Combined(cycles int64, plan config.FloorplanVariant, benchmarks ...string) Spec {
	all := config.Techniques{
		IQ:        config.IQToggle,
		ALU:       config.ALUFineGrain,
		RFMap:     config.MapPriority,
		RFTurnoff: true,
	}
	return Spec{
		ID:    "combined",
		Title: fmt.Sprintf("All three techniques combined (%v)", plan),
		Plan:  plan,
		Variants: []Variant{
			{Name: "base", Tech: config.Techniques{}},
			{Name: "all-techniques", Tech: all},
		},
		Benchmarks: benchmarks,
		Cycles:     cycles,
	}
}

// Table6 is the register-file copy-temperature table (eon).
func Table6(cycles int64) Spec {
	s := Fig8(cycles, "eon")
	s.ID = "table6"
	s.Title = "Average register-file copy temperature for eon (Table 6)"
	return s
}

// --- Reports ---------------------------------------------------------------

// Speedup returns variant-a-over-variant-b IPC speedup for a benchmark.
func (m *Matrix) Speedup(bench, a, b string) float64 {
	ra, rb := m.Get(bench, a), m.Get(bench, b)
	if ra == nil || rb == nil || rb.IPC == 0 {
		return 0
	}
	return ra.IPC/rb.IPC - 1
}

// MeanSpeedup averages the a-over-b speedup across benchmarks; if
// constrainedOnly is set, only benchmarks where either variant stalled are
// included. Returns the mean and the benchmark count.
func (m *Matrix) MeanSpeedup(a, b string, constrainedOnly bool) (float64, int) {
	sum, n := 0.0, 0
	for _, bench := range m.Benchmarks() {
		if constrainedOnly {
			ra, rb := m.Get(bench, a), m.Get(bench, b)
			if ra == nil || rb == nil || (ra.Stalls == 0 && rb.Stalls == 0 &&
				ra.ALUTurnoffs == 0 && rb.ALUTurnoffs == 0 &&
				ra.RFCopyTurnoffs == 0 && rb.RFCopyTurnoffs == 0) {
				continue
			}
		}
		sum += m.Speedup(bench, a, b)
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// FigureReport renders a Figure 6/7/8-style IPC table plus speedup
// summary lines between the first variant pairs.
func (m *Matrix) FigureReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", m.Spec.Title)
	fmt.Fprintf(&sb, "%-10s", "benchmark")
	for _, v := range m.Spec.Variants {
		fmt.Fprintf(&sb, " %18s", v.Name)
	}
	fmt.Fprintf(&sb, " %12s\n", "events")
	for _, b := range m.Benchmarks() {
		fmt.Fprintf(&sb, "%-10s", b)
		var ev string
		for _, v := range m.Spec.Variants {
			r := m.Get(b, v.Name)
			if r == nil {
				fmt.Fprintf(&sb, " %18s", "-")
				continue
			}
			fmt.Fprintf(&sb, " %12.3f (%2ds)", r.IPC, r.Stalls)
			switch {
			case r.IntToggles+r.FPToggles > 0:
				ev = fmt.Sprintf("%d toggles", r.IntToggles+r.FPToggles)
			case r.ALUTurnoffs > 0:
				ev = fmt.Sprintf("%d turnoffs", r.ALUTurnoffs)
			case r.RFCopyTurnoffs > 0:
				ev = fmt.Sprintf("%d rf-offs", r.RFCopyTurnoffs)
			}
		}
		fmt.Fprintf(&sb, " %12s\n", ev)
	}
	// Pairwise speedups of every other variant over the baseline: the
	// variant literally named "base" when present (Figures 6 and 7),
	// else the last variant (Figure 8's priority-only, matching the
	// paper's comparison order).
	baseName := m.Spec.Variants[len(m.Spec.Variants)-1].Name
	for _, v := range m.Spec.Variants {
		if v.Name == "base" {
			baseName = v.Name
		}
	}
	for _, v := range m.Spec.Variants {
		if v.Name == baseName {
			continue
		}
		all, _ := m.MeanSpeedup(v.Name, baseName, false)
		con, n := m.MeanSpeedup(v.Name, baseName, true)
		fmt.Fprintf(&sb, "speedup %s over %s: %+.1f%% (all), %+.1f%% (constrained, n=%d)\n",
			v.Name, baseName, all*100, con*100, n)
	}
	return sb.String()
}

// UtilizationReport renders the per-cell resource-utilization telemetry
// derived from the event-count stats bus: issue-queue half occupancy,
// per-ALU grant shares, and per-RF-copy read shares. It is the detail
// view behind `experiments -detail` — the imbalances it shows are the
// mechanism the paper's techniques attack (Tables 4-6).
func (m *Matrix) UtilizationReport() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — utilization detail\n", m.Spec.Title)
	fmt.Fprintf(&sb, "%-10s %-20s %17s %17s  %-28s %s\n",
		"benchmark", "technique", "IQ occ (t/h)", "FPQ occ (t/h)", "ALU grant shares", "RF read shares")
	shareList := func(s []float64) string {
		parts := make([]string, len(s))
		for i, v := range s {
			parts[i] = fmt.Sprintf("%.2f", v)
		}
		return strings.Join(parts, " ")
	}
	for _, b := range m.Benchmarks() {
		for _, v := range m.Spec.Variants {
			r := m.Get(b, v.Name)
			if r == nil {
				continue
			}
			u := r.Utilization
			fmt.Fprintf(&sb, "%-10s %-20s %8.2f/%8.2f %8.2f/%8.2f  %-28s %s\n",
				b, v.Name,
				u.IntQHalfOcc[1], u.IntQHalfOcc[0],
				u.FPQHalfOcc[1], u.FPQHalfOcc[0],
				shareList(u.ALUGrantShare), shareList(u.RFReadShare))
		}
	}
	return sb.String()
}

// Report renders the matrix in the presentation the paper uses for its
// experiment ID: the table renderers for table4/5/6, the figure report
// for everything else.
func (m *Matrix) Report() string {
	switch m.Spec.ID {
	case "table4":
		return m.Table4Report()
	case "table5":
		return m.Table5Report()
	case "table6":
		return m.Table6Report()
	}
	return m.FigureReport()
}

// avgTemp reads a block's average temperature for a report table; a block
// the result does not carry renders as 0 rather than aborting the report.
func avgTemp(r *sim.Result, block string) float64 {
	t, _ := r.AvgTemp(block)
	return t
}

// Table4Report renders the paper's Table 4: average temperatures of the
// integer issue-queue halves under base and toggling.
func (m *Matrix) Table4Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", m.Spec.Title)
	fmt.Fprintf(&sb, "%-10s %-20s %9s %9s\n", "benchmark", "technique", "tail (K)", "head (K)")
	for _, b := range m.Benchmarks() {
		for _, v := range []string{"activity-toggling", "base"} {
			r := m.Get(b, v)
			if r == nil {
				continue
			}
			// Physical half 1 is the tail region in the conventional
			// configuration.
			fmt.Fprintf(&sb, "%-10s %-20s %9.1f %9.1f\n",
				b, v, avgTemp(r, "IntQ1"), avgTemp(r, "IntQ0"))
		}
	}
	return sb.String()
}

// Table5Report renders the paper's Table 5: IPC and average per-ALU
// temperatures for each technique.
func (m *Matrix) Table5Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", m.Spec.Title)
	fmt.Fprintf(&sb, "%-10s %-20s %5s", "benchmark", "technique", "IPC")
	for u := 0; u < 6; u++ {
		fmt.Fprintf(&sb, "  ALU%d(K)", u)
	}
	fmt.Fprintln(&sb)
	order := []string{"round-robin", "fine-grain-turnoff", "base"}
	for _, b := range m.Benchmarks() {
		for _, v := range order {
			r := m.Get(b, v)
			if r == nil {
				continue
			}
			fmt.Fprintf(&sb, "%-10s %-20s %5.1f", b, v, r.IPC)
			for u := 0; u < 6; u++ {
				fmt.Fprintf(&sb, "  %7.1f", avgTemp(r, fmt.Sprintf("IntExec%d", u)))
			}
			fmt.Fprintln(&sb)
		}
	}
	return sb.String()
}

// Table6Report renders the paper's Table 6: IPC, register-file copy
// temperatures and turnoff counts per configuration.
func (m *Matrix) Table6Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", m.Spec.Title)
	fmt.Fprintf(&sb, "%-10s %-16s %5s %10s %10s %10s\n",
		"benchmark", "technique", "IPC", "copy0 (K)", "copy1 (K)", "turnoffs")
	for _, b := range m.Benchmarks() {
		for _, v := range m.Spec.Variants {
			r := m.Get(b, v.Name)
			if r == nil {
				continue
			}
			off := uint64(0)
			for _, n := range r.RFTurnoffsPerCopy {
				off += n
			}
			fmt.Fprintf(&sb, "%-10s %-16s %5.1f %10.1f %10.1f %10d\n",
				b, v.Name, r.IPC, avgTemp(r, "IntReg0"), avgTemp(r, "IntReg1"), off)
		}
	}
	return sb.String()
}

// BarChart renders the matrix as a horizontal bar chart, one group of bars
// per benchmark (one bar per variant), mimicking the paper's Figure 6/7/8
// presentation. width is the maximum bar length in characters.
func (m *Matrix) BarChart(width int) string {
	if width <= 0 {
		width = 50
	}
	maxIPC := 0.0
	for _, c := range m.Cells {
		if c.R.IPC > maxIPC {
			maxIPC = c.R.IPC
		}
	}
	if maxIPC == 0 {
		return "(no data)\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\nIPC, 0 to %.2f\n", m.Spec.Title, maxIPC)
	marks := []byte{'#', '=', '-', '.'}
	for _, b := range m.Benchmarks() {
		fmt.Fprintf(&sb, "%s\n", b)
		for vi, v := range m.Spec.Variants {
			r := m.Get(b, v.Name)
			if r == nil {
				continue
			}
			n := int(r.IPC / maxIPC * float64(width))
			mark := marks[vi%len(marks)]
			fmt.Fprintf(&sb, "  %-18s |%s %.2f\n", v.Name, strings.Repeat(string(mark), n), r.IPC)
		}
	}
	fmt.Fprintf(&sb, "legend:")
	for vi, v := range m.Spec.Variants {
		fmt.Fprintf(&sb, " %c=%s", marks[vi%len(marks)], v.Name)
	}
	fmt.Fprintln(&sb)
	return sb.String()
}
