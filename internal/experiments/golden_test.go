package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// TestGoldenFig6Short pins the paper-facing report bytes for a fixed
// short Fig6 run. Any PR that shifts IPC, stall counts, speedups or
// issue-queue-half temperatures — deliberately or not — fails here and
// must regenerate the golden file with:
//
//	go test ./internal/experiments -run TestGoldenFig6Short -update
//
// The run uses the default (auto) parallelism: the determinism tests
// guarantee the bytes are identical at every worker count, so this also
// exercises the parallel path on multi-core CI.
func TestGoldenFig6Short(t *testing.T) {
	spec := fast(Fig6(testCycles, "art", "eon", "gzip"))
	m, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both report styles over the same matrix: the figure table (IPC,
	// stalls, speedups) and the Table-4-style half-temperature table.
	got := m.FigureReport() + "\n" + m.Table4Report()

	golden := filepath.Join("testdata", "fig6_short.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("report output drifted from %s (regenerate with -update if the change is intended)\n--- want ---\n%s--- got ---\n%s",
			golden, want, got)
	}
}
