package sim

// Interval-stepping seam: the multicore layer (internal/multicore) maps N
// machines onto one shared floorplan and one shared thermal network, so
// it owns the thermal integration loop that run() owns in the single-core
// case. These methods expose run()'s building blocks — warmup, one sensor
// interval of execution or stall, external-temperature sensing + DTM, and
// the result snapshot — without changing the single-core protocol.
//
// Contract: each StepInterval covers exactly SensorIntervalCycles of
// wall-clock time whether the core executes or stalls, so lockstep
// callers can advance every core by one interval and integrate the shared
// field once. Cooling stalls are therefore quantized to whole sensor
// intervals (the single-core path services the sub-interval remainder
// exactly; at the default configuration that rounds a 32.8-interval stall
// to 33). The DVFS divided clock is not supported through this seam —
// a divided interval would break the uniform-wall-time contract.

// WarmupArch runs the architectural warmup (caches and branch predictor)
// exactly as run() does. It consumes no simulated wall-clock cycles and
// leaves the measurement counters clean.
func (s *Simulator) WarmupArch() {
	warm := s.WarmupInstructions
	if warm <= 0 {
		warm = DefaultWarmup
	}
	s.Pipe.Warmup(warm)
}

// StepInterval advances the machine one sensor interval and returns the
// drained per-block power vector (watts; the slice is reused by the next
// call). When stalled, the pipeline is frozen and the interval deposits
// stall (leakage) power only, accounted as stall cycles — the seam
// analogue of coolingStall.
func (s *Simulator) StepInterval(stalled bool) []float64 {
	interval := s.Cfg.SensorIntervalCycles
	if stalled {
		s.globalCycles += int64(interval)
		s.stallCycles += int64(interval)
		return s.Meter.Drain(0, interval, s.powBuf)
	}
	s.runInterval(interval)
	return s.Meter.Drain(interval, 0, s.powBuf)
}

// SenseExternal overwrites the machine's thermal state with externally
// computed block temperatures — the core's slice of the shared multicore
// field — records a temperature sample, and runs the dynamic thermal
// manager against it, returning the cooling-stall cycles the manager
// demands (0 = none). The machine's own thermal network is never advanced
// by the multicore layer; it serves as the sensor mirror the per-core
// manager reads.
func (s *Simulator) SenseExternal(temps []float64) int {
	s.Th.SetTemps(temps)
	s.sampleTemps()
	return s.Mgr.Control()
}

// Cycles returns the wall-clock cycles accumulated so far, stalls
// included.
func (s *Simulator) Cycles() int64 { return s.globalCycles }

// Snapshot returns the run summary accumulated so far — the same Result
// run() returns at its end. It may be called repeatedly.
func (s *Simulator) Snapshot() *Result { return s.result() }
