// JSON serialization of Result. The wire form carries everything the
// reports consume — including the per-block temperature vectors that are
// unexported in Result — with stable snake_case keys in declaration
// order, so marshalling the same Result always yields the same bytes.
// internal/service stores these bytes in its content-addressed cache and
// serves them back verbatim, which is what makes "second request returns
// byte-identical JSON" hold.
package sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/config"
	"repro/internal/pipeline"
)

// resultJSON is the wire mirror of Result.
type resultJSON struct {
	Benchmark  string                  `json:"benchmark"`
	Plan       config.FloorplanVariant `json:"plan"`
	Techniques config.Techniques       `json:"techniques"`

	Committed    uint64  `json:"committed"`
	Cycles       int64   `json:"cycles"`
	ActiveCycles int64   `json:"active_cycles"`
	StallCycles  int64   `json:"stall_cycles"`
	IPC          float64 `json:"ipc"`

	Stalls            uint64   `json:"stalls"`
	IntToggles        uint64   `json:"int_toggles"`
	FPToggles         uint64   `json:"fp_toggles"`
	ALUTurnoffs       uint64   `json:"alu_turnoffs"`
	RFCopyTurnoffs    uint64   `json:"rf_copy_turnoffs"`
	RFTurnoffsPerCopy []uint64 `json:"rf_turnoffs_per_copy"`
	DVFSEngagements   uint64   `json:"dvfs_engagements"`
	SlowCycles        int64    `json:"slow_cycles"`
	AvgChipPowerW     float64  `json:"avg_chip_power_w"`

	Utilization pipeline.Utilization `json:"utilization"`

	Blocks   []string  `json:"blocks"`
	AvgTempK []float64 `json:"avg_temp_k"`
	PeakTemp []float64 `json:"peak_temp_k"`
}

// MarshalJSON encodes the result, temperature vectors included.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Benchmark:         r.Benchmark,
		Plan:              r.Plan,
		Techniques:        r.Techniques,
		Committed:         r.Committed,
		Cycles:            r.Cycles,
		ActiveCycles:      r.ActiveCycles,
		StallCycles:       r.StallCycles,
		IPC:               r.IPC,
		Stalls:            r.Stalls,
		IntToggles:        r.IntToggles,
		FPToggles:         r.FPToggles,
		ALUTurnoffs:       r.ALUTurnoffs,
		RFCopyTurnoffs:    r.RFCopyTurnoffs,
		RFTurnoffsPerCopy: r.RFTurnoffsPerCopy,
		DVFSEngagements:   r.DVFSEngagements,
		SlowCycles:        r.SlowCycles,
		AvgChipPowerW:     r.AvgChipPowerW,
		Utilization:       r.Utilization,
		Blocks:            r.blockNames,
		AvgTempK:          r.avgTemp,
		PeakTemp:          r.peakTemp,
	})
}

// UnmarshalJSON decodes a result, restoring the unexported temperature
// vectors; the three block-indexed slices must agree in length.
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if len(w.Blocks) != len(w.AvgTempK) || len(w.Blocks) != len(w.PeakTemp) {
		return fmt.Errorf("sim: result JSON has %d blocks but %d avg / %d peak temperatures",
			len(w.Blocks), len(w.AvgTempK), len(w.PeakTemp))
	}
	*r = Result{
		Benchmark:         w.Benchmark,
		Plan:              w.Plan,
		Techniques:        w.Techniques,
		Committed:         w.Committed,
		Cycles:            w.Cycles,
		ActiveCycles:      w.ActiveCycles,
		StallCycles:       w.StallCycles,
		IPC:               w.IPC,
		Stalls:            w.Stalls,
		IntToggles:        w.IntToggles,
		FPToggles:         w.FPToggles,
		ALUTurnoffs:       w.ALUTurnoffs,
		RFCopyTurnoffs:    w.RFCopyTurnoffs,
		RFTurnoffsPerCopy: w.RFTurnoffsPerCopy,
		DVFSEngagements:   w.DVFSEngagements,
		SlowCycles:        w.SlowCycles,
		AvgChipPowerW:     w.AvgChipPowerW,
		Utilization:       w.Utilization,
		blockNames:        w.Blocks,
		avgTemp:           w.AvgTempK,
		peakTemp:          w.PeakTemp,
	}
	r.blockIdx = make(map[string]int, len(w.Blocks))
	for i, n := range w.Blocks {
		r.blockIdx[n] = i
	}
	return nil
}
