package sim

import (
	"testing"

	"repro/internal/config"
)

func seamSim(t *testing.T) *Simulator {
	t.Helper()
	cfg := config.Default()
	s, err := NewByName(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	s.WarmupInstructions = 10_000
	return s
}

// TestSeamIntervalAccounting: an active interval advances the wall clock
// by one sensor interval and commits instructions; a stalled interval
// advances the clock without touching the pipeline.
func TestSeamIntervalAccounting(t *testing.T) {
	s := seamSim(t)
	s.WarmupArch()
	interval := int64(s.Cfg.SensorIntervalCycles)

	pow := s.StepInterval(false)
	if len(pow) != s.Plan.NumBlocks() {
		t.Fatalf("power vector has %d entries for %d blocks", len(pow), s.Plan.NumBlocks())
	}
	if s.Cycles() != interval {
		t.Fatalf("cycles %d after one interval, want %d", s.Cycles(), interval)
	}
	committed := s.Pipe.Committed
	if committed == 0 {
		t.Fatal("active interval committed nothing")
	}
	active := 0.0
	for _, p := range pow {
		active += p
	}

	pow = s.StepInterval(true)
	if s.Cycles() != 2*interval {
		t.Fatalf("cycles %d after stalled interval, want %d", s.Cycles(), 2*interval)
	}
	if s.Pipe.Committed != committed {
		t.Fatal("stalled interval advanced the pipeline")
	}
	stall := 0.0
	for _, p := range pow {
		stall += p
	}
	if stall <= 0 || stall >= active {
		t.Fatalf("stall power %.3f W not in (0, active %.3f W)", stall, active)
	}

	r := s.Snapshot()
	if r.Cycles != 2*interval || r.StallCycles != interval || r.ActiveCycles != interval {
		t.Fatalf("snapshot cycles %d/%d/%d, want %d/%d/%d",
			r.Cycles, r.ActiveCycles, r.StallCycles, 2*interval, interval, interval)
	}
	if r.Committed != committed {
		t.Fatalf("snapshot committed %d, want %d", r.Committed, committed)
	}
}

// TestSeamSenseExternal: the DTM reads exactly the temperatures the
// external field provides — cool temps demand no stall, temps at the
// critical threshold demand a full cooling stall, and every sample feeds
// the result's per-block average/peak statistics.
func TestSeamSenseExternal(t *testing.T) {
	s := seamSim(t)
	s.WarmupArch()
	s.StepInterval(false)

	cool := make([]float64, s.Plan.NumBlocks())
	for i := range cool {
		cool[i] = s.Cfg.AmbientK
	}
	if stall := s.SenseExternal(cool); stall != 0 {
		t.Fatalf("ambient temperatures demanded a %d-cycle stall", stall)
	}

	hot := make([]float64, s.Plan.NumBlocks())
	for i := range hot {
		hot[i] = s.Cfg.AmbientK
	}
	hotIdx := 3
	hot[hotIdx] = s.Cfg.MaxTempK
	stalls := s.Mgr.Stalls
	if stall := s.SenseExternal(hot); stall != s.Cfg.CoolingCycles() {
		t.Fatalf("critical temperature demanded %d cycles, want %d", stall, s.Cfg.CoolingCycles())
	}
	if s.Mgr.Stalls != stalls+1 {
		t.Fatal("overheat did not count a stall event")
	}

	r := s.Snapshot()
	name := s.Plan.Blocks[hotIdx].Name
	peak, ok := r.PeakTemp(name)
	if !ok || peak != s.Cfg.MaxTempK {
		t.Fatalf("peak temp of %s = %.2f (%v), want %.2f", name, peak, ok, s.Cfg.MaxTempK)
	}
	avg, _ := r.AvgTemp(name)
	want := (s.Cfg.AmbientK + s.Cfg.MaxTempK) / 2
	if avg != want {
		t.Fatalf("avg temp of %s = %.4f, want %.4f", name, avg, want)
	}
}

// TestSeamDeterministic: two identically seeded machines driven through
// the same seam sequence stay bit-identical.
func TestSeamDeterministic(t *testing.T) {
	a, b := seamSim(t), seamSim(t)
	a.WarmupArch()
	b.WarmupArch()
	for i := 0; i < 5; i++ {
		pa := a.StepInterval(i%4 == 3)
		pb := b.StepInterval(i%4 == 3)
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("interval %d block %d: %v vs %v", i, j, pa[j], pb[j])
			}
		}
	}
	ra, rb := a.Snapshot(), b.Snapshot()
	if ra.Committed != rb.Committed || ra.Cycles != rb.Cycles || ra.IPC != rb.IPC {
		t.Fatalf("seam runs diverged: %+v vs %+v", ra, rb)
	}
}
