// Package sim wires the full system together: workload generator →
// out-of-order pipeline → power meter → thermal network → dynamic thermal
// manager. One Simulator reproduces one cell of the paper's evaluation
// matrix: a benchmark × technique × floorplan run.
//
// The run protocol mirrors the paper's methodology (§3): architectural
// warmup (caches and branch predictor, standing in for SimPoint
// fast-forward with L2 warmup), a thermal warm start from the steady state
// of the measured power (standard HotSpot practice), then execution with
// temperature sensing every sensor interval. Overheats that the
// configured techniques cannot contain trigger a full 10 ms cooling
// stall, during which only the stall (leakage) power heats the die.
package sim

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// Simulator is one fully wired machine.
type Simulator struct {
	Cfg   *config.Config
	Plan  *floorplan.Plan
	Meter *power.Meter
	Pipe  *pipeline.Pipeline
	Th    *thermal.Model
	Mgr   *core.Manager

	prof trace.Profile

	// WarmupInstructions overrides DefaultWarmup when positive; tests use
	// small values to stay fast.
	WarmupInstructions int

	globalCycles int64
	stallCycles  int64
	slowCycles   int64 // extra wall-clock cycles spent at the DVFS divided clock

	tempSum     []float64
	tempPeak    []float64
	tempSamples int
	powBuf      []float64
	tempBuf     []float64
}

// New builds a simulator for the profile under the configuration. The
// floorplan variant comes from cfg.Plan.
func New(cfg *config.Config, prof trace.Profile) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	plan := floorplan.Build(cfg.Plan)
	meter := power.NewMeter(plan, cfg)
	pipe, err := pipeline.New(cfg, plan, meter, trace.NewGenerator(prof))
	if err != nil {
		return nil, err
	}
	th, err := thermal.New(plan, cfg)
	if err != nil {
		return nil, err
	}
	mgr := core.New(cfg, plan, pipe, th)
	return &Simulator{
		Cfg:      cfg,
		Plan:     plan,
		Meter:    meter,
		Pipe:     pipe,
		Th:       th,
		Mgr:      mgr,
		prof:     prof,
		tempSum:  make([]float64, plan.NumBlocks()),
		tempPeak: make([]float64, plan.NumBlocks()),
		powBuf:   make([]float64, plan.NumBlocks()),
		tempBuf:  make([]float64, plan.NumBlocks()),
	}, nil
}

// NewByName builds a simulator for the named benchmark.
func NewByName(cfg *config.Config, benchmark string) (*Simulator, error) {
	prof, err := trace.ByName(benchmark)
	if err != nil {
		return nil, err
	}
	return New(cfg, prof)
}

// Result summarizes one run.
type Result struct {
	Benchmark  string
	Plan       config.FloorplanVariant
	Techniques config.Techniques

	Committed    uint64
	Cycles       int64 // total, including cooling stalls
	ActiveCycles int64
	StallCycles  int64
	IPC          float64

	Stalls         uint64
	IntToggles     uint64
	FPToggles      uint64
	ALUTurnoffs    uint64
	RFCopyTurnoffs uint64
	// RFTurnoffsPerCopy counts turnoff transitions per register-file copy
	// (Table 6 reports these for eon).
	RFTurnoffsPerCopy []uint64
	// DVFSEngagements and SlowCycles describe the TemporalDVFS fallback:
	// how often the divided clock engaged and how many extra wall-clock
	// cycles it cost.
	DVFSEngagements uint64
	SlowCycles      int64
	AvgChipPowerW   float64

	// Utilization is the pipeline's resource-usage telemetry, derived from
	// the same event counters that drive the energy model.
	Utilization pipeline.Utilization

	blockNames []string
	blockIdx   map[string]int
	avgTemp    []float64
	peakTemp   []float64
}

// Blocks returns the names of the blocks the result carries
// temperatures for, in floorplan order.
func (r *Result) Blocks() []string {
	out := make([]string, len(r.blockNames))
	copy(out, r.blockNames)
	return out
}

// AvgTemp returns the named block's temperature averaged over non-stalled
// sensor samples, matching the paper's "averaged across the execution time
// (non-overheated time)". The second return is false when the result
// carries no block of that name (e.g. a per-unit block on a different
// floorplan variant).
func (r *Result) AvgTemp(block string) (float64, bool) {
	i, ok := r.blockIdx[block]
	if !ok {
		return 0, false
	}
	return r.avgTemp[i], true
}

// PeakTemp returns the named block's maximum sampled temperature; the
// second return is false for an unknown block.
func (r *Result) PeakTemp(block string) (float64, bool) {
	i, ok := r.blockIdx[block]
	if !ok {
		return 0, false
	}
	return r.peakTemp[i], true
}

// HottestBlock returns the name and average temperature of the block with
// the highest average temperature.
func (r *Result) HottestBlock() (string, float64) {
	best, bt := "", 0.0
	for i, n := range r.blockNames {
		if r.avgTemp[i] > bt {
			best, bt = n, r.avgTemp[i]
		}
	}
	return best, bt
}

func (r *Result) String() string {
	return fmt.Sprintf("%s [%v, %v]: IPC %.2f (%d stalls, %d toggle, %d turnoff)",
		r.Benchmark, r.Plan, r.Techniques, r.IPC, r.Stalls,
		r.IntToggles+r.FPToggles, r.ALUTurnoffs+r.RFCopyTurnoffs)
}

// DefaultWarmup is the architectural warmup length in instructions.
const DefaultWarmup = 3_000_000

// thermalWarmIntervals is the number of sensor intervals executed before
// the thermal warm start, to measure representative power.
const thermalWarmIntervals = 4

// Run executes the benchmark for the given number of instructions
// (post-warmup) and returns the result.
func (s *Simulator) Run(instructions uint64) *Result {
	s.Pipe.SetFetchLimit(instructions)
	return s.run(func() bool { return s.Pipe.Fetched < instructions })
}

// RunCycles executes the benchmark for a fixed number of total cycles
// (including cooling stalls). Fixed-cycle runs give every configuration
// the same thermal window — the natural analogue of the paper's fixed
// 500 M-instruction windows, whose ~120 ms of heating history the default
// thermal acceleration packs into a few million cycles.
func (s *Simulator) RunCycles(cycles int64) *Result {
	return s.run(func() bool { return s.globalCycles < cycles })
}

// RunCyclesContext is RunCycles with cancellation: the run stops at the
// next sensor-interval boundary once ctx is done and returns ctx's
// error with a nil result. With a never-cancelled context it is
// bit-identical to RunCycles — the context is only consulted between
// intervals, never inside the simulated machine.
func (s *Simulator) RunCyclesContext(ctx context.Context, cycles int64) (*Result, error) {
	r := s.run(func() bool {
		return s.globalCycles < cycles && ctx.Err() == nil
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

func (s *Simulator) run(more func() bool) *Result {
	warm := s.WarmupInstructions
	if warm <= 0 {
		warm = DefaultWarmup
	}
	s.Pipe.Warmup(warm)

	interval := s.Cfg.SensorIntervalCycles
	secPerCycle := s.Cfg.ThermalSecondsPerCycle()

	// Phase 1: measure representative power over a few intervals, then
	// warm-start the thermal network at (or safely below) its steady
	// state for that power.
	warmPow := make([]float64, s.Plan.NumBlocks())
	warmed := 0
	for i := 0; i < thermalWarmIntervals && more(); i++ {
		s.runInterval(interval)
		s.Meter.Drain(interval, 0, s.powBuf)
		for b := range warmPow {
			warmPow[b] += s.powBuf[b]
		}
		warmed++
	}
	if warmed > 0 {
		for b := range warmPow {
			warmPow[b] /= float64(warmed)
		}
		s.warmStartBelowThreshold(warmPow)
	}

	// Phase 2: measured execution under dynamic thermal management.
	vScale := s.Cfg.DVFSVoltageScale * s.Cfg.DVFSVoltageScale
	for more() {
		div := 1
		if s.Mgr.DVFSActive() {
			// Scaled-clock mode: the interval takes DVFSDivider times as
			// long on the wall clock, and dynamic energy scales with V².
			div = s.Cfg.DVFSDivider
			s.Meter.SetEnergyScale(vScale)
		} else {
			s.Meter.SetEnergyScale(1)
		}
		s.runIntervalScaled(interval, div)
		pow := s.Meter.Drain(interval, 0, s.powBuf)
		if div > 1 {
			// The same energy spread over div times the wall time.
			for i := range pow {
				pow[i] /= float64(div)
			}
		}
		s.Th.Advance(pow, float64(interval*div)*secPerCycle)
		s.sampleTemps()

		if stall := s.Mgr.Control(); stall > 0 {
			s.coolingStall(stall)
		}
	}

	return s.result()
}

// runInterval advances the pipeline by n active cycles.
func (s *Simulator) runInterval(n int) {
	s.runIntervalScaled(n, 1)
}

// runIntervalScaled advances the pipeline by n core cycles that each take
// div nominal clock periods on the wall clock (DVFS); the extra wall time
// is accounted as slow cycles.
func (s *Simulator) runIntervalScaled(n, div int) {
	for i := 0; i < n; i++ {
		s.Pipe.Cycle()
	}
	s.globalCycles += int64(n * div)
	s.slowCycles += int64(n * (div - 1))
}

// coolingStall freezes the core for the given number of cycles, heating
// the die with stall power only, in sensor-interval chunks.
func (s *Simulator) coolingStall(cycles int) {
	interval := s.Cfg.SensorIntervalCycles
	secPerCycle := s.Cfg.ThermalSecondsPerCycle()
	for cycles > 0 {
		chunk := interval
		if cycles < chunk {
			chunk = cycles
		}
		pow := s.Meter.Drain(0, chunk, s.powBuf)
		s.Th.Advance(pow, float64(chunk)*secPerCycle)
		s.globalCycles += int64(chunk)
		s.stallCycles += int64(chunk)
		cycles -= chunk
	}
}

// warmStartBelowThreshold warm-starts the thermal network from the steady
// state of the measured power, scaled back toward ambient if that steady
// state would start any block at or above the critical threshold (the
// physical system can never have gotten there).
func (s *Simulator) warmStartBelowThreshold(pow []float64) {
	s.Th.WarmStart(pow)
	temps := s.Th.Temps(nil)
	maxT := 0.0
	for _, t := range temps {
		if t > maxT {
			maxT = t
		}
	}
	limit := s.Cfg.MaxTempK - 0.5
	if maxT < limit {
		return
	}
	scale := (limit - s.Cfg.AmbientK) / (maxT - s.Cfg.AmbientK)
	for i := range temps {
		temps[i] = s.Cfg.AmbientK + (temps[i]-s.Cfg.AmbientK)*scale
	}
	s.Th.SetTemps(temps)
}

// sampleTemps accumulates the per-block average (over non-stalled samples)
// and peak temperatures.
func (s *Simulator) sampleTemps() {
	temps := s.Th.Temps(s.tempBuf)
	for b, t := range temps {
		s.tempSum[b] += t
		if t > s.tempPeak[b] {
			s.tempPeak[b] = t
		}
	}
	s.tempSamples++
}

func (s *Simulator) result() *Result {
	names := make([]string, s.Plan.NumBlocks())
	idx := make(map[string]int, s.Plan.NumBlocks())
	for i, b := range s.Plan.Blocks {
		names[i] = b.Name
		idx[b.Name] = i
	}
	avg := make([]float64, len(s.tempSum))
	for i := range avg {
		if s.tempSamples > 0 {
			avg[i] = s.tempSum[i] / float64(s.tempSamples)
		}
	}
	peak := make([]float64, len(s.tempPeak))
	copy(peak, s.tempPeak)

	committed := s.Pipe.Committed
	ipc := 0.0
	if s.globalCycles > 0 {
		ipc = float64(committed) / float64(s.globalCycles)
	}
	perCopy := make([]uint64, len(s.Pipe.RegFile().TurnoffEvents))
	copy(perCopy, s.Pipe.RegFile().TurnoffEvents)

	return &Result{
		Benchmark:         s.prof.Name,
		Plan:              s.Cfg.Plan,
		Techniques:        s.Cfg.Techniques,
		Committed:         committed,
		Cycles:            s.globalCycles,
		ActiveCycles:      s.globalCycles - s.stallCycles,
		StallCycles:       s.stallCycles,
		IPC:               ipc,
		Stalls:            s.Mgr.Stalls,
		IntToggles:        s.Mgr.IntToggles,
		FPToggles:         s.Mgr.FPToggles,
		ALUTurnoffs:       s.Mgr.ALUTurnoffs,
		RFCopyTurnoffs:    s.Mgr.RFCopyTurnoffs,
		RFTurnoffsPerCopy: perCopy,
		DVFSEngagements:   s.Mgr.DVFSEngagements,
		SlowCycles:        s.slowCycles,
		AvgChipPowerW:     s.Meter.AvgChipPower(),
		Utilization:       s.Pipe.Utilization(),
		blockNames:        names,
		blockIdx:          idx,
		avgTemp:           avg,
		peakTemp:          peak,
	}
}
