package sim

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/config"
)

// TestConcurrentSimulators is the `go test -race` regression test for
// the shared-state audit behind the parallel matrix runner: simulator
// construction and execution must not share mutable state across
// goroutines (profile table, config defaults, floorplan build, power
// tables), and identically configured concurrent runs must come out
// bit-identical.
func TestConcurrentSimulators(t *testing.T) {
	const cycles = 60_000
	runs := []struct {
		bench string
		plan  config.FloorplanVariant
	}{
		{"gzip", config.PlanIQConstrained},
		{"gzip", config.PlanIQConstrained}, // twin of the first: must match exactly
		{"eon", config.PlanRFConstrained},
		{"perlbmk", config.PlanALUConstrained},
	}
	results := make([]*Result, len(runs))
	var wg sync.WaitGroup
	for i, rn := range runs {
		wg.Add(1)
		go func(i int, bench string, plan config.FloorplanVariant) {
			defer wg.Done()
			cfg := config.Default()
			cfg.Plan = plan
			s, err := NewByName(cfg, bench)
			if err != nil {
				t.Error(err)
				return
			}
			s.WarmupInstructions = 50_000
			results[i] = s.RunCycles(cycles)
		}(i, rn.bench, rn.plan)
	}
	wg.Wait()
	for i, r := range results {
		if r == nil {
			t.Fatalf("run %d produced no result", i)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("identically configured concurrent runs diverged:\n%v\n%v", results[0], results[1])
	}
	if results[2].Benchmark != "eon" || results[3].Benchmark != "perlbmk" {
		t.Error("results landed in the wrong slots")
	}
}
