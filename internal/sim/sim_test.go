package sim

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/trace"
)

func quickSim(t *testing.T, bench string, mod func(*config.Config)) *Simulator {
	t.Helper()
	cfg := config.Default()
	if mod != nil {
		mod(cfg)
	}
	s, err := NewByName(cfg, bench)
	if err != nil {
		t.Fatal(err)
	}
	s.WarmupInstructions = 50_000
	return s
}

func TestRunCyclesProducesResult(t *testing.T) {
	s := quickSim(t, "eon", nil)
	r := s.RunCycles(120_000)
	if r.Cycles < 120_000 {
		t.Fatalf("ran %d cycles", r.Cycles)
	}
	if r.Committed == 0 || r.IPC <= 0 {
		t.Fatalf("no work done: %+v", r)
	}
	if r.Benchmark != "eon" || r.Plan != config.PlanIQConstrained {
		t.Fatal("result metadata wrong")
	}
	if r.AvgChipPowerW <= 0 {
		t.Fatal("no chip power")
	}
}

func TestRunByInstructions(t *testing.T) {
	s := quickSim(t, "gzip", nil)
	r := s.Run(100_000)
	if r.Committed < 100_000 {
		t.Fatalf("committed %d, want >= 100000 fetched", r.Committed)
	}
}

func TestTemperaturesPhysical(t *testing.T) {
	s := quickSim(t, "eon", nil)
	r := s.RunCycles(200_000)
	cfg := config.Default()
	for _, b := range []string{floorplan.IntQ0, floorplan.IntQ1, floorplan.ICache, "IntExec0"} {
		avg, okA := r.AvgTemp(b)
		peak, okP := r.PeakTemp(b)
		if !okA || !okP {
			t.Fatalf("%s missing from result", b)
		}
		if avg < cfg.AmbientK || avg > cfg.MaxTempK+5 {
			t.Errorf("%s avg temp %v implausible", b, avg)
		}
		if peak < avg-0.001 {
			t.Errorf("%s peak %v below avg %v", b, peak, avg)
		}
	}
	name, temp := r.HottestBlock()
	if name == "" || temp <= cfg.AmbientK {
		t.Fatal("hottest block bogus")
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	if _, err := NewByName(config.Default(), "quake"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.Default()
	cfg.IssueWidth = 0
	if _, err := NewByName(cfg, "eon"); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() *Result {
		s := quickSim(t, "crafty", nil)
		return s.RunCycles(150_000)
	}
	a, b := run(), run()
	if a.Committed != b.Committed || a.Stalls != b.Stalls || a.IPC != b.IPC {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	ta, _ := a.AvgTemp(floorplan.IntQ1)
	tb, _ := b.AvgTemp(floorplan.IntQ1)
	if ta != tb {
		t.Fatal("temperatures differ between identical runs")
	}
}

func TestHotRunStallsAndCoolRunDoesNot(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal dynamics run")
	}
	// art never overheats the issue queue (paper Table 4); eon does.
	hot := quickSim(t, "eon", nil)
	hot.WarmupInstructions = 3_000_000
	rHot := hot.RunCycles(4_000_000)
	if rHot.Stalls == 0 {
		t.Error("eon should overheat the IQ-constrained floorplan")
	}

	cool := quickSim(t, "art", nil)
	cool.WarmupInstructions = 3_000_000
	rCool := cool.RunCycles(1_000_000)
	if rCool.Stalls != 0 {
		t.Error("art should never overheat")
	}
}

func TestTechniquesAppearInResult(t *testing.T) {
	s := quickSim(t, "eon", func(c *config.Config) {
		c.Techniques.IQ = config.IQToggle
		c.Techniques.ALU = config.ALUFineGrain
	})
	r := s.RunCycles(100_000)
	if r.Techniques.IQ != config.IQToggle || r.Techniques.ALU != config.ALUFineGrain {
		t.Fatal("techniques not recorded")
	}
	if !strings.Contains(r.String(), "eon") {
		t.Fatal("String() missing benchmark")
	}
}

func TestRFTurnoffsPerCopyExposed(t *testing.T) {
	s := quickSim(t, "eon", func(c *config.Config) {
		c.Plan = config.PlanRFConstrained
		c.Techniques.RFTurnoff = true
	})
	r := s.RunCycles(100_000)
	if len(r.RFTurnoffsPerCopy) != 2 {
		t.Fatalf("per-copy turnoffs %v", r.RFTurnoffsPerCopy)
	}
}

func TestStallAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal dynamics run")
	}
	s := quickSim(t, "perlbmk", nil)
	s.WarmupInstructions = 3_000_000
	r := s.RunCycles(3_000_000)
	if r.ActiveCycles+r.StallCycles != r.Cycles {
		t.Fatalf("cycle accounting: %d + %d != %d", r.ActiveCycles, r.StallCycles, r.Cycles)
	}
	if r.Stalls > 0 && r.StallCycles == 0 {
		t.Fatal("stalls without stall cycles")
	}
	wantPerStall := int64(config.Default().CoolingCycles())
	if r.Stalls > 0 && r.StallCycles != int64(r.Stalls)*wantPerStall {
		t.Fatalf("stall cycles %d for %d stalls (want %d each)", r.StallCycles, r.Stalls, wantPerStall)
	}
}

func TestDVFSReplacesStalls(t *testing.T) {
	if testing.Short() {
		t.Skip("thermal dynamics run")
	}
	stopgo := quickSim(t, "perlbmk", nil)
	stopgo.WarmupInstructions = 3_000_000
	rs := stopgo.RunCycles(3_000_000)

	dvfs := quickSim(t, "perlbmk", func(c *config.Config) {
		c.Techniques.Temporal = config.TemporalDVFS
	})
	dvfs.WarmupInstructions = 3_000_000
	rd := dvfs.RunCycles(3_000_000)

	if rs.Stalls == 0 {
		t.Skip("calibration did not stall perlbmk in this window")
	}
	if rd.Stalls != 0 {
		t.Fatalf("DVFS run still took %d full stalls", rd.Stalls)
	}
	if rd.DVFSEngagements == 0 || rd.SlowCycles == 0 {
		t.Fatalf("DVFS never engaged: %d engagements, %d slow cycles", rd.DVFSEngagements, rd.SlowCycles)
	}
	// Peak temperature must stay controlled under DVFS.
	if peak, _ := rd.PeakTemp(floorplan.IntQ1); peak > config.Default().MaxTempK+2 {
		t.Fatalf("DVFS failed to control temperature: peak %.1f", peak)
	}
}

func TestUnknownBlockReportsMissing(t *testing.T) {
	s := quickSim(t, "eon", nil)
	r := s.RunCycles(50_000)
	if _, ok := r.AvgTemp("Nonexistent"); ok {
		t.Error("AvgTemp claimed to know an unknown block")
	}
	if _, ok := r.PeakTemp("Nonexistent"); ok {
		t.Error("PeakTemp claimed to know an unknown block")
	}
	if v, ok := r.AvgTemp(floorplan.IntQ0); !ok || v <= 0 {
		t.Errorf("known block missing: %v %v", v, ok)
	}
}

func TestAllPlansRun(t *testing.T) {
	for _, plan := range []config.FloorplanVariant{
		config.PlanIQConstrained, config.PlanALUConstrained, config.PlanRFConstrained,
	} {
		s := quickSim(t, "gzip", func(c *config.Config) { c.Plan = plan })
		r := s.RunCycles(80_000)
		if r.IPC <= 0 {
			t.Errorf("plan %v: no progress", plan)
		}
	}
}

func TestProfileValidationPropagates(t *testing.T) {
	prof, _ := trace.ByName("eon")
	prof.DepDist = 0
	if _, err := New(config.Default(), prof); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
