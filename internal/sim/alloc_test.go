package sim_test

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
)

// TestIntervalAllocBudget locks the steady-state heap traffic of a full
// sensor interval (pipeline cycles + meter drain + thermal step) to zero.
// The hot loop's data structures — completion rings, wakeup lists, the
// dense committed-memory regions — are all pre-sized or amortized; a
// regression that reintroduces per-interval allocation (as the sparse
// memory map once did, ~6 KB per interval) fails here long before it is
// visible on a profile.
func TestIntervalAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a long warmup to reach steady state")
	}
	cfg := config.Default()
	s, err := sim.NewByName(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	s.Pipe.Warmup(200_000)
	interval := cfg.SensorIntervalCycles
	dt := float64(interval) * cfg.ThermalSecondsPerCycle()
	pow := make([]float64, s.Plan.NumBlocks())

	// Drive past the working-set growth phase (completion rings, the
	// dense committed-memory image) so the measured region is steady
	// state, mirroring BenchmarkSimInterval.
	for c := 0; c < 600_000; c++ {
		s.Pipe.Cycle()
	}
	s.Th.Advance(s.Meter.Drain(600_000, 0, pow), dt)

	const intervals = 20
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < intervals; i++ {
		for c := 0; c < interval; c++ {
			s.Pipe.Cycle()
		}
		s.Th.Advance(s.Meter.Drain(interval, 0, pow), dt)
	}
	runtime.ReadMemStats(&after)

	mallocs := after.Mallocs - before.Mallocs
	bytes := after.TotalAlloc - before.TotalAlloc
	// The dense memory regions still grow by an append when the trace
	// first touches a new high-water address, so allow a handful of
	// amortized growth events but nothing per-interval.
	const mallocBudget = 8
	if mallocs > mallocBudget {
		t.Errorf("steady-state intervals allocated %d times (%d bytes) over %d intervals; budget %d allocations",
			mallocs, bytes, intervals, mallocBudget)
	}
}
