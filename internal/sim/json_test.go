package sim

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
)

// tinyResult runs a short eon cell and returns its result.
func tinyResult(t *testing.T) *Result {
	t.Helper()
	cfg := config.Default()
	cfg.Techniques.IQ = config.IQToggle
	s, err := NewByName(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	s.WarmupInstructions = 20_000
	return s.RunCycles(120_000)
}

// TestResultJSONRoundTrip checks that a marshalled result decodes to a
// deep-equal value — unexported temperature vectors included — and that
// re-marshalling the decoded value reproduces the exact bytes (the
// service cache depends on byte-stable encoding).
func TestResultJSONRoundTrip(t *testing.T) {
	r := tinyResult(t)
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(b1, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, r) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *r)
	}
	for _, blk := range r.Blocks() {
		ga, gaOK := got.AvgTemp(blk)
		ra, _ := r.AvgTemp(blk)
		gp, gpOK := got.PeakTemp(blk)
		rp, _ := r.PeakTemp(blk)
		if !gaOK || !gpOK || ga != ra || gp != rp {
			t.Errorf("%s temperatures diverged through JSON", blk)
		}
	}
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("re-marshalling the decoded result changed the bytes")
	}
}

// TestResultJSONRejectsLengthMismatch treats a temperatures/blocks
// length disagreement as corruption, not silent truncation.
func TestResultJSONRejectsLengthMismatch(t *testing.T) {
	var r Result
	err := json.Unmarshal([]byte(`{"blocks":["A","B"],"avg_temp_k":[1.0],"peak_temp_k":[1.0,2.0]}`), &r)
	if err == nil || !strings.Contains(err.Error(), "blocks") {
		t.Fatalf("mismatched vectors accepted: %v", err)
	}
}

// TestRunCyclesContextMatchesRunCycles locks the determinism contract:
// a background context must not perturb the run.
func TestRunCyclesContextMatchesRunCycles(t *testing.T) {
	plain := tinyResult(t)

	cfg := config.Default()
	cfg.Techniques.IQ = config.IQToggle
	s, err := NewByName(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	s.WarmupInstructions = 20_000
	withCtx, err := s.RunCyclesContext(context.Background(), 120_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Error("RunCyclesContext(background) differs from RunCycles")
	}
}

// TestRunCyclesContextCancel checks that a cancelled context stops the
// run early and surfaces the context error.
func TestRunCyclesContextCancel(t *testing.T) {
	cfg := config.Default()
	s, err := NewByName(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	s.WarmupInstructions = 10_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	r, err := s.RunCyclesContext(ctx, 1_000_000_000_000) // would run ~forever
	if err == nil || r != nil {
		t.Fatalf("cancelled run returned %v, %v", r, err)
	}
	if elapsed := time.Since(start); elapsed > time.Minute {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
