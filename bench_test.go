// Package repro's top-level benchmarks regenerate the paper's tables and
// figures as testing.B benchmarks, one per table and figure, plus
// ablations of the design choices called out in DESIGN.md.
//
// Benchmarks run shortened windows by default so `go test -bench=.` stays
// tractable; the full-length reference results live in EXPERIMENTS.md and
// are regenerated with `go run ./cmd/experiments all`. Each benchmark
// reports its headline quantities via b.ReportMetric: IPC per variant,
// speedups (in percent), temperatures (in kelvin above 300 to keep the
// numbers readable), and event counts.
package repro_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/issueq"
	"repro/internal/multicore"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// benchCycles and benchWarmup keep each experiment iteration around a
// second; they cover ~25 ms of accelerated thermal time, enough for the
// heating dynamics to act, though with fewer cooling-stall events than the
// full windows recorded in EXPERIMENTS.md.
const (
	benchCycles = 800_000
	benchWarmup = 1_000_000
)

// avgK reads a block's average temperature for a benchmark metric.
func avgK(r *sim.Result, block string) float64 {
	t, _ := r.AvgTemp(block)
	return t
}

func runSpec(b *testing.B, spec experiments.Spec) *experiments.Matrix {
	b.Helper()
	spec.Cycles = benchCycles
	spec.Warmup = benchWarmup
	m, err := experiments.Run(context.Background(), spec, nil)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable3IssueEnergy exercises the paper's Table 3 circuit model:
// it drives a compacting issue queue with a steady dispatch/issue pattern
// and reports the modelled energy per instruction, which is composed
// entirely of Table 3 components.
func BenchmarkTable3IssueEnergy(b *testing.B) {
	var joules float64
	var insts uint64
	for i := 0; i < b.N; i++ {
		q := issueq.New(32, 6, 2, 128)
		next := int32(0)
		var inFlight []int32
		for cycle := 0; cycle < 20_000; cycle++ {
			for len(inFlight) < 24 {
				id := next % 128
				if q.Contains(id) || !q.Dispatch(id) {
					break
				}
				inFlight = append(inFlight, id)
				next++
			}
			for k := 0; k < 2 && len(inFlight) > 0; k++ {
				id := inFlight[0]
				inFlight = inFlight[1:]
				q.MarkReady(id)
				q.Issue(id)
			}
			q.Broadcast(2)
			q.Tick()
		}
		t0, t1 := q.EnergyTotals()
		joules += t0 + t1
		insts += q.Issues
	}
	b.ReportMetric(joules/float64(insts)*1e9, "nJ/inst")
}

// BenchmarkTable4IssueQueueHalves reproduces Table 4: average issue-queue
// half temperatures for art, facerec and mesa with and without activity
// toggling.
func BenchmarkTable4IssueQueueHalves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Table4(0))
		for _, bench := range m.Benchmarks() {
			for _, v := range []string{"base", "activity-toggling"} {
				r := m.Get(bench, v)
				b.ReportMetric(avgK(r, floorplan.IntQ1)-300, bench+"/"+v+"/tailK-300")
				b.ReportMetric(avgK(r, floorplan.IntQ0)-300, bench+"/"+v+"/headK-300")
			}
		}
	}
}

// BenchmarkFig6ActivityToggling reproduces Figure 6 on a representative
// benchmark subset: IPC with and without activity toggling on the
// issue-queue-constrained machine.
func BenchmarkFig6ActivityToggling(b *testing.B) {
	benches := []string{"eon", "gzip", "crafty", "art", "mcf"}
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Fig6(0, benches...))
		for _, bench := range benches {
			b.ReportMetric(m.Get(bench, "base").IPC, bench+"/base-IPC")
			b.ReportMetric(m.Get(bench, "activity-toggling").IPC, bench+"/toggle-IPC")
		}
		mean, _ := m.MeanSpeedup("activity-toggling", "base", false)
		b.ReportMetric(mean*100, "speedup%")
	}
}

// BenchmarkTable5ALUTemperatures reproduces Table 5: per-ALU average
// temperatures and IPC for parser and perlbmk under round-robin,
// fine-grain turnoff, and base.
func BenchmarkTable5ALUTemperatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Table5(0))
		for _, bench := range m.Benchmarks() {
			for _, v := range []string{"round-robin", "fine-grain-turnoff", "base"} {
				r := m.Get(bench, v)
				b.ReportMetric(r.IPC, bench+"/"+v+"/IPC")
				b.ReportMetric(avgK(r, "IntExec0")-300, bench+"/"+v+"/ALU0K-300")
				b.ReportMetric(avgK(r, "IntExec5")-300, bench+"/"+v+"/ALU5K-300")
			}
		}
	}
}

// BenchmarkFig7FineGrainTurnoff reproduces Figure 7 on a representative
// subset: ALU-constrained IPC under base, fine-grain turnoff and the
// idealized round-robin bound.
func BenchmarkFig7FineGrainTurnoff(b *testing.B) {
	benches := []string{"perlbmk", "gzip", "parser", "art"}
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Fig7(0, benches...))
		for _, bench := range benches {
			for _, v := range []string{"base", "fine-grain-turnoff", "round-robin"} {
				b.ReportMetric(m.Get(bench, v).IPC, bench+"/"+v+"/IPC")
			}
		}
		fgt, _ := m.MeanSpeedup("fine-grain-turnoff", "base", false)
		rr, _ := m.MeanSpeedup("round-robin", "base", false)
		b.ReportMetric(fgt*100, "fgt-speedup%")
		b.ReportMetric(rr*100, "rr-speedup%")
	}
}

// BenchmarkTable6RegfileTemps reproduces Table 6: eon's register-file copy
// temperatures, IPC and turnoff counts for the four mapping × turnoff
// combinations.
func BenchmarkTable6RegfileTemps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Table6(0))
		for _, v := range m.Spec.Variants {
			r := m.Get("eon", v.Name)
			b.ReportMetric(r.IPC, v.Name+"/IPC")
			b.ReportMetric(avgK(r, floorplan.IntReg0)-300, v.Name+"/copy0K-300")
			b.ReportMetric(avgK(r, floorplan.IntReg1)-300, v.Name+"/copy1K-300")
			var offs float64
			for _, n := range r.RFTurnoffsPerCopy {
				offs += float64(n)
			}
			b.ReportMetric(offs, v.Name+"/turnoffs")
		}
	}
}

// BenchmarkFig8RegfileMapping reproduces Figure 8 on a representative
// subset: register-file-constrained IPC for the four combinations.
func BenchmarkFig8RegfileMapping(b *testing.B) {
	benches := []string{"eon", "gzip", "wupwise", "parser"}
	for i := 0; i < b.N; i++ {
		m := runSpec(b, experiments.Fig8(0, benches...))
		for _, bench := range benches {
			for _, v := range m.Spec.Variants {
				b.ReportMetric(m.Get(bench, v.Name).IPC, bench+"/"+v.Name+"/IPC")
			}
		}
		fp, _ := m.MeanSpeedup("fgt+priority", "priority-only", false)
		fb, _ := m.MeanSpeedup("fgt+priority", "balanced-only", false)
		b.ReportMetric(fp*100, "fgtprio-over-prio%")
		b.ReportMetric(fb*100, "fgtprio-over-bal%")
	}
}

// BenchmarkMatrixParallelism measures the experiment matrix runner's
// scaling: one Fig6 subset run per iteration at worker counts 1, 2, 4
// and 8, reporting throughput in cells/sec. On a multi-core machine
// cells/sec should rise near-linearly until the worker count reaches
// the core count; on a single core every setting collapses to the same
// throughput. Results are byte-identical at every parallelism (see
// internal/experiments's determinism tests), so this benchmark measures
// pure scheduling, not workload drift.
func BenchmarkMatrixParallelism(b *testing.B) {
	benches := []string{"eon", "gzip", "crafty", "art"}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", par), func(b *testing.B) {
			cells := 0
			for i := 0; i < b.N; i++ {
				spec := experiments.Fig6(200_000, benches...)
				spec.Warmup = 100_000
				spec.Parallelism = par
				m, err := experiments.Run(context.Background(), spec, nil)
				if err != nil {
					b.Fatal(err)
				}
				cells += len(m.Cells)
			}
			b.ReportMetric(float64(cells)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}

// --- Ablations (DESIGN.md) --------------------------------------------------

// BenchmarkAblationToggleThreshold sweeps the activity-toggling trigger
// threshold around the paper's 0.5 K.
func BenchmarkAblationToggleThreshold(b *testing.B) {
	for _, thr := range []float64{0.25, 0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("thr=%.2fK", thr), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.Plan = config.PlanIQConstrained
				cfg.Techniques.IQ = config.IQToggle
				cfg.ToggleThresholdK = thr
				s, err := sim.NewByName(cfg, "gzip")
				if err != nil {
					b.Fatal(err)
				}
				s.WarmupInstructions = benchWarmup
				r := s.RunCycles(benchCycles)
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.IntToggles+r.FPToggles), "toggles")
			}
		})
	}
}

// BenchmarkAblationLongCompaction quantifies the toggled queue's
// wrap-around penalty: the share of compaction energy spent on the Table 3
// "Long Compaction" wires in toggled operation.
func BenchmarkAblationLongCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		cfg.Plan = config.PlanIQConstrained
		cfg.Techniques.IQ = config.IQToggle
		s, err := sim.NewByName(cfg, "gzip")
		if err != nil {
			b.Fatal(err)
		}
		s.WarmupInstructions = benchWarmup
		s.RunCycles(benchCycles)
		q := s.Pipe.IntQueue()
		wrapJ := float64(q.WrapMoves) * power.LongCompaction
		shortJ := float64(q.Moves-q.WrapMoves) * power.CompactEntryToEntry
		b.ReportMetric(float64(q.WrapMoves), "wrap-moves")
		b.ReportMetric(wrapJ/(wrapJ+shortJ)*100, "wrap-energy%")
	}
}

// BenchmarkAblationCompletelyBalanced compares the paper's rejected
// completely-balanced register mapping (long wires, perfect symmetry)
// against simplified balanced and priority mapping, all with fine-grain
// turnoff.
func BenchmarkAblationCompletelyBalanced(b *testing.B) {
	maps := []struct {
		name string
		m    config.RFMapping
	}{
		{"priority", config.MapPriority},
		{"balanced", config.MapBalanced},
		{"completely-balanced", config.MapCompletelyBalanced},
	}
	for _, mm := range maps {
		b.Run(mm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.Plan = config.PlanRFConstrained
				cfg.Techniques.RFMap = mm.m
				cfg.Techniques.RFTurnoff = mm.m != config.MapCompletelyBalanced
				s, err := sim.NewByName(cfg, "eon")
				if err != nil {
					b.Fatal(err)
				}
				s.WarmupInstructions = benchWarmup
				r := s.RunCycles(benchCycles)
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(avgK(r, floorplan.IntReg0)-avgK(r, floorplan.IntReg1), "copy-dT")
			}
		})
	}
}

// BenchmarkAblationWritePolicy compares the two §2.3 write policies for
// cooling register-file copies: margin writes vs copy-on-cool.
func BenchmarkAblationWritePolicy(b *testing.B) {
	for _, pol := range []config.RFWritePolicy{config.WriteMargin, config.WriteCopyOnCool} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.Plan = config.PlanRFConstrained
				cfg.Techniques.RFMap = config.MapPriority
				cfg.Techniques.RFTurnoff = true
				cfg.Techniques.RFWrites = pol
				s, err := sim.NewByName(cfg, "eon")
				if err != nil {
					b.Fatal(err)
				}
				s.WarmupInstructions = benchWarmup
				r := s.RunCycles(benchCycles)
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.RFCopyTurnoffs), "turnoffs")
			}
		})
	}
}

// --- Microbenchmarks of the substrates ---------------------------------------

// BenchmarkPipelineCycle measures raw simulation speed in cycles/sec.
func BenchmarkPipelineCycle(b *testing.B) {
	cfg := config.Default()
	plan := floorplan.Build(cfg.Plan)
	meter := power.NewMeter(plan, cfg)
	prof, _ := trace.ByName("eon")
	p, err := pipeline.New(cfg, plan, meter, trace.NewGenerator(prof))
	if err != nil {
		b.Fatal(err)
	}
	p.Warmup(200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Cycle()
	}
}

// BenchmarkSimInterval measures one full sensor interval end to end:
// 10k pipeline cycles of counter increments, the single Drain that
// converts event counts to per-block joules, and the thermal RC step.
// Steady state must stay allocation-free — the drain path writes into
// caller-owned buffers only.
func BenchmarkSimInterval(b *testing.B) {
	cfg := config.Default()
	s, err := sim.NewByName(cfg, "eon")
	if err != nil {
		b.Fatal(err)
	}
	s.Pipe.Warmup(200_000)
	interval := cfg.SensorIntervalCycles
	dt := float64(interval) * cfg.ThermalSecondsPerCycle()
	pow := make([]float64, s.Plan.NumBlocks())
	// Drive past the working-set growth phase (completion rings, the
	// committed-memory image) so the measured region is steady state.
	for c := 0; c < 600_000; c++ {
		s.Pipe.Cycle()
	}
	s.Meter.Drain(600_000, 0, pow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < interval; c++ {
			s.Pipe.Cycle()
		}
		s.Th.Advance(s.Meter.Drain(interval, 0, pow), dt)
	}
}

// thermalBenchPlans are the floorplan-scaling points for the thermal
// benchmarks: the paper plan (~26 blocks, dense path) plus meshes at
// N=30/300/3000 blocks. Above thermal.DenseMaxNodes the auto solver
// switches to the sparse CSR/CG path.
func thermalBenchPlans() []struct {
	name string
	plan *floorplan.Plan
} {
	return []struct {
		name string
		plan *floorplan.Plan
	}{
		{"paper", floorplan.Build(config.PlanIQConstrained)},
		{"N=30", floorplan.Mesh(5, 6)},
		{"N=300", floorplan.Mesh(15, 20)},
		{"N=3000", floorplan.Mesh(50, 60)},
	}
}

// BenchmarkThermalAdvance measures one sensor-interval thermal update at
// each floorplan scale; the per-op cost is the CSR (or dense) Euler
// substeps for ~0.3 ms of thermal time. Steady state must stay
// allocation-free on every path — the integration scratch lives on the
// model.
func BenchmarkThermalAdvance(b *testing.B) {
	cfg := config.Default()
	dt := float64(cfg.SensorIntervalCycles) * cfg.ThermalSecondsPerCycle()
	for _, tp := range thermalBenchPlans() {
		b.Run(tp.name, func(b *testing.B) {
			th, err := thermal.New(tp.plan, cfg)
			if err != nil {
				b.Fatal(err)
			}
			pow := make([]float64, tp.plan.NumBlocks())
			for i := range pow {
				pow[i] = 40.0 / float64(len(pow))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Advance(pow, dt)
			}
		})
	}
}

// BenchmarkThermalSteadyState compares the steady-state solvers at each
// floorplan scale: solver=sparse is the CSR conjugate-gradient path,
// solver=dense the Gaussian-elimination reference (via the any-size
// SteadyStateDense entry point). At N=3000 the O(n³) dense solve takes
// seconds while CG finishes in milliseconds — the ≥10× separation this
// PR's acceptance demands.
func BenchmarkThermalSteadyState(b *testing.B) {
	cfg := config.Default()
	cfg.ThermalSolver = config.ThermalSparse // CG at every size; dense via the reference entry point
	for _, tp := range thermalBenchPlans() {
		if tp.name == "paper" {
			continue // the paper plan is covered by BenchmarkSteadyState
		}
		th, err := thermal.New(tp.plan, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pow := make([]float64, tp.plan.NumBlocks())
		for i := range pow {
			pow[i] = 40.0 / float64(len(pow))
		}
		b.Run(tp.name+"/solver=sparse", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				th.SteadyState(pow)
			}
		})
		b.Run(tp.name+"/solver=dense", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				th.SteadyStateDense(pow)
			}
		})
	}
}

// BenchmarkMulticoreInterval measures one lockstep multi-core interval —
// every core's 10k pipeline cycles, the shared-die thermal solve, and
// the scheduler/DTM bookkeeping — at 1/2/4/8 cores on the tiled plan.
// Cores advance serially (Parallelism=1) so the per-op cost scales
// ~linearly with the core count and is comparable across machines; the
// horizon and queue are oversized so every measured step has all cores
// busy rather than draining.
func BenchmarkMulticoreInterval(b *testing.B) {
	for _, cores := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			p := multicore.Params{
				Cores:       cores,
				Scheduler:   config.SchedRoundRobin,
				Cycles:      1 << 40,
				Tasks:       8192,
				ArrivalGap:  1, // saturated queue: cores never idle
				Parallelism: 1,
			}
			s, err := multicore.NewSystem(p)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIssueQueueTick measures the compacting queue's per-cycle cost.
func BenchmarkIssueQueueTick(b *testing.B) {
	q := issueq.New(32, 6, 2, 128)
	for id := int32(0); id < 24; id++ {
		q.Dispatch(id)
	}
	next := int32(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			id := int32(i/2) % 128
			if !q.Contains(id) && q.StateOf(id) == issueq.Empty {
				if q.Dispatch(id) {
					q.MarkReady(id)
					q.Issue(id)
				}
			}
			_ = next
		}
		q.Tick()
	}
}

// BenchmarkGenerator measures trace synthesis throughput.
func BenchmarkGenerator(b *testing.B) {
	prof, _ := trace.ByName("gcc")
	g := trace.NewGenerator(prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkSteadyState measures the dense thermal steady-state solve on
// the paper floorplan (the path every fig6 run warm-starts through).
func BenchmarkSteadyState(b *testing.B) {
	cfg := config.Default()
	plan := floorplan.Build(cfg.Plan)
	th, err := thermal.New(plan, cfg)
	if err != nil {
		b.Fatal(err)
	}
	pow := make([]float64, plan.NumBlocks())
	for i := range pow {
		pow[i] = 1.0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.SteadyState(pow)
	}
}

// BenchmarkAblationNonCompacting contrasts the paper's compacting queue
// with the related-work non-compacting organization it cites: without
// compaction the queue burns far less energy and the half asymmetry that
// activity toggling exploits disappears — supporting the paper's premise
// that compaction is both the energy hog and the asymmetry source.
func BenchmarkAblationNonCompacting(b *testing.B) {
	for _, mode := range []struct {
		name string
		iq   config.IQPolicy
	}{
		{"compacting", config.IQBase},
		{"non-compacting", config.IQNonCompacting},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := config.Default()
				cfg.Plan = config.PlanIQConstrained
				cfg.Techniques.IQ = mode.iq
				s, err := sim.NewByName(cfg, "gzip")
				if err != nil {
					b.Fatal(err)
				}
				s.WarmupInstructions = benchWarmup
				r := s.RunCycles(benchCycles)
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(avgK(r, floorplan.IntQ1)-avgK(r, floorplan.IntQ0), "half-dT")
				b.ReportMetric(float64(r.Stalls), "stalls")
			}
		})
	}
}
