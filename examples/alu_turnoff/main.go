// ALU turnoff: reproduce the §4.2 scenario on the ALU-constrained
// floorplan. The static select-tree priority concentrates work on ALU0,
// which overheats; the baseline stalls the whole core, fine-grain turnoff
// marks the hot ALU busy and keeps executing on the cool ones, and
// round-robin (the idealized bound) spreads work evenly so nothing ever
// overheats.
//
//	go run ./examples/alu_turnoff [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/sim"
)

func main() {
	benchmark := "perlbmk" // the paper's ALU-constrained example
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	const cycles = 4_000_000

	policies := []struct {
		name string
		alu  config.ALUPolicy
	}{
		{"base (stall on hot ALU)", config.ALUBase},
		{"fine-grain turnoff", config.ALUFineGrain},
		{"round-robin (ideal)", config.ALURoundRobin},
	}

	fmt.Printf("benchmark: %s on the ALU-constrained floorplan\n\n", benchmark)
	fmt.Printf("%-26s %6s %7s %9s  %s\n", "policy", "IPC", "stalls", "turnoffs", "per-ALU avg temps (K)")
	var baseIPC float64
	for _, p := range policies {
		cfg := config.Default()
		cfg.Plan = config.PlanALUConstrained
		cfg.Techniques.ALU = p.alu
		s, err := sim.NewByName(cfg, benchmark)
		if err != nil {
			log.Fatal(err)
		}
		r := s.RunCycles(cycles)
		if p.alu == config.ALUBase {
			baseIPC = r.IPC
		}
		fmt.Printf("%-26s %6.2f %7d %9d  ", p.name, r.IPC, r.Stalls, r.ALUTurnoffs)
		for u := 0; u < cfg.IntALUs; u++ {
			t, _ := r.AvgTemp(fmt.Sprintf("IntExec%d", u))
			fmt.Printf("%6.1f", t)
		}
		if p.alu != config.ALUBase && baseIPC > 0 {
			fmt.Printf("   (%+.0f%% vs base)", (r.IPC/baseIPC-1)*100)
		}
		fmt.Println()
	}
	fmt.Println("\nNote the paper's §4.2 signature: fine-grain turnoff runs its hot")
	fmt.Println("ALUs *hotter* than the base (it tolerates them instead of stalling),")
	fmt.Println("approaches round-robin's IPC, and leaves the low-priority ALUs cool.")
}
