// DVFS comparison: contrast the two temporal fallbacks the paper
// discusses (§5) — Pentium-4-style stop-go and DVFS — and show how the
// spatial technique (activity toggling) reduces how often either fallback
// engages. This extends the paper's evaluation; the paper argues spatial
// techniques "greatly reduce the use" of temporal ones, and this example
// quantifies that claim on one benchmark.
//
//	go run ./examples/dvfs_compare [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/sim"
)

func main() {
	benchmark := "perlbmk"
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	const cycles = 4_000_000

	configs := []struct {
		name string
		tech config.Techniques
	}{
		{"stop-go", config.Techniques{Temporal: config.TemporalStopGo}},
		{"dvfs", config.Techniques{Temporal: config.TemporalDVFS}},
		{"stop-go + toggling", config.Techniques{IQ: config.IQToggle}},
		{"dvfs + toggling", config.Techniques{IQ: config.IQToggle, Temporal: config.TemporalDVFS}},
	}

	fmt.Printf("benchmark: %s on the issue-queue-constrained floorplan\n\n", benchmark)
	fmt.Printf("%-20s %6s %7s %11s %12s %10s\n",
		"configuration", "IPC", "stalls", "slow-cycles", "engagements", "toggles")
	for _, c := range configs {
		cfg := config.Default()
		cfg.Plan = config.PlanIQConstrained
		cfg.Techniques = c.tech
		s, err := sim.NewByName(cfg, benchmark)
		if err != nil {
			log.Fatal(err)
		}
		r := s.RunCycles(cycles)
		fmt.Printf("%-20s %6.2f %7d %11d %12d %10d\n",
			c.name, r.IPC, r.Stalls, r.SlowCycles, r.DVFSEngagements,
			r.IntToggles+r.FPToggles)
	}
	fmt.Println("\nStop-go pays for each overheat with a full 10 ms halt; DVFS pays")
	fmt.Println("with stretches of divided-clock execution. Toggling reduces how")
	fmt.Println("often either price is paid — the paper's central claim.")
}
