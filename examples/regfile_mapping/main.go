// Register-file mapping: reproduce the §4.3 comparison of the four
// mapping × turnoff combinations on the register-file-constrained
// floorplan, including the paper's counterintuitive headline: priority
// mapping plus fine-grain turnoff wins despite turning copies off about
// three times more often than balanced mapping.
//
//	go run ./examples/regfile_mapping [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/sim"
)

func main() {
	benchmark := "eon" // the paper's Table 6 example
	if len(os.Args) > 1 {
		benchmark = os.Args[1]
	}
	const cycles = 4_000_000

	combos := []struct {
		name    string
		mapping config.RFMapping
		turnoff bool
	}{
		{"priority + fine-grain", config.MapPriority, true},
		{"balanced + fine-grain", config.MapBalanced, true},
		{"balanced only", config.MapBalanced, false},
		{"priority only", config.MapPriority, false},
	}

	fmt.Printf("benchmark: %s on the register-file-constrained floorplan\n\n", benchmark)
	fmt.Printf("%-24s %6s %7s %10s %10s %10s\n",
		"configuration", "IPC", "stalls", "copy0 (K)", "copy1 (K)", "turnoffs")
	for _, c := range combos {
		cfg := config.Default()
		cfg.Plan = config.PlanRFConstrained
		cfg.Techniques.RFMap = c.mapping
		cfg.Techniques.RFTurnoff = c.turnoff
		s, err := sim.NewByName(cfg, benchmark)
		if err != nil {
			log.Fatal(err)
		}
		r := s.RunCycles(cycles)
		var offs uint64
		for _, n := range r.RFTurnoffsPerCopy {
			offs += n
		}
		t0, _ := r.AvgTemp(floorplan.IntReg0)
		t1, _ := r.AvgTemp(floorplan.IntReg1)
		fmt.Printf("%-24s %6.2f %7d %10.1f %10.1f %10d\n",
			c.name, r.IPC, r.Stalls, t0, t1, offs)
	}
	fmt.Println("\nExpected ordering (paper Table 6): priority+fgt > balanced+fgt >")
	fmt.Println("balanced-only > priority-only — priority mapping concentrates reads")
	fmt.Println("so fine-grain turnoff can ping-pong the copies, achieving symmetry")
	fmt.Println("both within and across copies.")
}
