// Quickstart: run one benchmark on the issue-queue-constrained machine
// with and without activity toggling, and compare.
//
//	go run ./examples/quickstart
//
// This is the smallest end-to-end use of the library: build a
// configuration, pick a benchmark profile, wire a simulator, run it for a
// fixed thermal window, and inspect the result.
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/floorplan"
	"repro/internal/sim"
)

func main() {
	const benchmark = "gzip"
	const cycles = 4_000_000 // ~120 ms of accelerated thermal time

	// Baseline: conventional compacting issue queue. When either queue
	// half hits the 358 K threshold the whole core stalls for the
	// package's 10 ms cooling time.
	base := runOnce(benchmark, cycles, config.Techniques{})

	// Activity toggling (the paper's §2.1): the head/tail configuration
	// toggles between the queue halves whenever the actively heated half
	// is more than 0.5 K hotter than the other.
	toggled := runOnce(benchmark, cycles, config.Techniques{IQ: config.IQToggle})

	fmt.Printf("benchmark: %s on the issue-queue-constrained floorplan\n\n", benchmark)
	fmt.Printf("%-22s %8s %8s %10s %14s %14s\n",
		"configuration", "IPC", "stalls", "toggles", "IntQ head (K)", "IntQ tail (K)")
	for _, r := range []*sim.Result{base, toggled} {
		head, _ := r.AvgTemp(floorplan.IntQ0)
		tail, _ := r.AvgTemp(floorplan.IntQ1)
		fmt.Printf("%-22s %8.3f %8d %10d %14.2f %14.2f\n",
			r.Techniques.IQ.String(), r.IPC, r.Stalls, r.IntToggles+r.FPToggles,
			head, tail)
	}
	fmt.Printf("\nspeedup from activity toggling: %+.1f%%\n", (toggled.IPC/base.IPC-1)*100)
}

func runOnce(benchmark string, cycles int64, tech config.Techniques) *sim.Result {
	cfg := config.Default()
	cfg.Plan = config.PlanIQConstrained
	cfg.Techniques = tech
	s, err := sim.NewByName(cfg, benchmark)
	if err != nil {
		log.Fatal(err)
	}
	return s.RunCycles(cycles)
}
